#include "etc/repository.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>

#include "etc/suite.hpp"

namespace pacga::etc {
namespace {

class RepositoryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("pacga_repo_" + std::to_string(::getpid()));
    std::filesystem::remove_all(root_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  std::filesystem::path root_;
};

TEST_F(RepositoryTest, CreatesRootDirectory) {
  InstanceRepository repo(root_);
  EXPECT_TRUE(std::filesystem::exists(root_));
}

TEST_F(RepositoryTest, GeneratesOnFirstLoadCachesAfter) {
  InstanceRepository repo(root_);
  EXPECT_FALSE(repo.cached("u_c_lolo.0"));
  const auto m1 = repo.load("u_c_lolo.0");
  EXPECT_TRUE(repo.cached("u_c_lolo.0"));
  const auto m2 = repo.load("u_c_lolo.0");  // now from disk
  ASSERT_EQ(m1.tasks(), m2.tasks());
  for (std::size_t t = 0; t < m1.tasks(); ++t) {
    for (std::size_t mm = 0; mm < m1.machines(); ++mm) {
      EXPECT_DOUBLE_EQ(m1(t, mm), m2(t, mm));
    }
  }
}

TEST_F(RepositoryTest, CachedMatchesDirectGeneration) {
  InstanceRepository repo(root_);
  const auto from_repo = repo.load("u_i_hilo.0");
  const auto direct = generate_by_name("u_i_hilo.0");
  EXPECT_DOUBLE_EQ(from_repo(100, 7), direct(100, 7));
  EXPECT_DOUBLE_EQ(from_repo.min_etc(), direct.min_etc());
}

TEST_F(RepositoryTest, UnknownNameThrows) {
  InstanceRepository repo(root_);
  EXPECT_THROW(repo.load("not_a_name"), std::invalid_argument);
}

TEST_F(RepositoryTest, MaterializeSuiteCreatesTwelveFiles) {
  InstanceRepository repo(root_);
  const auto paths = repo.materialize_suite();
  ASSERT_EQ(paths.size(), 12u);
  for (const auto& p : paths) {
    EXPECT_TRUE(std::filesystem::exists(p)) << p;
  }
  // Second call is a no-op on existing files (same mtimes acceptable; just
  // verify it does not throw and returns the same paths).
  const auto again = repo.materialize_suite();
  EXPECT_EQ(again, paths);
}

TEST_F(RepositoryTest, RoundTripPreservesFingerprint) {
  // The Braun writer emits 17 significant digits, so generate -> write ->
  // read must reproduce the exact bits — the property the load-time
  // integrity check relies on.
  InstanceRepository repo(root_);
  const auto first = repo.load("u_c_lohi.0");   // generates + persists
  const auto second = repo.load("u_c_lohi.0");  // reads the file back
  EXPECT_EQ(first.fingerprint(), second.fingerprint());
  EXPECT_EQ(first.fingerprint(), generate_by_name("u_c_lohi.0").fingerprint());
}

TEST_F(RepositoryTest, TamperedFileStillServedButDiffers) {
  // load() warns (log output) on a fingerprint mismatch and serves the
  // archived file; the observable contract is that the tampered content
  // comes back and its fingerprint no longer matches the generator's.
  InstanceRepository repo(root_);
  repo.load("u_c_hilo.0");
  const auto path = repo.path_of("u_c_hilo.0");
  // Corrupt one value: prepend a replacement first data line.
  {
    std::ifstream in(path);
    std::string header, first_value;
    std::getline(in, header);
    std::getline(in, first_value);
    std::string rest((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    std::ofstream out(path);
    out << header << "\n" << "123456.0" << "\n" << rest;
  }
  const auto tampered = repo.load("u_c_hilo.0");
  EXPECT_NE(tampered.fingerprint(),
            generate_by_name("u_c_hilo.0").fingerprint());
  EXPECT_DOUBLE_EQ(tampered(0, 0), 123456.0);
}

TEST_F(RepositoryTest, ClearRemovesEtcFiles) {
  InstanceRepository repo(root_);
  repo.load("u_s_lolo.0");
  ASSERT_TRUE(repo.cached("u_s_lolo.0"));
  repo.clear();
  EXPECT_FALSE(repo.cached("u_s_lolo.0"));
}

}  // namespace
}  // namespace pacga::etc
