// Dynamic-subsystem unit tests:
//
//  * GridEvent factories and the stable log format (the golden contract);
//  * EtcMutator: initial instance identical to the static workload path,
//    in-place slowdown (both layouts, summary refresh), shape-changing
//    rebuilds, execution-profile stability under churn, the accumulated
//    slowdown clamp, and the grid invariants (throwing apply leaves the
//    instance untouched);
//  * ScheduleRepairer: every event kind repairs to a validate()-clean
//    schedule, only orphans move, both reassignment policies;
//  * batch::generate_event_stream: determinism, legality against a live
//    mutator, per-kind rate gating;
//  * RescheduleSession: end-to-end event application, warm-start spec
//    production, stale-shape adopt rejection;
//  * Population::seed_cell: the warm-start injection point.
#include "dynamic/session.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "batch/event_stream.hpp"
#include "cga/population.hpp"
#include "heuristics/minmin.hpp"
#include "sched/fitness.hpp"

namespace pacga::dynamic {
namespace {

batch::WorkloadSpec small_spec(std::uint64_t seed = 5) {
  batch::WorkloadSpec w;
  w.tasks = 24;
  w.machines = 6;
  w.seed = seed;
  return w;
}

// --- events ----------------------------------------------------------------

TEST(GridEvent, FactoriesSetExactlyTheirFields) {
  const GridEvent down = machine_down(3, 1.5);
  EXPECT_EQ(down.kind, EventKind::kMachineDown);
  EXPECT_EQ(down.machine, 3u);
  EXPECT_DOUBLE_EQ(down.time, 1.5);

  const GridEvent slow = machine_slowdown(2, 1.75);
  EXPECT_EQ(slow.kind, EventKind::kMachineSlowdown);
  EXPECT_DOUBLE_EQ(slow.factor, 1.75);

  const GridEvent arrive = task_arrival(123.0);
  EXPECT_EQ(arrive.kind, EventKind::kTaskArrival);
  EXPECT_DOUBLE_EQ(arrive.value, 123.0);
}

TEST(GridEvent, FormatIsStable) {
  EXPECT_EQ(format_event(machine_down(3, 1.5)), "t=1.500000 down machine=3");
  EXPECT_EQ(format_event(machine_up(2.5, 0.25)), "t=0.250000 up mips=2.500000");
  EXPECT_EQ(format_event(machine_slowdown(1, 2.0, 0.5)),
            "t=0.500000 slowdown machine=1 factor=2.000000");
  EXPECT_EQ(format_event(task_arrival(10.0, 2.0)),
            "t=2.000000 arrival workload=10.000000");
  EXPECT_EQ(format_event(task_cancel(7, 3.0)), "t=3.000000 cancel task=7");
  EXPECT_EQ(format_event(epoch_commit(250.0, 4.0)),
            "t=4.000000 commit elapsed=250.000000");
  // The optional ready field appears only when set, so pre-ready-time
  // event logs keep their byte format.
  EXPECT_EQ(format_event(machine_up_ready(2.5, 80.0, 0.25)),
            "t=0.250000 up mips=2.500000 ready=80.000000");
}

TEST(GridEvent, EveryKindRoundTripsThroughTheParser) {
  // The parser is load-bearing for the daemon's REPLAY verb: a serialized
  // stream must come back as the events it was written from. Values here
  // are exactly representable at the log's 6-decimal precision, so the
  // round trip is field-exact.
  const GridEvent cases[] = {
      machine_down(3, 1.5),
      machine_up(2.5, 0.25),
      machine_up_ready(4.75, 120.5, 2.25),
      // An INVALID ready must round-trip too: a replayed log has to
      // reproduce the live session's rejection, not silently drop the
      // field and apply a ready-free join.
      machine_up_ready(4.0, -3.0, 1.0),
      machine_slowdown(1, 2.0, 0.5),
      task_arrival(1500.125, 2.0),
      task_cancel(7, 3.0),
      epoch_commit(250.0, 4.0),
  };
  for (const GridEvent& e : cases) {
    const std::string line = format_event(e);
    EXPECT_EQ(parse_event(line), e) << line;
    // And the line itself is the fixed point of a second round trip.
    EXPECT_EQ(format_event(parse_event(line)), line);
  }
}

TEST(GridEvent, ReadyRenderingToZeroIsCanonicallyZero) {
  // A ready whose 6-decimal rendering is (-)0.000000 is dropped from the
  // line entirely: emitting it would parse back to 0.0 and vanish on the
  // next format, breaking the canonical-form fixed point.
  EXPECT_EQ(format_event(machine_up_ready(2.5, 1e-9, 0.25)),
            format_event(machine_up(2.5, 0.25)));
  EXPECT_EQ(format_event(machine_up_ready(2.5, -1e-9, 0.25)),
            format_event(machine_up(2.5, 0.25)));
  // Just past the rounding threshold the field survives and round-trips.
  const std::string line = format_event(machine_up_ready(2.5, 1e-6, 0.25));
  EXPECT_EQ(line, "t=0.250000 up mips=2.500000 ready=0.000001");
  EXPECT_EQ(format_event(parse_event(line)), line);
}

TEST(GridEvent, ExtremeLegalValuesNeverTruncate) {
  // %f renders ~316 chars for a near-max double; the format buffer must
  // cover it, or a clamped line could re-parse as a DIFFERENT event and
  // silently diverge a replay. 1e300 is a legal workload/mips/ready (the
  // mutator only requires positive finite).
  for (const GridEvent& e :
       {task_arrival(1e300, 1.0), machine_up(1e300, 1.0),
        machine_up_ready(1e300, 1e300, 1.0), epoch_commit(1e300, 1.0),
        // The compound worst case: all three %f fields near max width.
        machine_up_ready(1e300, 1e300, 1e300)}) {
    const std::string line = format_event(e);
    EXPECT_GT(line.size(), 300u);
    EXPECT_EQ(format_event(parse_event(line)), line);
    EXPECT_EQ(parse_event(line), e);  // 1e300 is 6-decimal exact
  }
}

TEST(GridEvent, GeneratedStreamsRoundTripByteForByte) {
  // Arbitrary generated values truncate to the log's 6-decimal precision,
  // so the LINE is the canonical form: format(parse(line)) == line for
  // every event the generator can emit (ready-carrying joins included).
  batch::EventStreamSpec spec;
  spec.initial_tasks = 24;
  spec.initial_machines = 6;
  spec.up_ready_hi = 250.0;
  spec.max_events = 500;
  spec.seed = 11;
  for (const GridEvent& e : batch::generate_event_stream(spec)) {
    const std::string line = format_event(e);
    EXPECT_EQ(format_event(parse_event(line)), line) << line;
  }
}

TEST(GridEvent, ParserRejectsMalformedLines) {
  EXPECT_THROW(parse_event(""), std::invalid_argument);
  EXPECT_THROW(parse_event("down machine=1"), std::invalid_argument);
  EXPECT_THROW(parse_event("t=notanumber down machine=1"),
               std::invalid_argument);
  EXPECT_THROW(parse_event("t=1.0 explode machine=1"), std::invalid_argument);
  EXPECT_THROW(parse_event("t=1.0 down"), std::invalid_argument);
  EXPECT_THROW(parse_event("t=1.0 down task=1"), std::invalid_argument);
  EXPECT_THROW(parse_event("t=1.0 down machine=xyz"), std::invalid_argument);
  // strtoull would silently wrap a negative index to SIZE_MAX.
  EXPECT_THROW(parse_event("t=1.0 down machine=-1"), std::invalid_argument);
  EXPECT_THROW(parse_event("t=1.0 cancel task=-7"), std::invalid_argument);
  EXPECT_THROW(parse_event("t=1.0 up mips=2.0 bogus=1"),
               std::invalid_argument);
  EXPECT_THROW(parse_event("t=1.0 cancel task=7 extra"),
               std::invalid_argument);
  EXPECT_THROW(parse_event("t=1.0 slowdown machine=1 factor=2.0 junk=3"),
               std::invalid_argument);
}

// --- EtcMutator ------------------------------------------------------------

TEST(EtcMutator, InitialInstanceMatchesStaticWorkloadPath) {
  const auto spec = small_spec();
  EtcMutator mut(spec);
  const etc::EtcMatrix reference = batch::make_workload_etc(spec);
  EXPECT_EQ(mut.etc().fingerprint(), reference.fingerprint());
}

TEST(EtcMutator, SlowdownScalesInPlaceBothLayouts) {
  EtcMutator mut(small_spec());
  const etc::EtcMatrix before = mut.etc();  // snapshot copy
  const auto out = mut.apply(machine_slowdown(2, 1.5));
  EXPECT_FALSE(out.shape_changed);
  EXPECT_DOUBLE_EQ(out.factor, 1.5);
  const etc::EtcMatrix& after = mut.etc();
  for (std::size_t t = 0; t < before.tasks(); ++t) {
    for (std::size_t m = 0; m < before.machines(); ++m) {
      const double expected = m == 2 ? before(t, m) * 1.5 : before(t, m);
      EXPECT_DOUBLE_EQ(after(t, m), expected);
      EXPECT_DOUBLE_EQ(after.task_major_at(t, m), expected);  // both layouts
    }
  }
  EXPECT_NE(after.fingerprint(), before.fingerprint());  // summary refreshed
}

TEST(EtcMutator, SlowdownClampBoundsAccumulation) {
  EtcMutator mut(small_spec());
  const double e0 = mut.etc()(0, 0);
  for (int i = 0; i < 100; ++i) {
    (void)mut.apply(machine_slowdown(0, 3.0));
  }
  // 3^100 would overflow; the clamp pins accumulated slowdown at kMax.
  EXPECT_NEAR(mut.etc()(0, 0), e0 * EtcMutator::kMaxSlowdown,
              1e-9 * e0 * EtcMutator::kMaxSlowdown);
  // And recovery works back down.
  for (int i = 0; i < 200; ++i) {
    (void)mut.apply(machine_slowdown(0, 0.5));
  }
  EXPECT_NEAR(mut.etc()(0, 0), e0 / EtcMutator::kMaxSlowdown,
              1e-9 * e0 / EtcMutator::kMaxSlowdown);
}

TEST(EtcMutator, ClampPinsOutcomeFactorAtBothEdges) {
  // The [1/64, 64] accumulated-slowdown clamp is part of the API contract
  // (mutator.hpp): at either edge the event is PARTIALLY applied and
  // Outcome::factor reports what was realized — exactly 1.0 once the
  // machine is pinned and the event pushes further outward.
  EtcMutator mut(small_spec());
  const double e0 = mut.etc()(0, 0);

  // Upper edge: 32 * 4 = 128 overshoots; only 64/32 = 2 is realized.
  (void)mut.apply(machine_slowdown(0, 32.0));
  auto out = mut.apply(machine_slowdown(0, 4.0));
  EXPECT_DOUBLE_EQ(out.factor, 2.0);
  out = mut.apply(machine_slowdown(0, 1.5));  // pinned: swallowed entirely
  EXPECT_DOUBLE_EQ(out.factor, 1.0);
  EXPECT_NEAR(mut.etc()(0, 0), e0 * EtcMutator::kMaxSlowdown,
              1e-9 * e0 * EtcMutator::kMaxSlowdown);
  // A recovery moves a pinned machine off the edge normally.
  out = mut.apply(machine_slowdown(0, 0.5));
  EXPECT_DOUBLE_EQ(out.factor, 0.5);

  // Lower edge: accumulated 1/32 (= 64/32/64), pushing to 1/128 realizes
  // only 1/2; once pinned, a further recovery is swallowed.
  out = mut.apply(machine_slowdown(0, 1.0 / 64.0));
  EXPECT_DOUBLE_EQ(out.factor, 1.0 / 64.0);  // 32 -> 1/2: inside the range
  out = mut.apply(machine_slowdown(0, 1.0 / 128.0));
  EXPECT_DOUBLE_EQ(out.factor, 1.0 / 32.0);  // 1/2 -> clamped at 1/64
  out = mut.apply(machine_slowdown(0, 0.25));
  EXPECT_DOUBLE_EQ(out.factor, 1.0);  // pinned at the lower edge
  EXPECT_NEAR(mut.etc()(0, 0), e0 / EtcMutator::kMaxSlowdown,
              1e-9 * e0 / EtcMutator::kMaxSlowdown);
  // Model and matrix stayed in lockstep through every clamped apply.
  EXPECT_EQ(mut.etc().fingerprint(), mut.rebuild().fingerprint());
}

TEST(EtcMutator, MachineUpReadyMaterializesIntoTheMatrix) {
  EtcMutator mut(small_spec());
  const auto out = mut.apply(machine_up_ready(4.0, 75.0));
  EXPECT_TRUE(out.shape_changed);
  EXPECT_EQ(out.machine, 6u);
  EXPECT_DOUBLE_EQ(mut.etc().ready(6), 75.0);
  for (std::size_t m = 0; m < 6; ++m) {
    EXPECT_DOUBLE_EQ(mut.etc().ready(m), 0.0);
  }
  // Ready times survive rebuilds and participate in the fingerprint.
  EXPECT_EQ(mut.etc().fingerprint(), mut.rebuild().fingerprint());
  EXPECT_THROW(mut.apply(machine_up_ready(4.0, -1.0)), std::invalid_argument);
  EXPECT_THROW(
      mut.apply(machine_up_ready(4.0, std::numeric_limits<double>::infinity())),
      std::invalid_argument);
}

TEST(EtcMutator, CommitEpochFeedsStartedWorkBackIntoReady) {
  const auto spec = small_spec();
  EtcMutator mut(spec);
  const sched::Schedule schedule = heur::min_min(mut.etc());
  const std::vector<double> before(schedule.completions().begin(),
                                   schedule.completions().end());
  const double elapsed = schedule.makespan() * 0.5;

  const auto out = mut.commit_epoch(schedule.assignment(), elapsed);
  EXPECT_EQ(out.removed_tasks.size(), out.completed + out.in_flight);
  EXPECT_GT(out.removed_tasks.size(), 0u);
  EXPECT_LT(out.removed_tasks.size(), 24u);
  EXPECT_EQ(mut.tasks(), 24u - out.removed_tasks.size());
  EXPECT_EQ(out.old_ready, std::vector<double>(6, 0.0));

  // The committed work's remainder is each machine's new ready time:
  // since every machine ran its queue from t=0, the boundary cuts its
  // completion to max(0, completion - elapsed) — and that remainder is
  // exactly what the new ready times + remaining assignments must re-add.
  for (std::size_t m = 0; m < 6; ++m) {
    EXPECT_GE(mut.etc().ready(m), 0.0);
    EXPECT_LE(mut.etc().ready(m), std::max(0.0, before[m] - elapsed) + 1e-9);
  }
  EXPECT_EQ(mut.etc().fingerprint(), mut.rebuild().fingerprint());

  // Execution profiles of surviving tasks are untouched (stable uids).
  EXPECT_EQ(mut.etc().tasks(), mut.tasks());
}

TEST(EtcMutator, CommitEpochValidatesAndLeavesInstanceOnThrow) {
  EtcMutator mut(small_spec());
  const sched::Schedule schedule = heur::min_min(mut.etc());
  const auto fp = mut.etc().fingerprint();

  // Wrong assignment size.
  const std::vector<sched::MachineId> short_assignment(23, 0);
  EXPECT_THROW(mut.commit_epoch(short_assignment, 10.0),
               std::invalid_argument);
  // Out-of-range machine id.
  std::vector<sched::MachineId> bad(24, 0);
  bad[3] = 6;
  EXPECT_THROW(mut.commit_epoch(bad, 10.0), std::invalid_argument);
  // Non-positive elapsed.
  EXPECT_THROW(mut.commit_epoch(schedule.assignment(), 0.0),
               std::invalid_argument);
  // A window past the makespan would commit everything: domain error.
  EXPECT_THROW(
      mut.commit_epoch(schedule.assignment(), schedule.makespan() * 2.0),
      std::domain_error);

  EXPECT_EQ(mut.etc().fingerprint(), fp);
  EXPECT_EQ(mut.tasks(), 24u);
  EXPECT_EQ(mut.events_applied(), 0u);
}

TEST(EtcMutator, ShapeChangesReportOutcome) {
  EtcMutator mut(small_spec());
  auto out = mut.apply(task_arrival(500.0));
  EXPECT_TRUE(out.shape_changed);
  EXPECT_EQ(out.task, 24u);  // appended at the end
  EXPECT_EQ(mut.tasks(), 25u);

  out = mut.apply(machine_up(4.0));
  EXPECT_TRUE(out.shape_changed);
  EXPECT_EQ(out.machine, 6u);
  EXPECT_EQ(mut.machines(), 7u);

  out = mut.apply(machine_down(2));
  EXPECT_EQ(out.machine, 2u);
  EXPECT_EQ(mut.machines(), 6u);

  out = mut.apply(task_cancel(10));
  EXPECT_EQ(out.task, 10u);
  EXPECT_EQ(out.removed_task_etc.size(), 6u);
  EXPECT_EQ(mut.tasks(), 24u);
}

TEST(EtcMutator, CancelOutcomeCarriesExactRemovedRow) {
  EtcMutator mut(small_spec());
  std::vector<double> row;
  {
    const auto span = mut.etc().of_task(10);
    row.assign(span.begin(), span.end());
  }
  const auto out = mut.apply(task_cancel(10));
  EXPECT_EQ(out.removed_task_etc, row);
}

TEST(EtcMutator, ExecutionProfilesSurviveChurn) {
  // A task's ETC row (vs surviving machines) must be unchanged by
  // unrelated arrivals/cancels — the stable-uid noise contract.
  EtcMutator mut(small_spec());
  const double kept = mut.etc()(20, 3);
  (void)mut.apply(task_cancel(0));   // task 20 shifts to row 19
  (void)mut.apply(task_arrival(77.0));
  (void)mut.apply(machine_down(0));  // machine 3 shifts to column 2
  EXPECT_DOUBLE_EQ(mut.etc()(19, 2), kept);
}

TEST(EtcMutator, RebuildAgreesWithIncrementalMatrix) {
  EtcMutator mut(small_spec());
  (void)mut.apply(machine_slowdown(1, 1.7));
  (void)mut.apply(task_arrival(900.0));
  (void)mut.apply(machine_slowdown(1, 1.3));
  (void)mut.apply(machine_down(4));
  const etc::EtcMatrix rebuilt = mut.rebuild();
  ASSERT_EQ(rebuilt.tasks(), mut.tasks());
  ASSERT_EQ(rebuilt.machines(), mut.machines());
  for (std::size_t t = 0; t < rebuilt.tasks(); ++t) {
    for (std::size_t m = 0; m < rebuilt.machines(); ++m) {
      EXPECT_NEAR(mut.etc()(t, m), rebuilt(t, m), 1e-9 * rebuilt(t, m));
    }
  }
}

TEST(EtcMutator, InvariantViolationsThrowAndLeaveInstanceUntouched) {
  batch::WorkloadSpec w = small_spec();
  w.tasks = 1;
  w.machines = 1;
  EtcMutator mut(w);
  const std::uint64_t fp = mut.etc().fingerprint();
  EXPECT_THROW(mut.apply(machine_down(0)), std::domain_error);
  EXPECT_THROW(mut.apply(task_cancel(0)), std::domain_error);
  EXPECT_THROW(mut.apply(machine_down(5)), std::invalid_argument);
  EXPECT_THROW(mut.apply(task_cancel(5)), std::invalid_argument);
  EXPECT_THROW(mut.apply(machine_slowdown(0, -1.0)), std::invalid_argument);
  EXPECT_THROW(mut.apply(machine_up(0.0)), std::invalid_argument);
  EXPECT_THROW(mut.apply(task_arrival(-3.0)), std::invalid_argument);
  EXPECT_EQ(mut.etc().fingerprint(), fp);
  EXPECT_EQ(mut.events_applied(), 0u);
}

// --- ScheduleRepairer ------------------------------------------------------

struct RepairFixture {
  RepairFixture() : mut(small_spec()), schedule(heur::min_min(mut.etc())) {}

  RepairStats apply(const GridEvent& e, RepairPolicy policy) {
    ScheduleRepairer repairer(policy);
    const auto outcome = mut.apply(e);
    return repairer.repair(outcome, mut.etc(), schedule);
  }

  EtcMutator mut;
  sched::Schedule schedule;
};

TEST(ScheduleRepairer, MachineDownOrphansOnlyItsTasks) {
  for (const RepairPolicy policy :
       {RepairPolicy::kMinMin, RepairPolicy::kSufferage}) {
    RepairFixture f;
    const std::size_t on_down = f.schedule.tasks_on(2);
    std::vector<sched::MachineId> before(f.schedule.assignment().begin(),
                                         f.schedule.assignment().end());
    const RepairStats stats = f.apply(machine_down(2), policy);
    EXPECT_EQ(stats.orphaned, on_down);
    EXPECT_EQ(stats.reassigned, on_down);
    EXPECT_TRUE(stats.shape_changed);
    ASSERT_EQ(f.schedule.machines(), 5u);
    EXPECT_TRUE(f.schedule.validate());
    // Non-orphans keep their machine, modulo the index shift.
    for (std::size_t t = 0; t < before.size(); ++t) {
      if (before[t] == 2) continue;
      const sched::MachineId expected =
          before[t] > 2 ? static_cast<sched::MachineId>(before[t] - 1)
                        : before[t];
      EXPECT_EQ(f.schedule.machine_of(t), expected);
    }
  }
}

TEST(ScheduleRepairer, ArrivalPlacesExactlyTheNewTask) {
  RepairFixture f;
  std::vector<sched::MachineId> before(f.schedule.assignment().begin(),
                                       f.schedule.assignment().end());
  const RepairStats stats = f.apply(task_arrival(1234.0), RepairPolicy::kMinMin);
  EXPECT_EQ(stats.orphaned, 1u);
  ASSERT_EQ(f.schedule.tasks(), 25u);
  EXPECT_TRUE(f.schedule.validate());
  for (std::size_t t = 0; t < before.size(); ++t) {
    EXPECT_EQ(f.schedule.machine_of(t), before[t]);
  }
}

TEST(ScheduleRepairer, CancelShedsLoadWithoutMovingOthers) {
  RepairFixture f;
  std::vector<sched::MachineId> before(f.schedule.assignment().begin(),
                                       f.schedule.assignment().end());
  const sched::MachineId victim_machine = before[10];
  const double load_before = f.schedule.completion(victim_machine);
  const RepairStats stats = f.apply(task_cancel(10), RepairPolicy::kMinMin);
  EXPECT_EQ(stats.orphaned, 0u);
  ASSERT_EQ(f.schedule.tasks(), 23u);
  EXPECT_TRUE(f.schedule.validate());
  EXPECT_LT(f.schedule.completion(victim_machine), load_before);
  for (std::size_t t = 0; t < f.schedule.tasks(); ++t) {
    EXPECT_EQ(f.schedule.machine_of(t), before[t < 10 ? t : t + 1]);
  }
}

TEST(ScheduleRepairer, UpAndSlowdownKeepAssignmentPatchCache) {
  RepairFixture f;
  const double makespan0 = f.schedule.makespan();
  RepairStats stats = f.apply(machine_up(7.5), RepairPolicy::kMinMin);
  EXPECT_EQ(stats.orphaned, 0u);
  ASSERT_EQ(f.schedule.machines(), 7u);
  EXPECT_TRUE(f.schedule.validate());
  EXPECT_DOUBLE_EQ(f.schedule.completion(6), 0.0);  // newcomer idle
  EXPECT_DOUBLE_EQ(f.schedule.makespan(), makespan0);

  stats = f.apply(machine_slowdown(0, 2.0), RepairPolicy::kMinMin);
  EXPECT_EQ(stats.orphaned, 0u);
  EXPECT_FALSE(stats.shape_changed);
  EXPECT_TRUE(f.schedule.validate());
}

// The repairer's orphan reassignment runs the cached-best-machine +
// invalidation rewrite; this reference is the naive exhaustive-rescan
// loop it replaced (global scan per round, in-order strict comparisons).
// The rewrite must match it pick for pick — including exact ties.
void naive_reassign(const etc::EtcMatrix& etc, RepairPolicy policy,
                    std::vector<sched::MachineId>& assignment,
                    std::vector<double>& completion,
                    std::vector<std::size_t> orphans) {
  while (!orphans.empty()) {
    std::size_t pick_pos = 0;
    sched::MachineId pick_machine = 0;
    if (policy == RepairPolicy::kMinMin) {
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < orphans.size(); ++i) {
        const std::size_t t = orphans[i];
        for (std::size_t m = 0; m < etc.machines(); ++m) {
          const double c = completion[m] + etc(t, m);
          if (c < best) {
            best = c;
            pick_pos = i;
            pick_machine = static_cast<sched::MachineId>(m);
          }
        }
      }
    } else {
      double best_sufferage = -1.0;
      for (std::size_t i = 0; i < orphans.size(); ++i) {
        const std::size_t t = orphans[i];
        double best = std::numeric_limits<double>::infinity();
        double second = std::numeric_limits<double>::infinity();
        sched::MachineId best_m = 0;
        for (std::size_t m = 0; m < etc.machines(); ++m) {
          const double c = completion[m] + etc(t, m);
          if (c < best) {
            second = best;
            best = c;
            best_m = static_cast<sched::MachineId>(m);
          } else if (c < second) {
            second = c;
          }
        }
        const double sufferage = etc.machines() > 1 ? second - best : 0.0;
        if (sufferage > best_sufferage) {
          best_sufferage = sufferage;
          pick_pos = i;
          pick_machine = best_m;
        }
      }
    }
    const std::size_t task = orphans[pick_pos];
    assignment[task] = pick_machine;
    completion[pick_machine] += etc(task, pick_machine);
    orphans.erase(orphans.begin() + static_cast<std::ptrdiff_t>(pick_pos));
  }
}

TEST(ScheduleRepairer, CachedReassignmentMatchesNaiveReference) {
  for (const auto policy : {RepairPolicy::kMinMin, RepairPolicy::kSufferage}) {
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      batch::WorkloadSpec w = small_spec(seed);
      w.tasks = 60;
      w.machines = 8;
      RescheduleSession session(w, policy);

      // Machine-down: the multi-orphan case. Snapshot the pre-event
      // state, replay the remap + naive reassignment by hand, and demand
      // the repaired schedule match assignment for assignment.
      const auto pre_assign = session.schedule().assignment();
      const auto pre_completion = session.schedule().completions();
      const std::size_t down = seed % w.machines;
      std::vector<sched::MachineId> expect(pre_assign.begin(),
                                           pre_assign.end());
      std::vector<double> completion(pre_completion.begin(),
                                     pre_completion.end());
      std::vector<std::size_t> orphans;
      for (std::size_t t = 0; t < expect.size(); ++t) {
        if (expect[t] == down) {
          orphans.push_back(t);
        } else if (expect[t] > down) {
          --expect[t];
        }
      }
      completion.erase(completion.begin() + static_cast<std::ptrdiff_t>(down));
      session.apply(machine_down(down));
      naive_reassign(session.etc(), policy, expect, completion, orphans);
      ASSERT_EQ(session.schedule().assignment().size(), expect.size());
      for (std::size_t t = 0; t < expect.size(); ++t) {
        ASSERT_EQ(session.schedule().machine_of(t), expect[t])
            << to_string(policy) << " seed " << seed << " task " << t;
      }

      // Task arrival: the single-orphan case on the already-churned grid.
      auto arrived(std::vector<sched::MachineId>(
          session.schedule().assignment().begin(),
          session.schedule().assignment().end()));
      std::vector<double> arr_completion(session.schedule().completions().begin(),
                                         session.schedule().completions().end());
      session.apply(task_arrival(1500.0));
      arrived.push_back(0);
      naive_reassign(session.etc(), policy, arrived, arr_completion,
                     {arrived.size() - 1});
      for (std::size_t t = 0; t < arrived.size(); ++t) {
        ASSERT_EQ(session.schedule().machine_of(t), arrived[t])
            << to_string(policy) << " seed " << seed << " arrival task " << t;
      }
    }
  }
}

TEST(ScheduleRepairer, StaleScheduleShapeThrows) {
  EtcMutator mut(small_spec());
  sched::Schedule schedule = heur::min_min(mut.etc());
  ScheduleRepairer repairer;
  (void)mut.apply(task_arrival(100.0));
  const auto second = mut.apply(task_arrival(100.0));
  // `schedule` is TWO events behind; repairing it with only the latest
  // outcome cannot line the sizes up and must throw without touching it.
  const double makespan = schedule.makespan();
  EXPECT_THROW(repairer.repair(second, mut.etc(), schedule),
               std::invalid_argument);
  EXPECT_DOUBLE_EQ(schedule.makespan(), makespan);
}

// --- event stream ----------------------------------------------------------

batch::EventStreamSpec stream_spec(std::uint64_t seed = 9) {
  batch::EventStreamSpec s;
  s.initial_tasks = 24;
  s.initial_machines = 6;
  s.max_events = 200;
  s.seed = seed;
  return s;
}

TEST(EventStream, DeterministicInSeed) {
  const auto a = batch::generate_event_stream(stream_spec());
  const auto b = batch::generate_event_stream(stream_spec());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(format_event(a[i]), format_event(b[i]));
  }
  const auto c = batch::generate_event_stream(stream_spec(10));
  bool differs = a.size() != c.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = format_event(a[i]) != format_event(c[i]);
  }
  EXPECT_TRUE(differs);
}

TEST(EventStream, EveryEventIsLegalAgainstALiveMutator) {
  auto spec = stream_spec();
  spec.max_events = 500;
  // Aggressive churn rates to stress the legality gating.
  spec.cancel_rate = 4.0;
  spec.down_rate = 2.0;
  const auto stream = batch::generate_event_stream(spec);
  ASSERT_EQ(stream.size(), 500u);
  batch::WorkloadSpec w = small_spec();
  EtcMutator mut(w);
  for (const auto& e : stream) {
    ASSERT_NO_THROW(mut.apply(e)) << format_event(e);
  }
}

TEST(EventStream, ZeroRateDisablesAKind) {
  auto spec = stream_spec();
  spec.arrival_rate = 0.0;
  spec.cancel_rate = 0.0;
  spec.down_rate = 0.0;
  spec.up_rate = 0.0;  // only slowdowns remain
  const auto stream = batch::generate_event_stream(spec);
  ASSERT_FALSE(stream.empty());
  for (const auto& e : stream) {
    EXPECT_EQ(e.kind, EventKind::kMachineSlowdown);
  }
}

TEST(EventStream, UpReadyKnobGatesJoiningReadyTimes) {
  batch::EventStreamSpec spec;
  spec.initial_tasks = 16;
  spec.initial_machines = 4;
  spec.arrival_rate = spec.cancel_rate = spec.down_rate = 0.0;
  spec.slowdown_rate = 0.0;
  spec.up_rate = 1.0;
  spec.max_events = 64;
  spec.seed = 3;

  // Default: joins are ready-free (the pre-ready-time byte format).
  for (const GridEvent& e : batch::generate_event_stream(spec)) {
    ASSERT_EQ(e.kind, EventKind::kMachineUp);
    EXPECT_DOUBLE_EQ(e.ready, 0.0);
  }
  // With the knob: every join carries ready in [0, hi), and the stream is
  // legal against a live session (ready times repair cleanly).
  spec.up_ready_hi = 300.0;
  bool any_positive = false;
  RescheduleSession session(small_spec());
  for (const GridEvent& e : batch::generate_event_stream(spec)) {
    EXPECT_GE(e.ready, 0.0);
    EXPECT_LT(e.ready, 300.0);
    any_positive = any_positive || e.ready > 0.0;
    (void)session.apply(e);
    ASSERT_TRUE(session.schedule().validate()) << format_event(e);
  }
  EXPECT_TRUE(any_positive);
}

TEST(EventStream, ValidatesSpec) {
  auto spec = stream_spec();
  spec.duration = 0.0;
  EXPECT_THROW(batch::generate_event_stream(spec), std::invalid_argument);
  spec = stream_spec();
  spec.arrival_rate = -1.0;
  EXPECT_THROW(batch::generate_event_stream(spec), std::invalid_argument);
  spec = stream_spec();
  spec.arrival_rate = spec.cancel_rate = spec.down_rate = spec.up_rate =
      spec.slowdown_rate = 0.0;
  EXPECT_THROW(batch::generate_event_stream(spec), std::invalid_argument);
  spec = stream_spec();
  spec.initial_machines = 0;
  EXPECT_THROW(batch::generate_event_stream(spec), std::invalid_argument);
  spec = stream_spec();
  spec.slowdown_lo = 0.5;  // factors below 1 arise via inversion, not range
  EXPECT_THROW(batch::generate_event_stream(spec), std::invalid_argument);
}

// --- RescheduleSession -----------------------------------------------------

TEST(RescheduleSession, MaintainsAValidScheduleThroughEvents) {
  RescheduleSession session(small_spec());
  EXPECT_TRUE(session.schedule().validate());
  const auto stream = batch::generate_event_stream(stream_spec());
  for (const auto& e : stream) {
    (void)session.apply(e);
    ASSERT_TRUE(session.schedule().validate()) << format_event(e);
    ASSERT_EQ(session.schedule().tasks(), session.tasks());
    ASSERT_EQ(session.schedule().machines(), session.machines());
  }
}

TEST(RescheduleSession, CommitEpochShiftsCompletionsByTheWindow) {
  // The clean invariant of an epoch commit: every machine ran its queue
  // for `elapsed` units, so its completion drops to
  // max(0, completion - elapsed) — committed work became ready time,
  // unstarted work stayed assigned. The repairer must reproduce this
  // through its incremental cache patch (adopt_with_completions
  // cross-validates in debug builds).
  RescheduleSession session(small_spec());
  const std::vector<double> before(session.schedule().completions().begin(),
                                   session.schedule().completions().end());
  const double elapsed = session.schedule().makespan() * 0.4;

  const RepairStats stats = session.apply(epoch_commit(elapsed));
  EXPECT_EQ(stats.kind, EventKind::kEpochCommit);
  EXPECT_EQ(stats.orphaned, 0u);
  EXPECT_GT(stats.committed, 0u);
  EXPECT_TRUE(stats.shape_changed);
  EXPECT_EQ(session.tasks(), 24u - stats.committed);
  ASSERT_TRUE(session.schedule().validate());
  for (std::size_t m = 0; m < session.machines(); ++m) {
    EXPECT_NEAR(session.schedule().completion(m),
                std::max(0.0, before[m] - elapsed), 1e-6 * before[m] + 1e-9);
  }

  // A second commit keeps compounding (ready times now nonzero).
  const std::vector<double> mid(session.schedule().completions().begin(),
                                session.schedule().completions().end());
  const RepairStats again = session.commit_epoch(elapsed * 0.5);
  ASSERT_TRUE(session.schedule().validate());
  for (std::size_t m = 0; m < session.machines(); ++m) {
    EXPECT_NEAR(session.schedule().completion(m),
                std::max(0.0, mid[m] - elapsed * 0.5), 1e-6 * mid[m] + 1e-9);
  }
  EXPECT_EQ(again.kind, EventKind::kEpochCommit);
}

TEST(RescheduleSession, CommittedWorkFlowsIntoTheWarmStartSpec) {
  RescheduleSession session(small_spec());
  (void)session.commit_epoch(session.schedule().makespan() * 0.5);
  const service::JobSpec spec = session.make_reschedule_spec(0, 50.0, 7);
  ASSERT_TRUE(spec.etc != nullptr);
  // The snapshot carries the post-commit ready times, so the service's
  // warm CGA optimizes around work already underway.
  double total_ready = 0.0;
  for (std::size_t m = 0; m < spec.etc->machines(); ++m) {
    total_ready += spec.etc->ready(m);
  }
  EXPECT_GT(total_ready, 0.0);
  EXPECT_EQ(spec.warm_start.size(), session.tasks());
  // And the warm start evaluates on that snapshot to the session makespan.
  const sched::Schedule seeded(*spec.etc, spec.warm_start);
  EXPECT_NEAR(seeded.makespan(), session.schedule().makespan(),
              1e-9 * seeded.makespan());
}

TEST(RescheduleSession, MachineReturnsWithReadyTimeForInFlightWork) {
  // The down-and-return story: the machine's replacement joins busy, and
  // repair seeds its completion at the ready time, so nothing lands on it
  // until the backlog clears (or re-optimization decides it is worth the
  // wait).
  RescheduleSession session(small_spec());
  (void)session.apply(machine_down(2));
  const RepairStats stats = session.apply(machine_up_ready(5.0, 400.0));
  EXPECT_EQ(stats.orphaned, 0u);
  ASSERT_TRUE(session.schedule().validate());
  EXPECT_EQ(session.machines(), 6u);
  EXPECT_DOUBLE_EQ(session.etc().ready(5), 400.0);
  EXPECT_DOUBLE_EQ(session.schedule().completion(5), 400.0);
  EXPECT_EQ(session.schedule().tasks_on(5), 0u);
}

TEST(RescheduleSession, SpecCarriesSnapshotAndWarmStart) {
  RescheduleSession session(small_spec());
  (void)session.apply(machine_down(1));
  const service::JobSpec spec = session.make_reschedule_spec(2, 50.0, 7);
  ASSERT_NE(spec.etc, nullptr);
  EXPECT_EQ(spec.etc->fingerprint(), session.etc().fingerprint());
  EXPECT_EQ(spec.priority, 2);
  ASSERT_EQ(spec.warm_start.size(), session.tasks());
  for (std::size_t t = 0; t < session.tasks(); ++t) {
    EXPECT_EQ(spec.warm_start[t], session.schedule().machine_of(t));
  }
  // The snapshot is independent of later churn.
  (void)session.apply(task_arrival(10.0));
  EXPECT_NE(spec.etc->tasks(), session.tasks());
}

TEST(RescheduleSession, AdoptRejectsStaleOrWorseResults) {
  RescheduleSession session(small_spec());
  std::vector<sched::MachineId> current(session.schedule().assignment().begin(),
                                        session.schedule().assignment().end());
  EXPECT_FALSE(session.adopt(current));  // equal makespan: not an improvement

  std::vector<sched::MachineId> stale = current;
  stale.pop_back();
  EXPECT_FALSE(session.adopt(stale));  // wrong shape

  // A genuinely better assignment (steal from the most loaded machine)
  // is adopted... construct one by brute force: move one task off the
  // argmax machine to the argmin machine if that helps.
  sched::Schedule trial = session.schedule();
  const auto loaded = static_cast<sched::MachineId>(trial.argmax_machine());
  const auto idle = static_cast<sched::MachineId>(trial.argmin_machine());
  for (std::size_t t = 0; t < trial.tasks(); ++t) {
    if (trial.machine_of(t) != loaded) continue;
    sched::Schedule probe = trial;
    probe.move_task(t, idle);
    if (probe.makespan() < session.schedule().makespan()) {
      std::vector<sched::MachineId> better(probe.assignment().begin(),
                                           probe.assignment().end());
      EXPECT_TRUE(session.adopt(better));
      EXPECT_DOUBLE_EQ(session.schedule().makespan(), probe.makespan());
      return;
    }
  }
  GTEST_SKIP() << "min-min schedule not improvable by a single move";
}

TEST(RescheduleSession, ShapeEpochTracksShapeChanges) {
  RescheduleSession session(small_spec());
  EXPECT_EQ(session.shape_epoch(), 0u);
  (void)session.apply(machine_slowdown(0, 1.5));
  EXPECT_EQ(session.shape_epoch(), 0u);  // shape preserved
  (void)session.apply(task_arrival(42.0));
  EXPECT_EQ(session.shape_epoch(), 1u);
}

}  // namespace
}  // namespace pacga::dynamic

// --- Population::seed_cell (warm-start injection) --------------------------

namespace pacga::cga {
namespace {

TEST(PopulationSeedCell, AdoptsAssignmentAndFitness) {
  batch::WorkloadSpec w;
  w.tasks = 24;
  w.machines = 6;
  w.seed = 5;
  const etc::EtcMatrix m = batch::make_workload_etc(w);
  support::Xoshiro256 rng(1);
  Population pop(m, Grid(4, 4), rng, /*seed_min_min=*/false,
                 sched::Objective::kMakespan);
  const sched::Schedule seed = heur::min_min(m);
  pop.seed_cell(1, m, seed.assignment(), sched::Objective::kMakespan, 0.75);
  EXPECT_EQ(pop.at(1).schedule, seed);
  EXPECT_DOUBLE_EQ(pop.at(1).fitness, seed.makespan());
  EXPECT_THROW(pop.seed_cell(99, m, seed.assignment(),
                             sched::Objective::kMakespan, 0.75),
               std::invalid_argument);
}

}  // namespace
}  // namespace pacga::cga
