#include "heuristics/listsched.hpp"
#include "heuristics/minmin.hpp"
#include "heuristics/sufferage.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "support/stats.hpp"

#include "etc/suite.hpp"

namespace pacga::heur {
namespace {

etc::EtcMatrix tiny() {
  // 3 tasks x 2 machines. Machine 0 uniformly faster (consistent).
  return etc::EtcMatrix(3, 2, {1.0, 2.0, 2.0, 4.0, 3.0, 6.0});
}

TEST(MinMin, HandCheckedTiny) {
  const auto m = tiny();
  const auto s = min_min(m);
  // Round 1: best CTs are 1,2,3 on machine 0 -> task 0 to m0 (ct 1).
  // Round 2: task1 m0 ct=3 vs m1 ct=4 -> best 3; task2 m0 ct=4 vs m1 6 ->
  //          best 4; choose task1 on m0 (ct 3).
  // Round 3: task2 m0 ct=6, m1 ct=6 -> tie, first machine wins (m0).
  EXPECT_EQ(s.machine_of(0), 0);
  EXPECT_EQ(s.machine_of(1), 0);
  EXPECT_DOUBLE_EQ(s.makespan(), 6.0);
  EXPECT_TRUE(s.validate());
}

TEST(MaxMin, HandCheckedTiny) {
  const auto m = tiny();
  const auto s = max_min(m);
  // Round 1: best-CTs: t0->1, t1->2, t2->3; Max-min picks t2 on m0.
  EXPECT_EQ(s.machine_of(2), 0);
  EXPECT_TRUE(s.validate());
}

TEST(Mct, ProcessesInOrder) {
  const auto m = tiny();
  const auto s = mct(m);
  // t0 -> m0 (1 vs 2). t1: m0=1+2=3, m1=4 -> m0. t2: m0=3+3=6, m1=6 -> m0.
  EXPECT_EQ(s.machine_of(0), 0);
  EXPECT_EQ(s.machine_of(1), 0);
  EXPECT_EQ(s.machine_of(2), 0);
  EXPECT_TRUE(s.validate());
}

TEST(Met, IgnoresLoad) {
  const auto m = tiny();
  const auto s = met(m);
  // Machine 0 has the minimum ETC for every task on this consistent matrix.
  for (std::size_t t = 0; t < 3; ++t) EXPECT_EQ(s.machine_of(t), 0);
}

TEST(Olb, BalancesByReadiness) {
  const auto m = tiny();
  const auto s = olb(m);
  // t0 -> m0 (both ready at 0, lowest index). t1 -> m1 (m0 busy 1).
  // t2 -> m0 (ready 1 < 4).
  EXPECT_EQ(s.machine_of(0), 0);
  EXPECT_EQ(s.machine_of(1), 1);
  EXPECT_EQ(s.machine_of(2), 0);
  EXPECT_TRUE(s.validate());
}

TEST(RandomSchedule, ValidAndSeedDependent) {
  const auto m = etc::generate_by_name("u_i_lolo.0");
  support::Xoshiro256 a(1), b(2);
  const auto sa = random_schedule(m, a);
  const auto sb = random_schedule(m, b);
  EXPECT_TRUE(sa.validate());
  EXPECT_GT(sa.hamming_distance(sb), 0u);
}

TEST(MinMin, RespectsReadyTimes) {
  // Machine 0 is fast but busy; ready times must steer work to machine 1.
  etc::EtcMatrix m(2, 2, {1.0, 2.0, 1.0, 2.0}, {100.0, 0.0});
  const auto s = min_min(m);
  EXPECT_EQ(s.machine_of(0), 1);
  EXPECT_EQ(s.machine_of(1), 1);
}

/// Property sweep over the whole Braun suite: heuristic quality ordering.
class HeuristicSuiteTest : public ::testing::TestWithParam<std::string> {};

TEST_P(HeuristicSuiteTest, MinMinBeatsRandomAndValidates) {
  const auto m = etc::generate_by_name(GetParam());
  const auto mm = min_min(m);
  const auto xm = max_min(m);
  const auto sf = sufferage(m);
  const auto ct = mct(m);
  const auto eb = met(m);
  const auto lb = olb(m);
  for (const auto* s : {&mm, &xm, &sf, &ct, &eb, &lb}) {
    EXPECT_TRUE(s->validate());
    EXPECT_GT(s->makespan(), 0.0);
  }
  support::Xoshiro256 rng(7);
  support::RunningStats random_ms;
  for (int i = 0; i < 10; ++i) {
    random_ms.add(sched::Schedule::random(m, rng).makespan());
  }
  // Min-min, MCT and Sufferage are far better than random assignment on
  // every Braun class (Braun et al. 2001).
  EXPECT_LT(mm.makespan(), random_ms.mean());
  EXPECT_LT(ct.makespan(), random_ms.mean());
  EXPECT_LT(sf.makespan(), random_ms.mean());
}

TEST_P(HeuristicSuiteTest, EveryTaskAssignedExactlyOnce) {
  const auto m = etc::generate_by_name(GetParam());
  const auto s = min_min(m);
  std::size_t total = 0;
  for (std::size_t k = 0; k < m.machines(); ++k) {
    total += s.tasks_on(static_cast<sched::MachineId>(k));
  }
  EXPECT_EQ(total, m.tasks());
}

INSTANTIATE_TEST_SUITE_P(BraunSuite, HeuristicSuiteTest,
                         ::testing::ValuesIn(etc::braun_suite_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (c == '.') c = '_';
                           }
                           return n;
                         });

// ---- accelerated vs naive reference equivalence --------------------------
//
// The cached-best-machine rewrites of Min-min / Max-min / Sufferage must
// produce the EXACT schedule of the textbook loops — assignment for
// assignment, tie-break for tie-break — on every instance shape, including
// machine counts below/straddling the SIMD width and nonzero ready times.

void expect_identical(const sched::Schedule& a, const sched::Schedule& b,
                      const char* what) {
  ASSERT_EQ(a.tasks(), b.tasks());
  EXPECT_EQ(a.hamming_distance(b), 0u) << what;
}

etc::EtcMatrix random_instance(std::size_t tasks, std::size_t machines,
                               std::uint64_t seed, bool with_ready) {
  support::Xoshiro256 rng(seed);
  std::vector<double> data(tasks * machines);
  for (auto& v : data) v = rng.uniform(1.0, 1000.0);
  std::vector<double> ready;
  if (with_ready) {
    ready.resize(machines);
    for (auto& r : ready) r = rng.uniform(0.0, 500.0);
  }
  return etc::EtcMatrix(tasks, machines, std::move(data), std::move(ready));
}

TEST(AcceleratedHeuristics, MatchNaiveOnRandomShapes) {
  const std::size_t shapes[][2] = {{1, 1},  {3, 1},  {5, 2},   {17, 3},
                                   {32, 4}, {40, 5}, {64, 8},  {50, 9},
                                   {96, 16}, {70, 33}};
  for (const auto& shape : shapes) {
    for (const bool with_ready : {false, true}) {
      const auto m = random_instance(shape[0], shape[1],
                                     41 + shape[0] * 7 + with_ready, with_ready);
      expect_identical(min_min(m), detail::min_min_naive(m), "min_min");
      expect_identical(max_min(m), detail::max_min_naive(m), "max_min");
      expect_identical(sufferage(m), detail::sufferage_naive(m), "sufferage");
    }
  }
}

TEST(AcceleratedHeuristics, MatchNaiveWithExactTies) {
  // A matrix full of repeated values forces ties in every round; the
  // accelerated paths must reproduce the naive loops' lowest-index picks.
  const std::size_t tasks = 24, machines = 6;
  support::Xoshiro256 rng(5);
  std::vector<double> data(tasks * machines);
  for (auto& v : data) v = 1.0 + static_cast<double>(rng.index(3));
  const etc::EtcMatrix m(tasks, machines, std::move(data));
  expect_identical(min_min(m), detail::min_min_naive(m), "min_min ties");
  expect_identical(max_min(m), detail::max_min_naive(m), "max_min ties");
  expect_identical(sufferage(m), detail::sufferage_naive(m), "sufferage ties");
}

TEST(AcceleratedHeuristics, MatchNaiveOnBraunSuite) {
  for (const auto& name : etc::braun_suite_names()) {
    const auto m = etc::generate_by_name(name);
    expect_identical(min_min(m), detail::min_min_naive(m), name.c_str());
    expect_identical(sufferage(m), detail::sufferage_naive(m), name.c_str());
  }
}

TEST(Duplex, KeepsTheBetterDual) {
  for (const auto& name : {"u_c_hihi.0", "u_i_lolo.0", "u_s_hilo.0"}) {
    const auto m = etc::generate_by_name(name);
    const auto d = duplex(m);
    const auto mm = min_min(m);
    const auto mx = max_min(m);
    EXPECT_DOUBLE_EQ(d.makespan(), std::min(mm.makespan(), mx.makespan()));
    EXPECT_TRUE(d.validate());
  }
}

TEST(MetDegeneracy, PilesOnFastestMachineWhenConsistent) {
  const auto m = etc::generate_by_name("u_c_hihi.0");
  const auto s = met(m);
  // On a consistent matrix one machine dominates: MET sends everything
  // there, which is the textbook failure mode.
  EXPECT_EQ(s.tasks_on(s.machine_of(0)), m.tasks());
}

}  // namespace
}  // namespace pacga::heur
