#include "heuristics/listsched.hpp"
#include "heuristics/minmin.hpp"
#include "heuristics/sufferage.hpp"

#include <gtest/gtest.h>

#include "support/stats.hpp"

#include "etc/suite.hpp"

namespace pacga::heur {
namespace {

etc::EtcMatrix tiny() {
  // 3 tasks x 2 machines. Machine 0 uniformly faster (consistent).
  return etc::EtcMatrix(3, 2, {1.0, 2.0, 2.0, 4.0, 3.0, 6.0});
}

TEST(MinMin, HandCheckedTiny) {
  const auto m = tiny();
  const auto s = min_min(m);
  // Round 1: best CTs are 1,2,3 on machine 0 -> task 0 to m0 (ct 1).
  // Round 2: task1 m0 ct=3 vs m1 ct=4 -> best 3; task2 m0 ct=4 vs m1 6 ->
  //          best 4; choose task1 on m0 (ct 3).
  // Round 3: task2 m0 ct=6, m1 ct=6 -> tie, first machine wins (m0).
  EXPECT_EQ(s.machine_of(0), 0);
  EXPECT_EQ(s.machine_of(1), 0);
  EXPECT_DOUBLE_EQ(s.makespan(), 6.0);
  EXPECT_TRUE(s.validate());
}

TEST(MaxMin, HandCheckedTiny) {
  const auto m = tiny();
  const auto s = max_min(m);
  // Round 1: best-CTs: t0->1, t1->2, t2->3; Max-min picks t2 on m0.
  EXPECT_EQ(s.machine_of(2), 0);
  EXPECT_TRUE(s.validate());
}

TEST(Mct, ProcessesInOrder) {
  const auto m = tiny();
  const auto s = mct(m);
  // t0 -> m0 (1 vs 2). t1: m0=1+2=3, m1=4 -> m0. t2: m0=3+3=6, m1=6 -> m0.
  EXPECT_EQ(s.machine_of(0), 0);
  EXPECT_EQ(s.machine_of(1), 0);
  EXPECT_EQ(s.machine_of(2), 0);
  EXPECT_TRUE(s.validate());
}

TEST(Met, IgnoresLoad) {
  const auto m = tiny();
  const auto s = met(m);
  // Machine 0 has the minimum ETC for every task on this consistent matrix.
  for (std::size_t t = 0; t < 3; ++t) EXPECT_EQ(s.machine_of(t), 0);
}

TEST(Olb, BalancesByReadiness) {
  const auto m = tiny();
  const auto s = olb(m);
  // t0 -> m0 (both ready at 0, lowest index). t1 -> m1 (m0 busy 1).
  // t2 -> m0 (ready 1 < 4).
  EXPECT_EQ(s.machine_of(0), 0);
  EXPECT_EQ(s.machine_of(1), 1);
  EXPECT_EQ(s.machine_of(2), 0);
  EXPECT_TRUE(s.validate());
}

TEST(RandomSchedule, ValidAndSeedDependent) {
  const auto m = etc::generate_by_name("u_i_lolo.0");
  support::Xoshiro256 a(1), b(2);
  const auto sa = random_schedule(m, a);
  const auto sb = random_schedule(m, b);
  EXPECT_TRUE(sa.validate());
  EXPECT_GT(sa.hamming_distance(sb), 0u);
}

TEST(MinMin, RespectsReadyTimes) {
  // Machine 0 is fast but busy; ready times must steer work to machine 1.
  etc::EtcMatrix m(2, 2, {1.0, 2.0, 1.0, 2.0}, {100.0, 0.0});
  const auto s = min_min(m);
  EXPECT_EQ(s.machine_of(0), 1);
  EXPECT_EQ(s.machine_of(1), 1);
}

/// Property sweep over the whole Braun suite: heuristic quality ordering.
class HeuristicSuiteTest : public ::testing::TestWithParam<std::string> {};

TEST_P(HeuristicSuiteTest, MinMinBeatsRandomAndValidates) {
  const auto m = etc::generate_by_name(GetParam());
  const auto mm = min_min(m);
  const auto xm = max_min(m);
  const auto sf = sufferage(m);
  const auto ct = mct(m);
  const auto eb = met(m);
  const auto lb = olb(m);
  for (const auto* s : {&mm, &xm, &sf, &ct, &eb, &lb}) {
    EXPECT_TRUE(s->validate());
    EXPECT_GT(s->makespan(), 0.0);
  }
  support::Xoshiro256 rng(7);
  support::RunningStats random_ms;
  for (int i = 0; i < 10; ++i) {
    random_ms.add(sched::Schedule::random(m, rng).makespan());
  }
  // Min-min, MCT and Sufferage are far better than random assignment on
  // every Braun class (Braun et al. 2001).
  EXPECT_LT(mm.makespan(), random_ms.mean());
  EXPECT_LT(ct.makespan(), random_ms.mean());
  EXPECT_LT(sf.makespan(), random_ms.mean());
}

TEST_P(HeuristicSuiteTest, EveryTaskAssignedExactlyOnce) {
  const auto m = etc::generate_by_name(GetParam());
  const auto s = min_min(m);
  std::size_t total = 0;
  for (std::size_t k = 0; k < m.machines(); ++k) {
    total += s.tasks_on(static_cast<sched::MachineId>(k));
  }
  EXPECT_EQ(total, m.tasks());
}

INSTANTIATE_TEST_SUITE_P(BraunSuite, HeuristicSuiteTest,
                         ::testing::ValuesIn(etc::braun_suite_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (c == '.') c = '_';
                           }
                           return n;
                         });

TEST(MetDegeneracy, PilesOnFastestMachineWhenConsistent) {
  const auto m = etc::generate_by_name("u_c_hihi.0");
  const auto s = met(m);
  // On a consistent matrix one machine dominates: MET sends everything
  // there, which is the textbook failure mode.
  EXPECT_EQ(s.tasks_on(s.machine_of(0)), m.tasks());
}

}  // namespace
}  // namespace pacga::heur
