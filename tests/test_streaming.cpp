// Streaming-scheduler tests:
//
//  * sched::warm_seed — ready-time-aware completion of a partial
//    assignment (the gap-filling step every warm start shares);
//  * service::StreamingSession — epoch-batched arrivals served through the
//    scheduler service: every task is eventually committed exactly once,
//    tails carry their machines into the next epoch's warm seed, warm
//    epochs go through submit_reschedule (never worse than the seed), and
//    a generation-capped stream is a pure function of its spec.
#include "service/streaming.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sched/seed.hpp"
#include "service/service.hpp"

namespace pacga::service {
namespace {

// --- sched::warm_seed ------------------------------------------------------

etc::EtcMatrix tiny_matrix() {
  // 4 tasks x 2 machines, machine 1 busy (ready 10).
  return etc::EtcMatrix(4, 2,
                        {1.0, 2.0,   // task 0
                         3.0, 1.0,   // task 1
                         2.0, 2.0,   // task 2
                         4.0, 1.0},  // task 3
                        {0.0, 10.0});
}

TEST(WarmSeed, KeepsAssignmentsAndFillsGapsByMinCompletion) {
  const etc::EtcMatrix etc = tiny_matrix();
  const std::vector<sched::MachineId> partial = {0, sched::kNoMachine, 1,
                                                 sched::kNoMachine};
  const sched::Schedule s = sched::warm_seed(etc, partial);
  // Assigned tasks kept their machines.
  EXPECT_EQ(s.machine_of(0), 0);
  EXPECT_EQ(s.machine_of(2), 1);
  // After charging tasks 0 and 2: completion = {1, 12}. Task 1 goes to
  // machine 0 (1+3=4 vs 12+1=13); task 3 too (4+4=8 vs 13).
  EXPECT_EQ(s.machine_of(1), 0);
  EXPECT_EQ(s.machine_of(3), 0);
  EXPECT_TRUE(s.validate());
  EXPECT_DOUBLE_EQ(s.completion(0), 8.0);
  EXPECT_DOUBLE_EQ(s.completion(1), 12.0);
}

TEST(WarmSeed, ReadyTimesSteerPlacement) {
  // Identical ETCs; only the ready times differ — the seed must respect
  // them or warm starts would overload machines draining committed work.
  const etc::EtcMatrix etc(2, 2, {1.0, 1.0, 1.0, 1.0}, {5.0, 0.0});
  const std::vector<sched::MachineId> none = {sched::kNoMachine,
                                              sched::kNoMachine};
  const sched::Schedule s = sched::warm_seed(etc, none);
  EXPECT_EQ(s.machine_of(0), 1);
  EXPECT_EQ(s.machine_of(1), 1);  // 2.0 on machine 1 still beats 5+1
}

TEST(WarmSeed, ValidatesItsInputs) {
  const etc::EtcMatrix etc = tiny_matrix();
  const std::vector<sched::MachineId> wrong_size = {0, 1};
  EXPECT_THROW((void)sched::warm_seed(etc, wrong_size),
               std::invalid_argument);
  const std::vector<sched::MachineId> out_of_range = {0, 1, 2,
                                                      sched::kNoMachine};
  EXPECT_THROW((void)sched::warm_seed(etc, out_of_range),
               std::invalid_argument);
}

// --- StreamingSession ------------------------------------------------------

StreamingSpec small_stream(bool warm) {
  StreamingSpec spec;
  spec.workload.tasks = 48;
  spec.workload.machines = 6;
  spec.workload.seed = 9;
  // Workload scale: ETC entries land around ~150; a 400-unit epoch forces
  // several epochs with both commits and carried tails.
  spec.epoch_length = 400.0;
  spec.deadline_ms = 2000.0;
  spec.max_generations = 20;  // determinism: budget in generations
  spec.policy = SolvePolicy::kCga;
  spec.seed = 4;
  spec.warm = warm;
  return spec;
}

TEST(StreamingSession, RunsToCompletionAndCommitsEveryTaskOnce) {
  SchedulerService svc;
  StreamingSession session(svc, small_stream(/*warm=*/true));
  std::size_t committed = 0;
  std::size_t carried = 0;
  while (!session.done()) {
    const EpochReport rep = session.step();
    committed += rep.committed;
    carried += rep.carried;
    if (rep.solved) {
      EXPECT_EQ(rep.batch_tasks, rep.carried + rep.arrivals);
      EXPECT_GT(rep.batch_makespan, 0.0);
    }
  }
  const StreamingMetrics& m = session.metrics();
  EXPECT_EQ(committed, 48u);
  EXPECT_EQ(m.committed_tasks, 48u);
  EXPECT_GT(m.epochs, 1u);
  EXPECT_GT(m.solved_batches, 1u);
  EXPECT_GT(carried, 0u);  // the scenario exercises real tails
  EXPECT_GT(m.completion_time, 0.0);
  EXPECT_GE(m.mean_response, m.mean_wait);
  EXPECT_GE(m.max_response, m.mean_response);
  EXPECT_GT(m.utilization, 0.0);
  EXPECT_LE(m.utilization, 1.0);
  EXPECT_THROW((void)session.step(), std::logic_error);
}

TEST(StreamingSession, WarmEpochsGoThroughReschedule) {
  SchedulerService svc;
  StreamingSession warm(svc, small_stream(/*warm=*/true));
  warm.run();
  EXPECT_EQ(warm.metrics().warm_epochs, warm.metrics().solved_batches);
  EXPECT_GT(svc.metrics().reschedules, 0u);

  SchedulerService cold_svc;
  StreamingSession cold(cold_svc, small_stream(/*warm=*/false));
  cold.run();
  EXPECT_EQ(cold.metrics().warm_epochs, 0u);
  EXPECT_EQ(cold_svc.metrics().reschedules, 0u);
  // Same scenario either way: both arms commit all 48 tasks.
  EXPECT_EQ(cold.metrics().committed_tasks, 48u);
}

TEST(StreamingSession, GenerationCappedStreamsAreDeterministic) {
  // With a generation cap the whole stream — per-epoch makespans
  // included — is a pure function of the spec, across runs and worker
  // counts (the same discipline as the service determinism tests).
  auto trace = [](std::size_t workers) {
    ServiceOptions options;
    options.workers = workers;
    SchedulerService svc(options);
    StreamingSession session(svc, small_stream(/*warm=*/true));
    std::vector<double> makespans;
    while (!session.done()) {
      const EpochReport rep = session.step();
      if (rep.solved) makespans.push_back(rep.batch_makespan);
    }
    makespans.push_back(session.metrics().completion_time);
    makespans.push_back(session.metrics().mean_response);
    return makespans;
  };
  const auto a = trace(1);
  const auto b = trace(2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i], b[i]) << "epoch " << i;
  }
}

TEST(StreamingSession, ValidatesItsSpec) {
  SchedulerService svc;
  StreamingSpec bad = small_stream(true);
  bad.epoch_length = 0.0;
  EXPECT_THROW(StreamingSession(svc, bad), std::invalid_argument);
  bad = small_stream(true);
  bad.deadline_ms = -1.0;
  EXPECT_THROW(StreamingSession(svc, bad), std::invalid_argument);
  bad = small_stream(true);
  bad.workload.tasks = 0;  // WorkloadSpec validation still applies
  EXPECT_THROW(StreamingSession(svc, bad), std::invalid_argument);
}

TEST(StreamingSession, EpochLimitGuards) {
  SchedulerService svc;
  StreamingSpec spec = small_stream(true);
  spec.max_epochs = 1;
  StreamingSession session(svc, spec);
  (void)session.step();
  if (!session.done()) {
    EXPECT_THROW((void)session.step(), std::runtime_error);
  }
}

}  // namespace
}  // namespace pacga::service
