#include "cga/population.hpp"

#include <gtest/gtest.h>

#include <mutex>
#include <shared_mutex>
#include <thread>

#include "etc/braun.hpp"
#include "heuristics/minmin.hpp"

namespace pacga::cga {
namespace {

etc::EtcMatrix instance(std::uint64_t seed = 91) {
  etc::GenSpec spec;
  spec.tasks = 64;
  spec.machines = 8;
  spec.consistency = etc::Consistency::kInconsistent;
  spec.seed = seed;
  return etc::generate(spec);
}

TEST(Population, SizeMatchesGrid) {
  const auto m = instance();
  support::Xoshiro256 rng(1);
  Population pop(m, Grid(8, 4), rng, false, sched::Objective::kMakespan);
  EXPECT_EQ(pop.size(), 32u);
  EXPECT_EQ(pop.grid().width(), 8u);
  EXPECT_EQ(pop.grid().height(), 4u);
}

TEST(Population, FitnessMatchesSchedules) {
  const auto m = instance();
  support::Xoshiro256 rng(2);
  Population pop(m, Grid(4, 4), rng, false, sched::Objective::kMakespan);
  for (std::size_t i = 0; i < pop.size(); ++i) {
    EXPECT_DOUBLE_EQ(pop.at(i).fitness, pop.at(i).schedule.makespan());
    EXPECT_TRUE(pop.at(i).schedule.validate(1e-9));
  }
}

TEST(Population, MinMinSeedPlacedAtCellZero) {
  const auto m = instance();
  support::Xoshiro256 rng(3);
  Population pop(m, Grid(6, 6), rng, true, sched::Objective::kMakespan);
  const double minmin_ms = heur::min_min(m).makespan();
  EXPECT_DOUBLE_EQ(pop.at(0).fitness, minmin_ms);
  // The seed is (essentially always) the best initial individual.
  EXPECT_EQ(pop.best_index(), 0u);
}

TEST(Population, NoSeedMeansAllRandom) {
  const auto m = instance();
  support::Xoshiro256 rng(4);
  Population pop(m, Grid(6, 6), rng, false, sched::Objective::kMakespan);
  const double minmin_ms = heur::min_min(m).makespan();
  // A random 64-task assignment matching Min-min exactly is implausible.
  EXPECT_NE(pop.at(0).fitness, minmin_ms);
}

TEST(Population, BestIndexAndMeanFitness) {
  const auto m = instance();
  support::Xoshiro256 rng(5);
  Population pop(m, Grid(4, 4), rng, false, sched::Objective::kMakespan);
  const std::size_t best = pop.best_index();
  double sum = 0.0;
  for (std::size_t i = 0; i < pop.size(); ++i) {
    EXPECT_LE(pop.at(best).fitness, pop.at(i).fitness);
    sum += pop.at(i).fitness;
  }
  EXPECT_NEAR(pop.mean_fitness(), sum / 16.0, 1e-9);
}

TEST(Population, ObjectiveControlsFitness) {
  const auto m = instance();
  support::Xoshiro256 rng(6);
  Population flow(m, Grid(3, 3), rng, false, sched::Objective::kFlowtime);
  for (std::size_t i = 0; i < flow.size(); ++i) {
    EXPECT_DOUBLE_EQ(flow.at(i).fitness, flow.at(i).schedule.flowtime());
  }
}

TEST(Population, DeterministicGivenRngState) {
  const auto m = instance();
  support::Xoshiro256 a(7), b(7);
  Population p1(m, Grid(4, 4), a, true, sched::Objective::kMakespan);
  Population p2(m, Grid(4, 4), b, true, sched::Objective::kMakespan);
  for (std::size_t i = 0; i < p1.size(); ++i) {
    EXPECT_EQ(p1.at(i).schedule.hamming_distance(p2.at(i).schedule), 0u);
  }
}

TEST(Population, LocksAreIndependentAndShareable) {
  const auto m = instance();
  support::Xoshiro256 rng(8);
  Population pop(m, Grid(4, 4), rng, false, sched::Objective::kMakespan);
  // Two concurrent shared locks on the same cell; exclusive on another.
  std::shared_lock r1(pop.lock(3));
  std::shared_lock r2(pop.lock(3));  // must not block
  std::unique_lock w(pop.lock(4));   // different cell: must not block
  EXPECT_TRUE(r1.owns_lock());
  EXPECT_TRUE(r2.owns_lock());
  EXPECT_TRUE(w.owns_lock());
}

TEST(Population, WriterExcludesReader) {
  const auto m = instance();
  support::Xoshiro256 rng(9);
  Population pop(m, Grid(4, 4), rng, false, sched::Objective::kMakespan);
  std::unique_lock writer(pop.lock(0));
  std::thread reader([&] {
    std::shared_lock lock(pop.lock(0), std::defer_lock);
    EXPECT_FALSE(lock.try_lock());  // writer holds it
  });
  reader.join();
}

}  // namespace
}  // namespace pacga::cga
