#include "baselines/sa.hpp"

#include <gtest/gtest.h>

#include "etc/braun.hpp"
#include "heuristics/minmin.hpp"
#include "support/stats.hpp"

namespace pacga::baseline {
namespace {

etc::EtcMatrix instance(std::uint64_t seed = 121) {
  etc::GenSpec spec;
  spec.tasks = 128;
  spec.machines = 16;
  spec.consistency = etc::Consistency::kInconsistent;
  spec.seed = seed;
  return etc::generate(spec);
}

SaConfig fast_config() {
  SaConfig c;
  c.iters_per_temp = 64;
  c.termination = cga::Termination::after_generations(20);
  return c;
}

TEST(SimulatedAnnealing, Deterministic) {
  const auto m = instance();
  const auto c = fast_config();
  const auto r1 = run_simulated_annealing(m, c);
  const auto r2 = run_simulated_annealing(m, c);
  EXPECT_DOUBLE_EQ(r1.best_fitness, r2.best_fitness);
  EXPECT_EQ(r1.best.hamming_distance(r2.best), 0u);
}

TEST(SimulatedAnnealing, BestNeverWorseThanSeed) {
  const auto m = instance();
  const auto r = run_simulated_annealing(m, fast_config());
  EXPECT_LE(r.best_fitness, heur::min_min(m).makespan() + 1e-9);
  EXPECT_TRUE(r.best.validate(1e-9));
  EXPECT_DOUBLE_EQ(r.best.makespan(), r.best_fitness);
}

TEST(SimulatedAnnealing, ImprovesRandomStart) {
  const auto m = instance();
  auto c = fast_config();
  c.seed_min_min = false;
  c.termination = cga::Termination::after_generations(60);
  const auto r = run_simulated_annealing(m, c);
  support::Xoshiro256 rng(c.seed);
  const double start = sched::Schedule::random(m, rng).makespan();
  EXPECT_LT(r.best_fitness, start);
}

TEST(SimulatedAnnealing, SwapNeighborWorks) {
  const auto m = instance();
  auto c = fast_config();
  c.neighbor = cga::MutationKind::kSwap;
  const auto r = run_simulated_annealing(m, c);
  EXPECT_TRUE(r.best.validate(1e-9));
}

TEST(SimulatedAnnealing, GenerationAndEvaluationAccounting) {
  const auto m = instance();
  auto c = fast_config();
  c.termination = cga::Termination::after_generations(10);
  const auto r = run_simulated_annealing(m, c);
  EXPECT_EQ(r.generations, 10u);
  // Null moves (same-machine proposals) are skipped without evaluation,
  // so evaluations <= generations * iters_per_temp.
  EXPECT_LE(r.evaluations, 10u * c.iters_per_temp);
  EXPECT_GT(r.evaluations, 0u);
}

TEST(SimulatedAnnealing, EvaluationBudgetRespected) {
  const auto m = instance();
  auto c = fast_config();
  c.termination = cga::Termination::after_evaluations(100);
  const auto r = run_simulated_annealing(m, c);
  EXPECT_EQ(r.evaluations, 100u);
}

TEST(SimulatedAnnealing, TemperatureFloorTerminates) {
  const auto m = instance();
  auto c = fast_config();
  c.cooling = 0.5;
  c.min_temp_ratio = 1e-3;  // ~10 halvings
  c.termination = cga::Termination{};  // no other bound
  c.termination.wall_seconds = 30.0;   // safety only
  const auto r = run_simulated_annealing(m, c);
  EXPECT_LE(r.generations, 12u);
}

TEST(SimulatedAnnealing, TraceTracksBestMonotonically) {
  const auto m = instance();
  auto c = fast_config();
  c.collect_trace = true;
  const auto r = run_simulated_annealing(m, c);
  ASSERT_GT(r.trace.size(), 1u);
  for (std::size_t i = 1; i < r.trace.size(); ++i) {
    EXPECT_LE(r.trace[i].best_fitness, r.trace[i - 1].best_fitness + 1e-9);
  }
}

TEST(SimulatedAnnealing, ValidatesConfig) {
  const auto m = instance();
  SaConfig c;
  c.cooling = 1.5;
  EXPECT_THROW(run_simulated_annealing(m, c), std::invalid_argument);
  c = SaConfig{};
  c.iters_per_temp = 0;
  EXPECT_THROW(run_simulated_annealing(m, c), std::invalid_argument);
  c = SaConfig{};
  c.neighbor = cga::MutationKind::kRebalance;
  EXPECT_THROW(run_simulated_annealing(m, c), std::invalid_argument);
  c = SaConfig{};
  c.initial_temp_factor = 0.0;
  EXPECT_THROW(run_simulated_annealing(m, c), std::invalid_argument);
}

TEST(Duplex, NeverWorseThanEitherDual) {
  const auto m = instance();
  const double d = heur::duplex(m).makespan();
  EXPECT_LE(d, heur::min_min(m).makespan() + 1e-9);
  EXPECT_LE(d, heur::max_min(m).makespan() + 1e-9);
}

}  // namespace
}  // namespace pacga::baseline
