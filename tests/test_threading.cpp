#include "support/threading.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace pacga::support {
namespace {

TEST(Padded, OccupiesWholeCacheLines) {
  EXPECT_EQ(alignof(Padded<int>), kCacheLineSize);
  EXPECT_EQ(sizeof(Padded<int>) % kCacheLineSize, 0u);
  Padded<int> p;
  *p = 5;
  EXPECT_EQ(*p, 5);
}

TEST(PaddedArray, AdjacentElementsOnDistinctLines) {
  std::vector<Padded<std::uint64_t>> v(4);
  const auto a = reinterpret_cast<std::uintptr_t>(&v[0].value);
  const auto b = reinterpret_cast<std::uintptr_t>(&v[1].value);
  EXPECT_GE(b - a, kCacheLineSize);
}

TEST(ScopedThreads, RunsAllWorkers) {
  std::vector<Padded<int>> hits(8);
  {
    ScopedThreads threads(8, [&](std::size_t i) { *hits[i] = 1; });
  }
  for (auto& h : hits) EXPECT_EQ(*h, 1);
}

TEST(ScopedThreads, JoinIsIdempotent) {
  ScopedThreads threads(2, [](std::size_t) {});
  threads.join();
  threads.join();  // second join must be a no-op
}

TEST(ScopedThreads, WorkerIndexIsUnique) {
  std::atomic<std::uint64_t> mask{0};
  {
    ScopedThreads threads(10, [&](std::size_t i) {
      mask.fetch_or(1ULL << i, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(mask.load(), (1ULL << 10) - 1);
}

TEST(Barrier, SynchronizesPhases) {
  constexpr std::size_t kParties = 4;
  constexpr int kPhases = 50;
  Barrier barrier(kParties);
  std::atomic<int> phase_count{0};
  std::atomic<bool> violation{false};
  {
    ScopedThreads threads(kParties, [&](std::size_t) {
      for (int p = 0; p < kPhases; ++p) {
        phase_count.fetch_add(1, std::memory_order_relaxed);
        barrier.arrive_and_wait();
        // After the barrier, all parties of phase p have incremented.
        if (phase_count.load(std::memory_order_relaxed) <
            static_cast<int>(kParties) * (p + 1)) {
          violation.store(true, std::memory_order_relaxed);
        }
        barrier.arrive_and_wait();
      }
    });
  }
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(phase_count.load(), static_cast<int>(kParties) * kPhases);
}

TEST(Barrier, SinglePartyNeverBlocks) {
  Barrier barrier(1);
  for (int i = 0; i < 100; ++i) barrier.arrive_and_wait();
}

TEST(ClampThreads, RespectsHardwareAndFloor) {
  EXPECT_EQ(clamp_threads(0), 1u);
  EXPECT_GE(clamp_threads(1), 1u);
  const std::size_t big = clamp_threads(100000);
  EXPECT_LE(big, 100000u);
  EXPECT_GE(big, 1u);
}

}  // namespace
}  // namespace pacga::support
