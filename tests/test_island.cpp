#include "baselines/island_ga.hpp"

#include <gtest/gtest.h>

#include "etc/braun.hpp"
#include "heuristics/minmin.hpp"
#include "support/stats.hpp"

namespace pacga::baseline {
namespace {

etc::EtcMatrix instance(std::uint64_t seed = 81) {
  etc::GenSpec spec;
  spec.tasks = 128;
  spec.machines = 16;
  spec.consistency = etc::Consistency::kInconsistent;
  spec.seed = seed;
  return etc::generate(spec);
}

IslandConfig fast_config(std::size_t islands = 2) {
  IslandConfig c;
  c.islands = islands;
  c.island_population = 16;
  c.migration_interval = 3;
  c.termination = cga::Termination::after_generations(10);
  return c;
}

TEST(IslandGa, RunsAndValidates) {
  const auto m = instance();
  const auto r = run_island_ga(m, fast_config(3));
  EXPECT_TRUE(r.best.validate(1e-9));
  EXPECT_DOUBLE_EQ(r.best.makespan(), r.best_fitness);
  EXPECT_GT(r.evaluations, 0u);
  EXPECT_EQ(r.generations, 10u);
}

TEST(IslandGa, SingleIslandDeterministic) {
  const auto m = instance();
  const auto c = fast_config(1);
  const auto r1 = run_island_ga(m, c);
  const auto r2 = run_island_ga(m, c);
  EXPECT_DOUBLE_EQ(r1.best_fitness, r2.best_fitness);
}

TEST(IslandGa, MinMinSeedGuaranteesQuality) {
  const auto m = instance();
  const auto r = run_island_ga(m, fast_config(4));
  EXPECT_LE(r.best_fitness, heur::min_min(m).makespan() + 1e-9);
}

TEST(IslandGa, EvaluationAccounting) {
  const auto m = instance();
  auto c = fast_config(2);
  c.termination = cga::Termination::after_generations(5);
  const auto r = run_island_ga(m, c);
  // 2 islands x 5 generations x 16 offspring each.
  EXPECT_EQ(r.evaluations, 2u * 5u * 16u);
}

TEST(IslandGa, EvaluationBudgetRespected) {
  const auto m = instance();
  auto c = fast_config(4);
  c.termination = cga::Termination::after_evaluations(200);
  const auto r = run_island_ga(m, c);
  // Granularity: one island generation (16 evals) per thread.
  EXPECT_GE(r.evaluations, 200u);
  EXPECT_LE(r.evaluations, 200u + 4u * 16u);
}

TEST(IslandGa, ImprovesOverRandom) {
  const auto m = instance();
  auto c = fast_config(3);
  c.seed_min_min = false;
  c.termination = cga::Termination::after_generations(30);
  const auto r = run_island_ga(m, c);
  support::Xoshiro256 rng(1);
  support::RunningStats random_ms;
  for (int i = 0; i < 20; ++i)
    random_ms.add(sched::Schedule::random(m, rng).makespan());
  EXPECT_LT(r.best_fitness, random_ms.mean());
}

TEST(IslandGa, MigrationHelpsIsolatedIslands) {
  // With tiny islands, migration should on average help reach better
  // fitness than fully isolated evolution within equal budgets.
  const auto m = instance(83);
  support::RunningStats with_migration, without_migration;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    IslandConfig c = fast_config(4);
    c.island_population = 8;
    c.seed = seed;
    c.seed_min_min = false;
    c.termination = cga::Termination::after_generations(25);
    c.migration_interval = 2;
    with_migration.add(run_island_ga(m, c).best_fitness);
    c.migration_interval = 1000000;  // effectively never
    without_migration.add(run_island_ga(m, c).best_fitness);
  }
  EXPECT_LE(with_migration.mean(), without_migration.mean() * 1.02);
}

TEST(IslandGa, ValidatesConfig) {
  const auto m = instance();
  IslandConfig c;
  c.islands = 0;
  EXPECT_THROW(run_island_ga(m, c), std::invalid_argument);
  c = IslandConfig{};
  c.island_population = 1;
  EXPECT_THROW(run_island_ga(m, c), std::invalid_argument);
  c = IslandConfig{};
  c.migration_interval = 0;
  EXPECT_THROW(run_island_ga(m, c), std::invalid_argument);
  c = IslandConfig{};
  c.p_mut = 3.0;
  EXPECT_THROW(run_island_ga(m, c), std::invalid_argument);
}

TEST(IslandGa, LocalSearchVariantImproves) {
  const auto m = instance(89);
  support::RunningStats with_ls, without_ls;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    IslandConfig c = fast_config(2);
    c.seed = seed;
    c.seed_min_min = false;
    c.termination = cga::Termination::after_generations(10);
    c.local_search = cga::H2LLParams{5, 0};
    with_ls.add(run_island_ga(m, c).best_fitness);
    c.local_search = cga::H2LLParams{0, 0};
    without_ls.add(run_island_ga(m, c).best_fitness);
  }
  EXPECT_LT(with_ls.mean(), without_ls.mean());
}

}  // namespace
}  // namespace pacga::baseline
