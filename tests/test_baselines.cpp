#include "baselines/cma_lth.hpp"
#include "baselines/struggle_ga.hpp"

#include <gtest/gtest.h>

#include "support/stats.hpp"

#include "etc/braun.hpp"
#include "heuristics/minmin.hpp"

namespace pacga::baseline {
namespace {

etc::EtcMatrix instance(std::uint64_t seed = 61) {
  etc::GenSpec spec;
  spec.tasks = 128;
  spec.machines = 16;
  spec.consistency = etc::Consistency::kInconsistent;
  spec.seed = seed;
  return etc::generate(spec);
}

TEST(StruggleGa, Deterministic) {
  const auto m = instance();
  StruggleConfig c;
  c.population = 32;
  c.termination = cga::Termination::after_generations(5);
  c.seed = 7;
  const auto r1 = run_struggle_ga(m, c);
  const auto r2 = run_struggle_ga(m, c);
  EXPECT_DOUBLE_EQ(r1.best_fitness, r2.best_fitness);
  EXPECT_EQ(r1.best.hamming_distance(r2.best), 0u);
}

TEST(StruggleGa, EvaluationAccounting) {
  const auto m = instance();
  StruggleConfig c;
  c.population = 32;
  c.termination = cga::Termination::after_generations(5);
  const auto r = run_struggle_ga(m, c);
  EXPECT_EQ(r.generations, 5u);
  EXPECT_EQ(r.evaluations, 5u * 32u);
}

TEST(StruggleGa, RespectsEvaluationBudget) {
  const auto m = instance();
  StruggleConfig c;
  c.population = 32;
  c.termination = cga::Termination::after_evaluations(50);
  const auto r = run_struggle_ga(m, c);
  EXPECT_EQ(r.evaluations, 50u);
}

TEST(StruggleGa, ImprovesOverMinMinSeed) {
  const auto m = instance();
  StruggleConfig c;
  c.population = 64;
  c.termination = cga::Termination::after_generations(40);
  const auto r = run_struggle_ga(m, c);
  EXPECT_LE(r.best_fitness, heur::min_min(m).makespan() + 1e-9);
  EXPECT_TRUE(r.best.validate(1e-9));
}

TEST(StruggleGa, TraceMonotoneBest) {
  const auto m = instance();
  StruggleConfig c;
  c.population = 32;
  c.collect_trace = true;
  c.termination = cga::Termination::after_generations(10);
  const auto r = run_struggle_ga(m, c);
  ASSERT_GT(r.trace.size(), 1u);
  for (std::size_t i = 1; i < r.trace.size(); ++i) {
    EXPECT_LE(r.trace[i].best_fitness, r.trace[i - 1].best_fitness + 1e-9);
  }
}

TEST(StruggleGa, ValidatesConfig) {
  const auto m = instance();
  StruggleConfig c;
  c.population = 1;
  EXPECT_THROW(run_struggle_ga(m, c), std::invalid_argument);
  c = StruggleConfig{};
  c.p_comb = 2.0;
  EXPECT_THROW(run_struggle_ga(m, c), std::invalid_argument);
}

TEST(CmaLth, Deterministic) {
  const auto m = instance();
  CmaLthConfig c;
  c.width = 6;
  c.height = 6;
  c.termination = cga::Termination::after_generations(5);
  c.tabu.iterations = 3;
  const auto r1 = run_cma_lth(m, c);
  const auto r2 = run_cma_lth(m, c);
  EXPECT_DOUBLE_EQ(r1.best_fitness, r2.best_fitness);
}

TEST(CmaLth, EvaluationAccounting) {
  const auto m = instance();
  CmaLthConfig c;
  c.width = 6;
  c.height = 6;
  c.tabu.iterations = 2;
  c.termination = cga::Termination::after_generations(4);
  const auto r = run_cma_lth(m, c);
  EXPECT_EQ(r.generations, 4u);
  EXPECT_EQ(r.evaluations, 4u * 36u);
}

TEST(CmaLth, ImprovesOverMinMinSeed) {
  const auto m = instance();
  CmaLthConfig c;
  c.width = 8;
  c.height = 8;
  c.tabu.iterations = 5;
  c.termination = cga::Termination::after_generations(15);
  const auto r = run_cma_lth(m, c);
  EXPECT_LE(r.best_fitness, heur::min_min(m).makespan() + 1e-9);
  EXPECT_TRUE(r.best.validate(1e-9));
}

TEST(CmaLth, MemeticBeatsPlainSyncCgaOnAverage) {
  // The intensification should buy quality per generation vs the same
  // algorithm without LTH.
  const auto m = instance(67);
  support::RunningStats with_ls, without_ls;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    CmaLthConfig c;
    c.width = 6;
    c.height = 6;
    c.seed = seed;
    c.seed_min_min = false;
    c.termination = cga::Termination::after_generations(10);
    c.tabu.iterations = 10;
    with_ls.add(run_cma_lth(m, c).best_fitness);
    c.tabu.iterations = 0;
    without_ls.add(run_cma_lth(m, c).best_fitness);
  }
  EXPECT_LT(with_ls.mean(), without_ls.mean());
}

TEST(CmaLth, RunsOnTinyGrid) {
  // Grids smaller than cga::Config's default thread count must stay valid:
  // the adapter over the sequential core pins threads to 1.
  const auto m = instance();
  CmaLthConfig c;
  c.width = 2;
  c.height = 1;
  c.termination = cga::Termination::after_generations(2);
  const auto r = run_cma_lth(m, c);
  EXPECT_EQ(r.generations, 2u);
  EXPECT_TRUE(r.best.validate(1e-9));
}

TEST(CmaLth, ValidatesConfig) {
  const auto m = instance();
  CmaLthConfig c;
  c.width = 0;
  EXPECT_THROW(run_cma_lth(m, c), std::invalid_argument);
  c = CmaLthConfig{};
  c.p_ls = -1.0;
  EXPECT_THROW(run_cma_lth(m, c), std::invalid_argument);
}

}  // namespace
}  // namespace pacga::baseline
