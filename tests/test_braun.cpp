#include "etc/braun.hpp"

#include <gtest/gtest.h>

#include "etc/suite.hpp"

namespace pacga::etc {
namespace {

TEST(GenSpecName, RoundTripsThroughParser) {
  GenSpec spec;
  spec.consistency = Consistency::kSemiConsistent;
  spec.task_het = Heterogeneity::kLow;
  spec.machine_het = Heterogeneity::kHigh;
  EXPECT_EQ(spec.name(3), "u_s_lohi.3");
  const auto parsed = parse_instance_name("u_s_lohi.3");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->consistency, Consistency::kSemiConsistent);
  EXPECT_EQ(parsed->task_het, Heterogeneity::kLow);
  EXPECT_EQ(parsed->machine_het, Heterogeneity::kHigh);
  EXPECT_EQ(parsed->tasks, 512u);
  EXPECT_EQ(parsed->machines, 16u);
}

TEST(ParseInstanceName, RejectsMalformed) {
  EXPECT_FALSE(parse_instance_name("").has_value());
  EXPECT_FALSE(parse_instance_name("u_x_hihi.0").has_value());
  EXPECT_FALSE(parse_instance_name("u_c_xxhi.0").has_value());
  EXPECT_FALSE(parse_instance_name("u_c_hixx.0").has_value());
  EXPECT_FALSE(parse_instance_name("u_c_hihi").has_value());
  EXPECT_FALSE(parse_instance_name("u_c_hihi.x").has_value());
  EXPECT_FALSE(parse_instance_name("v_c_hihi.0").has_value());
}

TEST(ParseInstanceName, SeedsDifferPerName) {
  const auto a = parse_instance_name("u_c_hihi.0");
  const auto b = parse_instance_name("u_c_hihi.1");
  ASSERT_TRUE(a && b);
  EXPECT_NE(a->seed, b->seed);
}

TEST(Generate, Deterministic) {
  GenSpec spec;
  spec.tasks = 32;
  spec.machines = 4;
  spec.seed = 7;
  const auto a = generate(spec);
  const auto b = generate(spec);
  for (std::size_t t = 0; t < spec.tasks; ++t) {
    for (std::size_t m = 0; m < spec.machines; ++m) {
      EXPECT_DOUBLE_EQ(a(t, m), b(t, m));
    }
  }
}

TEST(Generate, SeedChangesMatrix) {
  GenSpec spec;
  spec.tasks = 16;
  spec.machines = 4;
  spec.seed = 1;
  const auto a = generate(spec);
  spec.seed = 2;
  const auto b = generate(spec);
  bool any_diff = false;
  for (std::size_t t = 0; t < spec.tasks && !any_diff; ++t) {
    for (std::size_t m = 0; m < spec.machines; ++m) {
      if (a(t, m) != b(t, m)) {
        any_diff = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(Generate, ConsistentMatrixIsConsistent) {
  GenSpec spec;
  spec.tasks = 64;
  spec.machines = 8;
  spec.consistency = Consistency::kConsistent;
  spec.seed = 11;
  const auto m = generate(spec);
  EXPECT_TRUE(m.is_consistent());
  // Rows individually sorted: machine 0 fastest for every task.
  for (std::size_t t = 0; t < spec.tasks; ++t) {
    for (std::size_t k = 0; k + 1 < spec.machines; ++k) {
      EXPECT_LE(m(t, k), m(t, k + 1));
    }
  }
}

TEST(Generate, InconsistentMatrixIsInconsistent) {
  GenSpec spec;
  spec.tasks = 64;
  spec.machines = 8;
  spec.consistency = Consistency::kInconsistent;
  spec.seed = 13;
  EXPECT_FALSE(generate(spec).is_consistent());
}

TEST(Generate, SemiConsistentHasConsistentSubmatrix) {
  GenSpec spec;
  spec.tasks = 64;
  spec.machines = 8;
  spec.consistency = Consistency::kSemiConsistent;
  spec.seed = 17;
  const auto m = generate(spec);
  // Even rows, even columns sorted ascending.
  for (std::size_t t = 0; t < spec.tasks; t += 2) {
    for (std::size_t c = 0; c + 2 < spec.machines; c += 2) {
      EXPECT_LE(m(t, c), m(t, c + 2)) << "row " << t << " col " << c;
    }
  }
  // The full matrix should still be inconsistent overall.
  EXPECT_FALSE(m.is_consistent());
}

TEST(Generate, RangesMatchHeterogeneityClass) {
  GenSpec spec;
  spec.tasks = 512;
  spec.machines = 16;
  spec.consistency = Consistency::kInconsistent;
  spec.task_het = Heterogeneity::kHigh;
  spec.machine_het = Heterogeneity::kHigh;
  spec.seed = 19;
  const auto hihi = generate(spec);
  // hi-hi: values in (1, 3000*1000); paper reports ~3e6 upper bounds.
  EXPECT_GT(hihi.min_etc(), 1.0);
  EXPECT_LT(hihi.max_etc(), 3.0e6);
  EXPECT_GT(hihi.max_etc(), 1.0e5);  // should actually reach large values

  spec.task_het = Heterogeneity::kLow;
  spec.machine_het = Heterogeneity::kLow;
  const auto lolo = generate(spec);
  // lo-lo: values in (1, 100*10); paper reports ~1e3 upper bounds.
  EXPECT_LT(lolo.max_etc(), 1000.0);
}

TEST(Generate, HeterogeneityStatisticOrdersClasses) {
  GenSpec hi;
  hi.tasks = 256;
  hi.machines = 16;
  hi.consistency = Consistency::kInconsistent;
  hi.task_het = Heterogeneity::kHigh;
  hi.seed = 23;
  GenSpec lo = hi;
  lo.task_het = Heterogeneity::kLow;
  EXPECT_GT(generate(hi).task_heterogeneity(),
            generate(lo).task_heterogeneity());
}

TEST(GenerateCvb, MeanAndHeterogeneityControlled) {
  GenSpec spec;
  spec.method = GenMethod::kCvb;
  spec.tasks = 256;
  spec.machines = 16;
  spec.consistency = Consistency::kInconsistent;
  spec.cvb_mean_task = 500.0;
  spec.seed = 29;
  const auto hi = generate(spec);
  // Grand mean tracks mu_task.
  double sum = 0.0;
  for (std::size_t t = 0; t < hi.tasks(); ++t)
    for (std::size_t m = 0; m < hi.machines(); ++m) sum += hi(t, m);
  const double grand_mean =
      sum / static_cast<double>(hi.tasks() * hi.machines());
  EXPECT_NEAR(grand_mean, 500.0, 0.15 * 500.0);

  spec.task_het = Heterogeneity::kLow;
  spec.machine_het = Heterogeneity::kLow;
  const auto lo = generate(spec);
  EXPECT_GT(hi.task_heterogeneity(), lo.task_heterogeneity());
  EXPECT_GT(hi.machine_heterogeneity(), lo.machine_heterogeneity());
}

TEST(GenerateCvb, ConsistencyPostProcessingApplies) {
  GenSpec spec;
  spec.method = GenMethod::kCvb;
  spec.tasks = 64;
  spec.machines = 8;
  spec.consistency = Consistency::kConsistent;
  spec.seed = 31;
  EXPECT_TRUE(generate(spec).is_consistent());
  spec.consistency = Consistency::kInconsistent;
  EXPECT_FALSE(generate(spec).is_consistent());
}

TEST(GenerateCvb, Deterministic) {
  GenSpec spec;
  spec.method = GenMethod::kCvb;
  spec.tasks = 16;
  spec.machines = 4;
  spec.seed = 37;
  const auto a = generate(spec);
  const auto b = generate(spec);
  EXPECT_DOUBLE_EQ(a(7, 2), b(7, 2));
}

TEST(Generate, ReadyFractionPopulatesReadyTimes) {
  GenSpec spec;
  spec.tasks = 64;
  spec.machines = 8;
  spec.seed = 41;
  spec.ready_fraction = 0.5;
  const auto m = generate(spec);
  bool any_positive = false;
  for (std::size_t k = 0; k < m.machines(); ++k) {
    EXPECT_GE(m.ready(k), 0.0);
    any_positive |= m.ready(k) > 0.0;
  }
  EXPECT_TRUE(any_positive);
  // Zero fraction: all ready times are exactly zero.
  spec.ready_fraction = 0.0;
  const auto idle = generate(spec);
  for (std::size_t k = 0; k < idle.machines(); ++k) {
    EXPECT_DOUBLE_EQ(idle.ready(k), 0.0);
  }
}

TEST(Generate, RejectsBadCvbAndReadyParams) {
  GenSpec spec;
  spec.cvb_mean_task = 0.0;
  EXPECT_THROW(generate(spec), std::invalid_argument);
  spec = GenSpec{};
  spec.ready_fraction = -0.1;
  EXPECT_THROW(generate(spec), std::invalid_argument);
}

TEST(BraunSuite, HasTwelveCanonicalInstances) {
  const auto suite = braun_suite();
  ASSERT_EQ(suite.size(), 12u);
  EXPECT_EQ(suite[0].name, "u_c_hihi.0");
  EXPECT_EQ(suite[11].name, "u_i_lolo.0");
  for (const auto& inst : suite) {
    EXPECT_EQ(inst.spec.tasks, 512u);
    EXPECT_EQ(inst.spec.machines, 16u);
  }
}

TEST(BraunSuite, GenerateByNameMatchesSpec) {
  const auto m = generate_by_name("u_c_lolo.0");
  EXPECT_EQ(m.tasks(), 512u);
  EXPECT_EQ(m.machines(), 16u);
  EXPECT_TRUE(m.is_consistent());
  EXPECT_THROW(generate_by_name("bogus"), std::invalid_argument);
}

/// Property sweep: every suite instance satisfies its declared class.
class SuitePropertyTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SuitePropertyTest, ClassPropertiesHold) {
  const std::string name = GetParam();
  const auto spec = parse_instance_name(name);
  ASSERT_TRUE(spec.has_value());
  const auto m = generate(*spec);
  EXPECT_EQ(m.tasks(), 512u);
  EXPECT_EQ(m.machines(), 16u);
  EXPECT_GT(m.min_etc(), 0.0);
  if (spec->consistency == Consistency::kConsistent) {
    EXPECT_TRUE(m.is_consistent()) << name;
  } else {
    EXPECT_FALSE(m.is_consistent()) << name;
  }
  const double bound = task_range(spec->task_het) * machine_range(spec->machine_het);
  EXPECT_LT(m.max_etc(), bound);
}

INSTANTIATE_TEST_SUITE_P(AllTwelve, SuitePropertyTest,
                         ::testing::ValuesIn(braun_suite_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (c == '.') c = '_';
                           }
                           return n;
                         });

}  // namespace
}  // namespace pacga::etc
