#include "cga/diversity.hpp"

#include "cga/engine.hpp"

#include <gtest/gtest.h>

#include "etc/braun.hpp"

namespace pacga::cga {
namespace {

etc::EtcMatrix instance(std::uint64_t seed = 71) {
  etc::GenSpec spec;
  spec.tasks = 64;
  spec.machines = 8;
  spec.consistency = etc::Consistency::kInconsistent;
  spec.seed = seed;
  return etc::generate(spec);
}

Population random_population(const etc::EtcMatrix& m, std::uint64_t seed) {
  support::Xoshiro256 rng(seed);
  return Population(m, Grid(6, 6), rng, /*seed_min_min=*/false,
                    sched::Objective::kMakespan);
}

TEST(Diversity, RandomPopulationIsDiverse) {
  const auto m = instance();
  const auto pop = random_population(m, 1);
  const auto d = population_diversity(pop);
  // Random 8-machine assignments: expected pairwise Hamming ~ 7/8.
  EXPECT_GT(d.mean_pairwise_hamming, 0.8);
  EXPECT_LE(d.mean_pairwise_hamming, 1.0);
  // Entropy near maximal.
  EXPECT_GT(d.gene_entropy, 0.9);
  EXPECT_LE(d.gene_entropy, 1.0);
  EXPECT_GT(d.fitness_stddev, 0.0);
  EXPECT_GT(d.fitness_range, 0.0);
}

TEST(Diversity, ClonedPopulationIsFullyConverged) {
  const auto m = instance();
  support::Xoshiro256 rng(2);
  Population pop(m, Grid(4, 4), rng, false, sched::Objective::kMakespan);
  const Individual clone = pop.at(0);
  for (std::size_t i = 1; i < pop.size(); ++i) pop.at(i) = clone;
  const auto d = population_diversity(pop);
  EXPECT_DOUBLE_EQ(d.mean_pairwise_hamming, 0.0);
  EXPECT_DOUBLE_EQ(d.gene_entropy, 0.0);
  EXPECT_DOUBLE_EQ(d.fitness_stddev, 0.0);
  EXPECT_DOUBLE_EQ(d.fitness_range, 0.0);
  EXPECT_DOUBLE_EQ(proportion_at_best(pop), 1.0);
}

TEST(Diversity, SampledApproximatesExact) {
  const auto m = instance();
  const auto pop = random_population(m, 3);
  support::Xoshiro256 rng(4);
  const auto exact = population_diversity(pop);
  const auto approx = population_diversity_sampled(pop, 4000, rng);
  EXPECT_NEAR(approx.mean_pairwise_hamming, exact.mean_pairwise_hamming, 0.02);
  // Non-sampled terms must be identical.
  EXPECT_DOUBLE_EQ(approx.gene_entropy, exact.gene_entropy);
  EXPECT_DOUBLE_EQ(approx.fitness_stddev, exact.fitness_stddev);
}

TEST(Diversity, ProportionAtBestCountsTies) {
  const auto m = instance();
  support::Xoshiro256 rng(5);
  Population pop(m, Grid(4, 4), rng, false, sched::Objective::kMakespan);
  // Plant the best individual in 4 of 16 cells.
  std::size_t best = pop.best_index();
  const Individual champion = pop.at(best);
  pop.at(1) = champion;
  pop.at(5) = champion;
  pop.at(9) = champion;
  const double p = proportion_at_best(pop);
  EXPECT_GE(p, 4.0 / 16.0);
  EXPECT_LT(p, 1.0);
}

TEST(Diversity, EvolutionReducesDiversity) {
  // A few generations of the sequential CGA must reduce genotypic
  // diversity (the takeover dynamic the paper's §3.1 describes).
  const auto m = instance(73);
  support::Xoshiro256 rng(6);
  Population pop(m, Grid(6, 6), rng, false, sched::Objective::kMakespan);
  const double before = population_diversity(pop).gene_entropy;

  // Hand-rolled generations using the engine's building blocks.
  Config config;
  config.width = 6;
  config.height = 6;
  config.local_search.iterations = 2;
  std::vector<std::size_t> neigh;
  std::vector<double> fit;
  for (int gen = 0; gen < 15; ++gen) {
    for (std::size_t idx = 0; idx < pop.size(); ++idx) {
      auto child = detail::breed(pop, idx, config, rng, neigh, fit);
      if (child.fitness < pop.at(idx).fitness) pop.at(idx) = std::move(child);
    }
  }
  const double after = population_diversity(pop).gene_entropy;
  EXPECT_LT(after, before);
}

TEST(Diversity, SingleMachineInstanceEntropyZero) {
  etc::EtcMatrix m(8, 1, {1, 2, 3, 4, 5, 6, 7, 8});
  support::Xoshiro256 rng(7);
  Population pop(m, Grid(3, 3), rng, false, sched::Objective::kMakespan);
  const auto d = population_diversity(pop);
  EXPECT_DOUBLE_EQ(d.gene_entropy, 0.0);          // log2(1) guard
  EXPECT_DOUBLE_EQ(d.mean_pairwise_hamming, 0.0); // only one assignment
}

}  // namespace
}  // namespace pacga::cga
