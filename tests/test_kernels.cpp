// Kernel equivalence suite: the AVX-512, AVX2, and scalar paths must agree
// BIT-FOR-BIT — same extreme values, same lowest-index tie-breaks — over
// randomized and adversarial inputs (exact ties across lane boundaries,
// denormals, infinities as parked sentinels, sizes straddling the 8/16/
// 32/64 vector boundaries, sizes below them). Vector tiers the host cannot
// run are skipped at run time but always compiled. Golden determinism
// across dispatch paths rests on this file; the PACGA_FORCE_KERNELS
// resolution order is regression-tested here too.
#include "support/kernels.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "support/rng.hpp"

namespace pacga::support::kernels {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kDenorm = std::numeric_limits<double>::denorm_min();

/// Every tier this host can execute (the scalar reference always; the
/// vector tiers when the CPU supports them). Unsupported tiers are skipped
/// at run time only — the code under test always compiles.
std::vector<const Dispatch*> testable_tables() {
  std::vector<const Dispatch*> tables{&detail::scalar_table()};
  if (detail::avx2_supported()) tables.push_back(&detail::avx2_table());
  if (detail::avx512_supported()) tables.push_back(&detail::avx512_table());
  return tables;
}

/// In-order strict-comparison reference scans — the pinned semantics,
/// written independently of the library's scalar path.
std::size_t ref_argmax(const std::vector<double>& d) {
  std::size_t arg = 0;
  for (std::size_t i = 1; i < d.size(); ++i) {
    if (d[i] > d[arg]) arg = i;
  }
  return arg;
}

std::size_t ref_argmin(const std::vector<double>& d) {
  std::size_t arg = 0;
  for (std::size_t i = 1; i < d.size(); ++i) {
    if (d[i] < d[arg]) arg = i;
  }
  return arg;
}

MinScan ref_min_plus(const std::vector<double>& a,
                     const std::vector<double>& b) {
  MinScan r{a[0] + b[0], 0};
  for (std::size_t i = 1; i < a.size(); ++i) {
    const double c = a[i] + b[i];
    if (c < r.value) r = {c, i};
  }
  return r;
}

/// Asserts that one table reproduces the reference on `d` (and that both
/// tables agree bit-for-bit with each other).
void check_reductions(const std::vector<double>& d, const std::string& label) {
  const std::size_t n = d.size();
  const std::size_t amax = ref_argmax(d);
  const std::size_t amin = ref_argmin(d);
  for (const Dispatch* t : testable_tables()) {
    SCOPED_TRACE(label + " via " + t->name);
    EXPECT_EQ(t->argmax(d.data(), n), amax);
    EXPECT_EQ(t->argmin(d.data(), n), amin);
    // Values compared through their bit patterns: 0x... == 0x... is the
    // byte-identity the golden tests need, not just numeric equality.
    // max_value/min_value canonicalize signed zeros (`+ 0.0`), so the
    // reference does too.
    EXPECT_EQ(std::bit_cast<std::uint64_t>(t->max_value(d.data(), n)),
              std::bit_cast<std::uint64_t>(d[amax] + 0.0));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(t->min_value(d.data(), n)),
              std::bit_cast<std::uint64_t>(d[amin] + 0.0));
  }
}

void check_min_plus(const std::vector<double>& a, const std::vector<double>& b,
                    const std::string& label) {
  ASSERT_EQ(a.size(), b.size());
  const MinScan ref = ref_min_plus(a, b);
  for (const Dispatch* t : testable_tables()) {
    SCOPED_TRACE(label + " via " + t->name);
    const MinScan got = t->min_plus(a.data(), b.data(), a.size());
    EXPECT_EQ(got.index, ref.index);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got.value),
              std::bit_cast<std::uint64_t>(ref.value));
  }
}

/// Sizes straddling every interesting boundary: below the 4- and 8-lane
/// widths, at them, around the 8/16-element single-stream thresholds and
/// the 32/64-element 4-stream thresholds of the vector tiers, unaligned
/// tails, and larger blocks.
const std::size_t kSizes[] = {1,   2,   3,   4,   5,   7,   8,   9,   12,  15,
                              16,  17,  31,  32,  33,  63,  64,  65,  100, 127,
                              128, 129, 255, 256, 257, 511, 512, 513};

TEST(Kernels, RandomizedEquivalenceAcrossSizes) {
  Xoshiro256 rng(42);
  for (const std::size_t n : kSizes) {
    for (int rep = 0; rep < 20; ++rep) {
      std::vector<double> d(n), b(n);
      for (auto& x : d) x = rng.uniform(0.0, 1e6);
      for (auto& x : b) x = rng.uniform(0.0, 1e3);
      const std::string label =
          "random n=" + std::to_string(n) + " rep=" + std::to_string(rep);
      check_reductions(d, label);
      check_min_plus(d, b, label);
    }
  }
}

TEST(Kernels, ExactTiesBreakToLowestIndexEverywhere) {
  // Duplicate the extreme value at every pair of positions; the winner
  // must always be the earlier one, under every path. Sizes cross the
  // 8-lane width and the AVX-512 single-stream threshold too.
  for (const std::size_t n : {5ul, 8ul, 9ul, 13ul, 16ul, 17ul, 33ul}) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        std::vector<double> d(n, 1.0);
        d[i] = d[j] = 2.0;  // tied maxima
        const std::string label = "tie n=" + std::to_string(n) + " at " +
                                  std::to_string(i) + "," + std::to_string(j);
        for (const Dispatch* t : testable_tables()) {
          SCOPED_TRACE(label + " via " + t->name);
          EXPECT_EQ(t->argmax(d.data(), n), i);
          d[i] = d[j] = 0.5;  // tied minima
          EXPECT_EQ(t->argmin(d.data(), n), i);
          const std::vector<double> zero(n, 0.0);
          EXPECT_EQ(t->min_plus(d.data(), zero.data(), n).index, i);
          d[i] = d[j] = 2.0;  // restore for the next table
        }
      }
    }
  }
}

TEST(Kernels, AllEqualPicksIndexZero) {
  for (const std::size_t n : kSizes) {
    const std::vector<double> d(n, 3.25);
    check_reductions(d, "all-equal n=" + std::to_string(n));
  }
}

TEST(Kernels, DenormalsAndParkedInfinities) {
  Xoshiro256 rng(7);
  for (const std::size_t n : {3ul, 8ul, 16ul, 17ul, 64ul, 65ul, 129ul, 257ul}) {
    std::vector<double> d(n);
    for (std::size_t i = 0; i < n; ++i) {
      // A mix of denormals, tiny normals, and parked +/-inf sentinels —
      // the actual contents of the heuristics' key arrays mid-run.
      switch (i % 4) {
        case 0: d[i] = kDenorm * static_cast<double>(i + 1); break;
        case 1: d[i] = rng.uniform(0.0, 1.0); break;
        case 2: d[i] = (i % 8 == 2) ? kInf : -kInf; break;
        default: d[i] = rng.uniform(1e300, 1e301); break;
      }
    }
    check_reductions(d, "denorm/inf n=" + std::to_string(n));
  }
}

TEST(Kernels, SignedZeroTiesKeepFirstOccurrenceBits) {
  // -0.0 and +0.0 compare equal but differ in bits; the pinned contract
  // says both paths return the element at the LOWEST index among the
  // extremes, so the returned bit pattern must be the first occurrence's.
  for (const std::size_t n : {2ul, 5ul, 8ul, 9ul, 16ul, 33ul}) {
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<double> d(n, -0.0);
      d[i] = +0.0;  // one +0 among -0s: every element is max AND min
      check_reductions(d, "signed-zero n=" + std::to_string(n) + " at " +
                              std::to_string(i));
    }
  }
}

TEST(Kernels, MinPlusSkipMatchesReferenceLoop) {
  Xoshiro256 rng(9);
  for (const std::size_t n : {2ul, 3ul, 5ul, 8ul, 9ul, 33ul, 64ul}) {
    std::vector<double> a(n), b(n);
    for (auto& x : a) x = rng.uniform(0.0, 100.0);
    for (auto& x : b) x = rng.uniform(0.0, 100.0);
    for (std::size_t skip = 0; skip < n; ++skip) {
      MinScan ref{kInf, 0};
      bool seen = false;
      for (std::size_t i = 0; i < n; ++i) {
        if (i == skip) continue;
        const double c = a[i] + b[i];
        if (!seen || c < ref.value) ref = {c, i};
        seen = true;
      }
      const MinScan got = min_completion_index_skip(a.data(), b.data(), n, skip);
      EXPECT_EQ(got.index, ref.index) << "n=" << n << " skip=" << skip;
      EXPECT_EQ(std::bit_cast<std::uint64_t>(got.value),
                std::bit_cast<std::uint64_t>(ref.value));
    }
  }
}

TEST(Kernels, ScaleInplaceBitIdenticalAcrossPaths) {
  Xoshiro256 rng(11);
  for (const std::size_t n : kSizes) {
    std::vector<double> base(n);
    for (auto& x : base) x = rng.uniform(0.1, 1e4);
    for (const double factor : {0.5, 1.0 / 3.0, 1.75, 1e-100, 1e100}) {
      std::vector<double> scalar_out = base;
      detail::scalar_table().scale_inplace(scalar_out.data(), n, factor);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(std::bit_cast<std::uint64_t>(scalar_out[i]),
                  std::bit_cast<std::uint64_t>(base[i] * factor));
      }
      for (const Dispatch* t : testable_tables()) {
        std::vector<double> vec_out = base;
        t->scale_inplace(vec_out.data(), n, factor);
        for (std::size_t i = 0; i < n; ++i) {
          EXPECT_EQ(std::bit_cast<std::uint64_t>(vec_out[i]),
                    std::bit_cast<std::uint64_t>(scalar_out[i]))
              << "via " << t->name;
        }
      }
    }
  }
}

TEST(Kernels, HashBlockIdenticalAcrossPathsAndSensitive) {
  Xoshiro256 rng(13);
  for (const std::size_t n : kSizes) {
    std::vector<double> d(n);
    for (auto& x : d) x = rng.uniform(0.0, 1e6);
    const std::uint64_t scalar_h =
        detail::scalar_table().hash_block(d.data(), n, 77);
    for (const Dispatch* t : testable_tables()) {
      EXPECT_EQ(t->hash_block(d.data(), n, 77), scalar_h)
          << "n=" << n << " via " << t->name;
    }
    // Sensitivity: flipping any single element changes the hash.
    for (std::size_t i = 0; i < n; ++i) {
      const double saved = d[i];
      d[i] = saved + 1.0;
      EXPECT_NE(detail::scalar_table().hash_block(d.data(), n, 77), scalar_h)
          << "n=" << n << " i=" << i;
      d[i] = saved;
    }
    // Seed-sensitive too.
    EXPECT_NE(detail::scalar_table().hash_block(d.data(), n, 78), scalar_h);
  }
}

TEST(Kernels, ExhaustiveSizesOneToFiveHundredThirteen) {
  // Every size from 1 to 513: covers each possible tail length and stream
  // phase of every tier (4/8-lane single-stream, 16/32-element rounds).
  // One random vector per size keeps the sweep cheap; the adversarial
  // content cases live in the dedicated suites above.
  Xoshiro256 rng(21);
  for (std::size_t n = 1; n <= 513; ++n) {
    std::vector<double> d(n), b(n);
    for (auto& x : d) x = rng.uniform(0.0, 1e6);
    for (auto& x : b) x = rng.uniform(0.0, 1e3);
    // Planted duplicate extremes make ties likely even at large n.
    if (n >= 3) {
      d[n / 3] = d[0];
      d[n - 1] = d[n / 2];
    }
    const std::string label = "exhaustive n=" + std::to_string(n);
    check_reductions(d, label);
    check_min_plus(d, b, label);
  }
}

TEST(Kernels, BatchMaxMatchesPerRowMaxBitForBit) {
  // The batched kernel must be indistinguishable from a per-row max_value
  // loop on every tier — including rows of denormals, parked infinities,
  // and signed-zero ties.
  Xoshiro256 rng(31);
  for (const std::size_t n : {1ul, 7ul, 8ul, 16ul, 17ul, 64ul, 65ul, 257ul}) {
    for (const std::size_t count : {1ul, 2ul, 5ul, 25ul, 64ul}) {
      std::vector<std::vector<double>> rows(count, std::vector<double>(n));
      for (std::size_t r = 0; r < count; ++r) {
        for (std::size_t i = 0; i < n; ++i) {
          switch ((r + i) % 5) {
            case 0: rows[r][i] = kDenorm * static_cast<double>(i + 1); break;
            case 1: rows[r][i] = -kInf; break;
            case 2: rows[r][i] = (i % 2 == 0) ? -0.0 : +0.0; break;
            default: rows[r][i] = rng.uniform(0.0, 1e6); break;
          }
        }
      }
      std::vector<const double*> ptrs(count);
      for (std::size_t r = 0; r < count; ++r) ptrs[r] = rows[r].data();
      for (const Dispatch* t : testable_tables()) {
        SCOPED_TRACE(std::string("batch n=") + std::to_string(n) +
                     " count=" + std::to_string(count) + " via " + t->name);
        std::vector<double> out(count, -1.0);
        t->batch_max(ptrs.data(), count, n, out.data());
        for (std::size_t r = 0; r < count; ++r) {
          EXPECT_EQ(std::bit_cast<std::uint64_t>(out[r]),
                    std::bit_cast<std::uint64_t>(
                        detail::scalar_table().max_value(ptrs[r], n)))
              << "row " << r;
        }
      }
    }
  }
}

TEST(Kernels, Avx512TierRunsOnThisHostOrSkips) {
  // The dedicated presence check: on AVX-512 hosts the tier must actually
  // execute (a direct call, not just table registration); elsewhere the
  // test skips visibly instead of silently passing.
  if (!detail::avx512_supported()) {
    GTEST_SKIP() << "host has no AVX-512; tier compiled but not executable";
  }
  const double d[17] = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3, 2};
  EXPECT_EQ(detail::avx512_table().argmax(d, 17), 5u);  // first 9
  EXPECT_EQ(std::bit_cast<std::uint64_t>(detail::avx512_table().max_value(d, 17)),
            std::bit_cast<std::uint64_t>(9.0));
  EXPECT_STREQ(detail::avx512_table().name, "avx512");
}

TEST(Kernels, ForceResolutionOrderIsPinned) {
  // detail::resolve_tables is the pure rule behind active(); exercising it
  // directly pins the precedence across every environment combination
  // without forking per-env child processes.
  const Dispatch* scalar = &detail::scalar_table();
  const Dispatch* avx2 = &detail::avx2_table();
  const Dispatch* avx512 = &detail::avx512_table();
  const char* err = nullptr;

  // Unforced: best supported tier wins.
  EXPECT_EQ(detail::resolve_tables(nullptr, nullptr, true, true, &err), avx512);
  EXPECT_EQ(detail::resolve_tables(nullptr, nullptr, true, false, &err), avx2);
  EXPECT_EQ(detail::resolve_tables(nullptr, nullptr, false, false, &err),
            scalar);

  // PACGA_FORCE_KERNELS pins a tier; supported requests are honored...
  EXPECT_EQ(detail::resolve_tables("scalar", nullptr, true, true, &err),
            scalar);
  EXPECT_EQ(detail::resolve_tables("avx2", nullptr, true, true, &err), avx2);
  EXPECT_EQ(detail::resolve_tables("avx512", nullptr, true, true, &err),
            avx512);

  // ...unsupported or malformed ones are refused loudly (null + message),
  // never silently downgraded.
  EXPECT_EQ(detail::resolve_tables("avx512", nullptr, true, false, &err),
            nullptr);
  ASSERT_NE(err, nullptr);
  EXPECT_NE(std::string(err).find("avx512"), std::string::npos);
  EXPECT_EQ(detail::resolve_tables("avx2", nullptr, false, false, &err),
            nullptr);
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(detail::resolve_tables("sse9", nullptr, true, true, &err), nullptr);
  ASSERT_NE(err, nullptr);
  EXPECT_NE(std::string(err).find("unrecognized"), std::string::npos);

  // The legacy PACGA_FORCE_SCALAR alias still pins scalar — but only when
  // PACGA_FORCE_KERNELS is unset (or empty); the new variable wins.
  EXPECT_EQ(detail::resolve_tables(nullptr, "1", true, true, &err), scalar);
  EXPECT_EQ(detail::resolve_tables("", "1", true, true, &err), scalar);
  EXPECT_EQ(detail::resolve_tables(nullptr, "0", true, true, &err), avx512);
  EXPECT_EQ(detail::resolve_tables(nullptr, "", true, true, &err), avx512);
  EXPECT_EQ(detail::resolve_tables("avx512", "1", true, true, &err), avx512);
  EXPECT_EQ(detail::resolve_tables("avx2", "1", true, true, &err), avx2);
}

TEST(Kernels, ActiveDispatchIsOneOfTheTables) {
  const std::string name = active_dispatch();
  EXPECT_TRUE(name == "avx512" || name == "avx2" || name == "scalar");
  if (!detail::avx2_supported()) {
    EXPECT_EQ(name, "scalar");
  }
  // The forced-tier CI matrix runs the whole suite under each value of
  // PACGA_FORCE_KERNELS; the legacy PACGA_FORCE_SCALAR alias applies only
  // when the new variable is unset.
  const char* forced_tier = std::getenv("PACGA_FORCE_KERNELS");
  if (forced_tier && *forced_tier) {
    EXPECT_EQ(name, forced_tier);
  } else {
    const char* forced = std::getenv("PACGA_FORCE_SCALAR");
    if (forced && *forced && std::string(forced) != "0") {
      EXPECT_EQ(name, "scalar");
    }
  }
}

}  // namespace
}  // namespace pacga::support::kernels
