#include "cga/neighborhood.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace pacga::cga {
namespace {

TEST(Neighborhood, ShapeSizes) {
  EXPECT_EQ(shape_size(NeighborhoodShape::kLinear5), 5u);
  EXPECT_EQ(shape_size(NeighborhoodShape::kCompact9), 9u);
  EXPECT_EQ(shape_size(NeighborhoodShape::kLinear9), 9u);
  EXPECT_EQ(shape_size(NeighborhoodShape::kCompact13), 13u);
}

TEST(Neighborhood, SelfIsFirst) {
  for (auto shape :
       {NeighborhoodShape::kLinear5, NeighborhoodShape::kCompact9,
        NeighborhoodShape::kLinear9, NeighborhoodShape::kCompact13}) {
    const auto offs = offsets(shape);
    EXPECT_EQ(offs[0].dx, 0);
    EXPECT_EQ(offs[0].dy, 0);
  }
}

TEST(Neighborhood, L5IsVonNeumann) {
  const Grid g(16, 16);
  std::vector<std::size_t> out;
  neighborhood_of(g, g.index_of({5, 5}), NeighborhoodShape::kLinear5, out);
  const std::set<std::size_t> got(out.begin(), out.end());
  const std::set<std::size_t> want{
      g.index_of({5, 5}), g.index_of({6, 5}), g.index_of({4, 5}),
      g.index_of({5, 6}), g.index_of({5, 4})};
  EXPECT_EQ(got, want);
}

TEST(Neighborhood, WrapsAtEdges) {
  const Grid g(4, 4);
  std::vector<std::size_t> out;
  neighborhood_of(g, g.index_of({0, 0}), NeighborhoodShape::kLinear5, out);
  const std::set<std::size_t> got(out.begin(), out.end());
  const std::set<std::size_t> want{
      g.index_of({0, 0}), g.index_of({1, 0}), g.index_of({3, 0}),
      g.index_of({0, 1}), g.index_of({0, 3})};
  EXPECT_EQ(got, want);
}

TEST(Neighborhood, AllCellsWithinManhattanRadius) {
  const Grid g(16, 16);
  std::vector<std::size_t> out;
  const std::size_t center = g.index_of({7, 9});
  struct ShapeRadius {
    NeighborhoodShape shape;
    std::size_t radius;
  };
  for (auto [shape, radius] :
       {ShapeRadius{NeighborhoodShape::kLinear5, 1},
        ShapeRadius{NeighborhoodShape::kCompact9, 2},
        ShapeRadius{NeighborhoodShape::kLinear9, 2},
        ShapeRadius{NeighborhoodShape::kCompact13, 2}}) {
    neighborhood_of(g, center, shape, out);
    for (std::size_t cell : out) {
      EXPECT_LE(g.manhattan(g.cell_of(center), g.cell_of(cell)), radius)
          << to_string(shape);
    }
  }
}

TEST(Neighborhood, NoDuplicatesOnLargeGrid) {
  const Grid g(16, 16);
  std::vector<std::size_t> out;
  for (auto shape :
       {NeighborhoodShape::kLinear5, NeighborhoodShape::kCompact9,
        NeighborhoodShape::kLinear9, NeighborhoodShape::kCompact13}) {
    neighborhood_of(g, 37, shape, out);
    std::set<std::size_t> unique(out.begin(), out.end());
    EXPECT_EQ(unique.size(), out.size()) << to_string(shape);
  }
}

TEST(Neighborhood, DuplicatesCollapseOnTinyGrid) {
  // On a 2x2 torus, L5's four displacements alias each other.
  const Grid g(2, 2);
  std::vector<std::size_t> out;
  neighborhood_of(g, 0, NeighborhoodShape::kLinear5, out);
  EXPECT_EQ(out.size(), 5u);  // positions kept, values alias
  for (std::size_t cell : out) EXPECT_LT(cell, 4u);
}

TEST(Neighborhood, ScratchBufferReused) {
  const Grid g(8, 8);
  std::vector<std::size_t> out;
  neighborhood_of(g, 0, NeighborhoodShape::kCompact13, out);
  EXPECT_EQ(out.size(), 13u);
  neighborhood_of(g, 1, NeighborhoodShape::kLinear5, out);
  EXPECT_EQ(out.size(), 5u);  // cleared, not appended
}

TEST(Neighborhood, SymmetryOnTorus) {
  // If b is in neigh(a), then a is in neigh(b) (all shapes symmetric).
  const Grid g(16, 16);
  std::vector<std::size_t> na, nb;
  for (auto shape : {NeighborhoodShape::kLinear5, NeighborhoodShape::kCompact9}) {
    neighborhood_of(g, 20, shape, na);
    for (std::size_t b : na) {
      neighborhood_of(g, b, shape, nb);
      EXPECT_NE(std::find(nb.begin(), nb.end(), std::size_t{20}), nb.end());
    }
  }
}

}  // namespace
}  // namespace pacga::cga
