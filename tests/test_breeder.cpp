// Breeder correctness and the zero-allocation guarantee.
//
//  * every in-place operator path is cross-checked against
//    Schedule::validate() (full completion-time recomputation);
//  * in-place crossover produces bit-identical offspring to the historical
//    by-value operators from the same RNG state;
//  * Breeder::breed_into reproduces detail::breed exactly;
//  * a steady-state breeding step (select -> crossover -> mutate -> H2LL
//    -> evaluate -> replace) performs ZERO heap allocations after warm-up,
//    counted by overriding the global allocator in this binary.
#include "cga/breeder.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "cga/crossover.hpp"
#include "cga/engine.hpp"
#include "etc/suite.hpp"

// --- global allocation counter --------------------------------------------
// Counts every operator-new in the binary. gtest and the harness allocate
// too, so tests only ever compare deltas around code they fully control.

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace pacga::cga {
namespace {

etc::EtcMatrix instance(std::uint64_t seed = 7) {
  etc::GenSpec spec;
  spec.tasks = 128;
  spec.machines = 16;
  spec.consistency = etc::Consistency::kInconsistent;
  spec.seed = seed;
  return etc::generate(spec);
}

Config small_config() {
  Config c;
  c.width = 8;
  c.height = 8;
  c.local_search.iterations = 2;
  return c;
}

TEST(AssignFrom, CopiesAssignmentAndCache) {
  const auto m = instance();
  support::Xoshiro256 rng(1);
  const auto src = sched::Schedule::random(m, rng);
  sched::Schedule dst(m);  // degenerate all-on-machine-0 schedule
  dst.assign_from(src);
  EXPECT_EQ(dst, src);
  EXPECT_TRUE(dst.validate(1e-12));
  EXPECT_DOUBLE_EQ(dst.makespan(), src.makespan());
}

TEST(AssignFrom, ReusesCapacityWithoutAllocating) {
  const auto m = instance();
  support::Xoshiro256 rng(2);
  const auto a = sched::Schedule::random(m, rng);
  const auto b = sched::Schedule::random(m, rng);
  sched::Schedule dst = a;  // same shape: capacity is already right
  const std::uint64_t before = g_allocations.load();
  dst.assign_from(b);
  dst.assign_from(a);
  EXPECT_EQ(g_allocations.load(), before);
}

TEST(CrossoverInto, MatchesByValueOperators) {
  const auto m = instance();
  support::Xoshiro256 rng(3);
  const auto a = sched::Schedule::random(m, rng);
  const auto b = sched::Schedule::random(m, rng);
  for (auto kind : {CrossoverKind::kOnePoint, CrossoverKind::kTwoPoint,
                    CrossoverKind::kUniform}) {
    support::Xoshiro256 r1(99), r2(99);
    const auto by_value = crossover(kind, a, b, r1);
    sched::Schedule in_place(m);
    in_place.assign_from(a);
    crossover_into(kind, in_place, b, r2);
    EXPECT_EQ(in_place, by_value) << to_string(kind);
    EXPECT_TRUE(in_place.validate(1e-9)) << to_string(kind);
    EXPECT_EQ(r1(), r2()) << "RNG streams diverged for " << to_string(kind);
  }
}

TEST(Breeder, MatchesLegacyBreed) {
  const auto m = instance();
  const Config config = small_config();
  support::Xoshiro256 init(5);
  Grid grid(config.width, config.height);
  Population pop(m, grid, init, true, config.objective);

  Breeder breeder(m, config);
  Individual out(sched::Schedule(m), 0.0);
  std::vector<std::size_t> neigh;
  std::vector<double> fit;
  for (std::size_t cell = 0; cell < pop.size(); cell += 7) {
    support::Xoshiro256 r1(1000 + cell), r2(1000 + cell);
    const Individual legacy = detail::breed(pop, cell, config, r1, neigh, fit);
    breeder.breed_into(pop, cell, r2, out);
    EXPECT_EQ(out.schedule, legacy.schedule) << "cell " << cell;
    EXPECT_DOUBLE_EQ(out.fitness, legacy.fitness) << "cell " << cell;
    EXPECT_TRUE(out.schedule.validate(1e-9));
  }
}

TEST(Breeder, LockedMatchesUnsynchronized) {
  // Single-threaded, so the locked variant sees identical state; the two
  // paths must produce the same offspring from the same stream.
  const auto m = instance();
  const Config config = small_config();
  support::Xoshiro256 init(6);
  Grid grid(config.width, config.height);
  Population pop(m, grid, init, true, config.objective);

  Breeder breeder(m, config);
  Individual plain(sched::Schedule(m), 0.0);
  Individual locked(sched::Schedule(m), 0.0);
  for (std::size_t cell : {0u, 9u, 31u, 63u}) {
    support::Xoshiro256 r1(77 + cell), r2(77 + cell);
    breeder.breed_into(pop, cell, r1, plain);
    breeder.breed_locked_into(pop, cell, r2, locked);
    EXPECT_EQ(plain.schedule, locked.schedule) << "cell " << cell;
    EXPECT_DOUBLE_EQ(plain.fitness, locked.fitness);
  }
}

TEST(Breeder, SteadyStateBreedingStepAllocatesNothing) {
  // THE acceptance property of the refactor: after warm-up, one breeding
  // step (select -> crossover -> mutate -> H2LL -> evaluate -> replace)
  // performs zero heap allocations, in both the unsynchronized and the
  // locked form.
  const auto m = instance();
  Config config = small_config();
  config.local_search.iterations = 10;  // paper configuration
  support::Xoshiro256 init(8);
  Grid grid(config.width, config.height);
  Population pop(m, grid, init, true, config.objective);

  Breeder breeder(m, config);
  Individual out(sched::Schedule(m), 0.0);
  support::Xoshiro256 rng(9);

  auto steps = [&](bool locked, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t cell = i % pop.size();
      if (locked) {
        breeder.breed_locked_into(pop, cell, rng, out);
      } else {
        breeder.breed_into(pop, cell, rng, out);
      }
      if (detail::should_replace(config.replacement, out.fitness,
                                 pop.at(cell).fitness)) {
        Breeder::replace(pop.at(cell), out);
      }
    }
  };

  steps(false, pop.size());  // warm-up: sizes every scratch buffer
  steps(true, pop.size());
  const std::uint64_t before = g_allocations.load();
  steps(false, 4 * pop.size());
  steps(true, 4 * pop.size());
  EXPECT_EQ(g_allocations.load(), before)
      << "steady-state breeding steps must not touch the heap";
}

TEST(Breeder, BatchedEvaluationMatchesOneAtATimeGeneForGene) {
  // The sync engines defer evaluation (breed_*_deferred) and evaluate a
  // whole staged block through one kernel sweep (evaluate_batch). From
  // identical RNG streams the deferred+batched path must reproduce the
  // one-at-a-time path bit for bit: same genes (evaluation draws no RNG,
  // so the trajectories cannot diverge) and bit-identical fitness.
  const auto m = instance();
  const Config config = small_config();
  support::Xoshiro256 init(21);
  Grid grid(config.width, config.height);
  Population pop(m, grid, init, true, config.objective);

  Breeder one_at_a_time(m, config);
  Breeder batched(m, config);
  const std::size_t n = pop.size();
  std::vector<Individual> single;
  std::vector<Individual> staged;
  for (std::size_t i = 0; i < n; ++i) {
    single.emplace_back(sched::Schedule(m), 0.0);
    staged.emplace_back(sched::Schedule(m), 0.0);
  }
  for (std::size_t cell = 0; cell < n; ++cell) {
    support::Xoshiro256 r1(500 + cell), r2(500 + cell);
    one_at_a_time.breed_into(pop, cell, r1, single[cell]);
    batched.breed_into_deferred(pop, cell, r2, staged[cell]);
    EXPECT_EQ(r1(), r2()) << "RNG streams diverged at cell " << cell;
  }
  batched.evaluate_batch(staged.data(), n);
  for (std::size_t cell = 0; cell < n; ++cell) {
    EXPECT_EQ(staged[cell].schedule, single[cell].schedule)
        << "cell " << cell;
    EXPECT_DOUBLE_EQ(staged[cell].fitness, single[cell].fitness)
        << "cell " << cell;
  }

  // The locked deferred form matches too (single-threaded: same state).
  for (std::size_t cell : {0u, 9u, 31u, 63u}) {
    support::Xoshiro256 r1(500 + cell), r2(500 + cell);
    one_at_a_time.breed_into(pop, cell, r1, single[cell]);
    batched.breed_locked_into_deferred(pop, cell, r2, staged[cell]);
  }
  batched.evaluate_batch(staged.data(), 1);
  EXPECT_EQ(staged[0].schedule, single[0].schedule);
  EXPECT_DOUBLE_EQ(staged[0].fitness, single[0].fitness);
}

TEST(Breeder, BatchedEvaluationAllocatesNothingAfterWarmup) {
  // The batched path extends the zero-allocation invariant: after one
  // warm-up sweep (which sizes the batch scratch), a full stage + batch
  // evaluate + commit generation performs zero heap allocations.
  const auto m = instance();
  Config config = small_config();
  config.local_search.iterations = 10;  // paper configuration
  support::Xoshiro256 init(22);
  Grid grid(config.width, config.height);
  Population pop(m, grid, init, true, config.objective);

  Breeder breeder(m, config);
  const std::size_t n = pop.size();
  std::vector<Individual> staged;
  for (std::size_t i = 0; i < n; ++i) {
    staged.emplace_back(sched::Schedule(m), 0.0);
  }
  support::Xoshiro256 rng(23);

  auto generation = [&] {
    for (std::size_t cell = 0; cell < n; ++cell) {
      breeder.breed_locked_into_deferred(pop, cell, rng, staged[cell]);
    }
    breeder.evaluate_batch(staged.data(), n);
    for (std::size_t cell = 0; cell < n; ++cell) {
      if (detail::should_replace(config.replacement, staged[cell].fitness,
                                 pop.at(cell).fitness)) {
        Breeder::replace(pop.at(cell), staged[cell]);
      }
    }
  };

  generation();  // warm-up: sizes every scratch buffer incl. the batch
  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 4; ++i) generation();
  EXPECT_EQ(g_allocations.load(), before)
      << "staged generation with batched evaluation must not touch the heap";
}

TEST(Flowtime, AllocationFreeAfterWarmup) {
  // flowtime() groups per-machine ETCs with a counting sort into
  // thread-local scratch; once the scratch has seen the shape, repeated
  // evaluations must not touch the heap (it sits on the multi-objective
  // evaluation path).
  const auto m = instance();
  support::Xoshiro256 rng(13);
  const auto s = sched::Schedule::random(m, rng);
  const double first = s.flowtime();  // warm-up: sizes the scratch
  const std::uint64_t before = g_allocations.load();
  bool stable = true;
  for (int i = 0; i < 50; ++i) stable = stable && (s.flowtime() == first);
  EXPECT_EQ(g_allocations.load(), before)
      << "steady-state flowtime must not touch the heap";
  EXPECT_TRUE(stable) << "flowtime must be deterministic";
}

TEST(BestTracker, ObserveDoesNotAllocateAfterConstruction) {
  const auto m = instance();
  support::Xoshiro256 rng(11);
  BestTracker best(
      Individual::evaluated(sched::Schedule::random(m, rng),
                            sched::Objective::kMakespan));
  Individual candidate =
      Individual::evaluated(sched::Schedule::random(m, rng),
                            sched::Objective::kMakespan);
  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 100; ++i) {
    candidate.fitness = best.fitness() - 1.0;  // always an improvement
    best.observe(candidate);
  }
  EXPECT_EQ(g_allocations.load(), before);
}

}  // namespace
}  // namespace pacga::cga
