#include "support/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace pacga::support {
namespace {

TEST(CsvWriter, PlainRow) {
  std::ostringstream out;
  CsvWriter w(out);
  w.row({"a", "b", "c"});
  EXPECT_EQ(out.str(), "a,b,c\n");
}

TEST(CsvWriter, QuotesSpecialCharacters) {
  std::ostringstream out;
  CsvWriter w(out);
  w.row({"has,comma", "has\"quote", "has\nnewline", "plain"});
  EXPECT_EQ(out.str(), "\"has,comma\",\"has\"\"quote\",\"has\nnewline\",plain\n");
}

TEST(CsvWriter, DoubleFieldRoundTrips) {
  const std::string f = CsvWriter::field(0.1);
  EXPECT_DOUBLE_EQ(std::stod(f), 0.1);
}

TEST(CsvWriter, IntegerFields) {
  EXPECT_EQ(CsvWriter::field(std::size_t{42}), "42");
  EXPECT_EQ(CsvWriter::field(-7), "-7");
}

TEST(ConsoleTable, AlignsColumns) {
  ConsoleTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "22"});
  std::ostringstream out;
  t.print(out);
  const std::string s = out.str();
  // Header, rule, two rows.
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  int lines = 0;
  for (char c : s) lines += (c == '\n');
  EXPECT_EQ(lines, 4);
}

TEST(ConsoleTable, ShortRowsArePadded) {
  ConsoleTable t({"a", "b", "c"});
  t.add_row({"only-one"});
  std::ostringstream out;
  t.print(out);  // must not crash; missing cells become empty
  EXPECT_EQ(t.rows(), 1u);
}

TEST(ConsoleTable, CsvExportMatchesContent) {
  ConsoleTable t({"h1", "h2"});
  t.add_row({"v1", "v2"});
  std::ostringstream out;
  t.print_csv(out);
  EXPECT_EQ(out.str(), "h1,h2\nv1,v2\n");
}

TEST(FormatNumber, SmallUsesFixed) {
  EXPECT_EQ(format_number(5240.1, 6), "5240.1");
}

TEST(FormatNumber, LargeUsesScientific) {
  const std::string s = format_number(7752349.4, 6);
  EXPECT_NE(s.find('e'), std::string::npos);
}

TEST(FormatNumber, Zero) { EXPECT_EQ(format_number(0.0), "0"); }

}  // namespace
}  // namespace pacga::support
