// End-to-end integration tests: the full paper pipeline at reduced scale —
// generate a Braun instance, run every algorithm family, compare outcomes.
#include <gtest/gtest.h>

#include "support/stats.hpp"

#include "baselines/cma_lth.hpp"
#include "baselines/struggle_ga.hpp"
#include "cga/engine.hpp"
#include "etc/io.hpp"
#include "etc/suite.hpp"
#include "heuristics/listsched.hpp"
#include "heuristics/minmin.hpp"
#include "pacga/parallel_engine.hpp"

#include <filesystem>

namespace pacga {
namespace {

TEST(Integration, FullPipelineOnRealInstanceShape) {
  // The actual paper shape: 512 tasks x 16 machines, 16x16 population —
  // run a few generations of each algorithm and verify the quality chain
  // random < heuristic <= metaheuristic.
  const auto m = etc::generate_by_name("u_i_hihi.0");

  support::Xoshiro256 rng(1);
  const double random_ms = sched::Schedule::random(m, rng).makespan();
  const double minmin_ms = heur::min_min(m).makespan();

  cga::Config c;
  c.termination = cga::Termination::after_generations(5);
  c.threads = 3;
  const auto pa = par::run_parallel(m, c);

  EXPECT_LT(minmin_ms, random_ms);
  EXPECT_LE(pa.result.best_fitness, minmin_ms + 1e-9);
  EXPECT_TRUE(pa.result.best.validate(1e-9));
}

TEST(Integration, AllAlgorithmsBeatRandomOnEqualEvalBudget) {
  const auto m = etc::generate_by_name("u_s_hilo.0");
  constexpr std::uint64_t kBudget = 2000;

  support::Xoshiro256 rng(2);
  support::RunningStats random_ms;
  for (int i = 0; i < 30; ++i)
    random_ms.add(sched::Schedule::random(m, rng).makespan());

  cga::Config pc;
  pc.termination = cga::Termination::after_evaluations(kBudget);
  pc.seed_min_min = false;
  const double pa = par::run_parallel(m, pc).result.best_fitness;

  baseline::StruggleConfig sc;
  sc.seed_min_min = false;
  sc.termination = cga::Termination::after_evaluations(kBudget);
  const double sg = baseline::run_struggle_ga(m, sc).best_fitness;

  baseline::CmaLthConfig cc;
  cc.seed_min_min = false;
  cc.tabu.iterations = 5;
  cc.termination = cga::Termination::after_evaluations(kBudget);
  const double cm = baseline::run_cma_lth(m, cc).best_fitness;

  EXPECT_LT(pa, random_ms.mean());
  EXPECT_LT(sg, random_ms.mean());
  EXPECT_LT(cm, random_ms.mean());
}

TEST(Integration, PaCgaWithH2llBeatsPaCgaWithout) {
  // The paper's core claim in miniature: H2LL-equipped PA-CGA finds better
  // schedules for the same generation budget.
  const auto m = etc::generate_by_name("u_i_lohi.0");
  support::RunningStats with_ls, without_ls;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    cga::Config c;
    c.seed = seed;
    c.seed_min_min = false;
    c.threads = 3;
    c.termination = cga::Termination::after_generations(8);
    c.local_search.iterations = 10;
    with_ls.add(par::run_parallel(m, c).result.best_fitness);
    c.local_search.iterations = 0;
    without_ls.add(par::run_parallel(m, c).result.best_fitness);
  }
  EXPECT_LT(with_ls.mean(), without_ls.mean());
}

TEST(Integration, InstanceFileRoundTripPreservesAlgorithmBehaviour) {
  const auto m = etc::generate_by_name("u_c_lolo.0");
  const auto path =
      (std::filesystem::temp_directory_path() / "pacga_integ.etc").string();
  etc::write_braun_file(path, m);
  const auto loaded = etc::read_braun_file(path);
  std::filesystem::remove(path);

  cga::Config c;
  c.termination = cga::Termination::after_generations(3);
  c.threads = 2;
  // Identical instances + identical seeds -> single-thread determinism per
  // instance copy; multi-thread runs must at least produce valid results of
  // similar quality.
  c.threads = 1;
  const auto r1 = par::run_parallel(m, c);
  const auto r2 = par::run_parallel(loaded, c);
  EXPECT_DOUBLE_EQ(r1.result.best_fitness, r2.result.best_fitness);
}

TEST(Integration, TpxTenBeatsOpxFiveOnAggregate) {
  // Figure 5's headline: tpx/10 statistically beats opx/5. At test scale we
  // check the aggregate means over a few seeds and instances.
  support::RunningStats tpx10, opx5;
  for (const char* name : {"u_i_hihi.0", "u_s_lohi.0"}) {
    const auto m = etc::generate_by_name(name);
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      cga::Config c;
      c.seed = seed;
      c.threads = 3;
      c.seed_min_min = false;
      c.termination = cga::Termination::after_generations(6);
      c.crossover = cga::CrossoverKind::kTwoPoint;
      c.local_search.iterations = 10;
      tpx10.add(par::run_parallel(m, c).result.best_fitness /
                heur::min_min(m).makespan());
      c.crossover = cga::CrossoverKind::kOnePoint;
      c.local_search.iterations = 5;
      opx5.add(par::run_parallel(m, c).result.best_fitness /
               heur::min_min(m).makespan());
    }
  }
  EXPECT_LE(tpx10.mean(), opx5.mean() * 1.02);
}

TEST(Integration, LongerBudgetNeverHurts) {
  const auto m = etc::generate_by_name("u_c_hilo.0");
  cga::Config c;
  c.threads = 2;
  c.seed = 3;
  c.termination = cga::Termination::after_generations(3);
  const double short_run = par::run_parallel(m, c).result.best_fitness;
  c.termination = cga::Termination::after_generations(20);
  const double long_run = par::run_parallel(m, c).result.best_fitness;
  EXPECT_LE(long_run, short_run + 1e-9);
}

/// Paper-scale smoke (disabled by default: 90 s wall time). Run with
///   ./pacga_tests --gtest_also_run_disabled_tests \
///                 --gtest_filter='*FullPaperBudget*'
TEST(Integration, DISABLED_FullPaperBudget) {
  const auto m = etc::generate_by_name("u_c_hihi.0");
  cga::Config c;  // Table 1 defaults: tpx, H2LL(10), 3 threads
  c.termination = cga::Termination::after_seconds(90.0);
  const auto r = par::run_parallel(m, c);
  EXPECT_TRUE(r.result.best.validate(1e-9));
  // The paper's 90 s mean for this instance is ~7.44e6 on 2007 hardware;
  // on anything modern the run should land clearly below Min-min.
  EXPECT_LT(r.result.best_fitness, heur::min_min(m).makespan());
}

/// Property sweep: PA-CGA honors its contracts on every instance of the
/// paper's benchmark suite at full 512x16 scale.
class SuiteWideTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SuiteWideTest, PaCgaValidOnEveryInstance) {
  const auto m = etc::generate_by_name(GetParam());
  cga::Config c;
  c.threads = 3;
  c.seed = support::seed_from_string(GetParam().c_str());
  c.termination = cga::Termination::after_generations(3);
  const auto r = par::run_parallel(m, c);
  EXPECT_TRUE(r.result.best.validate(1e-9));
  EXPECT_DOUBLE_EQ(r.result.best.makespan(), r.result.best_fitness);
  EXPECT_LE(r.result.best_fitness, heur::min_min(m).makespan() + 1e-9);
  EXPECT_GT(r.result.evaluations, 0u);
}

INSTANTIATE_TEST_SUITE_P(BraunSuite, SuiteWideTest,
                         ::testing::ValuesIn(etc::braun_suite_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& ch : n) {
                             if (ch == '.') ch = '_';
                           }
                           return n;
                         });

}  // namespace
}  // namespace pacga
