// Observability-layer tests:
//
//  * histogram geometry — values below 32 bucket EXACTLY, values above
//    report within 1/32 of the true magnitude, the top bucket saturates;
//  * quantiles — NaN on empty, exact on point masses, clamped q;
//  * merge — the merge of N single-writer histograms is BIT-EQUAL to one
//    serial histogram fed the same samples (the snapshot() contract);
//  * trace ring — FIFO below capacity, wrap drops the OLDEST records and
//    keeps the newest, and a reader racing the writer never sees a torn
//    record (run under TSan in CI: the ring is relaxed atomics + one
//    release publish, so any locking bug is a data-race report).
#include "obs/histogram.hpp"
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <thread>
#include <vector>

namespace pacga::obs {
namespace {

#if !defined(PACGA_NO_OBS)

// --- histogram geometry -----------------------------------------------------

TEST(HistGeometry, ExactBelowSubBuckets) {
  for (std::uint64_t v = 0; v < kHistSubBuckets; ++v) {
    EXPECT_EQ(hist_index_of(v), v);
    EXPECT_EQ(hist_value_at(v), v);
  }
}

TEST(HistGeometry, RelativeErrorBoundedAbove) {
  // The reported value (the bucket's upper edge) is >= the sample and
  // within 1/32 of it, across the whole dynamic range.
  for (std::uint64_t v : {32ull, 33ull, 63ull, 64ull, 100ull, 999ull,
                          1'000'000ull, 123'456'789ull, 987'654'321'000ull}) {
    const std::size_t idx = hist_index_of(v);
    const std::uint64_t reported = hist_value_at(idx);
    EXPECT_GE(reported, v) << v;
    EXPECT_LE(static_cast<double>(reported - v), static_cast<double>(v) / 32.0)
        << v;
  }
}

TEST(HistGeometry, IndexIsMonotone) {
  std::size_t prev = 0;
  for (std::uint64_t v = 0; v < 100'000; v += 7) {
    const std::size_t idx = hist_index_of(v);
    EXPECT_GE(idx, prev);
    prev = idx;
  }
}

TEST(HistGeometry, Saturates) {
  const std::uint64_t huge = 1ull << (kHistMaxExponent + 3);
  EXPECT_EQ(hist_index_of(huge), kHistBuckets - 1);
  EXPECT_EQ(hist_index_of(~0ull), kHistBuckets - 1);
}

// --- quantiles --------------------------------------------------------------

TEST(HistQuantile, EmptyIsNaN) {
  LatencyHistogram h;
  const HistogramSnapshot s = h.snapshot();
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(std::isnan(s.quantile_ns(0.5)));
  EXPECT_TRUE(std::isnan(s.quantile_ms(0.99)));
}

TEST(HistQuantile, PointMassAndEdges) {
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.record_ns(17);  // exact bucket
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count(), 100u);
  EXPECT_EQ(s.quantile_ns(0.0), 17.0);
  EXPECT_EQ(s.quantile_ns(0.5), 17.0);
  EXPECT_EQ(s.quantile_ns(1.0), 17.0);
  EXPECT_EQ(s.quantile_ns(-3.0), 17.0);  // q clamps
  EXPECT_EQ(s.quantile_ns(7.0), 17.0);
}

TEST(HistQuantile, SplitsMedian) {
  LatencyHistogram h;
  for (int i = 0; i < 50; ++i) h.record_ns(10);
  for (int i = 0; i < 50; ++i) h.record_ns(20);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.quantile_ns(0.25), 10.0);
  EXPECT_EQ(s.quantile_ns(0.50), 10.0);  // ceil(0.5 * 100) = 50th sample
  EXPECT_EQ(s.quantile_ns(0.51), 20.0);
  EXPECT_EQ(s.quantile_ns(0.99), 20.0);
}

TEST(HistQuantile, RecordSecondsClampsGarbage) {
  LatencyHistogram h;
  h.record_seconds(-1.0);  // negative clamps to 0
  h.record_seconds(std::nan(""));
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count(), 2u);
  EXPECT_EQ(s.quantile_ns(1.0), 0.0);
}

TEST(HistQuantile, DisabledRecordsNothing) {
  LatencyHistogram h(false);
  h.record_ns(5);
  h.record_seconds(1.0);
  EXPECT_TRUE(h.snapshot().empty());
}

// --- merge ------------------------------------------------------------------

TEST(HistMerge, BitEqualToSerial) {
  // The same sample stream split round-robin across 4 single-writer
  // histograms and merged must give the IDENTICAL bucket vector as one
  // histogram fed everything serially.
  constexpr std::size_t kWorkers = 4;
  LatencyHistogram serial;
  LatencyHistogram sharded[kWorkers];
  std::uint64_t v = 1;
  for (std::size_t i = 0; i < 10'000; ++i) {
    v = v * 2862933555777941757ull + 3037000493ull;  // LCG spread
    const std::uint64_t sample = v >> (v % 40);      // cover the range
    serial.record_ns(sample);
    sharded[i % kWorkers].record_ns(sample);
  }
  HistogramSnapshot merged;
  for (const LatencyHistogram& h : sharded) merged.merge(h.snapshot());
  EXPECT_EQ(merged.counts(), serial.snapshot().counts());
  EXPECT_EQ(merged.count(), serial.snapshot().count());
}

// --- trace ring -------------------------------------------------------------

SpanEvent make_event(std::uint64_t i) {
  // Every field derives from i, so a reader can prove a record untorn.
  SpanEvent e;
  e.job_id = i;
  e.ts_ns = i * 3 + 1;
  e.dur_ns = i * 5 + 2;
  e.worker = static_cast<std::uint32_t>(i % 7);
  e.kind = static_cast<SpanKind>(i % kSpanKinds);
  e.a = i ^ 0xabcdef;
  e.b = ~i;
  return e;
}

void expect_consistent(const SpanEvent& e) {
  const std::uint64_t i = e.job_id;
  EXPECT_EQ(e.ts_ns, i * 3 + 1);
  EXPECT_EQ(e.dur_ns, i * 5 + 2);
  EXPECT_EQ(e.worker, static_cast<std::uint32_t>(i % 7));
  EXPECT_EQ(e.kind, static_cast<SpanKind>(i % kSpanKinds));
  EXPECT_EQ(e.a, i ^ 0xabcdef);
  EXPECT_EQ(e.b, ~i);
}

TEST(TraceRing, FifoBelowCapacity) {
  TraceRing ring(64);
  EXPECT_EQ(ring.capacity(), 64u);
  for (std::uint64_t i = 0; i < 10; ++i) ring.push(make_event(i));
  const std::vector<SpanEvent> got = ring.snapshot();
  ASSERT_EQ(got.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(got[i].job_id, i);
    expect_consistent(got[i]);
  }
}

TEST(TraceRing, CapacityRoundsUpToPowerOfTwo) {
  TraceRing ring(33);
  EXPECT_EQ(ring.capacity(), 64u);
}

TEST(TraceRing, WrapDropsOldestKeepsNewest) {
  TraceRing ring(16);
  const std::uint64_t total = 16 * 3 + 5;
  for (std::uint64_t i = 0; i < total; ++i) ring.push(make_event(i));
  EXPECT_EQ(ring.pushed(), total);
  // Once wrapped, a snapshot yields capacity - 1 records: the oldest slot
  // in the window is the one a (potentially in-flight) next push would be
  // overwriting, so the reader conservatively drops it too.
  const std::vector<SpanEvent> got = ring.snapshot();
  ASSERT_EQ(got.size(), 15u);
  for (std::size_t k = 0; k < got.size(); ++k) {
    EXPECT_EQ(got[k].job_id, total - 15 + k);
    expect_consistent(got[k]);
  }
}

TEST(TraceRing, ZeroCapacityDisables) {
  TraceRing ring(0);
  EXPECT_EQ(ring.capacity(), 0u);
  ring.push(make_event(1));
  EXPECT_TRUE(ring.snapshot().empty());
  EXPECT_EQ(ring.pushed(), 0u);
}

TEST(TraceRing, ConcurrentReaderNeverSeesTornRecord) {
  // One writer streams self-consistent records through a small ring (to
  // force constant wrapping) while a reader snapshots as fast as it can.
  // Every surviving record must be internally consistent (untorn) and in
  // strictly increasing order (drop-oldest keeps a contiguous suffix).
  TraceRing ring(32);
  constexpr std::uint64_t kTotal = 200'000;
  std::atomic<bool> done{false};

  std::thread writer([&] {
    for (std::uint64_t i = 0; i < kTotal; ++i) ring.push(make_event(i));
    done.store(true, std::memory_order_release);
  });

  // do-while: on a 1-core box the writer can finish before this thread is
  // ever scheduled — still validate at least one (then quiescent) snapshot.
  std::uint64_t snapshots = 0, records = 0;
  do {
    const std::vector<SpanEvent> got = ring.snapshot();
    ++snapshots;
    records += got.size();
    std::uint64_t prev = 0;
    bool first = true;
    for (const SpanEvent& e : got) {
      expect_consistent(e);
      if (!first) {
        EXPECT_EQ(e.job_id, prev + 1);  // contiguous suffix
      }
      prev = e.job_id;
      first = false;
    }
  } while (!done.load(std::memory_order_acquire));
  writer.join();
  const std::vector<SpanEvent> final_snap = ring.snapshot();
  ASSERT_EQ(final_snap.size(), 31u);  // capacity - 1 once wrapped
  EXPECT_EQ(final_snap.back().job_id, kTotal - 1);
  EXPECT_GT(snapshots, 0u);
  (void)records;
}

TEST(Histogram, ConcurrentSnapshotNeverTears) {
  // Snapshot counts are monotone under a racing writer: a later snapshot
  // can only see MORE samples, and never more than were written.
  LatencyHistogram h;
  constexpr std::uint64_t kTotal = 200'000;
  std::atomic<bool> done{false};

  std::thread writer([&] {
    for (std::uint64_t i = 0; i < kTotal; ++i) h.record_ns(i % 4096);
    done.store(true, std::memory_order_release);
  });

  std::uint64_t prev_count = 0;
  while (!done.load(std::memory_order_acquire)) {
    const std::uint64_t c = h.snapshot().count();
    EXPECT_GE(c, prev_count);
    EXPECT_LE(c, kTotal);
    prev_count = c;
  }
  writer.join();
  EXPECT_EQ(h.snapshot().count(), kTotal);
}

// --- collector / tracer / export -------------------------------------------

TEST(TraceCollector, MergedSnapshotSortsAndFiltersByJob) {
  TraceCollector collector(2, 64);
  ASSERT_TRUE(collector.enabled());
  WorkerTracer t0(&collector, 0), t1(&collector, 1);
  t0.span(SpanKind::kServe, /*job=*/1, 100, 200);
  t1.span(SpanKind::kServe, /*job=*/2, 50, 80);
  t0.instant(SpanKind::kCompleted, /*job=*/1);

  const std::vector<SpanEvent> all = collector.snapshot();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_LE(all[0].ts_ns, all[1].ts_ns);  // sorted by ts
  EXPECT_LE(all[1].ts_ns, all[2].ts_ns);

  const std::vector<SpanEvent> job1 = collector.job_spans(1);
  ASSERT_EQ(job1.size(), 2u);
  EXPECT_EQ(job1[0].kind, SpanKind::kServe);
  EXPECT_EQ(job1[1].kind, SpanKind::kCompleted);
  EXPECT_TRUE(collector.job_spans(99).empty());
}

TEST(TraceCollector, DisabledCollectorIsInert) {
  TraceCollector collector(2, 0);
  EXPECT_FALSE(collector.enabled());
  WorkerTracer t(&collector, 0);
  EXPECT_FALSE(t.enabled());
  t.span(SpanKind::kServe, 1, 0, 10);
  t.instant(SpanKind::kCompleted, 1);
  EXPECT_TRUE(collector.snapshot().empty());
}

TEST(WorkerTracer, NullCollectorIsSafe) {
  WorkerTracer t;  // default: no collector
  EXPECT_FALSE(t.enabled());
  EXPECT_EQ(t.now_ns(), 0u);
  t.span(SpanKind::kServe, 1, 0, 10);
  t.instant(SpanKind::kGeneration, 1, 4, 0);
  WorkerTracer t2(nullptr, 3);
  EXPECT_FALSE(t2.enabled());
  t2.span(SpanKind::kServe, 1, 0, 10);
}

TEST(TraceExport, ChromeJsonShapeAndTimeline) {
  TraceCollector collector(1, 64);
  WorkerTracer t(&collector, 0);
  t.span(SpanKind::kQueueWait, 1, 0, 1'000'000, /*shard=*/3, /*stolen=*/0);
  t.span(SpanKind::kServe, 1, 1'000'000, 5'000'000, 0, 2);
  t.instant(SpanKind::kCompleted, 1);

  std::ostringstream out;
  collector.write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"queue_wait\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);

  const std::string line = format_job_timeline(collector.job_spans(1));
  EXPECT_NE(line.find("queue_wait@0.000+1.000"), std::string::npos);
  EXPECT_NE(line.find("serve@1.000+4.000"), std::string::npos);
  EXPECT_NE(line.find("completed@"), std::string::npos);
}

TEST(SpanKindNames, StableAndClassified) {
  for (std::size_t k = 0; k < kSpanKinds; ++k) {
    const char* name = to_string(static_cast<SpanKind>(k));
    ASSERT_NE(name, nullptr);
    EXPECT_GT(std::string(name).size(), 0u);
  }
  EXPECT_STREQ(to_string(SpanKind::kQueueWait), "queue_wait");
  EXPECT_STREQ(to_string(SpanKind::kWarmCga), "warm_cga");
  EXPECT_TRUE(span_has_duration(SpanKind::kServe));
  EXPECT_FALSE(span_has_duration(SpanKind::kGeneration));
  EXPECT_FALSE(span_has_duration(SpanKind::kCompleted));
}

#else  // PACGA_NO_OBS: the stubs keep the interface but store nothing.

TEST(NoObs, StubsAreInert) {
  LatencyHistogram h;
  h.record_ns(5);
  EXPECT_TRUE(h.snapshot().empty());
  TraceRing ring(64);
  ring.push(SpanEvent{});
  EXPECT_TRUE(ring.snapshot().empty());
}

#endif

}  // namespace
}  // namespace pacga::obs
