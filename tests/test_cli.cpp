#include "support/cli.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace pacga::support {
namespace {

/// argv helper: keeps string storage alive for the parse call.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : storage_(std::move(args)) {
    ptrs_.push_back(const_cast<char*>("prog"));
    for (auto& s : storage_) ptrs_.push_back(s.data());
  }
  int argc() const { return static_cast<int>(ptrs_.size()); }
  char** argv() { return ptrs_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> ptrs_;
};

TEST(Cli, ParsesTypedOptions) {
  int i = 0;
  double d = 0.0;
  std::string s;
  std::size_t z = 0;
  Cli cli("test");
  cli.option("int", &i, "an int")
      .option("dbl", &d, "a double")
      .option("str", &s, "a string")
      .option("sz", &z, "a size");
  Argv a({"--int", "42", "--dbl", "2.5", "--str", "hello", "--sz", "7"});
  ASSERT_TRUE(cli.parse(a.argc(), a.argv()));
  EXPECT_EQ(i, 42);
  EXPECT_DOUBLE_EQ(d, 2.5);
  EXPECT_EQ(s, "hello");
  EXPECT_EQ(z, 7u);
}

TEST(Cli, EqualsSyntax) {
  int i = 0;
  Cli cli("test");
  cli.option("n", &i, "n");
  Argv a({"--n=13"});
  ASSERT_TRUE(cli.parse(a.argc(), a.argv()));
  EXPECT_EQ(i, 13);
}

TEST(Cli, FlagSetsBool) {
  bool f = false;
  Cli cli("test");
  cli.flag("full", &f, "run full");
  Argv a({"--full"});
  ASSERT_TRUE(cli.parse(a.argc(), a.argv()));
  EXPECT_TRUE(f);
}

TEST(Cli, DefaultsPreservedWhenAbsent) {
  int i = 99;
  bool f = false;
  Cli cli("test");
  cli.option("n", &i, "n").flag("f", &f, "f");
  Argv a({});
  ASSERT_TRUE(cli.parse(a.argc(), a.argv()));
  EXPECT_EQ(i, 99);
  EXPECT_FALSE(f);
}

TEST(Cli, UnknownOptionThrows) {
  Cli cli("test");
  Argv a({"--nope"});
  EXPECT_THROW(cli.parse(a.argc(), a.argv()), std::runtime_error);
}

TEST(Cli, MissingValueThrows) {
  int i = 0;
  Cli cli("test");
  cli.option("n", &i, "n");
  Argv a({"--n"});
  EXPECT_THROW(cli.parse(a.argc(), a.argv()), std::runtime_error);
}

TEST(Cli, MalformedNumberThrows) {
  int i = 0;
  Cli cli("test");
  cli.option("n", &i, "n");
  Argv a({"--n", "12x"});
  EXPECT_THROW(cli.parse(a.argc(), a.argv()), std::runtime_error);
}

TEST(Cli, NegativeSizeThrows) {
  std::size_t z = 0;
  Cli cli("test");
  cli.option("z", &z, "z");
  Argv a({"--z", "-3"});
  EXPECT_THROW(cli.parse(a.argc(), a.argv()), std::runtime_error);
}

TEST(Cli, FlagWithValueThrows) {
  bool f = false;
  Cli cli("test");
  cli.flag("f", &f, "f");
  Argv a({"--f=true"});
  EXPECT_THROW(cli.parse(a.argc(), a.argv()), std::runtime_error);
}

TEST(Cli, HelpReturnsFalse) {
  Cli cli("test");
  Argv a({"--help"});
  EXPECT_FALSE(cli.parse(a.argc(), a.argv()));
}

TEST(Cli, PositionalArgumentRejected) {
  Cli cli("test");
  Argv a({"stray"});
  EXPECT_THROW(cli.parse(a.argc(), a.argv()), std::runtime_error);
}

TEST(Cli, ChoiceOptionAcceptsListedValue) {
  std::string policy = "auto";
  Cli cli("test");
  cli.option("policy", &policy, {"auto", "minmin", "cga"}, "solve policy");
  Argv a({"--policy", "cga"});
  ASSERT_TRUE(cli.parse(a.argc(), a.argv()));
  EXPECT_EQ(policy, "cga");
}

TEST(Cli, ChoiceOptionEqualsSyntax) {
  std::string policy = "auto";
  Cli cli("test");
  cli.option("policy", &policy, {"auto", "minmin"}, "solve policy");
  Argv a({"--policy=minmin"});
  ASSERT_TRUE(cli.parse(a.argc(), a.argv()));
  EXPECT_EQ(policy, "minmin");
}

TEST(Cli, ChoiceOptionRejectsUnknownValue) {
  std::string policy = "auto";
  Cli cli("test");
  cli.option("policy", &policy, {"auto", "minmin"}, "solve policy");
  Argv a({"--policy", "genetic"});
  try {
    cli.parse(a.argc(), a.argv());
    FAIL() << "expected a usage error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("genetic"), std::string::npos);
    EXPECT_NE(msg.find("auto|minmin"), std::string::npos);
  }
  EXPECT_EQ(policy, "auto");  // target untouched on error
}

TEST(Cli, ChoiceOptionIsCaseSensitive) {
  std::string policy = "auto";
  Cli cli("test");
  cli.option("policy", &policy, {"auto"}, "solve policy");
  Argv a({"--policy", "AUTO"});
  EXPECT_THROW(cli.parse(a.argc(), a.argv()), std::runtime_error);
}

TEST(Cli, ChoiceOptionUsageListsChoices) {
  std::string policy = "auto";
  Cli cli("test");
  cli.option("policy", &policy, {"auto", "minmin", "cga"}, "solve policy");
  const std::string u = cli.usage();
  EXPECT_NE(u.find("auto|minmin|cga"), std::string::npos);
  EXPECT_NE(u.find("default: auto"), std::string::npos);
}

TEST(Cli, UsageMentionsOptionsAndDefaults) {
  int i = 5;
  Cli cli("my tool");
  cli.option("count", &i, "how many");
  const std::string u = cli.usage();
  EXPECT_NE(u.find("my tool"), std::string::npos);
  EXPECT_NE(u.find("--count"), std::string::npos);
  EXPECT_NE(u.find("how many"), std::string::npos);
  EXPECT_NE(u.find("default: 5"), std::string::npos);
}

}  // namespace
}  // namespace pacga::support
