// Scheduler-service subsystem tests:
//
//  * JobQueue: priority + FIFO ordering, backpressure (try_submit fails
//    fast when full), remove-for-cancel, close-and-drain semantics;
//  * SolutionCache: LRU eviction, better-fitness refresh, hit/miss counts;
//  * SchedulerService: concurrent submit/wait from many threads, cancel
//    before and while running, deadline-bounded anytime results, cache
//    hits returning the identical schedule, per-job seed determinism,
//    drain/shutdown, metrics accounting;
//  * WarmSolver: policy escalation and the zero-allocation guarantee —
//    a worker serving repeated same-shape jobs touches the heap neither
//    on the breeding path nor anywhere else in a kCga solve after
//    warm-up (operator-new counter, the test_breeder technique).
#include "service/service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <new>
#include <optional>
#include <sstream>
#include <thread>
#include <vector>

#include "etc/braun.hpp"
#include "heuristics/minmin.hpp"
#include "heuristics/sufferage.hpp"
#include "sched/fitness.hpp"
#include "service/exposition.hpp"
#include "service/solver_pool.hpp"
#include "support/failpoints.hpp"
#include "support/rng.hpp"
#include "support/threading.hpp"
#include "support/timer.hpp"

// --- global allocation counter (see test_breeder.cpp) ----------------------

// GCC flags std::free on new[]-ed pointers at inlined call sites, but the
// replacement operator new below IS malloc-backed — the pairing is correct.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace pacga::service {
namespace {

std::shared_ptr<const etc::EtcMatrix> instance(std::size_t tasks = 32,
                                               std::size_t machines = 8,
                                               std::uint64_t seed = 7) {
  etc::GenSpec spec;
  spec.tasks = tasks;
  spec.machines = machines;
  spec.consistency = etc::Consistency::kInconsistent;
  spec.seed = seed;
  return std::make_shared<const etc::EtcMatrix>(etc::generate(spec));
}

JobTicket ticket_with_priority(int priority) {
  auto t = std::make_shared<JobState>();
  t->spec.priority = priority;
  return t;
}

// --- JobQueue --------------------------------------------------------------

TEST(JobQueue, PriorityThenFifoOrder) {
  JobQueue q(8);
  auto lo1 = ticket_with_priority(0);
  auto hi = ticket_with_priority(5);
  auto lo2 = ticket_with_priority(0);
  ASSERT_TRUE(q.try_submit(lo1));
  ASSERT_TRUE(q.try_submit(hi));
  ASSERT_TRUE(q.try_submit(lo2));
  EXPECT_EQ(q.pop().get(), hi.get());   // highest priority first
  EXPECT_EQ(q.pop().get(), lo1.get());  // FIFO within a priority level
  EXPECT_EQ(q.pop().get(), lo2.get());
}

TEST(JobQueue, TrySubmitFailsFastWhenFull) {
  JobQueue q(2);
  EXPECT_TRUE(q.try_submit(ticket_with_priority(0)));
  EXPECT_TRUE(q.try_submit(ticket_with_priority(0)));
  EXPECT_FALSE(q.try_submit(ticket_with_priority(0)));
  EXPECT_EQ(q.size(), 2u);
  (void)q.pop();
  EXPECT_TRUE(q.try_submit(ticket_with_priority(0)));  // slot freed
}

TEST(JobQueue, RemoveDropsQueuedJob) {
  JobQueue q(4);
  auto a = ticket_with_priority(0);
  auto b = ticket_with_priority(0);
  ASSERT_TRUE(q.try_submit(a));
  ASSERT_TRUE(q.try_submit(b));
  EXPECT_TRUE(q.remove(a.get()));
  EXPECT_FALSE(q.remove(a.get()));  // already gone
  EXPECT_EQ(q.pop().get(), b.get());
}

TEST(JobQueue, CloseDrainsThenReturnsNull) {
  JobQueue q(4);
  auto a = ticket_with_priority(0);
  ASSERT_TRUE(q.try_submit(a));
  q.close();
  EXPECT_FALSE(q.try_submit(ticket_with_priority(0)));
  EXPECT_EQ(q.pop().get(), a.get());  // queued work is drained
  EXPECT_EQ(q.pop(), nullptr);        // then shutdown
}

TEST(JobQueue, BlockingSubmitWaitsForSlot) {
  JobQueue q(1);
  ASSERT_TRUE(q.try_submit(ticket_with_priority(0)));
  std::atomic<bool> admitted{false};
  std::thread t([&] {
    EXPECT_TRUE(q.submit(ticket_with_priority(0)));
    admitted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(admitted.load());  // still blocked on the full queue
  (void)q.pop();
  t.join();
  EXPECT_TRUE(admitted.load());
}

// --- ShardedJobQueue -------------------------------------------------------

JobTicket ticket_for_shard(std::uint32_t shard, int priority = 0) {
  auto t = ticket_with_priority(priority);
  t->shard = shard;
  return t;
}

TEST(ShardedJobQueue, ShapeRoutingIsStableAndSubmitFollowsTheTag) {
  ShardedJobQueue q(64, 4);
  const std::size_t s = q.shard_of_shape(32, 8);
  EXPECT_EQ(q.shard_of_shape(32, 8), s);  // pure function of the shape
  EXPECT_LT(s, q.shards());
  auto job = ticket_for_shard(static_cast<std::uint32_t>(s));
  ASSERT_TRUE(q.try_submit(job));
  const auto depths = q.depths();
  ASSERT_EQ(depths.size(), 4u);
  for (std::size_t i = 0; i < depths.size(); ++i) {
    EXPECT_EQ(depths[i], i == s ? 1u : 0u);
  }
}

TEST(ShardedJobQueue, HomeShardBeatsHigherPriorityNeighbor) {
  // Affinity before priority ACROSS shards: the pinned worker drains its
  // own (shape-matched) traffic even when a neighbor queues hotter jobs —
  // priority orders jobs WITHIN a shard, neighbors are served by their own
  // worker or by stealing when home is empty.
  ShardedJobQueue q(8, 2);
  auto home_job = ticket_for_shard(0, /*priority=*/0);
  auto hot_neighbor = ticket_for_shard(1, /*priority=*/9);
  ASSERT_TRUE(q.try_submit(hot_neighbor));
  ASSERT_TRUE(q.try_submit(home_job));
  EXPECT_EQ(q.pop(0).get(), home_job.get());
  EXPECT_EQ(q.steals(), 0u);
}

TEST(ShardedJobQueue, StealsFromNeighborWhenHomeIsEmpty) {
  ShardedJobQueue q(8, 3);
  auto stranded = ticket_for_shard(2);
  ASSERT_TRUE(q.try_submit(stranded));
  EXPECT_EQ(q.pop(0).get(), stranded.get());  // worker 0 steals from shard 2
  EXPECT_EQ(q.steals(), 1u);
}

TEST(ShardedJobQueue, RemoveRoutesToTheOwningShard) {
  ShardedJobQueue q(8, 2);
  auto a = ticket_for_shard(1);
  auto b = ticket_for_shard(1);
  ASSERT_TRUE(q.try_submit(a));
  ASSERT_TRUE(q.try_submit(b));
  EXPECT_TRUE(q.remove(a.get()));
  EXPECT_FALSE(q.remove(a.get()));  // already gone
  EXPECT_EQ(q.depths()[1], 1u);
  EXPECT_EQ(q.pop(1).get(), b.get());
}

TEST(ShardedJobQueue, CloseDrainsEveryShardThenReturnsNull) {
  ShardedJobQueue q(8, 3);
  auto a = ticket_for_shard(0);
  auto b = ticket_for_shard(1);
  auto c = ticket_for_shard(2);
  ASSERT_TRUE(q.try_submit(a));
  ASSERT_TRUE(q.try_submit(b));
  ASSERT_TRUE(q.try_submit(c));
  q.close();
  EXPECT_FALSE(q.try_submit(ticket_for_shard(0)));
  // Worker 0 drains its home first, then steals the strays.
  EXPECT_EQ(q.pop(0).get(), a.get());
  EXPECT_EQ(q.pop(0).get(), b.get());
  EXPECT_EQ(q.pop(0).get(), c.get());
  EXPECT_EQ(q.pop(0), nullptr);
  EXPECT_EQ(q.pop(2), nullptr);  // every consumer sees the shutdown
}

TEST(ShardedJobQueue, BackpressureIsPerShard) {
  // Total capacity 2 over 2 shards = 1 slot per shard: a hot shape fills
  // ITS shard without consuming the other tenant's admission slot.
  ShardedJobQueue q(2, 2);
  ASSERT_TRUE(q.try_submit(ticket_for_shard(0)));
  EXPECT_FALSE(q.try_submit(ticket_for_shard(0)));  // shard 0 full
  EXPECT_TRUE(q.try_submit(ticket_for_shard(1)));   // shard 1 unaffected
}

TEST(ShardedJobQueue, CapacitySplitsExactlyAcrossShards) {
  // Regression: max(1, capacity/shards) rounded the total DOWN (10 over 4
  // admitted 8) or UP (3 over 4 admitted 4 is the floor case and stays).
  // The split must hand out the remainder so shard capacities sum to
  // max(capacity, shards).
  const ShardedJobQueue q10(10, 4);
  EXPECT_EQ(q10.capacity(), 10u);
  EXPECT_EQ(q10.shard_capacity(0), 3u);  // 10 = 3 + 3 + 2 + 2
  EXPECT_EQ(q10.shard_capacity(1), 3u);
  EXPECT_EQ(q10.shard_capacity(2), 2u);
  EXPECT_EQ(q10.shard_capacity(3), 2u);
  const ShardedJobQueue q3(3, 4);  // under-provisioned: 1-per-shard floor
  EXPECT_EQ(q3.capacity(), 4u);
  for (std::size_t s = 0; s < 4; ++s) EXPECT_EQ(q3.shard_capacity(s), 1u);
  const ShardedJobQueue q8(8, 4);  // exact division unchanged
  EXPECT_EQ(q8.capacity(), 8u);
  for (std::size_t s = 0; s < 4; ++s) EXPECT_EQ(q8.shard_capacity(s), 2u);
}

TEST(ShardedJobQueue, TotalAdmittedBacklogEqualsRequestedCapacity) {
  // Fill every shard to refusal: the number of admitted jobs — the point
  // where backpressure starts across the whole queue — must equal the
  // requested capacity, not a rounded-down multiple of the shard count.
  ShardedJobQueue q(10, 4);
  std::size_t admitted = 0;
  for (std::uint32_t s = 0; s < 4; ++s) {
    while (q.try_submit(ticket_for_shard(s))) ++admitted;
  }
  EXPECT_EQ(admitted, 10u);
  EXPECT_EQ(q.size(), 10u);
}

TEST(ShardedJobQueue, BlockedSubmitWakesWhenAThiefDrainsTheShard) {
  ShardedJobQueue q(2, 2);
  ASSERT_TRUE(q.try_submit(ticket_for_shard(0)));
  std::atomic<bool> admitted{false};
  std::thread t([&] {
    EXPECT_TRUE(q.submit(ticket_for_shard(0)));
    admitted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(admitted.load());
  EXPECT_NE(q.pop(1), nullptr);  // worker 1 steals shard 0's job
  t.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_EQ(q.steals(), 1u);
}

// --- SolutionCache ---------------------------------------------------------

TEST(SolutionCache, LruEvictionAndCounts) {
  SolutionCache cache(2);
  const std::vector<sched::MachineId> a{0, 1}, b{1, 0}, c{1, 1};
  cache.insert(1, a, 10.0, SolvePolicy::kCga);
  cache.insert(2, b, 20.0, SolvePolicy::kCga);
  SolutionCache::Entry e;
  EXPECT_TRUE(cache.lookup(1, e));  // bumps key 1 to most-recent
  cache.insert(3, c, 30.0, SolvePolicy::kCga);  // evicts key 2 (LRU)
  EXPECT_FALSE(cache.lookup(2, e));
  EXPECT_TRUE(cache.lookup(3, e));
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(SolutionCache, KeepsBetterFitnessOnReinsertWithItsProvenance) {
  SolutionCache cache(4);
  const std::vector<sched::MachineId> good{0, 1}, bad{1, 0};
  cache.insert(1, bad, 50.0, SolvePolicy::kMinMin);
  cache.insert(1, good, 40.0, SolvePolicy::kCga);  // improves: replaces
  SolutionCache::Entry e;
  ASSERT_TRUE(cache.lookup(1, e));
  EXPECT_EQ(e.fitness, 40.0);
  EXPECT_EQ(e.assignment, good);
  EXPECT_EQ(e.policy, SolvePolicy::kCga);
  cache.insert(1, bad, 60.0, SolvePolicy::kSufferage);  // worse: kept out
  ASSERT_TRUE(cache.lookup(1, e));
  EXPECT_EQ(e.fitness, 40.0);
  EXPECT_EQ(e.policy, SolvePolicy::kCga);
}

TEST(SolutionCache, ZeroCapacityDisables) {
  SolutionCache cache(0);
  cache.insert(1, std::vector<sched::MachineId>{0}, 1.0, SolvePolicy::kCga);
  SolutionCache::Entry e;
  EXPECT_FALSE(cache.lookup(1, e));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(SolutionCache, StripesAreIndependent) {
  // The same key in different stripes addresses different entries — the
  // caller owns the key->stripe mapping (the service derives both from the
  // instance, so a key never visits two stripes in practice).
  SolutionCache cache(8, 2);
  EXPECT_EQ(cache.stripes(), 2u);
  const std::vector<sched::MachineId> a{0, 1}, b{1, 0};
  cache.insert(0, 7, a, 10.0, SolvePolicy::kCga);
  cache.insert(1, 7, b, 20.0, SolvePolicy::kMinMin);
  SolutionCache::Entry e;
  ASSERT_TRUE(cache.lookup(0, 7, e));
  EXPECT_EQ(e.assignment, a);
  EXPECT_EQ(e.fitness, 10.0);
  ASSERT_TRUE(cache.lookup(1, 7, e));
  EXPECT_EQ(e.assignment, b);
  EXPECT_EQ(e.fitness, 20.0);
  EXPECT_EQ(cache.size(), 2u);
  const auto per_stripe = cache.stripe_hits();
  ASSERT_EQ(per_stripe.size(), 2u);
  EXPECT_EQ(per_stripe[0], 1u);
  EXPECT_EQ(per_stripe[1], 1u);
  EXPECT_EQ(cache.hits(), 2u);
}

TEST(SolutionCache, EvictionPressureIsPerStripe) {
  // Capacity 4 over 2 stripes = 2 entries per stripe: overfilling one
  // stripe evicts within it and never touches the other.
  SolutionCache cache(4, 2);
  const std::vector<sched::MachineId> v{0};
  cache.insert(1, 100, v, 1.0, SolvePolicy::kCga);
  cache.insert(0, 1, v, 1.0, SolvePolicy::kCga);
  cache.insert(0, 2, v, 2.0, SolvePolicy::kCga);
  cache.insert(0, 3, v, 3.0, SolvePolicy::kCga);  // evicts key 1 (stripe 0 LRU)
  SolutionCache::Entry e;
  EXPECT_FALSE(cache.lookup(0, 1, e));
  EXPECT_TRUE(cache.lookup(0, 2, e));
  EXPECT_TRUE(cache.lookup(0, 3, e));
  EXPECT_TRUE(cache.lookup(1, 100, e)) << "other stripe must be untouched";
}

TEST(SolutionCache, SingleStripeDefaultKeepsTotalCapacity) {
  SolutionCache cache(8);
  EXPECT_EQ(cache.stripes(), 1u);
  EXPECT_EQ(cache.capacity(), 8u);
}

// --- ServiceMetrics (sharded merge equivalence) ----------------------------

TEST(ServiceMetrics, ShardedMergeMatchesAtomicTotalsUnderConcurrency) {
  // THE acceptance property of the per-worker metrics rewrite: with every
  // worker hammering its own slot, external events landing from other
  // threads, and a poller snapshotting mid-flight, the FINAL snapshot must
  // be bit-equal to the old single-accumulator implementation fed the same
  // per-worker sequences — integer totals exactly, Welford moments through
  // the same merge arithmetic in the same (worker-index) order.
  constexpr std::size_t kWorkers = 4;
  constexpr std::size_t kEventsPerWorker = 5000;
  ServiceMetrics metrics(kWorkers);

  struct Reference {
    std::uint64_t completed = 0, failed = 0, hits = 0, misses = 0, builds = 0;
    support::RunningStats wait, solve;
  };
  std::vector<Reference> ref(kWorkers);

  std::atomic<bool> stop_poller{false};
  std::thread poller([&] {
    // Concurrent snapshots must be safe (and sane), not exact: totals only
    // ever grow, and no read may tear a slot into an impossible state that
    // trips RunningStats (e.g. n > 0 with garbage moments).
    std::uint64_t last = 0;
    while (!stop_poller.load(std::memory_order_relaxed)) {
      const auto s = metrics.snapshot();
      EXPECT_GE(s.completed, last);
      last = s.completed;
      EXPECT_GE(s.queue_wait_seconds.count(), 0u);
      std::this_thread::yield();  // don't starve the workers on small boxes
    }
  });

  {
    support::ScopedThreads workers(kWorkers, [&](std::size_t w) {
      support::Xoshiro256 rng(1000 + w);
      const auto uniform = [&] {
        return static_cast<double>(rng() >> 11) * 0x1.0p-53;
      };
      Reference& r = ref[w];
      for (std::size_t i = 0; i < kEventsPerWorker; ++i) {
        const double wait = uniform() * 0.01;
        const double solve = uniform() * 0.05;
        const bool hit = (rng() & 7) == 0;
        const bool miss = (rng() & 15) == 0;
        if ((rng() & 63) == 0) {
          metrics.on_fail(w);
          ++r.failed;
        } else {
          metrics.on_complete(w, wait, solve, hit, miss);
          ++r.completed;
          r.hits += hit ? 1 : 0;
          r.misses += miss ? 1 : 0;
          r.wait.add(wait);
          r.solve.add(solve);
        }
        if ((rng() & 255) == 0) {
          const std::uint64_t n = 1 + (rng() & 3);
          metrics.add_arena_builds(w, n);
          r.builds += n;
        }
      }
    });
  }
  stop_poller.store(true, std::memory_order_relaxed);
  poller.join();

  const auto s = metrics.snapshot();
  std::uint64_t completed = 0, failed = 0, hits = 0, misses = 0, builds = 0;
  support::RunningStats wait, solve;
  for (std::size_t w = 0; w < kWorkers; ++w) {
    completed += ref[w].completed;
    failed += ref[w].failed;
    hits += ref[w].hits;
    misses += ref[w].misses;
    builds += ref[w].builds;
    EXPECT_EQ(s.worker_completed[w], ref[w].completed);
    // The old implementation's accumulator order: merge per-worker
    // sequences in worker order.
    wait.merge(ref[w].wait);
    solve.merge(ref[w].solve);
  }
  EXPECT_EQ(s.completed, completed);
  EXPECT_EQ(s.failed, failed);
  EXPECT_EQ(s.cache_hits, hits);
  EXPECT_EQ(s.deadline_misses, misses);
  EXPECT_EQ(s.arena_builds, builds);
  // Bit-equality of the merged Welford state: the per-worker slots ran the
  // exact RunningStats::add arithmetic, and snapshot() merged in the same
  // order as the reference loop above.
  EXPECT_EQ(s.queue_wait_seconds.count(), wait.count());
  EXPECT_EQ(s.queue_wait_seconds.mean(), wait.mean());
  EXPECT_EQ(s.queue_wait_seconds.variance(), wait.variance());
  EXPECT_EQ(s.queue_wait_seconds.min(), wait.min());
  EXPECT_EQ(s.queue_wait_seconds.max(), wait.max());
  EXPECT_EQ(s.solve_seconds.count(), solve.count());
  EXPECT_EQ(s.solve_seconds.mean(), solve.mean());
  EXPECT_EQ(s.solve_seconds.variance(), solve.variance());
  EXPECT_EQ(s.solve_seconds.min(), solve.min());
  EXPECT_EQ(s.solve_seconds.max(), solve.max());
}

TEST(ServiceMetrics, ExternalEventsAndArenaBuildsAggregate) {
  ServiceMetrics metrics(3);
  {
    support::ScopedThreads ext(4, [&](std::size_t) {
      for (int i = 0; i < 100; ++i) {
        metrics.on_submit();
        metrics.on_reschedule();
      }
      metrics.on_cancel();
    });
  }
  metrics.add_arena_builds(0, 2);
  metrics.add_arena_builds(2, 3);
  const auto s = metrics.snapshot();
  EXPECT_EQ(s.submitted, 400u);
  EXPECT_EQ(s.reschedules, 400u);
  EXPECT_EQ(s.cancelled, 4u);
  EXPECT_EQ(s.arena_builds, 5u);
  EXPECT_EQ(s.worker_completed.size(), 3u);
}

// --- SchedulerService ------------------------------------------------------

ServiceOptions small_service(std::size_t workers = 2,
                             std::size_t queue_capacity = 64,
                             std::size_t cache_capacity = 64) {
  ServiceOptions o;
  o.workers = workers;
  o.queue_capacity = queue_capacity;
  o.cache_capacity = cache_capacity;
  return o;
}

TEST(SchedulerService, SolvesAValidSchedule) {
  SchedulerService svc(small_service());
  auto m = instance();
  JobSpec spec;
  spec.etc = m;
  spec.deadline_ms = 50.0;
  const JobId id = svc.submit(spec);
  const JobResult r = svc.wait(id);
  EXPECT_EQ(r.status, JobStatus::kDone);
  ASSERT_EQ(r.assignment.size(), m->tasks());
  // The solver's fitness rides the incremental completion-time cache; a
  // from-scratch rebuild agrees to relative rounding error (same tolerance
  // rationale as Schedule::validate).
  const sched::Schedule s(*m, {r.assignment.begin(), r.assignment.end()});
  EXPECT_NEAR(s.makespan(), r.makespan, 1e-6 * s.makespan());
}

TEST(SchedulerService, ConcurrentSubmitWaitManyThreads) {
  SchedulerService svc(small_service(3, 128, 0));
  auto m = instance();
  constexpr std::size_t kClients = 6;
  constexpr std::size_t kJobsPerClient = 10;
  std::atomic<std::size_t> done{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t j = 0; j < kJobsPerClient; ++j) {
        JobSpec spec;
        spec.etc = m;
        spec.seed = c * 100 + j;
        spec.deadline_ms = 30.0;
        const JobResult r = svc.wait(svc.submit(spec));
        if (r.status == JobStatus::kDone && r.assignment.size() == m->tasks())
          done.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(done.load(), kClients * kJobsPerClient);
  const auto snap = svc.metrics();
  EXPECT_EQ(snap.completed, kClients * kJobsPerClient);
  EXPECT_EQ(snap.submitted, kClients * kJobsPerClient);
  EXPECT_EQ(snap.cancelled, 0u);
}

/// A job that occupies a worker for ~`ms` (CGA with a long deadline).
JobSpec long_job(const std::shared_ptr<const etc::EtcMatrix>& m, double ms) {
  JobSpec spec;
  spec.etc = m;
  spec.policy = SolvePolicy::kCga;
  spec.deadline_ms = ms;
  spec.use_cache = false;
  return spec;
}

TEST(SchedulerService, BackpressureOnFullQueue) {
  SchedulerService svc(small_service(1, 1, 0));
  auto m = instance();
  // One long job occupies the single worker; one more fills the queue.
  const JobId running = svc.submit(long_job(m, 2000.0));
  JobId queued = 0;
  // The first job may not have been popped yet; retry until the queue has
  // exactly the one slot taken and the next try_submit bounces.
  std::optional<JobId> extra;
  support::WallTimer t;
  for (;;) {
    auto id = svc.try_submit(long_job(m, 2000.0));
    if (!id) break;  // backpressure observed
    if (queued == 0) {
      queued = *id;
    } else {
      extra = *id;  // the worker drained one meanwhile; keep bookkeeping
    }
    ASSERT_LT(t.elapsed_seconds(), 5.0) << "queue never filled";
  }
  EXPECT_GT(svc.metrics().rejected, 0u);
  // Unblock quickly: cancel everything and drain.
  svc.cancel(running);
  if (queued != 0) svc.cancel(queued);
  if (extra) svc.cancel(*extra);
  svc.drain();
}

TEST(SchedulerService, CancelQueuedJobBeforeRun) {
  SchedulerService svc(small_service(1, 8, 0));
  auto m = instance();
  const JobId running = svc.submit(long_job(m, 1000.0));
  const JobId queued = svc.submit(long_job(m, 1000.0));
  EXPECT_TRUE(svc.cancel(queued));
  const JobResult r = svc.wait(queued);  // resolves immediately
  EXPECT_EQ(r.status, JobStatus::kCancelled);
  EXPECT_TRUE(r.assignment.empty());
  svc.cancel(running);
  svc.drain();
  EXPECT_GE(svc.metrics().cancelled, 2u);
}

TEST(SchedulerService, CancelRunningJobStopsEarly) {
  SchedulerService svc(small_service(1, 8, 0));
  auto m = instance(128, 16);
  const JobId id = svc.submit(long_job(m, 10000.0));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  support::WallTimer t;
  EXPECT_TRUE(svc.cancel(id));
  const JobResult r = svc.wait(id);
  // Cancellation is honored within one generation, nowhere near the 10 s
  // deadline.
  EXPECT_LT(t.elapsed_seconds(), 5.0);
  EXPECT_EQ(r.status, JobStatus::kCancelled);
}

TEST(SchedulerService, DeadlineBoundedAnytimeResult) {
  SchedulerService svc(small_service(1, 8, 0));
  auto m = instance(128, 16);
  constexpr double kDeadlineMs = 100.0;
  JobSpec spec;
  spec.etc = m;
  spec.policy = SolvePolicy::kCga;  // uncapped generations: deadline decides
  spec.deadline_ms = kDeadlineMs;
  spec.use_cache = false;
  support::WallTimer t;
  const JobResult r = svc.wait(svc.submit(spec));
  const double elapsed_ms = t.elapsed_seconds() * 1e3;
  EXPECT_EQ(r.status, JobStatus::kDone);
  EXPECT_GT(r.generations, 0u);
  ASSERT_EQ(r.assignment.size(), m->tasks());
  // Anytime contract: the answer arrives within the deadline plus one
  // generation's slack (generous CI margin).
  EXPECT_LT(elapsed_ms, kDeadlineMs + 250.0);
}

TEST(SchedulerService, CacheHitReturnsIdenticalSchedule) {
  SchedulerService svc(small_service(1, 8, 64));
  auto m = instance();
  JobSpec spec;
  spec.etc = m;
  spec.policy = SolvePolicy::kCga;
  spec.deadline_ms = 1000.0;
  spec.max_generations = 20;
  const JobResult first = svc.wait(svc.submit(spec));
  EXPECT_EQ(first.status, JobStatus::kDone);
  EXPECT_FALSE(first.cache_hit);
  const JobResult second = svc.wait(svc.submit(spec));
  EXPECT_EQ(second.status, JobStatus::kDone);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.assignment, first.assignment);
  EXPECT_DOUBLE_EQ(second.makespan, first.makespan);
  EXPECT_EQ(svc.metrics().cache_hits, 1u);
}

TEST(SchedulerService, CacheIsKeyedByPolicyAndReportsProvenance) {
  // A kMinMin tenant must never poison a kCga tenant's results, and a hit
  // reports the policy that PRODUCED the cached solution.
  SchedulerService svc(small_service(1, 8, 64));
  auto m = instance();
  JobSpec heuristic;
  heuristic.etc = m;
  heuristic.policy = SolvePolicy::kMinMin;
  heuristic.deadline_ms = 1000.0;
  const JobResult h1 = svc.wait(svc.submit(heuristic));
  EXPECT_FALSE(h1.cache_hit);

  JobSpec ga = heuristic;
  ga.policy = SolvePolicy::kCga;
  ga.max_generations = 10;
  const JobResult g1 = svc.wait(svc.submit(ga));
  EXPECT_FALSE(g1.cache_hit) << "kCga must not hit the kMinMin entry";
  EXPECT_EQ(g1.policy_used, SolvePolicy::kCga);

  const JobResult h2 = svc.wait(svc.submit(heuristic));
  EXPECT_TRUE(h2.cache_hit);
  EXPECT_EQ(h2.policy_used, SolvePolicy::kMinMin);  // producing policy
  const JobResult g2 = svc.wait(svc.submit(ga));
  EXPECT_TRUE(g2.cache_hit);
  EXPECT_EQ(g2.policy_used, SolvePolicy::kCga);
}

TEST(SchedulerService, CancelStopsParallelPolicyJob) {
  SchedulerService svc(small_service(1, 8, 0));
  auto m = instance(512, 16);
  JobSpec spec;
  spec.etc = m;
  spec.policy = SolvePolicy::kPaCga;
  spec.deadline_ms = 10000.0;
  spec.use_cache = false;
  const JobId id = svc.submit(spec);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  support::WallTimer t;
  svc.cancel(id);
  const JobResult r = svc.wait(id);
  EXPECT_LT(t.elapsed_seconds(), 5.0)
      << "PA-CGA jobs must honor cancellation, not run out their deadline";
  EXPECT_EQ(r.status, JobStatus::kCancelled);
}

TEST(SchedulerService, HugeFiniteDeadlineDoesNotWrap) {
  // 1e18 ms would overflow the steady_clock duration cast if taken
  // verbatim; the service caps it instead of serving a zero budget.
  SchedulerService svc(small_service(1, 8, 0));
  JobSpec spec;
  spec.etc = instance();
  spec.policy = SolvePolicy::kCga;
  spec.deadline_ms = 1e18;
  spec.max_generations = 5;
  spec.use_cache = false;
  const JobResult r = svc.wait(svc.submit(spec));
  EXPECT_EQ(r.status, JobStatus::kDone);
  EXPECT_EQ(r.generations, 5u);  // ran its generations, not a 0-budget path
  EXPECT_FALSE(r.deadline_missed);
}

TEST(SchedulerService, UnwaitedResultsAreBounded) {
  // Fire-and-forget tenants must not grow the registry without bound:
  // only the most recent kRetainedResults finished jobs stay waitable.
  SchedulerService svc(small_service(2, 64, 0));
  auto m = instance(8, 4);  // tiny: heuristic path, microseconds per job
  JobSpec spec;
  spec.etc = m;
  spec.deadline_ms = 1000.0;
  const JobId first = svc.submit(spec);
  (void)first;
  for (std::size_t i = 0; i < SchedulerService::kRetainedResults + 64; ++i) {
    JobSpec s = spec;
    s.seed = i;
    (void)svc.submit(s);
  }
  svc.drain();
  EXPECT_THROW(svc.wait(first), std::invalid_argument)
      << "evicted result should no longer be waitable";
}

TEST(SchedulerService, ExpiredPaCgaJobIsServedNotCrashed) {
  // Regression: an explicit-kPaCga job popped past its deadline used to
  // hand run_parallel a zero wall budget, whose Config::validate throw
  // escaped the worker thread and aborted the process.
  SchedulerService svc(small_service(1, 8, 0));
  auto m = instance();
  const JobId blocker = svc.submit(long_job(m, 300.0));
  JobSpec spec;
  spec.etc = m;
  spec.policy = SolvePolicy::kPaCga;
  spec.deadline_ms = 5.0;  // expires while the blocker holds the worker
  spec.use_cache = false;
  const JobId late = svc.submit(spec);
  const JobResult r = svc.wait(late);
  EXPECT_EQ(r.status, JobStatus::kDone);
  EXPECT_TRUE(r.deadline_missed);
  EXPECT_EQ(r.assignment.size(), m->tasks());
  (void)svc.wait(blocker);
  EXPECT_EQ(svc.metrics().failed, 0u);
}

TEST(SchedulerService, TinyBaseGridIsSafe) {
  // Regression: a sub-16-cell solver grid drove std::clamp with lo > hi
  // (UB) in the arena's grid-shrink computation.
  ServiceOptions o = small_service(1, 8, 0);
  o.solver.width = 3;
  o.solver.height = 3;
  SchedulerService svc(o);
  JobSpec spec;
  spec.etc = instance();
  spec.policy = SolvePolicy::kCga;
  spec.deadline_ms = 500.0;
  spec.max_generations = 5;
  const JobResult r = svc.wait(svc.submit(spec));
  EXPECT_EQ(r.status, JobStatus::kDone);
  EXPECT_EQ(r.generations, 5u);
}

TEST(SchedulerService, BudgetStarvedAutoResultIsNotCached) {
  // Regression: a kAuto job that escalated to the heuristics because its
  // budget was gone must not stick its degraded answer into the cache for
  // later budget-rich kAuto jobs on the same matrix.
  SchedulerService svc(small_service(1, 8, 64));
  auto m = instance(64, 8);
  const JobId blocker = svc.submit(long_job(m, 400.0));
  JobSpec starved;
  starved.etc = m;
  starved.policy = SolvePolicy::kAuto;
  starved.deadline_ms = 5.0;  // expires in the queue behind the blocker
  const JobResult poor = svc.wait(svc.submit(starved));
  (void)svc.wait(blocker);
  EXPECT_EQ(poor.status, JobStatus::kDone);
  ASSERT_TRUE(poor.policy_used == SolvePolicy::kMinMin ||
              poor.policy_used == SolvePolicy::kSufferage)
      << "expected the zero-budget heuristic escalation";

  JobSpec rich = starved;
  rich.deadline_ms = 1000.0;
  rich.max_generations = 10;
  const JobResult good = svc.wait(svc.submit(rich));
  EXPECT_EQ(good.status, JobStatus::kDone);
  EXPECT_FALSE(good.cache_hit) << "starved heuristic answer was cached";
  EXPECT_EQ(good.policy_used, SolvePolicy::kCga);
  EXPECT_LE(good.makespan, poor.makespan + 1e-9);
}

TEST(SchedulerService, PerJobSeedDeterminism) {
  // Same JobSpec (generation-capped, cache off) => same schedule, no
  // matter when or on which worker it runs.
  auto m = instance();
  JobSpec spec;
  spec.etc = m;
  spec.policy = SolvePolicy::kCga;
  spec.deadline_ms = 10000.0;
  spec.max_generations = 25;
  spec.seed = 42;
  spec.use_cache = false;

  JobResult first, second;
  {
    SchedulerService svc(small_service(2, 8, 0));
    // Interleave unrelated jobs so the arena is reused dirty.
    JobSpec other = spec;
    other.seed = 7;
    (void)svc.wait(svc.submit(other));
    first = svc.wait(svc.submit(spec));
  }
  {
    SchedulerService svc(small_service(1, 8, 0));
    second = svc.wait(svc.submit(spec));
  }
  EXPECT_EQ(first.status, JobStatus::kDone);
  EXPECT_EQ(first.assignment, second.assignment);
  EXPECT_DOUBLE_EQ(first.makespan, second.makespan);
  EXPECT_EQ(first.generations, second.generations);
  EXPECT_EQ(first.evaluations, second.evaluations);
}

TEST(SchedulerService, WorkloadJobAdapter) {
  batch::WorkloadSpec w;
  w.tasks = 24;
  w.machines = 6;
  w.seed = 5;
  JobSpec spec = make_workload_job(w, /*priority=*/1, /*deadline_ms=*/50.0,
                                   /*seed=*/9);
  ASSERT_NE(spec.etc, nullptr);
  EXPECT_EQ(spec.etc->tasks(), 24u);
  EXPECT_EQ(spec.etc->machines(), 6u);
  SchedulerService svc(small_service());
  const JobResult r = svc.wait(svc.submit(std::move(spec)));
  EXPECT_EQ(r.status, JobStatus::kDone);
  EXPECT_EQ(r.assignment.size(), 24u);
}

TEST(SchedulerService, ShutdownDrainsQueuedJobs) {
  auto m = instance();
  std::vector<JobId> ids;
  SchedulerService svc(small_service(2, 64, 0));
  for (int i = 0; i < 8; ++i) {
    JobSpec spec;
    spec.etc = m;
    spec.seed = static_cast<std::uint64_t>(i);
    spec.deadline_ms = 30.0;
    ids.push_back(svc.submit(spec));
  }
  svc.shutdown();  // graceful: queued jobs are still served
  for (JobId id : ids) {
    EXPECT_EQ(svc.wait(id).status, JobStatus::kDone);
  }
  EXPECT_THROW(svc.submit(long_job(m, 10.0)), std::runtime_error);
}

TEST(SchedulerService, RejectsMalformedSpecs) {
  SchedulerService svc(small_service());
  JobSpec no_etc;
  EXPECT_THROW(svc.submit(no_etc), std::invalid_argument);
  JobSpec bad_deadline;
  bad_deadline.etc = instance();
  bad_deadline.deadline_ms = 0.0;
  EXPECT_THROW(svc.submit(bad_deadline), std::invalid_argument);
  EXPECT_THROW(svc.wait(9999), std::invalid_argument);
  EXPECT_FALSE(svc.cancel(9999));
}

// --- shape affinity and stealing (the sharded core, end to end) ------------

TEST(SchedulerService, SameShapeJobsStickToTheirHomeWorker) {
  // Closed-loop same-shape jobs with idle neighbor workers: shape-affine
  // routing plus the home worker's instant wakeup (vs the thieves'
  // kStealPatience nap) keeps the overwhelming majority on the shard's
  // pinned worker. The threshold is deliberately loose (60 %) — on an
  // oversubscribed 1-core CI box a sleeping home worker occasionally loses
  // a job to a thief whose nap expires first, and that is by design.
  constexpr std::size_t kWorkers = 4;
  SchedulerService svc(small_service(kWorkers, 64, 0));
  ASSERT_EQ(svc.shards(), kWorkers);
  // The expected home worker, computed with the queue's own hash.
  const std::size_t home = ShardedJobQueue(64, kWorkers).shard_of_shape(32, 8);

  auto m = instance(32, 8);
  constexpr std::size_t kJobs = 100;
  std::size_t on_home = 0;
  for (std::size_t j = 0; j < kJobs; ++j) {
    JobSpec spec;
    spec.etc = m;
    spec.seed = j + 1;
    spec.deadline_ms = 10000.0;
    spec.policy = SolvePolicy::kCga;
    spec.max_generations = 2;
    spec.use_cache = false;
    const JobResult r = svc.wait(svc.submit(std::move(spec)));
    ASSERT_EQ(r.status, JobStatus::kDone);
    ASSERT_GE(r.worker, 0);
    if (static_cast<std::size_t>(r.worker) == home) ++on_home;
  }
  EXPECT_GE(on_home, kJobs * 60 / 100)
      << "shape-affine pinning should dominate; stolen jobs are the rare "
         "exception under a closed loop";
}

TEST(SchedulerService, StealingSpreadsABackloggedShardAcrossWorkers) {
  // One hot shape, fire-and-forget backlog: the home shard queues deep and
  // the OTHER worker must steal rather than idle — the flip side of the
  // affinity test.
  SchedulerService svc(small_service(2, 64, 0));
  auto m = instance(64, 8);
  std::vector<JobId> ids;
  for (int j = 0; j < 8; ++j) {
    ids.push_back(svc.submit(long_job(m, 80.0)));
  }
  std::vector<bool> seen(2, false);
  for (const JobId id : ids) {
    const JobResult r = svc.wait(id);
    ASSERT_EQ(r.status, JobStatus::kDone);
    ASSERT_GE(r.worker, 0);
    ASSERT_LT(r.worker, 2);
    seen[static_cast<std::size_t>(r.worker)] = true;
  }
  EXPECT_TRUE(seen[0] && seen[1])
      << "a backlogged shard must be served by both workers (stealing)";
  EXPECT_GT(svc.queue_steals(), 0u);
}

TEST(SchedulerService, RescheduleKeepsShapeAffinity) {
  // The dynamic path rides the same sharded route: warm epochs of one
  // shape keep landing on the worker whose arena holds it.
  constexpr std::size_t kWorkers = 4;
  SchedulerService svc(small_service(kWorkers, 64, 0));
  const std::size_t home = ShardedJobQueue(64, kWorkers).shard_of_shape(48, 12);

  auto m = instance(48, 12);
  const sched::Schedule repair = heur::min_min(*m);
  constexpr std::size_t kJobs = 40;
  std::size_t on_home = 0;
  for (std::size_t j = 0; j < kJobs; ++j) {
    JobSpec spec;
    spec.etc = m;
    spec.seed = j + 1;
    spec.deadline_ms = 10000.0;
    spec.policy = SolvePolicy::kCga;
    spec.max_generations = 2;
    spec.use_cache = false;
    spec.warm_start.assign(repair.assignment().begin(),
                           repair.assignment().end());
    const JobResult r = svc.wait(svc.submit_reschedule(std::move(spec)));
    ASSERT_EQ(r.status, JobStatus::kDone);
    EXPECT_TRUE(r.warm_started);
    if (r.worker >= 0 && static_cast<std::size_t>(r.worker) == home) ++on_home;
  }
  EXPECT_GE(on_home, kJobs * 60 / 100);
}

TEST(SchedulerService, ShardObservabilityAccessors) {
  SchedulerService svc(small_service(3, 64, 32));
  EXPECT_EQ(svc.shards(), 3u);
  EXPECT_EQ(svc.shard_depths().size(), 3u);
  EXPECT_EQ(svc.cache().stripes(), 3u);
  auto m = instance(16, 4);
  JobSpec spec;
  spec.etc = m;
  spec.deadline_ms = 1000.0;
  const JobResult r = svc.wait(svc.submit(spec));
  EXPECT_EQ(r.status, JobStatus::kDone);
  const auto snap = svc.metrics();
  ASSERT_EQ(snap.worker_completed.size(), 3u);
  std::uint64_t sum = 0;
  for (const auto c : snap.worker_completed) sum += c;
  EXPECT_EQ(sum, snap.completed);
  for (const auto d : svc.shard_depths()) EXPECT_EQ(d, 0u);  // drained
}

// --- reschedule path (dynamic subsystem) -----------------------------------

TEST(SchedulerService, RescheduleWarmStartsFromCacheHit) {
  // The PR 2 solution cache doubles as the warm-start source: a
  // reschedule of a matrix the service has solved before is seeded with
  // the cached assignment instead of starting cold — and must NOT be
  // served the stale entry as its answer.
  SchedulerService svc(small_service(1, 8, 64));
  auto m = instance();
  JobSpec spec;
  spec.etc = m;
  spec.policy = SolvePolicy::kCga;
  spec.deadline_ms = 1000.0;
  spec.max_generations = 20;
  const JobResult first = svc.wait(svc.submit(spec));
  ASSERT_EQ(first.status, JobStatus::kDone);
  ASSERT_FALSE(first.cache_hit);  // now cached

  const JobResult re = svc.wait(svc.submit_reschedule(spec));
  EXPECT_EQ(re.status, JobStatus::kDone);
  EXPECT_TRUE(re.warm_started) << "cache entry should have become the seed";
  EXPECT_FALSE(re.cache_hit) << "reschedules re-optimize, never short-circuit";
  EXPECT_LE(re.makespan, first.makespan + 1e-9)
      << "seeded re-optimization must never end worse than its seed";
  EXPECT_EQ(svc.metrics().reschedules, 1u);

  // Without a cache entry (and no explicit warm start) a reschedule
  // degrades gracefully to a cold solve.
  SchedulerService cold_svc(small_service(1, 8, 0));
  const JobResult cold = cold_svc.wait(cold_svc.submit_reschedule(spec));
  EXPECT_EQ(cold.status, JobStatus::kDone);
  EXPECT_FALSE(cold.warm_started);
}

TEST(SchedulerService, RescheduleUnderExpiredDeadlineReturnsTheRepair) {
  // A reschedule popped past its deadline has a zero solver budget; the
  // kAuto escalation runs the microsecond heuristics, and the answer must
  // be AT LEAST as good as the repaired schedule it was seeded with —
  // the repair itself is a valid anytime result.
  SchedulerService svc(small_service(1, 8, 0));
  auto m = instance(64, 8);
  const JobId blocker = svc.submit(long_job(m, 400.0));

  const sched::Schedule repair = heur::min_min(*m);  // stands in for a repair
  const double repair_fitness = repair.makespan();
  JobSpec spec;
  spec.etc = m;
  spec.policy = SolvePolicy::kAuto;
  spec.deadline_ms = 5.0;  // expires in the queue behind the blocker
  spec.warm_start.assign(repair.assignment().begin(),
                         repair.assignment().end());
  const JobResult r = svc.wait(svc.submit_reschedule(std::move(spec)));
  (void)svc.wait(blocker);
  EXPECT_EQ(r.status, JobStatus::kDone);
  EXPECT_TRUE(r.warm_started);
  EXPECT_TRUE(r.deadline_missed);
  ASSERT_EQ(r.assignment.size(), m->tasks());
  EXPECT_LE(r.makespan, repair_fitness + 1e-9)
      << "expired-deadline reschedule must still return the repair";
}

TEST(SchedulerService, RescheduleCancelledMidRepairStopsEarly) {
  SchedulerService svc(small_service(1, 8, 0));
  auto m = instance(128, 16);
  const sched::Schedule repair = heur::min_min(*m);
  JobSpec spec;
  spec.etc = m;
  spec.policy = SolvePolicy::kCga;
  spec.deadline_ms = 10000.0;
  spec.use_cache = false;
  spec.warm_start.assign(repair.assignment().begin(),
                         repair.assignment().end());
  const JobId id = svc.submit_reschedule(std::move(spec));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  support::WallTimer t;
  EXPECT_TRUE(svc.cancel(id));
  const JobResult r = svc.wait(id);
  EXPECT_LT(t.elapsed_seconds(), 5.0)
      << "cancellation must be honored within one generation";
  EXPECT_EQ(r.status, JobStatus::kCancelled);
}

TEST(SchedulerService, RejectsMalformedWarmStart) {
  SchedulerService svc(small_service());
  auto m = instance();
  JobSpec wrong_size;
  wrong_size.etc = m;
  wrong_size.warm_start.assign(m->tasks() + 1, 0);
  EXPECT_THROW(svc.submit_reschedule(std::move(wrong_size)),
               std::invalid_argument);
  JobSpec bad_machine;
  bad_machine.etc = m;
  bad_machine.warm_start.assign(m->tasks(), 0);
  bad_machine.warm_start[0] = static_cast<sched::MachineId>(m->machines());
  EXPECT_THROW(svc.submit_reschedule(std::move(bad_machine)),
               std::invalid_argument);
}

/// Refines Min-min into a near-local-optimum via a generous warm CGA
/// solve: a stand-in for a thoroughly repaired reschedule seed that a
/// generation-capped cold engine cannot reach from scratch.
JobResult refined_seed(const etc::EtcMatrix& m) {
  cga::Config base;
  WarmSolver refiner(base);
  JobSpec refine;
  refine.policy = SolvePolicy::kCga;
  refine.max_generations = 40;
  refine.use_cache = false;
  JobResult out;
  refiner.solve(m, refine, 5.0, nullptr, out);
  return out;
}

TEST(SchedulerService, LargeRescheduleEscalatesToSeededPaCga) {
  // THE seeding acceptance test: a large-shape reschedule with a refined
  // seed and a tight generation cap escalates to PA-CGA and must report
  // kPaCga provenance while matching-or-beating the seed. Before the seed
  // was plumbed into the engine, the capped cold run ended worse than the
  // refined seed, the safety-net clamp overwrote the result, and
  // policy_used came back kWarmStart — exactly what this pins out.
  auto m = instance(512, 16, 9);
  const JobResult refined = refined_seed(*m);
  ASSERT_EQ(refined.assignment.size(), m->tasks());

  SchedulerService svc(small_service(1, 8, 0));
  JobSpec spec;
  spec.etc = m;
  spec.policy = SolvePolicy::kAuto;
  spec.deadline_ms = 5000.0;  // budget >= kParallelBudgetSeconds -> kPaCga
  spec.max_generations = 2;   // too few to reach the seed from cold
  spec.use_cache = false;
  spec.warm_start = refined.assignment;
  const JobResult r = svc.wait(svc.submit_reschedule(std::move(spec)));
  EXPECT_EQ(r.status, JobStatus::kDone);
  EXPECT_TRUE(r.warm_started);
  EXPECT_EQ(r.policy_used, SolvePolicy::kPaCga)
      << "kWarmStart here means the clamp fired: the seed never entered "
         "the parallel engine";
  ASSERT_EQ(r.assignment.size(), m->tasks());
  EXPECT_LE(r.makespan, refined.makespan + 1e-9)
      << "a seeded PA-CGA run is never worse than its seed";
}

TEST(SchedulerService, ExpiredDeadlineLargeRescheduleReturnsRepairVerbatim) {
  // The seed-clamp fallback is reached ONLY on expired deadlines now: the
  // zero-budget escalation runs the microsecond heuristics, the refined
  // repair beats them, and the clamp hands the repair back verbatim with
  // kWarmStart provenance.
  auto m = instance(512, 16, 9);
  const JobResult refined = refined_seed(*m);
  // The discriminating premise: the refined repair is strictly better
  // than anything the expired-deadline heuristics can produce.
  const double heuristic_best =
      std::min(heur::min_min(*m).makespan(), heur::sufferage(*m).makespan());
  ASSERT_LT(refined.makespan, heuristic_best);

  SchedulerService svc(small_service(1, 8, 0));
  const JobId blocker = svc.submit(long_job(m, 400.0));
  JobSpec spec;
  spec.etc = m;
  spec.policy = SolvePolicy::kAuto;
  spec.deadline_ms = 5.0;  // expires in the queue behind the blocker
  spec.use_cache = false;
  spec.warm_start = refined.assignment;
  const JobResult r = svc.wait(svc.submit_reschedule(std::move(spec)));
  (void)svc.wait(blocker);
  EXPECT_EQ(r.status, JobStatus::kDone);
  EXPECT_TRUE(r.warm_started);
  EXPECT_TRUE(r.deadline_missed);
  EXPECT_EQ(r.policy_used, SolvePolicy::kWarmStart);
  EXPECT_EQ(r.assignment, refined.assignment)
      << "the expired-deadline path must return the repair verbatim";
  EXPECT_DOUBLE_EQ(r.makespan, refined.makespan);
}

// --- WarmSolver ------------------------------------------------------------

TEST(WarmSolver, AutoEscalationByBudgetAndSize) {
  cga::Config base;
  WarmSolver solver(base);
  auto small = instance(8, 4);
  auto medium = instance(64, 8);
  auto large = instance(512, 16);
  JobSpec spec;
  spec.policy = SolvePolicy::kAuto;
  // Tiny instance or tiny budget -> heuristics.
  EXPECT_EQ(solver.decide(spec, *small, 1.0), SolvePolicy::kMinMin);
  EXPECT_EQ(solver.decide(spec, *medium, 0.0005), SolvePolicy::kMinMin);
  // Real budget on a medium instance -> warm sequential CGA.
  EXPECT_EQ(solver.decide(spec, *medium, 0.050), SolvePolicy::kCga);
  // Generous budget on a big instance -> PA-CGA.
  EXPECT_EQ(solver.decide(spec, *large, 1.0), SolvePolicy::kPaCga);
  // Explicit policies are never overridden.
  spec.policy = SolvePolicy::kSufferage;
  EXPECT_EQ(solver.decide(spec, *large, 1.0), SolvePolicy::kSufferage);
}

TEST(WarmSolver, HeuristicEscalationBeatsOrMatchesMinMin) {
  cga::Config base;
  WarmSolver solver(base);
  auto m = instance(10, 4);  // <= kHeuristicMaxTasks: auto -> heuristics
  JobSpec spec;
  spec.policy = SolvePolicy::kAuto;
  JobResult out;
  solver.solve(*m, spec, /*budget_seconds=*/1.0, nullptr, out);
  EXPECT_TRUE(out.policy_used == SolvePolicy::kMinMin ||
              out.policy_used == SolvePolicy::kSufferage);
  const sched::Schedule mm = heur::min_min(*m);
  EXPECT_LE(out.makespan,
            sched::evaluate(mm, base.objective, base.lambda) + 1e-9);
}

TEST(WarmSolver, RepeatedSameShapeSolvesAllocateNothing) {
  // THE acceptance property of the warm pool: after the first solve sizes
  // the arena for a shape, a whole kCga solve of another same-shape job —
  // population reseed, sweep loop, breeding, result fill — performs ZERO
  // heap allocations (Min-min seeding off: the constructive heuristic
  // allocates internally and is the documented exception).
  cga::Config base;
  base.seed_min_min = false;
  base.local_search.iterations = 10;  // paper configuration
  WarmSolver solver(base);

  auto m1 = instance(64, 8, 1);
  auto m2 = instance(64, 8, 2);
  auto m3 = instance(64, 8, 3);
  JobSpec spec;
  spec.policy = SolvePolicy::kCga;
  spec.max_generations = 5;
  spec.use_cache = false;

  JobResult out;
  spec.seed = 1;
  solver.solve(*m1, spec, 10.0, nullptr, out);  // cold: builds the arena
  spec.seed = 2;
  solver.solve(*m2, spec, 10.0, nullptr, out);  // warm-up second instance
  ASSERT_EQ(out.assignment.size(), m2->tasks());

  const std::uint64_t before = g_allocations.load();
  spec.seed = 3;
  solver.solve(*m3, spec, 10.0, nullptr, out);
  EXPECT_EQ(g_allocations.load(), before)
      << "warm same-shape kCga solve must not touch the heap";
}

TEST(WarmSolver, BreedingPathAllocationFreeWithMinMinSeeding) {
  // With the default Min-min seeding ON, per-job setup allocates (the
  // heuristic does), but the breeding path — everything between the first
  // and the last generation — must still be allocation-free.
  cga::Config base;  // seed_min_min = true
  base.local_search.iterations = 10;
  WarmSolver solver(base);

  auto m = instance(64, 8, 4);
  JobSpec spec;
  spec.policy = SolvePolicy::kCga;
  spec.max_generations = 8;
  spec.use_cache = false;

  JobResult out;
  solver.solve(*m, spec, 10.0, nullptr, out);  // warm-up

  std::uint64_t at_first_generation = 0;
  std::uint64_t at_last_generation = 0;
  const cga::GenerationObserver observer =
      [&](const cga::GenerationEvent& e) {
        if (e.generation == 1) at_first_generation = g_allocations.load();
        at_last_generation = g_allocations.load();
      };
  solver.solve(*m, spec, 10.0, nullptr, out, observer);
  EXPECT_EQ(at_last_generation, at_first_generation)
      << "generations 2..n of a warm solve must not allocate";
}

// --- observability integration ---------------------------------------------

TEST(SchedulerService, TraceRecordsTheJobLifecycle) {
  SchedulerService svc(small_service(2, 64, 64));
  auto m = instance(32, 8);
  JobSpec spec;
  spec.etc = m;
  spec.deadline_ms = 1000.0;
  const JobId id = svc.submit(spec);
  const JobResult r = svc.wait(id);
  ASSERT_EQ(r.status, JobStatus::kDone);
  svc.drain();
#if !defined(PACGA_NO_OBS)
  const std::vector<obs::SpanEvent> spans = svc.trace().job_spans(id);
  ASSERT_FALSE(spans.empty());
  bool wait = false, serve = false, probe = false, completed = false;
  for (const obs::SpanEvent& e : spans) {
    EXPECT_EQ(e.job_id, id);
    if (e.kind == obs::SpanKind::kQueueWait) wait = true;
    if (e.kind == obs::SpanKind::kServe) serve = true;
    if (e.kind == obs::SpanKind::kCacheProbe) probe = true;
    if (e.kind == obs::SpanKind::kCompleted) completed = true;
  }
  EXPECT_TRUE(wait);
  EXPECT_TRUE(serve);
  EXPECT_TRUE(probe);
  EXPECT_TRUE(completed);
  // Spans are sorted by ts and the serve envelope closes before the
  // terminal instant.
  for (std::size_t i = 1; i < spans.size(); ++i)
    EXPECT_LE(spans[i - 1].ts_ns, spans[i].ts_ns);
#endif
}

TEST(SchedulerService, HistogramsCountEveryCompletion) {
  SchedulerService svc(small_service(2, 64, 64));
  auto m = instance(24, 6);
  constexpr std::size_t kJobs = 12;
  for (std::size_t j = 0; j < kJobs; ++j) {
    JobSpec spec;
    spec.etc = m;
    spec.seed = j;
    spec.deadline_ms = 1000.0;
    EXPECT_EQ(svc.wait(svc.submit(spec)).status, JobStatus::kDone);
  }
  svc.drain();
  const auto snap = svc.metrics();
  EXPECT_EQ(snap.completed, kJobs);
#if !defined(PACGA_NO_OBS)
  EXPECT_EQ(snap.queue_wait_hist.count(), kJobs);
  EXPECT_EQ(snap.solve_hist.count(), kJobs);
  EXPECT_EQ(snap.e2e_hist.count(), kJobs);
  // End-to-end covers wait + solve, so its median cannot undercut the
  // wait median.
  EXPECT_GE(snap.e2e_hist.quantile_ns(0.5),
            snap.queue_wait_hist.quantile_ns(0.5));
#endif
}

TEST(SchedulerService, ObservabilityOffDisablesCollectionOnly) {
  ServiceOptions o = small_service(2, 64, 64);
  o.observability = false;
  SchedulerService svc(o);
  auto m = instance(24, 6);
  JobSpec spec;
  spec.etc = m;
  spec.deadline_ms = 1000.0;
  const JobId id = svc.submit(spec);
  EXPECT_EQ(svc.wait(id).status, JobStatus::kDone);
  svc.drain();
  EXPECT_TRUE(svc.trace().job_spans(id).empty());
  const auto snap = svc.metrics();
  EXPECT_TRUE(snap.solve_hist.empty());
  EXPECT_EQ(snap.completed, 1u);                   // counters still run
  EXPECT_GT(snap.solve_seconds.count(), 0u);       // Welford still runs
}

TEST(SchedulerService, ResultsIdenticalWithObservabilityOnAndOff) {
  // The obs layer observes; it must not perturb. The same pinned-seed
  // capped-generation solve must produce the identical result either way.
  auto m = instance(32, 8);
  JobResult results[2];
  for (int obs_on = 0; obs_on < 2; ++obs_on) {
    ServiceOptions o = small_service(1, 64, 0);
    o.observability = obs_on == 1;
    SchedulerService svc(o);
    JobSpec spec;
    spec.etc = m;
    spec.seed = 42;
    spec.deadline_ms = 10000.0;
    spec.policy = SolvePolicy::kCga;
    spec.max_generations = 12;
    spec.use_cache = false;
    results[obs_on] = svc.wait(svc.submit(std::move(spec)));
  }
  EXPECT_EQ(results[0].status, results[1].status);
  EXPECT_EQ(results[0].makespan, results[1].makespan);  // bit-identical
  EXPECT_EQ(results[0].generations, results[1].generations);
  EXPECT_EQ(results[0].evaluations, results[1].evaluations);
}

TEST(Exposition, FormatMetricPrintsDashForNonFinite) {
  EXPECT_EQ(format_metric(std::nan("")), "-");
  EXPECT_EQ(format_metric(std::numeric_limits<double>::infinity()), "-");
  EXPECT_EQ(format_metric(-std::numeric_limits<double>::infinity()), "-");
  EXPECT_EQ(format_metric(1.5), "1.500");
  EXPECT_EQ(format_metric(2.25, 2), "2.25");
  EXPECT_EQ(format_metric(0.0), "0.000");
}

TEST(Exposition, PrometheusTextOfAnIdleServiceIsWellFormed) {
  SchedulerService svc(small_service(2, 64, 64));
  std::ostringstream out;
  write_prometheus(out, svc.metrics());
  const std::string text = out.str();
  EXPECT_NE(text.find("pacga_jobs_submitted_total 0"), std::string::npos);
  EXPECT_NE(text.find("# TYPE pacga_solve_seconds summary"),
            std::string::npos);
  // Empty distributions expose quantiles as NaN (the Prometheus spelling,
  // never a bare nan from printf).
  EXPECT_NE(text.find("{quantile=\"0.99\"} NaN"), std::string::npos);
  EXPECT_NE(text.find("pacga_solve_seconds_count 0"), std::string::npos);
  EXPECT_EQ(text.rfind("# EOF\n"), text.size() - 6);
}

// --- robustness: failure paths, retry/quarantine, watchdog, shedding -------

/// Overload shedding needs no failpoints: watermark 0.5 on a 1-shard
/// (1-worker) service must start refusing at HALF the shard capacity,
/// well before the queue itself is full, and count the refusals as shed.
TEST(SchedulerService, ShedWatermarkRejectsBeforeTheQueueIsFull) {
  ServiceOptions o = small_service(1, 8, 0);
  o.shed_watermark = 0.5;
  SchedulerService svc(o);
  auto m = instance(128, 16);
  const JobId running = svc.submit(long_job(m, 5000.0));  // occupies the worker
  std::vector<JobId> queued;
  support::WallTimer t;
  for (;;) {
    auto id = svc.try_submit(long_job(m, 5000.0));
    if (!id) break;
    queued.push_back(*id);
    ASSERT_LT(t.elapsed_seconds(), 5.0) << "watermark never tripped";
  }
  const auto snap = svc.metrics();
  EXPECT_GE(snap.shed, 1u);
  EXPECT_EQ(snap.rejected, snap.shed) << "watermark, not queue-full, refused";
  // The shard (capacity 8) was refused at watermark depth, not at 8.
  EXPECT_LE(queued.size(), 5u);
  EXPECT_GT(svc.retry_hint_ms(), 0.0);
  svc.cancel(running);
  for (JobId id : queued) svc.cancel(id);
  svc.drain();
}

// --- supervisor ownership protocol -----------------------------------------
// The retry handoff participates in the first-finisher-wins race without
// finishing anything: a worker whose solve threw CLAIMS the job before
// schedule_retry. These pin the three legs of that protocol — claim vs
// finish ordering, the watchdog refusing its stall verdict under a held
// claim, and the retry timer dropping tickets someone else finished.

TEST(JobState, RetryClaimParticipatesInTheOwnershipRace) {
  // Claim first: a commit gated on the claim (the watchdog's stalled
  // verdict) is refused; releasing the claim lets it through.
  JobState job;
  ASSERT_TRUE(job.try_claim_retry());
  JobResult stalled;
  stalled.status = JobStatus::kFailed;
  EXPECT_FALSE(job.try_finish_if([&] { return !job.retry_claimed; },
                                 std::move(stalled), [] {}));
  EXPECT_FALSE(job.is_finished());
  job.release_retry_claim();
  JobResult r;
  r.status = JobStatus::kFailed;
  EXPECT_TRUE(job.try_finish_if([&] { return !job.retry_claimed; },
                                std::move(r), [] {}));
  EXPECT_TRUE(job.is_finished());
  // Finish first: the claim must fail — the would-be claimant lost the
  // race exactly as if its own commit had failed.
  JobState done;
  ASSERT_TRUE(done.try_finish_with(JobResult{}));
  EXPECT_FALSE(done.try_claim_retry());
}

TEST(Supervisor, ScheduleRetryRefusedOnceStopped) {
  ServiceMetrics metrics(1);
  Supervisor sup({}, 1, metrics, [](const JobTicket&) { return 0; },
                 [](std::size_t) {}, {});
  sup.start();
  sup.stop();
  auto job = std::make_shared<JobState>();
  job->attempts = 1;
  EXPECT_FALSE(sup.schedule_retry(job))
      << "the intake closes before stop()'s final flush, so a handoff can "
         "never land where nothing will ever drain it";
}

TEST(Supervisor, FlushDropsTicketsFinishedDuringBackoff) {
  ServiceMetrics metrics(1);
  std::atomic<int> requeued{0};
  SupervisorOptions o;
  o.poll_ms = 2.0;
  Supervisor sup(
      o, 1, metrics,
      [&](const JobTicket&) {
        requeued.fetch_add(1);
        return 0;
      },
      [](std::size_t) {}, {});
  sup.start();
  auto job = std::make_shared<JobState>();
  job->attempts = 1;
  ASSERT_TRUE(job->try_claim_retry());
  ASSERT_TRUE(sup.schedule_retry(job));
  // Someone else finishes the job while it waits out its backoff: the
  // timer must DROP the ticket — re-queueing a finished job would make
  // the worker that pops it lose a commit and look superseded.
  JobResult r;
  r.status = JobStatus::kCancelled;
  ASSERT_TRUE(job->try_finish_with(std::move(r)));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(requeued.load(), 0);
  sup.stop();  // the abandon flush must not resurrect it either
  EXPECT_EQ(requeued.load(), 0);
  EXPECT_EQ(job->result.status, JobStatus::kCancelled);
}

TEST(Supervisor, WatchdogRefusesStallVerdictWhileRetryClaimIsHeld) {
  ServiceMetrics metrics(1);
  std::atomic<int> respawns{0};
  SupervisorOptions o;
  o.poll_ms = 2.0;
  o.min_stall_ms = 5.0;
  o.stall_factor = 1.0;
  Supervisor sup(o, 1, metrics, [](const JobTicket&) { return 0; },
                 [&](std::size_t) { respawns.fetch_add(1); }, {});
  sup.start();
  auto job = std::make_shared<JobState>();
  job->spec.deadline_ms = 1.0;  // stall threshold = min_stall_ms = 5 ms
  ASSERT_TRUE(job->try_claim_retry());  // worker mid-handoff: alive
  const std::uint64_t gen = sup.generation(0);
  sup.begin_serve(0, gen, job);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // Long past the threshold, but the claim proves the worker is alive:
  // no verdict, no respawn, no generation bump — the alternative is two
  // live threads owning one worker index.
  EXPECT_FALSE(job->is_finished());
  EXPECT_EQ(respawns.load(), 0);
  EXPECT_FALSE(sup.superseded(0, gen));
  // Claim down (as after a re-queue): the same stall now draws the
  // verdict, the supersession, and the respawn.
  job->release_retry_claim();
  support::WallTimer t;
  while (!job->is_finished()) {
    ASSERT_LT(t.elapsed_seconds(), 5.0) << "watchdog never fired";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(job->result.status, JobStatus::kFailed);
  EXPECT_EQ(job->result.error, "stalled");
  EXPECT_TRUE(sup.superseded(0, gen));
  EXPECT_GE(respawns.load(), 1);
  sup.stop();
}

#ifndef PACGA_NO_FAILPOINTS

/// Arms `site` for the test body, disarming on scope exit even on
/// assertion failure — armed leftovers would poison later tests.
class ScopedFailpoint {
 public:
  ScopedFailpoint(const char* site, const char* spec) : site_(site) {
    support::failpoints().configure(site_, spec);
  }
  ~ScopedFailpoint() { support::failpoints().configure(site_, "off"); }

 private:
  const char* site_;
};

TEST(SchedulerService, SolverFailureIsTerminalUnderEveryPolicy) {
  const SolvePolicy policies[] = {SolvePolicy::kMinMin, SolvePolicy::kSufferage,
                                  SolvePolicy::kCga, SolvePolicy::kPaCga,
                                  SolvePolicy::kAuto};
  SchedulerService svc(small_service(1, 8, 0));
  auto m = instance();
  std::uint64_t failed = 0;
  for (SolvePolicy p : policies) {
    ScopedFailpoint fp("solver.solve", "once:throw");
    JobSpec spec;
    spec.etc = m;
    spec.policy = p;
    spec.deadline_ms = 1000.0;
    spec.max_generations = 10;
    spec.use_cache = false;
    const JobResult r = svc.wait(svc.submit(spec));
    EXPECT_EQ(r.status, JobStatus::kFailed) << to_string(p);
    // WAIT-side failure reason: the error names the thrown cause.
    EXPECT_NE(r.error.find("failpoint solver.solve"), std::string::npos)
        << to_string(p) << ": '" << r.error << "'";
    EXPECT_TRUE(r.assignment.empty()) << to_string(p);
    ++failed;
  }
  svc.drain();
  EXPECT_EQ(svc.metrics().failed, failed);
  EXPECT_EQ(svc.metrics().completed, 0u);
}

TEST(SchedulerService, FailedJobNeverPollutesTheCache) {
  SchedulerService svc(small_service(1, 8, 64));
  auto m = instance();
  JobSpec spec;
  spec.etc = m;
  spec.policy = SolvePolicy::kMinMin;
  spec.deadline_ms = 1000.0;
  {
    ScopedFailpoint fp("solver.solve", "once:throw");
    const JobResult r = svc.wait(svc.submit(spec));
    ASSERT_EQ(r.status, JobStatus::kFailed);
  }
  // The SAME spec, injection gone: a poisoned cache would replay the
  // failure (or hit on garbage); a clean one re-solves, THEN hits.
  const JobResult first = svc.wait(svc.submit(spec));
  EXPECT_EQ(first.status, JobStatus::kDone);
  EXPECT_FALSE(first.cache_hit);
  const JobResult second = svc.wait(svc.submit(spec));
  EXPECT_EQ(second.status, JobStatus::kDone);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.assignment, first.assignment);
}

TEST(SchedulerService, TransientFailureIsRetriedToSuccess) {
  SchedulerService svc(small_service(1, 8, 0));
  auto m = instance();
  ScopedFailpoint fp("solver.solve", "once:throw");  // attempt 1 fails
  JobSpec spec;
  spec.etc = m;
  spec.policy = SolvePolicy::kMinMin;
  spec.deadline_ms = 1000.0;
  spec.use_cache = false;
  spec.max_retries = 2;
  const JobResult r = svc.wait(svc.submit(spec));
  EXPECT_EQ(r.status, JobStatus::kDone);
  EXPECT_EQ(r.retries, 1u);
  ASSERT_EQ(r.assignment.size(), m->tasks());
  svc.drain();
  const auto snap = svc.metrics();
  EXPECT_EQ(snap.retries, 1u);
  EXPECT_EQ(snap.quarantined, 0u);
  EXPECT_EQ(snap.completed, 1u);
  EXPECT_EQ(snap.failed, 0u) << "a retried-to-success job is not a failure";
}

TEST(SchedulerService, PoisonJobIsQuarantinedAfterExhaustingRetries) {
  SchedulerService svc(small_service(1, 8, 0));
  auto m = instance();
  ScopedFailpoint fp("solver.solve", "every=1:throw");  // every attempt fails
  JobSpec spec;
  spec.etc = m;
  spec.policy = SolvePolicy::kMinMin;
  spec.deadline_ms = 1000.0;
  spec.use_cache = false;
  spec.max_retries = 2;
  const JobResult r = svc.wait(svc.submit(spec));
  EXPECT_EQ(r.status, JobStatus::kFailed);
  EXPECT_EQ(r.error, "quarantined");
  EXPECT_EQ(r.retries, 2u) << "attempts 2 and 3 were the retry budget";
  svc.drain();
  const auto snap = svc.metrics();
  EXPECT_EQ(snap.retries, 2u);
  EXPECT_EQ(snap.quarantined, 1u);
  EXPECT_EQ(snap.failed, 1u);
  EXPECT_EQ(snap.submitted, snap.completed + snap.failed + snap.cancelled);
}

TEST(SchedulerService, WatchdogFailsWedgedJobAndRespawnsTheWorker) {
  ServiceOptions o = small_service(1, 8, 0);
  o.supervision.stall_factor = 2.0;
  o.supervision.min_stall_ms = 100.0;
  o.supervision.poll_ms = 5.0;
  SchedulerService svc(o);
  auto m = instance();
  JobSpec spec;
  spec.etc = m;
  spec.policy = SolvePolicy::kMinMin;
  spec.deadline_ms = 50.0;  // stall threshold = max(100, 2 x 50) = 100 ms
  spec.use_cache = false;
  JobId wedged_id;
  {
    ScopedFailpoint fp("solver.solve", "once:wedge");
    support::WallTimer t;
    wedged_id = svc.submit(spec);
    const JobResult r = svc.wait(wedged_id);
    // The ONLY worker is parked inside the wedge; this result can only
    // come from the watchdog, well before any multi-second hang.
    EXPECT_EQ(r.status, JobStatus::kFailed);
    EXPECT_NE(r.error.find("stalled"), std::string::npos) << r.error;
    EXPECT_LT(t.elapsed_seconds(), 5.0);
  }  // disarm releases the parked (now superseded) thread
  // The respawned worker must serve the same home shard: same-shape jobs
  // keep completing on worker 0.
  for (int i = 0; i < 3; ++i) {
    const JobResult r = svc.wait(svc.submit(spec));
    EXPECT_EQ(r.status, JobStatus::kDone);
  }
  svc.drain();
  const auto snap = svc.metrics();
  EXPECT_EQ(snap.stalled, 1u);
  EXPECT_GE(snap.worker_restarts, 1u);
  EXPECT_EQ(snap.completed, 3u);
  ASSERT_EQ(snap.worker_completed.size(), 1u);
  EXPECT_EQ(snap.worker_completed[0], 3u)
      << "replacement thread owns the restarted worker's slot";
  EXPECT_EQ(snap.submitted, snap.completed + snap.failed + snap.cancelled);
}

TEST(SchedulerService, FailpointMidSeededSolveRetriesWithWarmPathIntact) {
  // Chaos flavor of the escalation test: the first seeded PA-CGA attempt
  // throws at the solver.solve failpoint; the retry must run the SAME
  // warm path — seeded engine, kPaCga provenance, never worse than the
  // seed — not degrade to a cold solve or the clamp.
  auto m = instance(512, 16, 9);
  const JobResult refined = refined_seed(*m);

  SchedulerService svc(small_service(1, 8, 0));
  ScopedFailpoint fp("solver.solve", "once:throw");  // attempt 1 fails
  JobSpec spec;
  spec.etc = m;
  spec.policy = SolvePolicy::kAuto;
  spec.deadline_ms = 5000.0;
  spec.max_generations = 2;
  spec.use_cache = false;
  spec.max_retries = 1;
  spec.warm_start = refined.assignment;
  const JobResult r = svc.wait(svc.submit_reschedule(std::move(spec)));
  EXPECT_EQ(r.status, JobStatus::kDone);
  EXPECT_EQ(r.retries, 1u);
  EXPECT_TRUE(r.warm_started);
  EXPECT_EQ(r.policy_used, SolvePolicy::kPaCga);
  ASSERT_EQ(r.assignment.size(), m->tasks());
  EXPECT_LE(r.makespan, refined.makespan + 1e-9);
  svc.drain();
  EXPECT_EQ(svc.metrics().quarantined, 0u);
}

#endif  // PACGA_NO_FAILPOINTS

}  // namespace
}  // namespace pacga::service
