#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/stats.hpp"

#include <algorithm>
#include <set>
#include <vector>

namespace pacga::support {
namespace {

TEST(SplitMix64, DeterministicSequence) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256, Reproducible) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, ReseedResets) {
  Xoshiro256 a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(a());
  a.reseed(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a(), first[i]);
}

TEST(Xoshiro256, BoundedStaysInRange) {
  Xoshiro256 rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 255ULL, 1000000ULL}) {
    for (int i = 0; i < 500; ++i) {
      EXPECT_LT(rng.bounded(bound), bound);
    }
  }
}

TEST(Xoshiro256, BoundedOneAlwaysZero) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Xoshiro256, UniformIntInclusiveRange) {
  Xoshiro256 rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Xoshiro256, UniformInHalfOpenUnit) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 5000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro256, UniformRangeRespectsBounds) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 2000; ++i) {
    const double u = rng.uniform(5.0, 9.0);
    EXPECT_GE(u, 5.0);
    EXPECT_LT(u, 9.0);
  }
}

TEST(Xoshiro256, UniformMeanIsCentered) {
  Xoshiro256 rng(17);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro256, BernoulliFrequency) {
  Xoshiro256 rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Xoshiro256, BernoulliDegenerate) {
  Xoshiro256 rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Xoshiro256, ShuffleIsPermutation) {
  Xoshiro256 rng(29);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  auto copy = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(Xoshiro256, ShuffleActuallyMoves) {
  Xoshiro256 rng(31);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  auto orig = v;
  rng.shuffle(v);
  EXPECT_NE(v, orig);  // probability of identity permutation ~ 1/100!
}

TEST(Xoshiro256, LongJumpDecorrelates) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  b.long_jump();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a() == b());
  EXPECT_LT(equal, 5);
}

TEST(MakeStreams, StableUnderCountChanges) {
  auto two = make_streams(99, 2);
  auto eight = make_streams(99, 8);
  // Stream i must not depend on how many streams were requested.
  for (int i = 0; i < 2; ++i) {
    for (int k = 0; k < 100; ++k) EXPECT_EQ(two[i](), eight[i]());
  }
}

TEST(MakeStreams, StreamsAreDecorrelated) {
  auto streams = make_streams(123, 4);
  std::set<std::uint64_t> firsts;
  for (auto& s : streams) firsts.insert(s());
  EXPECT_EQ(firsts.size(), 4u);
}

TEST(SeedFromString, StableAndDistinct) {
  EXPECT_EQ(seed_from_string("u_c_hihi.0"), seed_from_string("u_c_hihi.0"));
  EXPECT_NE(seed_from_string("u_c_hihi.0"), seed_from_string("u_c_hihi.1"));
  EXPECT_NE(seed_from_string("u_c_hihi.0"), seed_from_string("u_i_hihi.0"));
}

TEST(Xoshiro256, NormalMomentsAreStandard) {
  Xoshiro256 rng(41);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(Xoshiro256, NormalScalesAndShifts) {
  Xoshiro256 rng(43);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Xoshiro256, GammaMomentsMatchShapeScale) {
  Xoshiro256 rng(47);
  // Gamma(k, theta): mean = k*theta, var = k*theta^2.
  for (auto [shape, scale] : {std::pair{2.0, 3.0}, {9.0, 0.5}, {0.5, 2.0}}) {
    RunningStats s;
    for (int i = 0; i < 100000; ++i) s.add(rng.gamma(shape, scale));
    EXPECT_NEAR(s.mean(), shape * scale, 0.05 * shape * scale)
        << "shape " << shape;
    EXPECT_NEAR(s.variance(), shape * scale * scale,
                0.1 * shape * scale * scale)
        << "shape " << shape;
    EXPECT_GT(s.min(), 0.0);
  }
}

TEST(Xoshiro256, GammaCoefficientOfVariation) {
  // CV of Gamma(k, theta) is 1/sqrt(k) — the property the CVB ETC
  // generation method relies on.
  Xoshiro256 rng(53);
  const double v = 0.6;
  const double shape = 1.0 / (v * v);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.gamma(shape, 10.0));
  EXPECT_NEAR(s.stddev() / s.mean(), v, 0.02);
}

class BoundedUniformityTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BoundedUniformityTest, RoughlyUniform) {
  const std::uint64_t bound = GetParam();
  Xoshiro256 rng(bound * 7919 + 1);
  std::vector<int> counts(bound, 0);
  const int draws_per_bucket = 2000;
  const int n = static_cast<int>(bound) * draws_per_bucket;
  for (int i = 0; i < n; ++i) ++counts[rng.bounded(bound)];
  for (std::uint64_t k = 0; k < bound; ++k) {
    // 5-sigma band around the expected bucket count.
    const double expected = draws_per_bucket;
    const double sigma = std::sqrt(expected * (1.0 - 1.0 / bound));
    EXPECT_NEAR(counts[k], expected, 5.0 * sigma) << "bucket " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, BoundedUniformityTest,
                         ::testing::Values(2, 3, 5, 16, 17));

}  // namespace
}  // namespace pacga::support
