#include "cga/engine.hpp"

#include <gtest/gtest.h>

#include "support/stats.hpp"

#include <algorithm>
#include <set>

#include "etc/braun.hpp"
#include "heuristics/minmin.hpp"

namespace pacga::cga {
namespace {

etc::EtcMatrix instance(std::uint64_t seed = 41) {
  etc::GenSpec spec;
  spec.tasks = 128;
  spec.machines = 16;
  spec.consistency = etc::Consistency::kInconsistent;
  spec.seed = seed;
  return etc::generate(spec);
}

Config fast_config() {
  Config c;
  c.width = 8;
  c.height = 8;
  c.termination = Termination::after_generations(10);
  c.local_search.iterations = 2;
  c.collect_trace = true;
  return c;
}

TEST(MakeSweepOrder, LineAndReverse) {
  support::Xoshiro256 rng(1);
  const auto line = detail::make_sweep_order(SweepPolicy::kLineSweep, 5, rng);
  EXPECT_EQ(line, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
  const auto rev = detail::make_sweep_order(SweepPolicy::kReverseSweep, 5, rng);
  EXPECT_EQ(rev, (std::vector<std::size_t>{4, 3, 2, 1, 0}));
}

TEST(MakeSweepOrder, ShufflesArePermutations) {
  support::Xoshiro256 rng(2);
  for (auto policy : {SweepPolicy::kFixedShuffle, SweepPolicy::kNewShuffle}) {
    auto order = detail::make_sweep_order(policy, 50, rng);
    std::sort(order.begin(), order.end());
    for (std::size_t i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
  }
}

TEST(MakeSweepOrder, UniformChoiceSamplesWithReplacement) {
  support::Xoshiro256 rng(3);
  const auto order =
      detail::make_sweep_order(SweepPolicy::kUniformChoice, 100, rng);
  EXPECT_EQ(order.size(), 100u);
  const std::set<std::size_t> unique(order.begin(), order.end());
  EXPECT_LT(unique.size(), 100u);  // collisions virtually certain
  for (std::size_t i : order) EXPECT_LT(i, 100u);
}

TEST(ShouldReplace, Policies) {
  EXPECT_TRUE(detail::should_replace(ReplacementPolicy::kReplaceIfBetter, 1.0, 2.0));
  EXPECT_FALSE(detail::should_replace(ReplacementPolicy::kReplaceIfBetter, 2.0, 1.0));
  EXPECT_FALSE(detail::should_replace(ReplacementPolicy::kReplaceIfBetter, 1.0, 1.0));
  EXPECT_TRUE(detail::should_replace(ReplacementPolicy::kAlways, 9.0, 1.0));
}

TEST(SequentialEngine, Deterministic) {
  const auto m = instance();
  Config c = fast_config();
  c.seed = 123;
  const auto r1 = run_sequential(m, c);
  const auto r2 = run_sequential(m, c);
  EXPECT_DOUBLE_EQ(r1.best_fitness, r2.best_fitness);
  EXPECT_EQ(r1.evaluations, r2.evaluations);
  EXPECT_EQ(r1.best.hamming_distance(r2.best), 0u);
}

TEST(SequentialEngine, SeedChangesTrajectory) {
  const auto m = instance();
  Config c = fast_config();
  c.seed = 1;
  const auto r1 = run_sequential(m, c);
  c.seed = 2;
  const auto r2 = run_sequential(m, c);
  // Same instance, same budget, different search path.
  EXPECT_NE(r1.best.hamming_distance(r2.best), 0u);
}

TEST(SequentialEngine, GenerationAccounting) {
  const auto m = instance();
  Config c = fast_config();
  const auto r = run_sequential(m, c);
  EXPECT_EQ(r.generations, 10u);
  EXPECT_EQ(r.evaluations, 10u * c.population_size());
}

TEST(SequentialEngine, EvaluationBudgetRespected) {
  const auto m = instance();
  Config c = fast_config();
  c.termination = Termination::after_evaluations(100);
  const auto r = run_sequential(m, c);
  EXPECT_EQ(r.evaluations, 100u);
}

TEST(SequentialEngine, WallClockTerminates) {
  const auto m = instance();
  Config c = fast_config();
  c.termination = Termination::after_seconds(0.2);
  const auto r = run_sequential(m, c);
  // Coarse check (per-generation granularity): finished near the budget.
  EXPECT_GE(r.elapsed_seconds, 0.2);
  EXPECT_LT(r.elapsed_seconds, 5.0);
  EXPECT_GT(r.generations, 0u);
}

TEST(SequentialEngine, FitnessNeverDegradesWithReplaceIfBetter) {
  const auto m = instance();
  Config c = fast_config();
  c.termination = Termination::after_generations(20);
  const auto r = run_sequential(m, c);
  ASSERT_GT(r.trace.size(), 1u);
  for (std::size_t i = 1; i < r.trace.size(); ++i) {
    EXPECT_LE(r.trace[i].best_fitness, r.trace[i - 1].best_fitness);
    EXPECT_LE(r.trace[i].mean_fitness, r.trace[i - 1].mean_fitness + 1e-9);
  }
}

TEST(SequentialEngine, ImprovesOverRandomInitialPopulation) {
  const auto m = instance();
  Config c = fast_config();
  c.seed_min_min = false;
  c.termination = Termination::after_generations(30);
  const auto r = run_sequential(m, c);
  ASSERT_FALSE(r.trace.empty());
  const double initial_best = r.trace.front().best_fitness;
  EXPECT_LT(r.best_fitness, initial_best);
}

TEST(SequentialEngine, MinMinSeedGuaranteesAtLeastMinMinQuality) {
  const auto m = instance();
  Config c = fast_config();
  c.seed_min_min = true;
  const auto r = run_sequential(m, c);
  const double minmin_ms = heur::min_min(m).makespan();
  EXPECT_LE(r.best_fitness, minmin_ms + 1e-9);
}

TEST(SequentialEngine, BestScheduleMatchesReportedFitness) {
  const auto m = instance();
  const auto r = run_sequential(m, fast_config());
  EXPECT_DOUBLE_EQ(r.best.makespan(), r.best_fitness);
  EXPECT_TRUE(r.best.validate(1e-9));
}

TEST(SequentialEngine, SynchronousModeRuns) {
  const auto m = instance();
  Config c = fast_config();
  c.update = UpdatePolicy::kSynchronous;
  const auto r = run_sequential(m, c);
  EXPECT_EQ(r.generations, 10u);
  EXPECT_TRUE(r.best.validate(1e-9));
}

TEST(SequentialEngine, AsyncConvergesAtLeastAsFastAsSyncOnAverage) {
  // The literature result the paper cites: asynchronous CGAs converge
  // faster. Check mean best fitness after a small fixed budget.
  const auto m = instance(43);
  support::RunningStats async_fit, sync_fit;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Config c = fast_config();
    c.termination = Termination::after_generations(15);
    c.seed = seed;
    c.seed_min_min = false;
    c.update = UpdatePolicy::kAsynchronous;
    async_fit.add(run_sequential(m, c).best_fitness);
    c.update = UpdatePolicy::kSynchronous;
    sync_fit.add(run_sequential(m, c).best_fitness);
  }
  EXPECT_LE(async_fit.mean(), sync_fit.mean() * 1.02);
}

TEST(SequentialEngine, TabuHopLocalSearchVariantRuns) {
  const auto m = instance();
  Config c = fast_config();
  c.ls_kind = LocalSearchKind::kTabuHop;
  c.tabu = {5, 4};
  const auto r = run_sequential(m, c);
  EXPECT_TRUE(r.best.validate(1e-9));
  EXPECT_EQ(r.generations, 10u);
}

TEST(SequentialEngine, SteepestLocalSearchVariantRuns) {
  const auto m = instance();
  Config c = fast_config();
  c.ls_kind = LocalSearchKind::kH2LLSteepest;
  const auto r = run_sequential(m, c);
  EXPECT_TRUE(r.best.validate(1e-9));
}

TEST(SequentialEngine, LsKindNoneMatchesZeroIterations) {
  // Both configurations disable local search, and neither consumes the
  // p_ls Bernoulli draw (the guard short-circuits before it), so the two
  // search trajectories must be identical.
  const auto m = instance();
  Config a = fast_config();
  a.ls_kind = LocalSearchKind::kNone;
  Config b = fast_config();
  b.local_search.iterations = 0;
  const auto ra = run_sequential(m, a);
  const auto rb = run_sequential(m, b);
  EXPECT_DOUBLE_EQ(ra.best_fitness, rb.best_fitness);
}

TEST(SequentialEngine, TraceDisabledByDefault) {
  const auto m = instance();
  Config c = fast_config();
  c.collect_trace = false;
  const auto r = run_sequential(m, c);
  EXPECT_TRUE(r.trace.empty());
}

class SweepPolicyTest : public ::testing::TestWithParam<SweepPolicy> {};

TEST_P(SweepPolicyTest, AllPoliciesReachBudgetAndImprove) {
  const auto m = instance();
  Config c = fast_config();
  c.sweep = GetParam();
  c.termination = Termination::after_generations(15);
  const auto r = run_sequential(m, c);
  EXPECT_EQ(r.generations, 15u);
  EXPECT_TRUE(r.best.validate(1e-9));
  ASSERT_FALSE(r.trace.empty());
  EXPECT_LE(r.best_fitness, r.trace.front().best_fitness);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, SweepPolicyTest,
    ::testing::Values(SweepPolicy::kLineSweep, SweepPolicy::kReverseSweep,
                      SweepPolicy::kFixedShuffle, SweepPolicy::kNewShuffle,
                      SweepPolicy::kUniformChoice),
    [](const auto& info) {
      std::string n = to_string(info.param);
      for (char& ch : n) {
        if (ch == '-') ch = '_';
      }
      return n;
    });

class NeighborhoodShapeEngineTest
    : public ::testing::TestWithParam<NeighborhoodShape> {};

TEST_P(NeighborhoodShapeEngineTest, EngineRunsWithEveryShape) {
  const auto m = instance();
  Config c = fast_config();
  c.neighborhood = GetParam();
  const auto r = run_sequential(m, c);
  EXPECT_TRUE(r.best.validate(1e-9));
  EXPECT_GT(r.evaluations, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, NeighborhoodShapeEngineTest,
    ::testing::Values(NeighborhoodShape::kLinear5, NeighborhoodShape::kCompact9,
                      NeighborhoodShape::kLinear9,
                      NeighborhoodShape::kCompact13),
    [](const auto& info) {
      std::string n = to_string(info.param);
      for (char& ch : n) {
        if (ch == '-') ch = '_';
      }
      return n;
    });

}  // namespace
}  // namespace pacga::cga
