#include "cga/mutation.hpp"

#include <gtest/gtest.h>

#include <map>

#include "etc/braun.hpp"

namespace pacga::cga {
namespace {

etc::EtcMatrix instance(std::uint64_t seed = 21) {
  etc::GenSpec spec;
  spec.tasks = 64;
  spec.machines = 8;
  spec.consistency = etc::Consistency::kInconsistent;
  spec.seed = seed;
  return etc::generate(spec);
}

TEST(MoveMutation, ChangesAtMostOneGene) {
  const auto m = instance();
  support::Xoshiro256 rng(1);
  for (int i = 0; i < 100; ++i) {
    auto s = sched::Schedule::random(m, rng);
    const auto before = s;
    mutate(MutationKind::kMove, s, rng);
    EXPECT_LE(s.hamming_distance(before), 1u);
    EXPECT_TRUE(s.validate());
  }
}

TEST(SwapMutation, ChangesZeroOrTwoGenes) {
  const auto m = instance();
  support::Xoshiro256 rng(2);
  for (int i = 0; i < 100; ++i) {
    auto s = sched::Schedule::random(m, rng);
    const auto before = s;
    mutate(MutationKind::kSwap, s, rng);
    const auto d = s.hamming_distance(before);
    EXPECT_TRUE(d == 0 || d == 2) << d;
    EXPECT_TRUE(s.validate());
  }
}

TEST(RebalanceMutation, MovesFromMostLoaded) {
  const auto m = instance();
  support::Xoshiro256 rng(3);
  for (int i = 0; i < 100; ++i) {
    auto s = sched::Schedule::random(m, rng);
    const auto loaded = static_cast<sched::MachineId>(s.argmax_machine());
    const auto tasks_before = s.tasks_on(loaded);
    const auto before = s;
    mutate(MutationKind::kRebalance, s, rng);
    // Either nothing moved (target == source) or one task left the most
    // loaded machine.
    if (s.hamming_distance(before) == 1) {
      EXPECT_EQ(s.tasks_on(loaded), tasks_before - 1);
    }
    EXPECT_TRUE(s.validate());
  }
}

TEST(RandomTaskOnMachine, UniformOverMachineTasks) {
  const auto m = instance();
  // Assignment with tasks 0..15 on machine 2.
  std::vector<sched::MachineId> assign(64, 0);
  for (std::size_t t = 0; t < 16; ++t) assign[t] = 2;
  const sched::Schedule s(m, assign);
  support::Xoshiro256 rng(4);
  std::map<std::size_t, int> counts;
  const int n = 16000;
  for (int i = 0; i < n; ++i) {
    const auto t = random_task_on_machine(s, 2, rng);
    ASSERT_LT(t, 16u);
    ++counts[t];
  }
  for (const auto& [task, count] : counts) {
    EXPECT_NEAR(static_cast<double>(count) / n, 1.0 / 16, 0.01) << task;
  }
}

TEST(RandomTaskOnMachine, EmptyMachineReturnsSentinel) {
  const auto m = instance();
  const sched::Schedule s(m);  // everything on machine 0
  support::Xoshiro256 rng(5);
  EXPECT_EQ(random_task_on_machine(s, 3, rng), s.tasks());
}

TEST(RandomTaskOnMachine, SingleTask) {
  const auto m = instance();
  std::vector<sched::MachineId> assign(64, 0);
  assign[37] = 5;
  const sched::Schedule s(m, assign);
  support::Xoshiro256 rng(6);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(random_task_on_machine(s, 5, rng), 37u);
  }
}

TEST(Mutation, EmptyScheduleTolerated) {
  // Single-task, single-machine degenerate cases must not crash.
  etc::EtcMatrix m(1, 1, {1.0});
  auto s = sched::Schedule(m, {0});
  support::Xoshiro256 rng(7);
  for (auto kind : {MutationKind::kMove, MutationKind::kSwap,
                    MutationKind::kRebalance}) {
    mutate(kind, s, rng);
    EXPECT_TRUE(s.validate()) << to_string(kind);
  }
}

TEST(MutationNames, Distinct) {
  EXPECT_STREQ(to_string(MutationKind::kMove), "move");
  EXPECT_STREQ(to_string(MutationKind::kSwap), "swap");
  EXPECT_STREQ(to_string(MutationKind::kRebalance), "rebalance");
}

}  // namespace
}  // namespace pacga::cga
