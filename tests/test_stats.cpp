#include "support/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "support/rng.hpp"

namespace pacga::support {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, EmptyMinMaxAreNaNNotZero) {
  // A zero-sample accumulator must not report a plausible-looking 0 as its
  // min/max — the read is a bug and NaN makes it visible.
  RunningStats s;
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
}

TEST(RunningStats, AllNegativeSampleMinMax) {
  // Regression guard for the classic numeric_limits<double>::min()
  // initialization bug: min() is the smallest POSITIVE double, so a
  // sentinel-initialized accumulator reports max ~2.2e-308 (or 0) on an
  // all-negative sample. Init-from-first-observation cannot fail this.
  RunningStats s;
  for (double x : {-5.0, -2.0, -9.0, -1.5}) s.add(x);
  EXPECT_EQ(s.min(), -9.0);
  EXPECT_EQ(s.max(), -1.5);
}

TEST(RunningStats, AllNegativeMergeMinMax) {
  RunningStats a, b;
  a.add(-3.0);
  a.add(-7.0);
  b.add(-1.0);
  b.add(-20.0);
  a.merge(b);
  EXPECT_EQ(a.min(), -20.0);
  EXPECT_EQ(a.max(), -1.0);
}

TEST(RunningStats, MergeIntoEmptyAdoptsMinMax) {
  RunningStats empty, full;
  full.add(-4.0);
  full.add(2.0);
  empty.merge(full);
  EXPECT_EQ(empty.min(), -4.0);
  EXPECT_EQ(empty.max(), 2.0);
  // And merging an empty accumulator leaves min/max untouched.
  RunningStats still_empty;
  full.merge(still_empty);
  EXPECT_EQ(full.min(), -4.0);
  EXPECT_EQ(full.max(), 2.0);
}

TEST(RunningStats, SingleObservation) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownSample) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Xoshiro256 rng(1);
  RunningStats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-10, 10);
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_EQ(left.min(), whole.min());
  EXPECT_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  const double mean = a.mean();
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(Quantile, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(Quantile, Extremes) {
  std::vector<double> v{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
}

TEST(Quantile, Type7Interpolation) {
  // R: quantile(c(1,2,3,4), 0.25) == 1.75 (type 7).
  EXPECT_DOUBLE_EQ(quantile({1.0, 2.0, 3.0, 4.0}, 0.25), 1.75);
}

TEST(Quantile, ThrowsOnBadInput) {
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(quantile({1.0}, -0.1), std::invalid_argument);
  EXPECT_THROW(quantile({1.0}, 1.1), std::invalid_argument);
}

TEST(BoxStats, SummariesAreOrdered) {
  Xoshiro256 rng(2);
  std::vector<double> v;
  for (int i = 0; i < 101; ++i) v.push_back(rng.uniform(0, 100));
  const BoxStats b = box_stats(v);
  EXPECT_EQ(b.n, 101u);
  EXPECT_LE(b.min, b.q1);
  EXPECT_LE(b.q1, b.median);
  EXPECT_LE(b.median, b.q3);
  EXPECT_LE(b.q3, b.max);
  EXPECT_LE(b.notch_lo, b.median);
  EXPECT_GE(b.notch_hi, b.median);
}

TEST(BoxStats, NotchOverlapDetectsSameDistribution) {
  Xoshiro256 rng(3);
  std::vector<double> a, b;
  for (int i = 0; i < 200; ++i) {
    a.push_back(rng.uniform(0, 1));
    b.push_back(rng.uniform(0, 1));
  }
  EXPECT_FALSE(box_stats(a).median_differs(box_stats(b)));
}

TEST(BoxStats, NotchSeparationDetectsShift) {
  Xoshiro256 rng(4);
  std::vector<double> a, b;
  for (int i = 0; i < 200; ++i) {
    a.push_back(rng.uniform(0, 1));
    b.push_back(rng.uniform(5, 6));
  }
  EXPECT_TRUE(box_stats(a).median_differs(box_stats(b)));
}

TEST(MannWhitney, IdenticalSamplesNotSignificant) {
  std::vector<double> a{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const auto r = mann_whitney_u(a, a);
  EXPECT_GT(r.p_value, 0.9);
}

TEST(MannWhitney, ShiftedSamplesSignificant) {
  Xoshiro256 rng(5);
  std::vector<double> a, b;
  for (int i = 0; i < 50; ++i) {
    a.push_back(rng.uniform(0, 1));
    b.push_back(rng.uniform(2, 3));
  }
  const auto r = mann_whitney_u(a, b);
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(MannWhitney, SymmetricInZ) {
  Xoshiro256 rng(6);
  std::vector<double> a, b;
  for (int i = 0; i < 30; ++i) {
    a.push_back(rng.uniform(0, 1));
    b.push_back(rng.uniform(0.5, 1.5));
  }
  const auto ab = mann_whitney_u(a, b);
  const auto ba = mann_whitney_u(b, a);
  EXPECT_NEAR(ab.z, -ba.z, 1e-9);
  EXPECT_NEAR(ab.p_value, ba.p_value, 1e-9);
}

TEST(MannWhitney, AllTiedGivesPValueOne) {
  std::vector<double> a(10, 3.0), b(12, 3.0);
  const auto r = mann_whitney_u(a, b);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
}

TEST(MannWhitney, ThrowsOnEmpty) {
  EXPECT_THROW(mann_whitney_u({}, {1.0}), std::invalid_argument);
}

TEST(Ci95, ShrinksWithSampleSize) {
  Xoshiro256 rng(7);
  RunningStats small, large;
  for (int i = 0; i < 20; ++i) small.add(rng.uniform(0, 1));
  for (int i = 0; i < 2000; ++i) large.add(rng.uniform(0, 1));
  EXPECT_GT(ci95_halfwidth(small), ci95_halfwidth(large));
}

TEST(Pearson, PerfectCorrelation) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{2, 4, 6, 8, 10};
  const auto r = pearson(x, y);
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(*r, 1.0, 1e-12);
}

TEST(Pearson, DegenerateReturnsNullopt) {
  std::vector<double> x{1, 1, 1};
  std::vector<double> y{2, 4, 6};
  EXPECT_FALSE(pearson(x, y).has_value());
  EXPECT_FALSE(pearson({1.0}, {2.0}).has_value());
}

}  // namespace
}  // namespace pacga::support
