#include "sched/fitness.hpp"

#include <gtest/gtest.h>

#include "etc/braun.hpp"

namespace pacga::sched {
namespace {

etc::EtcMatrix instance() {
  etc::GenSpec spec;
  spec.tasks = 32;
  spec.machines = 4;
  spec.seed = 9;
  return etc::generate(spec);
}

TEST(Fitness, MakespanObjectiveMatchesSchedule) {
  const auto m = instance();
  support::Xoshiro256 rng(1);
  const Schedule s = Schedule::random(m, rng);
  EXPECT_DOUBLE_EQ(evaluate(s, Objective::kMakespan), s.makespan());
}

TEST(Fitness, FlowtimeObjectiveMatchesSchedule) {
  const auto m = instance();
  support::Xoshiro256 rng(2);
  const Schedule s = Schedule::random(m, rng);
  EXPECT_DOUBLE_EQ(evaluate(s, Objective::kFlowtime), s.flowtime());
}

TEST(Fitness, WeightedObjectiveInterpolates) {
  const auto m = instance();
  support::Xoshiro256 rng(3);
  const Schedule s = Schedule::random(m, rng);
  const double w1 = evaluate(s, Objective::kWeightedMakespanFlowtime, 1.0);
  EXPECT_DOUBLE_EQ(w1, s.makespan());
  const double w0 = evaluate(s, Objective::kWeightedMakespanFlowtime, 0.0);
  EXPECT_DOUBLE_EQ(w0, s.flowtime() / static_cast<double>(s.tasks()));
  const double mid = evaluate(s, Objective::kWeightedMakespanFlowtime, 0.5);
  EXPECT_DOUBLE_EQ(mid, 0.5 * w1 + 0.5 * w0);
}

TEST(Fitness, BetterIsStrictLess) {
  EXPECT_TRUE(better(1.0, 2.0));
  EXPECT_FALSE(better(2.0, 1.0));
  EXPECT_FALSE(better(1.0, 1.0));
}

TEST(Fitness, ObjectiveNames) {
  EXPECT_STREQ(to_string(Objective::kMakespan), "makespan");
  EXPECT_STREQ(to_string(Objective::kFlowtime), "flowtime");
  EXPECT_STREQ(to_string(Objective::kWeightedMakespanFlowtime), "weighted");
}

}  // namespace
}  // namespace pacga::sched
