#include "support/log.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace pacga::support {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, LevelRoundTrips) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
}

TEST(Log, StreamsAcceptMixedTypes) {
  LogLevelGuard guard;
  // Drop everything so the test stays silent; the point is that the
  // streaming interface compiles and does not crash for common types.
  set_log_level(LogLevel::kError);
  log_debug() << "int " << 42 << " double " << 2.5 << " text";
  log_info() << std::string("string") << ' ' << 'c';
  log_warn() << 0xffu;
}

TEST(Log, ThresholdSuppressesLowerLevels) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  // These must be cheap no-ops (can't capture stderr portably here; this
  // exercises the early-out path).
  for (int i = 0; i < 1000; ++i) log_debug() << i;
}

TEST(Log, ParsesEveryLevelSpellingCaseInsensitively) {
  const struct {
    const char* name;
    LogLevel expected;
  } cases[] = {
      {"debug", LogLevel::kDebug}, {"DEBUG", LogLevel::kDebug},
      {"info", LogLevel::kInfo},   {"Info", LogLevel::kInfo},
      {"warn", LogLevel::kWarn},   {"warning", LogLevel::kWarn},
      {"error", LogLevel::kError}, {"ERROR", LogLevel::kError},
      {"off", LogLevel::kOff},     {"none", LogLevel::kOff},
      {"OFF", LogLevel::kOff},
  };
  for (const auto& c : cases) {
    LogLevel out = LogLevel::kDebug;
    EXPECT_TRUE(parse_log_level(c.name, out)) << c.name;
    EXPECT_EQ(out, c.expected) << c.name;
  }
}

TEST(Log, RejectsUnknownSpellingsAndLeavesOutUntouched) {
  for (const char* bad : {"", "verbose", "trace", "2", "warn ", " info"}) {
    LogLevel out = LogLevel::kWarn;
    EXPECT_FALSE(parse_log_level(bad, out)) << '"' << bad << '"';
    EXPECT_EQ(out, LogLevel::kWarn) << '"' << bad << '"';
  }
}

TEST(Log, OffSuppressesEverything) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
  // Even kError is below the kOff threshold — the daemon-on-a-pipe
  // default must emit nothing.
  log_error() << "suppressed";
}

TEST(Log, ConcurrentLoggingDoesNotCrash) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);  // suppress output, keep the lock path
  std::vector<std::thread> threads;
  std::atomic<int> done{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&done, t] {
      for (int i = 0; i < 200; ++i) {
        log_warn() << "thread " << t << " line " << i;
      }
      done.fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(done.load(), 4);
}

}  // namespace
}  // namespace pacga::support
