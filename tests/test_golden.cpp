// Golden regression tests: deterministic single-thread runs with pinned
// seeds must keep producing the same results release after release. A
// change here is a behavioural change of the algorithm (RNG stream, sweep
// order, operator semantics) and must be deliberate.
#include <gtest/gtest.h>

#include "cga/engine.hpp"
#include "etc/suite.hpp"
#include "heuristics/minmin.hpp"
#include "pacga/parallel_engine.hpp"

namespace pacga {
namespace {

TEST(Golden, BraunInstanceFingerprints) {
  // Spot values of the regenerated suite (seeded by instance name).
  const auto hihi = etc::generate_by_name("u_c_hihi.0");
  const auto lolo = etc::generate_by_name("u_i_lolo.0");
  // Fingerprint by stable aggregates, not single cells, so the intent
  // (same instance) is clearer in a failure.
  EXPECT_NEAR(hihi.min_etc(), 106.103, 1e-2);
  EXPECT_NEAR(hihi.max_etc(), 2.92709e6, 1e2);
  EXPECT_NEAR(lolo.min_etc(), 1.31024, 1e-4);
  EXPECT_NEAR(lolo.max_etc(), 974.988, 1e-2);
}

TEST(Golden, MinMinMakespans) {
  EXPECT_NEAR(heur::min_min(etc::generate_by_name("u_c_hihi.0")).makespan(),
              8.19246e6, 1e2);
  EXPECT_NEAR(heur::min_min(etc::generate_by_name("u_i_hihi.0")).makespan(),
              3.2513e6, 1e2);
  EXPECT_NEAR(heur::min_min(etc::generate_by_name("u_s_lolo.0")).makespan(),
              2980.65, 1e-1);
}

TEST(Golden, SequentialEngineFixedSeed) {
  const auto m = etc::generate_by_name("u_i_lolo.0");
  cga::Config c;
  c.seed = 42;
  c.termination = cga::Termination::after_generations(5);
  const auto r1 = cga::run_sequential(m, c);
  const auto r2 = cga::run_sequential(m, c);
  // Bitwise reproducibility within this build…
  EXPECT_DOUBLE_EQ(r1.best_fitness, r2.best_fitness);
  EXPECT_EQ(r1.evaluations, 5u * 256u);
  // …and quality sanity vs the Min-min seed.
  EXPECT_LE(r1.best_fitness, heur::min_min(m).makespan() + 1e-9);
}

TEST(Golden, ParallelSingleThreadFixedSeed) {
  const auto m = etc::generate_by_name("u_s_hilo.0");
  cga::Config c;
  c.seed = 7;
  c.threads = 1;
  c.termination = cga::Termination::after_generations(5);
  const auto r1 = par::run_parallel(m, c);
  const auto r2 = par::run_parallel(m, c);
  EXPECT_DOUBLE_EQ(r1.result.best_fitness, r2.result.best_fitness);
  EXPECT_EQ(r1.result.best.hamming_distance(r2.result.best), 0u);
}

TEST(Golden, RngStreamFingerprint) {
  // First outputs of the canonical seeds; pins the SplitMix64 expansion
  // and the xoshiro step (a silent RNG change invalidates every recorded
  // experiment).
  support::Xoshiro256 rng(1);
  const std::uint64_t first = rng();
  support::Xoshiro256 rng2(1);
  EXPECT_EQ(first, rng2());
  auto streams = support::make_streams(1, 2);
  EXPECT_NE(streams[0](), streams[1]());
}

}  // namespace
}  // namespace pacga
