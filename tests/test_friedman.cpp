#include "support/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/rng.hpp"

namespace pacga::support {
namespace {

TEST(ChiSquaredSf, KnownValues) {
  // chi2 sf with 1 dof at x = 3.841 is ~0.05.
  EXPECT_NEAR(chi_squared_sf(3.841, 1.0), 0.05, 1e-3);
  // 2 dof: sf(x) = exp(-x/2).
  EXPECT_NEAR(chi_squared_sf(2.0, 2.0), std::exp(-1.0), 1e-9);
  EXPECT_NEAR(chi_squared_sf(10.0, 2.0), std::exp(-5.0), 1e-9);
  // 5 dof at 11.07 is ~0.05.
  EXPECT_NEAR(chi_squared_sf(11.07, 5.0), 0.05, 1e-3);
}

TEST(ChiSquaredSf, Boundaries) {
  EXPECT_DOUBLE_EQ(chi_squared_sf(0.0, 3.0), 1.0);
  EXPECT_DOUBLE_EQ(chi_squared_sf(-1.0, 3.0), 1.0);
  EXPECT_LT(chi_squared_sf(1000.0, 3.0), 1e-12);
  EXPECT_THROW(chi_squared_sf(1.0, 0.0), std::invalid_argument);
}

TEST(ChiSquaredSf, MonotoneDecreasing) {
  double prev = 1.0;
  for (double x = 0.5; x < 30.0; x += 0.5) {
    const double sf = chi_squared_sf(x, 4.0);
    EXPECT_LE(sf, prev + 1e-12);
    prev = sf;
  }
}

TEST(Friedman, DetectsDominantAlgorithm) {
  // Algorithm 0 always best, 2 always worst, across 12 blocks.
  std::vector<std::vector<double>> blocks;
  Xoshiro256 rng(1);
  for (int i = 0; i < 12; ++i) {
    const double base = rng.uniform(100, 200);
    blocks.push_back({base, base * 1.1, base * 1.3});
  }
  const auto r = friedman_test(blocks);
  EXPECT_NEAR(r.mean_ranks[0], 1.0, 1e-12);
  EXPECT_NEAR(r.mean_ranks[1], 2.0, 1e-12);
  EXPECT_NEAR(r.mean_ranks[2], 3.0, 1e-12);
  EXPECT_LT(r.p_value, 0.01);
}

TEST(Friedman, NoDifferenceWhenRandom) {
  // Exchangeable columns: p-value should usually be large.
  Xoshiro256 rng(2);
  std::vector<std::vector<double>> blocks;
  for (int i = 0; i < 20; ++i) {
    blocks.push_back({rng.uniform(), rng.uniform(), rng.uniform()});
  }
  const auto r = friedman_test(blocks);
  EXPECT_GT(r.p_value, 0.01);
}

TEST(Friedman, HandlesTiesWithAverageRanks) {
  std::vector<std::vector<double>> blocks{
      {1.0, 1.0, 2.0},
      {3.0, 3.0, 4.0},
  };
  const auto r = friedman_test(blocks);
  EXPECT_NEAR(r.mean_ranks[0], 1.5, 1e-12);
  EXPECT_NEAR(r.mean_ranks[1], 1.5, 1e-12);
  EXPECT_NEAR(r.mean_ranks[2], 3.0, 1e-12);
}

TEST(Friedman, RejectsDegenerateInput) {
  EXPECT_THROW(friedman_test({}), std::invalid_argument);
  EXPECT_THROW(friedman_test({{1.0, 2.0}}), std::invalid_argument);
  EXPECT_THROW(friedman_test({{1.0}, {2.0}}), std::invalid_argument);
  EXPECT_THROW(friedman_test({{1.0, 2.0}, {1.0}}), std::invalid_argument);
}

TEST(Friedman, StatisticMatchesHandComputation) {
  // Classic textbook example: 3 treatments, 4 blocks, clean ranks.
  const std::vector<std::vector<double>> blocks{
      {1.0, 2.0, 3.0},
      {1.0, 2.0, 3.0},
      {1.0, 2.0, 3.0},
      {2.0, 1.0, 3.0},
  };
  // Ranks: col0 -> 1,1,1,2 (mean 1.25); col1 -> 2,2,2,1 (mean 1.75);
  // col2 -> 3 (mean 3). chi2 = 12*4/(3*4) * [(1.25-2)^2+(1.75-2)^2+(3-2)^2]
  //       = 4 * (0.5625 + 0.0625 + 1) = 6.5.
  const auto r = friedman_test(blocks);
  EXPECT_NEAR(r.statistic, 6.5, 1e-12);
}

}  // namespace
}  // namespace pacga::support
