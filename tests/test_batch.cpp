#include "batch/policies.hpp"
#include "batch/simulator.hpp"
#include "batch/workload.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

namespace pacga::batch {
namespace {

WorkloadSpec small_spec() {
  WorkloadSpec spec;
  spec.tasks = 60;
  spec.machines = 6;
  spec.arrival_rate = 5.0;
  spec.workload_hi = 100.0;
  spec.mips_lo = 1.0;
  spec.mips_hi = 4.0;
  spec.seed = 11;
  return spec;
}

TEST(Workload, RejectsDegenerateSpecsWithNamedErrors) {
  const auto message_of = [](WorkloadSpec spec) -> std::string {
    try {
      generate_workload(spec);
    } catch (const std::invalid_argument& e) {
      return e.what();
    }
    return "";
  };
  WorkloadSpec spec = small_spec();

  spec.machines = 0;
  EXPECT_NE(message_of(spec).find("machines"), std::string::npos);
  spec = small_spec();
  spec.tasks = 0;
  EXPECT_NE(message_of(spec).find("tasks"), std::string::npos);
  spec = small_spec();
  spec.arrival_rate = 0.0;
  EXPECT_NE(message_of(spec).find("arrival_rate"), std::string::npos);
  spec.arrival_rate = -2.5;
  EXPECT_NE(message_of(spec).find("arrival_rate"), std::string::npos);
  spec.arrival_rate = std::numeric_limits<double>::infinity();
  EXPECT_NE(message_of(spec).find("arrival_rate"), std::string::npos);
  spec = small_spec();
  spec.workload_hi = spec.workload_lo - 1.0;  // inverted range
  EXPECT_NE(message_of(spec).find("workload_hi"), std::string::npos);
  spec = small_spec();
  spec.workload_lo = 0.0;
  EXPECT_NE(message_of(spec).find("workload_lo"), std::string::npos);
  spec = small_spec();
  spec.mips_hi = spec.mips_lo / 2.0;
  EXPECT_NE(message_of(spec).find("mips_hi"), std::string::npos);
  spec = small_spec();
  spec.inconsistency = -0.1;
  EXPECT_NE(message_of(spec).find("inconsistency"), std::string::npos);
  spec.inconsistency = std::numeric_limits<double>::quiet_NaN();
  EXPECT_NE(message_of(spec).find("inconsistency"), std::string::npos);
}

TEST(Workload, ValidSpecsProduceFiniteArrivals) {
  const auto w = generate_workload(small_spec());
  for (const auto& t : w.tasks) {
    EXPECT_TRUE(std::isfinite(t.arrival));
    EXPECT_GT(t.workload, 0.0);
  }
}

TEST(Workload, FullBatchEtcAdapter) {
  WorkloadSpec spec = small_spec();
  const auto m = make_workload_etc(spec);
  EXPECT_EQ(m.tasks(), spec.tasks);
  EXPECT_EQ(m.machines(), spec.machines);
  for (std::size_t mm = 0; mm < m.machines(); ++mm) {
    EXPECT_EQ(m.ready(mm), 0.0);  // idle park
  }
  // Deterministic in the seed.
  EXPECT_EQ(m.fingerprint(), make_workload_etc(spec).fingerprint());
  spec.seed += 1;
  EXPECT_NE(m.fingerprint(), make_workload_etc(spec).fingerprint());
}

TEST(Workload, GeneratesSortedArrivals) {
  const auto w = generate_workload(small_spec());
  ASSERT_EQ(w.tasks.size(), 60u);
  ASSERT_EQ(w.machines.size(), 6u);
  for (std::size_t i = 1; i < w.tasks.size(); ++i) {
    EXPECT_GE(w.tasks[i].arrival, w.tasks[i - 1].arrival);
  }
  for (const auto& t : w.tasks) {
    EXPECT_GT(t.workload, 0.0);
    EXPECT_LE(t.workload, 100.0);
  }
  for (const auto& m : w.machines) {
    EXPECT_GE(m.mips, 1.0);
    EXPECT_LE(m.mips, 4.0);
  }
}

TEST(Workload, DeterministicInSeed) {
  const auto a = generate_workload(small_spec());
  const auto b = generate_workload(small_spec());
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.tasks[i].arrival, b.tasks[i].arrival);
    EXPECT_DOUBLE_EQ(a.tasks[i].workload, b.tasks[i].workload);
  }
}

TEST(Workload, ArrivalRateControlsDensity) {
  auto slow = small_spec();
  slow.arrival_rate = 1.0;
  auto fast = small_spec();
  fast.arrival_rate = 100.0;
  EXPECT_GT(generate_workload(slow).tasks.back().arrival,
            generate_workload(fast).tasks.back().arrival);
}

TEST(Workload, RejectsBadSpecs) {
  auto s = small_spec();
  s.tasks = 0;
  EXPECT_THROW(generate_workload(s), std::invalid_argument);
  s = small_spec();
  s.arrival_rate = 0.0;
  EXPECT_THROW(generate_workload(s), std::invalid_argument);
  s = small_spec();
  s.mips_lo = -1.0;
  EXPECT_THROW(generate_workload(s), std::invalid_argument);
}

TEST(BatchEtc, MatchesWorkloadOverMips) {
  auto spec = small_spec();
  spec.inconsistency = 0.0;  // exact ratio, no noise
  const auto w = generate_workload(spec);
  const std::size_t task_ids[] = {0, 3, 7};
  const std::size_t machine_ids[] = {1, 4};
  const double ready[] = {0.0, 2.5};
  const auto etc = make_batch_etc(w, task_ids, machine_ids, ready, 0.0, 1);
  ASSERT_EQ(etc.tasks(), 3u);
  ASSERT_EQ(etc.machines(), 2u);
  EXPECT_DOUBLE_EQ(etc(0, 0), w.tasks[0].workload / w.machines[1].mips);
  EXPECT_DOUBLE_EQ(etc(2, 1), w.tasks[7].workload / w.machines[4].mips);
  EXPECT_DOUBLE_EQ(etc.ready(1), 2.5);
}

TEST(BatchEtc, NoiseIsStableAcrossResubmission) {
  const auto w = generate_workload(small_spec());
  const std::size_t task_ids[] = {5};
  const std::size_t machine_ids[] = {0, 1, 2};
  const double ready[] = {0.0, 0.0, 0.0};
  const auto a = make_batch_etc(w, task_ids, machine_ids, ready, 0.8, 42);
  const auto b = make_batch_etc(w, task_ids, machine_ids, ready, 0.8, 42);
  for (std::size_t m = 0; m < 3; ++m) {
    EXPECT_DOUBLE_EQ(a(0, m), b(0, m));
  }
}

TEST(BatchEtc, ZeroNoiseGivesConsistentMatrix) {
  auto spec = small_spec();
  const auto w = generate_workload(spec);
  std::vector<std::size_t> task_ids(20);
  for (std::size_t i = 0; i < 20; ++i) task_ids[i] = i;
  std::vector<std::size_t> machine_ids(w.machines.size());
  for (std::size_t m = 0; m < machine_ids.size(); ++m) machine_ids[m] = m;
  std::vector<double> ready(machine_ids.size(), 0.0);
  const auto etc = make_batch_etc(w, task_ids, machine_ids, ready, 0.0, 1);
  EXPECT_TRUE(etc.is_consistent());
}

TEST(Simulator, CompletesAllTasksWithHeuristicPolicy) {
  const auto w = generate_workload(small_spec());
  SimSpec sim;
  sim.epoch_length = 1.0;
  const auto metrics = simulate(w, sim, min_min_policy());
  EXPECT_EQ(metrics.scheduled_tasks, w.tasks.size());
  EXPECT_EQ(metrics.resubmissions, 0u);
  EXPECT_GT(metrics.completion_time, 0.0);
  EXPECT_GE(metrics.mean_response, metrics.mean_wait);
  EXPECT_GE(metrics.mean_wait, 0.0);
  EXPECT_GT(metrics.utilization, 0.0);
  EXPECT_LE(metrics.utilization, 1.0 + 1e-9);
}

TEST(Simulator, DeterministicWithDeterministicPolicy) {
  const auto w = generate_workload(small_spec());
  SimSpec sim;
  const auto a = simulate(w, sim, mct_policy());
  const auto b = simulate(w, sim, mct_policy());
  EXPECT_DOUBLE_EQ(a.completion_time, b.completion_time);
  EXPECT_DOUBLE_EQ(a.mean_response, b.mean_response);
  EXPECT_EQ(a.epochs, b.epochs);
}

TEST(Simulator, MinMinBeatsRandomPolicy) {
  auto spec = small_spec();
  spec.tasks = 120;
  const auto w = generate_workload(spec);
  SimSpec sim;
  const auto good = simulate(w, sim, min_min_policy());
  const auto bad = simulate(w, sim, random_policy(9));
  EXPECT_LT(good.completion_time, bad.completion_time);
  EXPECT_LT(good.mean_response, bad.mean_response);
}

TEST(Simulator, ShorterEpochsReduceWait) {
  const auto w = generate_workload(small_spec());
  SimSpec coarse;
  coarse.epoch_length = 8.0;
  SimSpec fine;
  fine.epoch_length = 0.5;
  const auto slow = simulate(w, coarse, min_min_policy());
  const auto fast = simulate(w, fine, min_min_policy());
  EXPECT_LT(fast.mean_wait, slow.mean_wait);
}

TEST(Simulator, MachineDropsCauseResubmissions) {
  auto spec = small_spec();
  spec.tasks = 100;
  const auto w = generate_workload(spec);
  SimSpec sim;
  sim.epoch_length = 0.5;
  sim.machine_drop_prob = 0.3;
  sim.machine_join_prob = 0.5;
  sim.seed = 3;
  const auto metrics = simulate(w, sim, mct_policy());
  // All tasks still finish; drops occurred and forced re-scheduling.
  EXPECT_GT(metrics.drops, 0u);
  EXPECT_GE(metrics.scheduled_tasks, w.tasks.size());
  EXPECT_EQ(metrics.scheduled_tasks - w.tasks.size(), metrics.resubmissions);
}

TEST(Simulator, ChurnNeverLosesTasks) {
  // Heavy churn stress: every task must still complete exactly once.
  auto spec = small_spec();
  spec.tasks = 80;
  const auto w = generate_workload(spec);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SimSpec sim;
    sim.epoch_length = 0.5;
    sim.machine_drop_prob = 0.4;
    sim.machine_join_prob = 0.6;
    sim.seed = seed;
    const auto metrics = simulate(w, sim, mct_policy());
    EXPECT_GT(metrics.completion_time, 0.0) << "seed " << seed;
    EXPECT_GE(metrics.scheduled_tasks, w.tasks.size()) << "seed " << seed;
  }
}

TEST(Simulator, PaCgaPolicyRunsWithinBudget) {
  auto spec = small_spec();
  spec.tasks = 40;
  const auto w = generate_workload(spec);
  SimSpec sim;
  sim.epoch_length = 2.0;
  cga::Config base;
  base.threads = 2;
  const auto metrics = simulate(w, sim, pa_cga_policy(base, 20.0));
  EXPECT_EQ(metrics.scheduled_tasks, w.tasks.size());
}

TEST(Simulator, PaCgaPolicyNotWorseThanRandom) {
  auto spec = small_spec();
  spec.tasks = 80;
  const auto w = generate_workload(spec);
  SimSpec sim;
  sim.epoch_length = 2.0;
  cga::Config base;
  base.threads = 2;
  const auto ga = simulate(w, sim, pa_cga_policy(base, 30.0));
  const auto rnd = simulate(w, sim, random_policy(5));
  EXPECT_LT(ga.completion_time, rnd.completion_time);
}

TEST(Simulator, RejectsWrongSizePolicy) {
  const auto w = generate_workload(small_spec());
  SimSpec sim;
  // A policy that ignores the batch and schedules a different-size
  // problem: the simulator must detect the contract violation.
  Policy broken = [&w](const etc::EtcMatrix&) {
    etc::EtcMatrix other(1, 1, {1.0});
    return sched::Schedule(other, {0});
  };
  EXPECT_THROW(simulate(w, sim, broken), std::runtime_error);
}

TEST(Simulator, RejectsBadSpec) {
  const auto w = generate_workload(small_spec());
  SimSpec sim;
  sim.epoch_length = 0.0;
  EXPECT_THROW(simulate(w, sim, mct_policy()), std::invalid_argument);
}

}  // namespace
}  // namespace pacga::batch
