#include "cga/selection.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace pacga::cga {
namespace {

TEST(BestTwo, PicksTwoLowest) {
  support::Xoshiro256 rng(1);
  const std::vector<double> fit{5.0, 1.0, 3.0, 0.5, 4.0};
  const auto [a, b] = select_parents(SelectionKind::kBestTwo, fit, rng);
  EXPECT_EQ(a, 3u);
  EXPECT_EQ(b, 1u);
}

TEST(BestTwo, DistinctEvenWithTies) {
  support::Xoshiro256 rng(2);
  const std::vector<double> fit{2.0, 2.0, 2.0, 2.0, 2.0};
  const auto [a, b] = select_parents(SelectionKind::kBestTwo, fit, rng);
  EXPECT_NE(a, b);
}

TEST(BestTwo, DeterministicNoRngConsumption) {
  support::Xoshiro256 rng(3);
  const auto before = rng();
  support::Xoshiro256 rng2(3);
  const std::vector<double> fit{3.0, 1.0, 2.0};
  (void)select_parents(SelectionKind::kBestTwo, fit, rng2);
  EXPECT_EQ(rng2(), before);  // best-two consumed no randomness
}

TEST(SingleCellNeighborhood, ReturnsSelfTwice) {
  support::Xoshiro256 rng(4);
  const std::vector<double> fit{1.0};
  for (auto kind : {SelectionKind::kBestTwo, SelectionKind::kTournament,
                    SelectionKind::kRoulette, SelectionKind::kRandomTwo}) {
    const auto [a, b] = select_parents(kind, fit, rng);
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 0u);
  }
}

TEST(Tournament, ReturnsDistinctPositions) {
  support::Xoshiro256 rng(5);
  const std::vector<double> fit{1.0, 2.0, 3.0, 4.0, 5.0};
  for (int i = 0; i < 200; ++i) {
    const auto [a, b] = select_parents(SelectionKind::kTournament, fit, rng);
    EXPECT_NE(a, b);
    EXPECT_LT(a, fit.size());
    EXPECT_LT(b, fit.size());
  }
}

TEST(Tournament, PrefersFitter) {
  support::Xoshiro256 rng(6);
  const std::vector<double> fit{1.0, 10.0, 10.0, 10.0, 10.0};
  int best_first = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const auto [a, b] = select_parents(SelectionKind::kTournament, fit, rng);
    best_first += (a == 0);
  }
  // P(cell 0 wins first tournament) = 1 - (4/5)^2 = 0.36.
  EXPECT_NEAR(static_cast<double>(best_first) / n, 0.36, 0.05);
}

TEST(Roulette, PrefersFitter) {
  support::Xoshiro256 rng(7);
  const std::vector<double> fit{1.0, 100.0, 100.0, 100.0, 100.0};
  std::map<std::size_t, int> firsts;
  const int n = 3000;
  for (int i = 0; i < n; ++i) {
    const auto [a, b] = select_parents(SelectionKind::kRoulette, fit, rng);
    ++firsts[a];
    EXPECT_NE(a, b);
  }
  // Cell 0 carries nearly all the weight.
  EXPECT_GT(firsts[0], n / 2);
}

TEST(Roulette, UniformWhenAllEqual) {
  support::Xoshiro256 rng(8);
  const std::vector<double> fit{3.0, 3.0, 3.0, 3.0};
  std::map<std::size_t, int> firsts;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    const auto [a, b] = select_parents(SelectionKind::kRoulette, fit, rng);
    ++firsts[a];
  }
  for (const auto& [pos, count] : firsts) {
    EXPECT_NEAR(static_cast<double>(count) / n, 0.25, 0.05) << pos;
  }
}

TEST(RandomTwo, UniformAndDistinct) {
  support::Xoshiro256 rng(9);
  const std::vector<double> fit{1.0, 2.0, 3.0, 4.0};
  std::map<std::size_t, int> firsts;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    const auto [a, b] = select_parents(SelectionKind::kRandomTwo, fit, rng);
    EXPECT_NE(a, b);
    ++firsts[a];
  }
  for (const auto& [pos, count] : firsts) {
    EXPECT_NEAR(static_cast<double>(count) / n, 0.25, 0.05) << pos;
  }
}

TEST(SelectionNames, AllDistinct) {
  EXPECT_STREQ(to_string(SelectionKind::kBestTwo), "best2");
  EXPECT_STREQ(to_string(SelectionKind::kTournament), "tournament");
  EXPECT_STREQ(to_string(SelectionKind::kRoulette), "roulette");
  EXPECT_STREQ(to_string(SelectionKind::kRandomTwo), "random2");
}

}  // namespace
}  // namespace pacga::cga
