#include "cga/population_io.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "etc/braun.hpp"

namespace pacga::cga {
namespace {

etc::EtcMatrix instance(std::uint64_t seed = 111) {
  etc::GenSpec spec;
  spec.tasks = 32;
  spec.machines = 8;
  spec.seed = seed;
  return etc::generate(spec);
}

Population make_population(const etc::EtcMatrix& m, std::uint64_t seed) {
  support::Xoshiro256 rng(seed);
  return Population(m, Grid(4, 4), rng, true, sched::Objective::kMakespan);
}

TEST(PopulationIo, RoundTripPreservesAssignmentsAndFitness) {
  const auto m = instance();
  auto original = make_population(m, 1);
  std::stringstream buf;
  save_population(buf, original);

  auto restored = make_population(m, 999);  // different content
  load_population(buf, restored, sched::Objective::kMakespan);
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(original.at(i).schedule.hamming_distance(
                  restored.at(i).schedule),
              0u)
        << "cell " << i;
    EXPECT_DOUBLE_EQ(original.at(i).fitness, restored.at(i).fitness);
  }
}

TEST(PopulationIo, FitnessRecomputedUnderRequestedObjective) {
  const auto m = instance();
  auto pop = make_population(m, 2);
  std::stringstream buf;
  save_population(buf, pop);
  auto restored = make_population(m, 3);
  load_population(buf, restored, sched::Objective::kFlowtime);
  for (std::size_t i = 0; i < restored.size(); ++i) {
    EXPECT_DOUBLE_EQ(restored.at(i).fitness,
                     restored.at(i).schedule.flowtime());
  }
}

TEST(PopulationIo, RejectsShapeMismatch) {
  const auto m = instance();
  auto pop = make_population(m, 4);
  std::stringstream buf;
  save_population(buf, pop);

  support::Xoshiro256 rng(5);
  Population other(m, Grid(2, 8), rng, false, sched::Objective::kMakespan);
  EXPECT_THROW(load_population(buf, other, sched::Objective::kMakespan),
               std::runtime_error);
}

TEST(PopulationIo, RejectsMalformedInput) {
  const auto m = instance();
  auto pop = make_population(m, 6);

  std::stringstream bad_magic("not-a-pop 1 4 4 32\n");
  EXPECT_THROW(load_population(bad_magic, pop, sched::Objective::kMakespan),
               std::runtime_error);

  std::stringstream bad_version("pacga-pop 99 4 4 32\n");
  EXPECT_THROW(load_population(bad_version, pop, sched::Objective::kMakespan),
               std::runtime_error);

  std::stringstream truncated("pacga-pop 1 4 4 32\n0 1 2\n");
  EXPECT_THROW(load_population(truncated, pop, sched::Objective::kMakespan),
               std::runtime_error);

  std::stringstream empty;
  EXPECT_THROW(load_population(empty, pop, sched::Objective::kMakespan),
               std::runtime_error);
}

TEST(PopulationIo, RejectsOutOfRangeMachineIds) {
  const auto m = instance();
  auto pop = make_population(m, 7);
  std::stringstream buf;
  buf << "pacga-pop 1 4 4 32\n";
  for (int cell = 0; cell < 16; ++cell) {
    for (int t = 0; t < 32; ++t) buf << " 200";  // only 8 machines exist
    buf << '\n';
  }
  EXPECT_THROW(load_population(buf, pop, sched::Objective::kMakespan),
               std::runtime_error);
}

TEST(PopulationIo, FileRoundTrip) {
  const auto m = instance();
  auto pop = make_population(m, 8);
  const auto path =
      (std::filesystem::temp_directory_path() / "pacga_pop_test.txt").string();
  save_population_file(path, pop);
  auto restored = make_population(m, 9);
  load_population_file(path, restored, sched::Objective::kMakespan);
  EXPECT_EQ(pop.at(5).schedule.hamming_distance(restored.at(5).schedule), 0u);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace pacga::cga
