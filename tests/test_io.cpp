#include "etc/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "etc/braun.hpp"

namespace pacga::etc {
namespace {

EtcMatrix sample_matrix() {
  GenSpec spec;
  spec.tasks = 8;
  spec.machines = 3;
  spec.seed = 5;
  return generate(spec);
}

TEST(BraunIo, StreamRoundTrip) {
  const auto m = sample_matrix();
  std::stringstream buf;
  write_braun(buf, m);
  const auto back = read_braun(buf);
  ASSERT_EQ(back.tasks(), m.tasks());
  ASSERT_EQ(back.machines(), m.machines());
  for (std::size_t t = 0; t < m.tasks(); ++t) {
    for (std::size_t mm = 0; mm < m.machines(); ++mm) {
      EXPECT_DOUBLE_EQ(back(t, mm), m(t, mm));
    }
  }
}

TEST(BraunIo, HeaderlessReadWithExplicitDims) {
  const auto m = sample_matrix();
  std::stringstream buf;
  // Headerless: just the values.
  buf.precision(17);
  for (std::size_t t = 0; t < m.tasks(); ++t) {
    for (std::size_t mm = 0; mm < m.machines(); ++mm) {
      buf << m(t, mm) << '\n';
    }
  }
  const auto back = read_braun(buf, m.tasks(), m.machines());
  EXPECT_DOUBLE_EQ(back(3, 1), m(3, 1));
}

TEST(BraunIo, FileRoundTrip) {
  const auto m = sample_matrix();
  const auto path =
      (std::filesystem::temp_directory_path() / "pacga_io_test.etc").string();
  write_braun_file(path, m);
  const auto back = read_braun_file(path);
  EXPECT_DOUBLE_EQ(back(7, 2), m(7, 2));
  std::remove(path.c_str());
}

TEST(BraunIo, MissingHeaderThrows) {
  std::stringstream buf("");
  EXPECT_THROW(read_braun(buf), std::runtime_error);
}

TEST(BraunIo, TruncatedDataThrows) {
  std::stringstream buf("4 4\n1.0\n2.0\n");
  EXPECT_THROW(read_braun(buf), std::runtime_error);
}

TEST(BraunIo, MissingFileThrows) {
  EXPECT_THROW(read_braun_file("/nonexistent/path.etc"), std::runtime_error);
}

}  // namespace
}  // namespace pacga::etc
