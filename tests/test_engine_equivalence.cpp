// Engine-equivalence golden tests for the shared Breeder/loop core.
//
// The refactor's contract: rebasing the four evolution loops on the shared
// core changed ZERO observable behavior. These tests pin that contract —
//  * run_sequential (async and sync) reproduces a hand-rolled reference
//    loop written the way the engines were before the refactor (legacy
//    detail::breed + manual bookkeeping), gene for gene;
//  * the three engines are individually deterministic on a fixed seed and
//    cellwise is worker-count independent;
//  * Config::lambda reaches the evaluation (weighted objective with
//    lambda = 1 is numerically the makespan objective, so the whole
//    trajectory must match);
//  * the per-generation observer fires with consistent accounting in all
//    engines;
//  * warm seeding (Config::warm_seed) places the seed verbatim in the
//    documented cell of the initial population, perturbs nothing else, and
//    a seeded run reproduces the hand-rolled seeded reference gene for
//    gene.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "cga/engine.hpp"
#include "etc/suite.hpp"
#include "heuristics/minmin.hpp"
#include "pacga/cellwise_engine.hpp"
#include "pacga/parallel_engine.hpp"
#include "sched/schedule.hpp"
#include "support/timer.hpp"

namespace pacga {
namespace {

etc::EtcMatrix instance(std::uint64_t seed = 31) {
  etc::GenSpec spec;
  spec.tasks = 128;
  spec.machines = 16;
  spec.consistency = etc::Consistency::kInconsistent;
  spec.seed = seed;
  return etc::generate(spec);
}

cga::Config fast_config() {
  cga::Config c;
  c.width = 8;
  c.height = 8;
  c.termination = cga::Termination::after_generations(8);
  c.local_search.iterations = 2;
  return c;
}

/// The sequential loop exactly as it was written before the shared core:
/// fresh allocations per step, manual best/termination/trace bookkeeping.
cga::Result reference_sequential(const etc::EtcMatrix& etc,
                                 const cga::Config& config) {
  config.validate();
  support::Xoshiro256 rng(config.seed);
  cga::Grid grid(config.width, config.height);
  cga::Population pop(etc, grid, rng, config.seed_min_min, config.objective,
                      config.lambda);
  const std::size_t n = pop.size();
  if (!config.warm_seed.empty()) {
    // Hand-rolled warm injection, written out the way the engines document
    // it: cell 1 when Min-min holds cell 0, cell 0 otherwise — BEFORE the
    // initial best is taken.
    const std::size_t cell = config.seed_min_min && n > 1 ? 1 : 0;
    pop.seed_cell(cell, etc, config.warm_seed, config.objective,
                  config.lambda);
  }

  cga::Individual best = pop.at(pop.best_index());
  support::WallTimer timer;
  const support::Deadline deadline(config.termination.wall_seconds);

  std::vector<std::size_t> neigh;
  std::vector<double> fit;
  std::vector<std::size_t> order =
      cga::detail::make_sweep_order(config.sweep, n, rng);
  std::vector<cga::Individual> staged;

  std::uint64_t evaluations = 0;
  std::uint64_t generations = 0;
  bool stop = false;

  while (!stop) {
    if (config.sweep == cga::SweepPolicy::kNewShuffle ||
        config.sweep == cga::SweepPolicy::kUniformChoice) {
      order = cga::detail::make_sweep_order(config.sweep, n, rng);
    }
    if (config.update == cga::UpdatePolicy::kSynchronous) staged.clear();

    for (std::size_t idx : order) {
      cga::Individual offspring =
          cga::detail::breed(pop, idx, config, rng, neigh, fit);
      ++evaluations;
      if (offspring.fitness < best.fitness) best = offspring;
      if (config.update == cga::UpdatePolicy::kAsynchronous) {
        if (cga::detail::should_replace(config.replacement, offspring.fitness,
                                        pop.at(idx).fitness)) {
          pop.at(idx) = std::move(offspring);
        }
      } else {
        staged.push_back(std::move(offspring));
      }
      if (evaluations >= config.termination.max_evaluations) {
        stop = true;
        break;
      }
    }

    if (config.update == cga::UpdatePolicy::kSynchronous) {
      for (std::size_t k = 0; k < staged.size(); ++k) {
        const std::size_t idx = order[k];
        if (cga::detail::should_replace(config.replacement, staged[k].fitness,
                                        pop.at(idx).fitness)) {
          pop.at(idx) = std::move(staged[k]);
        }
      }
    }

    ++generations;
    if (deadline.expired()) stop = true;
    if (generations >= config.termination.max_generations) stop = true;
  }

  cga::Result result{std::move(best.schedule)};
  result.best_fitness = best.fitness;
  result.evaluations = evaluations;
  result.generations = generations;
  return result;
}

class UpdatePolicyEquivalence
    : public ::testing::TestWithParam<cga::UpdatePolicy> {};

TEST_P(UpdatePolicyEquivalence, RefactoredEngineMatchesLegacyLoop) {
  const auto m = instance();
  for (std::uint64_t seed : {1ull, 17ull, 131ull}) {
    cga::Config c = fast_config();
    c.update = GetParam();
    c.seed = seed;
    const auto refactored = cga::run_sequential(m, c);
    const auto legacy = reference_sequential(m, c);
    EXPECT_DOUBLE_EQ(refactored.best_fitness, legacy.best_fitness)
        << "seed " << seed;
    EXPECT_EQ(refactored.best.hamming_distance(legacy.best), 0u)
        << "seed " << seed;
    EXPECT_EQ(refactored.evaluations, legacy.evaluations);
    EXPECT_EQ(refactored.generations, legacy.generations);
  }
}

TEST_P(UpdatePolicyEquivalence, SeededRunMatchesLegacyLoopGeneForGene) {
  // Warm seeding must not change anything about the trajectory except the
  // contents of the seeded cell: a seeded engine run reproduces the seeded
  // legacy loop exactly, and the result is never worse than the seed.
  const auto m = instance();
  support::Xoshiro256 seed_rng(77);
  const auto warm = sched::Schedule::random(m, seed_rng);
  for (std::uint64_t seed : {5ull, 97ull}) {
    cga::Config c = fast_config();
    c.update = GetParam();
    c.seed = seed;
    c.warm_seed.assign(warm.assignment().begin(), warm.assignment().end());
    const auto refactored = cga::run_sequential(m, c);
    const auto legacy = reference_sequential(m, c);
    EXPECT_DOUBLE_EQ(refactored.best_fitness, legacy.best_fitness)
        << "seed " << seed;
    EXPECT_EQ(refactored.best.hamming_distance(legacy.best), 0u)
        << "seed " << seed;
    EXPECT_EQ(refactored.evaluations, legacy.evaluations);
    EXPECT_EQ(refactored.generations, legacy.generations);
    EXPECT_LE(refactored.best_fitness, warm.makespan());
  }
}

INSTANTIATE_TEST_SUITE_P(BothPolicies, UpdatePolicyEquivalence,
                         ::testing::Values(cga::UpdatePolicy::kAsynchronous,
                                           cga::UpdatePolicy::kSynchronous),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(EngineEquivalence, SweepPoliciesMatchLegacyLoop) {
  const auto m = instance();
  for (auto sweep :
       {cga::SweepPolicy::kReverseSweep, cga::SweepPolicy::kFixedShuffle,
        cga::SweepPolicy::kNewShuffle, cga::SweepPolicy::kUniformChoice}) {
    cga::Config c = fast_config();
    c.sweep = sweep;
    c.seed = 23;
    const auto refactored = cga::run_sequential(m, c);
    const auto legacy = reference_sequential(m, c);
    EXPECT_DOUBLE_EQ(refactored.best_fitness, legacy.best_fitness)
        << to_string(sweep);
    EXPECT_EQ(refactored.best.hamming_distance(legacy.best), 0u)
        << to_string(sweep);
  }
}

TEST(EngineEquivalence, MidSweepEvaluationBudgetMatchesLegacyLoop) {
  const auto m = instance();
  cga::Config c = fast_config();
  c.termination = cga::Termination::after_evaluations(100);  // mid-sweep
  const auto refactored = cga::run_sequential(m, c);
  const auto legacy = reference_sequential(m, c);
  EXPECT_EQ(refactored.evaluations, 100u);
  EXPECT_EQ(refactored.evaluations, legacy.evaluations);
  EXPECT_EQ(refactored.generations, legacy.generations);
  EXPECT_DOUBLE_EQ(refactored.best_fitness, legacy.best_fitness);
}

TEST(EngineEquivalence, ThreeEnginesPinnedOnFixedSeed) {
  // Each engine is deterministic on a fixed seed: run twice, compare
  // everything. (The engines use different RNG stream layouts by design,
  // so they are pinned individually, not against each other.)
  const auto m = instance(47);
  cga::Config c = fast_config();
  c.seed = 2026;
  c.threads = 1;

  const auto s1 = cga::run_sequential(m, c);
  const auto s2 = cga::run_sequential(m, c);
  EXPECT_DOUBLE_EQ(s1.best_fitness, s2.best_fitness);
  EXPECT_EQ(s1.best.hamming_distance(s2.best), 0u);

  const auto w1 = par::run_cellwise(m, c);
  const auto w2 = par::run_cellwise(m, c);
  EXPECT_DOUBLE_EQ(w1.result.best_fitness, w2.result.best_fitness);
  EXPECT_EQ(w1.result.best.hamming_distance(w2.result.best), 0u);

  const auto p1 = par::run_parallel(m, c);
  const auto p2 = par::run_parallel(m, c);
  EXPECT_DOUBLE_EQ(p1.result.best_fitness, p2.result.best_fitness);
  EXPECT_EQ(p1.result.best.hamming_distance(p2.result.best), 0u);

  // All three search the same landscape from the same Min-min seed; their
  // qualities must be in the same ballpark.
  EXPECT_LT(s1.best_fitness, w1.result.best_fitness * 1.25);
  EXPECT_LT(w1.result.best_fitness, s1.best_fitness * 1.25);
  EXPECT_LT(p1.result.best_fitness, s1.best_fitness * 1.25);
  EXPECT_LT(s1.best_fitness, p1.result.best_fitness * 1.25);
}

TEST(EngineEquivalence, LambdaReachesEvaluation) {
  // lambda = 1 makes the weighted objective numerically equal to makespan,
  // so the full search trajectory must coincide with a makespan run.
  const auto m = instance();
  cga::Config makespan = fast_config();
  makespan.objective = sched::Objective::kMakespan;
  cga::Config weighted = fast_config();
  weighted.objective = sched::Objective::kWeightedMakespanFlowtime;
  weighted.lambda = 1.0;
  const auto rm = cga::run_sequential(m, makespan);
  const auto rw = cga::run_sequential(m, weighted);
  EXPECT_DOUBLE_EQ(rm.best_fitness, rw.best_fitness);
  EXPECT_EQ(rm.best.hamming_distance(rw.best), 0u);

  // And different lambdas genuinely change the search.
  cga::Config half = fast_config();
  half.objective = sched::Objective::kWeightedMakespanFlowtime;
  half.lambda = 0.5;
  const auto rh = cga::run_sequential(m, half);
  EXPECT_NE(rh.best_fitness, rw.best_fitness);
}

TEST(EngineEquivalence, ObserverFiresPerGenerationInAllEngines) {
  const auto m = instance();
  cga::Config c = fast_config();
  c.threads = 2;

  std::uint64_t seq_calls = 0;
  std::uint64_t last_evals = 0;
  const auto rs = cga::run_sequential(m, c, [&](const cga::GenerationEvent& e) {
    ++seq_calls;
    EXPECT_EQ(e.generation, seq_calls);
    EXPECT_GT(e.evaluations, last_evals);
    last_evals = e.evaluations;
    EXPECT_GT(e.best_fitness, 0.0);
    EXPECT_EQ(e.population.size(), 64u);
  });
  EXPECT_EQ(seq_calls, rs.generations);
  EXPECT_EQ(last_evals, rs.evaluations);

  std::uint64_t cw_calls = 0;
  const auto rw = par::run_cellwise(m, c, [&](const cga::GenerationEvent& e) {
    ++cw_calls;
    EXPECT_EQ(e.generation, cw_calls);
  });
  EXPECT_EQ(cw_calls, rw.result.generations);

  std::uint64_t par_calls = 0;
  par::run_parallel(m, c, [&](const cga::GenerationEvent& e) {
    ++par_calls;
    EXPECT_GT(e.evaluations, 0u);
  });
  EXPECT_GT(par_calls, 0u);
}

TEST(EngineEquivalence, WarmSeedPresentVerbatimInInitialPopulation) {
  // apply_warm_seed is THE injection point every engine routes through:
  // the seed lands gene-for-gene in the documented cell, the Min-min
  // individual survives in cell 0, and an empty seed is a no-op.
  const auto m = instance();
  support::Xoshiro256 seed_rng(5);
  const auto warm = sched::Schedule::random(m, seed_rng);

  for (bool min_min : {true, false}) {
    cga::Config c = fast_config();
    c.seed_min_min = min_min;
    c.warm_seed.assign(warm.assignment().begin(), warm.assignment().end());
    support::Xoshiro256 init(c.seed);
    cga::Grid grid(c.width, c.height);
    cga::Population pop(m, grid, init, c.seed_min_min, c.objective,
                        c.lambda);
    const std::size_t cell = cga::apply_warm_seed(pop, m, c);
    EXPECT_EQ(cell, cga::warm_seed_cell(min_min, pop.size()));
    const cga::Individual& seeded = pop.at(cell);
    EXPECT_EQ(seeded.schedule.hamming_distance(warm), 0u);
    EXPECT_DOUBLE_EQ(seeded.fitness, warm.makespan());
    if (min_min) {
      // Both survive: the heuristic seed keeps cell 0.
      EXPECT_DOUBLE_EQ(pop.at(0).fitness, heur::min_min(m).makespan());
    }
  }

  cga::Config empty = fast_config();
  support::Xoshiro256 init(empty.seed);
  cga::Grid grid(empty.width, empty.height);
  cga::Population pop(m, grid, init, empty.seed_min_min, empty.objective,
                      empty.lambda);
  EXPECT_EQ(cga::apply_warm_seed(pop, m, empty), pop.size());
}

TEST(EngineEquivalence, MalformedWarmSeedThrows) {
  // A wrong-length or out-of-range seed must be rejected loudly (the
  // Schedule::adopt checks), not silently clamped or truncated.
  const auto m = instance();
  cga::Config short_seed = fast_config();
  short_seed.warm_seed.assign(m.tasks() - 1, sched::MachineId{0});
  EXPECT_THROW(cga::run_sequential(m, short_seed), std::invalid_argument);

  cga::Config bad_machine = fast_config();
  bad_machine.warm_seed.assign(
      m.tasks(), static_cast<sched::MachineId>(m.machines()));
  EXPECT_THROW(cga::run_sequential(m, bad_machine), std::invalid_argument);
}

TEST(EngineEquivalence, CellwiseEvaluationAccountingIsExact) {
  // The termination counter is the real summed per-thread totals, and the
  // reported total matches it: max_evaluations means the same thing in
  // every engine (granularity: one generation).
  const auto m = instance();
  cga::Config c = fast_config();
  c.threads = 3;
  c.termination = cga::Termination::after_evaluations(200);
  const auto r = par::run_cellwise(m, c);
  std::uint64_t sum = 0;
  for (const auto& t : r.threads) sum += t.evaluations;
  EXPECT_EQ(sum, r.result.evaluations);
  EXPECT_GE(r.result.evaluations, 200u);
  EXPECT_LE(r.result.evaluations, 200u + 64u);
  EXPECT_EQ(r.result.evaluations, r.result.generations * 64u);
}

}  // namespace
}  // namespace pacga
