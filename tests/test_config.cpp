#include "cga/config.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace pacga::cga {
namespace {

TEST(Config, DefaultsMatchPaperTable1) {
  const Config c;
  // Table 1: population 16x16, L5 neighborhood, best-2 selection,
  // p_comb = 1.0, move mutation p_mut = 1.0, H2LL with p_ser = 1.0,
  // replace-if-better, line sweep, Min-min seed, threads 1-4 (3 adopted).
  EXPECT_EQ(c.width, 16u);
  EXPECT_EQ(c.height, 16u);
  EXPECT_EQ(c.population_size(), 256u);
  EXPECT_EQ(c.neighborhood, NeighborhoodShape::kLinear5);
  EXPECT_EQ(c.selection, SelectionKind::kBestTwo);
  EXPECT_DOUBLE_EQ(c.p_comb, 1.0);
  EXPECT_EQ(c.mutation, MutationKind::kMove);
  EXPECT_DOUBLE_EQ(c.p_mut, 1.0);
  EXPECT_DOUBLE_EQ(c.p_ls, 1.0);
  EXPECT_EQ(c.local_search.iterations, 10u);
  EXPECT_EQ(c.replacement, ReplacementPolicy::kReplaceIfBetter);
  EXPECT_EQ(c.update, UpdatePolicy::kAsynchronous);
  EXPECT_EQ(c.sweep, SweepPolicy::kLineSweep);
  EXPECT_TRUE(c.seed_min_min);
  EXPECT_EQ(c.objective, sched::Objective::kMakespan);
  EXPECT_EQ(c.threads, 3u);
  // The paper adopts tpx after the Figure 5 study.
  EXPECT_EQ(c.crossover, CrossoverKind::kTwoPoint);
}

TEST(Config, ValidateAcceptsDefaults) {
  const Config c;
  EXPECT_NO_THROW(c.validate());
}

TEST(Config, ValidateRejectsBadValues) {
  Config c;
  c.width = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = Config{};
  c.p_comb = 1.5;
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = Config{};
  c.p_mut = -0.1;
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = Config{};
  c.threads = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = Config{};
  c.threads = 1000;  // > 256 individuals
  EXPECT_THROW(c.validate(), std::invalid_argument);

  c = Config{};
  c.termination.wall_seconds = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(Termination, FactoryHelpers) {
  const auto by_time = Termination::after_seconds(90.0);
  EXPECT_DOUBLE_EQ(by_time.wall_seconds, 90.0);
  EXPECT_EQ(by_time.max_generations, std::numeric_limits<std::uint64_t>::max());

  const auto by_gen = Termination::after_generations(50);
  EXPECT_EQ(by_gen.max_generations, 50u);
  EXPECT_TRUE(std::isinf(by_gen.wall_seconds));

  const auto by_eval = Termination::after_evaluations(1000);
  EXPECT_EQ(by_eval.max_evaluations, 1000u);
}

TEST(EnumNames, RoundTripStrings) {
  EXPECT_STREQ(to_string(ReplacementPolicy::kReplaceIfBetter), "if-better");
  EXPECT_STREQ(to_string(ReplacementPolicy::kAlways), "always");
  EXPECT_STREQ(to_string(SweepPolicy::kLineSweep), "line");
  EXPECT_STREQ(to_string(SweepPolicy::kUniformChoice), "uniform");
  EXPECT_STREQ(to_string(UpdatePolicy::kAsynchronous), "async");
  EXPECT_STREQ(to_string(UpdatePolicy::kSynchronous), "sync");
}

}  // namespace
}  // namespace pacga::cga
