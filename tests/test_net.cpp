// The TCP edge of the scheduler daemon (src/net): multi-client
// correctness, protocol equivalence with the pipe transport, malformed
// input over both transports, backpressure, and disconnect draining.
//
// Every test stands up a real Server on an ephemeral loopback port with
// the event loop on a background thread, and talks to it through real
// sockets — the same code path production clients take, including partial
// reads, pipelining and half-closes.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "net/protocol.hpp"
#include "net/server.hpp"
#include "service/service.hpp"

namespace {

using namespace pacga;
using namespace std::chrono_literals;

/// Blocking loopback test client with a line-buffered reader and a recv
/// timeout, so a lost response fails the test instead of hanging it.
class Client {
 public:
  explicit Client(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) throw std::runtime_error("client socket() failed");
    timeval tv{};
    tv.tv_sec = 20;
    (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0)
      throw std::runtime_error(std::string("connect failed: ") +
                               std::strerror(errno));
  }

  ~Client() { close(); }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  void send(const std::string& data) {
    std::size_t off = 0;
    while (off < data.size()) {
      const ssize_t n = ::send(fd_, data.data() + off, data.size() - off,
#ifdef MSG_NOSIGNAL
                               MSG_NOSIGNAL
#else
                               0
#endif
      );
      if (n < 0 && errno == EINTR) continue;
      ASSERT_GT(n, 0) << "send failed: " << std::strerror(errno);
      off += static_cast<std::size_t>(n);
    }
  }

  void send_line(const std::string& line) { send(line + "\n"); }

  /// Next response line, or "" on EOF/timeout.
  std::string read_line() {
    for (;;) {
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return "";  // EOF or timeout
      }
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  /// True when the peer closed the connection (and no buffered line left).
  bool at_eof() { return buf_.find('\n') == std::string::npos && drained(); }

  void half_close() { ::shutdown(fd_, SHUT_WR); }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  bool drained() {
    char chunk[4096];
    for (;;) {
      const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n == 0) return true;
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;  // timeout: peer still open
      }
      buf_.append(chunk, static_cast<std::size_t>(n));
      if (buf_.find('\n') != std::string::npos) return false;
    }
  }

  int fd_ = -1;
  std::string buf_;
};

/// Scheduler service + TCP server on an ephemeral port, loop on a
/// background thread. Deterministic protocol defaults (minmin, no timing
/// fields) so response bytes are assertable.
class NetTest : public ::testing::Test {
 protected:
  void start(service::ServiceOptions svc_options = {},
             net::ServerOptions server_options = {}) {
    svc_options.workers = svc_options.workers ? svc_options.workers : 2;
    svc_.emplace(svc_options);
    server_options.protocol.policy =
        server_options.protocol.policy == "auto"
            ? "minmin"
            : server_options.protocol.policy;
    server_options.protocol.deterministic = true;
    server_.emplace(*svc_, server_options);
    loop_ = std::thread([this] { server_->run(); });
  }

  void TearDown() override {
    if (server_) {
      server_->stop();
      loop_.join();
      server_.reset();
    }
    if (svc_) svc_->shutdown();
  }

  std::uint16_t port() const { return server_->port(); }

  std::optional<service::SchedulerService> svc_;
  std::optional<net::Server> server_;
  std::thread loop_;
};

constexpr char kSubmit[] = "INSTANCE 0 60000 1 u_c_hihi.0";
constexpr char kResultPrefix[] = "RESULT id=1 status=done makespan=";

TEST_F(NetTest, SubmitWaitQuitRoundTrip) {
  start();
  Client c(port());
  c.send_line(kSubmit);
  EXPECT_EQ(c.read_line(), "JOB 1");
  c.send_line("WAIT 1");
  const std::string result = c.read_line();
  EXPECT_EQ(result.compare(0, std::strlen(kResultPrefix), kResultPrefix), 0)
      << result;
  c.send_line("QUIT");
  EXPECT_EQ(c.read_line(), "BYE");
  EXPECT_TRUE(c.at_eof());  // QUIT closes the connection, not the daemon
}

TEST_F(NetTest, JobIdsAreNamespacedPerConnection) {
  start();
  Client a(port());
  Client b(port());
  a.send_line(kSubmit);
  EXPECT_EQ(a.read_line(), "JOB 1");
  // b's first job is global id 2 but must be announced as ITS id 1.
  b.send_line(kSubmit);
  EXPECT_EQ(b.read_line(), "JOB 1");
  a.send_line("WAIT 1");
  b.send_line("WAIT 1");
  EXPECT_EQ(a.read_line().compare(0, std::strlen(kResultPrefix),
                                  kResultPrefix), 0);
  EXPECT_EQ(b.read_line().compare(0, std::strlen(kResultPrefix),
                                  kResultPrefix), 0);
  // Neither session can address the other's job.
  a.send_line("WAIT 2");
  EXPECT_EQ(a.read_line(), "ERR SchedulerService::wait: unknown job id");
}

TEST_F(NetTest, PipelinedScriptAnswersInRequestOrder) {
  start();
  Client c(port());
  // The whole script in one packet: the WAIT parks the connection, so the
  // later submissions and STATS must NOT be answered before the RESULT.
  c.send(std::string(kSubmit) + "\nWAIT 1\n" + kSubmit + "\nWAIT 2\nQUIT\n");
  EXPECT_EQ(c.read_line(), "JOB 1");
  EXPECT_EQ(c.read_line().compare(0, 10, "RESULT id="), 0);
  EXPECT_EQ(c.read_line(), "JOB 2");
  const std::string second = c.read_line();
  EXPECT_EQ(second.compare(0, 12, "RESULT id=2 "), 0) << second;
  EXPECT_EQ(c.read_line(), "BYE");
}

TEST_F(NetTest, ManyConcurrentClientsLoseNoResults) {
  start();
  constexpr int kClients = 24;
  constexpr int kJobs = 4;
  std::vector<std::thread> threads;
  std::vector<std::string> failures(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([this, i, &failures] {
      try {
        Client c(port());
        for (int j = 1; j <= kJobs; ++j) {
          // Distinct shapes per client so results are attributable.
          c.send_line("WORKLOAD 0 60000 " + std::to_string(i + 1) + " " +
                      std::to_string(32 + i) + " 8 " + std::to_string(i + 1));
          const std::string job = c.read_line();
          if (job != "JOB " + std::to_string(j))
            throw std::runtime_error("bad JOB reply: " + job);
          c.send_line("WAIT " + std::to_string(j));
          const std::string result = c.read_line();
          if (result.compare(0, 7, "RESULT ") != 0 ||
              result.find("id=" + std::to_string(j) + " ") == std::string::npos ||
              result.find("status=done") == std::string::npos)
            throw std::runtime_error("bad RESULT reply: " + result);
        }
        c.send_line("QUIT");
        if (c.read_line() != "BYE") throw std::runtime_error("no BYE");
      } catch (const std::exception& e) {
        failures[i] = e.what();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < kClients; ++i)
    EXPECT_EQ(failures[i], "") << "client " << i;
}

TEST_F(NetTest, FullQueueAnswersBusyInsteadOfBlocking) {
  service::ServiceOptions svc_options;
  svc_options.workers = 1;
  svc_options.queue_capacity = 1;
  net::ServerOptions server_options;
  server_options.protocol.policy = "pacga";  // runs until the deadline
  start(svc_options, server_options);
  Client c(port());
  // Worker busy for ~2s, queue holds one: the burst must shed load fast
  // (a blocking admission would stall every other connection).
  for (int i = 0; i < 6; ++i) c.send_line("WORKLOAD 0 2000 1 64 8 1");
  int admitted = 0, busy = 0;
  for (int i = 0; i < 6; ++i) {
    const std::string reply = c.read_line();
    if (reply.compare(0, 4, "JOB ") == 0)
      ++admitted;
    else if (reply.compare(0, 19, "ERR BUSY queue full") == 0)
      ++busy;
    else
      FAIL() << reply;
  }
  EXPECT_GE(admitted, 1);
  EXPECT_GE(busy, 1);
  EXPECT_EQ(admitted + busy, 6);
  // The shed connection is still healthy.
  c.send_line("DRAIN");
  EXPECT_EQ(c.read_line(), "DRAINED");
}

TEST_F(NetTest, DrainIsPerConnection) {
  start();
  Client busy(port());
  Client idle(port());
  busy.send_line(kSubmit);
  EXPECT_EQ(busy.read_line(), "JOB 1");
  busy.send_line("DRAIN");
  // The idle connection's DRAIN must not wait for busy's job.
  idle.send_line("DRAIN");
  EXPECT_EQ(idle.read_line(), "DRAINED");
  EXPECT_EQ(busy.read_line(), "DRAINED");
}

TEST_F(NetTest, MalformedLinesAnswerErrWithoutKillingTheConnection) {
  start();
  Client c(port());
  const std::vector<std::pair<std::string, std::string>> cases = {
      {"WAIT", "ERR WAIT expects a job id"},
      {"WAIT notanumber", "ERR WAIT expects a job id"},
      {"WAIT 42", "ERR SchedulerService::wait: unknown job id"},
      {"CANCEL", "ERR CANCEL expects a job id"},
      {"CANCEL 42", "CANCELLED 42 0"},  // unknown local id: nothing to stop
      {"TRACE", "ERR TRACE expects <job-id> or DUMP <file>"},
      {"TRACE DUMP", "ERR TRACE DUMP expects a file path"},
      {"EVENT DOWN 0", "ERR EVENT requires a DYNAMIC session"},
      {"RESCHEDULE 0 10 1", "ERR RESCHEDULE requires a DYNAMIC session"},
      {"INSTANCE 0", "ERR INSTANCE expects <priority> <deadline_ms> <seed> ..."},
      {"INSTANCE 0 10 1 no_such_instance.9",
       "ERR unknown instance name: no_such_instance.9"},
      {"SUBMIT 0 10 1 4 2 1 2 3", "ERR SUBMIT: too few ETC values"},
      {"BOGUS VERB", "ERR unknown command BOGUS"},
  };
  for (const auto& [request, expected] : cases) {
    c.send_line(request);
    EXPECT_EQ(c.read_line(), expected) << request;
  }
  // Blank lines and CRLF line endings are tolerated silently.
  c.send("\n\r\nSTATS\r\n");
  EXPECT_EQ(c.read_line().compare(0, 6, "STATS "), 0);
}

TEST_F(NetTest, RequestLineSplitAcrossManyPackets) {
  start();
  Client c(port());
  const std::string script = std::string(kSubmit) + "\nWAIT 1\n";
  for (char ch : script) {
    c.send(std::string(1, ch));  // one byte per segment
    std::this_thread::yield();
  }
  EXPECT_EQ(c.read_line(), "JOB 1");
  EXPECT_EQ(c.read_line().compare(0, std::strlen(kResultPrefix),
                                  kResultPrefix), 0);
}

TEST_F(NetTest, OversizedRequestLineDropsOnlyThatConnection) {
  net::ServerOptions server_options;
  server_options.max_line = 128;
  start({}, server_options);
  Client offender(port());
  offender.send(std::string(4096, 'x'));  // no newline, over the cap
  EXPECT_EQ(offender.read_line(), "ERR line too long");
  EXPECT_TRUE(offender.at_eof());
  // The daemon survives and keeps serving others.
  Client ok(port());
  ok.send_line("STATS");
  EXPECT_EQ(ok.read_line().compare(0, 6, "STATS "), 0);
}

TEST_F(NetTest, HalfCloseServesBufferedScriptToCompletion) {
  start();
  Client c(port());
  // No QUIT and no trailing newline: FIN must still flush every reply,
  // including the final unterminated line (pipe getline semantics).
  c.send(std::string(kSubmit) + "\nWAIT 1\nSTATS");
  c.half_close();
  EXPECT_EQ(c.read_line(), "JOB 1");
  EXPECT_EQ(c.read_line().compare(0, std::strlen(kResultPrefix),
                                  kResultPrefix), 0);
  EXPECT_EQ(c.read_line().compare(0, 6, "STATS "), 0);
  EXPECT_TRUE(c.at_eof());
}

TEST_F(NetTest, AbruptDisconnectDrainsInflightJobs) {
  service::ServiceOptions svc_options;
  svc_options.workers = 1;
  net::ServerOptions server_options;
  server_options.protocol.policy = "pacga";  // long-running under deadline
  start(svc_options, server_options);
  {
    Client doomed(port());
    for (int i = 1; i <= 3; ++i) {
      doomed.send_line("WORKLOAD 0 30000 1 64 8 1");
      EXPECT_EQ(doomed.read_line(), "JOB " + std::to_string(i));
    }
    // Vanish with three ~30s jobs in flight.
  }
  // Disconnect must cancel them: a full drain completes in far less than
  // the 30s deadline, and no result handle leaks.
  const auto deadline = std::chrono::steady_clock::now() + 15s;
  std::thread waiter([this] { svc_->drain(); });
  waiter.join();
  EXPECT_LT(std::chrono::steady_clock::now(), deadline);
  // The daemon still serves new clients afterwards.
  Client after(port());
  after.send_line("DRAIN");
  EXPECT_EQ(after.read_line(), "DRAINED");
}

TEST_F(NetTest, ConnectionCapAnswersBusy) {
  net::ServerOptions server_options;
  server_options.max_connections = 2;
  start({}, server_options);
  Client a(port());
  Client b(port());
  a.send_line("STATS");
  EXPECT_EQ(a.read_line().compare(0, 6, "STATS "), 0);
  Client over(port());
  EXPECT_EQ(over.read_line(), "ERR BUSY too many connections");
  EXPECT_TRUE(over.at_eof());
}

// ---------------------------------------------------------------------------
// Overload / idle robustness.

TEST_F(NetTest, BusyAnswerCarriesARetryHint) {
  service::ServiceOptions svc_options;
  svc_options.workers = 1;
  svc_options.queue_capacity = 1;
  net::ServerOptions server_options;
  server_options.protocol.policy = "pacga";  // runs until the deadline
  start(svc_options, server_options);
  Client c(port());
  for (int i = 0; i < 6; ++i) c.send_line("WORKLOAD 0 2000 1 64 8 1");
  bool saw_busy = false;
  for (int i = 0; i < 6; ++i) {
    const std::string reply = c.read_line();
    if (reply.compare(0, 19, "ERR BUSY queue full") != 0) continue;
    saw_busy = true;
    // The shed line carries the daemon's own backoff hint: a positive
    // integer millisecond count a client can sleep before re-sending.
    const std::string key = " retry_ms=";
    const std::size_t at = reply.find(key);
    ASSERT_NE(at, std::string::npos) << reply;
    const std::string digits = reply.substr(at + key.size());
    ASSERT_FALSE(digits.empty()) << reply;
    for (char ch : digits) EXPECT_TRUE(ch >= '0' && ch <= '9') << reply;
    EXPECT_GE(std::stol(digits), 1) << reply;
  }
  EXPECT_TRUE(saw_busy);
}

TEST_F(NetTest, IdleConnectionIsReaped) {
  net::ServerOptions server_options;
  server_options.idle_timeout_ms = 150.0;
  start({}, server_options);
  Client c(port());
  c.send_line("STATS");
  EXPECT_EQ(c.read_line().compare(0, 6, "STATS "), 0);
  // Fall silent with nothing pending: the server must hang up on its own
  // (read_line returns "" on EOF well before the 20 s recv timeout).
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(c.read_line(), "");
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(elapsed, 100ms);  // not an instant slam
  EXPECT_LT(elapsed, 10s);    // reaped by the timeout, not our recv timeout
}

TEST_F(NetTest, SlowButLiveClientWithParkedWaitIsNotReaped) {
  // A client saying nothing because it WAITs on a slow job is NOT idle:
  // its parked continuation is pending server->client work, exempt from
  // the reaper no matter how long the solve takes.
  service::ServiceOptions svc_options;
  svc_options.workers = 1;
  net::ServerOptions server_options;
  server_options.idle_timeout_ms = 150.0;
  server_options.protocol.policy = "pacga";  // runs until the deadline
  start(svc_options, server_options);
  Client c(port());
  c.send_line("WORKLOAD 0 1200 1 64 8 1");  // ~1.2 s solve >> idle timeout
  EXPECT_EQ(c.read_line(), "JOB 1");
  c.send_line("WAIT 1");
  // Silent for ~8x the idle timeout while the job solves.
  const std::string result = c.read_line();
  EXPECT_EQ(result.compare(0, 12, "RESULT id=1 "), 0) << result;
  // And the connection survived to speak again.
  c.send_line("QUIT");
  EXPECT_EQ(c.read_line(), "BYE");
}

// ---------------------------------------------------------------------------
// Transport equivalence: the same deterministic script must produce the
// same bytes through a blocking (pipe) Session and through the socket.

std::vector<std::string> run_script_blocking(
    const std::vector<std::string>& script) {
  service::ServiceOptions svc_options;
  svc_options.workers = 2;
  service::SchedulerService svc(svc_options);
  net::ProtocolOptions protocol;
  protocol.policy = "minmin";
  protocol.deterministic = true;
  net::InstancePool instances;
  net::Session session(svc, protocol, instances, /*blocking=*/true);
  std::vector<std::string> out;
  for (const std::string& line : script) {
    const net::Reply reply = session.handle(line);
    if (!reply.text.empty()) out.push_back(reply.text);
    if (reply.quit) break;
  }
  svc.shutdown();
  return out;
}

TEST_F(NetTest, SocketTranscriptMatchesPipeTranscript) {
  const std::vector<std::string> script = {
      "INSTANCE 0 60000 1 u_c_hihi.0",
      "WAIT 1",
      "INSTANCE 0 60000 1 u_c_hilo.0",
      "WAIT 2",
      "WAIT 2",  // double-wait: same error on both transports
      "DYNAMIC 64 8 7",
      "EVENT DOWN 2",
      "EVENT ARRIVE 2500",
      "RESCHEDULE 0 60000 1 0",
      "CANCEL 99",
      "QUIT",
  };
  const std::vector<std::string> pipe_lines = run_script_blocking(script);

  service::ServiceOptions svc_options;
  svc_options.workers = 2;
  // A fresh cacheless service per transport would also work; a shared
  // warm cache would flip cache_hit between runs, so disable it.
  svc_options.cache_capacity = 0;
  start(svc_options);
  Client c(port());
  for (const std::string& line : script) c.send_line(line);
  std::vector<std::string> socket_lines;
  for (std::size_t i = 0; i < pipe_lines.size(); ++i)
    socket_lines.push_back(c.read_line());
  EXPECT_EQ(socket_lines, pipe_lines);
}

// Same script, same transport, run twice: --deterministic means
// byte-identical (guards timing fields leaking back into RESULT lines).
TEST_F(NetTest, DeterministicScriptsAreReproducible) {
  const std::vector<std::string> script = {
      "DYNAMIC 64 8 7",  "EVENT DOWN 2",         "EVENT COMMIT 100",
      "EVENT ARRIVE 2500", "RESCHEDULE 0 60000 1 0", "QUIT",
  };
  EXPECT_EQ(run_script_blocking(script), run_script_blocking(script));
}

// ---------------------------------------------------------------------------
// TRACE DUMP error paths (satellite fix): a failed write must answer ERR,
// not a success line over a truncated file.

TEST(TraceDump, UnopenablePathAnswersCannotOpen) {
  service::SchedulerService svc;
  net::ProtocolOptions protocol;
  net::InstancePool instances;
  net::Session session(svc, protocol, instances, /*blocking=*/true);
  const net::Reply reply =
      session.handle("TRACE DUMP /no/such/directory/trace.json");
  EXPECT_EQ(reply.text,
            "ERR TRACE DUMP cannot open /no/such/directory/trace.json");
  svc.shutdown();
}

TEST(TraceDump, FailedWriteAnswersErrNotSuccess) {
  // /dev/full opens writable but every flush fails with ENOSPC — exactly
  // the full-disk case the dump must detect.
  if (::access("/dev/full", W_OK) != 0)
    GTEST_SKIP() << "/dev/full not available";
  service::SchedulerService svc;
  net::ProtocolOptions protocol;
  net::InstancePool instances;
  net::Session session(svc, protocol, instances, /*blocking=*/true);
  const net::Reply reply = session.handle("TRACE DUMP /dev/full");
  EXPECT_EQ(reply.text, "ERR TRACE DUMP write failed /dev/full");
  svc.shutdown();
}

}  // namespace
