#include "cga/grid.hpp"

#include <gtest/gtest.h>

#include <set>

namespace pacga::cga {
namespace {

TEST(Grid, IndexCellRoundTrip) {
  const Grid g(16, 16);
  for (std::size_t i = 0; i < g.size(); ++i) {
    EXPECT_EQ(g.index_of(g.cell_of(i)), i);
  }
}

TEST(Grid, RowMajorOrder) {
  const Grid g(8, 4);
  EXPECT_EQ(g.index_of({0, 0}), 0u);
  EXPECT_EQ(g.index_of({7, 0}), 7u);
  EXPECT_EQ(g.index_of({0, 1}), 8u);  // next row after end of row
  EXPECT_EQ(g.size(), 32u);
}

TEST(Grid, WrapAround) {
  const Grid g(5, 3);
  EXPECT_EQ(g.wrap({0, 0}, -1, 0), (Cell{4, 0}));
  EXPECT_EQ(g.wrap({4, 0}, 1, 0), (Cell{0, 0}));
  EXPECT_EQ(g.wrap({0, 0}, 0, -1), (Cell{0, 2}));
  EXPECT_EQ(g.wrap({0, 2}, 0, 1), (Cell{0, 0}));
  EXPECT_EQ(g.wrap({2, 1}, 0, 0), (Cell{2, 1}));
}

TEST(Grid, WrapLargeDisplacements) {
  const Grid g(4, 4);
  EXPECT_EQ(g.wrap({1, 1}, 9, -9), (Cell{2, 0}));
  EXPECT_EQ(g.wrap({0, 0}, -8, 8), (Cell{0, 0}));
}

TEST(Grid, ToroidalManhattanTakesShortWay) {
  const Grid g(10, 10);
  EXPECT_EQ(g.manhattan({0, 0}, {9, 0}), 1u);  // wraps
  EXPECT_EQ(g.manhattan({0, 0}, {5, 0}), 5u);
  EXPECT_EQ(g.manhattan({0, 0}, {9, 9}), 2u);
  EXPECT_EQ(g.manhattan({3, 3}, {3, 3}), 0u);
}

TEST(Grid, RejectsEmpty) {
  EXPECT_THROW(Grid(0, 4), std::invalid_argument);
  EXPECT_THROW(Grid(4, 0), std::invalid_argument);
}

TEST(PartitionBlocks, EvenSplit) {
  const auto blocks = partition_blocks(256, 4);
  ASSERT_EQ(blocks.size(), 4u);
  for (const auto& b : blocks) EXPECT_EQ(b.size(), 64u);
  EXPECT_EQ(blocks[0].begin, 0u);
  EXPECT_EQ(blocks[3].end, 256u);
}

TEST(PartitionBlocks, UnevenSplitDistributesRemainder) {
  const auto blocks = partition_blocks(256, 3);
  ASSERT_EQ(blocks.size(), 3u);
  EXPECT_EQ(blocks[0].size(), 86u);  // 256 = 86 + 85 + 85
  EXPECT_EQ(blocks[1].size(), 85u);
  EXPECT_EQ(blocks[2].size(), 85u);
}

TEST(PartitionBlocks, CoversEveryIndexExactlyOnce) {
  for (std::size_t threads = 1; threads <= 8; ++threads) {
    const auto blocks = partition_blocks(100, threads);
    std::set<std::size_t> seen;
    for (const auto& b : blocks) {
      for (std::size_t i = b.begin; i < b.end; ++i) {
        EXPECT_TRUE(seen.insert(i).second) << "duplicate index " << i;
      }
    }
    EXPECT_EQ(seen.size(), 100u);
  }
}

TEST(PartitionBlocks, MoreThreadsThanIndividualsClamps) {
  const auto blocks = partition_blocks(3, 10);
  EXPECT_EQ(blocks.size(), 3u);
  for (const auto& b : blocks) EXPECT_EQ(b.size(), 1u);
}

TEST(PartitionBlocks, ContainsWorks) {
  const Block b{10, 20};
  EXPECT_TRUE(b.contains(10));
  EXPECT_TRUE(b.contains(19));
  EXPECT_FALSE(b.contains(20));
  EXPECT_FALSE(b.contains(9));
}

TEST(PartitionBlocks, ZeroThreadsThrows) {
  EXPECT_THROW(partition_blocks(10, 0), std::invalid_argument);
}

}  // namespace
}  // namespace pacga::cga
