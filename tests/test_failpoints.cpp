// Failpoint registry unit tests: spec grammar, the counter-based trigger
// schedules, the three actions (throw / delay / wedge), reconfiguration
// semantics (hit counters reset, wedges release), and the stub-build
// contract under PACGA_NO_FAILPOINTS (configure refuses, sites are
// no-ops).
//
// The registry is process-global, so every test uses its own site names
// ("test.<case>.*") and disarms what it armed; reset_all() in a final
// test keeps leakage from mattering even on failure.
#include "support/failpoints.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "support/timer.hpp"

namespace pacga::support {
namespace {

#ifndef PACGA_NO_FAILPOINTS

/// Counts how many of `hits` macro hits fire (throw) at `site`.
int fired_of(const char* site, int hits) {
  int fired = 0;
  for (int i = 0; i < hits; ++i) {
    try {
      failpoints().site(site).fire();
    } catch (const FailpointError&) {
      ++fired;
      continue;
    }
  }
  return fired;
}

/// fire() only runs when armed() — mirror the macro's gate.
int hit_site(const char* name, int hits) {
  Failpoint& fp = failpoints().site(name);
  int fired = 0;
  for (int i = 0; i < hits; ++i) {
    if (!fp.armed()) continue;
    try {
      fp.fire();
    } catch (const FailpointError&) {
      ++fired;
    }
  }
  return fired;
}

TEST(Failpoints, DisarmedSiteNeverFires) {
  Failpoint& fp = failpoints().site("test.disarmed");
  EXPECT_FALSE(fp.armed());
  EXPECT_EQ(hit_site("test.disarmed", 100), 0);
}

TEST(Failpoints, OnceFiresExactlyOnce) {
  failpoints().configure("test.once", "once");
  EXPECT_EQ(hit_site("test.once", 50), 1);
  EXPECT_FALSE(failpoints().site("test.once").armed()) << "once must disarm";
}

TEST(Failpoints, EveryNFiresOnMultiples) {
  failpoints().configure("test.every", "every=3:throw");
  // Hits 1..9: fires on 3, 6, 9.
  EXPECT_EQ(hit_site("test.every", 9), 3);
  failpoints().configure("test.every", "off");
}

TEST(Failpoints, AfterNFiresOnEveryLaterHit) {
  failpoints().configure("test.after", "after=4");
  // Hits 1..10: fires on 5..10.
  EXPECT_EQ(hit_site("test.after", 10), 6);
  failpoints().configure("test.after", "off");
}

TEST(Failpoints, TimesKFiresKThenDisarms) {
  failpoints().configure("test.times", "times=3");
  EXPECT_EQ(hit_site("test.times", 10), 3);
  EXPECT_FALSE(failpoints().site("test.times").armed());
}

TEST(Failpoints, ConfigureResetsHitCounting) {
  failpoints().configure("test.reset", "every=5");
  EXPECT_EQ(hit_site("test.reset", 4), 0);  // hits 1..4: no fire yet
  failpoints().configure("test.reset", "every=5");  // counter back to 0
  EXPECT_EQ(hit_site("test.reset", 4), 0);  // would have fired on old hit 5
  EXPECT_EQ(hit_site("test.reset", 1), 1);  // the NEW 5th hit fires
  failpoints().configure("test.reset", "off");
}

TEST(Failpoints, DelayActionSleeps) {
  failpoints().configure("test.delay", "once:delay=30");
  support::WallTimer t;
  EXPECT_EQ(hit_site("test.delay", 1), 0) << "delay must not throw";
  EXPECT_GE(t.elapsed_seconds() * 1e3, 25.0);
}

TEST(Failpoints, WedgeParksUntilReconfigured) {
  failpoints().configure("test.wedge", "once:wedge");
  std::atomic<bool> released{false};
  std::thread parked([&] {
    failpoints().site("test.wedge").fire();
    released.store(true);
  });
  // The thread must park (not return) while the spec stands.
  support::WallTimer t;
  while (failpoints().site("test.wedge").wedged() == 0) {
    ASSERT_LT(t.elapsed_seconds(), 5.0) << "thread never reached the wedge";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_FALSE(released.load());
  EXPECT_EQ(failpoints().wedged(), 1u);
  failpoints().configure("test.wedge", "off");  // releases the parked thread
  parked.join();
  EXPECT_TRUE(released.load());
  EXPECT_EQ(failpoints().wedged(), 0u);
}

TEST(Failpoints, ScopedWedgeSuspendReleasesAndNeutralizesWedges) {
  failpoints().configure("test.suspend", "every=1:wedge");
  std::atomic<bool> released{false};
  std::thread parked([&] {
    failpoints().site("test.suspend").fire();
    released.store(true);
  });
  support::WallTimer t;
  while (failpoints().site("test.suspend").wedged() == 0) {
    ASSERT_LT(t.elapsed_seconds(), 5.0);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  {
    ScopedWedgeSuspend suspend;
    parked.join();  // released without touching the spec
    EXPECT_TRUE(released.load());
    // While suspended, a fresh hit passes straight through.
    failpoints().site("test.suspend").fire();
  }
  failpoints().configure("test.suspend", "off");
}

TEST(Failpoints, WedgeSuspendWakeupIsNeverLost) {
  // Regression for a lost-wakeup race: ScopedWedgeSuspend flips an
  // atomic OUTSIDE the site mutex and then notifies. If the flip+notify
  // landed between a waiter's predicate check (suspend still 0, under
  // the mutex) and its park on the cv, the wakeup was lost and the
  // thread parked forever — SolverPool::join() hung on it at shutdown.
  // notify() now passes through the site mutex, which orders it after
  // the waiter's park. Iterate the handshake with NO wait for the park,
  // so the suspend races threads that are already parked, mid-predicate,
  // and not yet at the site; pre-fix this loop hung within a few dozen
  // iterations under load.
  for (int i = 0; i < 200; ++i) {
    failpoints().configure("test.suspend_race", "every=1:wedge");
    std::thread parked([] { failpoints().site("test.suspend_race").fire(); });
    ScopedWedgeSuspend suspend;
    parked.join();
  }
  failpoints().configure("test.suspend_race", "off");
}

TEST(Failpoints, BadSpecsThrowAndDoNotArm) {
  EXPECT_THROW(failpoints().configure("test.bad", "sometimes"),
               std::runtime_error);
  EXPECT_THROW(failpoints().configure("test.bad", "every=0"),
               std::runtime_error);
  EXPECT_THROW(failpoints().configure("test.bad", "once:explode"),
               std::runtime_error);
  EXPECT_THROW(failpoints().configure("test.bad", "once:delay=abc"),
               std::runtime_error);
  EXPECT_FALSE(failpoints().site("test.bad").armed());
}

TEST(Failpoints, ConfigureFromStringAppliesEveryEntry) {
  failpoints().configure_from_string(
      "test.multi.a=once,test.multi.b=every=2:throw");
  EXPECT_TRUE(failpoints().site("test.multi.a").armed());
  EXPECT_TRUE(failpoints().site("test.multi.b").armed());
  EXPECT_THROW(failpoints().configure_from_string("test.multi.c"),
               std::runtime_error);  // missing '=spec'
  failpoints().configure_from_string("test.multi.a=off,test.multi.b=off");
}

TEST(Failpoints, ErrorMessageNamesTheSite) {
  failpoints().configure("test.named", "once");
  try {
    failpoints().site("test.named").fire();
    FAIL() << "expected FailpointError";
  } catch (const FailpointError& e) {
    EXPECT_STREQ(e.what(), "failpoint test.named");
  }
}

TEST(Failpoints, MacroCompilesAndFires) {
  failpoints().configure("test.macro", "once");
  int fired = 0;
  try {
    PACGA_FAILPOINT("test.macro");
  } catch (const FailpointError&) {
    ++fired;
  }
  PACGA_FAILPOINT("test.macro");  // shot spent: must pass through
  EXPECT_EQ(fired, 1);
}

TEST(Failpoints, NamesListsRegisteredSitesSorted) {
  failpoints().site("test.names.b");
  failpoints().site("test.names.a");
  const auto names = failpoints().names();
  // std::map order: a before b, both present.
  auto find = [&](const char* n) {
    for (std::size_t i = 0; i < names.size(); ++i)
      if (names[i] == n) return static_cast<long>(i);
    return -1L;
  };
  const long a = find("test.names.a"), b = find("test.names.b");
  ASSERT_GE(a, 0);
  ASSERT_GE(b, 0);
  EXPECT_LT(a, b);
}

// Keep last: leaves the global registry clean for any test added below.
TEST(Failpoints, ResetAllDisarmsEverything) {
  failpoints().configure("test.resetall", "every=1");
  failpoints().reset_all();
  for (const auto& name : failpoints().names())
    EXPECT_FALSE(failpoints().site(name).armed()) << name;
  (void)fired_of;  // silence unused when the helper set shrinks
}

#else  // PACGA_NO_FAILPOINTS ------------------------------------------------

TEST(FailpointsStub, ConfigureRefusesWhenCompiledOut) {
  EXPECT_THROW(failpoints().configure("any.site", "once"),
               std::runtime_error);
  EXPECT_THROW(failpoints().configure_from_string("a=once"),
               std::runtime_error);
  EXPECT_TRUE(failpoints().names().empty());
  EXPECT_EQ(failpoints().wedged(), 0u);
  failpoints().reset_all();  // must be a harmless no-op
}

TEST(FailpointsStub, MacroIsANoOp) {
  PACGA_FAILPOINT("any.site");  // must compile to ((void)0)
  EXPECT_FALSE(kFailpointsCompiledIn);
}

#endif  // PACGA_NO_FAILPOINTS

}  // namespace
}  // namespace pacga::support
