#include "cga/local_search.hpp"

#include <gtest/gtest.h>

#include "support/stats.hpp"

#include "etc/suite.hpp"

namespace pacga::cga {
namespace {

etc::EtcMatrix instance(std::uint64_t seed = 31) {
  etc::GenSpec spec;
  spec.tasks = 128;
  spec.machines = 16;
  spec.consistency = etc::Consistency::kInconsistent;
  spec.seed = seed;
  return etc::generate(spec);
}

TEST(H2LL, NeverWorsensMakespan) {
  const auto m = instance();
  support::Xoshiro256 rng(1);
  for (int i = 0; i < 50; ++i) {
    auto s = sched::Schedule::random(m, rng);
    const double before = s.makespan();
    h2ll(s, {5, 0}, rng);
    EXPECT_LE(s.makespan(), before);
    EXPECT_TRUE(s.validate());
  }
}

TEST(H2LL, UsuallyImprovesRandomSchedules) {
  const auto m = instance();
  support::Xoshiro256 rng(2);
  int improved = 0;
  for (int i = 0; i < 50; ++i) {
    auto s = sched::Schedule::random(m, rng);
    const double before = s.makespan();
    h2ll(s, {10, 0}, rng);
    improved += (s.makespan() < before);
  }
  // Random schedules are badly unbalanced; H2LL should fix most.
  EXPECT_GT(improved, 40);
}

TEST(H2LL, MoreIterationsNeverHurtOnAverage) {
  const auto m = instance();
  support::RunningStats few, many;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    support::Xoshiro256 r1(seed), r2(seed);
    auto s1 = sched::Schedule::random(m, r1);
    auto s2 = s1;
    h2ll(s1, {2, 0}, r1);
    h2ll(s2, {20, 0}, r2);
    few.add(s1.makespan());
    many.add(s2.makespan());
  }
  EXPECT_LE(many.mean(), few.mean());
}

TEST(H2LL, ZeroIterationsIsIdentity) {
  const auto m = instance();
  support::Xoshiro256 rng(3);
  auto s = sched::Schedule::random(m, rng);
  const auto before = s;
  h2ll(s, {0, 0}, rng);
  EXPECT_EQ(s.hamming_distance(before), 0u);
}

TEST(H2LL, MovesOnlyTasksFromMostLoadedMachine) {
  const auto m = instance();
  support::Xoshiro256 rng(4);
  auto s = sched::Schedule::random(m, rng);
  const auto loaded = s.argmax_machine();
  const auto before = s;
  h2ll(s, {1, 0}, rng);
  // Exactly zero or one gene changed, and if one, it left `loaded`.
  const auto d = s.hamming_distance(before);
  ASSERT_LE(d, 1u);
  if (d == 1) {
    for (std::size_t t = 0; t < s.tasks(); ++t) {
      if (s.machine_of(t) != before.machine_of(t)) {
        EXPECT_EQ(before.machine_of(t), loaded);
        EXPECT_NE(s.machine_of(t), loaded);
      }
    }
  }
}

TEST(H2LL, CandidateParameterRestrictsTargets) {
  const auto m = instance();
  support::Xoshiro256 rng(5);
  for (int i = 0; i < 20; ++i) {
    auto s = sched::Schedule::random(m, rng);
    // candidates = 1: the only candidate is the least loaded machine.
    const auto least = s.argmin_machine();
    const auto before = s;
    h2ll(s, {1, 1}, rng);
    if (s.hamming_distance(before) == 1) {
      for (std::size_t t = 0; t < s.tasks(); ++t) {
        if (s.machine_of(t) != before.machine_of(t)) {
          EXPECT_EQ(s.machine_of(t), least);
        }
      }
    }
  }
}

TEST(H2LL, SingleMachineNoOp) {
  etc::EtcMatrix m(4, 1, {1, 2, 3, 4});
  auto s = sched::Schedule(m, {0, 0, 0, 0});
  support::Xoshiro256 rng(6);
  h2ll(s, {10, 0}, rng);
  EXPECT_TRUE(s.validate());
}

TEST(H2LL, NewCompletionStaysBelowOldMakespan) {
  // The operator only moves when the target completion stays strictly
  // below the makespan, so the target machine can never become the new
  // argmax unless it was already.
  const auto m = instance(77);
  support::Xoshiro256 rng(7);
  for (int i = 0; i < 50; ++i) {
    auto s = sched::Schedule::random(m, rng);
    const double before_ms = s.makespan();
    h2ll(s, {1, 0}, rng);
    EXPECT_LE(s.makespan(), before_ms);
  }
}

TEST(LocalTabuHop, NeverReturnsWorse) {
  const auto m = instance();
  support::Xoshiro256 rng(8);
  for (int i = 0; i < 30; ++i) {
    auto s = sched::Schedule::random(m, rng);
    const double before = s.makespan();
    local_tabu_hop(s, {10, 4}, rng);
    EXPECT_LE(s.makespan(), before + 1e-9);
    EXPECT_TRUE(s.validate());
  }
}

TEST(LocalTabuHop, ImprovesRandomSchedules) {
  const auto m = instance();
  support::Xoshiro256 rng(9);
  int improved = 0;
  for (int i = 0; i < 30; ++i) {
    auto s = sched::Schedule::random(m, rng);
    const double before = s.makespan();
    local_tabu_hop(s, {20, 4}, rng);
    improved += (s.makespan() < before);
  }
  EXPECT_GT(improved, 25);
}

TEST(LocalTabuHop, ZeroIterationsIdentity) {
  const auto m = instance();
  support::Xoshiro256 rng(10);
  auto s = sched::Schedule::random(m, rng);
  const auto before = s;
  local_tabu_hop(s, {0, 4}, rng);
  EXPECT_EQ(s.hamming_distance(before), 0u);
}

TEST(H2llSteepest, NeverWorsensAndConverges) {
  const auto m = instance();
  support::Xoshiro256 rng(11);
  for (int i = 0; i < 30; ++i) {
    auto s = sched::Schedule::random(m, rng);
    const double before = s.makespan();
    h2ll_steepest(s, {10, 0});
    EXPECT_LE(s.makespan(), before);
    EXPECT_TRUE(s.validate(1e-9));
  }
}

TEST(H2llSteepest, DeterministicGivenSchedule) {
  const auto m = instance();
  support::Xoshiro256 rng(12);
  const auto base = sched::Schedule::random(m, rng);
  auto s1 = base;
  auto s2 = base;
  h2ll_steepest(s1, {5, 0});
  h2ll_steepest(s2, {5, 0});
  EXPECT_EQ(s1.hamming_distance(s2), 0u);
}

TEST(H2llSteepest, AtLeastAsGoodAsRandomizedPerPass) {
  // Steepest picks the best move among all tasks on the loaded machine;
  // the randomized version picks a random task. Per single pass from the
  // same start, steepest is never worse on average.
  const auto m = instance();
  support::RunningStats steepest, randomized;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    support::Xoshiro256 rng(seed);
    const auto base = sched::Schedule::random(m, rng);
    auto s1 = base;
    h2ll_steepest(s1, {1, 0});
    steepest.add(s1.makespan());
    auto s2 = base;
    h2ll(s2, {1, 0}, rng);
    randomized.add(s2.makespan());
  }
  EXPECT_LE(steepest.mean(), randomized.mean() + 1e-9);
}

TEST(H2llSteepest, StopsAtLocalOptimum) {
  const auto m = instance();
  support::Xoshiro256 rng(13);
  auto s = sched::Schedule::random(m, rng);
  h2ll_steepest(s, {1000, 0});  // converge fully
  const double converged = s.makespan();
  h2ll_steepest(s, {50, 0});  // extra passes: no further change
  EXPECT_DOUBLE_EQ(s.makespan(), converged);
}

TEST(ApplyLocalSearch, DispatchMatchesDirectCalls) {
  const auto m = instance();
  support::Xoshiro256 rng(21);
  const auto base = sched::Schedule::random(m, rng);
  const H2LLParams hp{5, 0};
  const TabuHopParams tp{5, 4};

  support::Xoshiro256 r1(31), r2(31);
  auto via_enum = base;
  apply_local_search(LocalSearchKind::kH2LL, via_enum, hp, tp, r1);
  auto direct = base;
  h2ll(direct, hp, r2);
  EXPECT_EQ(via_enum.hamming_distance(direct), 0u);

  auto steep_enum = base;
  apply_local_search(LocalSearchKind::kH2LLSteepest, steep_enum, hp, tp, r1);
  auto steep_direct = base;
  h2ll_steepest(steep_direct, hp);
  EXPECT_EQ(steep_enum.hamming_distance(steep_direct), 0u);

  support::Xoshiro256 r3(37), r4(37);
  auto tabu_enum = base;
  apply_local_search(LocalSearchKind::kTabuHop, tabu_enum, hp, tp, r3);
  auto tabu_direct = base;
  local_tabu_hop(tabu_direct, tp, r4);
  EXPECT_EQ(tabu_enum.hamming_distance(tabu_direct), 0u);

  auto none = base;
  apply_local_search(LocalSearchKind::kNone, none, hp, tp, r1);
  EXPECT_EQ(none.hamming_distance(base), 0u);
}

TEST(ApplyLocalSearch, KindNames) {
  EXPECT_STREQ(to_string(LocalSearchKind::kH2LL), "h2ll");
  EXPECT_STREQ(to_string(LocalSearchKind::kH2LLSteepest), "h2ll-steepest");
  EXPECT_STREQ(to_string(LocalSearchKind::kTabuHop), "tabu-hop");
  EXPECT_STREQ(to_string(LocalSearchKind::kNone), "none");
}

/// Property sweep over the Braun suite: H2LL respects its contract on all
/// twelve instance classes.
class H2llSuiteTest : public ::testing::TestWithParam<std::string> {};

TEST_P(H2llSuiteTest, MonotoneAndCoherentOnSuite) {
  const auto m = etc::generate_by_name(GetParam());
  support::Xoshiro256 rng(support::seed_from_string(GetParam().c_str()));
  auto s = sched::Schedule::random(m, rng);
  const double before = s.makespan();
  h2ll(s, {10, 0}, rng);
  EXPECT_LE(s.makespan(), before);
  EXPECT_TRUE(s.validate(1e-9));
}

INSTANTIATE_TEST_SUITE_P(BraunSuite, H2llSuiteTest,
                         ::testing::ValuesIn(etc::braun_suite_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (c == '.') c = '_';
                           }
                           return n;
                         });

}  // namespace
}  // namespace pacga::cga
