// Property-test harness for the dynamic subsystem.
//
// The incremental machinery (in-place ETC mutation, completion-time cache
// patching, orphan-only repair) is only trustworthy if it survives
// ARBITRARY event streams, so:
//
//  * EventFuzz10k: one seed-pinned stream of 10,000 events applied
//    through a RescheduleSession; after EVERY step the repaired
//    schedule's CT cache is cross-checked against Schedule::validate()
//    (full recomputation) and its makespan against sched::evaluate over
//    a from-scratch Schedule; periodically the incrementally maintained
//    matrix is cross-checked entry-by-entry against a from-scratch
//    rebuild of the mutator's model.
//
//  * Golden determinism: the same seed replayed twice produces
//    byte-identical event logs and identical final assignments, and the
//    warm-pool reschedule path produces the same final schedule no
//    matter how many workers serve it (per-job seeding + capped
//    generations make the solve timing-independent).
//
// Both run in Release and under ThreadSanitizer in CI (the tsan job).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "batch/event_stream.hpp"
#include "dynamic/session.hpp"
#include "sched/fitness.hpp"
#include "service/service.hpp"

namespace pacga::dynamic {
namespace {

batch::WorkloadSpec fuzz_workload(std::uint64_t seed) {
  batch::WorkloadSpec w;
  w.tasks = 48;
  w.machines = 8;
  w.seed = seed;
  return w;
}

/// Balanced churn: arrivals == cancels and downs == ups in rate, so the
/// instance random-walks around its starting shape instead of growing
/// without bound over 10k events.
batch::EventStreamSpec fuzz_stream(std::size_t events, std::uint64_t seed) {
  batch::EventStreamSpec s;
  s.initial_tasks = 48;
  s.initial_machines = 8;
  s.arrival_rate = 2.0;
  s.cancel_rate = 2.0;
  s.down_rate = 0.5;
  s.up_rate = 0.5;
  s.slowdown_rate = 1.0;
  s.max_events = events;
  s.seed = seed;
  return s;
}

TEST(DynamicProperty, EventFuzz10k) {
  constexpr std::size_t kEvents = 10000;
  constexpr std::uint64_t kSeed = 0xf0220ed;  // seed-pinned: reproducible
  const auto stream = batch::generate_event_stream(fuzz_stream(kEvents, kSeed));
  ASSERT_EQ(stream.size(), kEvents);

  RescheduleSession session(fuzz_workload(kSeed));
  for (std::size_t i = 0; i < stream.size(); ++i) {
    ASSERT_NO_THROW(session.apply(stream[i]))
        << "event " << i << ": " << format_event(stream[i]);
    const sched::Schedule& s = session.schedule();

    // 1. The incrementally patched CT cache == full recomputation.
    ASSERT_TRUE(s.validate())
        << "CT cache diverged at event " << i << ": "
        << format_event(stream[i]);

    // 2. The repaired fitness == sched::evaluate from scratch.
    const sched::Schedule fresh(session.etc(),
                                {s.assignment().begin(), s.assignment().end()});
    const double scratch =
        sched::evaluate(fresh, sched::Objective::kMakespan, 0.75);
    ASSERT_NEAR(s.makespan(), scratch, 1e-6 * scratch)
        << "fitness diverged at event " << i;

    // 3. Shape bookkeeping never drifts.
    ASSERT_EQ(s.tasks(), session.tasks());
    ASSERT_EQ(s.machines(), session.machines());

    // 4. Periodically: the in-place mutated matrix == a from-scratch
    // materialization of the model (the slowdown path's FP drift must
    // stay far inside tolerance).
    if (i % 500 == 499) {
      const etc::EtcMatrix rebuilt = session.mutator().rebuild();
      ASSERT_EQ(rebuilt.tasks(), session.etc().tasks());
      ASSERT_EQ(rebuilt.machines(), session.etc().machines());
      for (std::size_t t = 0; t < rebuilt.tasks(); ++t) {
        for (std::size_t m = 0; m < rebuilt.machines(); ++m) {
          ASSERT_NEAR(session.etc()(t, m), rebuilt(t, m),
                      1e-9 * rebuilt(t, m))
              << "matrix drifted at event " << i << " entry (" << t << ","
              << m << ")";
        }
      }
    }
  }
  // The walk actually exercised the instance: it must have churned away
  // from the starting shape at least once (guards against a degenerate
  // stream silently testing nothing).
  EXPECT_EQ(session.events_applied(), kEvents);
  EXPECT_GT(session.shape_epoch(), 0u);
}

// --- golden determinism ----------------------------------------------------

struct GoldenRun {
  std::string event_log;
  std::vector<sched::MachineId> final_assignment;
  double final_makespan = 0.0;
};

/// One fixed-seed dynamic scenario: 300 events, a warm-pool reschedule
/// every 60 (generation-capped and seeded, so the solve is a pure
/// function of its inputs), improvements adopted. Deterministic by
/// construction — the point of the test is to PROVE that.
GoldenRun run_golden_scenario(std::size_t workers) {
  constexpr std::uint64_t kSeed = 77;
  GoldenRun run;
  const auto stream = batch::generate_event_stream(fuzz_stream(300, kSeed));

  service::ServiceOptions options;
  options.workers = workers;
  options.cache_capacity = 0;  // cache off: adoption decides reuse here
  service::SchedulerService svc(options);

  RescheduleSession session(fuzz_workload(kSeed));
  for (std::size_t i = 0; i < stream.size(); ++i) {
    (void)session.apply(stream[i]);
    run.event_log += format_event(stream[i]);
    run.event_log += '\n';
    if (i % 60 == 59) {
      service::JobSpec spec =
          session.make_reschedule_spec(0, /*deadline_ms=*/10000.0,
                                       /*seed=*/kSeed + i);
      spec.policy = service::SolvePolicy::kCga;
      spec.max_generations = 10;  // timing-independent determinism
      const service::JobResult r = svc.wait(svc.submit_reschedule(std::move(spec)));
      EXPECT_EQ(r.status, service::JobStatus::kDone);
      (void)session.adopt(r.assignment);
    }
  }
  const auto a = session.schedule().assignment();
  run.final_assignment.assign(a.begin(), a.end());
  run.final_makespan = session.schedule().makespan();
  return run;
}

TEST(DynamicGolden, ReplayIsByteIdenticalAcrossRunsAndThreadCounts) {
  const GoldenRun first = run_golden_scenario(/*workers=*/1);
  const GoldenRun again = run_golden_scenario(/*workers=*/1);
  EXPECT_EQ(first.event_log, again.event_log)
      << "event log must replay byte-identically";
  EXPECT_EQ(first.final_assignment, again.final_assignment);
  EXPECT_DOUBLE_EQ(first.final_makespan, again.final_makespan);

  // The warm-pool path must not let worker count (scheduling, arena
  // reuse order) leak into results: per-job seeding makes each solve a
  // pure function of (etc, spec).
  const GoldenRun pooled = run_golden_scenario(/*workers=*/3);
  EXPECT_EQ(first.event_log, pooled.event_log);
  EXPECT_EQ(first.final_assignment, pooled.final_assignment);
  EXPECT_DOUBLE_EQ(first.final_makespan, pooled.final_makespan);
}

}  // namespace
}  // namespace pacga::dynamic
