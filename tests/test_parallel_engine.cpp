#include "pacga/parallel_engine.hpp"

#include <gtest/gtest.h>

#include "support/stats.hpp"

#include "cga/engine.hpp"
#include "etc/braun.hpp"
#include "heuristics/minmin.hpp"

namespace pacga::par {
namespace {

etc::EtcMatrix instance(std::uint64_t seed = 51) {
  etc::GenSpec spec;
  spec.tasks = 128;
  spec.machines = 16;
  spec.consistency = etc::Consistency::kInconsistent;
  spec.seed = seed;
  return etc::generate(spec);
}

cga::Config fast_config(std::size_t threads) {
  cga::Config c;
  c.width = 8;
  c.height = 8;
  c.threads = threads;
  c.termination = cga::Termination::after_generations(10);
  c.local_search.iterations = 2;
  return c;
}

TEST(ParallelEngine, SingleThreadMatchesContract) {
  const auto m = instance();
  const auto r = run_parallel(m, fast_config(1));
  ASSERT_EQ(r.threads.size(), 1u);
  EXPECT_EQ(r.threads[0].generations, 10u);
  EXPECT_EQ(r.total_evaluations(), 10u * 64u);
  EXPECT_EQ(r.result.evaluations, r.total_evaluations());
  EXPECT_TRUE(r.result.best.validate(1e-9));
}

TEST(ParallelEngine, RunsWithOneToFourThreads) {
  const auto m = instance();
  for (std::size_t t = 1; t <= 4; ++t) {
    const auto r = run_parallel(m, fast_config(t));
    ASSERT_EQ(r.threads.size(), t);
    for (const auto& st : r.threads) {
      EXPECT_GE(st.generations, 10u);
      EXPECT_GT(st.evaluations, 0u);
    }
    EXPECT_TRUE(r.result.best.validate(1e-9));
    EXPECT_DOUBLE_EQ(r.result.best.makespan(), r.result.best_fitness);
  }
}

TEST(ParallelEngine, EvaluationAccountingConsistent) {
  const auto m = instance();
  const auto r = run_parallel(m, fast_config(4));
  std::uint64_t sum = 0;
  for (const auto& st : r.threads) sum += st.evaluations;
  EXPECT_EQ(sum, r.result.evaluations);
}

TEST(ParallelEngine, GenerationsBoundPerThread) {
  const auto m = instance();
  auto c = fast_config(3);
  c.termination = cga::Termination::after_generations(7);
  const auto r = run_parallel(m, c);
  for (const auto& st : r.threads) {
    // Blocks of 64/3 individuals: 22+21+21. Each thread does exactly 7
    // sweeps of its own block.
    EXPECT_EQ(st.generations, 7u);
  }
  EXPECT_EQ(r.result.generations, 7u);
}

TEST(ParallelEngine, EvaluationBudgetStopsAllThreads) {
  const auto m = instance();
  auto c = fast_config(4);
  c.termination = cga::Termination::after_evaluations(200);
  const auto r = run_parallel(m, c);
  // Granularity is one block sweep per thread (16 cells each), so overshoot
  // is at most threads * block_size.
  EXPECT_GE(r.total_evaluations(), 200u);
  EXPECT_LE(r.total_evaluations(), 200u + 4 * 16);
}

TEST(ParallelEngine, WallClockTerminates) {
  const auto m = instance();
  auto c = fast_config(4);
  c.termination = cga::Termination::after_seconds(0.2);
  const auto r = run_parallel(m, c);
  EXPECT_GE(r.result.elapsed_seconds, 0.2);
  EXPECT_LT(r.result.elapsed_seconds, 5.0);
}

TEST(ParallelEngine, MinMinSeedGuaranteesQuality) {
  const auto m = instance();
  const auto r = run_parallel(m, fast_config(3));
  EXPECT_LE(r.result.best_fitness, heur::min_min(m).makespan() + 1e-9);
}

TEST(ParallelEngine, ImprovesOverInitialPopulation) {
  const auto m = instance();
  auto c = fast_config(3);
  c.seed_min_min = false;
  c.termination = cga::Termination::after_generations(30);
  const auto r = run_parallel(m, c);
  // Compare against mean random makespan: must be clearly better.
  support::Xoshiro256 rng(9);
  support::RunningStats random_ms;
  for (int i = 0; i < 20; ++i)
    random_ms.add(sched::Schedule::random(m, rng).makespan());
  EXPECT_LT(r.result.best_fitness, random_ms.mean());
}

TEST(ParallelEngine, TraceCollectedWhenEnabled) {
  const auto m = instance();
  auto c = fast_config(3);
  c.collect_trace = true;
  const auto r = run_parallel(m, c);
  ASSERT_FALSE(r.result.trace.empty());
  // Thread 0 samples once per its own generation.
  EXPECT_EQ(r.result.trace.size(), r.threads[0].generations);
  for (std::size_t i = 1; i < r.result.trace.size(); ++i) {
    EXPECT_LE(r.result.trace[i].best_fitness,
              r.result.trace[i - 1].best_fitness + 1e-9);
  }
}

TEST(ParallelEngine, ReplacementsNeverExceedEvaluations) {
  const auto m = instance();
  const auto r = run_parallel(m, fast_config(4));
  for (const auto& st : r.threads) {
    EXPECT_LE(st.replacements, st.evaluations);
  }
}

TEST(ParallelEngine, SameSeedSingleThreadIsDeterministic) {
  const auto m = instance();
  const auto c = fast_config(1);
  const auto r1 = run_parallel(m, c);
  const auto r2 = run_parallel(m, c);
  EXPECT_DOUBLE_EQ(r1.result.best_fitness, r2.result.best_fitness);
  EXPECT_EQ(r1.result.best.hamming_distance(r2.result.best), 0u);
}

TEST(ParallelEngine, BestFitnessNotWorseThanSequentialByMuch) {
  // Sanity: the parallel algorithm is the same search, not a broken one.
  // With equal generation budgets, multi-thread best should land in the
  // same quality ballpark as the single-thread best.
  const auto m = instance(53);
  auto c = fast_config(1);
  c.termination = cga::Termination::after_generations(20);
  const double single = run_parallel(m, c).result.best_fitness;
  c.threads = 4;
  const double quad = run_parallel(m, c).result.best_fitness;
  EXPECT_LT(quad, single * 1.25);
  EXPECT_LT(single, quad * 1.25);
}

/// Stress the locking: many threads, tiny blocks, long run; under TSan or
/// ASan this is the test that catches races.
TEST(ParallelEngine, LockStress) {
  const auto m = instance(59);
  cga::Config c;
  c.width = 4;
  c.height = 4;  // 16 cells
  c.threads = 8; // 2-cell blocks: every neighborhood crosses blocks
  c.local_search.iterations = 1;
  c.termination = cga::Termination::after_generations(50);
  const auto r = run_parallel(m, c);
  EXPECT_TRUE(r.result.best.validate(1e-9));
  for (const auto& st : r.threads) EXPECT_GE(st.generations, 50u);
}

class ThreadCountTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ThreadCountTest, BlockPartitionMatchesThreadCount) {
  const auto m = instance();
  const auto r = run_parallel(m, fast_config(GetParam()));
  EXPECT_EQ(r.threads.size(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(OneToEight, ThreadCountTest,
                         ::testing::Values(1, 2, 3, 4, 6, 8));

TEST(ParallelSyncMode, RunsToGenerationBudget) {
  const auto m = instance();
  auto c = fast_config(3);
  c.update = cga::UpdatePolicy::kSynchronous;
  c.termination = cga::Termination::after_generations(8);
  const auto r = run_parallel(m, c);
  // Barrier-coupled: every thread does exactly the same generation count.
  for (const auto& st : r.threads) EXPECT_EQ(st.generations, 8u);
  EXPECT_TRUE(r.result.best.validate(1e-9));
}

TEST(ParallelSyncMode, WallClockTerminatesWithoutDeadlock) {
  const auto m = instance();
  auto c = fast_config(4);
  c.update = cga::UpdatePolicy::kSynchronous;
  c.termination = cga::Termination::after_seconds(0.2);
  const auto r = run_parallel(m, c);
  EXPECT_GE(r.result.elapsed_seconds, 0.2);
  EXPECT_LT(r.result.elapsed_seconds, 10.0);
  // All threads agree on the generation count (collective decision).
  for (const auto& st : r.threads) {
    EXPECT_EQ(st.generations, r.threads[0].generations);
  }
}

TEST(ParallelSyncMode, EvaluationBudgetStopsCollectively) {
  const auto m = instance();
  auto c = fast_config(4);
  c.update = cga::UpdatePolicy::kSynchronous;
  c.termination = cga::Termination::after_evaluations(200);
  const auto r = run_parallel(m, c);
  EXPECT_GE(r.total_evaluations(), 200u);
  // Overshoot at most one full population generation.
  EXPECT_LE(r.total_evaluations(), 200u + c.population_size());
}

TEST(ParallelSyncMode, TraceAndQualityComparableToAsync) {
  const auto m = instance(61);
  auto c = fast_config(2);
  c.collect_trace = true;
  c.termination = cga::Termination::after_generations(15);
  c.update = cga::UpdatePolicy::kSynchronous;
  const auto sync = run_parallel(m, c);
  c.update = cga::UpdatePolicy::kAsynchronous;
  const auto async = run_parallel(m, c);
  ASSERT_FALSE(sync.result.trace.empty());
  ASSERT_FALSE(async.result.trace.empty());
  // Same search, same budget: final quality within a loose factor.
  EXPECT_LT(sync.result.best_fitness, async.result.best_fitness * 1.25);
  EXPECT_LT(async.result.best_fitness, sync.result.best_fitness * 1.25);
}

TEST(ParallelSyncMode, LockStressWithBarriers) {
  const auto m = instance(67);
  cga::Config c;
  c.width = 4;
  c.height = 4;
  c.threads = 8;
  c.update = cga::UpdatePolicy::kSynchronous;
  c.local_search.iterations = 1;
  c.termination = cga::Termination::after_generations(40);
  const auto r = run_parallel(m, c);
  EXPECT_TRUE(r.result.best.validate(1e-9));
  for (const auto& st : r.threads) EXPECT_EQ(st.generations, 40u);
}

TEST(ThreadPinning, PinCurrentThreadReturnsVerdict) {
  // On Linux pinning to core 0 should succeed; elsewhere it reports false.
  // Either way it must not crash and the engine must accept the flag.
  (void)pin_current_thread(0);
  const auto m = instance();
  auto c = fast_config(2);
  c.pin_threads = true;
  const auto r = run_parallel(m, c);
  EXPECT_TRUE(r.result.best.validate(1e-9));
}

}  // namespace
}  // namespace pacga::par
