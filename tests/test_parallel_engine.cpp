#include "pacga/parallel_engine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "support/stats.hpp"

#include "cga/engine.hpp"
#include "etc/braun.hpp"
#include "heuristics/minmin.hpp"
#include "sched/schedule.hpp"

namespace pacga::par {
namespace {

etc::EtcMatrix instance(std::uint64_t seed = 51) {
  etc::GenSpec spec;
  spec.tasks = 128;
  spec.machines = 16;
  spec.consistency = etc::Consistency::kInconsistent;
  spec.seed = seed;
  return etc::generate(spec);
}

cga::Config fast_config(std::size_t threads) {
  cga::Config c;
  c.width = 8;
  c.height = 8;
  c.threads = threads;
  c.termination = cga::Termination::after_generations(10);
  c.local_search.iterations = 2;
  return c;
}

TEST(ParallelEngine, SingleThreadMatchesContract) {
  const auto m = instance();
  const auto r = run_parallel(m, fast_config(1));
  ASSERT_EQ(r.threads.size(), 1u);
  EXPECT_EQ(r.threads[0].generations, 10u);
  EXPECT_EQ(r.total_evaluations(), 10u * 64u);
  EXPECT_EQ(r.result.evaluations, r.total_evaluations());
  EXPECT_TRUE(r.result.best.validate(1e-9));
}

TEST(ParallelEngine, RunsWithOneToFourThreads) {
  const auto m = instance();
  for (std::size_t t = 1; t <= 4; ++t) {
    const auto r = run_parallel(m, fast_config(t));
    ASSERT_EQ(r.threads.size(), t);
    for (const auto& st : r.threads) {
      EXPECT_GE(st.generations, 10u);
      EXPECT_GT(st.evaluations, 0u);
    }
    EXPECT_TRUE(r.result.best.validate(1e-9));
    EXPECT_DOUBLE_EQ(r.result.best.makespan(), r.result.best_fitness);
  }
}

TEST(ParallelEngine, EvaluationAccountingConsistent) {
  const auto m = instance();
  const auto r = run_parallel(m, fast_config(4));
  std::uint64_t sum = 0;
  for (const auto& st : r.threads) sum += st.evaluations;
  EXPECT_EQ(sum, r.result.evaluations);
}

TEST(ParallelEngine, GenerationsBoundPerThread) {
  const auto m = instance();
  auto c = fast_config(3);
  c.termination = cga::Termination::after_generations(7);
  const auto r = run_parallel(m, c);
  for (const auto& st : r.threads) {
    // Blocks of 64/3 individuals: 22+21+21. Each thread does exactly 7
    // sweeps of its own block.
    EXPECT_EQ(st.generations, 7u);
  }
  EXPECT_EQ(r.result.generations, 7u);
}

TEST(ParallelEngine, EvaluationBudgetStopsAllThreads) {
  const auto m = instance();
  auto c = fast_config(4);
  c.termination = cga::Termination::after_evaluations(200);
  const auto r = run_parallel(m, c);
  // Granularity is one block sweep per thread (16 cells each), so overshoot
  // is at most threads * block_size.
  EXPECT_GE(r.total_evaluations(), 200u);
  EXPECT_LE(r.total_evaluations(), 200u + 4 * 16);
}

TEST(ParallelEngine, WallClockTerminates) {
  const auto m = instance();
  auto c = fast_config(4);
  c.termination = cga::Termination::after_seconds(0.2);
  const auto r = run_parallel(m, c);
  EXPECT_GE(r.result.elapsed_seconds, 0.2);
  EXPECT_LT(r.result.elapsed_seconds, 5.0);
}

TEST(ParallelEngine, MinMinSeedGuaranteesQuality) {
  const auto m = instance();
  const auto r = run_parallel(m, fast_config(3));
  EXPECT_LE(r.result.best_fitness, heur::min_min(m).makespan() + 1e-9);
}

TEST(ParallelEngine, ImprovesOverInitialPopulation) {
  const auto m = instance();
  auto c = fast_config(3);
  c.seed_min_min = false;
  c.termination = cga::Termination::after_generations(30);
  const auto r = run_parallel(m, c);
  // Compare against mean random makespan: must be clearly better.
  support::Xoshiro256 rng(9);
  support::RunningStats random_ms;
  for (int i = 0; i < 20; ++i)
    random_ms.add(sched::Schedule::random(m, rng).makespan());
  EXPECT_LT(r.result.best_fitness, random_ms.mean());
}

TEST(ParallelEngine, TraceCollectedWhenEnabled) {
  const auto m = instance();
  auto c = fast_config(3);
  c.collect_trace = true;
  const auto r = run_parallel(m, c);
  ASSERT_FALSE(r.result.trace.empty());
  // Thread 0 samples once per its own generation.
  EXPECT_EQ(r.result.trace.size(), r.threads[0].generations);
  for (std::size_t i = 1; i < r.result.trace.size(); ++i) {
    EXPECT_LE(r.result.trace[i].best_fitness,
              r.result.trace[i - 1].best_fitness + 1e-9);
  }
}

TEST(ParallelEngine, ReplacementsNeverExceedEvaluations) {
  const auto m = instance();
  const auto r = run_parallel(m, fast_config(4));
  for (const auto& st : r.threads) {
    EXPECT_LE(st.replacements, st.evaluations);
  }
}

TEST(ParallelEngine, SameSeedSingleThreadIsDeterministic) {
  const auto m = instance();
  const auto c = fast_config(1);
  const auto r1 = run_parallel(m, c);
  const auto r2 = run_parallel(m, c);
  EXPECT_DOUBLE_EQ(r1.result.best_fitness, r2.result.best_fitness);
  EXPECT_EQ(r1.result.best.hamming_distance(r2.result.best), 0u);
}

TEST(ParallelEngine, BestFitnessNotWorseThanSequentialByMuch) {
  // Sanity: the parallel algorithm is the same search, not a broken one.
  // With equal generation budgets, multi-thread best should land in the
  // same quality ballpark as the single-thread best.
  const auto m = instance(53);
  auto c = fast_config(1);
  c.termination = cga::Termination::after_generations(20);
  const double single = run_parallel(m, c).result.best_fitness;
  c.threads = 4;
  const double quad = run_parallel(m, c).result.best_fitness;
  EXPECT_LT(quad, single * 1.25);
  EXPECT_LT(single, quad * 1.25);
}

/// Stress the locking: many threads, tiny blocks, long run; under TSan or
/// ASan this is the test that catches races.
TEST(ParallelEngine, LockStress) {
  const auto m = instance(59);
  cga::Config c;
  c.width = 4;
  c.height = 4;  // 16 cells
  c.threads = 8; // 2-cell blocks: every neighborhood crosses blocks
  c.local_search.iterations = 1;
  c.termination = cga::Termination::after_generations(50);
  const auto r = run_parallel(m, c);
  EXPECT_TRUE(r.result.best.validate(1e-9));
  for (const auto& st : r.threads) EXPECT_GE(st.generations, 50u);
}

class ThreadCountTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ThreadCountTest, BlockPartitionMatchesThreadCount) {
  const auto m = instance();
  const auto r = run_parallel(m, fast_config(GetParam()));
  EXPECT_EQ(r.threads.size(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(OneToEight, ThreadCountTest,
                         ::testing::Values(1, 2, 3, 4, 6, 8));

TEST(ParallelSyncMode, RunsToGenerationBudget) {
  const auto m = instance();
  auto c = fast_config(3);
  c.update = cga::UpdatePolicy::kSynchronous;
  c.termination = cga::Termination::after_generations(8);
  const auto r = run_parallel(m, c);
  // Barrier-coupled: every thread does exactly the same generation count.
  for (const auto& st : r.threads) EXPECT_EQ(st.generations, 8u);
  EXPECT_TRUE(r.result.best.validate(1e-9));
}

TEST(ParallelSyncMode, WallClockTerminatesWithoutDeadlock) {
  const auto m = instance();
  auto c = fast_config(4);
  c.update = cga::UpdatePolicy::kSynchronous;
  c.termination = cga::Termination::after_seconds(0.2);
  const auto r = run_parallel(m, c);
  EXPECT_GE(r.result.elapsed_seconds, 0.2);
  EXPECT_LT(r.result.elapsed_seconds, 10.0);
  // All threads agree on the generation count (collective decision).
  for (const auto& st : r.threads) {
    EXPECT_EQ(st.generations, r.threads[0].generations);
  }
}

TEST(ParallelSyncMode, EvaluationBudgetStopsCollectively) {
  const auto m = instance();
  auto c = fast_config(4);
  c.update = cga::UpdatePolicy::kSynchronous;
  c.termination = cga::Termination::after_evaluations(200);
  const auto r = run_parallel(m, c);
  EXPECT_GE(r.total_evaluations(), 200u);
  // Overshoot at most one full population generation.
  EXPECT_LE(r.total_evaluations(), 200u + c.population_size());
}

TEST(ParallelSyncMode, TraceAndQualityComparableToAsync) {
  const auto m = instance(61);
  auto c = fast_config(2);
  c.collect_trace = true;
  c.termination = cga::Termination::after_generations(15);
  c.update = cga::UpdatePolicy::kSynchronous;
  const auto sync = run_parallel(m, c);
  c.update = cga::UpdatePolicy::kAsynchronous;
  const auto async = run_parallel(m, c);
  ASSERT_FALSE(sync.result.trace.empty());
  ASSERT_FALSE(async.result.trace.empty());
  // Same search, same budget: final quality within a loose factor.
  EXPECT_LT(sync.result.best_fitness, async.result.best_fitness * 1.25);
  EXPECT_LT(async.result.best_fitness, sync.result.best_fitness * 1.25);
}

TEST(ParallelSyncMode, LockStressWithBarriers) {
  const auto m = instance(67);
  cga::Config c;
  c.width = 4;
  c.height = 4;
  c.threads = 8;
  c.update = cga::UpdatePolicy::kSynchronous;
  c.local_search.iterations = 1;
  c.termination = cga::Termination::after_generations(40);
  const auto r = run_parallel(m, c);
  EXPECT_TRUE(r.result.best.validate(1e-9));
  for (const auto& st : r.threads) EXPECT_EQ(st.generations, 40u);
}

std::vector<sched::MachineId> as_seed(const sched::Schedule& s) {
  return {s.assignment().begin(), s.assignment().end()};
}

/// run_parallel's exact single-thread layout, written out by hand: init
/// stream seeds the population, warm seed lands in the documented cell
/// BEFORE the initial best is taken, the worker breeds from stream
/// rngs[1] of make_streams(seed, 2), and the sweep order comes from the
/// per-thread order stream seed ^ 0xb10c0000. Both update policies. A
/// seeded threads==1 run of the real engine must match this loop gene for
/// gene — this is the wall that pins the seeding and batched-evaluation
/// plumbing to the pre-existing trajectory semantics.
cga::Result reference_single_thread(const etc::EtcMatrix& etc,
                                    const cga::Config& config) {
  config.validate();
  support::Xoshiro256 init_rng(config.seed);
  cga::Grid grid(config.width, config.height);
  cga::Population pop(etc, grid, init_rng, config.seed_min_min,
                      config.objective, config.lambda);
  const std::size_t n = pop.size();
  if (!config.warm_seed.empty()) {
    const std::size_t cell = config.seed_min_min && n > 1 ? 1 : 0;
    pop.seed_cell(cell, etc, config.warm_seed, config.objective,
                  config.lambda);
  }
  auto rngs = support::make_streams(config.seed, 2);
  support::Xoshiro256& rng = rngs[1];
  cga::Individual best = pop.at(pop.best_index());

  support::Xoshiro256 order_rng(config.seed ^ 0xb10c0000);
  std::vector<std::size_t> order;
  cga::fill_sweep_order(config.sweep, n, order, order_rng);

  std::vector<std::size_t> neigh;
  std::vector<double> fit;
  std::vector<cga::Individual> staged;
  std::uint64_t evaluations = 0;
  std::uint64_t generations = 0;
  bool stop = false;
  while (!stop) {
    if (config.sweep == cga::SweepPolicy::kNewShuffle ||
        config.sweep == cga::SweepPolicy::kUniformChoice) {
      cga::fill_sweep_order(config.sweep, n, order, order_rng);
    }
    if (config.update == cga::UpdatePolicy::kSynchronous) staged.clear();
    for (std::size_t idx : order) {
      cga::Individual child =
          cga::detail::breed(pop, idx, config, rng, neigh, fit);
      ++evaluations;
      if (child.fitness < best.fitness) best = child;
      if (config.update == cga::UpdatePolicy::kAsynchronous) {
        if (cga::detail::should_replace(config.replacement, child.fitness,
                                        pop.at(idx).fitness)) {
          pop.at(idx) = std::move(child);
        }
      } else {
        staged.push_back(std::move(child));
      }
    }
    if (config.update == cga::UpdatePolicy::kSynchronous) {
      for (std::size_t k = 0; k < staged.size(); ++k) {
        const std::size_t idx = order[k];
        if (cga::detail::should_replace(config.replacement, staged[k].fitness,
                                        pop.at(idx).fitness)) {
          pop.at(idx) = std::move(staged[k]);
        }
      }
    }
    ++generations;
    // run_parallel checks budgets once per block sweep.
    stop = generations >= config.termination.max_generations ||
           evaluations >= config.termination.max_evaluations;
  }

  // The engine's post-join collection: thread-best merged with a full
  // population scan.
  for (std::size_t i = 0; i < n; ++i) {
    if (pop.at(i).fitness < best.fitness) best = pop.at(i);
  }
  cga::Result result{std::move(best.schedule)};
  result.best_fitness = best.fitness;
  result.evaluations = evaluations;
  result.generations = generations;
  return result;
}

class SeededUpdatePolicy
    : public ::testing::TestWithParam<cga::UpdatePolicy> {};

TEST_P(SeededUpdatePolicy, SingleThreadMatchesSeededReferenceGeneForGene) {
  const auto m = instance();
  support::Xoshiro256 seed_rng(7);
  const auto warm = sched::Schedule::random(m, seed_rng);
  for (std::uint64_t seed : {2ull, 19ull, 101ull}) {
    auto c = fast_config(1);
    c.update = GetParam();
    c.seed = seed;
    c.warm_seed = as_seed(warm);
    const auto engine = run_parallel(m, c);
    const auto reference = reference_single_thread(m, c);
    EXPECT_DOUBLE_EQ(engine.result.best_fitness, reference.best_fitness)
        << "seed " << seed;
    EXPECT_EQ(engine.result.best.hamming_distance(reference.best), 0u)
        << "seed " << seed;
    EXPECT_EQ(engine.result.evaluations, reference.evaluations);
    EXPECT_LE(engine.result.best_fitness, warm.makespan());
  }
}

INSTANTIATE_TEST_SUITE_P(BothPolicies, SeededUpdatePolicy,
                         ::testing::Values(cga::UpdatePolicy::kAsynchronous,
                                           cga::UpdatePolicy::kSynchronous),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(ParallelEngineSeeded, SyncModeDeterministicPerThreadCount) {
  // Barrier-coupled sync mode with disjoint blocks is deterministic for
  // every thread count (not across thread counts — the stream layout is
  // per-thread by design): run twice at a fixed generation cap, compare
  // gene for gene.
  const auto m = instance();
  support::Xoshiro256 seed_rng(9);
  const auto warm = sched::Schedule::random(m, seed_rng);
  for (std::size_t t = 1; t <= 4; ++t) {
    auto c = fast_config(t);
    c.update = cga::UpdatePolicy::kSynchronous;
    c.termination = cga::Termination::after_generations(6);
    c.warm_seed = as_seed(warm);
    const auto r1 = run_parallel(m, c);
    const auto r2 = run_parallel(m, c);
    EXPECT_DOUBLE_EQ(r1.result.best_fitness, r2.result.best_fitness)
        << "threads " << t;
    EXPECT_EQ(r1.result.best.hamming_distance(r2.result.best), 0u)
        << "threads " << t;
    EXPECT_LE(r1.result.best_fitness, warm.makespan()) << "threads " << t;
    for (const auto& st : r1.threads) EXPECT_EQ(st.generations, 6u);
  }
}

TEST(ParallelEngineSeeded, NeverWorseThanSeedAcrossRandomShapes) {
  // Property over randomized shapes and seeds, including the degenerate
  // single-machine instance (where every schedule — hence the seed — is
  // already optimal): the seeded result is never worse than the seed, in
  // either update mode, at one and at several threads. No clamp performs
  // this; it holds by construction of the initial population.
  struct Shape {
    std::size_t tasks, machines;
  };
  const Shape shapes[] = {{48, 6}, {40, 1}, {33, 5}, {96, 12}};
  std::uint64_t stamp = 1000;
  for (const Shape& s : shapes) {
    etc::GenSpec spec;
    spec.tasks = s.tasks;
    spec.machines = s.machines;
    spec.consistency = etc::Consistency::kInconsistent;
    spec.seed = ++stamp;
    const auto m = etc::generate(spec);
    support::Xoshiro256 seed_rng(stamp * 31);
    const auto warm = sched::Schedule::random(m, seed_rng);
    for (std::size_t t : {std::size_t{1}, std::size_t{2}}) {
      for (auto update : {cga::UpdatePolicy::kAsynchronous,
                          cga::UpdatePolicy::kSynchronous}) {
        cga::Config c;
        c.width = 4;
        c.height = 4;
        c.threads = t;
        c.update = update;
        c.seed = stamp;
        c.local_search.iterations = 1;
        c.termination = cga::Termination::after_generations(3);
        c.warm_seed = as_seed(warm);
        const auto r = run_parallel(m, c);
        EXPECT_LE(r.result.best_fitness, warm.makespan())
            << s.tasks << "x" << s.machines << " t=" << t << " "
            << to_string(update);
        EXPECT_TRUE(r.result.best.validate(1e-9));
        if (s.machines == 1) {
          // seed == optimum: the run returns it bit-exactly.
          EXPECT_DOUBLE_EQ(r.result.best_fitness, warm.makespan());
          EXPECT_EQ(r.result.best.hamming_distance(warm), 0u);
        }
      }
    }
  }
}

TEST(ParallelEngineSeeded, ReseedingWithOwnBestNeverRegresses) {
  // seed == (near-)optimum on a real shape: feed a finished run's best
  // back in as the warm seed under a different RNG seed; the second run
  // must end at or below it.
  const auto m = instance(71);
  auto c = fast_config(2);
  const auto first = run_parallel(m, c);
  c.seed = 999;
  c.warm_seed = as_seed(first.result.best);
  const auto second = run_parallel(m, c);
  EXPECT_LE(second.result.best_fitness, first.result.best_fitness);
}

TEST(ThreadPinning, PinCurrentThreadReturnsVerdict) {
  // On Linux pinning to core 0 should succeed; elsewhere it reports false.
  // Either way it must not crash and the engine must accept the flag.
  (void)pin_current_thread(0);
  const auto m = instance();
  auto c = fast_config(2);
  c.pin_threads = true;
  const auto r = run_parallel(m, c);
  EXPECT_TRUE(r.result.best.validate(1e-9));
}

}  // namespace
}  // namespace pacga::par
