#include "cga/multiobjective.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "etc/braun.hpp"
#include "heuristics/minmin.hpp"

namespace pacga::cga {
namespace {

etc::EtcMatrix instance(std::uint64_t seed = 131) {
  etc::GenSpec spec;
  spec.tasks = 64;
  spec.machines = 8;
  spec.consistency = etc::Consistency::kInconsistent;
  spec.seed = seed;
  return etc::generate(spec);
}

TEST(Dominance, StrictAndNonStrictCases) {
  const MoPoint a{1.0, 1.0};
  const MoPoint b{2.0, 2.0};
  const MoPoint c{1.0, 2.0};
  const MoPoint d{2.0, 1.0};
  EXPECT_TRUE(dominates(a, b));
  EXPECT_FALSE(dominates(b, a));
  EXPECT_TRUE(dominates(a, c));   // equal in one, better in other
  EXPECT_FALSE(dominates(c, d));  // incomparable
  EXPECT_FALSE(dominates(d, c));
  EXPECT_FALSE(dominates(a, a));  // no self-domination
}

MoIndividual point(const etc::EtcMatrix& m, double makespan, double flowtime) {
  // Objectives are attached manually for archive unit tests; the schedule
  // content is irrelevant there.
  sched::Schedule s(m);
  MoIndividual ind{std::move(s), {makespan, flowtime}};
  return ind;
}

TEST(ParetoArchive, KeepsOnlyNonDominated) {
  const auto m = instance();
  ParetoArchive archive(10);
  EXPECT_TRUE(archive.insert(point(m, 5, 5)));
  EXPECT_FALSE(archive.insert(point(m, 6, 6)));  // dominated
  EXPECT_TRUE(archive.insert(point(m, 4, 6)));   // incomparable
  EXPECT_TRUE(archive.insert(point(m, 3, 3)));   // dominates both
  ASSERT_EQ(archive.size(), 1u);
  EXPECT_DOUBLE_EQ(archive.members()[0].objectives.makespan, 3.0);
}

TEST(ParetoArchive, RejectsObjectiveDuplicates) {
  const auto m = instance();
  ParetoArchive archive(10);
  EXPECT_TRUE(archive.insert(point(m, 5, 5)));
  EXPECT_FALSE(archive.insert(point(m, 5, 5)));
  EXPECT_EQ(archive.size(), 1u);
}

TEST(ParetoArchive, MutualNonDominationInvariant) {
  const auto m = instance();
  support::Xoshiro256 rng(1);
  ParetoArchive archive(20);
  for (int i = 0; i < 300; ++i) {
    archive.insert(point(m, rng.uniform(0, 100), rng.uniform(0, 100)));
  }
  const auto& f = archive.members();
  for (std::size_t i = 0; i < f.size(); ++i) {
    for (std::size_t j = 0; j < f.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(dominates(f[i].objectives, f[j].objectives))
          << i << " dominates " << j;
    }
  }
  EXPECT_LE(archive.size(), 20u);
}

TEST(ParetoArchive, CapacityPruningKeepsBoundaries) {
  const auto m = instance();
  ParetoArchive archive(5);
  // A clean staircase of 9 points; pruning must keep the two extremes.
  for (int i = 0; i < 9; ++i) {
    archive.insert(point(m, i, 8 - i));
  }
  EXPECT_EQ(archive.size(), 5u);
  bool has_left = false, has_right = false;
  for (const auto& mem : archive.members()) {
    has_left |= (mem.objectives.makespan == 0.0);
    has_right |= (mem.objectives.makespan == 8.0);
  }
  EXPECT_TRUE(has_left);
  EXPECT_TRUE(has_right);
}

TEST(ParetoArchive, CrowdingDistancesBoundariesInfinite) {
  const auto m = instance();
  ParetoArchive archive(10);
  for (int i = 0; i < 5; ++i) archive.insert(point(m, i, 4 - i));
  const auto dist = archive.crowding_distances();
  int infinite = 0;
  for (double d : dist) infinite += std::isinf(d);
  EXPECT_EQ(infinite, 2);
}

TEST(Hypervolume2d, HandComputed) {
  // Two points vs reference (10, 10):
  // (2, 6): (10-2)*(10-6) = 32; then (6, 2): (10-6)*(6-2) = 16. Total 48.
  const std::vector<MoPoint> front{{2, 6}, {6, 2}};
  EXPECT_DOUBLE_EQ(hypervolume2d(front, {10, 10}), 48.0);
}

TEST(Hypervolume2d, IgnoresPointsBeyondReference) {
  const std::vector<MoPoint> front{{2, 6}, {11, 1}, {1, 12}};
  EXPECT_DOUBLE_EQ(hypervolume2d(front, {10, 10}),
                   (10.0 - 2.0) * (10.0 - 6.0));
}

TEST(Hypervolume2d, EmptyFrontIsZero) {
  EXPECT_DOUBLE_EQ(hypervolume2d({}, {10, 10}), 0.0);
}

TEST(Mocell, ProducesNonDominatedFront) {
  const auto m = instance();
  MoConfig c;
  c.width = 6;
  c.height = 6;
  c.termination = Termination::after_generations(15);
  const auto r = run_mocell(m, c);
  ASSERT_FALSE(r.front.empty());
  for (std::size_t i = 0; i < r.front.size(); ++i) {
    EXPECT_TRUE(r.front[i].schedule.validate(1e-9));
    EXPECT_DOUBLE_EQ(r.front[i].objectives.makespan,
                     r.front[i].schedule.makespan());
    EXPECT_DOUBLE_EQ(r.front[i].objectives.flowtime,
                     r.front[i].schedule.flowtime());
    for (std::size_t j = 0; j < r.front.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(dominates(r.front[i].objectives, r.front[j].objectives));
    }
  }
  // Sorted by makespan ascending (and therefore flowtime descending).
  for (std::size_t i = 1; i < r.front.size(); ++i) {
    EXPECT_GE(r.front[i].objectives.makespan,
              r.front[i - 1].objectives.makespan);
  }
}

TEST(Mocell, Deterministic) {
  const auto m = instance();
  MoConfig c;
  c.width = 5;
  c.height = 5;
  c.termination = Termination::after_generations(8);
  const auto r1 = run_mocell(m, c);
  const auto r2 = run_mocell(m, c);
  ASSERT_EQ(r1.front.size(), r2.front.size());
  for (std::size_t i = 0; i < r1.front.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1.front[i].objectives.makespan,
                     r2.front[i].objectives.makespan);
  }
}

TEST(Mocell, FrontCoversMinMinTradeoff) {
  // The archive should contain a point at least as good in makespan as
  // Min-min OR trade it off with visibly better flowtime.
  const auto m = instance();
  MoConfig c;
  c.termination = Termination::after_generations(20);
  const auto r = run_mocell(m, c);
  const auto mm = heur::min_min(m);
  bool makespan_covered = false;
  for (const auto& p : r.front) {
    if (p.objectives.makespan <= mm.makespan() + 1e-9) {
      makespan_covered = true;
      break;
    }
  }
  EXPECT_TRUE(makespan_covered);  // Min-min seeds the population
}

TEST(Mocell, HypervolumeGrowsWithBudget) {
  const auto m = instance(137);
  MoConfig c;
  c.width = 6;
  c.height = 6;
  c.seed_min_min = false;
  c.seed = 3;
  c.termination = Termination::after_generations(3);
  const auto small = run_mocell(m, c);
  c.termination = Termination::after_generations(30);
  const auto large = run_mocell(m, c);
  // A generous reference dominated by everything observed.
  support::Xoshiro256 rng(5);
  const auto bad = sched::Schedule::random(m, rng);
  const MoPoint ref{bad.makespan() * 3.0, bad.flowtime() * 3.0};
  EXPECT_GE(large.hypervolume(ref), small.hypervolume(ref) * 0.999);
}

TEST(Mocell, EvaluationAccountingAndBudget) {
  const auto m = instance();
  MoConfig c;
  c.width = 5;
  c.height = 5;
  c.termination = Termination::after_generations(6);
  const auto r = run_mocell(m, c);
  EXPECT_EQ(r.generations, 6u);
  EXPECT_EQ(r.evaluations, 6u * 25u);

  c.termination = Termination::after_evaluations(60);
  const auto r2 = run_mocell(m, c);
  EXPECT_EQ(r2.evaluations, 60u);
}

TEST(Mocell, ValidatesConfig) {
  const auto m = instance();
  MoConfig c;
  c.width = 0;
  EXPECT_THROW(run_mocell(m, c), std::invalid_argument);
  c = MoConfig{};
  c.archive_capacity = 0;
  EXPECT_THROW(run_mocell(m, c), std::invalid_argument);
  c = MoConfig{};
  c.p_ls = 2.0;
  EXPECT_THROW(run_mocell(m, c), std::invalid_argument);
  EXPECT_THROW(ParetoArchive(0), std::invalid_argument);
}

}  // namespace
}  // namespace pacga::cga
