#include "sched/schedule.hpp"

#include <gtest/gtest.h>

#include "etc/braun.hpp"

namespace pacga::sched {
namespace {

etc::EtcMatrix tiny() {
  // 4 tasks x 2 machines.
  return etc::EtcMatrix(4, 2,
                        {1.0, 10.0,   // task 0
                         2.0, 20.0,   // task 1
                         3.0, 30.0,   // task 2
                         4.0, 40.0}); // task 3
}

etc::EtcMatrix braun_small(std::uint64_t seed = 3) {
  etc::GenSpec spec;
  spec.tasks = 64;
  spec.machines = 8;
  spec.consistency = etc::Consistency::kInconsistent;
  spec.seed = seed;
  return etc::generate(spec);
}

TEST(Schedule, CompletionTimesFromAssignment) {
  const auto m = tiny();
  Schedule s(m, {0, 0, 1, 1});
  EXPECT_DOUBLE_EQ(s.completion(0), 3.0);   // 1 + 2
  EXPECT_DOUBLE_EQ(s.completion(1), 70.0);  // 30 + 40
  EXPECT_DOUBLE_EQ(s.makespan(), 70.0);
}

TEST(Schedule, DefaultPutsAllOnMachineZero) {
  const auto m = tiny();
  Schedule s(m);
  EXPECT_DOUBLE_EQ(s.completion(0), 10.0);
  EXPECT_DOUBLE_EQ(s.completion(1), 0.0);
  EXPECT_EQ(s.tasks_on(0), 4u);
}

TEST(Schedule, ReadyTimesIncluded) {
  etc::EtcMatrix m(2, 2, {1, 2, 3, 4}, {100.0, 200.0});
  Schedule s(m, {0, 1});
  EXPECT_DOUBLE_EQ(s.completion(0), 101.0);
  EXPECT_DOUBLE_EQ(s.completion(1), 204.0);
}

TEST(Schedule, RejectsBadAssignment) {
  const auto m = tiny();
  EXPECT_THROW(Schedule(m, {0, 0, 1}), std::invalid_argument);
  EXPECT_THROW(Schedule(m, {0, 0, 1, 2}), std::invalid_argument);
}

TEST(Schedule, MoveTaskUpdatesIncrementally) {
  const auto m = tiny();
  Schedule s(m, {0, 0, 1, 1});
  s.move_task(0, 1);  // task 0: machine 0 -> 1
  EXPECT_EQ(s.machine_of(0), 1);
  EXPECT_DOUBLE_EQ(s.completion(0), 2.0);
  EXPECT_DOUBLE_EQ(s.completion(1), 80.0);
  EXPECT_TRUE(s.validate());
}

TEST(Schedule, MoveToSameMachineIsNoOp) {
  const auto m = tiny();
  Schedule s(m, {0, 0, 1, 1});
  const double c0 = s.completion(0);
  s.move_task(0, 0);
  EXPECT_DOUBLE_EQ(s.completion(0), c0);
  EXPECT_TRUE(s.validate());
}

TEST(Schedule, SwapUpdatesIncrementally) {
  const auto m = tiny();
  Schedule s(m, {0, 1, 0, 1});
  s.swap_tasks(0, 1);  // task0 -> m1, task1 -> m0
  EXPECT_EQ(s.machine_of(0), 1);
  EXPECT_EQ(s.machine_of(1), 0);
  EXPECT_TRUE(s.validate());
  // Swap of same-machine tasks is a no-op.
  Schedule u(m, {0, 0, 1, 1});
  u.swap_tasks(0, 1);
  EXPECT_EQ(u.machine_of(0), 0);
  EXPECT_TRUE(u.validate());
}

TEST(Schedule, CopySegmentMatchesSource) {
  const auto m = braun_small();
  support::Xoshiro256 rng(1);
  Schedule a = Schedule::random(m, rng);
  const Schedule b = Schedule::random(m, rng);
  a.copy_segment(b, 10, 40);
  for (std::size_t t = 10; t < 40; ++t) {
    EXPECT_EQ(a.machine_of(t), b.machine_of(t));
  }
  EXPECT_TRUE(a.validate());
}

TEST(Schedule, ArgmaxArgminConsistentWithCompletions) {
  const auto m = braun_small();
  support::Xoshiro256 rng(2);
  const Schedule s = Schedule::random(m, rng);
  const std::size_t mx = s.argmax_machine();
  const std::size_t mn = s.argmin_machine();
  for (std::size_t k = 0; k < s.machines(); ++k) {
    EXPECT_LE(s.completion(k), s.completion(mx));
    EXPECT_GE(s.completion(k), s.completion(mn));
  }
}

TEST(Schedule, MakespanEqualsMaxCompletion) {
  const auto m = braun_small();
  support::Xoshiro256 rng(3);
  const Schedule s = Schedule::random(m, rng);
  double mx = 0;
  for (std::size_t k = 0; k < s.machines(); ++k)
    mx = std::max(mx, s.completion(k));
  EXPECT_DOUBLE_EQ(s.makespan(), mx);
}

TEST(Schedule, FlowtimeShortestFirstLowerBoundsMakespanTimesTasks) {
  const auto m = braun_small();
  support::Xoshiro256 rng(4);
  const Schedule s = Schedule::random(m, rng);
  const double flow = s.flowtime();
  // Each task finishes no later than the machine completion time, so
  // flowtime <= tasks * makespan; and flowtime >= makespan (the last task
  // on the makespan machine finishes at its completion time).
  EXPECT_LE(flow, static_cast<double>(s.tasks()) * s.makespan() + 1e-9);
  EXPECT_GE(flow, s.makespan() - 1e-9);
}

TEST(Schedule, FlowtimeHandCheck) {
  const auto m = tiny();
  Schedule s(m, {0, 0, 0, 1});
  // Machine 0 ETCs: 1, 2, 3 shortest-first => finishes 1, 3, 6 -> 10.
  // Machine 1 ETC: 40 -> 40. Total 50.
  EXPECT_DOUBLE_EQ(s.flowtime(), 50.0);
}

TEST(Schedule, HammingDistance) {
  const auto m = tiny();
  const Schedule a(m, {0, 0, 1, 1});
  const Schedule b(m, {0, 1, 0, 1});
  EXPECT_EQ(a.hamming_distance(b), 2u);
  EXPECT_EQ(a.hamming_distance(a), 0u);
  EXPECT_TRUE(a == a);
  EXPECT_FALSE(a == b);
}

TEST(Schedule, ValidateDetectsCorruption) {
  const auto m = braun_small();
  support::Xoshiro256 rng(5);
  Schedule s = Schedule::random(m, rng);
  EXPECT_TRUE(s.validate());
}

/// Property: after any random sequence of incremental operations, the
/// cached completion times equal a from-scratch recomputation exactly
/// (modulo floating-point drift).
class IncrementalPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(IncrementalPropertyTest, CacheStaysCoherent) {
  const auto m = braun_small(GetParam());
  support::Xoshiro256 rng(GetParam() * 31 + 1);
  Schedule s = Schedule::random(m, rng);
  const Schedule other = Schedule::random(m, rng);
  for (int op = 0; op < 2000; ++op) {
    switch (rng.index(3)) {
      case 0:
        s.move_task(rng.index(s.tasks()),
                    static_cast<MachineId>(rng.index(s.machines())));
        break;
      case 1: {
        const std::size_t a = rng.index(s.tasks());
        const std::size_t b = rng.index(s.tasks());
        if (a != b) s.swap_tasks(a, b);
        break;
      }
      case 2: {
        std::size_t lo = rng.index(s.tasks());
        std::size_t hi = rng.index(s.tasks());
        if (lo > hi) std::swap(lo, hi);
        s.copy_segment(other, lo, hi);
        break;
      }
    }
  }
  EXPECT_TRUE(s.validate(1e-9));
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Schedule, AdoptWithCompletionsSkipsRecompute) {
  const auto m = braun_small();
  support::Xoshiro256 rng(11);
  const Schedule src = Schedule::random(m, rng);
  Schedule dst(m);
  // Hand over assignment + cache wholesale; the result must be exactly
  // the source state (and validate() agrees in every build mode).
  dst.adopt_with_completions(m, src.assignment(), src.completions());
  EXPECT_EQ(dst, src);
  for (std::size_t i = 0; i < m.machines(); ++i) {
    EXPECT_DOUBLE_EQ(dst.completion(i), src.completion(i));
  }
  EXPECT_TRUE(dst.validate());
}

TEST(Schedule, AdoptWithCompletionsResizesAcrossShapes) {
  // The dynamic repairer rebinds a schedule to a DIFFERENT shape; the
  // wholesale adopt must resize both halves.
  const auto big = braun_small(3);
  const auto small = tiny();
  support::Xoshiro256 rng(12);
  Schedule s = Schedule::random(big, rng);
  const Schedule target(small, {0, 1, 0, 1});
  s.adopt_with_completions(small, target.assignment(), target.completions());
  EXPECT_EQ(s.tasks(), 4u);
  EXPECT_EQ(s.machines(), 2u);
  EXPECT_TRUE(s.validate());
}

TEST(Schedule, AdoptWithCompletionsRejectsBadInput) {
  const auto m = tiny();
  Schedule s(m);
  const std::vector<double> completion{10.0, 60.0};
  EXPECT_THROW(
      s.adopt_with_completions(m, std::vector<MachineId>{0, 0, 1}, completion),
      std::invalid_argument);  // wrong task count
  EXPECT_THROW(s.adopt_with_completions(m, std::vector<MachineId>{0, 0, 1, 1},
                                        std::vector<double>{10.0}),
               std::invalid_argument);  // wrong machine count
  EXPECT_THROW(s.adopt_with_completions(m, std::vector<MachineId>{0, 0, 1, 2},
                                        completion),
               std::invalid_argument);  // machine id out of range
}

// Regression (small-fix satellite): adopt() and randomize_from() throw on
// shape mismatch, but assign_from() is the hot path and only asserts.
// Verify the assertion actually fires in debug builds; in NDEBUG builds
// (the default Release CI arm) the assert compiles away, so the death
// test is skipped there.
TEST(ScheduleDeathTest, AssignFromAssertsOnShapeMismatchInDebug) {
#if defined(NDEBUG)
  GTEST_SKIP() << "asserts compiled out (NDEBUG)";
#elif defined(__SANITIZE_THREAD__)
  GTEST_SKIP() << "death tests fork, which TSan instrumentation dislikes";
#else
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  const auto big = braun_small();
  const auto small = tiny();
  Schedule wide(big);
  const Schedule narrow(small);
  EXPECT_DEATH(wide.assign_from(narrow), "assign_from");
#endif
}

}  // namespace
}  // namespace pacga::sched
