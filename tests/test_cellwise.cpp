#include "pacga/cellwise_engine.hpp"

#include <gtest/gtest.h>

#include "etc/braun.hpp"
#include "heuristics/minmin.hpp"
#include "support/stats.hpp"

namespace pacga::par {
namespace {

etc::EtcMatrix instance(std::uint64_t seed = 101) {
  etc::GenSpec spec;
  spec.tasks = 128;
  spec.machines = 16;
  spec.consistency = etc::Consistency::kInconsistent;
  spec.seed = seed;
  return etc::generate(spec);
}

cga::Config fast_config(std::size_t threads) {
  cga::Config c;
  c.width = 8;
  c.height = 8;
  c.threads = threads;
  c.termination = cga::Termination::after_generations(10);
  c.local_search.iterations = 2;
  return c;
}

TEST(Cellwise, RunsAndValidates) {
  const auto m = instance();
  const auto r = run_cellwise(m, fast_config(3));
  EXPECT_TRUE(r.result.best.validate(1e-9));
  EXPECT_DOUBLE_EQ(r.result.best.makespan(), r.result.best_fitness);
  EXPECT_EQ(r.result.generations, 10u);
  EXPECT_EQ(r.result.evaluations, 10u * 64u);
}

TEST(Cellwise, ResultIndependentOfWorkerCount) {
  // THE property of the model: per-(cell, generation) streams make the
  // outcome identical for any pool size — the GPU reproducibility story.
  const auto m = instance();
  const auto r1 = run_cellwise(m, fast_config(1));
  const auto r2 = run_cellwise(m, fast_config(2));
  const auto r4 = run_cellwise(m, fast_config(4));
  EXPECT_DOUBLE_EQ(r1.result.best_fitness, r2.result.best_fitness);
  EXPECT_DOUBLE_EQ(r1.result.best_fitness, r4.result.best_fitness);
  EXPECT_EQ(r1.result.best.hamming_distance(r2.result.best), 0u);
  EXPECT_EQ(r1.result.best.hamming_distance(r4.result.best), 0u);
}

TEST(Cellwise, EvaluationsSplitAcrossWorkers) {
  const auto m = instance();
  const auto r = run_cellwise(m, fast_config(4));
  std::uint64_t sum = 0;
  for (const auto& st : r.threads) sum += st.evaluations;
  EXPECT_EQ(sum, r.result.evaluations);
  // Dynamic queue: every worker should get some share.
  for (const auto& st : r.threads) EXPECT_GT(st.evaluations, 0u);
}

TEST(Cellwise, MinMinSeedQualityGuarantee) {
  const auto m = instance();
  const auto r = run_cellwise(m, fast_config(2));
  EXPECT_LE(r.result.best_fitness, heur::min_min(m).makespan() + 1e-9);
}

TEST(Cellwise, EvaluationBudgetRespected) {
  const auto m = instance();
  auto c = fast_config(3);
  c.termination = cga::Termination::after_evaluations(200);
  const auto r = run_cellwise(m, c);
  // Granularity: one generation (64 evals).
  EXPECT_GE(r.result.evaluations, 200u);
  EXPECT_LE(r.result.evaluations, 200u + 64u);
}

TEST(Cellwise, WallClockTerminatesWithoutDeadlock) {
  const auto m = instance();
  auto c = fast_config(4);
  c.termination = cga::Termination::after_seconds(0.2);
  const auto r = run_cellwise(m, c);
  EXPECT_GE(r.result.elapsed_seconds, 0.2);
  EXPECT_LT(r.result.elapsed_seconds, 10.0);
}

TEST(Cellwise, TraceMonotoneUnderReplaceIfBetter) {
  const auto m = instance();
  auto c = fast_config(2);
  c.collect_trace = true;
  c.termination = cga::Termination::after_generations(15);
  const auto r = run_cellwise(m, c);
  ASSERT_EQ(r.result.trace.size(), 15u);
  for (std::size_t i = 1; i < r.result.trace.size(); ++i) {
    EXPECT_LE(r.result.trace[i].best_fitness,
              r.result.trace[i - 1].best_fitness + 1e-9);
    EXPECT_LE(r.result.trace[i].mean_fitness,
              r.result.trace[i - 1].mean_fitness + 1e-9);
  }
}

TEST(Cellwise, ComparableQualityToPaCga) {
  const auto m = instance(103);
  auto c = fast_config(3);
  c.termination = cga::Termination::after_generations(20);
  const double cw = run_cellwise(m, c).result.best_fitness;
  const double pa = run_parallel(m, c).result.best_fitness;
  EXPECT_LT(cw, pa * 1.25);
  EXPECT_LT(pa, cw * 1.25);
}

class CellwiseWorkerSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CellwiseWorkerSweep, DeterministicFingerprint) {
  const auto m = instance();
  auto c = fast_config(GetParam());
  c.termination = cga::Termination::after_generations(5);
  const auto r = run_cellwise(m, c);
  // All worker counts must land on the 1-worker fingerprint.
  static double fingerprint = -1.0;
  if (fingerprint < 0.0) fingerprint = r.result.best_fitness;
  EXPECT_DOUBLE_EQ(r.result.best_fitness, fingerprint);
}

INSTANTIATE_TEST_SUITE_P(Workers, CellwiseWorkerSweep,
                         ::testing::Values(1, 2, 3, 4, 8));

}  // namespace
}  // namespace pacga::par
