#include "support/stats.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace pacga::support {
namespace {

TEST(Wilcoxon, IdenticalPairsGiveNoEvidence) {
  const std::vector<double> a{1, 2, 3, 4, 5};
  const auto r = wilcoxon_signed_rank(a, a);
  EXPECT_EQ(r.n_effective, 0u);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
}

TEST(Wilcoxon, ConsistentShiftIsSignificant) {
  Xoshiro256 rng(1);
  std::vector<double> a, b;
  for (int i = 0; i < 30; ++i) {
    const double base = rng.uniform(0, 10);
    a.push_back(base);
    b.push_back(base + rng.uniform(0.5, 1.5));  // b always larger
  }
  const auto r = wilcoxon_signed_rank(a, b);
  EXPECT_EQ(r.n_effective, 30u);
  EXPECT_LT(r.p_value, 1e-4);
  EXPECT_LT(r.z, 0.0);  // a < b => W+ small => negative z
}

TEST(Wilcoxon, SymmetricNoiseNotSignificant) {
  Xoshiro256 rng(2);
  std::vector<double> a, b;
  for (int i = 0; i < 40; ++i) {
    const double base = rng.uniform(0, 10);
    a.push_back(base + rng.uniform(-1, 1));
    b.push_back(base + rng.uniform(-1, 1));
  }
  const auto r = wilcoxon_signed_rank(a, b);
  EXPECT_GT(r.p_value, 0.01);
}

TEST(Wilcoxon, DirectionSymmetry) {
  Xoshiro256 rng(3);
  std::vector<double> a, b;
  for (int i = 0; i < 25; ++i) {
    a.push_back(rng.uniform(0, 1));
    b.push_back(rng.uniform(0.2, 1.2));
  }
  const auto ab = wilcoxon_signed_rank(a, b);
  const auto ba = wilcoxon_signed_rank(b, a);
  EXPECT_NEAR(ab.z, -ba.z, 1e-9);
  EXPECT_NEAR(ab.p_value, ba.p_value, 1e-9);
  EXPECT_DOUBLE_EQ(ab.w, ba.w);  // min(W+, W-) is direction-free
}

TEST(Wilcoxon, DropsZeroDifferences) {
  const std::vector<double> a{1, 2, 3, 4, 5, 6};
  const std::vector<double> b{1, 2, 3, 5, 6, 7};  // 3 ties, 3 shifts
  const auto r = wilcoxon_signed_rank(a, b);
  EXPECT_EQ(r.n_effective, 3u);
}

TEST(Wilcoxon, RejectsBadInput) {
  EXPECT_THROW(wilcoxon_signed_rank({1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(wilcoxon_signed_rank({}, {}), std::invalid_argument);
}

TEST(Wilcoxon, HandComputedSmallCase) {
  // Differences: +1, +2, -3  => |d| ranks: 1, 2, 3.
  // W+ = 1 + 2 = 3; W- = 3; W = 3.
  const std::vector<double> a{11, 12, 10};
  const std::vector<double> b{10, 10, 13};
  const auto r = wilcoxon_signed_rank(a, b);
  EXPECT_DOUBLE_EQ(r.w, 3.0);
  EXPECT_EQ(r.n_effective, 3u);
}

}  // namespace
}  // namespace pacga::support
