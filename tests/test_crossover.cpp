#include "cga/crossover.hpp"

#include <gtest/gtest.h>

#include "etc/braun.hpp"

namespace pacga::cga {
namespace {

etc::EtcMatrix instance(std::uint64_t seed = 1) {
  etc::GenSpec spec;
  spec.tasks = 64;
  spec.machines = 8;
  spec.consistency = etc::Consistency::kInconsistent;
  spec.seed = seed;
  return etc::generate(spec);
}

struct Parents {
  sched::Schedule a;
  sched::Schedule b;
};

Parents make_parents(const etc::EtcMatrix& m, std::uint64_t seed) {
  support::Xoshiro256 rng(seed);
  return {sched::Schedule::random(m, rng), sched::Schedule::random(m, rng)};
}

/// Every gene of the child comes from one of the two parents.
void expect_genes_from_parents(const sched::Schedule& child,
                               const Parents& p) {
  for (std::size_t t = 0; t < child.tasks(); ++t) {
    const auto g = child.machine_of(t);
    EXPECT_TRUE(g == p.a.machine_of(t) || g == p.b.machine_of(t))
        << "task " << t;
  }
}

TEST(OnePoint, PrefixFromAVSuffixFromB) {
  const auto m = instance();
  const auto p = make_parents(m, 2);
  support::Xoshiro256 rng(3);
  const auto child = one_point_crossover(p.a, p.b, rng);
  // Find the cut: first index where child matches b but not a.
  expect_genes_from_parents(child, p);
  // Verify structure: once the child starts following b (where a and b
  // differ), it never reverts to a.
  bool after_cut = false;
  for (std::size_t t = 0; t < child.tasks(); ++t) {
    if (p.a.machine_of(t) == p.b.machine_of(t)) continue;
    const bool from_b = child.machine_of(t) == p.b.machine_of(t);
    if (after_cut) {
      EXPECT_TRUE(from_b) << "reverted to parent a after cut at task " << t;
    } else if (from_b) {
      after_cut = true;
    }
  }
  EXPECT_TRUE(child.validate());
}

TEST(TwoPoint, MiddleSegmentFromB) {
  const auto m = instance();
  const auto p = make_parents(m, 4);
  support::Xoshiro256 rng(5);
  const auto child = two_point_crossover(p.a, p.b, rng);
  expect_genes_from_parents(child, p);
  // Structure: b-matching region (where parents differ) is contiguous.
  std::ptrdiff_t first_b = -1, last_b = -1;
  for (std::size_t t = 0; t < child.tasks(); ++t) {
    if (p.a.machine_of(t) == p.b.machine_of(t)) continue;
    if (child.machine_of(t) == p.b.machine_of(t)) {
      if (first_b < 0) first_b = static_cast<std::ptrdiff_t>(t);
      last_b = static_cast<std::ptrdiff_t>(t);
    }
  }
  if (first_b >= 0) {
    for (std::ptrdiff_t t = first_b; t <= last_b; ++t) {
      if (p.a.machine_of(t) == p.b.machine_of(t)) continue;
      EXPECT_EQ(child.machine_of(t), p.b.machine_of(t)) << "hole at " << t;
    }
  }
  EXPECT_TRUE(child.validate());
}

TEST(Uniform, MixesBothParents) {
  const auto m = instance();
  const auto p = make_parents(m, 6);
  support::Xoshiro256 rng(7);
  const auto child = uniform_crossover(p.a, p.b, rng);
  expect_genes_from_parents(child, p);
  // With 64 differing-ish genes the child should take some from each side.
  std::size_t from_a = 0, from_b = 0;
  for (std::size_t t = 0; t < child.tasks(); ++t) {
    if (p.a.machine_of(t) == p.b.machine_of(t)) continue;
    if (child.machine_of(t) == p.a.machine_of(t)) ++from_a;
    else ++from_b;
  }
  EXPECT_GT(from_a, 0u);
  EXPECT_GT(from_b, 0u);
  EXPECT_TRUE(child.validate());
}

TEST(Crossover, IdenticalParentsYieldClone) {
  const auto m = instance();
  support::Xoshiro256 rng(8);
  const auto a = sched::Schedule::random(m, rng);
  for (auto kind : {CrossoverKind::kOnePoint, CrossoverKind::kTwoPoint,
                    CrossoverKind::kUniform}) {
    support::Xoshiro256 r2(9);
    const auto child = crossover(kind, a, a, r2);
    EXPECT_EQ(child.hamming_distance(a), 0u) << to_string(kind);
  }
}

TEST(Crossover, CompletionCacheCoherentAfterEveryKind) {
  const auto m = instance(11);
  for (auto kind : {CrossoverKind::kOnePoint, CrossoverKind::kTwoPoint,
                    CrossoverKind::kUniform}) {
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
      const auto p = make_parents(m, seed);
      support::Xoshiro256 rng(seed * 101);
      const auto child = crossover(kind, p.a, p.b, rng);
      EXPECT_TRUE(child.validate(1e-9)) << to_string(kind) << " seed " << seed;
    }
  }
}

TEST(Crossover, DispatchMatchesDirectCalls) {
  const auto m = instance();
  const auto p = make_parents(m, 12);
  support::Xoshiro256 r1(13), r2(13);
  const auto via_enum = crossover(CrossoverKind::kTwoPoint, p.a, p.b, r1);
  const auto direct = two_point_crossover(p.a, p.b, r2);
  EXPECT_EQ(via_enum.hamming_distance(direct), 0u);
}

TEST(Crossover, TwoTaskEdgeCase) {
  etc::EtcMatrix m(2, 2, {1, 2, 3, 4});
  const sched::Schedule a(m, {0, 0});
  const sched::Schedule b(m, {1, 1});
  support::Xoshiro256 rng(14);
  for (auto kind : {CrossoverKind::kOnePoint, CrossoverKind::kTwoPoint,
                    CrossoverKind::kUniform}) {
    const auto child = crossover(kind, a, b, rng);
    EXPECT_TRUE(child.validate()) << to_string(kind);
  }
}

}  // namespace
}  // namespace pacga::cga
