#include "etc/etc_matrix.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <vector>

#include "support/rng.hpp"

namespace pacga::etc {
namespace {

EtcMatrix small() {
  // 3 tasks x 2 machines, task-major.
  return EtcMatrix(3, 2, {1.0, 2.0, 3.0, 4.0, 5.0, 6.0});
}

TEST(EtcMatrix, Dimensions) {
  const auto m = small();
  EXPECT_EQ(m.tasks(), 3u);
  EXPECT_EQ(m.machines(), 2u);
}

TEST(EtcMatrix, ElementAccessMatchesTaskMajorInput) {
  const auto m = small();
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
}

TEST(EtcMatrix, TransposedLayoutAgrees) {
  const auto m = small();
  for (std::size_t t = 0; t < m.tasks(); ++t) {
    for (std::size_t mm = 0; mm < m.machines(); ++mm) {
      EXPECT_DOUBLE_EQ(m(t, mm), m.task_major_at(t, mm));
    }
  }
}

TEST(EtcMatrix, MachineRowIsContiguousSlice) {
  const auto m = small();
  const auto row = m.on_machine(1);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_DOUBLE_EQ(row[0], 2.0);
  EXPECT_DOUBLE_EQ(row[1], 4.0);
  EXPECT_DOUBLE_EQ(row[2], 6.0);
}

TEST(EtcMatrix, TaskRowIsContiguousSlice) {
  const auto m = small();
  const auto row = m.of_task(1);
  ASSERT_EQ(row.size(), 2u);
  EXPECT_DOUBLE_EQ(row[0], 3.0);
  EXPECT_DOUBLE_EQ(row[1], 4.0);
}

TEST(EtcMatrix, DefaultReadyTimesAreZero) {
  const auto m = small();
  for (std::size_t mm = 0; mm < m.machines(); ++mm) {
    EXPECT_DOUBLE_EQ(m.ready(mm), 0.0);
  }
}

TEST(EtcMatrix, ExplicitReadyTimes) {
  EtcMatrix m(2, 2, {1, 2, 3, 4}, {10.0, 20.0});
  EXPECT_DOUBLE_EQ(m.ready(0), 10.0);
  EXPECT_DOUBLE_EQ(m.ready(1), 20.0);
}

TEST(EtcMatrix, MinMaxEtc) {
  const auto m = small();
  EXPECT_DOUBLE_EQ(m.min_etc(), 1.0);
  EXPECT_DOUBLE_EQ(m.max_etc(), 6.0);
}

TEST(EtcMatrix, RejectsBadInput) {
  EXPECT_THROW(EtcMatrix(0, 2, {}), std::invalid_argument);
  EXPECT_THROW(EtcMatrix(2, 2, {1, 2, 3}), std::invalid_argument);
  EXPECT_THROW(EtcMatrix(2, 2, {1, 2, 3, -4}), std::invalid_argument);
  EXPECT_THROW(EtcMatrix(2, 2, {1, 2, 3, 0}), std::invalid_argument);
  EXPECT_THROW(EtcMatrix(2, 2, {1, 2, 3, 4}, {1.0}), std::invalid_argument);
}

TEST(EtcMatrix, DominationAndConsistency) {
  // Machine 0 dominates machine 1 row-wise.
  EtcMatrix consistent(3, 2, {1, 2, 3, 4, 5, 6});
  EXPECT_TRUE(consistent.machine_dominates(0, 1));
  EXPECT_FALSE(consistent.machine_dominates(1, 0));
  EXPECT_TRUE(consistent.is_consistent());

  // Machine 0 faster for task 0, machine 1 faster for task 1.
  EtcMatrix inconsistent(2, 2, {1, 5, 5, 1});
  EXPECT_FALSE(inconsistent.machine_dominates(0, 1));
  EXPECT_FALSE(inconsistent.machine_dominates(1, 0));
  EXPECT_FALSE(inconsistent.is_consistent());
}

TEST(EtcMatrix, HeterogeneityOrdering) {
  // Wildly different task weights -> high task heterogeneity.
  EtcMatrix hetero(3, 2, {1, 1.1, 100, 110, 10000, 11000});
  EtcMatrix homo(3, 2, {1, 1.1, 1.01, 1.1, 0.99, 1.05});
  EXPECT_GT(hetero.task_heterogeneity(), homo.task_heterogeneity());
}

TEST(EtcMatrix, RejectsOverflowingDimensions) {
  // tasks * machines wraps to 5 here; without the overflow guard the size
  // check would accept this 5-element data vector and the transpose loop
  // would write out of bounds.
  const std::size_t huge = std::numeric_limits<std::size_t>::max() / 3 + 2;
  EXPECT_THROW(EtcMatrix(huge, 3, {1.0, 1.0, 1.0, 1.0, 1.0}),
               std::invalid_argument);
}

TEST(EtcMatrix, FingerprintIsContentStable) {
  EtcMatrix a(2, 2, {1, 2, 3, 4});
  EtcMatrix b(2, 2, {1, 2, 3, 4});
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(EtcMatrix, FingerprintSeesValuesShapeAndReadyTimes) {
  EtcMatrix base(2, 2, {1, 2, 3, 4});
  EXPECT_NE(base.fingerprint(), EtcMatrix(2, 2, {1, 2, 3, 5}).fingerprint());
  // Same flat data, transposed shape.
  EXPECT_NE(base.fingerprint(), EtcMatrix(4, 1, {1, 2, 3, 4}).fingerprint());
  EXPECT_NE(base.fingerprint(), EtcMatrix(1, 4, {1, 2, 3, 4}).fingerprint());
  // Ready times are part of the instance (an explicit all-zero vector is
  // the same instance as the implicit default).
  EXPECT_EQ(base.fingerprint(),
            EtcMatrix(2, 2, {1, 2, 3, 4}, {0.0, 0.0}).fingerprint());
  EXPECT_NE(base.fingerprint(),
            EtcMatrix(2, 2, {1, 2, 3, 4}, {1.0, 0.0}).fingerprint());
}

TEST(EtcMatrix, ScaleMachineUpdatesBothLayoutsAndSummary) {
  auto m = small();
  const std::uint64_t fp = m.fingerprint();
  m.scale_machine(1, 10.0);
  // Column 1 scaled in BOTH layouts, column 0 untouched.
  EXPECT_DOUBLE_EQ(m(0, 1), 20.0);
  EXPECT_DOUBLE_EQ(m(2, 1), 60.0);
  EXPECT_DOUBLE_EQ(m.task_major_at(1, 1), 40.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  // min/max and the content fingerprint track the mutation.
  EXPECT_DOUBLE_EQ(m.max_etc(), 60.0);
  EXPECT_DOUBLE_EQ(m.min_etc(), 1.0);
  EXPECT_NE(m.fingerprint(), fp);
  // The fingerprint is CONTENT-derived: an identical matrix built from
  // scratch agrees.
  EXPECT_EQ(m.fingerprint(),
            EtcMatrix(3, 2, {1.0, 20.0, 3.0, 40.0, 5.0, 60.0}).fingerprint());
}

TEST(EtcMatrix, IncrementalFingerprintMatchesFromScratchAfterEventSequences) {
  // scale_machine refingerprints incrementally (only the touched column is
  // rehashed); after ANY sequence of events the result must equal the
  // from-scratch fingerprint of an identical matrix — bit for bit, along
  // with the min/max summaries.
  support::Xoshiro256 rng(91);
  const std::size_t tasks = 17, machines = 5;
  std::vector<double> data(tasks * machines);
  for (auto& v : data) v = rng.uniform(0.5, 100.0);
  std::vector<double> ready(machines);
  for (auto& r : ready) r = rng.uniform(0.0, 10.0);
  EtcMatrix m(tasks, machines, data, ready);

  for (int event = 0; event < 50; ++event) {
    const std::size_t machine = rng.index(machines);
    const double factor = rng.uniform(0.25, 4.0);
    m.scale_machine(machine, factor);

    std::vector<double> flat;
    flat.reserve(tasks * machines);
    for (std::size_t t = 0; t < tasks; ++t) {
      const auto row = m.of_task(t);
      flat.insert(flat.end(), row.begin(), row.end());
    }
    const EtcMatrix fresh(tasks, machines, flat,
                          {ready.begin(), ready.end()});
    ASSERT_EQ(m.fingerprint(), fresh.fingerprint()) << "event " << event;
    ASSERT_EQ(m.min_etc(), fresh.min_etc()) << "event " << event;
    ASSERT_EQ(m.max_etc(), fresh.max_etc()) << "event " << event;
  }
}

TEST(EtcMatrix, ScaleMachineRejectsBadInputUnchanged) {
  auto m = small();
  const std::uint64_t fp = m.fingerprint();
  EXPECT_THROW(m.scale_machine(2, 2.0), std::invalid_argument);
  EXPECT_THROW(m.scale_machine(0, 0.0), std::invalid_argument);
  EXPECT_THROW(m.scale_machine(0, -1.5), std::invalid_argument);
  EXPECT_THROW(m.scale_machine(0, std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  // An overflow-to-inf scale must leave the matrix untouched.
  EXPECT_THROW(m.scale_machine(0, std::numeric_limits<double>::max()),
               std::invalid_argument);
  EXPECT_EQ(m.fingerprint(), fp);
}

}  // namespace
}  // namespace pacga::etc
