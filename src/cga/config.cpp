#include "cga/config.hpp"

#include <stdexcept>

namespace pacga::cga {

const char* to_string(ReplacementPolicy p) noexcept {
  switch (p) {
    case ReplacementPolicy::kReplaceIfBetter: return "if-better";
    case ReplacementPolicy::kAlways: return "always";
  }
  return "?";
}

const char* to_string(SweepPolicy p) noexcept {
  switch (p) {
    case SweepPolicy::kLineSweep: return "line";
    case SweepPolicy::kReverseSweep: return "reverse";
    case SweepPolicy::kFixedShuffle: return "fixed-shuffle";
    case SweepPolicy::kNewShuffle: return "new-shuffle";
    case SweepPolicy::kUniformChoice: return "uniform";
  }
  return "?";
}

const char* to_string(UpdatePolicy p) noexcept {
  switch (p) {
    case UpdatePolicy::kAsynchronous: return "async";
    case UpdatePolicy::kSynchronous: return "sync";
  }
  return "?";
}

void Config::validate() const {
  if (width == 0 || height == 0)
    throw std::invalid_argument("Config: empty grid");
  auto probability = [](double p, const char* name) {
    if (!(p >= 0.0 && p <= 1.0))
      throw std::invalid_argument(std::string("Config: ") + name +
                                  " not in [0,1]");
  };
  probability(p_comb, "p_comb");
  probability(p_mut, "p_mut");
  probability(p_ls, "p_ls");
  probability(lambda, "lambda");
  if (threads == 0) throw std::invalid_argument("Config: threads == 0");
  if (threads > population_size())
    throw std::invalid_argument("Config: more threads than individuals");
  if (termination.wall_seconds <= 0.0)
    throw std::invalid_argument("Config: non-positive wall budget");
}

}  // namespace pacga::cga
