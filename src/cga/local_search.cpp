#include "cga/local_search.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <vector>

#include "cga/mutation.hpp"

namespace pacga::cga {

const char* to_string(LocalSearchKind k) noexcept {
  switch (k) {
    case LocalSearchKind::kH2LL: return "h2ll";
    case LocalSearchKind::kH2LLSteepest: return "h2ll-steepest";
    case LocalSearchKind::kTabuHop: return "tabu-hop";
    case LocalSearchKind::kNone: return "none";
  }
  return "?";
}

void apply_local_search(LocalSearchKind kind, sched::Schedule& s,
                        const H2LLParams& h2ll_params,
                        const TabuHopParams& tabu_params,
                        support::Xoshiro256& rng) {
  switch (kind) {
    case LocalSearchKind::kH2LL:
      h2ll(s, h2ll_params, rng);
      return;
    case LocalSearchKind::kH2LLSteepest:
      h2ll_steepest(s, h2ll_params);
      return;
    case LocalSearchKind::kTabuHop:
      local_tabu_hop(s, tabu_params, rng);
      return;
    case LocalSearchKind::kNone:
      return;
  }
}

void h2ll(sched::Schedule& s, const H2LLParams& params,
          support::Xoshiro256& rng) {
  const std::size_t machines = s.machines();
  if (machines < 2 || s.tasks() == 0) return;
  const std::size_t n_candidates =
      params.candidates == 0
          ? machines / 2
          : std::min(params.candidates, machines - 1);

  // Machine indices sorted ascending by completion time; reused across
  // iterations (thread-local to stay allocation-free on the hot path).
  thread_local std::vector<std::size_t> order;
  order.resize(machines);

  for (std::size_t it = 0; it < params.iterations; ++it) {
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return s.completion(a) < s.completion(b);
    });
    const std::size_t most_loaded = order.back();
    const std::size_t task = random_task_on_machine(
        s, static_cast<sched::MachineId>(most_loaded), rng);
    if (task == s.tasks()) continue;  // machine holds only ready-time load

    // Paper Alg. 4: best_score starts at the makespan; a candidate is
    // accepted only if it strictly undercuts it.
    double best_score = s.completion(most_loaded);
    std::size_t best_mac = machines;  // sentinel: no move
    for (std::size_t c = 0; c < n_candidates; ++c) {
      const std::size_t mac = order[c];
      if (mac == most_loaded) continue;
      const double new_score = s.completion(mac) + s.etc()(task, mac);
      if (new_score < best_score) {
        best_score = new_score;
        best_mac = mac;
      }
    }
    if (best_mac != machines) {
      s.move_task(task, static_cast<sched::MachineId>(best_mac));
    }
  }
}

void h2ll_steepest(sched::Schedule& s, const H2LLParams& params) {
  const std::size_t machines = s.machines();
  if (machines < 2 || s.tasks() == 0) return;
  const std::size_t n_candidates =
      params.candidates == 0 ? machines / 2
                             : std::min(params.candidates, machines - 1);

  thread_local std::vector<std::size_t> order;
  order.resize(machines);

  for (std::size_t it = 0; it < params.iterations; ++it) {
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return s.completion(a) < s.completion(b);
    });
    const std::size_t most_loaded = order.back();
    // Highest completion among machines other than the loaded one (and,
    // when the move target IS that machine, the next one down): the part
    // of the resulting makespan no single move can change.
    const std::size_t second = order[machines - 2];
    const double third_ct =
        machines >= 3 ? s.completion(order[machines - 3]) : 0.0;

    // True steepest descent on the makespan: evaluate the RESULTING
    // makespan of every (task on loaded machine, candidate) move and take
    // the minimum. This is what "steepest" must mean for the operator's
    // objective — minimizing the landing completion alone can prefer
    // moving a tiny task that barely relieves the loaded machine.
    const double current_ms = s.completion(most_loaded);
    double best_ms = current_ms;
    std::size_t best_task = s.tasks();
    std::size_t best_mac = machines;
    for (std::size_t t = 0; t < s.tasks(); ++t) {
      if (s.machine_of(t) != most_loaded) continue;
      const double src_after = current_ms - s.etc()(t, most_loaded);
      for (std::size_t c = 0; c < n_candidates; ++c) {
        const std::size_t mac = order[c];
        if (mac == most_loaded) continue;
        const double dst_after = s.completion(mac) + s.etc()(t, mac);
        const double rest = mac == second ? third_ct : s.completion(second);
        const double new_ms =
            std::max({src_after, dst_after, rest});
        if (new_ms < best_ms) {
          best_ms = new_ms;
          best_task = t;
          best_mac = mac;
        }
      }
    }
    if (best_task == s.tasks()) return;  // local optimum: converged
    s.move_task(best_task, static_cast<sched::MachineId>(best_mac));
  }
}

void local_tabu_hop(sched::Schedule& s, const TabuHopParams& params,
                    support::Xoshiro256& rng) {
  const std::size_t machines = s.machines();
  const std::size_t tasks = s.tasks();
  if (machines < 2 || tasks == 0) return;

  // Expiry iteration per task; iteration counter starts at tenure so the
  // initial zeros are all expired.
  std::vector<std::size_t> tabu_until(tasks, 0);
  sched::Schedule best = s;
  double best_makespan = best.makespan();

  for (std::size_t it = 1; it <= params.iterations; ++it) {
    const auto loaded = static_cast<sched::MachineId>(s.argmax_machine());
    // Best move of any non-tabu task currently on the makespan machine:
    // minimize the resulting pair (new target completion) — classic
    // steepest-descent step, accepted even if worsening (tabu search).
    std::size_t move_task_id = tasks;
    std::size_t move_target = machines;
    double move_score = std::numeric_limits<double>::infinity();
    for (std::size_t t = 0; t < tasks; ++t) {
      if (s.machine_of(t) != loaded) continue;
      if (tabu_until[t] > it) continue;
      for (std::size_t m = 0; m < machines; ++m) {
        if (m == loaded) continue;
        const double score = s.completion(m) + s.etc()(t, m);
        if (score < move_score) {
          move_score = score;
          move_task_id = t;
          move_target = m;
        }
      }
    }
    if (move_task_id == tasks) {
      // Everything on the loaded machine is tabu: diversify with a random
      // kick so the search does not stall.
      const std::size_t t = rng.index(tasks);
      s.move_task(t, static_cast<sched::MachineId>(rng.index(machines)));
      tabu_until[t] = it + params.tenure;
    } else {
      s.move_task(move_task_id, static_cast<sched::MachineId>(move_target));
      tabu_until[move_task_id] = it + params.tenure;
    }
    const double ms = s.makespan();
    if (ms < best_makespan) {
      best_makespan = ms;
      best = s;
    }
  }
  if (best_makespan < s.makespan()) s = best;
}

}  // namespace pacga::cga
