#include "cga/local_search.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <numeric>
#include <span>
#include <vector>

#include "cga/mutation.hpp"
#include "support/kernels.hpp"

namespace pacga::cga {

namespace kernels = support::kernels;

const char* to_string(LocalSearchKind k) noexcept {
  switch (k) {
    case LocalSearchKind::kH2LL: return "h2ll";
    case LocalSearchKind::kH2LLSteepest: return "h2ll-steepest";
    case LocalSearchKind::kTabuHop: return "tabu-hop";
    case LocalSearchKind::kNone: return "none";
  }
  return "?";
}

void apply_local_search(LocalSearchKind kind, sched::Schedule& s,
                        const H2LLParams& h2ll_params,
                        const TabuHopParams& tabu_params,
                        support::Xoshiro256& rng) {
  switch (kind) {
    case LocalSearchKind::kH2LL:
      h2ll(s, h2ll_params, rng);
      return;
    case LocalSearchKind::kH2LLSteepest:
      h2ll_steepest(s, h2ll_params);
      return;
    case LocalSearchKind::kTabuHop:
      local_tabu_hop(s, tabu_params, rng);
      return;
    case LocalSearchKind::kNone:
      return;
  }
}

namespace {

/// Fills `cand[0..k)` with the k machines of smallest (completion, index),
/// sorted ascending by machine index. O(machines) selection via
/// nth_element — this replaced H2LL's former per-iteration full sort of
/// all machine completions. Ties at the selection boundary break toward
/// the lower machine index, so the candidate set is a deterministic
/// function of the completion array (the golden replays depend on that;
/// std::sort over equal completions was not).
void least_loaded(const sched::Schedule& s, std::size_t k,
                  std::vector<std::uint32_t>& cand) {
  const std::size_t machines = s.machines();
  cand.resize(machines);
  std::iota(cand.begin(), cand.end(), std::uint32_t{0});
  const auto lighter = [&](std::uint32_t a, std::uint32_t b) {
    const double ca = s.completion(a);
    const double cb = s.completion(b);
    return ca < cb || (ca == cb && a < b);
  };
  if (k < machines) {
    std::nth_element(cand.begin(),
                     cand.begin() + static_cast<std::ptrdiff_t>(k), cand.end(),
                     lighter);
  }
  std::sort(cand.begin(), cand.begin() + static_cast<std::ptrdiff_t>(k));
}

/// Index of the most loaded machine other than `skip` (highest completion;
/// lowest index on ties). Requires at least two machines.
std::size_t argmax_machine_skip(std::span<const double> ct, std::size_t skip) {
  std::size_t best = ct.size();  // sentinel: nothing seen yet
  if (skip > 0) best = kernels::argmax(ct.data(), skip);
  if (skip + 1 < ct.size()) {
    const std::size_t hi =
        skip + 1 + kernels::argmax(ct.data() + skip + 1, ct.size() - skip - 1);
    if (best == ct.size() || ct[hi] > ct[best]) best = hi;
  }
  return best;
}

}  // namespace

void h2ll(sched::Schedule& s, const H2LLParams& params,
          support::Xoshiro256& rng) {
  const std::size_t machines = s.machines();
  if (machines < 2 || s.tasks() == 0) return;
  const std::size_t n_candidates =
      params.candidates == 0
          ? machines / 2
          : std::min(params.candidates, machines - 1);

  // Candidate machine indices; reused across iterations (thread-local to
  // stay allocation-free on the hot path).
  thread_local std::vector<std::uint32_t> cand;

  for (std::size_t it = 0; it < params.iterations; ++it) {
    const std::size_t most_loaded =
        kernels::argmax(s.completions().data(), machines);
    const std::size_t task = random_task_on_machine(
        s, static_cast<sched::MachineId>(most_loaded), rng);
    if (task == s.tasks()) continue;  // machine holds only ready-time load

    least_loaded(s, n_candidates, cand);

    // Paper Alg. 4: best_score starts at the makespan; a candidate is
    // accepted only if it strictly undercuts it. Candidates are visited in
    // ascending machine index, so score ties keep the lowest machine.
    double best_score = s.completion(most_loaded);
    std::size_t best_mac = machines;  // sentinel: no move
    for (std::size_t c = 0; c < n_candidates; ++c) {
      const std::size_t mac = cand[c];
      if (mac == most_loaded) continue;
      const double new_score = s.completion(mac) + s.etc()(task, mac);
      if (new_score < best_score) {
        best_score = new_score;
        best_mac = mac;
      }
    }
    if (best_mac != machines) {
      s.move_task(task, static_cast<sched::MachineId>(best_mac));
    }
  }
}

void h2ll_steepest(sched::Schedule& s, const H2LLParams& params) {
  const std::size_t machines = s.machines();
  if (machines < 2 || s.tasks() == 0) return;
  const std::size_t n_candidates =
      params.candidates == 0 ? machines / 2
                             : std::min(params.candidates, machines - 1);

  thread_local std::vector<std::uint32_t> cand;

  for (std::size_t it = 0; it < params.iterations; ++it) {
    const auto ct = s.completions();
    const std::size_t most_loaded = kernels::argmax(ct.data(), machines);
    // Highest completion among machines other than the loaded one (and,
    // when the move target IS that machine, the next one down): the part
    // of the resulting makespan no single move can change. Top-3 kernel
    // scans instead of the former full sort.
    const std::size_t second = argmax_machine_skip(ct, most_loaded);
    double third_ct = 0.0;
    if (machines >= 3) {
      third_ct = -std::numeric_limits<double>::infinity();
      for (std::size_t m = 0; m < machines; ++m) {
        if (m == most_loaded || m == second) continue;
        third_ct = std::max(third_ct, ct[m]);
      }
    }

    least_loaded(s, n_candidates, cand);

    // True steepest descent on the makespan: evaluate the RESULTING
    // makespan of every (task on loaded machine, candidate) move and take
    // the minimum. This is what "steepest" must mean for the operator's
    // objective — minimizing the landing completion alone can prefer
    // moving a tiny task that barely relieves the loaded machine.
    const double current_ms = s.completion(most_loaded);
    double best_ms = current_ms;
    std::size_t best_task = s.tasks();
    std::size_t best_mac = machines;
    for (std::size_t t = 0; t < s.tasks(); ++t) {
      if (s.machine_of(t) != most_loaded) continue;
      const double src_after = current_ms - s.etc()(t, most_loaded);
      for (std::size_t c = 0; c < n_candidates; ++c) {
        const std::size_t mac = cand[c];
        if (mac == most_loaded) continue;
        const double dst_after = s.completion(mac) + s.etc()(t, mac);
        const double rest = mac == second ? third_ct : s.completion(second);
        const double new_ms =
            std::max({src_after, dst_after, rest});
        if (new_ms < best_ms) {
          best_ms = new_ms;
          best_task = t;
          best_mac = mac;
        }
      }
    }
    if (best_task == s.tasks()) return;  // local optimum: converged
    s.move_task(best_task, static_cast<sched::MachineId>(best_mac));
  }
}

void local_tabu_hop(sched::Schedule& s, const TabuHopParams& params,
                    support::Xoshiro256& rng) {
  const std::size_t machines = s.machines();
  const std::size_t tasks = s.tasks();
  if (machines < 2 || tasks == 0) return;

  // Expiry iteration per task; iteration counter starts at tenure so the
  // initial zeros are all expired.
  std::vector<std::size_t> tabu_until(tasks, 0);
  sched::Schedule best = s;
  double best_makespan = best.makespan();

  for (std::size_t it = 1; it <= params.iterations; ++it) {
    const std::size_t loaded_idx = s.argmax_machine();
    const auto loaded = static_cast<sched::MachineId>(loaded_idx);
    // Best move of any non-tabu task currently on the makespan machine:
    // minimize the resulting pair (new target completion) — classic
    // steepest-descent step, accepted even if worsening (tabu search).
    // Per-task inner loop is one fused skip-scan over (completions, ETC
    // row); the skip-scan's lowest-index tie-break matches the old loop.
    std::size_t move_task_id = tasks;
    std::size_t move_target = machines;
    double move_score = std::numeric_limits<double>::infinity();
    for (std::size_t t = 0; t < tasks; ++t) {
      if (s.machine_of(t) != loaded) continue;
      if (tabu_until[t] > it) continue;
      const auto cand = kernels::min_completion_index_skip(
          s.completions().data(), s.etc().of_task(t).data(), machines,
          loaded_idx);
      if (cand.value < move_score) {
        move_score = cand.value;
        move_task_id = t;
        move_target = cand.index;
      }
    }
    if (move_task_id == tasks) {
      // Everything on the loaded machine is tabu: diversify with a random
      // kick so the search does not stall.
      const std::size_t t = rng.index(tasks);
      s.move_task(t, static_cast<sched::MachineId>(rng.index(machines)));
      tabu_until[t] = it + params.tenure;
    } else {
      s.move_task(move_task_id, static_cast<sched::MachineId>(move_target));
      tabu_until[move_task_id] = it + params.tenure;
    }
    const double ms = s.makespan();
    if (ms < best_makespan) {
      best_makespan = ms;
      best = s;
    }
  }
  if (best_makespan < s.makespan()) s = best;
}

}  // namespace pacga::cga
