// The breeding step (paper Algorithm 3 lines 3-8, minus replacement) as a
// reusable, allocation-free component.
//
// The historical loops heap-allocated two parent Individual copies plus a
// fresh offspring Schedule on EVERY evaluation — 4+ vector allocations on
// the hottest path in the system. A Breeder owns all of that storage:
// parent-copy buffers (locked mode), the offspring buffer, and the
// neighborhood/fitness scratch. After the first step sizes the vectors
// (warm-up), a steady-state select -> crossover -> mutate -> local-search
// -> evaluate sequence performs ZERO heap allocations (verified by
// test_breeder's operator-new counter; kTabuHop and the flowtime-based
// objectives are the documented exceptions — they allocate internally).
//
// One Breeder per thread: it is as thread-private as the RNG stream it is
// used with.
// The synchronous engines go one step further: offspring are bred with
// evaluation DEFERRED (breed_*_into_deferred) and a whole sweep's staged
// block is then evaluated through one batched kernel dispatch
// (evaluate_batch) — same fitness values bit for bit, one indirect call
// per sweep instead of one per child. Deferral is trajectory-neutral:
// evaluation draws no RNG.
#pragma once

#include "cga/config.hpp"
#include "cga/population.hpp"
#include "support/rng.hpp"

namespace pacga::cga {

class Breeder {
 public:
  /// Sizes every internal buffer for `etc`'s shape. `config` must outlive
  /// the breeder (the engines own both).
  Breeder(const etc::EtcMatrix& etc, const Config& config);

  /// One breeding step on cell `cell`, reading the population
  /// UNSYNCHRONIZED (sequential and cellwise engines; commits must be
  /// quiescent). Writes the evaluated offspring into `out`, which must not
  /// alias a population cell and must belong to the same ETC instance
  /// (any same-shape Individual; typically a preallocated buffer).
  void breed_into(const Population& pop, std::size_t cell,
                  support::Xoshiro256& rng, Individual& out);

  /// Same step under the PA-CGA locking discipline (paper §3.2): neighbor
  /// fitness snapshot and parent copies are taken under per-cell READ
  /// locks, one at a time, into the breeder's private buffers; variation
  /// and evaluation run outside all locks.
  void breed_locked_into(Population& pop, std::size_t cell,
                         support::Xoshiro256& rng, Individual& out);

  /// breed_into with the final evaluation DEFERRED: `out.fitness` is left
  /// stale; the caller owes it an evaluate_batch (or sched::evaluate)
  /// before the offspring competes. Identical RNG draw order to
  /// breed_into — evaluation draws nothing — so deferral never changes a
  /// trajectory.
  void breed_into_deferred(const Population& pop, std::size_t cell,
                           support::Xoshiro256& rng, Individual& out);

  /// Deferred-evaluation form of breed_locked_into (same contract).
  void breed_locked_into_deferred(Population& pop, std::size_t cell,
                                  support::Xoshiro256& rng, Individual& out);

  /// Evaluates `count` deferred offspring in one batched kernel dispatch
  /// (kMakespan: a single kernels::batch_max sweep over the completion
  /// rows; other objectives evaluate per child — the documented allocating
  /// exceptions). Fitness values are bit-identical to per-child
  /// evaluation. The first call at a new high-water `count` sizes the
  /// row-pointer/output scratch (warm-up); steady state allocates nothing.
  void evaluate_batch(Individual* staged, std::size_t count);

  /// Convenience forms returning the internal offspring buffer; the
  /// reference is valid until the next breed call.
  const Individual& breed(const Population& pop, std::size_t cell,
                          support::Xoshiro256& rng) {
    breed_into(pop, cell, rng, offspring_);
    return offspring_;
  }
  const Individual& breed_locked(Population& pop, std::size_t cell,
                                 support::Xoshiro256& rng) {
    breed_locked_into(pop, cell, rng, offspring_);
    return offspring_;
  }

  /// Allocation-free replacement: copies `offspring` into `cell`'s
  /// existing storage instead of moving vectors out of it (a move would
  /// leave the source to reallocate on its next use).
  static void replace(Individual& cell, const Individual& offspring) {
    cell.schedule.assign_from(offspring.schedule);
    cell.fitness = offspring.fitness;
  }

 private:
  const Config* config_;
  Individual parent_b_;   ///< locked-mode parent snapshot
  Individual offspring_;  ///< internal offspring buffer
  std::vector<std::size_t> neigh_;
  std::vector<double> fit_;
  std::vector<const double*> batch_rows_;  ///< completion-row pointers
  std::vector<double> batch_fit_;          ///< batched makespans
};

namespace detail {

/// Shared variation tail: `child` holds a copy of parent a on entry; the
/// call applies recombination (against `parent_b`), mutation, and local
/// search per `config`. `child.fitness` is NOT updated. The RNG draw order
/// is identical to the historical engine loops, so refactored engines
/// reproduce the same trajectories seed for seed.
void vary(Individual& child, const sched::Schedule& parent_b,
          const Config& config, support::Xoshiro256& rng);

/// vary() plus the final evaluation into `child.fitness`.
void vary_and_evaluate(Individual& child, const sched::Schedule& parent_b,
                       const Config& config, support::Xoshiro256& rng);

}  // namespace detail

}  // namespace pacga::cga
