#include "cga/loop.hpp"

#include <numeric>
#include <shared_mutex>

namespace pacga::cga {

void fill_sweep_order(SweepPolicy policy, std::size_t n,
                      std::vector<std::size_t>& order,
                      support::Xoshiro256& rng) {
  order.resize(n);
  switch (policy) {
    case SweepPolicy::kLineSweep:
      std::iota(order.begin(), order.end(), std::size_t{0});
      break;
    case SweepPolicy::kReverseSweep:
      for (std::size_t i = 0; i < n; ++i) order[i] = n - 1 - i;
      break;
    case SweepPolicy::kFixedShuffle:
    case SweepPolicy::kNewShuffle:
      std::iota(order.begin(), order.end(), std::size_t{0});
      rng.shuffle(order);
      break;
    case SweepPolicy::kUniformChoice:
      for (auto& i : order) i = rng.index(n);
      break;
  }
}

SweepOrderCache::SweepOrderCache(SweepPolicy policy, std::size_t n,
                                 support::Xoshiro256& rng)
    : policy_(policy) {
  fill_sweep_order(policy_, n, order_, rng);
}

void SweepOrderCache::fill(support::Xoshiro256& rng) {
  fill_sweep_order(policy_, order_.size(), order_, rng);
}

const std::vector<std::size_t>& SweepOrderCache::next_sweep(
    support::Xoshiro256& rng) {
  // The historical loops regenerated these two policies at the TOP of every
  // generation (discarding the construction-time order's content but not
  // its RNG draws); keeping that shape preserves every pinned trajectory.
  if (policy_ == SweepPolicy::kNewShuffle ||
      policy_ == SweepPolicy::kUniformChoice) {
    fill_sweep_order(policy_, order_.size(), order_, rng);
  }
  return order_;
}

std::size_t apply_warm_seed(Population& pop, const etc::EtcMatrix& etc,
                            const Config& config) {
  if (config.warm_seed.empty()) return pop.size();
  const std::size_t cell = warm_seed_cell(config.seed_min_min, pop.size());
  pop.seed_cell(cell, etc, config.warm_seed, config.objective, config.lambda);
  return cell;
}

void TraceRecorder::sample(std::uint64_t generation, double elapsed_seconds,
                           const Population& pop) {
  if (!enabled_) return;
  double sum = 0.0;
  double best = pop.at(0).fitness;
  for (std::size_t i = 0; i < pop.size(); ++i) {
    const double f = pop.at(i).fitness;
    sum += f;
    if (f < best) best = f;
  }
  trace_.push_back({generation, elapsed_seconds, best,
                    sum / static_cast<double>(pop.size())});
}

void TraceRecorder::sample(std::uint64_t generation, double elapsed_seconds,
                           const std::vector<Individual>& pop) {
  if (!enabled_) return;
  double sum = 0.0;
  double best = pop.at(0).fitness;
  for (const Individual& ind : pop) {
    sum += ind.fitness;
    if (ind.fitness < best) best = ind.fitness;
  }
  trace_.push_back({generation, elapsed_seconds, best,
                    sum / static_cast<double>(pop.size())});
}

void TraceRecorder::sample_locked(std::uint64_t generation,
                                  double elapsed_seconds, Population& pop) {
  if (!enabled_) return;
  double sum = 0.0;
  double best = 0.0;
  bool first = true;
  for (std::size_t i = 0; i < pop.size(); ++i) {
    std::shared_lock lock(pop.lock(i));
    const double f = pop.at(i).fitness;
    sum += f;
    if (first || f < best) best = f;
    first = false;
  }
  trace_.push_back({generation, elapsed_seconds, best,
                    sum / static_cast<double>(pop.size())});
}

}  // namespace pacga::cga
