#include "cga/diversity.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/stats.hpp"

namespace pacga::cga {

namespace {

/// Entropy and fitness terms shared by the exact and sampled variants.
void fill_entropy_and_fitness(const Population& pop, DiversityStats& d) {
  const std::size_t n = pop.size();
  if (n == 0) return;
  const auto& first = pop.at(0).schedule;
  const std::size_t tasks = first.tasks();
  const std::size_t machines = first.machines();

  // Per-locus machine histogram -> Shannon entropy, averaged over loci.
  std::vector<std::size_t> histogram(machines);
  double entropy_sum = 0.0;
  const double log_machines = std::log2(static_cast<double>(machines));
  for (std::size_t t = 0; t < tasks; ++t) {
    std::fill(histogram.begin(), histogram.end(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      ++histogram[pop.at(i).schedule.machine_of(t)];
    }
    double h = 0.0;
    for (std::size_t count : histogram) {
      if (count == 0) continue;
      const double p = static_cast<double>(count) / static_cast<double>(n);
      h -= p * std::log2(p);
    }
    entropy_sum += log_machines > 0.0 ? h / log_machines : 0.0;
  }
  d.gene_entropy = entropy_sum / static_cast<double>(tasks);

  support::RunningStats fit;
  for (std::size_t i = 0; i < n; ++i) fit.add(pop.at(i).fitness);
  d.fitness_stddev = fit.stddev();
  d.fitness_range = fit.max() - fit.min();
}

}  // namespace

DiversityStats population_diversity(const Population& pop) {
  DiversityStats d;
  const std::size_t n = pop.size();
  if (n == 0) return d;
  fill_entropy_and_fitness(pop, d);

  const std::size_t tasks = pop.at(0).schedule.tasks();
  if (n > 1 && tasks > 0) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        total += static_cast<double>(
            pop.at(i).schedule.hamming_distance(pop.at(j).schedule));
      }
    }
    const double pairs = static_cast<double>(n) * (n - 1) / 2.0;
    d.mean_pairwise_hamming = total / pairs / static_cast<double>(tasks);
  }
  return d;
}

DiversityStats population_diversity_sampled(const Population& pop,
                                            std::size_t pairs,
                                            support::Xoshiro256& rng) {
  DiversityStats d;
  const std::size_t n = pop.size();
  if (n == 0) return d;
  fill_entropy_and_fitness(pop, d);

  const std::size_t tasks = pop.at(0).schedule.tasks();
  if (n > 1 && tasks > 0 && pairs > 0) {
    double total = 0.0;
    for (std::size_t k = 0; k < pairs; ++k) {
      const std::size_t i = rng.index(n);
      std::size_t j = rng.index(n - 1);
      if (j >= i) ++j;
      total += static_cast<double>(
          pop.at(i).schedule.hamming_distance(pop.at(j).schedule));
    }
    d.mean_pairwise_hamming =
        total / static_cast<double>(pairs) / static_cast<double>(tasks);
  }
  return d;
}

double proportion_at_best(const Population& pop, double tol) {
  const std::size_t n = pop.size();
  if (n == 0) return 0.0;
  double best = pop.at(0).fitness;
  for (std::size_t i = 1; i < n; ++i) best = std::min(best, pop.at(i).fitness);
  std::size_t hits = 0;
  const double bound = best + tol * std::max(1.0, std::abs(best));
  for (std::size_t i = 0; i < n; ++i) {
    hits += (pop.at(i).fitness <= bound);
  }
  return static_cast<double>(hits) / static_cast<double>(n);
}

}  // namespace pacga::cga
