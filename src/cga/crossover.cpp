#include "cga/crossover.hpp"

#include <cassert>

namespace pacga::cga {

const char* to_string(CrossoverKind k) noexcept {
  switch (k) {
    case CrossoverKind::kOnePoint: return "opx";
    case CrossoverKind::kTwoPoint: return "tpx";
    case CrossoverKind::kUniform: return "ux";
  }
  return "?";
}

sched::Schedule one_point_crossover(const sched::Schedule& a,
                                    const sched::Schedule& b,
                                    support::Xoshiro256& rng) {
  assert(a.tasks() == b.tasks());
  const std::size_t n = a.tasks();
  sched::Schedule child = a;
  if (n < 2) return child;
  // Cut in [1, n-1] so both parents contribute at least one gene.
  const std::size_t cut = 1 + rng.index(n - 1);
  child.copy_segment(b, cut, n);
  return child;
}

sched::Schedule two_point_crossover(const sched::Schedule& a,
                                    const sched::Schedule& b,
                                    support::Xoshiro256& rng) {
  assert(a.tasks() == b.tasks());
  const std::size_t n = a.tasks();
  sched::Schedule child = a;
  if (n < 2) return child;
  std::size_t lo = rng.index(n);
  std::size_t hi = rng.index(n);
  if (lo > hi) std::swap(lo, hi);
  if (lo == hi) hi = lo + 1;  // degenerate draw: still exchange one gene
  child.copy_segment(b, lo, hi);
  return child;
}

sched::Schedule uniform_crossover(const sched::Schedule& a,
                                  const sched::Schedule& b,
                                  support::Xoshiro256& rng) {
  assert(a.tasks() == b.tasks());
  sched::Schedule child = a;
  for (std::size_t t = 0; t < a.tasks(); ++t) {
    if (rng.bernoulli(0.5)) child.move_task(t, b.machine_of(t));
  }
  return child;
}

sched::Schedule crossover(CrossoverKind kind, const sched::Schedule& a,
                          const sched::Schedule& b, support::Xoshiro256& rng) {
  switch (kind) {
    case CrossoverKind::kOnePoint: return one_point_crossover(a, b, rng);
    case CrossoverKind::kTwoPoint: return two_point_crossover(a, b, rng);
    case CrossoverKind::kUniform: return uniform_crossover(a, b, rng);
  }
  return one_point_crossover(a, b, rng);
}

}  // namespace pacga::cga
