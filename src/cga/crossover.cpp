#include "cga/crossover.hpp"

#include <cassert>

namespace pacga::cga {

const char* to_string(CrossoverKind k) noexcept {
  switch (k) {
    case CrossoverKind::kOnePoint: return "opx";
    case CrossoverKind::kTwoPoint: return "tpx";
    case CrossoverKind::kUniform: return "ux";
  }
  return "?";
}

namespace {

// The in-place kernels assume `child` already equals parent a.

void one_point_into(sched::Schedule& child, const sched::Schedule& b,
                    support::Xoshiro256& rng) {
  const std::size_t n = child.tasks();
  if (n < 2) return;
  // Cut in [1, n-1] so both parents contribute at least one gene.
  const std::size_t cut = 1 + rng.index(n - 1);
  child.copy_segment(b, cut, n);
}

void two_point_into(sched::Schedule& child, const sched::Schedule& b,
                    support::Xoshiro256& rng) {
  const std::size_t n = child.tasks();
  if (n < 2) return;
  std::size_t lo = rng.index(n);
  std::size_t hi = rng.index(n);
  if (lo > hi) std::swap(lo, hi);
  if (lo == hi) hi = lo + 1;  // degenerate draw: still exchange one gene
  child.copy_segment(b, lo, hi);
}

void uniform_into(sched::Schedule& child, const sched::Schedule& b,
                  support::Xoshiro256& rng) {
  for (std::size_t t = 0; t < child.tasks(); ++t) {
    if (rng.bernoulli(0.5)) child.move_task(t, b.machine_of(t));
  }
}

}  // namespace

void crossover_into(CrossoverKind kind, sched::Schedule& child,
                    const sched::Schedule& b, support::Xoshiro256& rng) {
  assert(child.tasks() == b.tasks());
  switch (kind) {
    case CrossoverKind::kOnePoint: return one_point_into(child, b, rng);
    case CrossoverKind::kTwoPoint: return two_point_into(child, b, rng);
    case CrossoverKind::kUniform: return uniform_into(child, b, rng);
  }
}

sched::Schedule one_point_crossover(const sched::Schedule& a,
                                    const sched::Schedule& b,
                                    support::Xoshiro256& rng) {
  assert(a.tasks() == b.tasks());
  sched::Schedule child = a;
  one_point_into(child, b, rng);
  return child;
}

sched::Schedule two_point_crossover(const sched::Schedule& a,
                                    const sched::Schedule& b,
                                    support::Xoshiro256& rng) {
  assert(a.tasks() == b.tasks());
  sched::Schedule child = a;
  two_point_into(child, b, rng);
  return child;
}

sched::Schedule uniform_crossover(const sched::Schedule& a,
                                  const sched::Schedule& b,
                                  support::Xoshiro256& rng) {
  assert(a.tasks() == b.tasks());
  sched::Schedule child = a;
  uniform_into(child, b, rng);
  return child;
}

sched::Schedule crossover(CrossoverKind kind, const sched::Schedule& a,
                          const sched::Schedule& b, support::Xoshiro256& rng) {
  sched::Schedule child = a;
  crossover_into(kind, child, b, rng);
  return child;
}

}  // namespace pacga::cga
