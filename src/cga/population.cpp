#include "cga/population.hpp"

#include <stdexcept>

#include "heuristics/minmin.hpp"

namespace pacga::cga {

Population::Population(const etc::EtcMatrix& etc, Grid grid,
                       support::Xoshiro256& rng, bool seed_min_min,
                       sched::Objective objective, double lambda)
    : grid_(grid) {
  cells_.reserve(grid_.size());
  for (std::size_t i = 0; i < grid_.size(); ++i) {
    cells_.push_back(Individual::evaluated(sched::Schedule::random(etc, rng),
                                           objective, lambda));
  }
  if (seed_min_min && !cells_.empty()) {
    cells_[0] = Individual::evaluated(heur::min_min(etc), objective, lambda);
  }
  locks_ = std::make_unique<support::Padded<std::shared_mutex>[]>(grid_.size());
}

void Population::reseed(const etc::EtcMatrix& etc, support::Xoshiro256& rng,
                        bool seed_min_min, sched::Objective objective,
                        double lambda) {
  if (cells_.empty()) return;
  if (etc.tasks() != cells_.front().schedule.tasks() ||
      etc.machines() != cells_.front().schedule.machines())
    throw std::invalid_argument("Population::reseed: shape mismatch");
  for (auto& cell : cells_) {
    cell.schedule.randomize_from(etc, rng);
    cell.fitness = sched::evaluate(cell.schedule, objective, lambda);
  }
  if (seed_min_min) {
    const sched::Schedule seeded = heur::min_min(etc);
    cells_[0].schedule.adopt(etc, seeded.assignment());
    cells_[0].fitness = sched::evaluate(cells_[0].schedule, objective, lambda);
  }
}

void Population::seed_cell(std::size_t i, const etc::EtcMatrix& etc,
                           std::span<const sched::MachineId> assignment,
                           sched::Objective objective, double lambda) {
  if (i >= cells_.size())
    throw std::invalid_argument("Population::seed_cell: cell out of range");
  cells_[i].schedule.adopt(etc, assignment);
  cells_[i].fitness = sched::evaluate(cells_[i].schedule, objective, lambda);
}

std::size_t Population::best_index() const noexcept {
  std::size_t best = 0;
  for (std::size_t i = 1; i < cells_.size(); ++i) {
    if (cells_[i].fitness < cells_[best].fitness) best = i;
  }
  return best;
}

double Population::mean_fitness() const noexcept {
  double sum = 0.0;
  for (const auto& c : cells_) sum += c.fitness;
  return cells_.empty() ? 0.0 : sum / static_cast<double>(cells_.size());
}

}  // namespace pacga::cga
