// Parent selection within a neighborhood. The paper selects the best two
// neighbors ("best 2", Table 1); tournament and roulette are the standard
// alternatives kept for ablations.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "support/rng.hpp"

namespace pacga::cga {

enum class SelectionKind {
  kBestTwo,     ///< the two lowest-fitness cells of the neighborhood
  kTournament,  ///< two independent binary tournaments (distinct winners)
  kRoulette,    ///< fitness-proportional on inverted fitness, two draws
  kRandomTwo,   ///< two distinct uniform picks (control baseline)
};

const char* to_string(SelectionKind k) noexcept;

/// Selects two parent positions out of a neighborhood.
///
/// `neighborhood` holds cell indices (self first) and `fitness[i]` is the
/// fitness of `neighborhood[i]` — the caller snapshots fitnesses under its
/// locking discipline before calling, so selection itself is pure.
/// Returns indices INTO `neighborhood` (not cell ids), first <= second by
/// fitness where the kind defines an order. The two picks are distinct
/// positions unless the neighborhood has a single cell.
std::pair<std::size_t, std::size_t> select_parents(
    SelectionKind kind, std::span<const double> fitness,
    support::Xoshiro256& rng);

}  // namespace pacga::cga
