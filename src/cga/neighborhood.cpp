#include "cga/neighborhood.hpp"

namespace pacga::cga {

namespace {

constexpr Offset kL5[] = {{0, 0}, {1, 0}, {-1, 0}, {0, 1}, {0, -1}};
constexpr Offset kC9[] = {{0, 0},  {1, 0},  {-1, 0}, {0, 1},  {0, -1},
                          {1, 1},  {1, -1}, {-1, 1}, {-1, -1}};
constexpr Offset kL9[] = {{0, 0}, {1, 0},  {-1, 0}, {0, 1},  {0, -1},
                          {2, 0}, {-2, 0}, {0, 2},  {0, -2}};
constexpr Offset kC13[] = {{0, 0},  {1, 0},  {-1, 0}, {0, 1},  {0, -1},
                           {1, 1},  {1, -1}, {-1, 1}, {-1, -1},
                           {2, 0},  {-2, 0}, {0, 2},  {0, -2}};

}  // namespace

std::span<const Offset> offsets(NeighborhoodShape shape) noexcept {
  switch (shape) {
    case NeighborhoodShape::kLinear5: return kL5;
    case NeighborhoodShape::kCompact9: return kC9;
    case NeighborhoodShape::kLinear9: return kL9;
    case NeighborhoodShape::kCompact13: return kC13;
  }
  return kL5;
}

std::size_t shape_size(NeighborhoodShape shape) noexcept {
  return offsets(shape).size();
}

const char* to_string(NeighborhoodShape shape) noexcept {
  switch (shape) {
    case NeighborhoodShape::kLinear5: return "L5";
    case NeighborhoodShape::kCompact9: return "C9";
    case NeighborhoodShape::kLinear9: return "L9";
    case NeighborhoodShape::kCompact13: return "C13";
  }
  return "?";
}

void neighborhood_of(const Grid& grid, std::size_t center,
                     NeighborhoodShape shape, std::vector<std::size_t>& out) {
  out.clear();
  const Cell c = grid.cell_of(center);
  for (const Offset& o : offsets(shape)) {
    out.push_back(grid.index_of(grid.wrap(c, o.dx, o.dy)));
  }
}

}  // namespace pacga::cga
