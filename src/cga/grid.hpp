// Toroidal 2-D grid geometry of the cellular population, plus the
// contiguous row-major block partition used by the parallel engine
// (paper §3.2, Figure 2).
#pragma once

#include <cstddef>
#include <vector>

namespace pacga::cga {

/// Cell coordinate on the torus.
struct Cell {
  std::size_t x = 0;  ///< column
  std::size_t y = 0;  ///< row

  bool operator==(const Cell&) const = default;
};

/// Immutable grid geometry: linear index <-> (x, y) mapping with toroidal
/// wrap-around. Linear order is row-major ("the successor of an individual
/// is its right neighbor; we move to the next row at the end of a row").
class Grid {
 public:
  Grid(std::size_t width, std::size_t height);

  std::size_t width() const noexcept { return width_; }
  std::size_t height() const noexcept { return height_; }
  std::size_t size() const noexcept { return width_ * height_; }

  std::size_t index_of(Cell c) const noexcept { return c.y * width_ + c.x; }
  Cell cell_of(std::size_t index) const noexcept {
    return {index % width_, index / width_};
  }

  /// Toroidal displacement: moves (dx, dy) from `c` with wrap-around.
  Cell wrap(Cell c, std::ptrdiff_t dx, std::ptrdiff_t dy) const noexcept;

  /// Manhattan distance on the torus (shortest way around).
  std::size_t manhattan(Cell a, Cell b) const noexcept;

 private:
  std::size_t width_;
  std::size_t height_;
};

/// One thread's slice of the population: the half-open linear index range
/// [begin, end).
struct Block {
  std::size_t begin = 0;
  std::size_t end = 0;

  std::size_t size() const noexcept { return end - begin; }
  bool contains(std::size_t i) const noexcept { return i >= begin && i < end; }
};

/// Splits `population_size` individuals into `threads` contiguous blocks of
/// near-equal size (the first `population_size % threads` blocks get one
/// extra individual). Every index belongs to exactly one block.
std::vector<Block> partition_blocks(std::size_t population_size,
                                    std::size_t threads);

}  // namespace pacga::cga
