// The shared engine-loop core. Every evolution loop in the library
// (cga::run_sequential, par::run_cellwise, par::run_parallel sync+async,
// and the GA baselines) is assembled from these pieces instead of
// re-implementing sweep ordering, best tracking, termination, and tracing:
//
//   * SweepOrderCache       — the visiting order, regenerated in place
//                             (no per-generation allocation);
//   * TerminationController — wall clock + generation + evaluation budgets
//                             behind one verdict, checked at the paper's
//                             per-block-sweep granularity;
//   * BestTracker           — best-ever individual, updated into
//                             preallocated storage (no alloc on improve);
//   * TraceRecorder         — the Figure 6 per-generation samples;
//   * GenerationObserver    — user hook after every committed generation
//                             (checkpointing, streaming stats, early UI).
//
// The run_sweep_loop driver owns the loop skeleton; engines supply two
// lambdas (per-cell step, end-of-sweep commit) that close over their own
// synchronization discipline.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "cga/config.hpp"
#include "cga/population.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

namespace pacga::cga {

/// Cached cell-visiting order for one block (or the whole population).
/// Construction draws from `rng` exactly like the historical
/// make_sweep_order call, and next_sweep() refreshes the order IN PLACE for
/// the policies that need a fresh one per generation — the buffer is never
/// reallocated.
class SweepOrderCache {
 public:
  SweepOrderCache(SweepPolicy policy, std::size_t n, support::Xoshiro256& rng);

  /// Order for the upcoming sweep (regenerates for kNewShuffle /
  /// kUniformChoice; stable reference otherwise).
  const std::vector<std::size_t>& next_sweep(support::Xoshiro256& rng);

  /// Re-arms the cache for a NEW run over the same population size:
  /// regenerates the initial order in place from `rng`, drawing exactly as
  /// construction does. Warm-solver arenas call this once per job instead
  /// of reconstructing the cache (the buffer is never reallocated).
  void reset(support::Xoshiro256& rng) { fill(rng); }

  const std::vector<std::size_t>& order() const noexcept { return order_; }

 private:
  void fill(support::Xoshiro256& rng);

  SweepPolicy policy_;
  std::vector<std::size_t> order_;
};

/// In-place form of the historical detail::make_sweep_order: overwrites
/// `order` (resized to `n`) with the visiting order of one sweep.
void fill_sweep_order(SweepPolicy policy, std::size_t n,
                      std::vector<std::size_t>& order,
                      support::Xoshiro256& rng);

/// One place that answers "is this run over?". Owns the wall-clock deadline,
/// so constructing the controller starts the run's clock. All checks are
/// const — a single controller is safely shared by every worker thread.
class TerminationController {
 public:
  explicit TerminationController(const Termination& limits)
      : limits_(limits), deadline_(limits.wall_seconds) {}

  /// Installs an external stop flag (job cancellation, service shutdown).
  /// The flag is polled at the same per-block-sweep granularity as the
  /// budgets, so a raised flag ends the run within one generation. The
  /// flag must outlive the controller; pass nullptr to detach.
  void bind_stop_flag(const std::atomic<bool>* stop) noexcept { stop_ = stop; }

  /// True when a bound stop flag has been raised.
  bool externally_stopped() const noexcept {
    return stop_ != nullptr && stop_->load(std::memory_order_relaxed);
  }

  /// Fine-grained check used where the historical loops stopped mid-sweep.
  bool evaluations_exhausted(std::uint64_t evaluations) const noexcept {
    return evaluations >= limits_.max_evaluations;
  }

  /// The paper's per-block-sweep verdict: wall clock OR generation budget
  /// OR (global) evaluation budget OR an external stop request.
  bool sweep_done(std::uint64_t generations,
                  std::uint64_t evaluations) const noexcept {
    return deadline_.expired() || generations >= limits_.max_generations ||
           evaluations >= limits_.max_evaluations || externally_stopped();
  }

  double elapsed_seconds() const noexcept {
    return deadline_.elapsed_seconds();
  }
  const Termination& limits() const noexcept { return limits_; }

 private:
  Termination limits_;
  support::Deadline deadline_;
  const std::atomic<bool>* stop_ = nullptr;
};

/// Best-ever individual of a run (or of one worker). observe() copies an
/// improving candidate into preallocated storage, so tracking is free of
/// heap traffic on the steady-state path.
class BestTracker {
 public:
  explicit BestTracker(const Individual& seed) : best_(seed) {}

  /// Re-arms the tracker for a new run, copying `seed` into the EXISTING
  /// storage — alloc-free when the shapes match. The warm-solver arenas
  /// keep one tracker alive across jobs instead of reconstructing it.
  void reset(const Individual& seed) {
    best_.schedule.assign_from(seed.schedule);
    best_.fitness = seed.fitness;
  }

  void observe(const Individual& candidate) {
    if (candidate.fitness < best_.fitness) {
      best_.schedule.assign_from(candidate.schedule);
      best_.fitness = candidate.fitness;
    }
  }

  /// Unsynchronized scan — call only when no writer is active.
  void observe_population(const Population& pop) {
    for (std::size_t i = 0; i < pop.size(); ++i) observe(pop.at(i));
  }

  const Individual& best() const noexcept { return best_; }
  double fitness() const noexcept { return best_.fitness; }

  /// Moves the best individual out (end of run).
  Individual take() { return std::move(best_); }

 private:
  Individual best_;
};

/// Per-generation TracePoint collection (Figure 6 raw data). Disabled
/// recorders are free: every call is a branch on one bool.
class TraceRecorder {
 public:
  explicit TraceRecorder(bool enabled) : enabled_(enabled) {}

  bool enabled() const noexcept { return enabled_; }

  /// Whole-population sample, unsynchronized (sequential engines).
  void sample(std::uint64_t generation, double elapsed_seconds,
              const Population& pop);

  /// Same, over a flat population (panmictic baselines).
  void sample(std::uint64_t generation, double elapsed_seconds,
              const std::vector<Individual>& pop);

  /// Whole-population sample under per-cell read locks (parallel engines;
  /// the lock discipline matches the historical sample_trace).
  void sample_locked(std::uint64_t generation, double elapsed_seconds,
                     Population& pop);

  void push(const TracePoint& p) {
    if (enabled_) trace_.push_back(p);
  }

  std::vector<TracePoint> take() { return std::move(trace_); }

 private:
  bool enabled_;
  std::vector<TracePoint> trace_;
};

/// The cell a warm seed occupies: cell 1 when Min-min seeding holds cell 0
/// (so both survive into the initial population), cell 0 otherwise. One
/// shared answer to "where does the seed live" for every engine and the
/// warm solver.
inline constexpr std::size_t warm_seed_cell(bool seed_min_min,
                                            std::size_t pop_size) noexcept {
  return seed_min_min && pop_size > 1 ? 1 : 0;
}

/// Injects config.warm_seed into a freshly initialized population (no-op
/// when the seed is empty): the designated cell adopts the assignment in
/// place (Population::seed_cell — zero allocations) while every other cell
/// keeps its random/Min-min initialization. Draws no RNG, so seeding never
/// perturbs a run's trajectory beyond the seeded cell itself. Returns the
/// seeded cell index, or pop.size() when nothing was injected. Throws
/// std::invalid_argument when the seed's length or machine ids do not fit
/// `etc`.
std::size_t apply_warm_seed(Population& pop, const etc::EtcMatrix& etc,
                            const Config& config);

/// Snapshot handed to the per-generation observer. The population reference
/// is live: in the asynchronous parallel engine other threads keep evolving
/// it, so observers there must take the per-cell locks themselves (the
/// sequential, cellwise, and synchronous engines call the observer from a
/// quiescent point).
struct GenerationEvent {
  std::uint64_t generation = 0;     ///< committed sweeps of the caller
  std::uint64_t evaluations = 0;    ///< engine-wide evaluations so far
  double elapsed_seconds = 0.0;
  /// Best-ever fitness KNOWN TO THE REPORTING WORKER. Engine-wide in the
  /// sequential and cellwise engines; in run_parallel the reporter is
  /// thread 0, so another thread's better find surfaces here only after
  /// it enters the population and thread 0 observes it.
  double best_fitness = 0.0;
  const Population& population;
};

/// Called after every committed generation/block sweep. Keep it cheap: the
/// engines invoke it on the hot path (sequential) or from worker 0
/// (parallel engines).
using GenerationObserver = std::function<void(const GenerationEvent&)>;

/// True for the generations the service's convergence probe records:
/// powers of two, so a G-generation run emits O(log G) probes — dense
/// early where the CGA improves fastest, sparse in the long tail. g == 0
/// (no committed sweep yet) is never sampled.
inline constexpr bool sampled_generation(std::uint64_t g) noexcept {
  return g != 0 && (g & (g - 1)) == 0;
}

/// The loop skeleton every engine shares: refresh the sweep order, visit
/// each cell through `step`, then run `end_of_sweep` — repeatedly, until
/// either asks to stop.
///
///   step(cell_position) -> bool  true = stop mid-sweep (budget hit); the
///                                partial sweep still gets its end_of_sweep.
///   end_of_sweep() -> bool       runs the engine's commit / barrier /
///                                trace / termination logic; returns the
///                                termination verdict for this sweep.
template <typename Step, typename EndOfSweep>
void run_sweep_loop(SweepOrderCache& order, support::Xoshiro256& order_rng,
                    Step&& step, EndOfSweep&& end_of_sweep) {
  bool stopping = false;
  while (!stopping) {
    const std::vector<std::size_t>& o = order.next_sweep(order_rng);
    for (std::size_t pos : o) {
      if (step(pos)) {
        stopping = true;
        break;
      }
    }
    stopping = end_of_sweep() || stopping;
  }
}

}  // namespace pacga::cga
