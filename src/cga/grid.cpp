#include "cga/grid.hpp"

#include <algorithm>
#include <stdexcept>

namespace pacga::cga {

Grid::Grid(std::size_t width, std::size_t height)
    : width_(width), height_(height) {
  if (width_ == 0 || height_ == 0)
    throw std::invalid_argument("Grid: empty dimensions");
}

Cell Grid::wrap(Cell c, std::ptrdiff_t dx, std::ptrdiff_t dy) const noexcept {
  const auto w = static_cast<std::ptrdiff_t>(width_);
  const auto h = static_cast<std::ptrdiff_t>(height_);
  auto x = (static_cast<std::ptrdiff_t>(c.x) + dx) % w;
  auto y = (static_cast<std::ptrdiff_t>(c.y) + dy) % h;
  if (x < 0) x += w;
  if (y < 0) y += h;
  return {static_cast<std::size_t>(x), static_cast<std::size_t>(y)};
}

std::size_t Grid::manhattan(Cell a, Cell b) const noexcept {
  const std::size_t dx = a.x > b.x ? a.x - b.x : b.x - a.x;
  const std::size_t dy = a.y > b.y ? a.y - b.y : b.y - a.y;
  return std::min(dx, width_ - dx) + std::min(dy, height_ - dy);
}

std::vector<Block> partition_blocks(std::size_t population_size,
                                    std::size_t threads) {
  if (threads == 0) throw std::invalid_argument("partition_blocks: 0 threads");
  if (threads > population_size) threads = population_size;
  std::vector<Block> blocks(threads);
  const std::size_t base = population_size / threads;
  const std::size_t extra = population_size % threads;
  std::size_t begin = 0;
  for (std::size_t i = 0; i < threads; ++i) {
    const std::size_t len = base + (i < extra ? 1 : 0);
    blocks[i] = {begin, begin + len};
    begin += len;
  }
  return blocks;
}

}  // namespace pacga::cga
