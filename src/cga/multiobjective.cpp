#include "cga/multiobjective.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "cga/crossover.hpp"
#include "cga/local_search.hpp"
#include "cga/mutation.hpp"
#include "cga/neighborhood.hpp"
#include "heuristics/minmin.hpp"
#include "support/timer.hpp"

namespace pacga::cga {

bool dominates(const MoPoint& a, const MoPoint& b) noexcept {
  const bool no_worse =
      a.makespan <= b.makespan && a.flowtime <= b.flowtime;
  const bool better =
      a.makespan < b.makespan || a.flowtime < b.flowtime;
  return no_worse && better;
}

MoIndividual MoIndividual::evaluated(sched::Schedule s) {
  MoPoint p{s.makespan(), s.flowtime()};
  return MoIndividual{std::move(s), p};
}

ParetoArchive::ParetoArchive(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ == 0)
    throw std::invalid_argument("ParetoArchive: zero capacity");
  members_.reserve(capacity_ + 1);
}

std::vector<double> ParetoArchive::crowding_distances() const {
  const std::size_t n = members_.size();
  std::vector<double> dist(n, 0.0);
  if (n <= 2) {
    std::fill(dist.begin(), dist.end(),
              std::numeric_limits<double>::infinity());
    return dist;
  }
  // For each objective: sort indices, boundary gets infinity, interior
  // accumulates normalized neighbor gaps.
  auto accumulate = [&](auto key) {
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return key(members_[a].objectives) < key(members_[b].objectives);
    });
    const double lo = key(members_[order.front()].objectives);
    const double hi = key(members_[order.back()].objectives);
    const double range = hi - lo;
    dist[order.front()] = std::numeric_limits<double>::infinity();
    dist[order.back()] = std::numeric_limits<double>::infinity();
    if (range <= 0.0) return;
    for (std::size_t k = 1; k + 1 < n; ++k) {
      dist[order[k]] += (key(members_[order[k + 1]].objectives) -
                         key(members_[order[k - 1]].objectives)) /
                        range;
    }
  };
  accumulate([](const MoPoint& p) { return p.makespan; });
  accumulate([](const MoPoint& p) { return p.flowtime; });
  return dist;
}

bool ParetoArchive::insert(MoIndividual ind) {
  for (const auto& m : members_) {
    if (dominates(m.objectives, ind.objectives)) return false;
    // Duplicates in objective space add nothing to the front.
    if (m.objectives.makespan == ind.objectives.makespan &&
        m.objectives.flowtime == ind.objectives.flowtime) {
      return false;
    }
  }
  std::erase_if(members_, [&](const MoIndividual& m) {
    return dominates(ind.objectives, m.objectives);
  });
  members_.push_back(std::move(ind));
  if (members_.size() > capacity_) {
    const auto dist = crowding_distances();
    const std::size_t victim = static_cast<std::size_t>(
        std::min_element(dist.begin(), dist.end()) - dist.begin());
    members_.erase(members_.begin() + static_cast<std::ptrdiff_t>(victim));
  }
  return true;
}

double hypervolume2d(const std::vector<MoPoint>& front, MoPoint reference) {
  // Keep only points strictly dominating the reference, sorted by
  // makespan ascending; sweep accumulates rectangles.
  std::vector<MoPoint> pts;
  for (const auto& p : front) {
    if (p.makespan < reference.makespan && p.flowtime < reference.flowtime) {
      pts.push_back(p);
    }
  }
  std::sort(pts.begin(), pts.end(), [](const MoPoint& a, const MoPoint& b) {
    return a.makespan < b.makespan;
  });
  double hv = 0.0;
  double prev_flowtime = reference.flowtime;
  for (const auto& p : pts) {
    if (p.flowtime >= prev_flowtime) continue;  // dominated in the sweep
    hv += (reference.makespan - p.makespan) * (prev_flowtime - p.flowtime);
    prev_flowtime = p.flowtime;
  }
  return hv;
}

void MoConfig::validate() const {
  if (width == 0 || height == 0)
    throw std::invalid_argument("MoConfig: empty grid");
  auto probability = [](double p, const char* name) {
    if (!(p >= 0.0 && p <= 1.0))
      throw std::invalid_argument(std::string("MoConfig: ") + name +
                                  " not in [0,1]");
  };
  probability(p_comb, "p_comb");
  probability(p_mut, "p_mut");
  probability(p_ls, "p_ls");
  if (archive_capacity == 0)
    throw std::invalid_argument("MoConfig: zero archive capacity");
}

double MoResult::hypervolume(MoPoint reference) const {
  std::vector<MoPoint> pts;
  pts.reserve(front.size());
  for (const auto& m : front) pts.push_back(m.objectives);
  return hypervolume2d(pts, reference);
}

namespace {

/// Binary tournament on dominance; crowding is approximated by uniform
/// tie-breaking (inside a 5-cell neighborhood full crowding adds little).
std::size_t mo_tournament(const std::vector<MoIndividual>& pop,
                          const std::vector<std::size_t>& neigh,
                          support::Xoshiro256& rng) {
  const std::size_t a = neigh[rng.index(neigh.size())];
  const std::size_t b = neigh[rng.index(neigh.size())];
  if (dominates(pop[a].objectives, pop[b].objectives)) return a;
  if (dominates(pop[b].objectives, pop[a].objectives)) return b;
  return rng.bernoulli(0.5) ? a : b;
}

}  // namespace

MoResult run_mocell(const etc::EtcMatrix& etc, const MoConfig& config) {
  config.validate();
  support::Xoshiro256 rng(config.seed);
  const Grid grid(config.width, config.height);
  const std::size_t n = grid.size();

  std::vector<MoIndividual> pop;
  pop.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pop.push_back(MoIndividual::evaluated(sched::Schedule::random(etc, rng)));
  }
  if (config.seed_min_min) {
    pop[0] = MoIndividual::evaluated(heur::min_min(etc));
  }

  ParetoArchive archive(config.archive_capacity);
  for (const auto& ind : pop) archive.insert(ind);

  support::WallTimer timer;
  const support::Deadline deadline(config.termination.wall_seconds);
  std::uint64_t evaluations = 0;
  std::uint64_t generations = 0;

  std::vector<std::size_t> neigh_scratch;
  std::vector<MoIndividual> staged;
  staged.reserve(n);

  bool stop = false;
  while (!stop) {
    staged.clear();
    for (std::size_t idx = 0; idx < n; ++idx) {
      neighborhood_of(grid, idx, config.neighborhood, neigh_scratch);
      const std::size_t pa = mo_tournament(pop, neigh_scratch, rng);
      std::size_t pb = mo_tournament(pop, neigh_scratch, rng);
      for (int tries = 0; pb == pa && tries < 4; ++tries) {
        pb = mo_tournament(pop, neigh_scratch, rng);
      }

      sched::Schedule offspring =
          rng.bernoulli(config.p_comb)
              ? crossover(config.crossover, pop[pa].schedule,
                          pop[pb].schedule, rng)
              : pop[pa].schedule;
      if (rng.bernoulli(config.p_mut)) {
        mutate(config.mutation, offspring, rng);
      }
      if (config.local_search.iterations > 0 && rng.bernoulli(config.p_ls)) {
        h2ll(offspring, config.local_search, rng);
      }
      staged.push_back(MoIndividual::evaluated(std::move(offspring)));
      ++evaluations;
      if (evaluations >= config.termination.max_evaluations) {
        stop = true;
        break;
      }
    }

    // Synchronous dominance-based replacement + archive insertion.
    for (std::size_t k = 0; k < staged.size(); ++k) {
      MoIndividual& child = staged[k];
      archive.insert(child);
      MoIndividual& incumbent = pop[k];
      if (dominates(child.objectives, incumbent.objectives)) {
        incumbent = std::move(child);
      } else if (!dominates(incumbent.objectives, child.objectives) &&
                 rng.bernoulli(0.5)) {
        // Mutually non-dominated: accept half the time to keep drifting
        // along the front (MOCell uses crowding here; the coin is the
        // cheap unbiased stand-in).
        incumbent = std::move(child);
      }
    }

    // Archive feedback: refresh random cells with archive members.
    const auto& front = archive.members();
    if (!front.empty()) {
      for (std::size_t f = 0; f < config.feedback; ++f) {
        pop[rng.index(n)] = front[rng.index(front.size())];
      }
    }

    ++generations;
    if (deadline.expired()) stop = true;
    if (generations >= config.termination.max_generations) stop = true;
  }

  MoResult result;
  result.front = archive.members();
  std::sort(result.front.begin(), result.front.end(),
            [](const MoIndividual& a, const MoIndividual& b) {
              return a.objectives.makespan < b.objectives.makespan;
            });
  result.evaluations = evaluations;
  result.generations = generations;
  result.elapsed_seconds = timer.elapsed_seconds();
  return result;
}

}  // namespace pacga::cga
