#include "cga/engine.hpp"

#include <numeric>

#include "support/timer.hpp"

namespace pacga::cga {

namespace detail {

std::vector<std::size_t> make_sweep_order(SweepPolicy policy, std::size_t n,
                                          support::Xoshiro256& rng) {
  std::vector<std::size_t> order(n);
  switch (policy) {
    case SweepPolicy::kLineSweep:
      std::iota(order.begin(), order.end(), std::size_t{0});
      break;
    case SweepPolicy::kReverseSweep:
      for (std::size_t i = 0; i < n; ++i) order[i] = n - 1 - i;
      break;
    case SweepPolicy::kFixedShuffle:
    case SweepPolicy::kNewShuffle:
      std::iota(order.begin(), order.end(), std::size_t{0});
      rng.shuffle(order);
      break;
    case SweepPolicy::kUniformChoice:
      for (auto& i : order) i = rng.index(n);
      break;
  }
  return order;
}

Individual breed(const Population& pop, std::size_t index,
                 const Config& config, support::Xoshiro256& rng,
                 std::vector<std::size_t>& neigh_scratch,
                 std::vector<double>& fit_scratch) {
  neighborhood_of(pop.grid(), index, config.neighborhood, neigh_scratch);
  fit_scratch.clear();
  for (std::size_t cell : neigh_scratch) {
    fit_scratch.push_back(pop.at(cell).fitness);
  }
  const auto [pa_pos, pb_pos] =
      select_parents(config.selection, fit_scratch, rng);
  const Individual& pa = pop.at(neigh_scratch[pa_pos]);
  const Individual& pb = pop.at(neigh_scratch[pb_pos]);

  sched::Schedule offspring =
      rng.bernoulli(config.p_comb)
          ? crossover(config.crossover, pa.schedule, pb.schedule, rng)
          : pa.schedule;  // no recombination: clone the first parent

  if (rng.bernoulli(config.p_mut)) {
    mutate(config.mutation, offspring, rng);
  }
  if (config.ls_kind != LocalSearchKind::kNone &&
      config.local_search.iterations > 0 && rng.bernoulli(config.p_ls)) {
    apply_local_search(config.ls_kind, offspring, config.local_search,
                       config.tabu, rng);
  }
  return Individual::evaluated(std::move(offspring), config.objective);
}

bool should_replace(ReplacementPolicy policy, double offspring,
                    double incumbent) noexcept {
  switch (policy) {
    case ReplacementPolicy::kReplaceIfBetter:
      return offspring < incumbent;
    case ReplacementPolicy::kAlways:
      return true;
  }
  return false;
}

}  // namespace detail

Result run_sequential(const etc::EtcMatrix& etc, const Config& config) {
  config.validate();
  support::Xoshiro256 rng(config.seed);
  Grid grid(config.width, config.height);
  Population pop(etc, grid, rng, config.seed_min_min, config.objective);
  const std::size_t n = pop.size();

  Individual best = pop.at(pop.best_index());
  support::WallTimer timer;
  const support::Deadline deadline(config.termination.wall_seconds);

  std::vector<std::size_t> neigh_scratch;
  std::vector<double> fit_scratch;
  std::vector<std::size_t> order =
      detail::make_sweep_order(config.sweep, n, rng);
  // Staged offspring for the synchronous mode; cell i's offspring lives at
  // staged[i] (or nullopt when no offspring was produced this generation,
  // which cannot happen here since every cell breeds every generation).
  std::vector<Individual> staged;

  std::uint64_t evaluations = 0;
  std::uint64_t generations = 0;
  std::vector<TracePoint> trace;
  bool stop = false;

  auto record_trace = [&] {
    if (!config.collect_trace) return;
    trace.push_back({generations, timer.elapsed_seconds(),
                     pop.at(pop.best_index()).fitness, pop.mean_fitness()});
  };
  record_trace();

  while (!stop) {
    if (config.sweep == SweepPolicy::kNewShuffle ||
        config.sweep == SweepPolicy::kUniformChoice) {
      order = detail::make_sweep_order(config.sweep, n, rng);
    }
    if (config.update == UpdatePolicy::kSynchronous) staged.clear();

    for (std::size_t idx : order) {
      Individual offspring =
          detail::breed(pop, idx, config, rng, neigh_scratch, fit_scratch);
      ++evaluations;
      if (offspring.fitness < best.fitness) best = offspring;
      if (config.update == UpdatePolicy::kAsynchronous) {
        if (detail::should_replace(config.replacement, offspring.fitness,
                                   pop.at(idx).fitness)) {
          pop.at(idx) = std::move(offspring);
        }
      } else {
        staged.push_back(std::move(offspring));
      }
      if (evaluations >= config.termination.max_evaluations) {
        stop = true;
        break;
      }
    }

    if (config.update == UpdatePolicy::kSynchronous) {
      // Generational commit: every staged offspring competes with the cell
      // it was bred for (staged[k] belongs to order[k]).
      for (std::size_t k = 0; k < staged.size(); ++k) {
        const std::size_t idx = order[k];
        if (detail::should_replace(config.replacement, staged[k].fitness,
                                   pop.at(idx).fitness)) {
          pop.at(idx) = std::move(staged[k]);
        }
      }
    }

    ++generations;
    record_trace();
    // Wall-clock check once per generation — the paper's coarse-grained
    // approximation (Algorithm 3 checks after the block sweep).
    if (deadline.expired()) stop = true;
    if (generations >= config.termination.max_generations) stop = true;
  }

  Result result{std::move(best.schedule)};
  result.best_fitness = best.fitness;
  result.evaluations = evaluations;
  result.generations = generations;
  result.elapsed_seconds = timer.elapsed_seconds();
  result.trace = std::move(trace);
  return result;
}

}  // namespace pacga::cga
