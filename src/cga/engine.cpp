#include "cga/engine.hpp"

#include "cga/breeder.hpp"
#include "cga/neighborhood.hpp"
#include "cga/selection.hpp"

namespace pacga::cga {

namespace detail {

std::vector<std::size_t> make_sweep_order(SweepPolicy policy, std::size_t n,
                                          support::Xoshiro256& rng) {
  std::vector<std::size_t> order;
  fill_sweep_order(policy, n, order, rng);
  return order;
}

Individual breed(const Population& pop, std::size_t index,
                 const Config& config, support::Xoshiro256& rng,
                 std::vector<std::size_t>& neigh_scratch,
                 std::vector<double>& fit_scratch) {
  neighborhood_of(pop.grid(), index, config.neighborhood, neigh_scratch);
  fit_scratch.clear();
  for (std::size_t cell : neigh_scratch) {
    fit_scratch.push_back(pop.at(cell).fitness);
  }
  const auto [pa_pos, pb_pos] =
      select_parents(config.selection, fit_scratch, rng);
  Individual child(pop.at(neigh_scratch[pa_pos]).schedule, 0.0);
  vary_and_evaluate(child, pop.at(neigh_scratch[pb_pos]).schedule, config,
                    rng);
  return child;
}

bool should_replace(ReplacementPolicy policy, double offspring,
                    double incumbent) noexcept {
  switch (policy) {
    case ReplacementPolicy::kReplaceIfBetter:
      return offspring < incumbent;
    case ReplacementPolicy::kAlways:
      return true;
  }
  return false;
}

}  // namespace detail

Result run_sequential(const etc::EtcMatrix& etc, const Config& config,
                      const GenerationObserver& observer,
                      const std::atomic<bool>* cancel) {
  config.validate();
  support::Xoshiro256 rng(config.seed);
  Grid grid(config.width, config.height);
  Population pop(etc, grid, rng, config.seed_min_min, config.objective,
                 config.lambda);
  apply_warm_seed(pop, etc, config);
  const std::size_t n = pop.size();
  const bool synchronous = config.update == UpdatePolicy::kSynchronous;

  // The shared core. Everything below is preallocated once; the breeding
  // loop itself performs no heap allocation.
  TerminationController termination(config.termination);
  termination.bind_stop_flag(cancel);
  BestTracker best(pop.at(pop.best_index()));
  TraceRecorder trace(config.collect_trace);
  Breeder breeder(etc, config);
  SweepOrderCache order(config.sweep, n, rng);

  // Offspring buffers: one scratch for the asynchronous mode; one slot per
  // cell for the synchronous auxiliary population (staged[k] belongs to
  // order[k] of the current sweep).
  Individual scratch(sched::Schedule(etc), 0.0);
  std::vector<Individual> staged;
  if (synchronous) {
    staged.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      staged.emplace_back(sched::Schedule(etc), 0.0);
    }
  }
  std::size_t staged_count = 0;

  std::uint64_t evaluations = 0;
  std::uint64_t generations = 0;
  trace.sample(generations, termination.elapsed_seconds(), pop);

  run_sweep_loop(
      order, rng,
      [&](std::size_t idx) {  // one breeding step
        if (synchronous) {
          // Staged with evaluation deferred: the whole sweep's offspring
          // get their fitness from one batched kernel dispatch at end of
          // sweep (bit-identical to evaluating here).
          breeder.breed_into_deferred(pop, idx, rng, staged[staged_count]);
          ++staged_count;
        } else {
          breeder.breed_into(pop, idx, rng, scratch);
          best.observe(scratch);
          if (detail::should_replace(config.replacement, scratch.fitness,
                                     pop.at(idx).fitness)) {
            Breeder::replace(pop.at(idx), scratch);
          }
        }
        ++evaluations;
        return termination.evaluations_exhausted(evaluations);
      },
      [&] {  // end of sweep
        if (synchronous) {
          breeder.evaluate_batch(staged.data(), staged_count);
          for (std::size_t k = 0; k < staged_count; ++k) {
            best.observe(staged[k]);
          }
          // Generational commit: every staged offspring competes with the
          // cell it was bred for.
          const auto& o = order.order();
          for (std::size_t k = 0; k < staged_count; ++k) {
            if (detail::should_replace(config.replacement, staged[k].fitness,
                                       pop.at(o[k]).fitness)) {
              Breeder::replace(pop.at(o[k]), staged[k]);
            }
          }
          staged_count = 0;
        }
        ++generations;
        trace.sample(generations, termination.elapsed_seconds(), pop);
        if (observer) {
          observer({generations, evaluations, termination.elapsed_seconds(),
                    best.fitness(), pop});
        }
        // Wall-clock and generation budgets once per generation — the
        // paper's coarse-grained approximation (Algorithm 3 checks after
        // the block sweep).
        return termination.sweep_done(generations, evaluations);
      });

  Individual winner = best.take();
  Result result{std::move(winner.schedule)};
  result.best_fitness = winner.fitness;
  result.evaluations = evaluations;
  result.generations = generations;
  result.elapsed_seconds = termination.elapsed_seconds();
  result.trace = trace.take();
  return result;
}

}  // namespace pacga::cga
