// Population checkpointing.
//
// Paper-scale campaigns run 90 s x 100 runs x 12 instances; checkpoints
// let a long run survive preemption and let researchers archive or
// hand-inspect populations (e.g. to diff diversity between configs). The
// format is a plain text header plus one line of machine ids per cell.
#pragma once

#include <iosfwd>
#include <string>

#include "cga/population.hpp"

namespace pacga::cga {

/// Writes `pop` (grid shape + all assignment strings) to `out`.
/// Fitness is not stored; it is recomputed on load.
void save_population(std::ostream& out, const Population& pop);
void save_population_file(const std::string& path, const Population& pop);

/// Overwrites the cells of `pop` with a checkpoint. The checkpoint's grid
/// shape and task count must match `pop`'s (std::runtime_error otherwise);
/// fitness is re-evaluated under `objective` against `pop`'s own ETC
/// matrix.
void load_population(std::istream& in, Population& pop,
                     sched::Objective objective, double lambda = 0.75);
void load_population_file(const std::string& path, Population& pop,
                          sched::Objective objective, double lambda = 0.75);

}  // namespace pacga::cga
