#include "cga/mutation.hpp"

namespace pacga::cga {

const char* to_string(MutationKind k) noexcept {
  switch (k) {
    case MutationKind::kMove: return "move";
    case MutationKind::kSwap: return "swap";
    case MutationKind::kRebalance: return "rebalance";
  }
  return "?";
}

std::size_t random_task_on_machine(const sched::Schedule& s,
                                   sched::MachineId m,
                                   support::Xoshiro256& rng) {
  std::size_t chosen = s.tasks();
  std::size_t seen = 0;
  for (std::size_t t = 0; t < s.tasks(); ++t) {
    if (s.machine_of(t) != m) continue;
    ++seen;
    // Reservoir of size 1: replace with probability 1/seen.
    if (rng.index(seen) == 0) chosen = t;
  }
  return chosen;
}

void mutate(MutationKind kind, sched::Schedule& s, support::Xoshiro256& rng) {
  if (s.tasks() == 0) return;
  switch (kind) {
    case MutationKind::kMove: {
      const std::size_t t = rng.index(s.tasks());
      const auto m = static_cast<sched::MachineId>(rng.index(s.machines()));
      s.move_task(t, m);
      return;
    }
    case MutationKind::kSwap: {
      if (s.tasks() < 2) return;
      const std::size_t a = rng.index(s.tasks());
      std::size_t b = rng.index(s.tasks() - 1);
      if (b >= a) ++b;
      s.swap_tasks(a, b);
      return;
    }
    case MutationKind::kRebalance: {
      const auto loaded = static_cast<sched::MachineId>(s.argmax_machine());
      const std::size_t t = random_task_on_machine(s, loaded, rng);
      if (t == s.tasks()) return;  // most loaded machine cannot be empty
                                   // unless all loads are ready times
      const auto m = static_cast<sched::MachineId>(rng.index(s.machines()));
      s.move_task(t, m);
      return;
    }
  }
}

}  // namespace pacga::cga
