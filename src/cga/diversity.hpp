// Population diversity metrics.
//
// The whole premise of cellular GAs (paper §1, §3.1) is that restricted
// mating keeps diversity longer and delays takeover by the best genotype.
// These metrics make that claim measurable: genotypic diversity (pairwise
// Hamming distance, per-locus entropy), phenotypic diversity (fitness
// spread), and the takeover fraction used by the classic selection-
// pressure experiments (bench_takeover).
#pragma once

#include <cstddef>

#include "cga/population.hpp"
#include "support/rng.hpp"

namespace pacga::cga {

/// Snapshot of population diversity. All genotypic values are normalized
/// to [0, 1]; 0 = fully converged.
struct DiversityStats {
  /// Mean pairwise Hamming distance between assignment strings, divided
  /// by the string length.
  double mean_pairwise_hamming = 0.0;
  /// Mean per-locus Shannon entropy of the machine distribution, divided
  /// by log2(#machines).
  double gene_entropy = 0.0;
  /// Sample standard deviation of the fitness values.
  double fitness_stddev = 0.0;
  /// (max - min) fitness.
  double fitness_range = 0.0;
};

/// Exact metrics. O(n^2 * tasks) for the pairwise term (a 256 x 512
/// population costs ~17M byte comparisons — fine for sampling once per
/// generation, not per breeding step). Must not run concurrently with
/// writers.
DiversityStats population_diversity(const Population& pop);

/// Pairwise Hamming estimated from `pairs` random pairs instead of all
/// n*(n-1)/2 — for tight-loop monitoring. Entropy/fitness terms are exact.
DiversityStats population_diversity_sampled(const Population& pop,
                                            std::size_t pairs,
                                            support::Xoshiro256& rng);

/// Fraction of cells whose fitness is within `tol` (relative) of the
/// population best — the "takeover" quantity of selection-pressure
/// studies: 1.0 means the best genotype's fitness has conquered the grid.
double proportion_at_best(const Population& pop, double tol = 1e-9);

}  // namespace pacga::cga
