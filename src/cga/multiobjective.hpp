// Bi-objective cellular engine (MOCell-style) for makespan + flowtime.
//
// The paper optimizes makespan only, but its problem statement (§2.1)
// names flowtime as the other first-class criterion, and the same research
// group's canonical extension of cellular GAs to multiple objectives is
// MOCell (Nebro, Durillo, Luna, Dorronsoro, Alba 2006). This module
// implements that design on the library's substrates: a synchronous
// cellular GA whose replacement is Pareto-dominance based, with a bounded
// external archive pruned by crowding distance and archive feedback into
// the grid — giving downstream users the makespan/flowtime trade-off
// front instead of a single point.
#pragma once

#include <cstdint>
#include <vector>

#include "cga/config.hpp"
#include "etc/etc_matrix.hpp"

namespace pacga::cga {

/// One point in objective space; both coordinates minimized.
struct MoPoint {
  double makespan = 0.0;
  double flowtime = 0.0;
};

/// Strict Pareto dominance: a is no worse in both objectives and strictly
/// better in at least one.
bool dominates(const MoPoint& a, const MoPoint& b) noexcept;

/// Schedule plus its objective vector.
struct MoIndividual {
  sched::Schedule schedule;
  MoPoint objectives;

  static MoIndividual evaluated(sched::Schedule s);
};

/// Bounded Pareto archive with crowding-distance pruning (NSGA-II
/// crowding; boundary points are never pruned).
class ParetoArchive {
 public:
  explicit ParetoArchive(std::size_t capacity);

  /// Inserts `ind` if no member dominates it; evicts members it dominates;
  /// when over capacity, drops the most crowded interior member.
  /// Returns true when the individual entered the archive.
  bool insert(MoIndividual ind);

  const std::vector<MoIndividual>& members() const noexcept {
    return members_;
  }
  std::size_t size() const noexcept { return members_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }

  /// Crowding distance of every member (same order as members()); infinite
  /// for the boundary points of each objective.
  std::vector<double> crowding_distances() const;

 private:
  std::size_t capacity_;
  std::vector<MoIndividual> members_;
};

/// Exact 2-D hypervolume of a mutually non-dominated front w.r.t.
/// `reference` (points not dominating the reference contribute nothing).
double hypervolume2d(const std::vector<MoPoint>& front, MoPoint reference);

/// MOCell parameterization. Operator defaults track the paper's Table 1;
/// the update is synchronous (MOCell's model).
struct MoConfig {
  std::size_t width = 16;
  std::size_t height = 16;
  NeighborhoodShape neighborhood = NeighborhoodShape::kLinear5;
  CrossoverKind crossover = CrossoverKind::kTwoPoint;
  double p_comb = 1.0;
  MutationKind mutation = MutationKind::kMove;
  double p_mut = 1.0;
  /// H2LL intensifies the makespan objective; applied with p_ls so the
  /// flowtime-leaning part of the front is not starved.
  H2LLParams local_search{5, 0};
  double p_ls = 0.5;
  std::size_t archive_capacity = 100;
  /// Cells refreshed from the archive after each generation (MOCell
  /// feedback).
  std::size_t feedback = 2;
  bool seed_min_min = true;
  Termination termination = Termination::after_generations(100);
  std::uint64_t seed = 1;

  std::size_t population_size() const noexcept { return width * height; }
  void validate() const;
};

/// Result: the final archive (a mutually non-dominated front) plus
/// accounting.
struct MoResult {
  std::vector<MoIndividual> front;
  std::uint64_t evaluations = 0;
  std::uint64_t generations = 0;
  double elapsed_seconds = 0.0;

  /// Convenience: hypervolume of this result's front.
  double hypervolume(MoPoint reference) const;
};

/// Runs the bi-objective cellular engine.
MoResult run_mocell(const etc::EtcMatrix& etc, const MoConfig& config);

}  // namespace pacga::cga
