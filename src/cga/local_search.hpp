// Local search operators.
//
//  * H2LL ("Highest To Least Loaded") — the paper's new operator
//    (Algorithm 4): move a random task off the most loaded machine to the
//    candidate among the least-loaded half minimizing its new completion
//    time, never above the current makespan. Monotone: makespan never
//    increases (tested as an invariant).
//  * Local Tabu Hop — a compact tabu search over task moves, standing in
//    for the LTH operator of the cMA+LTH baseline (Xhafa, Alba,
//    Dorronsoro, Duran 2008).
#pragma once

#include <cstddef>

#include "sched/schedule.hpp"
#include "support/rng.hpp"

namespace pacga::cga {

/// Which local-search operator the engines apply to offspring.
enum class LocalSearchKind {
  kH2LL,          ///< the paper's operator (random task off the loaded machine)
  kH2LLSteepest,  ///< ablation: best (task, target) move per pass
  kTabuHop,       ///< the cMA+LTH baseline's operator
  kNone,          ///< no local search (Figure 4's "0 iteration" arm)
};

const char* to_string(LocalSearchKind k) noexcept;

/// H2LL parameterization (paper Table 1: iter = 5 or 10; candidates =
/// machines/2 per Algorithm 4, override-able per the "N is a parameter"
/// remark).
struct H2LLParams {
  std::size_t iterations = 5;
  /// Number of least-loaded candidate machines; 0 means machines/2.
  std::size_t candidates = 0;
};

/// Applies H2LL in place. Each pass is O(machines log machines + tasks).
void h2ll(sched::Schedule& s, const H2LLParams& params,
          support::Xoshiro256& rng);

/// Steepest variant of H2LL (ablation of the paper's "randomly chosen"
/// task): each pass considers EVERY task on the most loaded machine and
/// applies the single move with the lowest resulting completion time.
/// Stronger per pass but O(tasks * candidates) instead of O(tasks), and
/// deterministic given the schedule — less stochastic exploration.
void h2ll_steepest(sched::Schedule& s, const H2LLParams& params);

/// Tabu-search parameterization for the cMA+LTH baseline.
struct TabuHopParams {
  std::size_t iterations = 10;
  std::size_t tenure = 8;  ///< moves a task stays tabu after being moved
};

/// Local Tabu Hop: per iteration, the best (possibly worsening) move of a
/// non-tabu task off the most loaded machine is applied and the task made
/// tabu; the best schedule seen is restored at the end. Never returns a
/// schedule worse than the input.
void local_tabu_hop(sched::Schedule& s, const TabuHopParams& params,
                    support::Xoshiro256& rng);

/// Enum dispatch used by the engines. `h2ll_params.iterations` drives the
/// H2LL variants; `tabu_params` drives kTabuHop; kNone is a no-op.
void apply_local_search(LocalSearchKind kind, sched::Schedule& s,
                        const H2LLParams& h2ll_params,
                        const TabuHopParams& tabu_params,
                        support::Xoshiro256& rng);

}  // namespace pacga::cga
