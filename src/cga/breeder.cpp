#include "cga/breeder.hpp"

#include <algorithm>
#include <shared_mutex>

#include "cga/crossover.hpp"
#include "cga/local_search.hpp"
#include "cga/mutation.hpp"
#include "cga/neighborhood.hpp"
#include "cga/selection.hpp"
#include "support/kernels.hpp"

namespace pacga::cga {

namespace detail {

void vary(Individual& child, const sched::Schedule& parent_b,
          const Config& config, support::Xoshiro256& rng) {
  if (rng.bernoulli(config.p_comb)) {
    crossover_into(config.crossover, child.schedule, parent_b, rng);
  }
  if (rng.bernoulli(config.p_mut)) {
    mutate(config.mutation, child.schedule, rng);
  }
  if (config.ls_kind != LocalSearchKind::kNone &&
      config.local_search.iterations > 0 && rng.bernoulli(config.p_ls)) {
    apply_local_search(config.ls_kind, child.schedule, config.local_search,
                       config.tabu, rng);
  }
}

void vary_and_evaluate(Individual& child, const sched::Schedule& parent_b,
                       const Config& config, support::Xoshiro256& rng) {
  vary(child, parent_b, config, rng);
  child.fitness =
      sched::evaluate(child.schedule, config.objective, config.lambda);
}

}  // namespace detail

Breeder::Breeder(const etc::EtcMatrix& etc, const Config& config)
    : config_(&config),
      parent_b_(sched::Schedule(etc), 0.0),
      offspring_(sched::Schedule(etc), 0.0) {
  neigh_.reserve(shape_size(config.neighborhood));
  fit_.reserve(shape_size(config.neighborhood));
}

void Breeder::breed_into(const Population& pop, std::size_t cell,
                         support::Xoshiro256& rng, Individual& out) {
  breed_into_deferred(pop, cell, rng, out);
  out.fitness =
      sched::evaluate(out.schedule, config_->objective, config_->lambda);
}

void Breeder::breed_into_deferred(const Population& pop, std::size_t cell,
                                  support::Xoshiro256& rng, Individual& out) {
  const Config& config = *config_;
  neighborhood_of(pop.grid(), cell, config.neighborhood, neigh_);
  fit_.clear();
  for (std::size_t c : neigh_) fit_.push_back(pop.at(c).fitness);
  const auto [pa_pos, pb_pos] = select_parents(config.selection, fit_, rng);

  // Offspring starts as parent a (the "no recombination: clone the first
  // parent" default); crossover then overlays parent b's contribution.
  out.schedule.assign_from(pop.at(neigh_[pa_pos]).schedule);
  detail::vary(out, pop.at(neigh_[pb_pos]).schedule, config, rng);
}

void Breeder::breed_locked_into(Population& pop, std::size_t cell,
                                support::Xoshiro256& rng, Individual& out) {
  breed_locked_into_deferred(pop, cell, rng, out);
  out.fitness =
      sched::evaluate(out.schedule, config_->objective, config_->lambda);
}

void Breeder::breed_locked_into_deferred(Population& pop, std::size_t cell,
                                         support::Xoshiro256& rng,
                                         Individual& out) {
  const Config& config = *config_;
  // --- selection: snapshot neighbor fitnesses under read locks.
  neighborhood_of(pop.grid(), cell, config.neighborhood, neigh_);
  fit_.clear();
  for (std::size_t c : neigh_) {
    std::shared_lock lock(pop.lock(c));
    fit_.push_back(pop.at(c).fitness);
  }
  const auto [pa_pos, pb_pos] = select_parents(config.selection, fit_, rng);

  // --- copy parents (one lock at a time, never nested; each lock window
  // is exactly one vector copy). Parent a is snapshotted straight into the
  // offspring buffer — it is the offspring's starting point anyway, which
  // saves the third copy the historical path made.
  {
    const std::size_t c = neigh_[pa_pos];
    std::shared_lock lock(pop.lock(c));
    out.schedule.assign_from(pop.at(c).schedule);
  }
  {
    const std::size_t c = neigh_[pb_pos];
    std::shared_lock lock(pop.lock(c));
    parent_b_.schedule.assign_from(pop.at(c).schedule);
  }

  // --- breed on private copies, outside all locks.
  detail::vary(out, parent_b_.schedule, config, rng);
}

void Breeder::evaluate_batch(Individual* staged, std::size_t count) {
  if (count == 0) return;
  const Config& config = *config_;
  if (config.objective != sched::Objective::kMakespan) {
    // No batched kernel for the flowtime-based objectives; per-child
    // evaluation (the documented allocating exceptions anyway).
    for (std::size_t i = 0; i < count; ++i) {
      staged[i].fitness =
          sched::evaluate(staged[i].schedule, config.objective, config.lambda);
    }
    return;
  }
  // One dispatch for the whole block: each staged schedule's completion
  // cache is already current (mutators maintain it), so the makespans are
  // one row-max sweep away — bit-identical to Schedule::makespan per row.
  batch_rows_.resize(count);
  batch_fit_.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    batch_rows_[i] = staged[i].schedule.completions().data();
  }
  support::kernels::batch_max(batch_rows_.data(), count,
                              staged[0].schedule.machines(),
                              batch_fit_.data());
  for (std::size_t i = 0; i < count; ++i) {
    // Same 0.0 clamp as Schedule::makespan — exact per-row agreement.
    staged[i].fitness = std::max(0.0, batch_fit_[i]);
  }
}

}  // namespace pacga::cga
