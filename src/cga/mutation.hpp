// Mutation operators. The paper's mutation "moves one randomly chosen task
// to a randomly chosen machine" (Table 1); swap and rebalance are standard
// companions in the grid-scheduling literature, kept for ablations.
#pragma once

#include "sched/schedule.hpp"
#include "support/rng.hpp"

namespace pacga::cga {

enum class MutationKind {
  kMove,       ///< random task -> random machine (the paper's operator)
  kSwap,       ///< swap the machines of two random tasks
  kRebalance,  ///< random task from the most loaded machine -> random machine
};

const char* to_string(MutationKind k) noexcept;

/// Applies one mutation of `kind` in place.
void mutate(MutationKind kind, sched::Schedule& s, support::Xoshiro256& rng);

/// Picks one task uniformly among those assigned to machine `m` via a
/// single reservoir-sampling pass. Returns tasks() when `m` is empty.
/// Shared with H2LL (which draws from the most loaded machine).
std::size_t random_task_on_machine(const sched::Schedule& s,
                                   sched::MachineId m,
                                   support::Xoshiro256& rng);

}  // namespace pacga::cga
