// Algorithm configuration (paper Table 1) and run results.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "cga/crossover.hpp"
#include "cga/local_search.hpp"
#include "cga/mutation.hpp"
#include "cga/neighborhood.hpp"
#include "cga/selection.hpp"
#include "sched/fitness.hpp"

namespace pacga::cga {

/// How offspring enter the population.
enum class ReplacementPolicy {
  kReplaceIfBetter,  ///< paper default: offspring replaces cell only if fitter
  kAlways,           ///< unconditional replacement (control)
};

/// Cell visiting order within a block/population.
enum class SweepPolicy {
  kLineSweep,      ///< fixed ascending order (paper default)
  kReverseSweep,   ///< fixed descending order
  kFixedShuffle,   ///< one random permutation, fixed for the whole run
  kNewShuffle,     ///< fresh permutation every generation
  kUniformChoice,  ///< each step picks a uniformly random cell
};

/// Synchronous (auxiliary population, generational barrier) vs
/// asynchronous (immediate replacement) update (paper §3.1).
enum class UpdatePolicy { kAsynchronous, kSynchronous };

const char* to_string(ReplacementPolicy p) noexcept;
const char* to_string(SweepPolicy p) noexcept;
const char* to_string(UpdatePolicy p) noexcept;

/// Stop conditions; whichever triggers first ends the run. Defaults are
/// "never" so callers enable exactly the criteria they need.
struct Termination {
  double wall_seconds = std::numeric_limits<double>::infinity();
  std::uint64_t max_generations =
      std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_evaluations =
      std::numeric_limits<std::uint64_t>::max();

  static Termination after_seconds(double s) {
    Termination t;
    t.wall_seconds = s;
    return t;
  }
  static Termination after_generations(std::uint64_t g) {
    Termination t;
    t.max_generations = g;
    return t;
  }
  static Termination after_evaluations(std::uint64_t e) {
    Termination t;
    t.max_evaluations = e;
    return t;
  }
};

/// Full PA-CGA parameterization. Defaults reproduce paper Table 1 with the
/// configuration the paper adopts after its studies: tpx, 10 H2LL
/// iterations, 3 threads.
struct Config {
  std::size_t width = 16;
  std::size_t height = 16;
  NeighborhoodShape neighborhood = NeighborhoodShape::kLinear5;
  SelectionKind selection = SelectionKind::kBestTwo;
  CrossoverKind crossover = CrossoverKind::kTwoPoint;
  double p_comb = 1.0;  ///< recombination probability
  MutationKind mutation = MutationKind::kMove;
  double p_mut = 1.0;   ///< mutation probability
  double p_ls = 1.0;    ///< local-search probability (paper's p_ser)
  /// Which local search the engine applies to offspring.
  LocalSearchKind ls_kind = LocalSearchKind::kH2LL;
  /// H2LL passes; 0 disables local search (the Figure 4 "0 iteration" arm).
  H2LLParams local_search{10, 0};
  /// Parameters for ls_kind == kTabuHop only.
  TabuHopParams tabu{10, 8};
  ReplacementPolicy replacement = ReplacementPolicy::kReplaceIfBetter;
  UpdatePolicy update = UpdatePolicy::kAsynchronous;
  SweepPolicy sweep = SweepPolicy::kLineSweep;
  bool seed_min_min = true;  ///< one Min-min individual in the initial pop
  sched::Objective objective = sched::Objective::kMakespan;
  /// Weight of makespan in kWeightedMakespanFlowtime (ignored otherwise);
  /// 0.75 is the common choice in the cMA literature.
  double lambda = 0.75;
  Termination termination = Termination::after_generations(100);
  /// Optional warm seed: when non-empty, one designated cell of the
  /// initial population adopts this assignment in place
  /// (Population::seed_cell) before evolution starts, so the engine can
  /// only improve on it — the dynamic-rescheduling injection point,
  /// honored by every engine. The seed lands in cell 1 when Min-min
  /// seeding occupies cell 0 (both survive), cell 0 otherwise
  /// (cga::warm_seed_cell). Length must equal the instance's task count
  /// and every id must be a valid machine (Schedule::adopt throws
  /// std::invalid_argument otherwise).
  std::vector<sched::MachineId> warm_seed;
  std::uint64_t seed = 1;
  std::size_t threads = 3;  ///< used by the parallel engine only
  /// Record a TracePoint per generation (Figure 6 raw data). Off by
  /// default: sampling scans the whole population (taking read locks in
  /// the parallel engine), which would perturb contention measurements.
  bool collect_trace = false;
  /// Pin worker i of the parallel engine to core i (paper §4.1: all
  /// threads run on one 4-core processor). Soft: ignored when the
  /// platform refuses.
  bool pin_threads = false;

  std::size_t population_size() const noexcept { return width * height; }

  /// Throws std::invalid_argument on out-of-range values.
  void validate() const;
};

/// One sampled point of the evolution trace (Figure 6 raw data).
struct TracePoint {
  std::uint64_t generation = 0;  ///< sampling thread's generation count
  double elapsed_seconds = 0.0;
  double best_fitness = 0.0;     ///< best cell fitness at sample time
  double mean_fitness = 0.0;     ///< population mean at sample time
};

/// Outcome of a run.
struct Result {
  explicit Result(sched::Schedule best_schedule)
      : best(std::move(best_schedule)) {}

  sched::Schedule best;          ///< best schedule ever observed
  double best_fitness = 0.0;
  std::uint64_t evaluations = 0; ///< offspring evaluations (excludes init)
  std::uint64_t generations = 0; ///< full sweeps (max over threads)
  double elapsed_seconds = 0.0;
  std::vector<TracePoint> trace;
};

}  // namespace pacga::cga
