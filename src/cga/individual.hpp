// One cell of the cellular population: a schedule plus its cached fitness.
#pragma once

#include "sched/fitness.hpp"
#include "sched/schedule.hpp"

namespace pacga::cga {

/// Value type: individuals are copied when parents are selected (the copy
/// is what makes the parallel engine's read-locking window small) and
/// written back on replacement.
struct Individual {
  sched::Schedule schedule;
  sched::Fitness fitness = 0.0;

  Individual(sched::Schedule s, sched::Fitness f)
      : schedule(std::move(s)), fitness(f) {}

  /// Builds and evaluates in one step. `lambda` weights the combined
  /// makespan/flowtime objective only (Config::lambda plumbs through here).
  static Individual evaluated(sched::Schedule s, sched::Objective objective,
                              double lambda = 0.75) {
    const sched::Fitness f = sched::evaluate(s, objective, lambda);
    return Individual(std::move(s), f);
  }
};

}  // namespace pacga::cga
