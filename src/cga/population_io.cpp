#include "cga/population_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace pacga::cga {

namespace {
constexpr const char* kMagic = "pacga-pop";
constexpr int kVersion = 1;
}  // namespace

void save_population(std::ostream& out, const Population& pop) {
  const auto& grid = pop.grid();
  const std::size_t tasks = pop.size() > 0 ? pop.at(0).schedule.tasks() : 0;
  out << kMagic << ' ' << kVersion << ' ' << grid.width() << ' '
      << grid.height() << ' ' << tasks << '\n';
  for (std::size_t i = 0; i < pop.size(); ++i) {
    const auto assignment = pop.at(i).schedule.assignment();
    for (std::size_t t = 0; t < assignment.size(); ++t) {
      if (t > 0) out << ' ';
      out << assignment[t];
    }
    out << '\n';
  }
  if (!out) throw std::runtime_error("save_population: stream failure");
}

void save_population_file(const std::string& path, const Population& pop) {
  std::ofstream out(path);
  if (!out)
    throw std::runtime_error("save_population_file: cannot open " + path);
  save_population(out, pop);
}

void load_population(std::istream& in, Population& pop,
                     sched::Objective objective, double lambda) {
  std::string magic;
  int version = 0;
  std::size_t width = 0, height = 0, tasks = 0;
  if (!(in >> magic >> version >> width >> height >> tasks))
    throw std::runtime_error("load_population: malformed header");
  if (magic != kMagic)
    throw std::runtime_error("load_population: bad magic '" + magic + "'");
  if (version != kVersion)
    throw std::runtime_error("load_population: unsupported version");
  if (width != pop.grid().width() || height != pop.grid().height())
    throw std::runtime_error("load_population: grid shape mismatch");
  const auto& etc = pop.at(0).schedule.etc();
  if (tasks != etc.tasks())
    throw std::runtime_error("load_population: task count mismatch");

  for (std::size_t i = 0; i < pop.size(); ++i) {
    std::vector<sched::MachineId> assignment(tasks);
    for (std::size_t t = 0; t < tasks; ++t) {
      unsigned value = 0;
      if (!(in >> value)) {
        std::ostringstream msg;
        msg << "load_population: truncated at cell " << i << " gene " << t;
        throw std::runtime_error(msg.str());
      }
      if (value >= etc.machines())
        throw std::runtime_error("load_population: machine id out of range");
      assignment[t] = static_cast<sched::MachineId>(value);
    }
    pop.at(i) = Individual::evaluated(
        sched::Schedule(etc, std::move(assignment)), objective, lambda);
  }
}

void load_population_file(const std::string& path, Population& pop,
                          sched::Objective objective, double lambda) {
  std::ifstream in(path);
  if (!in)
    throw std::runtime_error("load_population_file: cannot open " + path);
  load_population(in, pop, objective, lambda);
}

}  // namespace pacga::cga
