// Recombination operators on assignment strings (paper §4.1: one-point
// "opx" and two-point "tpx"; uniform added for completeness).
//
// All operators keep the offspring's completion-time cache up to date
// incrementally via Schedule::copy_segment / move_task — no full
// re-evaluation (paper §3.3).
#pragma once

#include "sched/schedule.hpp"
#include "support/rng.hpp"

namespace pacga::cga {

enum class CrossoverKind {
  kOnePoint,  ///< opx — prefix from parent a, suffix from parent b
  kTwoPoint,  ///< tpx — middle segment from parent b
  kUniform,   ///< each gene from a or b with probability 1/2
};

const char* to_string(CrossoverKind k) noexcept;

/// One-point crossover: cut in [1, tasks-1]; offspring = a[0:cut) + b[cut:).
sched::Schedule one_point_crossover(const sched::Schedule& a,
                                    const sched::Schedule& b,
                                    support::Xoshiro256& rng);

/// Two-point crossover: offspring = a with a random segment [lo, hi)
/// replaced by b's genes. lo < hi, both interior.
sched::Schedule two_point_crossover(const sched::Schedule& a,
                                    const sched::Schedule& b,
                                    support::Xoshiro256& rng);

/// Uniform crossover: each gene drawn from a or b with equal probability.
sched::Schedule uniform_crossover(const sched::Schedule& a,
                                  const sched::Schedule& b,
                                  support::Xoshiro256& rng);

/// Enum dispatch used by the engines.
sched::Schedule crossover(CrossoverKind kind, const sched::Schedule& a,
                          const sched::Schedule& b, support::Xoshiro256& rng);

/// In-place form for preallocated offspring buffers (the Breeder hot
/// path): `child` must already hold a copy of parent `a` (assign_from);
/// the call applies `b`'s contribution with incremental cache updates and
/// no allocation. RNG draw order is identical to the by-value operators,
/// so both forms produce the same offspring from the same stream.
void crossover_into(CrossoverKind kind, sched::Schedule& child,
                    const sched::Schedule& b, support::Xoshiro256& rng);

}  // namespace pacga::cga
