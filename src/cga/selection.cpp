#include "cga/selection.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace pacga::cga {

const char* to_string(SelectionKind k) noexcept {
  switch (k) {
    case SelectionKind::kBestTwo: return "best2";
    case SelectionKind::kTournament: return "tournament";
    case SelectionKind::kRoulette: return "roulette";
    case SelectionKind::kRandomTwo: return "random2";
  }
  return "?";
}

namespace {

std::pair<std::size_t, std::size_t> best_two(std::span<const double> fitness) {
  std::size_t first = 0;
  for (std::size_t i = 1; i < fitness.size(); ++i) {
    if (fitness[i] < fitness[first]) first = i;
  }
  std::size_t second = first == 0 ? 1 : 0;
  for (std::size_t i = 0; i < fitness.size(); ++i) {
    if (i == first) continue;
    if (fitness[i] < fitness[second]) second = i;
  }
  return {first, second};
}

std::size_t tournament_pick(std::span<const double> fitness,
                            support::Xoshiro256& rng) {
  const std::size_t a = rng.index(fitness.size());
  const std::size_t b = rng.index(fitness.size());
  return fitness[a] <= fitness[b] ? a : b;
}

std::size_t roulette_pick(std::span<const double> fitness,
                          support::Xoshiro256& rng) {
  // Invert lower-is-better fitness into positive weights:
  // w_i = (max - f_i) + epsilon*range, so the worst cell keeps a small
  // non-zero probability.
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (double f : fitness) {
    lo = std::min(lo, f);
    hi = std::max(hi, f);
  }
  const double range = hi - lo;
  if (range <= 0.0) return rng.index(fitness.size());
  const double eps = 0.01 * range;
  double total = 0.0;
  for (double f : fitness) total += (hi - f) + eps;
  double r = rng.uniform() * total;
  for (std::size_t i = 0; i < fitness.size(); ++i) {
    r -= (hi - fitness[i]) + eps;
    if (r <= 0.0) return i;
  }
  return fitness.size() - 1;
}

}  // namespace

std::pair<std::size_t, std::size_t> select_parents(
    SelectionKind kind, std::span<const double> fitness,
    support::Xoshiro256& rng) {
  assert(!fitness.empty());
  if (fitness.size() == 1) return {0, 0};
  switch (kind) {
    case SelectionKind::kBestTwo:
      return best_two(fitness);
    case SelectionKind::kTournament: {
      const std::size_t first = tournament_pick(fitness, rng);
      std::size_t second = tournament_pick(fitness, rng);
      // Force distinct positions; re-draw a bounded number of times then
      // fall back to a linear probe so the call always terminates.
      for (int tries = 0; second == first && tries < 8; ++tries) {
        second = tournament_pick(fitness, rng);
      }
      if (second == first) second = (first + 1) % fitness.size();
      return {first, second};
    }
    case SelectionKind::kRoulette: {
      const std::size_t first = roulette_pick(fitness, rng);
      std::size_t second = roulette_pick(fitness, rng);
      for (int tries = 0; second == first && tries < 8; ++tries) {
        second = roulette_pick(fitness, rng);
      }
      if (second == first) second = (first + 1) % fitness.size();
      return {first, second};
    }
    case SelectionKind::kRandomTwo: {
      const std::size_t first = rng.index(fitness.size());
      std::size_t second = rng.index(fitness.size() - 1);
      if (second >= first) ++second;
      return {first, second};
    }
  }
  return best_two(fitness);
}

}  // namespace pacga::cga
