// The structured population: a toroidal grid of individuals plus one
// read-write lock per cell (paper §3.2 — POSIX rwlock; here
// std::shared_mutex). The sequential engine simply never takes the locks.
//
// Locks live in their own cache-line-padded array, separate from the
// individuals, so lock traffic does not invalidate schedule data lines.
#pragma once

#include <memory>
#include <shared_mutex>
#include <span>
#include <vector>

#include "cga/grid.hpp"
#include "cga/individual.hpp"
#include "etc/etc_matrix.hpp"
#include "support/rng.hpp"
#include "support/threading.hpp"

namespace pacga::cga {

class Population {
 public:
  /// Random initialization; when `seed_min_min` is set, cell 0 holds the
  /// Min-min schedule (paper Table 1: "Min-min (1 ind)"). `lambda` weights
  /// the combined objective (Config::lambda).
  Population(const etc::EtcMatrix& etc, Grid grid, support::Xoshiro256& rng,
             bool seed_min_min, sched::Objective objective,
             double lambda = 0.75);

  // Not copyable (per-cell locks are identity); movable so populations can
  // be swapped wholesale (checkpoint restore, engine handoff). Moving
  // while any lock is held is undefined — move only between runs.
  Population(const Population&) = delete;
  Population& operator=(const Population&) = delete;
  Population(Population&&) noexcept = default;
  Population& operator=(Population&&) noexcept = default;

  /// In-place re-initialization for a NEW instance of the same tasks x
  /// machines shape: every cell is rebound to `etc` and randomized into
  /// its existing storage (no per-cell reallocation); cell 0 optionally
  /// gets the Min-min seed. The per-cell locks are untouched. This is the
  /// warm-start path of the scheduler service — apart from the optional
  /// Min-min construction (which allocates internally), a reseed of a
  /// same-shape population performs zero heap allocations. Throws
  /// std::invalid_argument when `etc`'s shape differs from the shape the
  /// population was built for.
  void reseed(const etc::EtcMatrix& etc, support::Xoshiro256& rng,
              bool seed_min_min, sched::Objective objective, double lambda);

  /// Overwrites cell `i` with `assignment` (adopted into the existing
  /// storage — zero heap allocations) and re-evaluates its fitness. This
  /// is the warm-start injection point of the dynamic rescheduling path:
  /// a repaired schedule becomes one individual of the initial population
  /// and the anytime CGA can only improve on it. Throws
  /// std::invalid_argument on shape or machine-id range violations
  /// (Schedule::adopt's checks).
  void seed_cell(std::size_t i, const etc::EtcMatrix& etc,
                 std::span<const sched::MachineId> assignment,
                 sched::Objective objective, double lambda);

  const Grid& grid() const noexcept { return grid_; }
  std::size_t size() const noexcept { return cells_.size(); }

  Individual& at(std::size_t i) noexcept { return cells_[i]; }
  const Individual& at(std::size_t i) const noexcept { return cells_[i]; }

  /// Per-cell read-write lock (only the parallel engine takes these).
  std::shared_mutex& lock(std::size_t i) noexcept { return locks_[i].value; }

  /// Index of the best (lowest-fitness) individual. Unsynchronized scan —
  /// call only when no writer is active (end of run, or from tests).
  std::size_t best_index() const noexcept;

  /// Mean fitness across all cells. Unsynchronized scan.
  double mean_fitness() const noexcept;

 private:
  Grid grid_;
  std::vector<Individual> cells_;
  std::unique_ptr<support::Padded<std::shared_mutex>[]> locks_;
};

}  // namespace pacga::cga
