// Sequential cellular GA engine — the canonical algorithm of paper §3.1.
// Supports both update policies (asynchronous = paper Algorithm 1;
// synchronous = auxiliary-population variant) and every sweep policy.
// PA-CGA with one thread is exactly this engine with kLineSweep/async.
//
// The loop body is assembled from the shared core (cga/loop.hpp +
// cga/breeder.hpp): the same components drive the parallel engines, so a
// steady-state breeding step allocates nothing and every engine exposes
// the same per-generation observer hook.
#pragma once

#include "cga/config.hpp"
#include "cga/loop.hpp"
#include "cga/population.hpp"
#include "etc/etc_matrix.hpp"

namespace pacga::cga {

/// Runs the sequential CGA on `etc` per `config`. Deterministic: same seed,
/// same result. `config.threads` is ignored here. `observer` (optional) is
/// called after every committed generation from a quiescent point —
/// checkpointing and streaming stats hook in there. `cancel` (optional) is
/// an external stop flag polled once per generation; raising it ends the
/// run early with the best-so-far result (the service's job-cancellation
/// path).
Result run_sequential(const etc::EtcMatrix& etc, const Config& config,
                      const GenerationObserver& observer = {},
                      const std::atomic<bool>* cancel = nullptr);

namespace detail {

/// Builds the visiting order for one generation. For kUniformChoice the
/// returned order is a fresh uniform sample WITH replacement (paper's
/// "uniform choice" policy); all other policies are permutations.
/// (Compatibility wrapper over cga::fill_sweep_order; the engines use
/// SweepOrderCache and never reallocate.)
std::vector<std::size_t> make_sweep_order(SweepPolicy policy, std::size_t n,
                                          support::Xoshiro256& rng);

/// One breeding step on cell `index` (paper Algorithm 3 lines 3-8, minus
/// replacement): neighborhood -> selection -> recombination -> mutation ->
/// local search -> evaluation. Reads the population unsynchronized.
/// (Compatibility wrapper: allocates a fresh offspring per call. The
/// engines use cga::Breeder, which reuses buffers and allocates nothing.)
Individual breed(const Population& pop, std::size_t index,
                 const Config& config, support::Xoshiro256& rng,
                 std::vector<std::size_t>& neigh_scratch,
                 std::vector<double>& fit_scratch);

/// Applies `policy`: returns true when `offspring` should replace a cell
/// whose current fitness is `incumbent`.
bool should_replace(ReplacementPolicy policy, double offspring,
                    double incumbent) noexcept;

}  // namespace detail

}  // namespace pacga::cga
