// Sequential cellular GA engine — the canonical algorithm of paper §3.1.
// Supports both update policies (asynchronous = paper Algorithm 1;
// synchronous = auxiliary-population variant) and every sweep policy.
// PA-CGA with one thread is exactly this engine with kLineSweep/async.
#pragma once

#include "cga/config.hpp"
#include "cga/population.hpp"
#include "etc/etc_matrix.hpp"

namespace pacga::cga {

/// Runs the sequential CGA on `etc` per `config`. Deterministic: same seed,
/// same result. `config.threads` is ignored here.
Result run_sequential(const etc::EtcMatrix& etc, const Config& config);

namespace detail {

/// Builds the visiting order for one generation. For kUniformChoice the
/// returned order is a fresh uniform sample WITH replacement (paper's
/// "uniform choice" policy); all other policies are permutations.
std::vector<std::size_t> make_sweep_order(SweepPolicy policy, std::size_t n,
                                          support::Xoshiro256& rng);

/// One breeding step on cell `index` (paper Algorithm 3 lines 3-8, minus
/// replacement): neighborhood -> selection -> recombination -> mutation ->
/// local search -> evaluation. Reads the population unsynchronized — the
/// parallel engine has its own locked variant.
Individual breed(const Population& pop, std::size_t index,
                 const Config& config, support::Xoshiro256& rng,
                 std::vector<std::size_t>& neigh_scratch,
                 std::vector<double>& fit_scratch);

/// Applies `policy`: returns true when `offspring` should replace a cell
/// whose current fitness is `incumbent`.
bool should_replace(ReplacementPolicy policy, double offspring,
                    double incumbent) noexcept;

}  // namespace detail

}  // namespace pacga::cga
