// Cellular neighborhoods. The paper uses linear-5 (Von Neumann) to keep
// cross-block memory contention low; the other classic shapes are provided
// for ablations and the framework's generality.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "cga/grid.hpp"

namespace pacga::cga {

/// Classic CGA neighborhood shapes (Alba & Dorronsoro 2008 naming).
enum class NeighborhoodShape {
  kLinear5,   ///< Von Neumann: self + N/S/E/W (the paper's choice)
  kCompact9,  ///< Moore: self + 8 surrounding cells
  kLinear9,   ///< self + 2 cells in each axis direction
  kCompact13, ///< Compact9 plus the 4 cells at Manhattan distance 2 on axes
};

/// (dx, dy) displacement.
struct Offset {
  std::ptrdiff_t dx;
  std::ptrdiff_t dy;
};

/// The displacement set of a shape, self (0,0) first.
std::span<const Offset> offsets(NeighborhoodShape shape) noexcept;

/// Number of cells in the shape (including self).
std::size_t shape_size(NeighborhoodShape shape) noexcept;

const char* to_string(NeighborhoodShape shape) noexcept;

/// Resolves the linear indices of `center`'s neighborhood on `grid`,
/// self first, into `out` (cleared first). No allocation when `out` has
/// capacity — the engines reuse one buffer per thread.
void neighborhood_of(const Grid& grid, std::size_t center,
                     NeighborhoodShape shape, std::vector<std::size_t>& out);

}  // namespace pacga::cga
