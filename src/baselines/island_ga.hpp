// Island-model (coarse-grained) parallel GA.
//
// The other classic way to parallelize a GA (paper §1 cites the cluster
// implementations of Luque et al.): independent panmictic sub-populations,
// one per thread, exchanging their best individual around a ring every few
// generations. Contrast with PA-CGA, which is fine-grained (one population,
// per-cell locking). Having both in the library lets the benchmarks ask
// "does the paper's fine-grained model beat the coarse-grained default on
// shared memory?" — an ablation the paper motivates but does not run.
#pragma once

#include "cga/config.hpp"
#include "etc/etc_matrix.hpp"

namespace pacga::baseline {

struct IslandConfig {
  std::size_t islands = 4;            ///< one thread per island
  std::size_t island_population = 64;
  cga::SelectionKind selection = cga::SelectionKind::kTournament;
  cga::CrossoverKind crossover = cga::CrossoverKind::kTwoPoint;
  double p_comb = 0.9;
  cga::MutationKind mutation = cga::MutationKind::kMove;
  double p_mut = 1.0;
  /// H2LL passes per offspring (0 disables; kept so comparisons against
  /// PA-CGA can be local-search-for-local-search fair).
  cga::H2LLParams local_search{0, 0};
  /// Generations between ring migrations.
  std::size_t migration_interval = 10;
  bool seed_min_min = true;  ///< island 0 gets the Min-min individual
  sched::Objective objective = sched::Objective::kMakespan;
  double lambda = 0.75;  ///< weighted-objective makespan weight
  cga::Termination termination = cga::Termination::after_generations(100);
  std::uint64_t seed = 1;

  void validate() const;
};

/// Runs the island GA with `config.islands` threads. Result::generations is
/// the maximum island generation count; Result::evaluations is the total.
cga::Result run_island_ga(const etc::EtcMatrix& etc,
                          const IslandConfig& config);

}  // namespace pacga::baseline
