// cMA+LTH baseline (Xhafa, Alba, Dorronsoro, Duran, JMMA 2008) — the
// "CGA hybridized with Tabu search" column of the paper's Table 2.
//
// Reimplemented from its description (DESIGN.md §6.4): a SYNCHRONOUS
// cellular memetic algorithm — generational cGA with an auxiliary
// population — whose offspring are intensified with a Local Tabu Hop
// before evaluation. Defaults follow the published parameterization where
// stated (L5/NEWS neighborhood, binary tournament, one-point crossover,
// move mutation) with sensible values elsewhere.
#pragma once

#include "cga/config.hpp"
#include "etc/etc_matrix.hpp"

namespace pacga::baseline {

struct CmaLthConfig {
  std::size_t width = 16;
  std::size_t height = 16;
  cga::NeighborhoodShape neighborhood = cga::NeighborhoodShape::kLinear5;
  cga::SelectionKind selection = cga::SelectionKind::kTournament;
  cga::CrossoverKind crossover = cga::CrossoverKind::kOnePoint;
  double p_comb = 0.8;
  cga::MutationKind mutation = cga::MutationKind::kMove;
  double p_mut = 0.5;
  double p_ls = 1.0;
  cga::TabuHopParams tabu{10, 8};
  bool seed_min_min = true;
  sched::Objective objective = sched::Objective::kMakespan;
  double lambda = 0.75;  ///< weighted-objective makespan weight
  cga::Termination termination = cga::Termination::after_generations(100);
  std::uint64_t seed = 1;
  bool collect_trace = false;

  std::size_t population_size() const noexcept { return width * height; }
  void validate() const;
};

/// Runs the synchronous cellular memetic algorithm with Local Tabu Hop.
cga::Result run_cma_lth(const etc::EtcMatrix& etc, const CmaLthConfig& config);

}  // namespace pacga::baseline
