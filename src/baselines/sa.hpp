// Simulated Annealing baseline.
//
// SA is one of the eleven heuristics of Braun et al. 2001 (the study that
// defined the paper's benchmark) and the classic single-solution
// counterpoint to population methods: it shows how much of the GA's
// advantage comes from the population/structure rather than from plain
// stochastic descent. Geometric cooling, move/swap neighborhood, O(1)
// revertible steps on the incremental completion-time representation.
#pragma once

#include "cga/config.hpp"
#include "etc/etc_matrix.hpp"

namespace pacga::baseline {

struct SaConfig {
  /// T0 = initial_temp_factor * initial makespan (Braun et al. start at
  /// the first solution's makespan; 0.1 concentrates search earlier).
  double initial_temp_factor = 0.1;
  /// Geometric cooling multiplier applied after every temperature block.
  double cooling = 0.98;
  /// Proposed moves per temperature block (one "generation" equivalent).
  std::size_t iters_per_temp = 256;
  /// Stop when T < min_temp_ratio * T0 (also bounded by `termination`).
  double min_temp_ratio = 1e-9;
  cga::MutationKind neighbor = cga::MutationKind::kMove;
  bool seed_min_min = true;
  sched::Objective objective = sched::Objective::kMakespan;
  double lambda = 0.75;  ///< weighted-objective makespan weight
  cga::Termination termination = cga::Termination::after_generations(100);
  std::uint64_t seed = 1;
  bool collect_trace = false;

  void validate() const;
};

/// Runs SA. Result::generations counts temperature blocks;
/// Result::evaluations counts proposed (evaluated) moves.
cga::Result run_simulated_annealing(const etc::EtcMatrix& etc,
                                    const SaConfig& config);

}  // namespace pacga::baseline
