// Struggle GA baseline (Xhafa, BIOMA 2006) — the non-decentralized GA
// column of the paper's Table 2.
//
// Reimplemented from its description (DESIGN.md §6.4): a steady-state,
// panmictic GA whose replacement operator is "struggle": the offspring
// replaces the MOST SIMILAR individual of the population (minimum Hamming
// distance between assignment strings), and only if it improves that
// individual's fitness. Struggle replacement preserves diversity the way a
// crowding scheme does, which is why it was the strongest replacement
// operator in Xhafa's study.
#pragma once

#include "cga/config.hpp"
#include "etc/etc_matrix.hpp"

namespace pacga::baseline {

struct StruggleConfig {
  std::size_t population = 64;
  cga::SelectionKind selection = cga::SelectionKind::kTournament;
  cga::CrossoverKind crossover = cga::CrossoverKind::kOnePoint;
  double p_comb = 0.8;
  cga::MutationKind mutation = cga::MutationKind::kMove;
  double p_mut = 0.4;
  bool seed_min_min = true;
  sched::Objective objective = sched::Objective::kMakespan;
  double lambda = 0.75;  ///< weighted-objective makespan weight
  cga::Termination termination = cga::Termination::after_generations(100);
  std::uint64_t seed = 1;
  bool collect_trace = false;

  void validate() const;
};

/// Runs the Struggle GA. Result::generations counts population-size batches
/// of offspring (steady-state "generation equivalents").
cga::Result run_struggle_ga(const etc::EtcMatrix& etc,
                            const StruggleConfig& config);

}  // namespace pacga::baseline
