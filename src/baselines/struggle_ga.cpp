#include "baselines/struggle_ga.hpp"

#include <limits>
#include <stdexcept>
#include <vector>

#include "cga/crossover.hpp"
#include "cga/individual.hpp"
#include "cga/loop.hpp"
#include "cga/mutation.hpp"
#include "cga/selection.hpp"
#include "heuristics/minmin.hpp"
#include "support/timer.hpp"

namespace pacga::baseline {

void StruggleConfig::validate() const {
  if (population < 2)
    throw std::invalid_argument("StruggleConfig: population < 2");
  if (!(p_comb >= 0.0 && p_comb <= 1.0) || !(p_mut >= 0.0 && p_mut <= 1.0))
    throw std::invalid_argument("StruggleConfig: probability out of [0,1]");
}

cga::Result run_struggle_ga(const etc::EtcMatrix& etc,
                            const StruggleConfig& config) {
  config.validate();
  support::Xoshiro256 rng(config.seed);

  std::vector<cga::Individual> pop;
  pop.reserve(config.population);
  for (std::size_t i = 0; i < config.population; ++i) {
    pop.push_back(cga::Individual::evaluated(
        sched::Schedule::random(etc, rng), config.objective, config.lambda));
  }
  if (config.seed_min_min) {
    pop[0] = cga::Individual::evaluated(heur::min_min(etc), config.objective,
                                        config.lambda);
  }

  std::size_t best_idx = 0;
  for (std::size_t i = 1; i < pop.size(); ++i) {
    if (pop[i].fitness < pop[best_idx].fitness) best_idx = i;
  }

  // Shared loop core: best tracking, termination, and tracing are the same
  // components the cellular engines use; only the struggle replacement
  // below is this baseline's own.
  const cga::TerminationController termination(config.termination);
  cga::BestTracker best(pop[best_idx]);
  cga::TraceRecorder trace(config.collect_trace);

  std::uint64_t evaluations = 0;
  std::uint64_t generations = 0;
  std::vector<double> fitness_view(pop.size());
  trace.sample(generations, termination.elapsed_seconds(), pop);

  bool stop = false;
  while (!stop) {
    // One generation-equivalent: population-size steady-state steps.
    for (std::size_t step = 0; step < pop.size(); ++step) {
      for (std::size_t i = 0; i < pop.size(); ++i)
        fitness_view[i] = pop[i].fitness;
      const auto [pa, pb] =
          cga::select_parents(config.selection, fitness_view, rng);

      sched::Schedule offspring =
          rng.bernoulli(config.p_comb)
              ? cga::crossover(config.crossover, pop[pa].schedule,
                               pop[pb].schedule, rng)
              : pop[pa].schedule;
      if (rng.bernoulli(config.p_mut)) {
        cga::mutate(config.mutation, offspring, rng);
      }
      cga::Individual child = cga::Individual::evaluated(
          std::move(offspring), config.objective, config.lambda);
      ++evaluations;
      best.observe(child);

      // Struggle replacement: the offspring competes with the individual
      // most similar to it, not with the worst one.
      std::size_t most_similar = 0;
      std::size_t min_dist = std::numeric_limits<std::size_t>::max();
      for (std::size_t i = 0; i < pop.size(); ++i) {
        const std::size_t d =
            child.schedule.hamming_distance(pop[i].schedule);
        if (d < min_dist) {
          min_dist = d;
          most_similar = i;
        }
      }
      if (child.fitness < pop[most_similar].fitness) {
        pop[most_similar] = std::move(child);
      }

      if (termination.evaluations_exhausted(evaluations)) {
        stop = true;
        break;
      }
    }
    ++generations;
    trace.sample(generations, termination.elapsed_seconds(), pop);
    if (termination.sweep_done(generations, evaluations)) stop = true;
  }

  cga::Individual winner = best.take();
  cga::Result result{std::move(winner.schedule)};
  result.best_fitness = winner.fitness;
  result.evaluations = evaluations;
  result.generations = generations;
  result.elapsed_seconds = termination.elapsed_seconds();
  result.trace = trace.take();
  return result;
}

}  // namespace pacga::baseline
