#include "baselines/cma_lth.hpp"

#include <stdexcept>

#include "cga/engine.hpp"

namespace pacga::baseline {

void CmaLthConfig::validate() const {
  if (width == 0 || height == 0)
    throw std::invalid_argument("CmaLthConfig: empty grid");
  auto probability = [](double p, const char* name) {
    if (!(p >= 0.0 && p <= 1.0))
      throw std::invalid_argument(std::string("CmaLthConfig: ") + name +
                                  " not in [0,1]");
  };
  probability(p_comb, "p_comb");
  probability(p_mut, "p_mut");
  probability(p_ls, "p_ls");
}

cga::Result run_cma_lth(const etc::EtcMatrix& etc,
                        const CmaLthConfig& config) {
  config.validate();
  // cMA+LTH is the synchronous cellular engine with Local Tabu Hop as the
  // memetic step: same sweep, selection snapshot, variation draw order,
  // staged generational commit, best tracking, and termination as the
  // shared core — so it IS the shared core, parameterized. (Historically
  // this file hand-rolled the whole loop.)
  cga::Config mapped;
  mapped.width = config.width;
  mapped.height = config.height;
  mapped.neighborhood = config.neighborhood;
  mapped.selection = config.selection;
  mapped.crossover = config.crossover;
  mapped.p_comb = config.p_comb;
  mapped.mutation = config.mutation;
  mapped.p_mut = config.p_mut;
  mapped.p_ls = config.p_ls;
  mapped.ls_kind = cga::LocalSearchKind::kTabuHop;
  // The engine gates local search on local_search.iterations; mirror the
  // tabu iteration count there so tabu{0, ...} disables the memetic step.
  mapped.local_search.iterations = config.tabu.iterations;
  mapped.tabu = config.tabu;
  mapped.replacement = cga::ReplacementPolicy::kReplaceIfBetter;
  mapped.update = cga::UpdatePolicy::kSynchronous;
  mapped.sweep = cga::SweepPolicy::kLineSweep;
  mapped.seed_min_min = config.seed_min_min;
  mapped.objective = config.objective;
  mapped.lambda = config.lambda;
  mapped.termination = config.termination;
  mapped.seed = config.seed;
  mapped.collect_trace = config.collect_trace;
  // The sequential engine ignores threads, but its validate() still checks
  // them against the grid; 1 keeps tiny grids valid.
  mapped.threads = 1;
  return cga::run_sequential(etc, mapped);
}

}  // namespace pacga::baseline
