#include "baselines/cma_lth.hpp"

#include <stdexcept>
#include <vector>

#include "cga/engine.hpp"
#include "cga/local_search.hpp"
#include "cga/population.hpp"
#include "support/timer.hpp"

namespace pacga::baseline {

void CmaLthConfig::validate() const {
  if (width == 0 || height == 0)
    throw std::invalid_argument("CmaLthConfig: empty grid");
  auto probability = [](double p, const char* name) {
    if (!(p >= 0.0 && p <= 1.0))
      throw std::invalid_argument(std::string("CmaLthConfig: ") + name +
                                  " not in [0,1]");
  };
  probability(p_comb, "p_comb");
  probability(p_mut, "p_mut");
  probability(p_ls, "p_ls");
}

cga::Result run_cma_lth(const etc::EtcMatrix& etc,
                        const CmaLthConfig& config) {
  config.validate();
  support::Xoshiro256 rng(config.seed);
  cga::Grid grid(config.width, config.height);
  cga::Population pop(etc, grid, rng, config.seed_min_min, config.objective);
  const std::size_t n = pop.size();

  cga::Individual best = pop.at(pop.best_index());
  support::WallTimer timer;
  const support::Deadline deadline(config.termination.wall_seconds);

  std::vector<std::size_t> neigh_scratch;
  std::vector<double> fit_scratch;
  std::vector<cga::Individual> staged;
  staged.reserve(n);

  std::uint64_t evaluations = 0;
  std::uint64_t generations = 0;
  std::vector<cga::TracePoint> trace;

  auto record_trace = [&] {
    if (!config.collect_trace) return;
    trace.push_back({generations, timer.elapsed_seconds(),
                     pop.at(pop.best_index()).fitness, pop.mean_fitness()});
  };
  record_trace();

  bool stop = false;
  while (!stop) {
    staged.clear();
    for (std::size_t idx = 0; idx < n; ++idx) {
      cga::neighborhood_of(grid, idx, config.neighborhood, neigh_scratch);
      fit_scratch.clear();
      for (std::size_t cell : neigh_scratch)
        fit_scratch.push_back(pop.at(cell).fitness);
      const auto [pa_pos, pb_pos] =
          cga::select_parents(config.selection, fit_scratch, rng);
      const cga::Individual& pa = pop.at(neigh_scratch[pa_pos]);
      const cga::Individual& pb = pop.at(neigh_scratch[pb_pos]);

      sched::Schedule offspring =
          rng.bernoulli(config.p_comb)
              ? cga::crossover(config.crossover, pa.schedule, pb.schedule,
                               rng)
              : pa.schedule;
      if (rng.bernoulli(config.p_mut)) {
        cga::mutate(config.mutation, offspring, rng);
      }
      // Memetic intensification: Local Tabu Hop on the offspring.
      if (config.tabu.iterations > 0 && rng.bernoulli(config.p_ls)) {
        cga::local_tabu_hop(offspring, config.tabu, rng);
      }
      cga::Individual child =
          cga::Individual::evaluated(std::move(offspring), config.objective);
      ++evaluations;
      if (child.fitness < best.fitness) best = child;
      staged.push_back(std::move(child));
      if (evaluations >= config.termination.max_evaluations) {
        stop = true;
        break;
      }
    }

    // Synchronous generational commit (replace if better).
    for (std::size_t k = 0; k < staged.size(); ++k) {
      if (staged[k].fitness < pop.at(k).fitness) {
        pop.at(k) = std::move(staged[k]);
      }
    }

    ++generations;
    record_trace();
    if (deadline.expired()) stop = true;
    if (generations >= config.termination.max_generations) stop = true;
  }

  cga::Result result{std::move(best.schedule)};
  result.best_fitness = best.fitness;
  result.evaluations = evaluations;
  result.generations = generations;
  result.elapsed_seconds = timer.elapsed_seconds();
  result.trace = std::move(trace);
  return result;
}

}  // namespace pacga::baseline
