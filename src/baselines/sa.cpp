#include "baselines/sa.hpp"

#include <cmath>
#include <stdexcept>

#include "heuristics/minmin.hpp"
#include "support/timer.hpp"

namespace pacga::baseline {

void SaConfig::validate() const {
  if (initial_temp_factor <= 0.0)
    throw std::invalid_argument("SaConfig: non-positive temperature factor");
  if (!(cooling > 0.0 && cooling < 1.0))
    throw std::invalid_argument("SaConfig: cooling not in (0,1)");
  if (iters_per_temp == 0)
    throw std::invalid_argument("SaConfig: zero iterations per temperature");
  if (min_temp_ratio <= 0.0)
    throw std::invalid_argument("SaConfig: non-positive min temp ratio");
  if (neighbor == cga::MutationKind::kRebalance) {
    // Rebalance is directed (always off the loaded machine); SA requires a
    // symmetric-ish proposal to make acceptance probabilities meaningful.
    throw std::invalid_argument("SaConfig: rebalance is not a SA neighbor");
  }
}

cga::Result run_simulated_annealing(const etc::EtcMatrix& etc,
                                    const SaConfig& config) {
  config.validate();
  support::Xoshiro256 rng(config.seed);

  sched::Schedule current =
      config.seed_min_min ? heur::min_min(etc)
                          : sched::Schedule::random(etc, rng);
  double current_fit =
      sched::evaluate(current, config.objective, config.lambda);
  sched::Schedule best = current;
  double best_fit = current_fit;

  const double t0 = config.initial_temp_factor * current_fit;
  double temperature = t0;

  support::WallTimer timer;
  const support::Deadline deadline(config.termination.wall_seconds);
  std::uint64_t evaluations = 0;
  std::uint64_t generations = 0;
  std::vector<cga::TracePoint> trace;

  auto record_trace = [&] {
    if (!config.collect_trace) return;
    trace.push_back(
        {generations, timer.elapsed_seconds(), best_fit, current_fit});
  };
  record_trace();

  bool stop = false;
  while (!stop) {
    for (std::size_t step = 0; step < config.iters_per_temp; ++step) {
      // Revertible proposal: the incremental representation makes a move
      // and its undo both O(1), so SA never copies the schedule.
      std::size_t task_a = 0, task_b = 0;
      sched::MachineId old_a = 0, old_b = 0;
      if (config.neighbor == cga::MutationKind::kMove) {
        task_a = rng.index(current.tasks());
        old_a = current.machine_of(task_a);
        const auto target =
            static_cast<sched::MachineId>(rng.index(current.machines()));
        if (target == old_a) continue;  // null move, nothing to evaluate
        current.move_task(task_a, target);
      } else {  // kSwap
        if (current.tasks() < 2) break;
        task_a = rng.index(current.tasks());
        task_b = rng.index(current.tasks() - 1);
        if (task_b >= task_a) ++task_b;
        old_a = current.machine_of(task_a);
        old_b = current.machine_of(task_b);
        if (old_a == old_b) continue;
        current.swap_tasks(task_a, task_b);
      }

      const double proposal_fit =
          sched::evaluate(current, config.objective, config.lambda);
      ++evaluations;
      const double delta = proposal_fit - current_fit;
      const bool accept =
          delta <= 0.0 ||
          rng.uniform() < std::exp(-delta / temperature);
      if (accept) {
        current_fit = proposal_fit;
        if (current_fit < best_fit) {
          best_fit = current_fit;
          best = current;
        }
      } else {
        // Undo.
        if (config.neighbor == cga::MutationKind::kMove) {
          current.move_task(task_a, old_a);
        } else {
          current.swap_tasks(task_a, task_b);
        }
      }
      if (evaluations >= config.termination.max_evaluations) {
        stop = true;
        break;
      }
    }
    temperature *= config.cooling;
    ++generations;
    record_trace();
    if (temperature < config.min_temp_ratio * t0) stop = true;
    if (deadline.expired()) stop = true;
    if (generations >= config.termination.max_generations) stop = true;
  }

  cga::Result result{std::move(best)};
  result.best_fitness = best_fit;
  result.evaluations = evaluations;
  result.generations = generations;
  result.elapsed_seconds = timer.elapsed_seconds();
  result.trace = std::move(trace);
  return result;
}

}  // namespace pacga::baseline
