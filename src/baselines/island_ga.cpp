#include "baselines/island_ga.hpp"

#include <atomic>
#include <algorithm>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <vector>

#include "cga/crossover.hpp"
#include "cga/individual.hpp"
#include "cga/local_search.hpp"
#include "cga/loop.hpp"
#include "cga/mutation.hpp"
#include "cga/selection.hpp"
#include "heuristics/minmin.hpp"
#include "support/threading.hpp"
#include "support/timer.hpp"

namespace pacga::baseline {

void IslandConfig::validate() const {
  if (islands == 0) throw std::invalid_argument("IslandConfig: 0 islands");
  if (island_population < 2)
    throw std::invalid_argument("IslandConfig: island population < 2");
  if (!(p_comb >= 0.0 && p_comb <= 1.0) || !(p_mut >= 0.0 && p_mut <= 1.0))
    throw std::invalid_argument("IslandConfig: probability out of [0,1]");
  if (migration_interval == 0)
    throw std::invalid_argument("IslandConfig: migration interval == 0");
}

namespace {

/// One-slot mailbox on each ring edge, protected by a mutex. A sender
/// overwrites a stale migrant (only the freshest best matters).
struct Mailbox {
  std::mutex mutex;
  std::optional<cga::Individual> migrant;
};

}  // namespace

cga::Result run_island_ga(const etc::EtcMatrix& etc,
                          const IslandConfig& config) {
  config.validate();
  const std::size_t n_islands = config.islands;
  auto rngs = support::make_streams(config.seed, n_islands + 1);

  // Mailbox i feeds island i (written by island (i-1+n)%n).
  std::vector<std::unique_ptr<Mailbox>> mail(n_islands);
  for (auto& m : mail) m = std::make_unique<Mailbox>();

  std::vector<support::Padded<std::uint64_t>> evals(n_islands);
  std::vector<support::Padded<std::uint64_t>> gens(n_islands);
  std::vector<std::optional<cga::Individual>> island_best(n_islands);

  std::atomic<std::uint64_t> global_evaluations{0};
  const cga::TerminationController termination(config.termination);

  auto worker = [&](std::size_t tid) {
    support::Xoshiro256& rng = rngs[tid + 1];
    std::vector<cga::Individual> pop;
    pop.reserve(config.island_population);
    for (std::size_t i = 0; i < config.island_population; ++i) {
      pop.push_back(cga::Individual::evaluated(
          sched::Schedule::random(etc, rng), config.objective,
          config.lambda));
    }
    if (config.seed_min_min && tid == 0) {
      pop[0] = cga::Individual::evaluated(heur::min_min(etc),
                                          config.objective, config.lambda);
    }

    auto best_of = [&]() -> std::size_t {
      std::size_t b = 0;
      for (std::size_t i = 1; i < pop.size(); ++i) {
        if (pop[i].fitness < pop[b].fitness) b = i;
      }
      return b;
    };
    auto worst_of = [&]() -> std::size_t {
      std::size_t w = 0;
      for (std::size_t i = 1; i < pop.size(); ++i) {
        if (pop[i].fitness > pop[w].fitness) w = i;
      }
      return w;
    };

    cga::BestTracker best(pop[best_of()]);
    std::vector<double> fitness_view(pop.size());
    std::uint64_t local_evals = 0;
    std::uint64_t generation = 0;

    while (true) {
      // One steady-state generation: population-size offspring, each
      // replacing the current worst when better.
      for (std::size_t step = 0; step < pop.size(); ++step) {
        for (std::size_t i = 0; i < pop.size(); ++i)
          fitness_view[i] = pop[i].fitness;
        const auto [pa, pb] =
            cga::select_parents(config.selection, fitness_view, rng);
        sched::Schedule offspring =
            rng.bernoulli(config.p_comb)
                ? cga::crossover(config.crossover, pop[pa].schedule,
                                 pop[pb].schedule, rng)
                : pop[pa].schedule;
        if (rng.bernoulli(config.p_mut)) {
          cga::mutate(config.mutation, offspring, rng);
        }
        if (config.local_search.iterations > 0) {
          cga::h2ll(offspring, config.local_search, rng);
        }
        cga::Individual child = cga::Individual::evaluated(
            std::move(offspring), config.objective, config.lambda);
        ++local_evals;
        best.observe(child);
        const std::size_t w = worst_of();
        if (child.fitness < pop[w].fitness) pop[w] = std::move(child);
      }
      ++generation;

      // Ring migration: send a copy of the island best to the right
      // neighbor; adopt any migrant waiting in our own mailbox.
      if (generation % config.migration_interval == 0 && n_islands > 1) {
        {
          Mailbox& out = *mail[(tid + 1) % n_islands];
          std::lock_guard<std::mutex> lock(out.mutex);
          out.migrant = pop[best_of()];
        }
        {
          Mailbox& in = *mail[tid];
          std::lock_guard<std::mutex> lock(in.mutex);
          if (in.migrant) {
            const std::size_t w = worst_of();
            if (in.migrant->fitness < pop[w].fitness) {
              pop[w] = std::move(*in.migrant);
            }
            in.migrant.reset();
          }
        }
      }

      // The paper's per-sweep termination granularity, via the shared
      // controller: one verdict covering deadline, generation budget, and
      // the global evaluation total.
      const std::uint64_t evals_now =
          global_evaluations.fetch_add(pop.size(),
                                       std::memory_order_relaxed) +
          pop.size();
      if (termination.sweep_done(generation, evals_now)) break;
    }
    evals[tid].value = local_evals;
    gens[tid].value = generation;
    island_best[tid] = best.take();
  };

  {
    support::ScopedThreads threads(n_islands, worker);
  }  // join

  std::optional<cga::BestTracker> best;
  for (auto& ib : island_best) {
    if (!ib) continue;
    if (!best) {
      best.emplace(*ib);
    } else {
      best->observe(*ib);
    }
  }
  cga::Individual winner = best->take();
  cga::Result result{std::move(winner.schedule)};
  result.best_fitness = winner.fitness;
  result.elapsed_seconds = termination.elapsed_seconds();
  for (std::size_t i = 0; i < n_islands; ++i) {
    result.evaluations += evals[i].value;
    result.generations = std::max(result.generations, gens[i].value);
  }
  return result;
}

}  // namespace pacga::baseline
