#include "batch/event_stream.hpp"

#include <array>
#include <cmath>
#include <stdexcept>
#include <string>

#include "support/rng.hpp"

namespace pacga::batch {

using dynamic::EventKind;
using dynamic::GridEvent;

namespace {

void require_rate(double r, const char* name) {
  if (!(r >= 0.0) || !std::isfinite(r))
    throw std::invalid_argument(std::string("EventStreamSpec: ") + name +
                                " must be >= 0 and finite");
}

void require_range(double lo, double hi, double floor, const char* name) {
  if (!(lo >= floor) || !std::isfinite(lo) || !(hi >= lo) || !std::isfinite(hi))
    throw std::invalid_argument(std::string("EventStreamSpec: ") + name +
                                " range is degenerate");
}

}  // namespace

void validate(const EventStreamSpec& spec) {
  if (!(spec.duration > 0.0) || !std::isfinite(spec.duration))
    throw std::invalid_argument(
        "EventStreamSpec: duration must be positive and finite");
  require_rate(spec.arrival_rate, "arrival_rate");
  require_rate(spec.cancel_rate, "cancel_rate");
  require_rate(spec.down_rate, "down_rate");
  require_rate(spec.up_rate, "up_rate");
  require_rate(spec.slowdown_rate, "slowdown_rate");
  const double total = spec.arrival_rate + spec.cancel_rate + spec.down_rate +
                       spec.up_rate + spec.slowdown_rate;
  if (!(total > 0.0))
    throw std::invalid_argument(
        "EventStreamSpec: at least one rate must be positive");
  require_range(spec.slowdown_lo, spec.slowdown_hi, 1.0, "slowdown factor");
  require_range(spec.workload_lo, spec.workload_hi, 0.0, "workload");
  if (!(spec.workload_lo > 0.0))
    throw std::invalid_argument("EventStreamSpec: workload_lo must be > 0");
  require_range(spec.mips_lo, spec.mips_hi, 0.0, "mips");
  if (!(spec.mips_lo > 0.0))
    throw std::invalid_argument("EventStreamSpec: mips_lo must be > 0");
  if (!(spec.up_ready_hi >= 0.0) || !std::isfinite(spec.up_ready_hi))
    throw std::invalid_argument(
        "EventStreamSpec: up_ready_hi must be >= 0 and finite");
  if (spec.initial_tasks == 0 || spec.initial_machines == 0)
    throw std::invalid_argument(
        "EventStreamSpec: initial_tasks and initial_machines must be > 0");
}

std::vector<GridEvent> generate_event_stream(const EventStreamSpec& spec) {
  validate(spec);

  support::Xoshiro256 rng(spec.seed);
  std::vector<GridEvent> stream;
  std::size_t tasks = spec.initial_tasks;
  std::size_t machines = spec.initial_machines;
  const double total_rate = spec.arrival_rate + spec.cancel_rate +
                            spec.down_rate + spec.up_rate +
                            spec.slowdown_rate;

  double t = 0.0;
  while (spec.max_events == 0 || stream.size() < spec.max_events) {
    const double u = 1.0 - rng.uniform();  // (0, 1]
    t += -std::log(u) / total_rate;        // superposed Poisson gap
    if (t > spec.duration && spec.max_events == 0) break;

    // Categorical draw over the kinds that are LEGAL in the current
    // state (cancel keeps >= 1 task, down keeps >= 1 machine), weighted
    // by their configured rates. Restricting the support instead of
    // skipping the tick keeps the stream dense under extreme churn.
    std::array<std::pair<EventKind, double>, 5> kinds{{
        {EventKind::kTaskArrival, spec.arrival_rate},
        {EventKind::kTaskCancel, tasks > 1 ? spec.cancel_rate : 0.0},
        {EventKind::kMachineDown, machines > 1 ? spec.down_rate : 0.0},
        {EventKind::kMachineUp, spec.up_rate},
        {EventKind::kMachineSlowdown, spec.slowdown_rate},
    }};
    double legal_rate = 0.0;
    for (const auto& [kind, rate] : kinds) legal_rate += rate;
    if (!(legal_rate > 0.0)) break;  // only illegal kinds are configured

    // Walk the cumulative rates; default to the LAST legal kind so an FP
    // rounding edge (pick landing exactly on legal_rate) can never emit a
    // kind whose rate is zero.
    double pick = rng.uniform() * legal_rate;
    EventKind kind = EventKind::kTaskArrival;
    for (const auto& [k, rate] : kinds) {
      if (rate <= 0.0) continue;
      kind = k;
      if (pick < rate) break;
      pick -= rate;
    }

    switch (kind) {
      case EventKind::kTaskArrival:
        stream.push_back(dynamic::task_arrival(
            rng.uniform(spec.workload_lo, spec.workload_hi), t));
        ++tasks;
        break;
      case EventKind::kTaskCancel:
        stream.push_back(dynamic::task_cancel(rng.index(tasks), t));
        --tasks;
        break;
      case EventKind::kMachineDown:
        stream.push_back(dynamic::machine_down(rng.index(machines), t));
        --machines;
        break;
      case EventKind::kMachineUp: {
        const double mips = rng.uniform(spec.mips_lo, spec.mips_hi);
        // The ready draw happens only when configured, so streams from
        // pre-ready-time specs stay byte-identical (golden contract).
        if (spec.up_ready_hi > 0.0) {
          stream.push_back(dynamic::machine_up_ready(
              mips, rng.uniform(0.0, spec.up_ready_hi), t));
        } else {
          stream.push_back(dynamic::machine_up(mips, t));
        }
        ++machines;
        break;
      }
      case EventKind::kMachineSlowdown: {
        double factor = rng.uniform(spec.slowdown_lo, spec.slowdown_hi);
        // Half the episodes are recoveries so ETCs stay bounded (the
        // mutator clamps accumulated slowdown anyway, but a stream that
        // only degrades would pin every machine at the clamp).
        if (rng.bernoulli(0.5)) factor = 1.0 / factor;
        stream.push_back(
            dynamic::machine_slowdown(rng.index(machines), factor, t));
        break;
      }
      case EventKind::kEpochCommit:
        break;  // never drawn: commits are schedule-dependent (see kinds[])
    }
  }
  return stream;
}

}  // namespace pacga::batch
