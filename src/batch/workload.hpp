// Dynamic-grid workload model.
//
// The paper's problem statement (§2.1) is richer than a single static ETC
// matrix: tasks originate from users over time (parameter sweeps,
// Monte-Carlo campaigns), machines have ready times from earlier work, and
// resources join/drop dynamically. This module generates that scenario
// from first principles — task workloads in millions of instructions,
// machine capacities in mips (the quantities §2.1 lists) — and derives the
// per-batch ETC matrices the scheduler consumes:
//     ETC[t][m] = workload_t / mips_m * noise(t, m)
// with multiplicative noise controlling the consistency class (zero noise
// gives a perfectly consistent matrix; larger noise makes machines
// incomparable, i.e. inconsistent).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "etc/etc_matrix.hpp"

namespace pacga::batch {

/// One submitted task.
struct Task {
  double arrival = 0.0;   ///< submission time
  double workload = 0.0;  ///< millions of instructions
};

/// One grid resource.
struct Machine {
  double mips = 0.0;  ///< computing capacity
};

/// Workload generation parameters.
struct WorkloadSpec {
  std::size_t tasks = 1024;
  std::size_t machines = 16;
  /// Poisson arrival rate (tasks per unit of simulated time). Arrival
  /// times are the cumulative sum of Exp(rate) gaps.
  double arrival_rate = 10.0;
  /// Task workloads ~ U(workload_lo, workload_hi).
  double workload_lo = 1.0;
  double workload_hi = 3000.0;
  /// Machine capacities ~ U(mips_lo, mips_hi).
  double mips_lo = 1.0;
  double mips_hi = 10.0;
  /// Per-(task, machine) multiplicative noise: factor ~ U(1, 1 + w).
  /// 0 = consistent ETCs; >= ~1 produces inconsistent matrices.
  double inconsistency = 0.5;
  std::uint64_t seed = 1;
};

/// A generated scenario: tasks sorted by arrival plus the machine park.
struct Workload {
  std::vector<Task> tasks;
  std::vector<Machine> machines;
};

/// Throws std::invalid_argument naming the offending parameter when `spec`
/// is degenerate (zero tasks/machines, non-positive or non-finite rate,
/// inverted workload/mips ranges, negative inconsistency) — the guard that
/// keeps inf/NaN arrival times out of the simulator and the service.
void validate(const WorkloadSpec& spec);

/// Generates a workload per `spec`. Deterministic in the seed. Validates
/// `spec` first.
Workload generate_workload(const WorkloadSpec& spec);

/// Builds the ETC matrix of the ENTIRE workload as one batch on idle
/// machines (zero ready times) — the adapter that turns a workload
/// reference into a solvable instance for the scheduler service's
/// workload-spec jobs. Deterministic in spec.seed.
etc::EtcMatrix make_workload_etc(const WorkloadSpec& spec);

/// Builds the ETC matrix for one batch of tasks on a machine park with
/// the given ready times (one per machine). The noise is a deterministic
/// hash of (seed, original task id, machine id), so a task resubmitted
/// after a machine drop keeps its execution profile.
etc::EtcMatrix make_batch_etc(const Workload& workload,
                              std::span<const std::size_t> task_ids,
                              std::span<const std::size_t> machine_ids,
                              std::span<const double> ready,
                              double inconsistency, std::uint64_t seed);

}  // namespace pacga::batch
