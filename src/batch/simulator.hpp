// Discrete-epoch dynamic-grid simulator.
//
// Reproduces the operating regime the paper targets (§2.1): tasks arrive
// continuously; every `epoch_length` units of time the broker gathers the
// pending batch, derives the ETC matrix with the machines' CURRENT ready
// times, and asks a scheduling policy for an assignment. Machines may drop
// (their unfinished, non-preemptive tasks are resubmitted) or join.
//
// The policy is any callable from ETC matrix to schedule — the heuristics,
// the sequential CGA and PA-CGA all plug in directly (see policies.hpp),
// which is how the library answers "what does the GA buy me in the live
// system, not just on a frozen benchmark matrix?".
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "batch/workload.hpp"
#include "sched/schedule.hpp"

namespace pacga::batch {

/// A scheduling policy: batch ETC (with ready times) -> assignment.
using Policy = std::function<sched::Schedule(const etc::EtcMatrix&)>;

/// Simulation parameters.
struct SimSpec {
  double epoch_length = 1.0;
  /// Per-epoch probability that one random alive machine drops.
  double machine_drop_prob = 0.0;
  /// Per-epoch probability that one dropped machine rejoins.
  double machine_join_prob = 0.0;
  /// ETC noise/consistency knob forwarded to make_batch_etc.
  double inconsistency = 0.5;
  std::uint64_t seed = 1;
  /// Safety valve: abort after this many epochs (0 = no limit). Guards
  /// against policies that never drain the queue when machines keep
  /// dropping.
  std::size_t max_epochs = 100000;
};

/// Aggregate outcome of one simulation.
struct SimMetrics {
  double completion_time = 0.0;  ///< when the last task finished
  double mean_wait = 0.0;        ///< mean (start - arrival)
  double mean_response = 0.0;    ///< mean (finish - arrival)
  double max_response = 0.0;
  double utilization = 0.0;      ///< busy time / (alive machine-time)
  std::size_t epochs = 0;
  std::size_t scheduled_tasks = 0;    ///< assignments made (incl. re-runs)
  std::size_t resubmissions = 0;      ///< tasks re-queued by machine drops
  std::size_t drops = 0;              ///< machines lost
  std::size_t joins = 0;              ///< machines (re)gained
};

/// Runs the scenario to completion (all tasks finished) and returns the
/// metrics. Throws std::runtime_error if every machine drops with work
/// still pending and none rejoins within max_epochs.
SimMetrics simulate(const Workload& workload, const SimSpec& spec,
                    const Policy& policy);

}  // namespace pacga::batch
