#include "batch/simulator.hpp"

#include <algorithm>
#include <stdexcept>

#include "support/rng.hpp"

namespace pacga::batch {

namespace {

/// One accepted assignment on a machine's timeline.
struct Commitment {
  std::size_t task = 0;
  double start = 0.0;
  double finish = 0.0;
};

}  // namespace

SimMetrics simulate(const Workload& workload, const SimSpec& spec,
                    const Policy& policy) {
  if (spec.epoch_length <= 0.0)
    throw std::invalid_argument("simulate: non-positive epoch length");
  const std::size_t n_tasks = workload.tasks.size();
  const std::size_t n_machines = workload.machines.size();
  if (n_tasks == 0 || n_machines == 0)
    throw std::invalid_argument("simulate: empty workload");

  support::Xoshiro256 rng(spec.seed ^ 0x51u);
  SimMetrics metrics;

  std::vector<bool> alive(n_machines, true);
  std::vector<double> busy_until(n_machines, 0.0);
  std::vector<std::vector<Commitment>> queue(n_machines);
  std::vector<double> task_start(n_tasks, -1.0);
  std::vector<double> task_finish(n_tasks, -1.0);
  std::vector<std::size_t> pending;   // arrived, not (re)scheduled
  std::size_t next_arrival = 0;       // tasks are sorted by arrival
  double busy_time = 0.0;
  std::vector<double> alive_since(n_machines, 0.0);
  std::vector<double> alive_total(n_machines, 0.0);

  double now = 0.0;
  const bool churn = spec.machine_drop_prob > 0.0 || spec.machine_join_prob > 0.0;

  auto all_done = [&] {
    if (next_arrival < n_tasks || !pending.empty()) return false;
    if (!churn) return true;  // schedule fixed; outcome determined
    // With churn, a still-running commitment can yet be killed: wait until
    // wall time passes the last finish.
    for (std::size_t m = 0; m < n_machines; ++m) {
      if (alive[m] && busy_until[m] > now) return false;
    }
    return true;
  };

  while (!all_done()) {
    if (spec.max_epochs != 0 && metrics.epochs >= spec.max_epochs)
      throw std::runtime_error("simulate: epoch limit exceeded");
    now = static_cast<double>(metrics.epochs) * spec.epoch_length;

    // --- machine churn -----------------------------------------------
    if (metrics.epochs > 0 && spec.machine_drop_prob > 0.0 &&
        rng.bernoulli(spec.machine_drop_prob)) {
      std::vector<std::size_t> candidates;
      for (std::size_t m = 0; m < n_machines; ++m) {
        if (alive[m]) candidates.push_back(m);
      }
      if (!candidates.empty()) {
        const std::size_t victim = candidates[rng.index(candidates.size())];
        alive[victim] = false;
        alive_total[victim] += now - alive_since[victim];
        ++metrics.drops;
        // Non-preemptive model: anything unfinished on the victim restarts
        // elsewhere from scratch; partially executed time is wasted but
        // counted as busy.
        auto& q = queue[victim];
        for (auto it = q.begin(); it != q.end();) {
          if (it->finish > now) {
            if (it->start < now) busy_time += now - it->start;
            task_start[it->task] = -1.0;
            task_finish[it->task] = -1.0;
            pending.push_back(it->task);
            ++metrics.resubmissions;
            it = q.erase(it);
          } else {
            ++it;
          }
        }
        busy_until[victim] = now;
      }
    }
    if (metrics.epochs > 0 && spec.machine_join_prob > 0.0 &&
        rng.bernoulli(spec.machine_join_prob)) {
      std::vector<std::size_t> dead;
      for (std::size_t m = 0; m < n_machines; ++m) {
        if (!alive[m]) dead.push_back(m);
      }
      if (!dead.empty()) {
        const std::size_t reborn = dead[rng.index(dead.size())];
        alive[reborn] = true;
        alive_since[reborn] = now;
        busy_until[reborn] = now;
        ++metrics.joins;
      }
    }

    // --- gather the epoch's batch --------------------------------------
    while (next_arrival < n_tasks &&
           workload.tasks[next_arrival].arrival <= now) {
      pending.push_back(next_arrival);
      ++next_arrival;
    }

    // --- schedule the batch --------------------------------------------
    if (!pending.empty()) {
      std::vector<std::size_t> park;
      for (std::size_t m = 0; m < n_machines; ++m) {
        if (alive[m]) park.push_back(m);
      }
      if (!park.empty()) {
        std::sort(pending.begin(), pending.end());
        std::vector<double> ready(park.size());
        for (std::size_t bm = 0; bm < park.size(); ++bm) {
          ready[bm] = std::max(0.0, busy_until[park[bm]] - now);
        }
        const etc::EtcMatrix batch_etc = make_batch_etc(
            workload, pending, park, ready, spec.inconsistency, spec.seed);
        const sched::Schedule schedule = policy(batch_etc);
        if (schedule.tasks() != pending.size())
          throw std::runtime_error("simulate: policy returned wrong size");

        for (std::size_t bi = 0; bi < pending.size(); ++bi) {
          const std::size_t machine = park[schedule.machine_of(bi)];
          const std::size_t task = pending[bi];
          const double exec = batch_etc(bi, schedule.machine_of(bi));
          const double start = std::max(now, busy_until[machine]);
          const double finish = start + exec;
          busy_until[machine] = finish;
          queue[machine].push_back({task, start, finish});
          task_start[task] = start;
          task_finish[task] = finish;
          busy_time += exec;
          ++metrics.scheduled_tasks;
        }
        pending.clear();
      }
    }
    ++metrics.epochs;
  }

  // --- metrics -----------------------------------------------------------
  double wait_sum = 0.0, response_sum = 0.0;
  for (std::size_t t = 0; t < n_tasks; ++t) {
    if (task_finish[t] < 0.0)
      throw std::runtime_error("simulate: unfinished task after drain");
    const double wait = task_start[t] - workload.tasks[t].arrival;
    const double response = task_finish[t] - workload.tasks[t].arrival;
    wait_sum += wait;
    response_sum += response;
    metrics.max_response = std::max(metrics.max_response, response);
    metrics.completion_time = std::max(metrics.completion_time, task_finish[t]);
  }
  metrics.mean_wait = wait_sum / static_cast<double>(n_tasks);
  metrics.mean_response = response_sum / static_cast<double>(n_tasks);

  double machine_time = 0.0;
  for (std::size_t m = 0; m < n_machines; ++m) {
    machine_time += alive_total[m];
    if (alive[m]) {
      machine_time += std::max(0.0, metrics.completion_time - alive_since[m]);
    }
  }
  metrics.utilization = machine_time > 0.0 ? busy_time / machine_time : 0.0;
  return metrics;
}

}  // namespace pacga::batch
