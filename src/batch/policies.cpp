#include "batch/policies.hpp"

#include <algorithm>
#include <memory>

#include "heuristics/listsched.hpp"
#include "heuristics/minmin.hpp"
#include "heuristics/sufferage.hpp"
#include "pacga/parallel_engine.hpp"
#include "support/rng.hpp"

namespace pacga::batch {

Policy min_min_policy() {
  return [](const etc::EtcMatrix& etc) { return heur::min_min(etc); };
}

Policy mct_policy() {
  return [](const etc::EtcMatrix& etc) { return heur::mct(etc); };
}

Policy sufferage_policy() {
  return [](const etc::EtcMatrix& etc) { return heur::sufferage(etc); };
}

Policy random_policy(std::uint64_t seed) {
  // Shared state: the policy is invoked once per epoch, sequentially.
  auto rng = std::make_shared<support::Xoshiro256>(seed);
  return [rng](const etc::EtcMatrix& etc) {
    return sched::Schedule::random(etc, *rng);
  };
}

Policy pa_cga_policy(cga::Config base, double budget_ms) {
  return [base, budget_ms](const etc::EtcMatrix& etc) {
    cga::Config config = base;
    config.termination = cga::Termination::after_seconds(budget_ms / 1000.0);
    // Shrink the grid for small batches: a 16x16 population on a 3-task
    // batch is pure overhead. Keep at least 4x4 so neighborhoods exist.
    const std::size_t target_pop =
        std::clamp<std::size_t>(4 * etc.tasks(), 16, 256);
    std::size_t side = 4;
    while ((side + 1) * (side + 1) <= target_pop && side < 16) ++side;
    config.width = side;
    config.height = side;
    config.threads = std::min(config.threads, config.population_size());
    return par::run_parallel(etc, config).result.best;
  };
}

}  // namespace pacga::batch
