// Policy adapters: turn the library's schedulers into simulator policies.
//
// Metaheuristic policies get a per-epoch wall budget — the live-broker
// constraint the paper's 90 s experiments abstract away. A PA-CGA policy
// with a 50 ms budget answers the practical question "is the GA worth
// running inside the scheduling loop?".
#pragma once

#include <cstdint>

#include "batch/simulator.hpp"
#include "cga/config.hpp"

namespace pacga::batch {

/// Min-min on each batch (the strong constructive baseline).
Policy min_min_policy();

/// MCT on each batch (the cheap list-scheduling baseline).
Policy mct_policy();

/// Sufferage on each batch.
Policy sufferage_policy();

/// Uniformly random assignment (control).
Policy random_policy(std::uint64_t seed);

/// PA-CGA on each batch. `base` supplies the algorithm parameters; the
/// termination is overridden with `budget_ms` per epoch. The grid is
/// shrunk automatically for small batches (population never exceeds
/// ~4x batch size) so tiny epochs do not waste the budget evolving a
/// population much larger than the problem.
Policy pa_cga_policy(cga::Config base, double budget_ms);

}  // namespace pacga::batch
