#include "batch/workload.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "support/rng.hpp"

namespace pacga::batch {

void validate(const WorkloadSpec& spec) {
  // Each degenerate parameter gets its own message: a spec assembled from
  // user input (the service daemon, sweep scripts) must fail with a clear
  // diagnosis instead of silently producing inf/NaN arrival times or
  // division-by-zero ETC entries downstream.
  if (spec.tasks == 0)
    throw std::invalid_argument("WorkloadSpec: tasks must be > 0");
  if (spec.machines == 0)
    throw std::invalid_argument("WorkloadSpec: machines must be > 0");
  if (!(spec.arrival_rate > 0.0) || !std::isfinite(spec.arrival_rate))
    throw std::invalid_argument(
        "WorkloadSpec: arrival_rate must be positive and finite (got " +
        std::to_string(spec.arrival_rate) + ")");
  if (!(spec.workload_lo > 0.0) || !std::isfinite(spec.workload_lo))
    throw std::invalid_argument("WorkloadSpec: workload_lo must be positive");
  if (!(spec.workload_hi >= spec.workload_lo) ||
      !std::isfinite(spec.workload_hi))
    throw std::invalid_argument(
        "WorkloadSpec: workload_hi must be finite and >= workload_lo");
  if (!(spec.mips_lo > 0.0) || !std::isfinite(spec.mips_lo))
    throw std::invalid_argument("WorkloadSpec: mips_lo must be positive");
  if (!(spec.mips_hi >= spec.mips_lo) || !std::isfinite(spec.mips_hi))
    throw std::invalid_argument(
        "WorkloadSpec: mips_hi must be finite and >= mips_lo");
  if (!(spec.inconsistency >= 0.0) || !std::isfinite(spec.inconsistency))
    throw std::invalid_argument(
        "WorkloadSpec: inconsistency must be >= 0 and finite");
}

Workload generate_workload(const WorkloadSpec& spec) {
  validate(spec);

  support::Xoshiro256 rng(spec.seed);
  Workload w;
  w.tasks.reserve(spec.tasks);
  double t = 0.0;
  for (std::size_t i = 0; i < spec.tasks; ++i) {
    // Exponential inter-arrival gap.
    const double u = 1.0 - rng.uniform();  // (0, 1]
    t += -std::log(u) / spec.arrival_rate;
    w.tasks.push_back({t, rng.uniform(spec.workload_lo, spec.workload_hi)});
  }
  w.machines.reserve(spec.machines);
  for (std::size_t m = 0; m < spec.machines; ++m) {
    w.machines.push_back({rng.uniform(spec.mips_lo, spec.mips_hi)});
  }
  return w;
}

etc::EtcMatrix make_batch_etc(const Workload& workload,
                              std::span<const std::size_t> task_ids,
                              std::span<const std::size_t> machine_ids,
                              std::span<const double> ready,
                              double inconsistency, std::uint64_t seed) {
  if (task_ids.empty() || machine_ids.empty())
    throw std::invalid_argument("make_batch_etc: empty batch or park");
  if (ready.size() != machine_ids.size())
    throw std::invalid_argument("make_batch_etc: ready size mismatch");

  std::vector<double> data(task_ids.size() * machine_ids.size());
  for (std::size_t bi = 0; bi < task_ids.size(); ++bi) {
    const Task& task = workload.tasks.at(task_ids[bi]);
    for (std::size_t bm = 0; bm < machine_ids.size(); ++bm) {
      const Machine& mac = workload.machines.at(machine_ids[bm]);
      // Deterministic per-(task, machine) noise: the execution profile of
      // a task must not change when it is rescheduled after a drop.
      support::SplitMix64 hash(seed ^ (task_ids[bi] * 0x9e3779b97f4a7c15ULL) ^
                               (machine_ids[bm] * 0xc2b2ae3d27d4eb4fULL));
      const double unit =
          static_cast<double>(hash.next() >> 11) * 0x1.0p-53;  // [0,1)
      const double noise = 1.0 + inconsistency * unit;
      data[bi * machine_ids.size() + bm] = task.workload / mac.mips * noise;
    }
  }
  return etc::EtcMatrix(task_ids.size(), machine_ids.size(), std::move(data),
                        {ready.begin(), ready.end()});
}

etc::EtcMatrix make_workload_etc(const WorkloadSpec& spec) {
  const Workload w = generate_workload(spec);
  std::vector<std::size_t> task_ids(w.tasks.size());
  for (std::size_t i = 0; i < task_ids.size(); ++i) task_ids[i] = i;
  std::vector<std::size_t> machine_ids(w.machines.size());
  for (std::size_t m = 0; m < machine_ids.size(); ++m) machine_ids[m] = m;
  const std::vector<double> ready(machine_ids.size(), 0.0);
  return make_batch_etc(w, task_ids, machine_ids, ready, spec.inconsistency,
                        spec.seed);
}

}  // namespace pacga::batch
