// Dynamic event-stream generator — the churn counterpart of the workload
// generator.
//
// Superposes five independent Poisson processes (task arrivals, task
// cancellations, machine drops, joins, and slowdown/recovery episodes)
// into one time-ordered stream of CONCRETE dynamic::GridEvents: the
// generator tracks the evolving task/machine counts itself and draws
// exact target indices, so the stream can be replayed against an
// EtcMutator (or logged byte-for-byte) with no hidden state. Events that
// would violate a grid invariant — cancel with one task left, drop the
// last machine — are resampled into the kinds that remain legal, keeping
// configured rates meaningful even under extreme churn.
//
// Deterministic in spec.seed, like every generator in the library.
#pragma once

#include <cstdint>
#include <vector>

#include "dynamic/events.hpp"

namespace pacga::batch {

/// Rates are events per unit of simulated time (same clock as
/// WorkloadSpec::arrival_rate). A zero rate disables that event kind.
struct EventStreamSpec {
  /// Stream horizon; generation stops at the first event past it.
  /// Ignored when max_events is set (see below).
  double duration = 10.0;
  double arrival_rate = 4.0;   ///< TaskArrival
  double cancel_rate = 0.5;    ///< TaskCancel
  double down_rate = 0.25;     ///< MachineDown
  double up_rate = 0.25;       ///< MachineUp
  double slowdown_rate = 1.0;  ///< MachineSlowdown (or recovery)
  /// Slowdown factors ~ U(slowdown_lo, slowdown_hi); each episode is
  /// inverted to a recovery (1/factor) with probability 1/2 so machines
  /// degrade AND heal and ETCs stay bounded over long streams.
  double slowdown_lo = 1.25;
  double slowdown_hi = 3.0;
  /// Arriving task workloads ~ U(workload_lo, workload_hi) — match the
  /// WorkloadSpec the instance was generated from.
  double workload_lo = 1.0;
  double workload_hi = 3000.0;
  /// Joining machine capacities ~ U(mips_lo, mips_hi).
  double mips_lo = 1.0;
  double mips_hi = 10.0;
  /// When > 0, joining machines carry a ready time ~ U(0, up_ready_hi) —
  /// a machine that returns still draining the in-flight work it went
  /// down with. 0 (default) keeps joins ready-free and the generated
  /// streams byte-identical to the pre-ready-time format.
  double up_ready_hi = 0.0;
  /// When nonzero, generate EXACTLY this many events and ignore the
  /// horizon (the fuzz tests' "exactly N events" knob — a 10k-event
  /// stream must not depend on how the rates happen to sum against
  /// `duration`). 0 = horizon only.
  std::size_t max_events = 0;
  /// Initial grid state the index draws start from.
  std::size_t initial_tasks = 0;
  std::size_t initial_machines = 0;
  std::uint64_t seed = 1;
};

/// Throws std::invalid_argument naming the offending parameter.
void validate(const EventStreamSpec& spec);

/// Generates the stream. Deterministic in spec.seed; validates first.
std::vector<dynamic::GridEvent> generate_event_stream(
    const EventStreamSpec& spec);

}  // namespace pacga::batch
