#include "support/kernels.hpp"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "support/rng.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define PACGA_KERNELS_X86_AVX2 1
#include <immintrin.h>
#endif

namespace pacga::support::kernels {

namespace {

// ---- portable scalar path ------------------------------------------------
//
// These loops ARE the semantic definition: in-order scans with strict
// comparisons (lowest index wins ties). The AVX2 path reproduces them
// bit-for-bit; test_kernels holds both to that contract.

// max_value/min_value return the extreme VALUE canonicalized by `+ 0.0`:
// the only doubles that compare equal with different bit patterns are
// signed zeros (NaN is excluded by contract), and -0.0 + 0.0 == +0.0, so
// the result is bit-identical across paths no matter WHICH of several
// compare-equal extremes a reduction happens to select. That freedom is
// what lets the AVX2 path use raw max_pd/min_pd reductions — the fastest
// shape — instead of index-tracked blends.

double scalar_max_value(const double* d, std::size_t n) {
  assert(n > 0);
  double best = d[0];
  for (std::size_t i = 1; i < n; ++i) {
    if (d[i] > best) best = d[i];
  }
  return best + 0.0;
}

double scalar_min_value(const double* d, std::size_t n) {
  assert(n > 0);
  double best = d[0];
  for (std::size_t i = 1; i < n; ++i) {
    if (d[i] < best) best = d[i];
  }
  return best + 0.0;
}

std::size_t scalar_argmax(const double* d, std::size_t n) {
  assert(n > 0);
  std::size_t arg = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (d[i] > d[arg]) arg = i;
  }
  return arg;
}

std::size_t scalar_argmin(const double* d, std::size_t n) {
  assert(n > 0);
  std::size_t arg = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (d[i] < d[arg]) arg = i;
  }
  return arg;
}

MinScan scalar_min_plus(const double* a, const double* b, std::size_t n) {
  assert(n > 0);
  MinScan r{a[0] + b[0], 0};
  for (std::size_t i = 1; i < n; ++i) {
    const double c = a[i] + b[i];
    if (c < r.value) {
      r.value = c;
      r.index = i;
    }
  }
  return r;
}

void scalar_scale_inplace(double* d, std::size_t n, double factor) {
  for (std::size_t i = 0; i < n; ++i) d[i] *= factor;
}

// hash_block is DEFINED as a 4-lane interleaved xorshift mix: lane l folds
// elements l, l+4, l+8, ... so a 4-wide vector path computes the exact same
// lane states. Quality is adequate for content fingerprints (every lane
// word passes through hash_mix avalanches in the combine); stability across
// platforms and dispatch paths is the hard requirement.
inline std::uint64_t hash_lane_step(std::uint64_t h, std::uint64_t bits) {
  h ^= bits;
  h ^= h << 13;
  h ^= h >> 7;
  h ^= h << 17;
  return h;
}

std::uint64_t scalar_hash_block(const double* d, std::size_t n,
                                std::uint64_t seed) {
  std::uint64_t lane[4];
  for (std::size_t l = 0; l < 4; ++l) {
    lane[l] = seed + (l + 1) * 0x9e3779b97f4a7c15ULL;
  }
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t bits;
    __builtin_memcpy(&bits, &d[i], sizeof bits);
    lane[i & 3] = hash_lane_step(lane[i & 3], bits);
  }
  std::uint64_t acc = hash_mix(seed, n);
  for (std::size_t l = 0; l < 4; ++l) acc = hash_mix(acc, lane[l]);
  return acc;
}

void scalar_batch_max(const double* const* rows, std::size_t count,
                      std::size_t n, double* out) {
  for (std::size_t r = 0; r < count; ++r) out[r] = scalar_max_value(rows[r], n);
}

constexpr Dispatch kScalar{
    scalar_max_value, scalar_min_value,     scalar_argmax,     scalar_argmin,
    scalar_min_plus,  scalar_scale_inplace, scalar_hash_block,
    scalar_batch_max, "scalar"};

// ---- AVX2 path -----------------------------------------------------------

#if PACGA_KERNELS_X86_AVX2

// Folds a 4-lane (value, index) state down to the scalar-scan answer:
// smallest index among the lanes holding the extreme value. Lane l of a
// block starting at element i holds element i + l, so comparing the stored
// indices directly reproduces the in-order scan's lowest-index tie-break.
template <bool kMax>
std::size_t fold_lanes(const double (&v)[4], const std::uint64_t (&idx)[4]) {
  std::size_t best = 0;
  for (std::size_t l = 1; l < 4; ++l) {
    const bool better = kMax ? v[l] > v[best] : v[l] < v[best];
    if (better || (v[l] == v[best] && idx[l] < idx[best])) best = l;
  }
  return best;
}

// Raw max_pd/min_pd reductions: which of several compare-equal extremes
// wins differs from the scalar scan's first-occurrence pick, but the
// `+ 0.0` canonicalization (see the scalar definitions) erases the only
// representable difference (signed zeros), so bit-identity holds.

__attribute__((target("avx2"))) double avx2_max_value(const double* d,
                                                      std::size_t n) {
  assert(n > 0);
  std::size_t i = 0;
  double best = d[0];
  if (n >= 8) {
    __m256d acc = _mm256_loadu_pd(d);
    for (i = 4; i + 4 <= n; i += 4) {
      acc = _mm256_max_pd(acc, _mm256_loadu_pd(d + i));
    }
    alignas(32) double lanes[4];
    _mm256_store_pd(lanes, acc);
    best = lanes[0];
    for (std::size_t l = 1; l < 4; ++l) {
      if (lanes[l] > best) best = lanes[l];
    }
  }
  for (; i < n; ++i) {
    if (d[i] > best) best = d[i];
  }
  return best + 0.0;
}

__attribute__((target("avx2"))) double avx2_min_value(const double* d,
                                                      std::size_t n) {
  assert(n > 0);
  std::size_t i = 0;
  double best = d[0];
  if (n >= 8) {
    __m256d acc = _mm256_loadu_pd(d);
    for (i = 4; i + 4 <= n; i += 4) {
      acc = _mm256_min_pd(acc, _mm256_loadu_pd(d + i));
    }
    alignas(32) double lanes[4];
    _mm256_store_pd(lanes, acc);
    best = lanes[0];
    for (std::size_t l = 1; l < 4; ++l) {
      if (lanes[l] < best) best = lanes[l];
    }
  }
  for (; i < n; ++i) {
    if (d[i] < best) best = d[i];
  }
  return best + 0.0;
}

// Shared shape of the indexed reductions: per 4-wide block, a strict
// compare against the running per-lane best blends in the new values and
// their indices; within a lane the strict compare keeps the EARLIEST
// occurrence, and the cross-lane fold plus the scalar tail restore the
// global lowest-index tie-break. Four independent accumulator streams
// (16 elements per round) break the cmp->blend latency chain that would
// otherwise bound throughput; each lane of each stream still keeps the
// earliest index of ITS subsequence, so the 16-way fold remains exact.
template <bool kMax>
__attribute__((target("avx2"))) std::size_t avx2_argextreme(const double* d,
                                                            std::size_t n) {
  assert(n > 0);
  std::size_t i = 0;
  std::size_t arg = 0;
  if (n >= 32) {
    __m256d best[4];
    __m256i best_idx[4];
    __m256i idx[4];
    const __m256i step = _mm256_set1_epi64x(16);
    for (int s = 0; s < 4; ++s) {
      best[s] = _mm256_loadu_pd(d + 4 * s);
      best_idx[s] = _mm256_setr_epi64x(4 * s, 4 * s + 1, 4 * s + 2, 4 * s + 3);
      idx[s] = _mm256_add_epi64(best_idx[s], step);
    }
    for (i = 16; i + 16 <= n; i += 16) {
      for (int s = 0; s < 4; ++s) {
        const __m256d v = _mm256_loadu_pd(d + i + 4 * s);
        const __m256d better = kMax ? _mm256_cmp_pd(v, best[s], _CMP_GT_OQ)
                                    : _mm256_cmp_pd(v, best[s], _CMP_LT_OQ);
        best[s] = _mm256_blendv_pd(best[s], v, better);
        best_idx[s] = _mm256_blendv_epi8(best_idx[s], idx[s],
                                         _mm256_castpd_si256(better));
        idx[s] = _mm256_add_epi64(idx[s], step);
      }
    }
    alignas(32) double v[16];
    alignas(32) std::uint64_t vi[16];
    for (int s = 0; s < 4; ++s) {
      _mm256_store_pd(v + 4 * s, best[s]);
      _mm256_store_si256(reinterpret_cast<__m256i*>(vi + 4 * s), best_idx[s]);
    }
    std::size_t lane = 0;
    for (std::size_t l = 1; l < 16; ++l) {
      const bool better = kMax ? v[l] > v[lane] : v[l] < v[lane];
      if (better || (v[l] == v[lane] && vi[l] < vi[lane])) lane = l;
    }
    arg = static_cast<std::size_t>(vi[lane]);
  } else if (n >= 8) {
    __m256d best = _mm256_loadu_pd(d);
    __m256i best_idx = _mm256_setr_epi64x(0, 1, 2, 3);
    __m256i idx = _mm256_setr_epi64x(4, 5, 6, 7);
    const __m256i step = _mm256_set1_epi64x(4);
    for (i = 4; i + 4 <= n; i += 4) {
      const __m256d v = _mm256_loadu_pd(d + i);
      const __m256d better = kMax ? _mm256_cmp_pd(v, best, _CMP_GT_OQ)
                                  : _mm256_cmp_pd(v, best, _CMP_LT_OQ);
      best = _mm256_blendv_pd(best, v, better);
      best_idx = _mm256_blendv_epi8(best_idx, idx,
                                    _mm256_castpd_si256(better));
      idx = _mm256_add_epi64(idx, step);
    }
    alignas(32) double v[4];
    alignas(32) std::uint64_t vi[4];
    _mm256_store_pd(v, best);
    _mm256_store_si256(reinterpret_cast<__m256i*>(vi), best_idx);
    const std::size_t lane = fold_lanes<kMax>(v, vi);
    arg = static_cast<std::size_t>(vi[lane]);
  }
  // Tail indices are all larger than any vector-phase index, so the strict
  // compare alone preserves the tie-break.
  for (; i < n; ++i) {
    const bool better = kMax ? d[i] > d[arg] : d[i] < d[arg];
    if (better) arg = i;
  }
  return arg;
}

__attribute__((target("avx2"))) std::size_t avx2_argmax(const double* d,
                                                        std::size_t n) {
  return avx2_argextreme<true>(d, n);
}

__attribute__((target("avx2"))) std::size_t avx2_argmin(const double* d,
                                                        std::size_t n) {
  return avx2_argextreme<false>(d, n);
}

__attribute__((target("avx2"))) MinScan avx2_min_plus(const double* a,
                                                      const double* b,
                                                      std::size_t n) {
  assert(n > 0);
  std::size_t i = 0;
  MinScan r{a[0] + b[0], 0};
  if (n >= 32) {
    // Same 4-stream unroll as the indexed reductions (see avx2_argextreme).
    __m256d best[4];
    __m256i best_idx[4];
    __m256i idx[4];
    const __m256i step = _mm256_set1_epi64x(16);
    for (int s = 0; s < 4; ++s) {
      best[s] = _mm256_add_pd(_mm256_loadu_pd(a + 4 * s),
                              _mm256_loadu_pd(b + 4 * s));
      best_idx[s] = _mm256_setr_epi64x(4 * s, 4 * s + 1, 4 * s + 2, 4 * s + 3);
      idx[s] = _mm256_add_epi64(best_idx[s], step);
    }
    for (i = 16; i + 16 <= n; i += 16) {
      for (int s = 0; s < 4; ++s) {
        const __m256d c = _mm256_add_pd(_mm256_loadu_pd(a + i + 4 * s),
                                        _mm256_loadu_pd(b + i + 4 * s));
        const __m256d lt = _mm256_cmp_pd(c, best[s], _CMP_LT_OQ);
        best[s] = _mm256_blendv_pd(best[s], c, lt);
        best_idx[s] =
            _mm256_blendv_epi8(best_idx[s], idx[s], _mm256_castpd_si256(lt));
        idx[s] = _mm256_add_epi64(idx[s], step);
      }
    }
    alignas(32) double v[16];
    alignas(32) std::uint64_t vi[16];
    for (int s = 0; s < 4; ++s) {
      _mm256_store_pd(v + 4 * s, best[s]);
      _mm256_store_si256(reinterpret_cast<__m256i*>(vi + 4 * s), best_idx[s]);
    }
    std::size_t lane = 0;
    for (std::size_t l = 1; l < 16; ++l) {
      if (v[l] < v[lane] || (v[l] == v[lane] && vi[l] < vi[lane])) lane = l;
    }
    r = {v[lane], static_cast<std::size_t>(vi[lane])};
  } else if (n >= 8) {
    __m256d best = _mm256_add_pd(_mm256_loadu_pd(a), _mm256_loadu_pd(b));
    __m256i best_idx = _mm256_setr_epi64x(0, 1, 2, 3);
    __m256i idx = _mm256_setr_epi64x(4, 5, 6, 7);
    const __m256i step = _mm256_set1_epi64x(4);
    for (i = 4; i + 4 <= n; i += 4) {
      const __m256d c =
          _mm256_add_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
      const __m256d lt = _mm256_cmp_pd(c, best, _CMP_LT_OQ);
      best = _mm256_blendv_pd(best, c, lt);
      best_idx =
          _mm256_blendv_epi8(best_idx, idx, _mm256_castpd_si256(lt));
      idx = _mm256_add_epi64(idx, step);
    }
    alignas(32) double v[4];
    alignas(32) std::uint64_t vi[4];
    _mm256_store_pd(v, best);
    _mm256_store_si256(reinterpret_cast<__m256i*>(vi), best_idx);
    const std::size_t lane = fold_lanes<false>(v, vi);
    r = {v[lane], static_cast<std::size_t>(vi[lane])};
  }
  for (; i < n; ++i) {
    const double c = a[i] + b[i];
    if (c < r.value) r = {c, i};
  }
  return r;
}

__attribute__((target("avx2"))) void avx2_scale_inplace(double* d,
                                                        std::size_t n,
                                                        double factor) {
  const __m256d f = _mm256_set1_pd(factor);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(d + i, _mm256_mul_pd(_mm256_loadu_pd(d + i), f));
  }
  for (; i < n; ++i) d[i] *= factor;
}

__attribute__((target("avx2"))) std::uint64_t avx2_hash_block(
    const double* d, std::size_t n, std::uint64_t seed) {
  alignas(32) std::uint64_t lane[4];
  for (std::size_t l = 0; l < 4; ++l) {
    lane[l] = seed + (l + 1) * 0x9e3779b97f4a7c15ULL;
  }
  std::size_t i = 0;
  if (n >= 4) {
    __m256i h = _mm256_load_si256(reinterpret_cast<const __m256i*>(lane));
    for (; i + 4 <= n; i += 4) {
      const __m256i bits =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(d + i));
      h = _mm256_xor_si256(h, bits);
      h = _mm256_xor_si256(h, _mm256_slli_epi64(h, 13));
      h = _mm256_xor_si256(h, _mm256_srli_epi64(h, 7));
      h = _mm256_xor_si256(h, _mm256_slli_epi64(h, 17));
    }
    _mm256_store_si256(reinterpret_cast<__m256i*>(lane), h);
  }
  for (; i < n; ++i) {
    std::uint64_t bits;
    __builtin_memcpy(&bits, &d[i], sizeof bits);
    lane[i & 3] = hash_lane_step(lane[i & 3], bits);
  }
  std::uint64_t acc = hash_mix(seed, n);
  for (std::size_t l = 0; l < 4; ++l) acc = hash_mix(acc, lane[l]);
  return acc;
}

__attribute__((target("avx2"))) void avx2_batch_max(const double* const* rows,
                                                    std::size_t count,
                                                    std::size_t n,
                                                    double* out) {
  for (std::size_t r = 0; r < count; ++r) out[r] = avx2_max_value(rows[r], n);
}

constexpr Dispatch kAvx2{avx2_max_value, avx2_min_value,     avx2_argmax,
                         avx2_argmin,    avx2_min_plus,      avx2_scale_inplace,
                         avx2_hash_block, avx2_batch_max,    "avx2"};

// ---- AVX-512 path --------------------------------------------------------
//
// Same contract, 8-wide. The structure mirrors the AVX2 tier — raw
// max_pd/min_pd value reductions under `+ 0.0` canonicalization, strict
// per-lane compares that keep each lane's EARLIEST extreme, a cross-lane
// fold by (value, then lowest stored index), and a scalar tail — with two
// AVX-512 specifics: comparisons produce __mmask8 registers consumed by
// mask blends (no bit-pattern casts between double and integer vectors),
// and the 4-stream unroll advances 32 elements per round. Only avx512f is
// required. hash_block stays on the AVX2 path: its semantics are DEFINED
// as a 4-lane interleaved mix, so an 8-wide register buys nothing — the
// table reuses avx2_hash_block verbatim (avx512_supported() therefore also
// requires AVX2, a subset of every real AVX-512 CPU).

__attribute__((target("avx512f"))) double avx512_max_value(const double* d,
                                                           std::size_t n) {
  assert(n > 0);
  std::size_t i = 0;
  double best = d[0];
  if (n >= 16) {
    __m512d acc = _mm512_loadu_pd(d);
    for (i = 8; i + 8 <= n; i += 8) {
      acc = _mm512_max_pd(acc, _mm512_loadu_pd(d + i));
    }
    alignas(64) double lanes[8];
    _mm512_store_pd(lanes, acc);
    best = lanes[0];
    for (std::size_t l = 1; l < 8; ++l) {
      if (lanes[l] > best) best = lanes[l];
    }
  }
  for (; i < n; ++i) {
    if (d[i] > best) best = d[i];
  }
  return best + 0.0;
}

__attribute__((target("avx512f"))) double avx512_min_value(const double* d,
                                                           std::size_t n) {
  assert(n > 0);
  std::size_t i = 0;
  double best = d[0];
  if (n >= 16) {
    __m512d acc = _mm512_loadu_pd(d);
    for (i = 8; i + 8 <= n; i += 8) {
      acc = _mm512_min_pd(acc, _mm512_loadu_pd(d + i));
    }
    alignas(64) double lanes[8];
    _mm512_store_pd(lanes, acc);
    best = lanes[0];
    for (std::size_t l = 1; l < 8; ++l) {
      if (lanes[l] < best) best = lanes[l];
    }
  }
  for (; i < n; ++i) {
    if (d[i] < best) best = d[i];
  }
  return best + 0.0;
}

__attribute__((target("avx512f"))) inline __m512i avx512_iota(long long o) {
  return _mm512_set_epi64(o + 7, o + 6, o + 5, o + 4, o + 3, o + 2, o + 1, o);
}

template <bool kMax>
__attribute__((target("avx512f"))) std::size_t avx512_argextreme(
    const double* d, std::size_t n) {
  assert(n > 0);
  std::size_t i = 0;
  std::size_t arg = 0;
  if (n >= 64) {
    __m512d best[4];
    __m512i best_idx[4];
    __m512i idx[4];
    const __m512i step = _mm512_set1_epi64(32);
    for (int s = 0; s < 4; ++s) {
      best[s] = _mm512_loadu_pd(d + 8 * s);
      best_idx[s] = avx512_iota(8 * s);
      idx[s] = _mm512_add_epi64(best_idx[s], step);
    }
    for (i = 32; i + 32 <= n; i += 32) {
      for (int s = 0; s < 4; ++s) {
        const __m512d v = _mm512_loadu_pd(d + i + 8 * s);
        const __mmask8 better =
            kMax ? _mm512_cmp_pd_mask(v, best[s], _CMP_GT_OQ)
                 : _mm512_cmp_pd_mask(v, best[s], _CMP_LT_OQ);
        best[s] = _mm512_mask_blend_pd(better, best[s], v);
        best_idx[s] = _mm512_mask_blend_epi64(better, best_idx[s], idx[s]);
        idx[s] = _mm512_add_epi64(idx[s], step);
      }
    }
    alignas(64) double v[32];
    alignas(64) std::uint64_t vi[32];
    for (int s = 0; s < 4; ++s) {
      _mm512_store_pd(v + 8 * s, best[s]);
      _mm512_store_si512(vi + 8 * s, best_idx[s]);
    }
    std::size_t lane = 0;
    for (std::size_t l = 1; l < 32; ++l) {
      const bool better = kMax ? v[l] > v[lane] : v[l] < v[lane];
      if (better || (v[l] == v[lane] && vi[l] < vi[lane])) lane = l;
    }
    arg = static_cast<std::size_t>(vi[lane]);
  } else if (n >= 16) {
    __m512d best = _mm512_loadu_pd(d);
    __m512i best_idx = avx512_iota(0);
    __m512i idx = avx512_iota(8);
    const __m512i step = _mm512_set1_epi64(8);
    for (i = 8; i + 8 <= n; i += 8) {
      const __m512d v = _mm512_loadu_pd(d + i);
      const __mmask8 better = kMax ? _mm512_cmp_pd_mask(v, best, _CMP_GT_OQ)
                                   : _mm512_cmp_pd_mask(v, best, _CMP_LT_OQ);
      best = _mm512_mask_blend_pd(better, best, v);
      best_idx = _mm512_mask_blend_epi64(better, best_idx, idx);
      idx = _mm512_add_epi64(idx, step);
    }
    alignas(64) double v[8];
    alignas(64) std::uint64_t vi[8];
    _mm512_store_pd(v, best);
    _mm512_store_si512(vi, best_idx);
    std::size_t lane = 0;
    for (std::size_t l = 1; l < 8; ++l) {
      const bool better = kMax ? v[l] > v[lane] : v[l] < v[lane];
      if (better || (v[l] == v[lane] && vi[l] < vi[lane])) lane = l;
    }
    arg = static_cast<std::size_t>(vi[lane]);
  }
  // Tail indices are all larger than any vector-phase index, so the strict
  // compare alone preserves the tie-break.
  for (; i < n; ++i) {
    const bool better = kMax ? d[i] > d[arg] : d[i] < d[arg];
    if (better) arg = i;
  }
  return arg;
}

__attribute__((target("avx512f"))) std::size_t avx512_argmax(const double* d,
                                                             std::size_t n) {
  return avx512_argextreme<true>(d, n);
}

__attribute__((target("avx512f"))) std::size_t avx512_argmin(const double* d,
                                                             std::size_t n) {
  return avx512_argextreme<false>(d, n);
}

__attribute__((target("avx512f"))) MinScan avx512_min_plus(const double* a,
                                                           const double* b,
                                                           std::size_t n) {
  assert(n > 0);
  std::size_t i = 0;
  MinScan r{a[0] + b[0], 0};
  if (n >= 64) {
    __m512d best[4];
    __m512i best_idx[4];
    __m512i idx[4];
    const __m512i step = _mm512_set1_epi64(32);
    for (int s = 0; s < 4; ++s) {
      best[s] = _mm512_add_pd(_mm512_loadu_pd(a + 8 * s),
                              _mm512_loadu_pd(b + 8 * s));
      best_idx[s] = avx512_iota(8 * s);
      idx[s] = _mm512_add_epi64(best_idx[s], step);
    }
    for (i = 32; i + 32 <= n; i += 32) {
      for (int s = 0; s < 4; ++s) {
        const __m512d c = _mm512_add_pd(_mm512_loadu_pd(a + i + 8 * s),
                                        _mm512_loadu_pd(b + i + 8 * s));
        const __mmask8 lt = _mm512_cmp_pd_mask(c, best[s], _CMP_LT_OQ);
        best[s] = _mm512_mask_blend_pd(lt, best[s], c);
        best_idx[s] = _mm512_mask_blend_epi64(lt, best_idx[s], idx[s]);
        idx[s] = _mm512_add_epi64(idx[s], step);
      }
    }
    alignas(64) double v[32];
    alignas(64) std::uint64_t vi[32];
    for (int s = 0; s < 4; ++s) {
      _mm512_store_pd(v + 8 * s, best[s]);
      _mm512_store_si512(vi + 8 * s, best_idx[s]);
    }
    std::size_t lane = 0;
    for (std::size_t l = 1; l < 32; ++l) {
      if (v[l] < v[lane] || (v[l] == v[lane] && vi[l] < vi[lane])) lane = l;
    }
    r = {v[lane], static_cast<std::size_t>(vi[lane])};
  } else if (n >= 16) {
    __m512d best = _mm512_add_pd(_mm512_loadu_pd(a), _mm512_loadu_pd(b));
    __m512i best_idx = avx512_iota(0);
    __m512i idx = avx512_iota(8);
    const __m512i step = _mm512_set1_epi64(8);
    for (i = 8; i + 8 <= n; i += 8) {
      const __m512d c =
          _mm512_add_pd(_mm512_loadu_pd(a + i), _mm512_loadu_pd(b + i));
      const __mmask8 lt = _mm512_cmp_pd_mask(c, best, _CMP_LT_OQ);
      best = _mm512_mask_blend_pd(lt, best, c);
      best_idx = _mm512_mask_blend_epi64(lt, best_idx, idx);
      idx = _mm512_add_epi64(idx, step);
    }
    alignas(64) double v[8];
    alignas(64) std::uint64_t vi[8];
    _mm512_store_pd(v, best);
    _mm512_store_si512(vi, best_idx);
    std::size_t lane = 0;
    for (std::size_t l = 1; l < 8; ++l) {
      if (v[l] < v[lane] || (v[l] == v[lane] && vi[l] < vi[lane])) lane = l;
    }
    r = {v[lane], static_cast<std::size_t>(vi[lane])};
  }
  for (; i < n; ++i) {
    const double c = a[i] + b[i];
    if (c < r.value) r = {c, i};
  }
  return r;
}

__attribute__((target("avx512f"))) void avx512_scale_inplace(double* d,
                                                             std::size_t n,
                                                             double factor) {
  const __m512d f = _mm512_set1_pd(factor);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(d + i, _mm512_mul_pd(_mm512_loadu_pd(d + i), f));
  }
  for (; i < n; ++i) d[i] *= factor;
}

__attribute__((target("avx512f"))) void avx512_batch_max(
    const double* const* rows, std::size_t count, std::size_t n,
    double* out) {
  for (std::size_t r = 0; r < count; ++r) out[r] = avx512_max_value(rows[r], n);
}

constexpr Dispatch kAvx512{avx512_max_value, avx512_min_value,
                           avx512_argmax,    avx512_argmin,
                           avx512_min_plus,  avx512_scale_inplace,
                           avx2_hash_block,  avx512_batch_max,
                           "avx512"};

#endif  // PACGA_KERNELS_X86_AVX2

const Dispatch* resolve() {
  const char* error = nullptr;
  const Dispatch* d = detail::resolve_tables(
      std::getenv("PACGA_FORCE_KERNELS"), std::getenv("PACGA_FORCE_SCALAR"),
      detail::avx2_supported(), detail::avx512_supported(), &error);
  if (d == nullptr) {
    // A forced tier the host cannot honor must not degrade silently: the
    // caller asked for a specific code path (bit-identity audit, CI matrix
    // leg) and running any other would void what the run claims to prove.
    std::fprintf(stderr, "pacga: %s\n", error);
    std::abort();
  }
  return d;
}

}  // namespace

const Dispatch& active() noexcept {
  // Resolved once, on first use; thread-safe by the magic-static rule.
  static const Dispatch* const d = resolve();
  return *d;
}

const char* active_dispatch() noexcept { return active().name; }

namespace detail {

bool avx2_supported() noexcept {
#if PACGA_KERNELS_X86_AVX2
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

bool avx512_supported() noexcept {
#if PACGA_KERNELS_X86_AVX2
  // avx2 is required too: the 512-bit table's hash_block reuses the AVX2
  // path (every shipping AVX-512 CPU satisfies this; the check is belt and
  // suspenders against hypothetical feature-masked environments).
  return __builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

const Dispatch& scalar_table() noexcept { return kScalar; }

const Dispatch& avx2_table() noexcept {
#if PACGA_KERNELS_X86_AVX2
  return kAvx2;
#else
  return kScalar;
#endif
}

const Dispatch& avx512_table() noexcept {
#if PACGA_KERNELS_X86_AVX2
  return kAvx512;
#else
  return kScalar;
#endif
}

const Dispatch* resolve_tables(const char* force_kernels,
                               const char* force_scalar, bool have_avx2,
                               bool have_avx512,
                               const char** error) noexcept {
  *error = nullptr;
  if (force_kernels != nullptr && *force_kernels != '\0') {
    const std::string_view want(force_kernels);
    if (want == "scalar") return &scalar_table();
    if (want == "avx2") {
      if (have_avx2) return &avx2_table();
      *error = "PACGA_FORCE_KERNELS=avx2 refused: no AVX2 support on this "
               "CPU/build";
      return nullptr;
    }
    if (want == "avx512") {
      if (have_avx512) return &avx512_table();
      *error = "PACGA_FORCE_KERNELS=avx512 refused: no AVX-512 support on "
               "this CPU/build";
      return nullptr;
    }
    *error = "unrecognized PACGA_FORCE_KERNELS value (want scalar|avx2|"
             "avx512)";
    return nullptr;
  }
  const bool alias_scalar = force_scalar != nullptr && *force_scalar != '\0' &&
                            !(force_scalar[0] == '0' && force_scalar[1] == '\0');
  if (alias_scalar) return &scalar_table();
  if (have_avx512) return &avx512_table();
  if (have_avx2) return &avx2_table();
  return &scalar_table();
}

}  // namespace detail

}  // namespace pacga::support::kernels
