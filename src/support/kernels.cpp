#include "support/kernels.hpp"

#include <cassert>
#include <cstdlib>

#include "support/rng.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define PACGA_KERNELS_X86_AVX2 1
#include <immintrin.h>
#endif

namespace pacga::support::kernels {

namespace {

// ---- portable scalar path ------------------------------------------------
//
// These loops ARE the semantic definition: in-order scans with strict
// comparisons (lowest index wins ties). The AVX2 path reproduces them
// bit-for-bit; test_kernels holds both to that contract.

// max_value/min_value return the extreme VALUE canonicalized by `+ 0.0`:
// the only doubles that compare equal with different bit patterns are
// signed zeros (NaN is excluded by contract), and -0.0 + 0.0 == +0.0, so
// the result is bit-identical across paths no matter WHICH of several
// compare-equal extremes a reduction happens to select. That freedom is
// what lets the AVX2 path use raw max_pd/min_pd reductions — the fastest
// shape — instead of index-tracked blends.

double scalar_max_value(const double* d, std::size_t n) {
  assert(n > 0);
  double best = d[0];
  for (std::size_t i = 1; i < n; ++i) {
    if (d[i] > best) best = d[i];
  }
  return best + 0.0;
}

double scalar_min_value(const double* d, std::size_t n) {
  assert(n > 0);
  double best = d[0];
  for (std::size_t i = 1; i < n; ++i) {
    if (d[i] < best) best = d[i];
  }
  return best + 0.0;
}

std::size_t scalar_argmax(const double* d, std::size_t n) {
  assert(n > 0);
  std::size_t arg = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (d[i] > d[arg]) arg = i;
  }
  return arg;
}

std::size_t scalar_argmin(const double* d, std::size_t n) {
  assert(n > 0);
  std::size_t arg = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (d[i] < d[arg]) arg = i;
  }
  return arg;
}

MinScan scalar_min_plus(const double* a, const double* b, std::size_t n) {
  assert(n > 0);
  MinScan r{a[0] + b[0], 0};
  for (std::size_t i = 1; i < n; ++i) {
    const double c = a[i] + b[i];
    if (c < r.value) {
      r.value = c;
      r.index = i;
    }
  }
  return r;
}

void scalar_scale_inplace(double* d, std::size_t n, double factor) {
  for (std::size_t i = 0; i < n; ++i) d[i] *= factor;
}

// hash_block is DEFINED as a 4-lane interleaved xorshift mix: lane l folds
// elements l, l+4, l+8, ... so a 4-wide vector path computes the exact same
// lane states. Quality is adequate for content fingerprints (every lane
// word passes through hash_mix avalanches in the combine); stability across
// platforms and dispatch paths is the hard requirement.
inline std::uint64_t hash_lane_step(std::uint64_t h, std::uint64_t bits) {
  h ^= bits;
  h ^= h << 13;
  h ^= h >> 7;
  h ^= h << 17;
  return h;
}

std::uint64_t scalar_hash_block(const double* d, std::size_t n,
                                std::uint64_t seed) {
  std::uint64_t lane[4];
  for (std::size_t l = 0; l < 4; ++l) {
    lane[l] = seed + (l + 1) * 0x9e3779b97f4a7c15ULL;
  }
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t bits;
    __builtin_memcpy(&bits, &d[i], sizeof bits);
    lane[i & 3] = hash_lane_step(lane[i & 3], bits);
  }
  std::uint64_t acc = hash_mix(seed, n);
  for (std::size_t l = 0; l < 4; ++l) acc = hash_mix(acc, lane[l]);
  return acc;
}

constexpr Dispatch kScalar{
    scalar_max_value, scalar_min_value,    scalar_argmax,     scalar_argmin,
    scalar_min_plus,  scalar_scale_inplace, scalar_hash_block, "scalar"};

// ---- AVX2 path -----------------------------------------------------------

#if PACGA_KERNELS_X86_AVX2

// Folds a 4-lane (value, index) state down to the scalar-scan answer:
// smallest index among the lanes holding the extreme value. Lane l of a
// block starting at element i holds element i + l, so comparing the stored
// indices directly reproduces the in-order scan's lowest-index tie-break.
template <bool kMax>
std::size_t fold_lanes(const double (&v)[4], const std::uint64_t (&idx)[4]) {
  std::size_t best = 0;
  for (std::size_t l = 1; l < 4; ++l) {
    const bool better = kMax ? v[l] > v[best] : v[l] < v[best];
    if (better || (v[l] == v[best] && idx[l] < idx[best])) best = l;
  }
  return best;
}

// Raw max_pd/min_pd reductions: which of several compare-equal extremes
// wins differs from the scalar scan's first-occurrence pick, but the
// `+ 0.0` canonicalization (see the scalar definitions) erases the only
// representable difference (signed zeros), so bit-identity holds.

__attribute__((target("avx2"))) double avx2_max_value(const double* d,
                                                      std::size_t n) {
  assert(n > 0);
  std::size_t i = 0;
  double best = d[0];
  if (n >= 8) {
    __m256d acc = _mm256_loadu_pd(d);
    for (i = 4; i + 4 <= n; i += 4) {
      acc = _mm256_max_pd(acc, _mm256_loadu_pd(d + i));
    }
    alignas(32) double lanes[4];
    _mm256_store_pd(lanes, acc);
    best = lanes[0];
    for (std::size_t l = 1; l < 4; ++l) {
      if (lanes[l] > best) best = lanes[l];
    }
  }
  for (; i < n; ++i) {
    if (d[i] > best) best = d[i];
  }
  return best + 0.0;
}

__attribute__((target("avx2"))) double avx2_min_value(const double* d,
                                                      std::size_t n) {
  assert(n > 0);
  std::size_t i = 0;
  double best = d[0];
  if (n >= 8) {
    __m256d acc = _mm256_loadu_pd(d);
    for (i = 4; i + 4 <= n; i += 4) {
      acc = _mm256_min_pd(acc, _mm256_loadu_pd(d + i));
    }
    alignas(32) double lanes[4];
    _mm256_store_pd(lanes, acc);
    best = lanes[0];
    for (std::size_t l = 1; l < 4; ++l) {
      if (lanes[l] < best) best = lanes[l];
    }
  }
  for (; i < n; ++i) {
    if (d[i] < best) best = d[i];
  }
  return best + 0.0;
}

// Shared shape of the indexed reductions: per 4-wide block, a strict
// compare against the running per-lane best blends in the new values and
// their indices; within a lane the strict compare keeps the EARLIEST
// occurrence, and the cross-lane fold plus the scalar tail restore the
// global lowest-index tie-break. Four independent accumulator streams
// (16 elements per round) break the cmp->blend latency chain that would
// otherwise bound throughput; each lane of each stream still keeps the
// earliest index of ITS subsequence, so the 16-way fold remains exact.
template <bool kMax>
__attribute__((target("avx2"))) std::size_t avx2_argextreme(const double* d,
                                                            std::size_t n) {
  assert(n > 0);
  std::size_t i = 0;
  std::size_t arg = 0;
  if (n >= 32) {
    __m256d best[4];
    __m256i best_idx[4];
    __m256i idx[4];
    const __m256i step = _mm256_set1_epi64x(16);
    for (int s = 0; s < 4; ++s) {
      best[s] = _mm256_loadu_pd(d + 4 * s);
      best_idx[s] = _mm256_setr_epi64x(4 * s, 4 * s + 1, 4 * s + 2, 4 * s + 3);
      idx[s] = _mm256_add_epi64(best_idx[s], step);
    }
    for (i = 16; i + 16 <= n; i += 16) {
      for (int s = 0; s < 4; ++s) {
        const __m256d v = _mm256_loadu_pd(d + i + 4 * s);
        const __m256d better = kMax ? _mm256_cmp_pd(v, best[s], _CMP_GT_OQ)
                                    : _mm256_cmp_pd(v, best[s], _CMP_LT_OQ);
        best[s] = _mm256_blendv_pd(best[s], v, better);
        best_idx[s] = _mm256_blendv_epi8(best_idx[s], idx[s],
                                         _mm256_castpd_si256(better));
        idx[s] = _mm256_add_epi64(idx[s], step);
      }
    }
    alignas(32) double v[16];
    alignas(32) std::uint64_t vi[16];
    for (int s = 0; s < 4; ++s) {
      _mm256_store_pd(v + 4 * s, best[s]);
      _mm256_store_si256(reinterpret_cast<__m256i*>(vi + 4 * s), best_idx[s]);
    }
    std::size_t lane = 0;
    for (std::size_t l = 1; l < 16; ++l) {
      const bool better = kMax ? v[l] > v[lane] : v[l] < v[lane];
      if (better || (v[l] == v[lane] && vi[l] < vi[lane])) lane = l;
    }
    arg = static_cast<std::size_t>(vi[lane]);
  } else if (n >= 8) {
    __m256d best = _mm256_loadu_pd(d);
    __m256i best_idx = _mm256_setr_epi64x(0, 1, 2, 3);
    __m256i idx = _mm256_setr_epi64x(4, 5, 6, 7);
    const __m256i step = _mm256_set1_epi64x(4);
    for (i = 4; i + 4 <= n; i += 4) {
      const __m256d v = _mm256_loadu_pd(d + i);
      const __m256d better = kMax ? _mm256_cmp_pd(v, best, _CMP_GT_OQ)
                                  : _mm256_cmp_pd(v, best, _CMP_LT_OQ);
      best = _mm256_blendv_pd(best, v, better);
      best_idx = _mm256_blendv_epi8(best_idx, idx,
                                    _mm256_castpd_si256(better));
      idx = _mm256_add_epi64(idx, step);
    }
    alignas(32) double v[4];
    alignas(32) std::uint64_t vi[4];
    _mm256_store_pd(v, best);
    _mm256_store_si256(reinterpret_cast<__m256i*>(vi), best_idx);
    const std::size_t lane = fold_lanes<kMax>(v, vi);
    arg = static_cast<std::size_t>(vi[lane]);
  }
  // Tail indices are all larger than any vector-phase index, so the strict
  // compare alone preserves the tie-break.
  for (; i < n; ++i) {
    const bool better = kMax ? d[i] > d[arg] : d[i] < d[arg];
    if (better) arg = i;
  }
  return arg;
}

__attribute__((target("avx2"))) std::size_t avx2_argmax(const double* d,
                                                        std::size_t n) {
  return avx2_argextreme<true>(d, n);
}

__attribute__((target("avx2"))) std::size_t avx2_argmin(const double* d,
                                                        std::size_t n) {
  return avx2_argextreme<false>(d, n);
}

__attribute__((target("avx2"))) MinScan avx2_min_plus(const double* a,
                                                      const double* b,
                                                      std::size_t n) {
  assert(n > 0);
  std::size_t i = 0;
  MinScan r{a[0] + b[0], 0};
  if (n >= 32) {
    // Same 4-stream unroll as the indexed reductions (see avx2_argextreme).
    __m256d best[4];
    __m256i best_idx[4];
    __m256i idx[4];
    const __m256i step = _mm256_set1_epi64x(16);
    for (int s = 0; s < 4; ++s) {
      best[s] = _mm256_add_pd(_mm256_loadu_pd(a + 4 * s),
                              _mm256_loadu_pd(b + 4 * s));
      best_idx[s] = _mm256_setr_epi64x(4 * s, 4 * s + 1, 4 * s + 2, 4 * s + 3);
      idx[s] = _mm256_add_epi64(best_idx[s], step);
    }
    for (i = 16; i + 16 <= n; i += 16) {
      for (int s = 0; s < 4; ++s) {
        const __m256d c = _mm256_add_pd(_mm256_loadu_pd(a + i + 4 * s),
                                        _mm256_loadu_pd(b + i + 4 * s));
        const __m256d lt = _mm256_cmp_pd(c, best[s], _CMP_LT_OQ);
        best[s] = _mm256_blendv_pd(best[s], c, lt);
        best_idx[s] =
            _mm256_blendv_epi8(best_idx[s], idx[s], _mm256_castpd_si256(lt));
        idx[s] = _mm256_add_epi64(idx[s], step);
      }
    }
    alignas(32) double v[16];
    alignas(32) std::uint64_t vi[16];
    for (int s = 0; s < 4; ++s) {
      _mm256_store_pd(v + 4 * s, best[s]);
      _mm256_store_si256(reinterpret_cast<__m256i*>(vi + 4 * s), best_idx[s]);
    }
    std::size_t lane = 0;
    for (std::size_t l = 1; l < 16; ++l) {
      if (v[l] < v[lane] || (v[l] == v[lane] && vi[l] < vi[lane])) lane = l;
    }
    r = {v[lane], static_cast<std::size_t>(vi[lane])};
  } else if (n >= 8) {
    __m256d best = _mm256_add_pd(_mm256_loadu_pd(a), _mm256_loadu_pd(b));
    __m256i best_idx = _mm256_setr_epi64x(0, 1, 2, 3);
    __m256i idx = _mm256_setr_epi64x(4, 5, 6, 7);
    const __m256i step = _mm256_set1_epi64x(4);
    for (i = 4; i + 4 <= n; i += 4) {
      const __m256d c =
          _mm256_add_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
      const __m256d lt = _mm256_cmp_pd(c, best, _CMP_LT_OQ);
      best = _mm256_blendv_pd(best, c, lt);
      best_idx =
          _mm256_blendv_epi8(best_idx, idx, _mm256_castpd_si256(lt));
      idx = _mm256_add_epi64(idx, step);
    }
    alignas(32) double v[4];
    alignas(32) std::uint64_t vi[4];
    _mm256_store_pd(v, best);
    _mm256_store_si256(reinterpret_cast<__m256i*>(vi), best_idx);
    const std::size_t lane = fold_lanes<false>(v, vi);
    r = {v[lane], static_cast<std::size_t>(vi[lane])};
  }
  for (; i < n; ++i) {
    const double c = a[i] + b[i];
    if (c < r.value) r = {c, i};
  }
  return r;
}

__attribute__((target("avx2"))) void avx2_scale_inplace(double* d,
                                                        std::size_t n,
                                                        double factor) {
  const __m256d f = _mm256_set1_pd(factor);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(d + i, _mm256_mul_pd(_mm256_loadu_pd(d + i), f));
  }
  for (; i < n; ++i) d[i] *= factor;
}

__attribute__((target("avx2"))) std::uint64_t avx2_hash_block(
    const double* d, std::size_t n, std::uint64_t seed) {
  alignas(32) std::uint64_t lane[4];
  for (std::size_t l = 0; l < 4; ++l) {
    lane[l] = seed + (l + 1) * 0x9e3779b97f4a7c15ULL;
  }
  std::size_t i = 0;
  if (n >= 4) {
    __m256i h = _mm256_load_si256(reinterpret_cast<const __m256i*>(lane));
    for (; i + 4 <= n; i += 4) {
      const __m256i bits =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(d + i));
      h = _mm256_xor_si256(h, bits);
      h = _mm256_xor_si256(h, _mm256_slli_epi64(h, 13));
      h = _mm256_xor_si256(h, _mm256_srli_epi64(h, 7));
      h = _mm256_xor_si256(h, _mm256_slli_epi64(h, 17));
    }
    _mm256_store_si256(reinterpret_cast<__m256i*>(lane), h);
  }
  for (; i < n; ++i) {
    std::uint64_t bits;
    __builtin_memcpy(&bits, &d[i], sizeof bits);
    lane[i & 3] = hash_lane_step(lane[i & 3], bits);
  }
  std::uint64_t acc = hash_mix(seed, n);
  for (std::size_t l = 0; l < 4; ++l) acc = hash_mix(acc, lane[l]);
  return acc;
}

constexpr Dispatch kAvx2{avx2_max_value, avx2_min_value,     avx2_argmax,
                         avx2_argmin,    avx2_min_plus,      avx2_scale_inplace,
                         avx2_hash_block, "avx2"};

#endif  // PACGA_KERNELS_X86_AVX2

bool force_scalar_env() {
  const char* v = std::getenv("PACGA_FORCE_SCALAR");
  return v != nullptr && *v != '\0' && !(v[0] == '0' && v[1] == '\0');
}

const Dispatch* resolve() {
#if PACGA_KERNELS_X86_AVX2
  if (!force_scalar_env() && detail::avx2_supported()) return &kAvx2;
#endif
  return &kScalar;
}

}  // namespace

const Dispatch& active() noexcept {
  // Resolved once, on first use; thread-safe by the magic-static rule.
  static const Dispatch* const d = resolve();
  return *d;
}

const char* active_dispatch() noexcept { return active().name; }

namespace detail {

bool avx2_supported() noexcept {
#if PACGA_KERNELS_X86_AVX2
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

const Dispatch& scalar_table() noexcept { return kScalar; }

const Dispatch& avx2_table() noexcept {
#if PACGA_KERNELS_X86_AVX2
  return kAvx2;
#else
  return kScalar;
#endif
}

}  // namespace detail

}  // namespace pacga::support::kernels
