#include "support/csv.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace pacga::support {

namespace {

bool needs_quoting(const std::string& f) {
  return f.find_first_of(",\"\n") != std::string::npos;
}

std::string quote(const std::string& f) {
  std::string out = "\"";
  for (char c : f) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void CsvWriter::row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << (needs_quoting(fields[i]) ? quote(fields[i]) : fields[i]);
  }
  out_ << '\n';
}

std::string CsvWriter::field(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string CsvWriter::field(std::size_t v) { return std::to_string(v); }
std::string CsvWriter::field(long v) { return std::to_string(v); }
std::string CsvWriter::field(int v) { return std::to_string(v); }

ConsoleTable::ConsoleTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void ConsoleTable::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void ConsoleTable::print(std::ostream& out) const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c)
    width[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());

  auto print_row = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      const std::string& cell = c < r.size() ? r[c] : std::string();
      out << cell << std::string(width[c] - cell.size(), ' ');
    }
    out << " |\n";
  };

  print_row(header_);
  out << '|';
  for (std::size_t c = 0; c < header_.size(); ++c)
    out << std::string(width[c] + 2, '-') << '|';
  out << '\n';
  for (const auto& r : rows_) print_row(r);
}

void ConsoleTable::print_csv(std::ostream& out) const {
  CsvWriter w(out);
  w.row(header_);
  for (const auto& r : rows_) w.row(r);
}

std::string format_number(double v, int digits) {
  char buf[64];
  const double a = std::abs(v);
  if (a != 0.0 && (a >= 1e7 || a < 1e-3)) {
    std::snprintf(buf, sizeof(buf), "%.*e", digits - 1, v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.*g", digits, v);
  }
  return buf;
}

}  // namespace pacga::support
