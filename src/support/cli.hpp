// Tiny declarative command-line parser for the bench/example binaries.
//
// Every bench binary must run with sensible scaled-down defaults under
// `for b in build/bench/*; do $b; done`, while still exposing the full
// paper-scale campaign behind flags (--full, --wall-ms, --runs, ...).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace pacga::support {

/// Declarative flag registry: register typed options bound to variables,
/// then parse(argc, argv). Supports `--name value`, `--name=value` and
/// boolean `--name`. Unknown flags raise a usage error; `--help` prints
/// the registered options and returns false from parse().
class Cli {
 public:
  explicit Cli(std::string program_description);

  Cli& flag(const std::string& name, bool* target, const std::string& help);
  Cli& option(const std::string& name, int* target, const std::string& help);
  Cli& option(const std::string& name, std::int64_t* target,
              const std::string& help);
  Cli& option(const std::string& name, std::size_t* target,
              const std::string& help);
  Cli& option(const std::string& name, double* target, const std::string& help);
  Cli& option(const std::string& name, std::string* target,
              const std::string& help);
  /// String option restricted to a fixed set of choices (e.g. the service
  /// daemon's --policy auto|minmin|sufferage|cga). A value outside
  /// `allowed` raises a usage error listing the valid choices; `*target`'s
  /// initial value is the default and should be one of them.
  Cli& option(const std::string& name, std::string* target,
              std::vector<std::string> allowed, const std::string& help);

  /// Parses argv. Returns false if --help was requested (help already
  /// printed) — callers should exit 0. Throws std::runtime_error on
  /// malformed input.
  bool parse(int argc, char** argv);

  /// Renders the option summary (also used by --help).
  std::string usage() const;

 private:
  struct Opt {
    std::string help;
    bool is_flag = false;
    std::function<void(const std::string&)> apply;
    std::string default_repr;
  };

  std::string description_;
  std::vector<std::string> order_;
  std::map<std::string, Opt> opts_;
};

}  // namespace pacga::support
