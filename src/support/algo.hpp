// Small header-only algorithms shared across subsystems.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace pacga::support {

/// Erases the elements at `sorted_indices` (strictly ascending, in-range)
/// from `v` in ONE stable compaction pass — per-index vector::erase would
/// shift the tail once per removal, O(|indices| * |v|). Used by the
/// dynamic epoch-commit paths, where a batch commit drops many tasks at
/// once.
template <typename T>
void erase_sorted_indices(std::vector<T>& v,
                          std::span<const std::size_t> sorted_indices) {
  std::size_t next = 0;
  std::size_t kept = 0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (next < sorted_indices.size() && sorted_indices[next] == i) {
      ++next;
      continue;
    }
    v[kept++] = std::move(v[i]);
  }
  v.resize(kept);
}

}  // namespace pacga::support
