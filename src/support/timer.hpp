// Wall-clock timing. The PA-CGA termination criterion is wall time (the
// paper runs 90 s budgets), so the timer is part of the algorithm contract,
// not just instrumentation.
#pragma once

#include <chrono>
#include <cstdint>

namespace pacga::support {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  using clock = std::chrono::steady_clock;

  WallTimer() : start_(clock::now()) {}

  void restart() noexcept { start_ = clock::now(); }

  double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  std::int64_t elapsed_ms() const noexcept {
    return std::chrono::duration_cast<std::chrono::milliseconds>(clock::now() -
                                                                 start_)
        .count();
  }

  std::int64_t elapsed_us() const noexcept {
    return std::chrono::duration_cast<std::chrono::microseconds>(clock::now() -
                                                                 start_)
        .count();
  }

 private:
  clock::time_point start_;
};

/// Deadline helper: constructed with a budget, answers expired().
/// The engines poll this between block sweeps (coarse-grained, matching the
/// paper's "check after evolving the whole block" approximation).
class Deadline {
 public:
  explicit Deadline(double budget_seconds)
      : timer_(), budget_seconds_(budget_seconds) {}

  bool expired() const noexcept {
    return timer_.elapsed_seconds() >= budget_seconds_;
  }

  double remaining_seconds() const noexcept {
    const double r = budget_seconds_ - timer_.elapsed_seconds();
    return r > 0.0 ? r : 0.0;
  }

  double budget_seconds() const noexcept { return budget_seconds_; }
  double elapsed_seconds() const noexcept { return timer_.elapsed_seconds(); }

 private:
  WallTimer timer_;
  double budget_seconds_;
};

}  // namespace pacga::support
