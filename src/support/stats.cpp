#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace pacga::support {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_);
  const auto m = static_cast<double>(other.n_);
  mean_ += delta * m / (n + m);
  m2_ += other.m2_ + delta * delta * n * m / (n + m);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

RunningStats RunningStats::from_moments(std::size_t n, double mean, double m2,
                                        double min, double max) noexcept {
  RunningStats s;
  if (n == 0) return s;
  s.n_ = n;
  s.mean_ = mean;
  s.m2_ = m2;
  s.min_ = min;
  s.max_ = max;
  return s;
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::min() const noexcept {
  return n_ > 0 ? min_ : std::numeric_limits<double>::quiet_NaN();
}

double RunningStats::max() const noexcept {
  return n_ > 0 ? max_ : std::numeric_limits<double>::quiet_NaN();
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double quantile(std::vector<double> sample, double q) {
  if (sample.empty()) throw std::invalid_argument("quantile: empty sample");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q out of [0,1]");
  std::sort(sample.begin(), sample.end());
  const double pos = q * static_cast<double>(sample.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sample.size()) return sample.back();
  return sample[lo] + frac * (sample[lo + 1] - sample[lo]);
}

double median(std::vector<double> sample) { return quantile(std::move(sample), 0.5); }

bool BoxStats::median_differs(const BoxStats& other) const noexcept {
  return notch_hi < other.notch_lo || other.notch_hi < notch_lo;
}

BoxStats box_stats(std::vector<double> sample) {
  if (sample.empty()) throw std::invalid_argument("box_stats: empty sample");
  std::sort(sample.begin(), sample.end());
  BoxStats b;
  b.n = sample.size();
  b.min = sample.front();
  b.max = sample.back();
  // quantile() re-sorts a copy; cheap relative to harness runtimes and keeps
  // a single authoritative quantile implementation.
  b.q1 = quantile(sample, 0.25);
  b.median = quantile(sample, 0.5);
  b.q3 = quantile(sample, 0.75);
  RunningStats rs;
  for (double x : sample) rs.add(x);
  b.mean = rs.mean();
  const double iqr = b.q3 - b.q1;
  const double half = 1.57 * iqr / std::sqrt(static_cast<double>(b.n));
  b.notch_lo = b.median - half;
  b.notch_hi = b.median + half;
  return b;
}

namespace {

/// Ranks with average ranks on ties; returns ranks of the concatenated
/// sample and the tie-correction term sum(t^3 - t).
std::pair<std::vector<double>, double> ranks_with_ties(
    const std::vector<double>& all) {
  const std::size_t n = all.size();
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return all[a] < all[b]; });
  std::vector<double> ranks(n, 0.0);
  double tie_term = 0.0;
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && all[order[j + 1]] == all[order[i]]) ++j;
    const double avg_rank = 0.5 * static_cast<double>(i + j) + 1.0;
    const auto t = static_cast<double>(j - i + 1);
    tie_term += t * t * t - t;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg_rank;
    i = j + 1;
  }
  return {std::move(ranks), tie_term};
}

/// Standard normal CDF via erfc.
double norm_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

}  // namespace

MannWhitneyResult mann_whitney_u(const std::vector<double>& a,
                                 const std::vector<double>& b) {
  if (a.empty() || b.empty())
    throw std::invalid_argument("mann_whitney_u: empty sample");
  const auto na = static_cast<double>(a.size());
  const auto nb = static_cast<double>(b.size());
  std::vector<double> all;
  all.reserve(a.size() + b.size());
  all.insert(all.end(), a.begin(), a.end());
  all.insert(all.end(), b.begin(), b.end());
  auto [ranks, tie_term] = ranks_with_ties(all);
  double rank_sum_a = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) rank_sum_a += ranks[i];
  MannWhitneyResult r;
  r.u = rank_sum_a - na * (na + 1.0) / 2.0;
  const double mu = na * nb / 2.0;
  const double n = na + nb;
  const double sigma2 =
      na * nb / 12.0 * ((n + 1.0) - tie_term / (n * (n - 1.0)));
  if (sigma2 <= 0.0) {
    // All observations identical: no evidence of difference.
    r.z = 0.0;
    r.p_value = 1.0;
    return r;
  }
  // Continuity correction toward the mean.
  const double diff = r.u - mu;
  const double cc = diff > 0 ? -0.5 : (diff < 0 ? 0.5 : 0.0);
  r.z = (diff + cc) / std::sqrt(sigma2);
  r.p_value = 2.0 * (1.0 - norm_cdf(std::abs(r.z)));
  return r;
}

namespace {

/// Regularized lower incomplete gamma P(a, x) via the series expansion
/// (converges fast for x < a + 1).
double gamma_p_series(double a, double x) {
  double sum = 1.0 / a;
  double term = sum;
  for (int n = 1; n < 500; ++n) {
    term *= x / (a + n);
    sum += term;
    if (std::abs(term) < std::abs(sum) * 1e-15) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

/// Regularized upper incomplete gamma Q(a, x) via Lentz's continued
/// fraction (converges fast for x >= a + 1).
double gamma_q_continued_fraction(double a, double x) {
  constexpr double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < 1e-15) break;
  }
  return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

}  // namespace

double chi_squared_sf(double x, double dof) {
  if (x <= 0.0) return 1.0;
  if (dof <= 0.0) throw std::invalid_argument("chi_squared_sf: dof <= 0");
  const double a = dof / 2.0;
  const double half_x = x / 2.0;
  // Q(a, x/2) = 1 - P(a, x/2); pick the representation that converges.
  if (half_x < a + 1.0) return 1.0 - gamma_p_series(a, half_x);
  return gamma_q_continued_fraction(a, half_x);
}

FriedmanResult friedman_test(const std::vector<std::vector<double>>& blocks) {
  const std::size_t n = blocks.size();
  if (n < 2) throw std::invalid_argument("friedman_test: need >= 2 blocks");
  const std::size_t k = blocks.front().size();
  if (k < 2)
    throw std::invalid_argument("friedman_test: need >= 2 algorithms");
  for (const auto& row : blocks) {
    if (row.size() != k)
      throw std::invalid_argument("friedman_test: ragged blocks");
  }

  FriedmanResult r;
  r.mean_ranks.assign(k, 0.0);
  for (const auto& row : blocks) {
    auto [ranks, tie_term] = ranks_with_ties(row);
    (void)tie_term;  // classic statistic; ties get average ranks
    for (std::size_t j = 0; j < k; ++j) r.mean_ranks[j] += ranks[j];
  }
  for (auto& mr : r.mean_ranks) mr /= static_cast<double>(n);

  const double kk = static_cast<double>(k);
  const double nn = static_cast<double>(n);
  double sum_sq = 0.0;
  const double expected = (kk + 1.0) / 2.0;
  for (double mr : r.mean_ranks) {
    sum_sq += (mr - expected) * (mr - expected);
  }
  r.statistic = 12.0 * nn / (kk * (kk + 1.0)) * sum_sq;
  r.p_value = chi_squared_sf(r.statistic, kk - 1.0);
  return r;
}

WilcoxonResult wilcoxon_signed_rank(const std::vector<double>& a,
                                    const std::vector<double>& b) {
  if (a.size() != b.size())
    throw std::invalid_argument("wilcoxon_signed_rank: size mismatch");
  if (a.empty())
    throw std::invalid_argument("wilcoxon_signed_rank: empty samples");

  std::vector<double> abs_diff;
  std::vector<int> sign;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    if (d == 0.0) continue;  // Wilcoxon convention: drop zeros
    abs_diff.push_back(std::abs(d));
    sign.push_back(d > 0.0 ? 1 : -1);
  }
  WilcoxonResult r;
  r.n_effective = abs_diff.size();
  if (r.n_effective == 0) return r;  // all pairs tied: no evidence

  auto [ranks, tie_term] = ranks_with_ties(abs_diff);
  double w_plus = 0.0, w_minus = 0.0;
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    (sign[i] > 0 ? w_plus : w_minus) += ranks[i];
  }
  r.w = std::min(w_plus, w_minus);
  const auto n = static_cast<double>(r.n_effective);
  const double mu = n * (n + 1.0) / 4.0;
  const double sigma2 =
      n * (n + 1.0) * (2.0 * n + 1.0) / 24.0 - tie_term / 48.0;
  if (sigma2 <= 0.0) return r;
  const double diff = w_plus - mu;  // use W+ for a signed z
  const double cc = diff > 0 ? -0.5 : (diff < 0 ? 0.5 : 0.0);
  r.z = (diff + cc) / std::sqrt(sigma2);
  r.p_value = 2.0 * (1.0 - norm_cdf(std::abs(r.z)));
  return r;
}

double ci95_halfwidth(const RunningStats& s) noexcept {
  if (s.count() < 2) return 0.0;
  return 1.96 * s.stddev() / std::sqrt(static_cast<double>(s.count()));
}

std::optional<double> pearson(const std::vector<double>& x,
                              const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) return std::nullopt;
  RunningStats sx, sy;
  for (double v : x) sx.add(v);
  for (double v : y) sy.add(v);
  if (sx.stddev() == 0.0 || sy.stddev() == 0.0) return std::nullopt;
  double cov = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i)
    cov += (x[i] - sx.mean()) * (y[i] - sy.mean());
  cov /= static_cast<double>(x.size() - 1);
  return cov / (sx.stddev() * sy.stddev());
}

}  // namespace pacga::support
