// Threading utilities shared by the parallel engine and its benchmarks.
//
// HPC notes:
//  * Hot mutable per-thread state (counters, RNGs, locks) is padded to the
//    destructive interference size so threads never false-share a line.
//  * ScopedThreads guarantees join-on-scope-exit (exception safe), the RAII
//    equivalent of std::jthread groups.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <new>
#include <thread>
#include <vector>

namespace pacga::support {

/// Destructive interference size. Fixed at 64 (x86-64/common ARM cache
/// line) rather than std::hardware_destructive_interference_size, whose
/// value varies with compiler tuning flags and would make the padding part
/// of an unstable ABI (GCC warns about exactly this).
inline constexpr std::size_t kCacheLineSize = 64;

/// Wraps a T in a cache-line-aligned, cache-line-sized slot so that arrays
/// of Padded<T> never false-share. T must fit the padding arrangement.
template <typename T>
struct alignas(kCacheLineSize) Padded {
  T value{};

  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
};

/// Launches `n` workers running fn(worker_index) and joins them all in the
/// destructor (or explicitly via join()). Exception-safe: a throwing scope
/// still joins, so no detached threads touch freed state.
class ScopedThreads {
 public:
  ScopedThreads() = default;
  ScopedThreads(std::size_t n, const std::function<void(std::size_t)>& fn);

  ScopedThreads(const ScopedThreads&) = delete;
  ScopedThreads& operator=(const ScopedThreads&) = delete;

  ~ScopedThreads();

  void join();

 private:
  std::vector<std::thread> threads_;
};

/// Reusable cyclic barrier (C++20 std::barrier exists but this avoids the
/// completion-function template plumbing and is sufficient for tests and
/// the synchronous engine).
class Barrier {
 public:
  explicit Barrier(std::size_t parties);

  /// Blocks until all parties arrive; reusable across generations.
  void arrive_and_wait();

 private:
  const std::size_t parties_;
  std::atomic<std::size_t> arrived_{0};
  std::atomic<std::size_t> generation_{0};
};

/// Returns min(requested, hardware_concurrency), at least 1. Used by the
/// harness so bench binaries degrade gracefully on small machines.
std::size_t clamp_threads(std::size_t requested) noexcept;

}  // namespace pacga::support
