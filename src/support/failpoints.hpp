// Deterministic fault injection for the service stack.
//
// A failpoint is a named site in production code — `PACGA_FAILPOINT("x")` —
// that normally costs one relaxed atomic load and does nothing. Arming it
// (env var, test code, or the daemon FAILPOINT verb) makes the site
// misbehave on a counter-based deterministic schedule:
//
//   spec     := trigger [":" action]
//   trigger  := "off" | "once" | "every=N" | "after=N" | "times=K"
//   action   := "throw" | "delay=MS" | "wedge"        (default: throw)
//
//   off       never fires (disarms the site, releases wedged threads)
//   once      fires on the next hit only
//   every=N   fires on every Nth hit (N, 2N, 3N, ...)
//   after=N   fires on every hit past the Nth
//   times=K   fires on the next K hits, then disarms
//
//   throw     raises FailpointError from the site
//   delay=MS  sleeps MS milliseconds at the site
//   wedge     parks the calling thread until the site is reconfigured
//             (simulates a stuck solver; the service watchdog is what
//             gets tested against this)
//
// Hit counting restarts at every configure(), so a given spec fires at
// the same hit numbers on every run — storms are reproducible.
//
// Process-wide configuration comes from the PACGA_FAILPOINTS environment
// variable (comma-separated `name=spec` entries, applied on first
// registry use), e.g.:
//
//   PACGA_FAILPOINTS="solver.solve=every=3:throw,cache.lookup=once:wedge"
//
// Everything here compiles out under PACGA_NO_FAILPOINTS: the macro is
// `((void)0)` and the registry keeps an interface-only stub whose
// configure() throws, so a daemon built without failpoints answers ERR
// to the FAILPOINT verb instead of silently accepting it.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#ifndef PACGA_NO_FAILPOINTS
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#endif

namespace pacga::support {

/// Thrown by a site whose armed action is `throw`. Defined in both build
/// flavors so catch sites compile unchanged under PACGA_NO_FAILPOINTS.
class FailpointError : public std::runtime_error {
 public:
  explicit FailpointError(const std::string& site)
      : std::runtime_error("failpoint " + site) {}
};

#ifndef PACGA_NO_FAILPOINTS

inline constexpr bool kFailpointsCompiledIn = true;

/// One named site. The disarmed fast path is a single relaxed atomic
/// load (`armed()`); everything else lives behind the slow-path mutex.
class Failpoint {
 public:
  explicit Failpoint(std::string name);

  Failpoint(const Failpoint&) = delete;
  Failpoint& operator=(const Failpoint&) = delete;

  /// Fast-path check, done inline at every site.
  bool armed() const noexcept {
    return armed_.load(std::memory_order_relaxed);
  }

  /// Slow path: counts the hit, evaluates the trigger, performs the
  /// action. May throw FailpointError, sleep, or park the thread.
  void fire();

  /// Parses and installs `spec` (grammar above). Resets the hit counter,
  /// bumps the config epoch, and wakes any thread parked in `wedge`.
  /// Throws std::runtime_error on bad grammar.
  void configure(const std::string& spec);

  const std::string& name() const noexcept { return name_; }

  /// Threads currently parked in a `wedge` action at this site.
  std::size_t wedged() const;

  /// Wakes wedge waiters without changing the spec (used by the global
  /// wedge suspension, see ScopedWedgeSuspend).
  void notify();

 private:
  enum class Trigger { kOff, kOnce, kEvery, kAfter, kTimes };
  enum class Action { kThrow, kDelay, kWedge };

  bool should_trigger_locked();

  const std::string name_;
  std::atomic<bool> armed_{false};

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  Trigger trigger_ = Trigger::kOff;
  Action action_ = Action::kThrow;
  std::uint64_t param_ = 0;     ///< N of every=/after=, K of times=
  double delay_ms_ = 0.0;       ///< MS of delay=
  std::uint64_t hits_ = 0;      ///< hits since last configure()
  std::uint64_t remaining_ = 0; ///< shots left (once / times=K)
  std::uint64_t epoch_ = 0;     ///< bumped by configure(); releases wedges
  std::size_t wedged_ = 0;      ///< threads parked in wedge right now
};

/// Process-wide name -> Failpoint map. Sites are created on first use
/// (by the macro or by configure()), never destroyed, so the references
/// the macro caches stay valid for the process lifetime.
class FailpointRegistry {
 public:
  /// Looks up (creating if needed) the site `name`.
  Failpoint& site(const std::string& name);

  /// Configures one site; throws std::runtime_error on bad grammar.
  void configure(const std::string& name, const std::string& spec);

  /// Applies a comma-separated `name=spec,name=spec` list (the
  /// PACGA_FAILPOINTS env format). Throws on the first bad entry.
  void configure_from_string(const std::string& entries);

  /// Disarms every site and releases all wedged threads.
  void reset_all();

  /// Total threads currently parked in wedge actions.
  std::size_t wedged() const;

  /// Names of every registered site (sorted; registration order is
  /// map order).
  std::vector<std::string> names() const;

 private:
  friend class ScopedWedgeSuspend;
  void notify_all();

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Failpoint>> points_;
};

/// The process-wide registry. First call applies PACGA_FAILPOINTS from
/// the environment, so env-armed sites are live before any site fires.
FailpointRegistry& failpoints();

/// True while any ScopedWedgeSuspend is alive: wedge actions become
/// no-ops and parked threads are released (they re-park only if the site
/// fires again after the suspension ends). Used by SolverPool::join() so
/// a shutdown can drain workers parked at a wedge site without touching
/// the configured specs.
bool wedges_suspended() noexcept;

class ScopedWedgeSuspend {
 public:
  ScopedWedgeSuspend();
  ~ScopedWedgeSuspend();
  ScopedWedgeSuspend(const ScopedWedgeSuspend&) = delete;
  ScopedWedgeSuspend& operator=(const ScopedWedgeSuspend&) = delete;
};

// The macro caches the site reference in a function-local static, so the
// registry lock is taken once per site, not once per hit. Names must be
// string literals: tools/check_docs_consistency.sh greps them and
// requires each to be documented in docs/ROBUSTNESS.md.
#define PACGA_FAILPOINT(name)                                         \
  do {                                                                \
    static ::pacga::support::Failpoint& pacga_fp_site_ =             \
        ::pacga::support::failpoints().site(name);                    \
    if (pacga_fp_site_.armed()) pacga_fp_site_.fire();                \
  } while (0)

#else  // PACGA_NO_FAILPOINTS -----------------------------------------------

inline constexpr bool kFailpointsCompiledIn = false;

/// Interface-only stub: shape-compatible with the real registry so
/// callers (daemon verb, benches, tests) compile unchanged. configure()
/// throws — a build without failpoints must refuse to pretend it armed
/// one.
class FailpointRegistry {
 public:
  void configure(const std::string&, const std::string&) {
    throw std::runtime_error("failpoints compiled out (PACGA_NO_FAILPOINTS)");
  }
  void configure_from_string(const std::string&) {
    throw std::runtime_error("failpoints compiled out (PACGA_NO_FAILPOINTS)");
  }
  void reset_all() noexcept {}
  std::size_t wedged() const noexcept { return 0; }
  std::vector<std::string> names() const { return {}; }
};

inline FailpointRegistry& failpoints() {
  static FailpointRegistry registry;
  return registry;
}

inline bool wedges_suspended() noexcept { return false; }

class ScopedWedgeSuspend {};

#define PACGA_FAILPOINT(name) ((void)0)

#endif  // PACGA_NO_FAILPOINTS

}  // namespace pacga::support
