#include "support/rng.hpp"

#include <cmath>

namespace pacga::support {

double Xoshiro256::normal() noexcept {
  // Marsaglia polar: draw points in the unit disc, transform.
  for (;;) {
    const double u = 2.0 * uniform() - 1.0;
    const double v = 2.0 * uniform() - 1.0;
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double Xoshiro256::gamma(double shape, double scale) noexcept {
  if (shape < 1.0) {
    // Boost: Gamma(a) = Gamma(a + 1) * U^(1/a).
    const double u = 1.0 - uniform();  // (0, 1]
    return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia & Tsang (2000).
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x, v;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = 1.0 - uniform();  // (0, 1]
    const double x2 = x * x;
    if (u < 1.0 - 0.0331 * x2 * x2) return d * v * scale;
    if (std::log(u) < 0.5 * x2 + d * (1.0 - v + std::log(v))) {
      return d * v * scale;
    }
  }
}

void Xoshiro256::long_jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL, 0x77710069854ee241ULL,
      0x39109bb02acbe635ULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ULL << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      operator()();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

std::vector<Xoshiro256> make_streams(std::uint64_t master_seed, std::size_t n) {
  std::vector<Xoshiro256> streams;
  streams.reserve(n);
  SplitMix64 sm(master_seed);
  for (std::size_t i = 0; i < n; ++i) {
    streams.emplace_back(sm.next());
  }
  return streams;
}

std::uint64_t seed_from_string(const char* s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  for (; *s != '\0'; ++s) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(*s));
    h *= 0x100000001b3ULL;  // FNV prime
  }
  return h;
}

}  // namespace pacga::support
