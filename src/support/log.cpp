#include "support/log.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace pacga::support {

namespace {
/// -1 = not yet resolved from the environment; resolve_level() settles it
/// exactly once (first-wins CAS; the race is benign — both sides parse
/// the same environment).
std::atomic<int> g_level{-1};
std::mutex g_mutex;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

int resolve_level() {
  int l = g_level.load(std::memory_order_relaxed);
  if (l >= 0) return l;
  // Unset or unparseable: OFF. A daemon on a pipe must stay silent unless
  // the operator asked for diagnostics.
  LogLevel parsed = LogLevel::kOff;
  if (const char* env = std::getenv("PACGA_LOG_LEVEL")) {
    (void)parse_log_level(env, parsed);
  }
  int expected = -1;
  g_level.compare_exchange_strong(expected, static_cast<int>(parsed),
                                  std::memory_order_relaxed);
  return g_level.load(std::memory_order_relaxed);
}
}  // namespace

bool parse_log_level(const std::string& name, LogLevel& out) noexcept {
  std::string lower(name.size(), '\0');
  std::transform(name.begin(), name.end(), lower.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  if (lower == "debug") out = LogLevel::kDebug;
  else if (lower == "info") out = LogLevel::kInfo;
  else if (lower == "warn" || lower == "warning") out = LogLevel::kWarn;
  else if (lower == "error") out = LogLevel::kError;
  else if (lower == "off" || lower == "none") out = LogLevel::kOff;
  else return false;
  return true;
}

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(resolve_level());
}

void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < resolve_level()) return;
  std::lock_guard<std::mutex> lk(g_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace pacga::support
