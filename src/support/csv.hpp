// Table output: CSV files for downstream plotting and aligned console
// tables for the bench binaries that reprint the paper's tables/figures.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace pacga::support {

/// Minimal CSV writer with RFC-4180 quoting.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  /// Writes one row; fields containing commas/quotes/newlines are quoted.
  void row(const std::vector<std::string>& fields);

  /// Convenience: formats doubles with full round-trip precision.
  static std::string field(double v);
  static std::string field(std::size_t v);
  static std::string field(long v);
  static std::string field(int v);

 private:
  std::ostream& out_;
};

/// Fixed-layout console table: collects rows, then prints with per-column
/// alignment. Used by every bench binary so the paper-table output is
/// uniform and diffable.
class ConsoleTable {
 public:
  explicit ConsoleTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  /// Renders the table with column separators and a header rule.
  void print(std::ostream& out) const;
  /// Renders the same content as CSV (header + rows).
  void print_csv(std::ostream& out) const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Compact human-friendly number formatting used in table cells:
/// fixed for small magnitudes, scientific beyond 1e7, `digits` significant.
std::string format_number(double v, int digits = 6);

}  // namespace pacga::support
