// Minimal leveled logger for the harness binaries. Not used on algorithm
// hot paths (the engines report through typed Stats structs instead).
#pragma once

#include <sstream>
#include <string>

namespace pacga::support {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are dropped. Thread-safe.
void set_log_level(LogLevel level);
LogLevel log_level() noexcept;

/// Emits one line `[LEVEL] message` to stderr (atomic w.r.t. other log
/// calls through an internal mutex).
void log_line(LogLevel level, const std::string& message);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, stream_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogStream log_debug() { return detail::LogStream(LogLevel::kDebug); }
inline detail::LogStream log_info() { return detail::LogStream(LogLevel::kInfo); }
inline detail::LogStream log_warn() { return detail::LogStream(LogLevel::kWarn); }
inline detail::LogStream log_error() { return detail::LogStream(LogLevel::kError); }

}  // namespace pacga::support
