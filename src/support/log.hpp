// Minimal leveled logger for the harness binaries. Not used on algorithm
// hot paths (the engines report through typed Stats structs instead).
//
// The threshold comes from the PACGA_LOG_LEVEL environment variable
// (debug|info|warn|error|off, case-insensitive), resolved lazily on the
// first log call; unset or unparseable means OFF — a daemon driven over a
// pipe must not mix diagnostics into anyone's stderr unless asked.
// set_log_level() overrides the environment (tests, CLI flags).
#pragma once

#include <sstream>
#include <string>

namespace pacga::support {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped. Thread-safe.
void set_log_level(LogLevel level);
LogLevel log_level() noexcept;

/// Parses the PACGA_LOG_LEVEL spelling (debug|info|warn|error|off,
/// case-insensitive). False (and `out` untouched) on anything else.
bool parse_log_level(const std::string& name, LogLevel& out) noexcept;

/// Emits one line `[LEVEL] message` to stderr (atomic w.r.t. other log
/// calls through an internal mutex).
void log_line(LogLevel level, const std::string& message);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, stream_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogStream log_debug() { return detail::LogStream(LogLevel::kDebug); }
inline detail::LogStream log_info() { return detail::LogStream(LogLevel::kInfo); }
inline detail::LogStream log_warn() { return detail::LogStream(LogLevel::kWarn); }
inline detail::LogStream log_error() { return detail::LogStream(LogLevel::kError); }

}  // namespace pacga::support
