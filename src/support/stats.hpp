// Statistics toolkit used by the benchmark harness and the engine traces.
//
// Everything here is deliberately dependency-free: the harness must compute
// the same summaries the paper plots (means over 100 runs, box plots with
// 95 % median notches for Figure 5, rank tests for the significance claims).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

namespace pacga::support {

/// Streaming mean/variance accumulator (Welford). Numerically stable; O(1)
/// per observation, no storage of the sample.
///
/// Min/max are initialized from the FIRST observation, never from a
/// sentinel — the classic numeric_limits<double>::min()-as-minus-infinity
/// bug (min() is the smallest POSITIVE double, so an all-negative sample
/// reports a bogus max of ~2.2e-308) cannot occur here, and regression
/// tests in test_stats pin that down. On an empty accumulator min()/max()
/// return quiet NaN so that reading them by mistake is visible instead of
/// a plausible-looking 0.
class RunningStats {
 public:
  void add(double x) noexcept;
  /// Merges another accumulator (parallel reduction form of Welford).
  void merge(const RunningStats& other) noexcept;

  /// Rebuilds an accumulator from externally maintained Welford moments —
  /// the aggregation path for per-thread unsynchronized stat slots (the
  /// service metrics keep (n, mean, m2, min, max) in plain per-worker
  /// storage and materialize RunningStats only at snapshot time). `n == 0`
  /// yields an empty accumulator regardless of the other arguments.
  static RunningStats from_moments(std::size_t n, double mean, double m2,
                                   double min, double max) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 observations.
  double variance() const noexcept;
  double stddev() const noexcept;
  /// Smallest observation; quiet NaN when no sample has been added.
  double min() const noexcept;
  /// Largest observation; quiet NaN when no sample has been added.
  double max() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Linear-interpolation quantile (type-7, the R/NumPy default).
/// `q` in [0,1]. The sample is copied and sorted internally.
double quantile(std::vector<double> sample, double q);

/// Median convenience wrapper.
double median(std::vector<double> sample);

/// Five-number summary + notch bounds, the exact quantities behind the
/// paper's Figure 5 box plots. Notches follow the McGill/Chambers/Larsen
/// rule used by MATLAB/R: median +/- 1.57*IQR/sqrt(n); non-overlapping
/// notches indicate the true medians differ at ~95 % confidence.
struct BoxStats {
  std::size_t n = 0;
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
  double notch_lo = 0.0;
  double notch_hi = 0.0;
  double mean = 0.0;

  /// True when the 95 % median notches of *this and `other` do not overlap,
  /// i.e. the medians differ with ~95 % confidence (the test the paper uses
  /// to claim tpx/10 beats opx/5).
  bool median_differs(const BoxStats& other) const noexcept;
};

BoxStats box_stats(std::vector<double> sample);

/// Result of a two-sided Mann-Whitney U test (normal approximation with
/// tie correction). Valid for sample sizes >= 8 per group, which the
/// 100-run campaigns comfortably exceed.
struct MannWhitneyResult {
  double u = 0.0;       ///< U statistic of the first sample.
  double z = 0.0;       ///< Normal approximation z-score.
  double p_value = 1.0; ///< Two-sided p-value.
};

MannWhitneyResult mann_whitney_u(const std::vector<double>& a,
                                 const std::vector<double>& b);

/// 95 % confidence half-width of the mean assuming normality (1.96 * sem).
/// Good enough for the 100-run campaign summaries.
double ci95_halfwidth(const RunningStats& s) noexcept;

/// Friedman rank test: are k algorithms distinguishable across n problem
/// instances (blocks)? The standard omnibus test of the metaheuristics
/// literature for tables like the paper's Table 2.
struct FriedmanResult {
  double statistic = 0.0;          ///< chi-squared statistic, k-1 dof
  double p_value = 1.0;
  std::vector<double> mean_ranks;  ///< per-algorithm mean rank (1 = best)
};

/// `blocks[i][j]` is algorithm j's score on instance i (lower is better).
/// Requires >= 2 algorithms and >= 2 blocks, all rows equally sized.
FriedmanResult friedman_test(const std::vector<std::vector<double>>& blocks);

/// Survival function of the chi-squared distribution, P(X >= x) with
/// `dof` degrees of freedom. Regularized incomplete gamma implementation
/// (series + continued fraction), accurate to ~1e-10 for moderate dof.
double chi_squared_sf(double x, double dof);

/// Wilcoxon signed-rank test for PAIRED samples (two-sided, normal
/// approximation with tie correction) — the right test for "configuration
/// A vs configuration B across the same 12 instances" comparisons.
/// Zero differences are dropped (Wilcoxon's convention).
struct WilcoxonResult {
  double w = 0.0;        ///< signed-rank statistic (min of W+ and W-)
  double z = 0.0;
  double p_value = 1.0;
  std::size_t n_effective = 0;  ///< pairs after dropping zero differences
};

WilcoxonResult wilcoxon_signed_rank(const std::vector<double>& a,
                                    const std::vector<double>& b);

/// Pearson correlation of two equally-sized samples; nullopt if degenerate.
std::optional<double> pearson(const std::vector<double>& x,
                              const std::vector<double>& y);

}  // namespace pacga::support
