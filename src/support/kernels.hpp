// Runtime-dispatched SIMD kernels — the vector layer under the whole solver
// stack.
//
// Every hot reduction in the repo (makespan max-scans, argmax/argmin over
// machine completions, the fused `ct[m] + etc_row[m]` min-scan at the heart
// of Min-min / Sufferage / H2LL candidate selection, machine-column scaling,
// content fingerprinting, batched offspring evaluation) funnels through this
// header. Three tiers — AVX-512 (8-wide doubles), AVX2 (4-wide), and a
// portable scalar path — are resolved ONCE at startup from CPU features;
// `PACGA_FORCE_KERNELS=scalar|avx2|avx512` pins a specific tier for testing
// (refusing tiers the CPU cannot run), and `PACGA_FORCE_SCALAR=1` survives
// as an alias for `PACGA_FORCE_KERNELS=scalar`.
//
// Semantics are PINNED and dispatch-independent:
//   * argmax/argmin and the fused min scans break ties toward the LOWEST
//     index (the strict-comparison in-order-scan convention every caller's
//     golden determinism already depends on);
//   * all floating-point results are BIT-IDENTICAL across paths: the kernels
//     only select, compare, add element-wise, and multiply element-wise —
//     no reassociated sums, no FMA contraction — so a schedule computed
//     under AVX2 is byte-for-byte the schedule computed under the scalar
//     path (test_kernels proves this over adversarial inputs); max_value /
//     min_value canonicalize -0.0 to +0.0 on return, closing the one
//     representable gap (signed-zero ties) between reduction orders;
//   * hash_block is defined as a fixed 4-lane interleaved mix, so the
//     scalar path reproduces the vector path's value exactly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace pacga::support::kernels {

/// Result of a fused scan: the winning value and its (lowest, on ties)
/// index.
struct MinScan {
  double value;
  std::size_t index;
};

/// The resolved kernel table. All function pointers are non-null; `name` is
/// "avx512", "avx2" or "scalar". Scans require n >= 1 unless noted.
struct Dispatch {
  double (*max_value)(const double* data, std::size_t n);
  double (*min_value)(const double* data, std::size_t n);
  std::size_t (*argmax)(const double* data, std::size_t n);
  std::size_t (*argmin)(const double* data, std::size_t n);
  /// min over i of a[i] + b[i], lowest index on ties. The element-wise sum
  /// is computed exactly as the scalar loop computes it, so the winning
  /// value is bit-identical across paths.
  MinScan (*min_plus)(const double* a, const double* b, std::size_t n);
  void (*scale_inplace)(double* data, std::size_t n, double factor);
  /// 4-lane interleaved content hash (lane l mixes elements l, l+4, ...).
  /// Stable across platforms, standard libraries, and dispatch paths.
  std::uint64_t (*hash_block)(const double* data, std::size_t n,
                              std::uint64_t seed);
  /// One dispatch, many rows: out[r] = max over rows[r][0..n). Each row is
  /// reduced exactly as max_value reduces it (same canonicalized result,
  /// bit-identical across tiers); the batched form exists so callers with a
  /// sweep's worth of completion vectors — the breeder's staged offspring —
  /// pay the indirect call once per sweep instead of once per child.
  void (*batch_max)(const double* const* rows, std::size_t count,
                    std::size_t n, double* out);
  const char* name;
};

/// The active table: resolved once (first use) from CPU features and the
/// PACGA_FORCE_KERNELS / PACGA_FORCE_SCALAR environment variables. A forced
/// tier the CPU cannot run (or an unrecognized value) aborts loudly rather
/// than silently running something else.
const Dispatch& active() noexcept;

/// "avx512", "avx2" or "scalar" — what active() resolved to.
const char* active_dispatch() noexcept;

// ---- convenience wrappers over the active table --------------------------

inline double max_value(const double* data, std::size_t n) noexcept {
  return active().max_value(data, n);
}

inline double min_value(const double* data, std::size_t n) noexcept {
  return active().min_value(data, n);
}

inline std::size_t argmax(const double* data, std::size_t n) noexcept {
  return active().argmax(data, n);
}

inline std::size_t argmin(const double* data, std::size_t n) noexcept {
  return active().argmin(data, n);
}

/// Fused completion scan: min over machines of ct[m] + etc_row[m] — the
/// inner loop of MCT, Min-min, Sufferage, tabu-hop and H2LL candidate
/// evaluation.
inline MinScan min_completion_index(const double* ct, const double* etc_row,
                                    std::size_t n) noexcept {
  return active().min_plus(ct, etc_row, n);
}

/// Same scan with one index excluded (Sufferage's second-best machine,
/// tabu-hop's "any machine but the loaded one"). Requires n >= 2 and
/// skip < n; ties still break toward the lowest surviving index.
inline MinScan min_completion_index_skip(const double* ct,
                                         const double* etc_row, std::size_t n,
                                         std::size_t skip) noexcept {
  const auto& d = active();
  MinScan lo{std::numeric_limits<double>::infinity(), 0};
  if (skip > 0) lo = d.min_plus(ct, etc_row, skip);
  if (skip + 1 < n) {
    MinScan hi = d.min_plus(ct + skip + 1, etc_row + skip + 1, n - skip - 1);
    hi.index += skip + 1;
    // Strict <: on ties the low range (lower indices) wins.
    if (hi.value < lo.value) return hi;
  }
  return lo;
}

inline void scale_inplace(double* data, std::size_t n,
                          double factor) noexcept {
  active().scale_inplace(data, n, factor);
}

inline std::uint64_t hash_block(const double* data, std::size_t n,
                                std::uint64_t seed) noexcept {
  return active().hash_block(data, n, seed);
}

inline void batch_max(const double* const* rows, std::size_t count,
                      std::size_t n, double* out) noexcept {
  active().batch_max(rows, count, n, out);
}

// ---- direct access to both paths (equivalence tests, benchmarks) ---------

namespace detail {

/// True when this CPU can run the AVX2 table.
bool avx2_supported() noexcept;

/// True when this CPU can run the AVX-512 table (requires avx512f; AVX2
/// support is also required because the 4-lane hash stays on that path).
bool avx512_supported() noexcept;

/// The portable reference path — always valid.
const Dispatch& scalar_table() noexcept;

/// The AVX2 path; only callable when avx2_supported(). On non-x86 builds
/// this aliases the scalar table.
const Dispatch& avx2_table() noexcept;

/// The AVX-512 path; only callable when avx512_supported(). On non-x86
/// builds this aliases the scalar table.
const Dispatch& avx512_table() noexcept;

/// The pure resolution rule behind active(), exposed so tests can pin the
/// precedence order without forking per environment combination:
/// PACGA_FORCE_KERNELS (scalar|avx2|avx512) wins when set; otherwise a
/// truthy PACGA_FORCE_SCALAR pins scalar; otherwise the best supported
/// tier (avx512 > avx2 > scalar). Returns nullptr with `*error` set to a
/// static message when a forced tier is unsupported or the value is
/// unrecognized — active() turns that into an abort.
const Dispatch* resolve_tables(const char* force_kernels,
                               const char* force_scalar, bool have_avx2,
                               bool have_avx512, const char** error) noexcept;

}  // namespace detail

}  // namespace pacga::support::kernels
