// Deterministic, fast pseudo-random number generation for the PA-CGA library.
//
// Design notes (HPC):
//  * xoshiro256** is the workhorse generator: 4x64-bit state, sub-ns step,
//    passes BigCrush, and is trivially splittable into independent per-thread
//    streams via SplitMix64 seeding (the scheme recommended by its authors).
//  * All distribution helpers are branch-light and avoid libstdc++'s
//    <random> distribution objects in hot paths (their state and rejection
//    loops are slower and not reproducible across standard libraries).
//  * One master seed -> any number of decorrelated streams, so experiments
//    are reproducible while threads never share generator state.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

namespace pacga::support {

/// SplitMix64: tiny generator used to expand a single 64-bit seed into
/// well-distributed state words for other generators. Never use it as the
/// main generator; its purpose is seeding.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64-bit value.
  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: general-purpose 64-bit generator (Blackman & Vigna).
/// Satisfies the std::uniform_random_bit_generator concept so it can be
/// plugged into <random> and <algorithm> where convenient.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from a single seed through SplitMix64.
  explicit Xoshiro256(std::uint64_t seed = 0xdeadbeefcafef00dULL) noexcept {
    reseed(seed);
  }

  /// Re-initializes state from `seed`; guarantees a non-zero state.
  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;  // all-zero is absorbing
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Long-jump: advances the state by 2^192 steps. Used to derive widely
  /// separated streams from a common seed (alternative to SplitMix splitting).
  void long_jump() noexcept;

  /// Uniform integer in [0, bound). `bound` must be > 0.
  /// Lemire's multiply-shift method with rejection for exact uniformity.
  std::uint64_t bounded(std::uint64_t bound) noexcept {
    // Fast path via 128-bit multiply; rejection loop runs ~never for the
    // small bounds (tasks/machines/population) used in this library.
    __uint128_t m = static_cast<__uint128_t>(operator()()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(operator()()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    bounded(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double uniform() noexcept {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Bernoulli trial with success probability `p`.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Standard normal deviate (Marsaglia polar method; the spare deviate is
  /// discarded so the generator stays a pure function of its 256-bit
  /// state — no hidden cache to break reproducibility reasoning).
  double normal() noexcept;

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Gamma(shape, scale) deviate, shape > 0, scale > 0. Marsaglia-Tsang
  /// squeeze for shape >= 1; the boost `Gamma(a) = Gamma(a+1) * U^(1/a)`
  /// for shape < 1. Used by the CVB ETC generation method.
  double gamma(double shape, double scale) noexcept;

  /// Fisher-Yates shuffle of a vector-like container.
  template <typename Container>
  void shuffle(Container& c) noexcept {
    for (std::size_t i = c.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(bounded(i));
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

  /// Picks an index in [0, n) — convenience wrapper over bounded().
  std::size_t index(std::size_t n) noexcept {
    return static_cast<std::size_t>(bounded(n));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> s_{};
};

/// Derives `n` decorrelated generators from one master seed. Stream i is
/// seeded with SplitMix64(master).next() applied i+1 times, so streams are
/// stable under changes of n (stream i is the same for n=2 and n=8).
std::vector<Xoshiro256> make_streams(std::uint64_t master_seed, std::size_t n);

/// Hashes an instance name (or any string) to a stable 64-bit seed (FNV-1a).
/// Used to give each benchmark instance a deterministic generation seed.
std::uint64_t seed_from_string(const char* s) noexcept;

/// SplitMix64-style avalanche step folding one word into a running hash.
/// Deliberately not std::hash (implementation-defined): users — the ETC
/// content fingerprint and the service's cache keys derived from it —
/// need values that are stable across platforms and standard libraries.
constexpr std::uint64_t hash_mix(std::uint64_t h, std::uint64_t v) noexcept {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  return h ^ (h >> 27);
}

}  // namespace pacga::support
