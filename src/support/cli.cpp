#include "support/cli.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace pacga::support {

Cli::Cli(std::string program_description)
    : description_(std::move(program_description)) {}

namespace {

template <typename T>
T parse_number(const std::string& name, const std::string& value);

template <>
int parse_number<int>(const std::string& name, const std::string& value) {
  try {
    std::size_t pos = 0;
    const int v = std::stoi(value, &pos);
    if (pos != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error("invalid integer for --" + name + ": " + value);
  }
}

template <>
std::int64_t parse_number<std::int64_t>(const std::string& name,
                                        const std::string& value) {
  try {
    std::size_t pos = 0;
    const std::int64_t v = std::stoll(value, &pos);
    if (pos != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error("invalid integer for --" + name + ": " + value);
  }
}

template <>
std::size_t parse_number<std::size_t>(const std::string& name,
                                      const std::string& value) {
  const std::int64_t v = parse_number<std::int64_t>(name, value);
  if (v < 0) throw std::runtime_error("negative value for --" + name);
  return static_cast<std::size_t>(v);
}

template <>
double parse_number<double>(const std::string& name, const std::string& value) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(value, &pos);
    if (pos != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error("invalid number for --" + name + ": " + value);
  }
}

}  // namespace

Cli& Cli::flag(const std::string& name, bool* target, const std::string& help) {
  Opt o;
  o.help = help;
  o.is_flag = true;
  o.default_repr = *target ? "true" : "false";
  o.apply = [target](const std::string&) { *target = true; };
  order_.push_back(name);
  opts_[name] = std::move(o);
  return *this;
}

Cli& Cli::option(const std::string& name, int* target, const std::string& help) {
  Opt o;
  o.help = help;
  o.default_repr = std::to_string(*target);
  o.apply = [name, target](const std::string& v) {
    *target = parse_number<int>(name, v);
  };
  order_.push_back(name);
  opts_[name] = std::move(o);
  return *this;
}

Cli& Cli::option(const std::string& name, std::int64_t* target,
                 const std::string& help) {
  Opt o;
  o.help = help;
  o.default_repr = std::to_string(*target);
  o.apply = [name, target](const std::string& v) {
    *target = parse_number<std::int64_t>(name, v);
  };
  order_.push_back(name);
  opts_[name] = std::move(o);
  return *this;
}

Cli& Cli::option(const std::string& name, std::size_t* target,
                 const std::string& help) {
  Opt o;
  o.help = help;
  o.default_repr = std::to_string(*target);
  o.apply = [name, target](const std::string& v) {
    *target = parse_number<std::size_t>(name, v);
  };
  order_.push_back(name);
  opts_[name] = std::move(o);
  return *this;
}

Cli& Cli::option(const std::string& name, double* target,
                 const std::string& help) {
  Opt o;
  o.help = help;
  o.default_repr = std::to_string(*target);
  o.apply = [name, target](const std::string& v) {
    *target = parse_number<double>(name, v);
  };
  order_.push_back(name);
  opts_[name] = std::move(o);
  return *this;
}

Cli& Cli::option(const std::string& name, std::string* target,
                 const std::string& help) {
  Opt o;
  o.help = help;
  o.default_repr = *target;
  o.apply = [target](const std::string& v) { *target = v; };
  order_.push_back(name);
  opts_[name] = std::move(o);
  return *this;
}

Cli& Cli::option(const std::string& name, std::string* target,
                 std::vector<std::string> allowed, const std::string& help) {
  std::string choices;
  for (const auto& c : allowed) {
    if (!choices.empty()) choices += "|";
    choices += c;
  }
  Opt o;
  o.help = help + " [" + choices + "]";
  o.default_repr = *target;
  o.apply = [name, target, allowed = std::move(allowed),
             choices](const std::string& v) {
    for (const auto& c : allowed) {
      if (v == c) {
        *target = v;
        return;
      }
    }
    throw std::runtime_error("invalid choice for --" + name + ": '" + v +
                             "' (expected one of " + choices + ")");
  };
  order_.push_back(name);
  opts_[name] = std::move(o);
  return *this;
}

bool Cli::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      throw std::runtime_error("unexpected positional argument: " + arg);
    }
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    const auto it = opts_.find(arg);
    if (it == opts_.end()) {
      throw std::runtime_error("unknown option --" + arg + "\n" + usage());
    }
    if (it->second.is_flag) {
      if (has_value) throw std::runtime_error("flag --" + arg + " takes no value");
      it->second.apply("");
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc)
        throw std::runtime_error("missing value for --" + arg);
      value = argv[++i];
    }
    it->second.apply(value);
  }
  return true;
}

std::string Cli::usage() const {
  std::ostringstream out;
  out << description_ << "\n\nOptions:\n";
  for (const auto& name : order_) {
    const Opt& o = opts_.at(name);
    out << "  --" << name;
    if (!o.is_flag) out << " <value>";
    out << "\n      " << o.help;
    if (!o.default_repr.empty()) out << " (default: " << o.default_repr << ")";
    out << "\n";
  }
  out << "  --help\n      print this message\n";
  return out.str();
}

}  // namespace pacga::support
