#include "support/threading.hpp"

namespace pacga::support {

ScopedThreads::ScopedThreads(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back(fn, i);
  }
}

ScopedThreads::~ScopedThreads() { join(); }

void ScopedThreads::join() {
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

Barrier::Barrier(std::size_t parties) : parties_(parties) {}

void Barrier::arrive_and_wait() {
  const std::size_t gen = generation_.load(std::memory_order_acquire);
  if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
    arrived_.store(0, std::memory_order_relaxed);
    generation_.fetch_add(1, std::memory_order_release);
    generation_.notify_all();
    return;
  }
  std::size_t cur = generation_.load(std::memory_order_acquire);
  while (cur == gen) {
    generation_.wait(cur, std::memory_order_acquire);
    cur = generation_.load(std::memory_order_acquire);
  }
}

std::size_t clamp_threads(std::size_t requested) noexcept {
  const std::size_t hw = std::thread::hardware_concurrency();
  const std::size_t cap = hw == 0 ? 1 : hw;
  if (requested == 0) return 1;
  return requested < cap ? requested : cap;
}

}  // namespace pacga::support
