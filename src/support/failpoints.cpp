#include "support/failpoints.hpp"

#ifndef PACGA_NO_FAILPOINTS

#include <chrono>
#include <cstdlib>
#include <thread>
#include <utility>

namespace pacga::support {

namespace {

// >0 while any ScopedWedgeSuspend is alive. Read inside wedge wait
// predicates; bumped under no particular lock — which is why
// Failpoint::notify() must pass through each site's mutex before
// notifying (see the comment there), or the wakeup can race a waiter
// into a lost-notification park.
std::atomic<int> g_wedge_suspend{0};

}  // namespace

bool wedges_suspended() noexcept {
  return g_wedge_suspend.load(std::memory_order_relaxed) > 0;
}

// --- Failpoint --------------------------------------------------------------

Failpoint::Failpoint(std::string name) : name_(std::move(name)) {}

bool Failpoint::should_trigger_locked() {
  switch (trigger_) {
    case Trigger::kOff:
      return false;
    case Trigger::kOnce:
    case Trigger::kTimes:
      if (remaining_ == 0) return false;
      remaining_ -= 1;
      if (remaining_ == 0) armed_.store(false, std::memory_order_relaxed);
      return true;
    case Trigger::kEvery:
      return param_ != 0 && hits_ % param_ == 0;
    case Trigger::kAfter:
      return hits_ > param_;
  }
  return false;
}

void Failpoint::fire() {
  Action action;
  double delay_ms;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    hits_ += 1;
    if (!should_trigger_locked()) return;
    action = action_;
    delay_ms = delay_ms_;
    if (action == Action::kWedge) {
      if (wedges_suspended()) return;  // drain mode: wedges pass through
      const std::uint64_t epoch = epoch_;
      wedged_ += 1;
      cv_.wait(lock,
               [&] { return epoch_ != epoch || wedges_suspended(); });
      wedged_ -= 1;
      return;
    }
  }
  // Throw / sleep outside the lock: a long delay must not block
  // configure() or other sites' hits on this failpoint.
  if (action == Action::kDelay) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        delay_ms));
    return;
  }
  throw FailpointError(name_);
}

void Failpoint::configure(const std::string& spec) {
  // Parse into locals first so a grammar error leaves the site untouched.
  Trigger trigger;
  Action action = Action::kThrow;
  std::uint64_t param = 0;
  double delay_ms = 0.0;

  const auto bad = [&]() -> std::runtime_error {
    return std::runtime_error("bad failpoint spec '" + spec +
                              "' (want off|once|every=N|after=N|times=K"
                              "[:throw|delay=MS|wedge])");
  };
  const auto parse_u64 = [&](const std::string& s) -> std::uint64_t {
    if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos)
      throw bad();
    return std::strtoull(s.c_str(), nullptr, 10);
  };

  const std::size_t colon = spec.find(':');
  const std::string trig = spec.substr(0, colon);
  if (trig == "off") {
    trigger = Trigger::kOff;
  } else if (trig == "once") {
    trigger = Trigger::kOnce;
  } else if (trig.rfind("every=", 0) == 0) {
    trigger = Trigger::kEvery;
    param = parse_u64(trig.substr(6));
    if (param == 0) throw bad();
  } else if (trig.rfind("after=", 0) == 0) {
    trigger = Trigger::kAfter;
    param = parse_u64(trig.substr(6));
  } else if (trig.rfind("times=", 0) == 0) {
    trigger = Trigger::kTimes;
    param = parse_u64(trig.substr(6));
    if (param == 0) throw bad();
  } else {
    throw bad();
  }

  if (colon != std::string::npos) {
    const std::string act = spec.substr(colon + 1);
    if (act == "throw") {
      action = Action::kThrow;
    } else if (act == "wedge") {
      action = Action::kWedge;
    } else if (act.rfind("delay=", 0) == 0) {
      action = Action::kDelay;
      delay_ms = static_cast<double>(parse_u64(act.substr(6)));
    } else {
      throw bad();
    }
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    trigger_ = trigger;
    action_ = action;
    param_ = param;
    delay_ms_ = delay_ms;
    hits_ = 0;
    remaining_ = trigger == Trigger::kOnce   ? 1
                 : trigger == Trigger::kTimes ? param
                                              : 0;
    epoch_ += 1;  // releases any thread parked in a previous wedge
    armed_.store(trigger != Trigger::kOff, std::memory_order_relaxed);
  }
  cv_.notify_all();
}

std::size_t Failpoint::wedged() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return wedged_;
}

void Failpoint::notify() {
  // Empty lock/unlock before notifying: the wedge predicate reads
  // g_wedge_suspend, an atomic flipped OUTSIDE mutex_ (by
  // ScopedWedgeSuspend). Without the lock, the flip + notify could land
  // entirely between a waiter's predicate check (suspend still 0, under
  // mutex_) and its block on the cv — the wakeup would be lost and
  // SolverPool::join() would hang on the parked worker forever.
  // Acquiring mutex_ here cannot complete until that waiter has released
  // it, i.e. until it is actually parked (or re-checking the predicate,
  // where the mutex ordering makes the new flag value visible).
  { std::lock_guard<std::mutex> lock(mutex_); }
  cv_.notify_all();
}

// --- FailpointRegistry ------------------------------------------------------

Failpoint& FailpointRegistry::site(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = points_.find(name);
  if (it == points_.end())
    it = points_.emplace(name, std::make_unique<Failpoint>(name)).first;
  return *it->second;
}

void FailpointRegistry::configure(const std::string& name,
                                  const std::string& spec) {
  site(name).configure(spec);
}

void FailpointRegistry::configure_from_string(const std::string& entries) {
  std::size_t pos = 0;
  while (pos < entries.size()) {
    std::size_t end = entries.find(',', pos);
    if (end == std::string::npos) end = entries.size();
    const std::string entry = entries.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0)
      throw std::runtime_error("bad failpoint entry '" + entry +
                               "' (want name=spec)");
    configure(entry.substr(0, eq), entry.substr(eq + 1));
  }
}

void FailpointRegistry::reset_all() {
  std::vector<Failpoint*> points;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    points.reserve(points_.size());
    for (auto& [name, fp] : points_) points.push_back(fp.get());
  }
  for (Failpoint* fp : points) fp->configure("off");
}

std::size_t FailpointRegistry::wedged() const {
  std::vector<Failpoint*> points;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    points.reserve(points_.size());
    for (auto& [name, fp] : points_) points.push_back(fp.get());
  }
  std::size_t total = 0;
  for (Failpoint* fp : points) total += fp->wedged();
  return total;
}

std::vector<std::string> FailpointRegistry::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(points_.size());
  for (const auto& [name, fp] : points_) out.push_back(name);
  return out;
}

void FailpointRegistry::notify_all() {
  std::vector<Failpoint*> points;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    points.reserve(points_.size());
    for (auto& [name, fp] : points_) points.push_back(fp.get());
  }
  for (Failpoint* fp : points) fp->notify();
}

FailpointRegistry& failpoints() {
  // The env list is applied exactly once, before the first site can
  // consult the registry; a bad PACGA_FAILPOINTS aborts startup loudly
  // rather than running a storm the operator didn't specify.
  static FailpointRegistry& registry = [] () -> FailpointRegistry& {
    static FailpointRegistry r;
    if (const char* env = std::getenv("PACGA_FAILPOINTS"))
      r.configure_from_string(env);
    return r;
  }();
  return registry;
}

// --- ScopedWedgeSuspend -----------------------------------------------------

ScopedWedgeSuspend::ScopedWedgeSuspend() {
  g_wedge_suspend.fetch_add(1, std::memory_order_relaxed);
  failpoints().notify_all();
}

ScopedWedgeSuspend::~ScopedWedgeSuspend() {
  g_wedge_suspend.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace pacga::support

#endif  // PACGA_NO_FAILPOINTS
