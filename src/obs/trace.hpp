// Flight recorder for the scheduler service: fixed-size span events in
// per-worker lock-free ring buffers.
//
// Every job's life is a handful of spans — queue wait, the serve envelope,
// cache probe, arena build, the solver phase — plus sampled per-generation
// convergence instants. Workers record them into their OWN bounded ring
// (single writer, no locks, no allocation: a record is six relaxed-atomic
// word stores and one release publish). When the ring wraps, the oldest
// spans are dropped — a flight recorder keeps the recent past, not the
// whole flight.
//
// Readers (the daemon's TRACE verbs, tests) snapshot a ring concurrently:
// copy records oldest-to-newest, then discard any record the writer could
// have been overwriting during the copy (its logical index has fallen out
// of the window [head_after - capacity + 1, head_after)). Word-granular
// relaxed atomics make the concurrent access defined (TSan-clean) and the
// post-copy window check makes it UNTORN: a record either survives intact
// or is dropped whole (test_obs races a writer against a reader to pin
// this).
//
// Timestamps are monotonic nanoseconds since the owning TraceCollector's
// construction (steady_clock), so spans from different workers order
// consistently and Chrome's trace viewer renders them on one timeline.
//
// Compile-out: with PACGA_NO_OBS the recording API keeps its shape but
// stores nothing and snapshots are empty.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "support/threading.hpp"

namespace pacga::obs {

/// What a span records. Durations ("X" phases in the Chrome export):
/// kQueueWait through kPaCga. Instants ("i"): kGeneration and the
/// terminal markers.
enum class SpanKind : std::uint8_t {
  kQueueWait = 0,  ///< submitted -> picked up; a = shard, b = stolen(0|1)
  kServe,          ///< the whole worker-side serve envelope; b = status
  kCacheProbe,     ///< solution-cache lookup; b = hit(0|1)
  kArenaBuild,     ///< warm-arena cold (re)build; a = tasks, b = machines
  kHeuristic,      ///< Min-min/Sufferage solve phase
  kWarmCga,        ///< warm sequential CGA phase; a = generations
  kPaCga,          ///< PA-CGA escalation phase; a = generations
  kGeneration,     ///< sampled convergence probe; a = generation,
                   ///< b = bit_cast<uint64>(best_fitness)
  kCompleted,      ///< terminal instant; b = bit_cast<uint64>(makespan)
  kCancelled,      ///< terminal instant
  kFailed,         ///< terminal instant
};

inline constexpr std::size_t kSpanKinds =
    static_cast<std::size_t>(SpanKind::kFailed) + 1;

/// Stable lowercase name ("queue_wait", "warm_cga", ...) used by the
/// Chrome export, the TRACE timeline, and docs/OBSERVABILITY.md (the
/// docs drift gate greps both sides).
const char* to_string(SpanKind k) noexcept;

/// True for duration spans, false for instants.
bool span_has_duration(SpanKind k) noexcept;

/// One fixed-size trace record. ts_ns/dur_ns are nanoseconds on the
/// collector clock; a/b are kind-specific (see SpanKind).
struct SpanEvent {
  std::uint64_t job_id = 0;
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t worker = 0;
  SpanKind kind = SpanKind::kQueueWait;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

/// Bounded single-writer ring of SpanEvents (see the file comment for the
/// reader protocol). Capacity is rounded up to a power of two.
class TraceRing {
 public:
#if !defined(PACGA_NO_OBS)
  /// `capacity` 0 disables the ring (push is a branch, snapshots empty).
  explicit TraceRing(std::size_t capacity);

  /// Appends one record. ONLY the owning writer thread may call this.
  void push(const SpanEvent& e) noexcept;

  /// Concurrent-safe copy of the surviving window, oldest first.
  std::vector<SpanEvent> snapshot() const;

  /// Records ever pushed (monotone; survivors are the last <= capacity).
  std::uint64_t pushed() const noexcept {
    return head_.load(std::memory_order_acquire);
  }

  std::size_t capacity() const noexcept { return mask_ ? mask_ + 1 : 0; }
#else
  explicit TraceRing(std::size_t) {}
  void push(const SpanEvent&) noexcept {}
  std::vector<SpanEvent> snapshot() const { return {}; }
  std::uint64_t pushed() const noexcept { return 0; }
  std::size_t capacity() const noexcept { return 0; }
#endif

 private:
#if !defined(PACGA_NO_OBS)
  /// One record as relaxed-atomic words: word-tear-free under a racing
  /// reader. Layout: job, ts, dur, kind|worker packed, a, b.
  static constexpr std::size_t kWords = 6;
  using Slot = std::atomic<std::uint64_t>[kWords];

  std::unique_ptr<Slot[]> slots_;
  std::size_t mask_ = 0;               ///< capacity - 1 (power of two)
  std::atomic<std::uint64_t> head_{0};  ///< records published
#endif
};

/// The service-wide collector: one padded TraceRing per worker plus the
/// shared epoch clock. Workers write through WorkerTracer; the daemon's
/// TRACE verbs read merged snapshots.
class TraceCollector {
 public:
  /// `capacity` is PER WORKER (rounded up to a power of two); 0 builds a
  /// disabled collector.
  TraceCollector(std::size_t workers, std::size_t capacity);

  std::size_t workers() const noexcept { return rings_.size(); }
  bool enabled() const noexcept;

  TraceRing& ring(std::size_t worker) { return *rings_[worker]; }
  const TraceRing& ring(std::size_t worker) const { return *rings_[worker]; }

  /// Nanoseconds since collector construction (the span clock).
  std::uint64_t now_ns() const noexcept;
  /// Converts a steady_clock time point (e.g. JobState::submitted) to the
  /// span clock; times before construction clamp to 0.
  std::uint64_t to_ns(std::chrono::steady_clock::time_point t) const noexcept;

  /// Merged snapshot of every ring, sorted by (ts, worker, kind).
  std::vector<SpanEvent> snapshot() const;
  /// The spans of one job, sorted by ts (scans every ring).
  std::vector<SpanEvent> job_spans(std::uint64_t job_id) const;

  /// Chrome trace_event JSON ("traceEvents" array of "X"/"i" events, µs
  /// timestamps; worker lanes pid=1, queue-wait lanes pid=2 keyed by
  /// shard). Loadable in chrome://tracing / Perfetto.
  void write_chrome_trace(std::ostream& out) const;

 private:
  std::vector<std::unique_ptr<TraceRing>> rings_;
  std::chrono::steady_clock::time_point epoch_;
};

/// A worker's recording handle: binds (collector, worker) and hides the
/// disabled case so call sites stay branch-light. Safe to construct
/// null (tracing off).
class WorkerTracer {
 public:
  WorkerTracer() = default;
  WorkerTracer(TraceCollector* collector, std::size_t worker)
      : ring_(collector && collector->enabled() ? &collector->ring(worker)
                                                : nullptr),
        collector_(collector),
        worker_(static_cast<std::uint32_t>(worker)) {}

  bool enabled() const noexcept { return ring_ != nullptr; }

  /// Span clock read; 0 when disabled (callers gate on enabled()).
  std::uint64_t now_ns() const noexcept {
    return ring_ ? collector_->now_ns() : 0;
  }
  std::uint64_t to_ns(std::chrono::steady_clock::time_point t) const noexcept {
    return ring_ ? collector_->to_ns(t) : 0;
  }

  /// Duration span over [start_ns, end_ns] (clamped to start).
  void span(SpanKind kind, std::uint64_t job_id, std::uint64_t start_ns,
            std::uint64_t end_ns, std::uint64_t a = 0,
            std::uint64_t b = 0) noexcept {
    if (!ring_) return;
    SpanEvent e;
    e.job_id = job_id;
    e.ts_ns = start_ns;
    e.dur_ns = end_ns > start_ns ? end_ns - start_ns : 0;
    e.worker = worker_;
    e.kind = kind;
    e.a = a;
    e.b = b;
    ring_->push(e);
  }

  /// Instant event at now().
  void instant(SpanKind kind, std::uint64_t job_id, std::uint64_t a = 0,
               std::uint64_t b = 0) noexcept {
    if (!ring_) return;
    SpanEvent e;
    e.job_id = job_id;
    e.ts_ns = collector_->now_ns();
    e.worker = worker_;
    e.kind = kind;
    e.a = a;
    e.b = b;
    ring_->push(e);
  }

 private:
  TraceRing* ring_ = nullptr;
  TraceCollector* collector_ = nullptr;
  std::uint32_t worker_ = 0;
};

/// Formats a job timeline as the daemon's one-line TRACE response body:
/// space-separated `<kind>@<start_ms>+<dur_ms>` tokens (instants omit
/// `+dur`), timestamps on the collector clock.
std::string format_job_timeline(const std::vector<SpanEvent>& spans);

}  // namespace pacga::obs
