#include "obs/histogram.hpp"

#include <bit>
#include <cmath>
#include <limits>

namespace pacga::obs {

std::size_t hist_index_of(std::uint64_t ns) noexcept {
  if (ns < kHistSubBuckets) return static_cast<std::size_t>(ns);
  // 2^e <= ns < 2^(e+1); the top kHistSubBucketBits+1 bits select the
  // sub-bucket (the leading 1 contributes the major offset).
  const unsigned e = 63u - static_cast<unsigned>(std::countl_zero(ns));
  if (e >= kHistMaxExponent) return kHistBuckets - 1;
  const std::uint64_t sub =
      (ns >> (e - kHistSubBucketBits)) - kHistSubBuckets;  // in [0, 32)
  return static_cast<std::size_t>(
      (e - kHistSubBucketBits + 1) * kHistSubBuckets + sub);
}

std::uint64_t hist_value_at(std::size_t index) noexcept {
  if (index < kHistSubBuckets) return index;  // exact buckets
  const std::uint64_t major = index / kHistSubBuckets;  // >= 1
  const std::uint64_t sub = index % kHistSubBuckets;
  const unsigned e = static_cast<unsigned>(major - 1) + kHistSubBucketBits;
  const std::uint64_t lower = (kHistSubBuckets + sub) << (e - kHistSubBucketBits);
  const std::uint64_t width = 1ull << (e - kHistSubBucketBits);
  return lower + width - 1;  // highest equivalent value
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  if (other.counts_.empty()) return;
  if (counts_.empty()) {
    counts_ = other.counts_;
    return;
  }
  for (std::size_t i = 0; i < counts_.size(); ++i)
    counts_[i] += other.counts_[i];
}

std::uint64_t HistogramSnapshot::count() const noexcept {
  std::uint64_t n = 0;
  for (std::uint64_t c : counts_) n += c;
  return n;
}

double HistogramSnapshot::quantile_ns(double q) const noexcept {
  const std::uint64_t total = count();
  if (total == 0) return std::numeric_limits<double>::quiet_NaN();
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // ceil without float drift for the q=1 edge.
  std::uint64_t target =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total)));
  if (target == 0) target = 1;
  if (target > total) target = total;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i];
    if (cum >= target) return static_cast<double>(hist_value_at(i));
  }
  return static_cast<double>(hist_value_at(counts_.size() - 1));
}

#if !defined(PACGA_NO_OBS)

LatencyHistogram::LatencyHistogram(bool enabled) {
  if (!enabled) return;
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(kHistBuckets);
  for (std::size_t i = 0; i < kHistBuckets; ++i)
    counts_[i].store(0, std::memory_order_relaxed);
}

HistogramSnapshot LatencyHistogram::snapshot() const {
  if (!counts_) return {};
  std::vector<std::uint64_t> out(kHistBuckets);
  for (std::size_t i = 0; i < kHistBuckets; ++i)
    out[i] = counts_[i].load(std::memory_order_relaxed);
  return HistogramSnapshot(std::move(out));
}

#endif  // !PACGA_NO_OBS

void LatencyHistogram::record_seconds(double seconds) noexcept {
  if (!(seconds > 0.0)) {  // negative clock skew and NaN clamp to 0
    record_ns(0);
    return;
  }
  const double ns = seconds * 1e9;
  record_ns(ns >= 9.2e18 ? std::numeric_limits<std::uint64_t>::max()
                         : static_cast<std::uint64_t>(ns));
}

}  // namespace pacga::obs
