#include "obs/trace.hpp"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace pacga::obs {

const char* to_string(SpanKind k) noexcept {
  switch (k) {
    case SpanKind::kQueueWait: return "queue_wait";
    case SpanKind::kServe: return "serve";
    case SpanKind::kCacheProbe: return "cache_probe";
    case SpanKind::kArenaBuild: return "arena_build";
    case SpanKind::kHeuristic: return "heuristic";
    case SpanKind::kWarmCga: return "warm_cga";
    case SpanKind::kPaCga: return "pa_cga";
    case SpanKind::kGeneration: return "generation";
    case SpanKind::kCompleted: return "completed";
    case SpanKind::kCancelled: return "cancelled";
    case SpanKind::kFailed: return "failed";
  }
  return "?";
}

bool span_has_duration(SpanKind k) noexcept {
  switch (k) {
    case SpanKind::kGeneration:
    case SpanKind::kCompleted:
    case SpanKind::kCancelled:
    case SpanKind::kFailed:
      return false;
    default:
      return true;
  }
}

#if !defined(PACGA_NO_OBS)

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t c = 1;
  while (c < n) c <<= 1;
  return c;
}

/// kind and worker share one word (kind in the low byte).
std::uint64_t pack_kind_worker(SpanKind k, std::uint32_t worker) noexcept {
  return (static_cast<std::uint64_t>(worker) << 8) |
         static_cast<std::uint64_t>(k);
}

}  // namespace

TraceRing::TraceRing(std::size_t capacity) {
  if (capacity == 0) return;
  const std::size_t cap = round_up_pow2(capacity);
  slots_ = std::make_unique<Slot[]>(cap);
  for (std::size_t s = 0; s < cap; ++s)
    for (std::size_t w = 0; w < kWords; ++w)
      slots_[s][w].store(0, std::memory_order_relaxed);
  mask_ = cap - 1;
}

void TraceRing::push(const SpanEvent& e) noexcept {
  if (!slots_) return;
  const std::uint64_t h = head_.load(std::memory_order_relaxed);
  Slot& s = slots_[static_cast<std::size_t>(h) & mask_];
  s[0].store(e.job_id, std::memory_order_relaxed);
  s[1].store(e.ts_ns, std::memory_order_relaxed);
  s[2].store(e.dur_ns, std::memory_order_relaxed);
  s[3].store(pack_kind_worker(e.kind, e.worker), std::memory_order_relaxed);
  s[4].store(e.a, std::memory_order_relaxed);
  s[5].store(e.b, std::memory_order_relaxed);
  // Publish AFTER the payload: a reader that sees head > h sees record h's
  // words written (release/acquire pairing with snapshot()).
  head_.store(h + 1, std::memory_order_release);
}

std::vector<SpanEvent> TraceRing::snapshot() const {
  std::vector<SpanEvent> out;
  if (!slots_) return out;
  const std::size_t cap = mask_ + 1;
  const std::uint64_t h1 = head_.load(std::memory_order_acquire);
  const std::uint64_t n = std::min<std::uint64_t>(h1, cap);
  const std::uint64_t first = h1 - n;
  out.reserve(static_cast<std::size_t>(n));
  std::vector<std::uint64_t> logical;
  logical.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = first; i < h1; ++i) {
    const Slot& s = slots_[static_cast<std::size_t>(i) & mask_];
    SpanEvent e;
    e.job_id = s[0].load(std::memory_order_relaxed);
    e.ts_ns = s[1].load(std::memory_order_relaxed);
    e.dur_ns = s[2].load(std::memory_order_relaxed);
    const std::uint64_t kw = s[3].load(std::memory_order_relaxed);
    e.kind = static_cast<SpanKind>(kw & 0xff);
    e.worker = static_cast<std::uint32_t>(kw >> 8);
    e.a = s[4].load(std::memory_order_relaxed);
    e.b = s[5].load(std::memory_order_relaxed);
    out.push_back(e);
    logical.push_back(i);
  }
  // Drop anything the writer could have been overwriting during the copy:
  // while publishing record j it touches slot j & mask, which aliases
  // logical record j - capacity. With h2 = head after the copy, records at
  // logical index <= h2 - capacity may be torn — the writer was (or could
  // have been) inside them — so only the window (h2 - capacity, h1) is
  // certainly intact. Dropping is from the FRONT (oldest), matching the
  // ring's drop-oldest semantics.
  const std::uint64_t h2 = head_.load(std::memory_order_acquire);
  std::size_t keep_from = 0;
  while (keep_from < logical.size() && h2 >= cap &&
         logical[keep_from] <= h2 - cap) {
    ++keep_from;
  }
  if (keep_from > 0) out.erase(out.begin(), out.begin() + keep_from);
  return out;
}

#endif  // !PACGA_NO_OBS

// --- TraceCollector ---------------------------------------------------------

TraceCollector::TraceCollector(std::size_t workers, std::size_t capacity)
    : epoch_(std::chrono::steady_clock::now()) {
  rings_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w)
    rings_.push_back(std::make_unique<TraceRing>(capacity));
}

bool TraceCollector::enabled() const noexcept {
  return !rings_.empty() && rings_.front()->capacity() > 0;
}

std::uint64_t TraceCollector::now_ns() const noexcept {
  return to_ns(std::chrono::steady_clock::now());
}

std::uint64_t TraceCollector::to_ns(
    std::chrono::steady_clock::time_point t) const noexcept {
  const auto d =
      std::chrono::duration_cast<std::chrono::nanoseconds>(t - epoch_).count();
  return d > 0 ? static_cast<std::uint64_t>(d) : 0;
}

std::vector<SpanEvent> TraceCollector::snapshot() const {
  std::vector<SpanEvent> all;
  for (const auto& r : rings_) {
    const std::vector<SpanEvent> s = r->snapshot();
    all.insert(all.end(), s.begin(), s.end());
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const SpanEvent& a, const SpanEvent& b) {
                     if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
                     if (a.worker != b.worker) return a.worker < b.worker;
                     return static_cast<int>(a.kind) < static_cast<int>(b.kind);
                   });
  return all;
}

std::vector<SpanEvent> TraceCollector::job_spans(std::uint64_t job_id) const {
  std::vector<SpanEvent> all = snapshot();
  all.erase(std::remove_if(all.begin(), all.end(),
                           [job_id](const SpanEvent& e) {
                             return e.job_id != job_id;
                           }),
            all.end());
  return all;
}

namespace {

/// Kind-specific argument names of the a/b payload (see SpanKind).
void write_args(std::ostream& out, const SpanEvent& e) {
  out << "\"job\":" << e.job_id;
  switch (e.kind) {
    case SpanKind::kQueueWait:
      out << ",\"shard\":" << e.a << ",\"stolen\":" << e.b;
      break;
    case SpanKind::kServe:
      out << ",\"status\":" << e.b;
      break;
    case SpanKind::kCacheProbe:
      out << ",\"hit\":" << e.b;
      break;
    case SpanKind::kArenaBuild:
      out << ",\"tasks\":" << e.a << ",\"machines\":" << e.b;
      break;
    case SpanKind::kWarmCga:
    case SpanKind::kPaCga:
      out << ",\"generations\":" << e.a;
      break;
    case SpanKind::kGeneration:
      out << ",\"generation\":" << e.a
          << ",\"fitness\":" << std::bit_cast<double>(e.b);
      break;
    case SpanKind::kCompleted:
      out << ",\"makespan\":" << std::bit_cast<double>(e.b);
      break;
    default:
      break;
  }
}

}  // namespace

void TraceCollector::write_chrome_trace(std::ostream& out) const {
  const std::vector<SpanEvent> spans = snapshot();
  out << "{\"traceEvents\":[\n";
  bool first = true;
  // Lane names: workers under pid 1, per-shard queue-wait lanes under pid 2.
  for (std::size_t w = 0; w < rings_.size(); ++w) {
    out << (first ? "" : ",\n")
        << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << w
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\"worker " << w
        << "\"}}";
    first = false;
  }
  out.precision(3);
  out << std::fixed;
  for (const SpanEvent& e : spans) {
    const bool queue_lane = e.kind == SpanKind::kQueueWait;
    const double ts_us = static_cast<double>(e.ts_ns) / 1e3;
    out << (first ? "" : ",\n") << "{\"name\":\"" << to_string(e.kind)
        << "\",\"ph\":\"" << (span_has_duration(e.kind) ? 'X' : 'i')
        << "\",\"pid\":" << (queue_lane ? 2 : 1)
        << ",\"tid\":" << (queue_lane ? e.a : e.worker) << ",\"ts\":" << ts_us;
    if (span_has_duration(e.kind)) {
      out << ",\"dur\":" << static_cast<double>(e.dur_ns) / 1e3;
    } else {
      out << ",\"s\":\"t\"";
    }
    out << ",\"args\":{";
    write_args(out, e);
    out << "}}";
    first = false;
  }
  out << "\n]}\n";
}

std::string format_job_timeline(const std::vector<SpanEvent>& spans) {
  std::ostringstream out;
  out.precision(3);
  out << std::fixed;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const SpanEvent& e = spans[i];
    if (i > 0) out << ' ';
    out << to_string(e.kind) << '@'
        << static_cast<double>(e.ts_ns) / 1e6;  // ms on the collector clock
    if (span_has_duration(e.kind))
      out << '+' << static_cast<double>(e.dur_ns) / 1e6;
  }
  return out.str();
}

}  // namespace pacga::obs
