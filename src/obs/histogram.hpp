// Log-bucketed latency histogram — the percentile counterpart of the
// per-worker Welford slots in service/metrics.hpp.
//
// Layout (HDR-histogram style, power-of-2 majors with linear sub-buckets):
// values below kSubBuckets (32) are recorded EXACTLY, one bucket per value;
// above that, each power-of-2 range [2^e, 2^(e+1)) is split into 32 linear
// sub-buckets, so any recorded value is reported within 1/32 (~3.2%) of its
// true magnitude. Values are unsigned 64-bit nanoseconds; anything at or
// above 2^kMaxExponent ns (~18 minutes) saturates into the last bucket.
//
// Concurrency contract — identical to ServiceMetrics' OwnedStats: each
// histogram has EXACTLY ONE writer (its pinned worker), which bumps bucket
// counters with single-writer relaxed load/store (no RMW, no shared line);
// a concurrent snapshot() reads the counters relaxed from another thread.
// A snapshot racing a record() may miss the in-flight sample — one count in
// a monitoring view — but never tears: every counter is an atomic word.
// Merging per-worker snapshots is integer bucket addition, so the merge of
// N single-writer histograms is BIT-EQUAL to one serial histogram fed the
// same samples in any order (test_obs pins this).
//
// Compile-out: with PACGA_NO_OBS defined the class keeps its interface but
// owns no storage; record() is an empty inline and snapshots are empty.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace pacga::obs {

/// Bucket geometry, shared by the live histogram and its snapshots.
inline constexpr unsigned kHistSubBucketBits = 5;  ///< 32 sub-buckets: ~3.2%
inline constexpr std::uint64_t kHistSubBuckets = 1ull << kHistSubBucketBits;
/// Values at or above 2^kHistMaxExponent ns (~18.3 min) saturate.
inline constexpr unsigned kHistMaxExponent = 40;
inline constexpr std::size_t kHistBuckets =
    (kHistMaxExponent - kHistSubBucketBits) * kHistSubBuckets + kHistSubBuckets;

/// Bucket index of a nanosecond value (saturating at kHistBuckets - 1).
std::size_t hist_index_of(std::uint64_t ns) noexcept;

/// Highest value mapping into bucket `index` — the value a quantile read
/// reports for samples in that bucket (exact for the first 32 buckets,
/// within 1/32 above). `index` must be < kHistBuckets.
std::uint64_t hist_value_at(std::size_t index) noexcept;

/// Immutable copy of a histogram's bucket counts. Plain integers: merging
/// and comparing are exact.
class HistogramSnapshot {
 public:
  HistogramSnapshot() = default;
  explicit HistogramSnapshot(std::vector<std::uint64_t> counts)
      : counts_(std::move(counts)) {}

  /// Adds `other`'s buckets into this one (parallel-reduction form).
  void merge(const HistogramSnapshot& other);

  std::uint64_t count() const noexcept;
  bool empty() const noexcept { return count() == 0; }

  /// Quantile in NANOSECONDS: the reported value of the bucket where the
  /// cumulative count first reaches ceil(q * count), q clamped to [0,1].
  /// Quiet NaN when the histogram is empty (mirrors RunningStats::min).
  double quantile_ns(double q) const noexcept;
  /// Same, in milliseconds (the daemon/bench reporting unit).
  double quantile_ms(double q) const noexcept { return quantile_ns(q) / 1e6; }

  const std::vector<std::uint64_t>& counts() const noexcept { return counts_; }

 private:
  std::vector<std::uint64_t> counts_;  ///< empty or kHistBuckets entries
};

/// The live single-writer histogram (see the file comment for the
/// concurrency contract). Storage is allocated on first use is NOT the
/// model — buckets are allocated at construction so the recording path
/// never allocates (the warm-solver zero-alloc proofs cover it).
class LatencyHistogram {
 public:
#if !defined(PACGA_NO_OBS)
  LatencyHistogram() : LatencyHistogram(true) {}
  /// `enabled == false` skips the storage entirely: record() is a pointer
  /// test and snapshots are empty (the runtime observability switch).
  explicit LatencyHistogram(bool enabled);

  /// Records one sample; only the owning writer thread may call this.
  void record_ns(std::uint64_t ns) noexcept {
    if (!counts_) return;
    std::atomic<std::uint64_t>& c = counts_[hist_index_of(ns)];
    c.store(c.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
  }

  HistogramSnapshot snapshot() const;
#else
  LatencyHistogram() = default;
  explicit LatencyHistogram(bool) {}
  void record_ns(std::uint64_t) noexcept {}
  HistogramSnapshot snapshot() const { return {}; }
#endif

  /// Seconds convenience for the service's double-seconds timings (clamped
  /// to [0, 2^63) ns).
  void record_seconds(double seconds) noexcept;

 private:
#if !defined(PACGA_NO_OBS)
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
#endif
};

}  // namespace pacga::obs
