// Ready-time-aware completion seeding — turn a PARTIAL assignment into a
// complete warm-start schedule.
//
// The streaming/rescheduling paths repeatedly face the same situation: some
// tasks already have a machine (the previous epoch's tail, a repaired
// schedule) and some do not (fresh arrivals). A good warm seed keeps the
// committed decisions and places only the rest, against completion times
// seeded from the machines' READY times — work already underway counts, or
// the seed would overload machines that are busy draining committed work.
//
// warm_seed() is that constructive step: completions start at
// etc.ready(m), assigned tasks are summed in, then each unassigned task is
// placed on the machine minimizing its completion time, in ascending task
// order (MCT restricted to the gap set; one SIMD-dispatched fused scan per
// placement). Deterministic: pure function of (etc, partial), lowest-index
// tie-breaks — warm starts built from it replay byte-identically, which
// the streaming golden tests rely on.
#pragma once

#include <span>
#include <vector>

#include "etc/etc_matrix.hpp"
#include "sched/schedule.hpp"

namespace pacga::sched {

/// Sentinel marking "this task has no machine yet" in a partial assignment.
inline constexpr MachineId kNoMachine = static_cast<MachineId>(-1);

/// Completes `partial` (one entry per task; kNoMachine = unassigned) into a
/// full assignment and returns the resulting schedule. Throws
/// std::invalid_argument on a size mismatch or an assigned id out of range.
Schedule warm_seed(const etc::EtcMatrix& etc,
                   std::span<const MachineId> partial);

}  // namespace pacga::sched
