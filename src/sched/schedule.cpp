#include "sched/schedule.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "support/kernels.hpp"

namespace pacga::sched {

namespace kernels = support::kernels;

Schedule::Schedule(const etc::EtcMatrix& etc, std::vector<MachineId> assignment)
    : etc_(&etc),
      assignment_(std::move(assignment)),
      completion_(etc.machines(), 0.0) {
  if (assignment_.size() != etc.tasks())
    throw std::invalid_argument("Schedule: assignment size != tasks");
  for (MachineId m : assignment_) {
    if (m >= etc.machines())
      throw std::invalid_argument("Schedule: machine id out of range");
  }
  recompute();
}

Schedule::Schedule(const etc::EtcMatrix& etc)
    : Schedule(etc, std::vector<MachineId>(etc.tasks(), MachineId{0})) {}

Schedule Schedule::random(const etc::EtcMatrix& etc, support::Xoshiro256& rng) {
  std::vector<MachineId> assignment(etc.tasks());
  for (auto& a : assignment) {
    a = static_cast<MachineId>(rng.index(etc.machines()));
  }
  return Schedule(etc, std::move(assignment));
}

void Schedule::assign_from(const Schedule& src) {
  // adopt() and randomize_from() throw on shape mismatch; assign_from is
  // the hot path (every breeding step), so it only asserts: a mismatched
  // copy silently reallocates, voiding the zero-allocation contract the
  // warm arenas are built on.
  assert(src.assignment_.size() == assignment_.size() &&
         "Schedule::assign_from: task count mismatch");
  assert(src.completion_.size() == completion_.size() &&
         "Schedule::assign_from: machine count mismatch");
  etc_ = src.etc_;
  assignment_ = src.assignment_;
  completion_ = src.completion_;
}

void Schedule::randomize_from(const etc::EtcMatrix& etc,
                              support::Xoshiro256& rng) {
  if (etc.tasks() != assignment_.size() || etc.machines() != completion_.size())
    throw std::invalid_argument("Schedule::randomize_from: shape mismatch");
  etc_ = &etc;
  for (auto& a : assignment_) {
    a = static_cast<MachineId>(rng.index(etc.machines()));
  }
  recompute();
}

void Schedule::adopt(const etc::EtcMatrix& etc,
                     std::span<const MachineId> assignment) {
  if (etc.tasks() != assignment_.size() || etc.machines() != completion_.size() ||
      assignment.size() != assignment_.size())
    throw std::invalid_argument("Schedule::adopt: shape mismatch");
  for (MachineId m : assignment) {
    if (m >= etc.machines())
      throw std::invalid_argument("Schedule::adopt: machine id out of range");
  }
  etc_ = &etc;
  std::copy(assignment.begin(), assignment.end(), assignment_.begin());
  recompute();
}

void Schedule::adopt_with_completions(const etc::EtcMatrix& etc,
                                      std::span<const MachineId> assignment,
                                      std::span<const double> completion) {
  if (assignment.size() != etc.tasks() || completion.size() != etc.machines())
    throw std::invalid_argument(
        "Schedule::adopt_with_completions: size mismatch");
  for (MachineId m : assignment) {
    if (m >= etc.machines())
      throw std::invalid_argument(
          "Schedule::adopt_with_completions: machine id out of range");
  }
  etc_ = &etc;
  assignment_.assign(assignment.begin(), assignment.end());
  completion_.assign(completion.begin(), completion.end());
  assert(validate() &&
         "Schedule::adopt_with_completions: inconsistent completion cache");
}

void Schedule::move_task(std::size_t t, MachineId m) noexcept {
  const MachineId old = assignment_[t];
  if (old == m) return;
  completion_[old] -= (*etc_)(t, old);
  completion_[m] += (*etc_)(t, m);
  assignment_[t] = m;
}

void Schedule::swap_tasks(std::size_t a, std::size_t b) noexcept {
  const MachineId ma = assignment_[a];
  const MachineId mb = assignment_[b];
  if (ma == mb) return;
  completion_[ma] += (*etc_)(b, ma) - (*etc_)(a, ma);
  completion_[mb] += (*etc_)(a, mb) - (*etc_)(b, mb);
  assignment_[a] = mb;
  assignment_[b] = ma;
}

void Schedule::copy_segment(const Schedule& source, std::size_t begin,
                            std::size_t end) noexcept {
  assert(source.assignment_.size() == assignment_.size());
  for (std::size_t t = begin; t < end; ++t) {
    move_task(t, source.assignment_[t]);
  }
}

double Schedule::makespan() const noexcept {
  // The paper's evaluate(): one max-scan over the CT cache, now through the
  // dispatched kernel layer. Clamped at 0.0 like the original accumulator.
  return std::max(0.0,
                  kernels::max_value(completion_.data(), completion_.size()));
}

std::size_t Schedule::argmax_machine() const noexcept {
  return kernels::argmax(completion_.data(), completion_.size());
}

std::size_t Schedule::argmin_machine() const noexcept {
  return kernels::argmin(completion_.data(), completion_.size());
}

double Schedule::flowtime() const {
  // Per machine: sort assigned ETCs ascending; finishing times are the
  // prefix sums starting at the machine's ready time. Grouping is a
  // counting sort into thread-local scratch, so steady-state calls (any
  // shape already seen by this thread) perform zero heap allocations —
  // flowtime sits on the multi-objective evaluation path.
  thread_local std::vector<double> grouped;
  thread_local std::vector<std::uint32_t> offset;
  grouped.resize(tasks());
  offset.assign(machines() + 1, 0);
  for (MachineId a : assignment_) ++offset[a + 1];
  for (std::size_t m = 1; m <= machines(); ++m) offset[m] += offset[m - 1];
  // offset[m] now points at machine m's bucket start; restore after scatter.
  for (std::size_t t = 0; t < tasks(); ++t) {
    grouped[offset[assignment_[t]]++] = (*etc_)(t, assignment_[t]);
  }
  double flow = 0.0;
  std::uint32_t begin = 0;
  for (std::size_t m = 0; m < machines(); ++m) {
    const std::uint32_t end = offset[m];
    std::sort(grouped.begin() + begin, grouped.begin() + end);
    double finish = etc_->ready(m);
    for (std::uint32_t i = begin; i < end; ++i) {
      finish += grouped[i];
      flow += finish;
    }
    begin = end;
  }
  return flow;
}

std::size_t Schedule::tasks_on(MachineId m) const noexcept {
  std::size_t n = 0;
  for (MachineId a : assignment_) n += (a == m);
  return n;
}

void Schedule::recompute() noexcept {
  for (std::size_t m = 0; m < completion_.size(); ++m) {
    completion_[m] = etc_->ready(m);
  }
  for (std::size_t t = 0; t < assignment_.size(); ++t) {
    completion_[assignment_[t]] += (*etc_)(t, assignment_[t]);
  }
}

bool Schedule::validate(double tol) const noexcept {
  Schedule fresh(*etc_, assignment_);
  for (std::size_t m = 0; m < completion_.size(); ++m) {
    const double scale = std::max({std::abs(completion_[m]),
                                   std::abs(fresh.completion_[m]), 1.0});
    if (std::abs(completion_[m] - fresh.completion_[m]) > tol * scale)
      return false;
  }
  return true;
}

std::size_t Schedule::hamming_distance(const Schedule& other) const noexcept {
  assert(assignment_.size() == other.assignment_.size());
  std::size_t d = 0;
  for (std::size_t t = 0; t < assignment_.size(); ++t) {
    d += (assignment_[t] != other.assignment_[t]);
  }
  return d;
}

}  // namespace pacga::sched
