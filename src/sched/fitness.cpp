#include "sched/fitness.hpp"

namespace pacga::sched {

Fitness evaluate(const Schedule& s, Objective objective, double lambda) {
  switch (objective) {
    case Objective::kMakespan:
      return s.makespan();
    case Objective::kFlowtime:
      return s.flowtime();
    case Objective::kWeightedMakespanFlowtime:
      return lambda * s.makespan() +
             (1.0 - lambda) * s.flowtime() / static_cast<double>(s.tasks());
  }
  return s.makespan();
}

const char* to_string(Objective o) noexcept {
  switch (o) {
    case Objective::kMakespan: return "makespan";
    case Objective::kFlowtime: return "flowtime";
    case Objective::kWeightedMakespanFlowtime: return "weighted";
  }
  return "?";
}

}  // namespace pacga::sched
