#include "sched/seed.hpp"

#include <stdexcept>

#include "support/kernels.hpp"

namespace pacga::sched {

Schedule warm_seed(const etc::EtcMatrix& etc,
                   std::span<const MachineId> partial) {
  if (partial.size() != etc.tasks())
    throw std::invalid_argument("warm_seed: partial size != tasks");
  const std::size_t machines = etc.machines();

  // Seed completions from ready times, then charge the assigned tasks.
  std::vector<double> completion(machines);
  for (std::size_t m = 0; m < machines; ++m) completion[m] = etc.ready(m);
  std::vector<MachineId> assignment(partial.begin(), partial.end());
  for (std::size_t t = 0; t < assignment.size(); ++t) {
    if (assignment[t] == kNoMachine) continue;
    if (assignment[t] >= machines)
      throw std::invalid_argument("warm_seed: machine id out of range");
    completion[assignment[t]] += etc(t, assignment[t]);
  }

  // Place the gaps greedily: each unassigned task (ascending — the
  // deterministic order) goes to the machine minimizing its completion.
  for (std::size_t t = 0; t < assignment.size(); ++t) {
    if (assignment[t] != kNoMachine) continue;
    const auto best = support::kernels::min_completion_index(
        completion.data(), etc.of_task(t).data(), machines);
    assignment[t] = static_cast<MachineId>(best.index);
    completion[best.index] = best.value;
  }

  return Schedule(etc, std::move(assignment));
}

}  // namespace pacga::sched
