// Fitness functions over schedules. The paper optimizes makespan only
// (single objective); flowtime and the weighted combination are provided
// as the natural extensions the grid-scheduling literature uses (and the
// paper cites as alternative criteria).
#pragma once

#include "sched/schedule.hpp"

namespace pacga::sched {

/// Lower-is-better fitness value.
using Fitness = double;

/// Objective selector for engines and harnesses.
enum class Objective {
  kMakespan,          ///< max machine completion time (the paper's criterion)
  kFlowtime,          ///< sum of task finishing times, shortest-first order
  kWeightedMakespanFlowtime,  ///< lambda*makespan + (1-lambda)*flowtime/tasks
};

/// Evaluates `objective` on `s`. `lambda` only matters for the weighted
/// objective (default 0.75, the common choice in the cMA literature).
Fitness evaluate(const Schedule& s, Objective objective, double lambda = 0.75);

/// True when fitness `a` is strictly better (smaller) than `b`.
inline bool better(Fitness a, Fitness b) noexcept { return a < b; }

const char* to_string(Objective o) noexcept;

}  // namespace pacga::sched
