// Solution representation (paper §3.3, Figure 3):
//   * S  — assignment array, S[t] = machine of task t;
//   * CT — cached completion time per machine, maintained INCREMENTALLY by
//          every operator (add/remove one ETC entry), so evaluate() is just
//          a max-scan over machines instead of an O(tasks) rebuild.
//
// The cache is the core performance idea of the representation; tests
// cross-check it against full recomputation after every operator
// (Schedule::validate()).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "etc/etc_matrix.hpp"
#include "support/rng.hpp"

namespace pacga::sched {

using MachineId = std::uint16_t;
using TaskId = std::uint32_t;

/// A complete assignment of every task to one machine, with cached
/// per-machine completion times. Copyable (copies are how GA individuals
/// breed); the referenced ETC matrix must outlive all schedules.
class Schedule {
 public:
  /// Builds from an explicit assignment; computes CT in O(tasks).
  Schedule(const etc::EtcMatrix& etc, std::vector<MachineId> assignment);

  /// All tasks on machine 0 (useful as a degenerate baseline in tests).
  explicit Schedule(const etc::EtcMatrix& etc);

  /// Uniformly random assignment.
  static Schedule random(const etc::EtcMatrix& etc, support::Xoshiro256& rng);

  /// Becomes a copy of `src` without releasing storage: both vectors are
  /// overwritten in place, so when this schedule already has the capacity
  /// (same instance shape — the steady state of every engine) the call
  /// performs zero heap allocations. The completion-time cache is taken
  /// from `src` wholesale, which is exactly the incremental discipline:
  /// the cache travels with the assignment instead of being rebuilt.
  /// Debug builds assert the shapes match (the zero-allocation contract
  /// every engine relies on); release builds trust the caller.
  void assign_from(const Schedule& src);

  /// Rebinds to `etc` (which must have this schedule's tasks x machines
  /// shape) and overwrites the assignment with a fresh uniformly random
  /// one, in place — zero heap allocations. This is how the service's warm
  /// solver arenas recycle population storage across jobs of the same
  /// shape. Throws std::invalid_argument on a shape mismatch.
  void randomize_from(const etc::EtcMatrix& etc, support::Xoshiro256& rng);

  /// Rebinds to `etc` (same shape required) and adopts `assignment`
  /// verbatim, recomputing the completion-time cache — in place, zero
  /// allocations. Used to replay cached solutions and seed schedules into
  /// recycled storage. Throws std::invalid_argument on shape or machine-id
  /// range violations.
  void adopt(const etc::EtcMatrix& etc, std::span<const MachineId> assignment);

  /// Rebinds to `etc` (possibly a DIFFERENT shape — storage is resized),
  /// adopting `assignment` AND the caller-maintained completion-time cache
  /// verbatim, with no O(tasks) recompute. This is the dynamic repairer's
  /// handoff: it patches the cache incrementally across grid events and
  /// hands both halves over together. The cache is trusted in release
  /// builds and assert-validated (full recomputation) in debug builds.
  /// Throws std::invalid_argument on size/machine-id range violations.
  void adopt_with_completions(const etc::EtcMatrix& etc,
                              std::span<const MachineId> assignment,
                              std::span<const double> completion);

  std::size_t tasks() const noexcept { return assignment_.size(); }
  std::size_t machines() const noexcept { return completion_.size(); }
  const etc::EtcMatrix& etc() const noexcept { return *etc_; }

  MachineId machine_of(std::size_t t) const noexcept { return assignment_[t]; }
  std::span<const MachineId> assignment() const noexcept { return assignment_; }

  /// Completion time of machine m (ready time + assigned ETCs).
  double completion(std::size_t m) const noexcept { return completion_[m]; }
  std::span<const double> completions() const noexcept { return completion_; }

  /// Moves task t to machine m; O(1) completion-time update. No-op when t
  /// is already on m.
  void move_task(std::size_t t, MachineId m) noexcept;

  /// Swaps the machines of two tasks; O(1) update.
  void swap_tasks(std::size_t a, std::size_t b) noexcept;

  /// Reassigns the whole task range [begin, end) from `source`'s assignment
  /// — the incremental form of crossover segment copy. O(end - begin).
  void copy_segment(const Schedule& source, std::size_t begin, std::size_t end) noexcept;

  /// Makespan: max completion time (paper eq. (3)). One SIMD-dispatched
  /// max-scan of the cache (support::kernels) — this IS the paper's
  /// evaluate().
  double makespan() const noexcept;

  /// Index of the most loaded machine (lowest index on ties — pinned,
  /// dispatch-independent).
  std::size_t argmax_machine() const noexcept;

  /// Index of the least loaded machine (lowest index on ties).
  std::size_t argmin_machine() const noexcept;

  /// Flowtime: sum of task finishing times assuming each machine runs its
  /// tasks shortest-first (the order minimizing flowtime; the convention of
  /// Xhafa et al.). O(tasks log tasks); allocation-free in the steady
  /// state (thread-local counting-sort scratch).
  double flowtime() const;

  /// Number of tasks currently assigned to machine m. O(tasks).
  std::size_t tasks_on(MachineId m) const noexcept;

  /// Recomputes the completion-time cache from scratch. O(tasks).
  void recompute() noexcept;

  /// True when the cached completion times match a from-scratch
  /// recomputation within `tol` (relative to magnitude). Test/debug hook.
  bool validate(double tol = 1e-6) const noexcept;

  bool operator==(const Schedule& other) const noexcept {
    return assignment_ == other.assignment_;
  }

  /// Hamming distance between assignments (used by struggle replacement).
  std::size_t hamming_distance(const Schedule& other) const noexcept;

 private:
  const etc::EtcMatrix* etc_;
  std::vector<MachineId> assignment_;
  std::vector<double> completion_;
};

}  // namespace pacga::sched
