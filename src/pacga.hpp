// Umbrella header: the library's whole public API in one include.
//
//   #include "pacga.hpp"
//   const auto etc = pacga::etc::generate_by_name("u_i_hihi.0");
//   pacga::cga::Config config;                 // paper Table 1 defaults
//   auto result = pacga::par::run_parallel(etc, config);
//
// Fine-grained headers remain available for consumers who care about
// compile times; this is the convenience entry point.
#pragma once

#include "baselines/cma_lth.hpp"
#include "baselines/island_ga.hpp"
#include "baselines/sa.hpp"
#include "baselines/struggle_ga.hpp"
#include "batch/policies.hpp"
#include "batch/simulator.hpp"
#include "batch/workload.hpp"
#include "cga/breeder.hpp"
#include "cga/config.hpp"
#include "cga/diversity.hpp"
#include "cga/engine.hpp"
#include "cga/loop.hpp"
#include "cga/multiobjective.hpp"
#include "cga/population_io.hpp"
#include "etc/braun.hpp"
#include "etc/io.hpp"
#include "etc/repository.hpp"
#include "etc/suite.hpp"
#include "heuristics/listsched.hpp"
#include "heuristics/minmin.hpp"
#include "heuristics/sufferage.hpp"
#include "pacga/cellwise_engine.hpp"
#include "pacga/parallel_engine.hpp"
#include "sched/fitness.hpp"
#include "sched/schedule.hpp"
#include "service/service.hpp"
#include "support/cli.hpp"
#include "support/csv.hpp"
#include "support/log.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/threading.hpp"
#include "support/timer.hpp"
