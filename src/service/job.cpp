#include "service/job.hpp"

#include <stdexcept>

namespace pacga::service {

const char* to_string(SolvePolicy p) noexcept {
  switch (p) {
    case SolvePolicy::kAuto: return "auto";
    case SolvePolicy::kMinMin: return "minmin";
    case SolvePolicy::kSufferage: return "sufferage";
    case SolvePolicy::kCga: return "cga";
    case SolvePolicy::kPaCga: return "pacga";
    case SolvePolicy::kWarmStart: return "warmstart";
  }
  return "?";
}

SolvePolicy parse_policy(const std::string& s) {
  if (s == "auto") return SolvePolicy::kAuto;
  if (s == "minmin") return SolvePolicy::kMinMin;
  if (s == "sufferage") return SolvePolicy::kSufferage;
  if (s == "cga") return SolvePolicy::kCga;
  if (s == "pacga") return SolvePolicy::kPaCga;
  throw std::invalid_argument("unknown solve policy: " + s);
}

const char* to_string(JobStatus s) noexcept {
  switch (s) {
    case JobStatus::kPending: return "pending";
    case JobStatus::kRunning: return "running";
    case JobStatus::kDone: return "done";
    case JobStatus::kCancelled: return "cancelled";
    case JobStatus::kFailed: return "failed";
  }
  return "?";
}

}  // namespace pacga::service
