#include "service/queue.hpp"

#include <algorithm>
#include <stdexcept>

namespace pacga::service {

JobQueue::JobQueue(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0)
    throw std::invalid_argument("JobQueue: capacity must be >= 1");
  heap_.reserve(capacity);
}

void JobQueue::push_locked(JobTicket&& job) {
  Entry e;
  e.priority = job->spec.priority;
  e.seq = next_seq_++;
  e.job = std::move(job);
  heap_.push_back(std::move(e));
  std::push_heap(heap_.begin(), heap_.end(), heap_before);
}

bool JobQueue::try_submit(JobTicket job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || heap_.size() >= capacity_) return false;
    push_locked(std::move(job));
  }
  not_empty_.notify_one();
  return true;
}

bool JobQueue::submit(JobTicket job) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock,
                   [this] { return closed_ || heap_.size() < capacity_; });
    if (closed_) return false;
    push_locked(std::move(job));
  }
  not_empty_.notify_one();
  return true;
}

JobTicket JobQueue::pop() {
  JobTicket job;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || !heap_.empty(); });
    if (heap_.empty()) return nullptr;  // closed and drained
    std::pop_heap(heap_.begin(), heap_.end(), heap_before);
    job = std::move(heap_.back().job);
    heap_.pop_back();
  }
  not_full_.notify_one();
  return job;
}

bool JobQueue::remove(const JobState* job) {
  bool removed = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it =
        std::find_if(heap_.begin(), heap_.end(),
                     [job](const Entry& e) { return e.job.get() == job; });
    if (it != heap_.end()) {
      heap_.erase(it);
      std::make_heap(heap_.begin(), heap_.end(), heap_before);
      removed = true;
    }
  }
  if (removed) not_full_.notify_one();
  return removed;
}

void JobQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

bool JobQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::size_t JobQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return heap_.size();
}

}  // namespace pacga::service
