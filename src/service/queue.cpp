#include "service/queue.hpp"

#include <algorithm>
#include <stdexcept>

#include "support/rng.hpp"

namespace pacga::service {

JobQueue::JobQueue(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0)
    throw std::invalid_argument("JobQueue: capacity must be >= 1");
  heap_.reserve(capacity);
}

void JobQueue::push_locked(JobTicket&& job) {
  Entry e;
  e.priority = job->spec.priority;
  e.seq = next_seq_++;
  e.job = std::move(job);
  heap_.push_back(std::move(e));
  std::push_heap(heap_.begin(), heap_.end(), heap_before);
}

JobTicket JobQueue::pop_locked() {
  std::pop_heap(heap_.begin(), heap_.end(), heap_before);
  JobTicket job = std::move(heap_.back().job);
  heap_.pop_back();
  return job;
}

bool JobQueue::try_submit(JobTicket job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || heap_.size() >= capacity_) return false;
    push_locked(std::move(job));
  }
  not_empty_.notify_one();
  return true;
}

bool JobQueue::submit(JobTicket job) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock,
                   [this] { return closed_ || heap_.size() < capacity_; });
    if (closed_) return false;
    push_locked(std::move(job));
  }
  not_empty_.notify_one();
  return true;
}

JobTicket JobQueue::pop() {
  JobTicket job;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || !heap_.empty(); });
    if (heap_.empty()) return nullptr;  // closed and drained
    job = pop_locked();
  }
  not_full_.notify_one();
  return job;
}

JobTicket JobQueue::try_pop() {
  JobTicket job;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (heap_.empty()) return nullptr;
    job = pop_locked();
  }
  not_full_.notify_one();
  return job;
}

void JobQueue::wait_for_work(std::chrono::nanoseconds timeout) {
  std::unique_lock<std::mutex> lock(mutex_);
  not_empty_.wait_for(lock, timeout,
                      [this] { return closed_ || !heap_.empty(); });
}

bool JobQueue::remove(const JobState* job) {
  bool removed = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it =
        std::find_if(heap_.begin(), heap_.end(),
                     [job](const Entry& e) { return e.job.get() == job; });
    if (it != heap_.end()) {
      heap_.erase(it);
      std::make_heap(heap_.begin(), heap_.end(), heap_before);
      removed = true;
    }
  }
  if (removed) not_full_.notify_one();
  return removed;
}

void JobQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

bool JobQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

bool JobQueue::done() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_ && heap_.empty();
}

std::size_t JobQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return heap_.size();
}

ShardedJobQueue::ShardedJobQueue(std::size_t capacity, std::size_t shards) {
  if (shards == 0)
    throw std::invalid_argument("ShardedJobQueue: shards must be >= 1");
  if (capacity == 0)
    throw std::invalid_argument("ShardedJobQueue: capacity must be >= 1");
  // Exact split: base slots everywhere, the remainder spread one slot each
  // over the leading shards, and a floor of 1 per shard (a shard must be
  // able to hold at least one job). Per-shard capacities therefore sum to
  // exactly max(capacity, shards) — `max(1, capacity/shards)` alone would
  // admit 8 of a requested 10 across 4 shards, or 4 of a requested 3.
  const std::size_t base = capacity / shards;
  const std::size_t remainder = capacity % shards;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    const std::size_t per_shard =
        std::max<std::size_t>(1, base + (i < remainder ? 1 : 0));
    shards_.push_back(std::make_unique<JobQueue>(per_shard));
  }
}

std::size_t ShardedJobQueue::shard_of_shape(
    std::size_t tasks, std::size_t machines) const noexcept {
  return static_cast<std::size_t>(support::hash_mix(
             static_cast<std::uint64_t>(tasks),
             static_cast<std::uint64_t>(machines))) %
         shards_.size();
}

bool ShardedJobQueue::try_submit(JobTicket job) {
  JobQueue& shard = *shards_[job->shard % shards_.size()];
  return shard.try_submit(std::move(job));
}

bool ShardedJobQueue::submit(JobTicket job) {
  JobQueue& shard = *shards_[job->shard % shards_.size()];
  return shard.submit(std::move(job));
}

JobTicket ShardedJobQueue::pop(std::size_t home, bool* stolen) {
  const std::size_t n = shards_.size();
  home %= n;
  if (stolen) *stolen = false;
  for (;;) {
    // Home shard first: the pinned worker has absolute priority on its own
    // (shape-affine) traffic, so warm arenas see unbroken same-shape runs.
    if (JobTicket job = shards_[home]->try_pop()) return job;

    // Steal ONE job from the first non-empty neighbor, ring order. Bounded
    // to one per attempt so the thief re-checks home before stealing again
    // — a burst on the home shard reclaims its worker within one job.
    for (std::size_t off = 1; off < n; ++off) {
      const std::size_t victim = (home + off) % n;
      if (JobTicket job = shards_[victim]->try_pop()) {
        steals_.fetch_add(1, std::memory_order_relaxed);
        if (stolen) *stolen = true;
        return job;
      }
    }

    // Nothing anywhere. Exit only when every shard is closed AND drained —
    // monotone after close() (closed shards only drain), so a false "not
    // done" here just means another loop iteration. A job submitted to any
    // shard between our scan and this check is picked up after the nap at
    // the latest (wait_for_work wakes immediately for home submissions).
    bool all_done = true;
    for (const auto& s : shards_)
      if (!s->done()) {
        all_done = false;
        break;
      }
    if (all_done) return nullptr;

    shards_[home]->wait_for_work(kStealPatience);
  }
}

bool ShardedJobQueue::remove(const JobState* job) {
  return shards_[job->shard % shards_.size()]->remove(job);
}

void ShardedJobQueue::close() {
  for (auto& s : shards_) s->close();
}

bool ShardedJobQueue::closed() const { return shards_.front()->closed(); }

std::size_t ShardedJobQueue::size() const {
  std::size_t total = 0;
  for (const auto& s : shards_) total += s->size();
  return total;
}

std::vector<std::size_t> ShardedJobQueue::depths() const {
  std::vector<std::size_t> d;
  d.reserve(shards_.size());
  for (const auto& s : shards_) d.push_back(s->size());
  return d;
}

std::size_t ShardedJobQueue::depth(std::size_t shard) const {
  return shards_[shard % shards_.size()]->size();
}

std::size_t ShardedJobQueue::shard_capacity(std::size_t shard) const noexcept {
  return shards_[shard % shards_.size()]->capacity();
}

std::size_t ShardedJobQueue::capacity() const noexcept {
  std::size_t total = 0;
  for (const auto& s : shards_) total += s->capacity();
  return total;
}

}  // namespace pacga::service
