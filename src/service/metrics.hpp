// Contention-free running metrics of the scheduler service.
//
// The completion path — the hottest metrics path, hit once per served job
// by every worker — touches ONLY that worker's own cache-line-padded slot:
// plain Welford moments and event counters kept as single-writer relaxed
// atomics (the DPDK per-lcore RunningStat idiom). No RMW on a shared line,
// no mutex, no synchronization between workers at all; snapshot() merges
// the slots on demand with the parallel-Welford reduction, reading each
// slot's relaxed atomics in a fixed worker order so repeated snapshots of
// a quiesced service are bit-identical.
//
// Events that originate OUTSIDE a worker thread (submit, reject, cancel,
// reschedule — any client thread may raise them) stay shared relaxed-RMW
// counters: they are orders of magnitude rarer than completions and have
// no natural owning worker.
//
// Why relaxed atomics instead of plain fields in the slots: each slot has
// exactly one writer (its pinned worker), but snapshot() reads concurrently
// from another thread. Relaxed loads/stores make that race defined (and
// TSan-clean) at zero cost on every relevant ISA — they compile to the same
// plain moves, and there is still no RMW and no shared line. A torn-epoch
// read (count from after a completion, mean from before) skews one in-flight
// sample in a monitoring snapshot; final totals are exact because workers
// have quiesced by then.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/histogram.hpp"
#include "support/stats.hpp"
#include "support/threading.hpp"
#include "support/timer.hpp"

namespace pacga::service {

class ServiceMetrics {
 public:
  /// One per pool worker; `workers` must be >= 1. `histograms` false keeps
  /// the Welford moments but skips the latency histograms (the runtime
  /// observability switch; PACGA_NO_OBS compiles them out entirely).
  explicit ServiceMetrics(std::size_t workers = 1, bool histograms = true);

  /// Consistent-enough copy of all metrics at one instant.
  struct Snapshot {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;  ///< finished with a result (kDone)
    std::uint64_t cancelled = 0;
    std::uint64_t failed = 0;     ///< solver threw (kFailed)
    std::uint64_t rejected = 0;   ///< try_submit refused: queue full
    std::uint64_t reschedules = 0;  ///< submit_reschedule admissions
    std::uint64_t retries = 0;      ///< failed attempts re-queued for retry
    std::uint64_t quarantined = 0;  ///< jobs that exhausted max_retries
    std::uint64_t stalled = 0;      ///< jobs the watchdog declared stuck
    std::uint64_t worker_restarts = 0;  ///< workers respawned by watchdog
    std::uint64_t shed = 0;  ///< submissions refused by the shard watermark
    std::uint64_t cache_hits = 0;
    std::uint64_t deadline_misses = 0;
    /// Warm-arena rebuilds across all workers — the shape-affinity figure
    /// of merit: with perfect pinning it approaches (shapes x workers that
    /// ever touched them); thrash shows up as a multiple of completions.
    std::uint64_t arena_builds = 0;
    /// Jobs served per worker (index = worker id). Skew here is expected
    /// and healthy under shape affinity; all-but-one-zero under a mixed
    /// workload means stealing is broken.
    std::vector<std::uint64_t> worker_completed;
    support::RunningStats queue_wait_seconds;
    support::RunningStats solve_seconds;
    /// Log-bucketed latency distributions merged across workers in worker
    /// order (same discipline as the Welford moments, so quantiles of a
    /// quiesced service are bit-identical across snapshots). Empty when
    /// histograms are disabled or compiled out.
    obs::HistogramSnapshot queue_wait_hist;
    obs::HistogramSnapshot solve_hist;
    obs::HistogramSnapshot e2e_hist;  ///< submit -> terminal
    double elapsed_seconds = 0.0;  ///< since service start

    double jobs_per_second() const noexcept {
      return elapsed_seconds > 0.0
                 ? static_cast<double>(completed) / elapsed_seconds
                 : 0.0;
    }
    double deadline_miss_rate() const noexcept {
      return completed > 0
                 ? static_cast<double>(deadline_misses) /
                       static_cast<double>(completed)
                 : 0.0;
    }
    double cache_hit_rate() const noexcept {
      return completed > 0 ? static_cast<double>(cache_hits) /
                                 static_cast<double>(completed)
                           : 0.0;
    }
  };

  void on_submit() noexcept {
    submitted_.fetch_add(1, std::memory_order_relaxed);
  }
  void on_reject() noexcept {
    rejected_.fetch_add(1, std::memory_order_relaxed);
  }
  void on_cancel() noexcept {
    cancelled_.fetch_add(1, std::memory_order_relaxed);
  }
  void on_reschedule() noexcept {
    reschedules_.fetch_add(1, std::memory_order_relaxed);
  }
  void on_retry() noexcept {
    retries_.fetch_add(1, std::memory_order_relaxed);
  }
  void on_quarantine() noexcept {
    quarantined_.fetch_add(1, std::memory_order_relaxed);
  }
  /// A watchdog-declared stall: counts both the stalled event and the
  /// off-worker terminal failure (the job never returns to a worker slot).
  void on_stall() noexcept {
    stalled_.fetch_add(1, std::memory_order_relaxed);
    failed_external_.fetch_add(1, std::memory_order_relaxed);
  }
  void on_worker_restart() noexcept {
    worker_restarts_.fetch_add(1, std::memory_order_relaxed);
  }
  /// A job failed terminally outside any worker slot (e.g. a pending
  /// retry abandoned at shutdown). Folded into Snapshot::failed.
  void on_fail_external() noexcept {
    failed_external_.fetch_add(1, std::memory_order_relaxed);
  }
  /// A submission refused by the queue-pressure watermark. The caller
  /// also raises on_reject(): shed is the "why" breakdown of rejected.
  void on_shed() noexcept {
    shed_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Completion-path events: touch only slot `worker`'s cache line. The
  /// caller must be the single thread that owns that slot.
  /// `e2e_seconds` is the submit->terminal latency; negative (the default)
  /// derives it as queue_wait + solve.
  void on_complete(std::size_t worker, double queue_wait_seconds,
                   double solve_seconds, bool cache_hit,
                   bool deadline_missed, double e2e_seconds = -1.0) noexcept;
  void on_fail(std::size_t worker) noexcept;
  /// Folds `n` warm-arena rebuilds into slot `worker` (reported as a diff
  /// per job by the pool, so idle workers cost nothing).
  void add_arena_builds(std::size_t worker, std::uint64_t n) noexcept;

  std::size_t workers() const noexcept { return slots_.size(); }

  Snapshot snapshot() const;

  /// Cheap estimate of the p50 per-job solve latency in milliseconds,
  /// for the overload-shedding retry hint: histogram quantile when
  /// available, mean solve time otherwise, 1 ms when nothing has been
  /// served yet. Never returns a non-finite or non-positive value.
  double approx_solve_p50_ms() const;

 private:
  /// Single-writer streaming accumulator: the owning worker updates the
  /// Welford moments exactly as RunningStats::add would (same operations,
  /// same order, so the merged snapshot is bit-equal to what a shared
  /// locked RunningStats would have produced for this worker's sequence).
  /// `n` is stored LAST so a concurrent snapshot never pairs a new count
  /// with stale moments for the sample it just admitted.
  struct OwnedStats {
    std::atomic<std::uint64_t> n{0};
    std::atomic<double> mean{0.0};
    std::atomic<double> m2{0.0};
    std::atomic<double> min{0.0};
    std::atomic<double> max{0.0};

    void add(double x) noexcept;
    support::RunningStats materialize() const noexcept;
  };

  /// Per-worker metric slot; cache-line aligned and padded (never shares a
  /// line with a neighbor slot), exactly one writing thread.
  struct WorkerSlot {
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> failed{0};
    std::atomic<std::uint64_t> cache_hits{0};
    std::atomic<std::uint64_t> deadline_misses{0};
    std::atomic<std::uint64_t> arena_builds{0};
    OwnedStats queue_wait;
    OwnedStats solve;
    /// Same single-writer contract as OwnedStats; buckets allocated at
    /// construction so the recording path never allocates.
    obs::LatencyHistogram wait_hist;
    obs::LatencyHistogram solve_hist;
    obs::LatencyHistogram e2e_hist;
  };

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> cancelled_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> reschedules_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> quarantined_{0};
  std::atomic<std::uint64_t> stalled_{0};
  std::atomic<std::uint64_t> worker_restarts_{0};
  std::atomic<std::uint64_t> failed_external_{0};  ///< off-worker failures
  std::atomic<std::uint64_t> shed_{0};
  std::vector<support::Padded<WorkerSlot>> slots_;
  bool histograms_;  ///< runtime switch; recording is skipped when false
  support::WallTimer clock_;  ///< started at service construction
};

}  // namespace pacga::service
