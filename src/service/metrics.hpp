// Lock-cheap running metrics of the scheduler service.
//
// Counters are relaxed atomics (one uncontended RMW per event); the two
// latency accumulators (queue wait, solve time) are Welford RunningStats
// behind one mutex taken for a handful of arithmetic ops per completion.
// snapshot() is safe to call at any time while serving — it reads the
// counters and copies the accumulators, never blocking the workers for
// longer than one completion does.
#pragma once

#include <atomic>
#include <cstdint>

#include <mutex>

#include "support/stats.hpp"
#include "support/timer.hpp"

namespace pacga::service {

class ServiceMetrics {
 public:
  /// Consistent-enough copy of all metrics at one instant.
  struct Snapshot {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;  ///< finished with a result (kDone)
    std::uint64_t cancelled = 0;
    std::uint64_t failed = 0;     ///< solver threw (kFailed)
    std::uint64_t rejected = 0;   ///< try_submit refused: queue full
    std::uint64_t reschedules = 0;  ///< submit_reschedule admissions
    std::uint64_t cache_hits = 0;
    std::uint64_t deadline_misses = 0;
    support::RunningStats queue_wait_seconds;
    support::RunningStats solve_seconds;
    double elapsed_seconds = 0.0;  ///< since service start

    double jobs_per_second() const noexcept {
      return elapsed_seconds > 0.0
                 ? static_cast<double>(completed) / elapsed_seconds
                 : 0.0;
    }
    double deadline_miss_rate() const noexcept {
      return completed > 0
                 ? static_cast<double>(deadline_misses) /
                       static_cast<double>(completed)
                 : 0.0;
    }
    double cache_hit_rate() const noexcept {
      return completed > 0 ? static_cast<double>(cache_hits) /
                                 static_cast<double>(completed)
                           : 0.0;
    }
  };

  void on_submit() noexcept {
    submitted_.fetch_add(1, std::memory_order_relaxed);
  }
  void on_reject() noexcept {
    rejected_.fetch_add(1, std::memory_order_relaxed);
  }
  void on_cancel() noexcept {
    cancelled_.fetch_add(1, std::memory_order_relaxed);
  }
  void on_fail() noexcept { failed_.fetch_add(1, std::memory_order_relaxed); }
  void on_reschedule() noexcept {
    reschedules_.fetch_add(1, std::memory_order_relaxed);
  }
  void on_complete(double queue_wait_seconds, double solve_seconds,
                   bool cache_hit, bool deadline_missed);

  Snapshot snapshot() const;

 private:
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> cancelled_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> reschedules_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> deadline_misses_{0};
  mutable std::mutex mutex_;  ///< guards the two accumulators only
  support::RunningStats queue_wait_;
  support::RunningStats solve_;
  support::WallTimer clock_;  ///< started at service construction
};

}  // namespace pacga::service
