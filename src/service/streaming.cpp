#include "service/streaming.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "sched/seed.hpp"
#include "service/service.hpp"

namespace pacga::service {

StreamingSession::StreamingSession(SchedulerService& service,
                                   StreamingSpec spec)
    : service_(service), spec_(std::move(spec)) {
  if (!(spec_.epoch_length > 0.0) || !std::isfinite(spec_.epoch_length))
    throw std::invalid_argument(
        "StreamingSession: epoch_length must be positive and finite");
  if (!(spec_.deadline_ms > 0.0))
    throw std::invalid_argument(
        "StreamingSession: deadline_ms must be positive");
  workload_ = batch::generate_workload(spec_.workload);  // validates
  const std::size_t machines = workload_.machines.size();
  machine_ids_.resize(machines);
  for (std::size_t m = 0; m < machines; ++m) machine_ids_[m] = m;
  busy_until_.assign(machines, 0.0);
  ready_.assign(machines, 0.0);
  task_start_.assign(workload_.tasks.size(), -1.0);
  task_finish_.assign(workload_.tasks.size(), -1.0);
  last_machine_.assign(workload_.tasks.size(), sched::kNoMachine);
}

bool StreamingSession::done() const noexcept {
  return next_arrival_ >= workload_.tasks.size() && pending_.empty();
}

EpochReport StreamingSession::step() {
  if (done()) throw std::logic_error("StreamingSession::step: already done");
  if (spec_.max_epochs != 0 && metrics_.epochs >= spec_.max_epochs)
    throw std::runtime_error("StreamingSession: epoch limit exceeded");

  EpochReport rep;
  rep.epoch = metrics_.epochs;
  const double now = static_cast<double>(metrics_.epochs) * spec_.epoch_length;
  rep.now = now;

  // --- arrivals (tasks are sorted by arrival, so ids stay ascending) ------
  rep.carried = pending_.size();
  while (next_arrival_ < workload_.tasks.size() &&
         workload_.tasks[next_arrival_].arrival <= now) {
    pending_.push_back(next_arrival_);
    ++next_arrival_;
    ++rep.arrivals;
  }
  if (pending_.empty()) {
    ++metrics_.epochs;
    return rep;  // idle epoch: nothing to solve, machines keep draining
  }
  rep.batch_tasks = pending_.size();
  metrics_.carried_tasks += rep.carried;

  // --- the epoch's batch instance, with CURRENT ready times ---------------
  for (std::size_t m = 0; m < busy_until_.size(); ++m) {
    ready_[m] = std::max(0.0, busy_until_[m] - now);
  }
  auto batch_etc = std::make_shared<const etc::EtcMatrix>(batch::make_batch_etc(
      workload_, pending_, machine_ids_, ready_, spec_.workload.inconsistency,
      spec_.workload.seed));

  // --- solve: reschedule of the previous tail, or an independent solve ----
  JobSpec job;
  job.etc = batch_etc;
  job.priority = spec_.priority;
  job.deadline_ms = spec_.deadline_ms;
  job.seed = spec_.seed + metrics_.epochs;
  job.max_generations = spec_.max_generations;
  job.policy = spec_.policy;
  // Epoch matrices never repeat (ready times shift every epoch), so the
  // solution cache cannot help; keep stream jobs out of it entirely.
  job.use_cache = false;
  JobId id = 0;
  if (spec_.warm) {
    // Carried tasks keep the machine the last solve gave them; fresh
    // arrivals are completed ready-time-aware (sched::warm_seed). The
    // service's never-worse-than-seed clamp makes every epoch's answer at
    // least as good as this seed.
    std::vector<sched::MachineId> partial(pending_.size());
    for (std::size_t bi = 0; bi < pending_.size(); ++bi) {
      partial[bi] = last_machine_[pending_[bi]];
    }
    const sched::Schedule seed = sched::warm_seed(*batch_etc, partial);
    const auto a = seed.assignment();
    job.warm_start.assign(a.begin(), a.end());
    id = service_.submit_reschedule(std::move(job));
  } else {
    id = service_.submit(std::move(job));
  }
  const JobResult r = service_.wait(id);
  if (r.status != JobStatus::kDone)
    throw std::runtime_error(std::string("StreamingSession: epoch solve ") +
                             to_string(r.status));
  rep.solved = true;
  rep.warm_started = r.warm_started;
  rep.batch_makespan = r.makespan;
  rep.solve_seconds = r.solve_seconds;
  rep.worker = r.worker;
  ++metrics_.solved_batches;
  metrics_.warm_epochs += r.warm_started ? 1 : 0;
  metrics_.solve_seconds += r.solve_seconds;

  // --- commit the epoch: whatever STARTS inside it is locked in ----------
  // Machines run their batch share in batch order; a task that cannot
  // start before the next boundary stays pending and carries its assigned
  // machine into the next epoch's warm seed.
  const double boundary = now + spec_.epoch_length;
  std::size_t kept = 0;
  for (std::size_t bi = 0; bi < pending_.size(); ++bi) {
    const std::size_t task = pending_[bi];
    const sched::MachineId machine = r.assignment[bi];
    const double start = std::max(now, busy_until_[machine]);
    if (start < boundary) {
      const double exec = (*batch_etc)(bi, machine);
      busy_until_[machine] = start + exec;
      task_start_[task] = start;
      task_finish_[task] = start + exec;
      busy_time_ += exec;
      ++rep.committed;
      ++metrics_.committed_tasks;
    } else {
      last_machine_[task] = machine;
      pending_[kept++] = task;  // tail: order (ascending ids) preserved
    }
  }
  pending_.resize(kept);

  ++metrics_.epochs;
  if (done()) finalize();
  return rep;
}

const StreamingMetrics& StreamingSession::run() {
  while (!done()) step();
  return metrics_;
}

void StreamingSession::finalize() {
  if (finalized_) return;
  finalized_ = true;
  double wait_sum = 0.0;
  double response_sum = 0.0;
  for (std::size_t t = 0; t < workload_.tasks.size(); ++t) {
    const double wait = task_start_[t] - workload_.tasks[t].arrival;
    const double response = task_finish_[t] - workload_.tasks[t].arrival;
    wait_sum += wait;
    response_sum += response;
    metrics_.max_response = std::max(metrics_.max_response, response);
    metrics_.completion_time =
        std::max(metrics_.completion_time, task_finish_[t]);
  }
  const auto n = static_cast<double>(workload_.tasks.size());
  metrics_.mean_wait = wait_sum / n;
  metrics_.mean_response = response_sum / n;
  const double machine_time =
      static_cast<double>(busy_until_.size()) * metrics_.completion_time;
  metrics_.utilization = machine_time > 0.0 ? busy_time_ / machine_time : 0.0;

  // Serving-latency percentiles from the backing service's histograms
  // (NaN — disabled or empty — reports as 0: "no distribution").
  const auto finite_ms = [](double ms) { return std::isfinite(ms) ? ms : 0.0; };
  const ServiceMetrics::Snapshot snap = service_.metrics();
  metrics_.wait_p50_ms = finite_ms(snap.queue_wait_hist.quantile_ms(0.50));
  metrics_.wait_p99_ms = finite_ms(snap.queue_wait_hist.quantile_ms(0.99));
  metrics_.solve_p50_ms = finite_ms(snap.solve_hist.quantile_ms(0.50));
  metrics_.solve_p99_ms = finite_ms(snap.solve_hist.quantile_ms(0.99));
}

}  // namespace pacga::service
