// LRU solution cache keyed by ETC content fingerprint.
//
// The service's answer to repeated instances — sweep campaigns submit the
// same matrix dozens of times, a broker retries a failed batch verbatim —
// is to not re-solve them: a hit replays the stored assignment in O(tasks)
// instead of burning a solve budget. Keys are EtcMatrix::fingerprint()
// values with the objective mixed in by the caller (service.cpp), so two
// tenants optimizing different objectives on the same matrix never share
// an entry. insert() keeps the better of old and new fitness, so anytime
// results only ever improve a cached answer.
//
// One mutex around a list+hashmap LRU: lookups copy the assignment out
// under the lock (tasks * 2 bytes — a memcpy, not a solve), which keeps
// entries immutable-by-copy and the locking trivially correct.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "sched/schedule.hpp"
#include "service/job.hpp"

namespace pacga::service {

class SolutionCache {
 public:
  /// A capacity of 0 disables the cache (lookups miss, inserts drop).
  explicit SolutionCache(std::size_t capacity);

  struct Entry {
    std::vector<sched::MachineId> assignment;
    double fitness = 0.0;
    /// The solver that produced this solution (result provenance: a hit
    /// reports the producing policy, not the requester's).
    SolvePolicy policy = SolvePolicy::kAuto;
  };

  /// On hit copies the entry into `out`, bumps recency, and returns true.
  bool lookup(std::uint64_t key, Entry& out);

  /// Stores (or refreshes) `key`. An existing entry is only overwritten
  /// when `fitness` improves on it; either way the entry becomes
  /// most-recently-used. Evicts the least-recently-used entry when full.
  void insert(std::uint64_t key, std::span<const sched::MachineId> assignment,
              double fitness, SolvePolicy policy);

  void clear();

  std::size_t size() const;
  std::size_t capacity() const noexcept { return capacity_; }
  std::uint64_t hits() const;
  std::uint64_t misses() const;

 private:
  using LruList = std::list<std::pair<std::uint64_t, Entry>>;

  mutable std::mutex mutex_;
  LruList lru_;  ///< front = most recently used
  std::unordered_map<std::uint64_t, LruList::iterator> index_;
  std::size_t capacity_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace pacga::service
