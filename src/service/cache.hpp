// Striped LRU solution cache keyed by ETC content fingerprint.
//
// The service's answer to repeated instances — sweep campaigns submit the
// same matrix dozens of times, a broker retries a failed batch verbatim —
// is to not re-solve them: a hit replays the stored assignment in O(tasks)
// instead of burning a solve budget. Keys are EtcMatrix::fingerprint()
// values with the objective mixed in by the caller (service.cpp), so two
// tenants optimizing different objectives on the same matrix never share
// an entry. insert() keeps the better of old and new fitness, so anytime
// results only ever improve a cached answer.
//
// The cache is striped: N independent (mutex, list+hashmap LRU) stripes,
// and the service selects the stripe by the job's QUEUE SHARD — the same
// shape hash that pins jobs to workers. A pinned worker therefore takes
// the same stripe lock job after job, uncontended by construction, and two
// workers only meet on a lock when one of them is serving stolen work.
// Within a stripe, lookups copy the assignment out under the lock
// (tasks * 2 bytes — a memcpy, not a solve), which keeps entries
// immutable-by-copy and the locking trivially correct. Capacity is split
// evenly across stripes (at least 1 each), so eviction pressure is
// per-stripe — matching the per-shard backpressure story of the queue.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "sched/schedule.hpp"
#include "service/job.hpp"

namespace pacga::service {

class SolutionCache {
 public:
  /// A capacity of 0 disables the cache (lookups miss, inserts drop).
  /// `stripes` >= 1; capacity is divided across them (at least 1 per
  /// stripe when enabled). The default of one stripe is the classic
  /// single-lock cache.
  explicit SolutionCache(std::size_t capacity, std::size_t stripes = 1);

  struct Entry {
    std::vector<sched::MachineId> assignment;
    double fitness = 0.0;
    /// The solver that produced this solution (result provenance: a hit
    /// reports the producing policy, not the requester's).
    SolvePolicy policy = SolvePolicy::kAuto;
  };

  /// On hit copies the entry into `out`, bumps recency, and returns true.
  /// `stripe` (any value; reduced mod stripes()) must be derived from the
  /// key deterministically — the service uses the job's queue shard, so a
  /// key always lands in the same stripe.
  bool lookup(std::size_t stripe, std::uint64_t key, Entry& out);
  /// Key-routed convenience (stripe = key % stripes()): the single-tenant
  /// call sites and tests that have no shard in hand.
  bool lookup(std::uint64_t key, Entry& out);

  /// Stores (or refreshes) `key` in `stripe`. An existing entry is only
  /// overwritten when `fitness` improves on it; either way the entry
  /// becomes most-recently-used. Evicts that stripe's least-recently-used
  /// entry when the stripe is full.
  void insert(std::size_t stripe, std::uint64_t key,
              std::span<const sched::MachineId> assignment, double fitness,
              SolvePolicy policy);
  void insert(std::uint64_t key, std::span<const sched::MachineId> assignment,
              double fitness, SolvePolicy policy);

  void clear();

  std::size_t size() const;
  /// Total capacity across stripes (stripes() * stripe capacity — at least
  /// the constructor argument, rounded up by the >= 1-per-stripe floor).
  std::size_t capacity() const noexcept;
  std::size_t stripes() const noexcept { return stripes_.size(); }
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  /// Per-stripe hit counts (the daemon's STATS shard_hits field).
  std::vector<std::uint64_t> stripe_hits() const;

 private:
  using LruList = std::list<std::pair<std::uint64_t, Entry>>;

  struct Stripe {
    mutable std::mutex mutex;
    LruList lru;  ///< front = most recently used
    std::unordered_map<std::uint64_t, LruList::iterator> index;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };

  std::vector<std::unique_ptr<Stripe>> stripes_;
  std::size_t stripe_capacity_;  ///< 0 disables the whole cache
};

}  // namespace pacga::service
