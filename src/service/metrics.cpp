#include "service/metrics.hpp"

namespace pacga::service {

void ServiceMetrics::on_complete(double queue_wait_seconds,
                                 double solve_seconds, bool cache_hit,
                                 bool deadline_missed) {
  completed_.fetch_add(1, std::memory_order_relaxed);
  if (cache_hit) cache_hits_.fetch_add(1, std::memory_order_relaxed);
  if (deadline_missed)
    deadline_misses_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  queue_wait_.add(queue_wait_seconds);
  solve_.add(solve_seconds);
}

ServiceMetrics::Snapshot ServiceMetrics::snapshot() const {
  Snapshot s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.reschedules = reschedules_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.deadline_misses = deadline_misses_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    s.queue_wait_seconds = queue_wait_;
    s.solve_seconds = solve_;
  }
  s.elapsed_seconds = clock_.elapsed_seconds();
  return s;
}

}  // namespace pacga::service
