#include "service/metrics.hpp"

#include <stdexcept>

namespace pacga::service {

ServiceMetrics::ServiceMetrics(std::size_t workers, bool histograms)
    : slots_(workers), histograms_(histograms) {
  if (workers == 0)
    throw std::invalid_argument("ServiceMetrics: workers must be >= 1");
}

void ServiceMetrics::OwnedStats::add(double x) noexcept {
  // Bit-for-bit the arithmetic of RunningStats::add, on relaxed snapshots
  // of this slot's own values (we are the only writer, so the loads see
  // exactly what we last stored). Store n last: a concurrent snapshot that
  // observes the new n also observes the new moments on any coherent
  // machine reading this exclusively-owned line.
  const std::uint64_t n0 = n.load(std::memory_order_relaxed);
  const double old_mean = mean.load(std::memory_order_relaxed);
  if (n0 == 0) {
    min.store(x, std::memory_order_relaxed);
    max.store(x, std::memory_order_relaxed);
  } else {
    const double lo = min.load(std::memory_order_relaxed);
    const double hi = max.load(std::memory_order_relaxed);
    if (x < lo) min.store(x, std::memory_order_relaxed);
    if (x > hi) max.store(x, std::memory_order_relaxed);
  }
  const double delta = x - old_mean;
  const double new_mean = old_mean + delta / static_cast<double>(n0 + 1);
  mean.store(new_mean, std::memory_order_relaxed);
  m2.store(m2.load(std::memory_order_relaxed) + delta * (x - new_mean),
           std::memory_order_relaxed);
  n.store(n0 + 1, std::memory_order_relaxed);
}

support::RunningStats ServiceMetrics::OwnedStats::materialize()
    const noexcept {
  return support::RunningStats::from_moments(
      static_cast<std::size_t>(n.load(std::memory_order_relaxed)),
      mean.load(std::memory_order_relaxed),
      m2.load(std::memory_order_relaxed),
      min.load(std::memory_order_relaxed),
      max.load(std::memory_order_relaxed));
}

void ServiceMetrics::on_complete(std::size_t worker,
                                 double queue_wait_seconds,
                                 double solve_seconds, bool cache_hit,
                                 bool deadline_missed,
                                 double e2e_seconds) noexcept {
  WorkerSlot& s = *slots_[worker % slots_.size()];
  s.completed.fetch_add(1, std::memory_order_relaxed);
  if (cache_hit) s.cache_hits.fetch_add(1, std::memory_order_relaxed);
  if (deadline_missed)
    s.deadline_misses.fetch_add(1, std::memory_order_relaxed);
  s.queue_wait.add(queue_wait_seconds);
  s.solve.add(solve_seconds);
  if (histograms_) {
    s.wait_hist.record_seconds(queue_wait_seconds);
    s.solve_hist.record_seconds(solve_seconds);
    s.e2e_hist.record_seconds(e2e_seconds < 0.0
                                  ? queue_wait_seconds + solve_seconds
                                  : e2e_seconds);
  }
}

void ServiceMetrics::on_fail(std::size_t worker) noexcept {
  slots_[worker % slots_.size()]->failed.fetch_add(1,
                                                   std::memory_order_relaxed);
}

void ServiceMetrics::add_arena_builds(std::size_t worker,
                                      std::uint64_t n) noexcept {
  slots_[worker % slots_.size()]->arena_builds.fetch_add(
      n, std::memory_order_relaxed);
}

ServiceMetrics::Snapshot ServiceMetrics::snapshot() const {
  Snapshot s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.reschedules = reschedules_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.quarantined = quarantined_.load(std::memory_order_relaxed);
  s.stalled = stalled_.load(std::memory_order_relaxed);
  s.worker_restarts = worker_restarts_.load(std::memory_order_relaxed);
  s.failed = failed_external_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.worker_completed.reserve(slots_.size());
  // Merge in worker order (slot 0 first): repeated snapshots of a quiesced
  // service are bit-identical, and the equivalence test can reproduce the
  // exact merged moments from the per-worker sequences.
  for (const auto& padded : slots_) {
    const WorkerSlot& w = *padded;
    const std::uint64_t done = w.completed.load(std::memory_order_relaxed);
    s.completed += done;
    s.worker_completed.push_back(done);
    s.failed += w.failed.load(std::memory_order_relaxed);
    s.cache_hits += w.cache_hits.load(std::memory_order_relaxed);
    s.deadline_misses += w.deadline_misses.load(std::memory_order_relaxed);
    s.arena_builds += w.arena_builds.load(std::memory_order_relaxed);
    s.queue_wait_seconds.merge(w.queue_wait.materialize());
    s.solve_seconds.merge(w.solve.materialize());
    if (histograms_) {
      s.queue_wait_hist.merge(w.wait_hist.snapshot());
      s.solve_hist.merge(w.solve_hist.snapshot());
      s.e2e_hist.merge(w.e2e_hist.snapshot());
    }
  }
  s.elapsed_seconds = clock_.elapsed_seconds();
  return s;
}

double ServiceMetrics::approx_solve_p50_ms() const {
  // A pressure hint, not an SLO figure: merge-once per rejection is fine
  // because rejections are the rare path by construction.
  if (histograms_) {
    obs::HistogramSnapshot hist;
    for (const auto& padded : slots_) hist.merge(padded->solve_hist.snapshot());
    const double p50 = hist.quantile_ms(0.50);
    if (p50 == p50 && p50 > 0.0) return p50;  // finite and positive
  }
  support::RunningStats solve;
  for (const auto& padded : slots_) solve.merge(padded->solve.materialize());
  const double mean_ms = solve.mean() * 1e3;
  return (mean_ms == mean_ms && mean_ms > 0.0) ? mean_ms : 1.0;
}

}  // namespace pacga::service
