#include "service/supervisor.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "service/metrics.hpp"
#include "support/log.hpp"

namespace pacga::service {

Supervisor::Supervisor(SupervisorOptions options, std::size_t workers,
                       ServiceMetrics& metrics, RequeueFn requeue,
                       RespawnFn respawn, TerminalFn terminal)
    : options_(options),
      metrics_(metrics),
      requeue_(std::move(requeue)),
      respawn_(std::move(respawn)),
      terminal_(std::move(terminal)),
      slots_(workers) {}

Supervisor::~Supervisor() { stop(); }

void Supervisor::start() {
  std::lock_guard<std::mutex> lock(run_mutex_);
  if (timer_.joinable() || stopping_) return;
  timer_ = std::thread([this] { run(); });
}

void Supervisor::stop() {
  std::thread timer;
  {
    std::lock_guard<std::mutex> lock(run_mutex_);
    stopping_ = true;
    timer = std::move(timer_);
  }
  run_cv_.notify_all();
  if (timer.joinable()) timer.join();
  // Close the retry intake under ITS mutex before the final flush: a
  // worker racing stop() either lands its push before the close (the
  // flush below drains it) or observes the close, gets false back, and
  // fails the job terminally itself. Checking stopping_ alone (a
  // different mutex) left a window where a push could land AFTER the
  // final flush and never be drained — the job's waiters would hang
  // forever.
  {
    std::lock_guard<std::mutex> lock(retry_mutex_);
    retries_closed_ = true;
  }
  // Any retry still pending can never be served: its backoff outlived the
  // pool. Fail each with the reason of its last attempt.
  flush_retries(Clock::now(), /*abandon=*/true);
}

std::uint64_t Supervisor::generation(std::size_t worker) const {
  const Slot& slot = slots_[worker % slots_.size()];
  std::lock_guard<std::mutex> lock(slot.mutex);
  return slot.generation;
}

bool Supervisor::superseded(std::size_t worker, std::uint64_t gen) const {
  const Slot& slot = slots_[worker % slots_.size()];
  std::lock_guard<std::mutex> lock(slot.mutex);
  return slot.generation != gen;
}

void Supervisor::begin_serve(std::size_t worker, std::uint64_t gen,
                             JobTicket job) {
  Slot& slot = slots_[worker % slots_.size()];
  std::lock_guard<std::mutex> lock(slot.mutex);
  if (slot.generation != gen) return;  // stale thread: leave the slot alone
  slot.job = std::move(job);
  slot.since = Clock::now();
}

void Supervisor::end_serve(std::size_t worker, std::uint64_t gen) {
  Slot& slot = slots_[worker % slots_.size()];
  std::lock_guard<std::mutex> lock(slot.mutex);
  if (slot.generation != gen) return;
  slot.job.reset();
}

bool Supervisor::schedule_retry(JobTicket job) {
  const double delay = backoff_ms(job->attempts);
  const auto due =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double, std::milli>(delay));
  {
    // The shutdown check and the push are one critical section: stop()
    // closes the intake under the same mutex before its final flush, so
    // a push either lands where that flush can see it or fails here.
    std::lock_guard<std::mutex> lock(retry_mutex_);
    if (retries_closed_) return false;
    retries_.push_back(PendingRetry{due, std::move(job)});
  }
  run_cv_.notify_all();  // the timer may need to wake sooner than its tick
  return true;
}

double Supervisor::backoff_ms(std::uint32_t attempt) const noexcept {
  if (attempt == 0) return 0.0;
  const double exp =
      options_.retry_base_ms * std::ldexp(1.0, static_cast<int>(
                                                   std::min<std::uint32_t>(
                                                       attempt - 1, 62)));
  return std::min(options_.retry_cap_ms, exp);
}

void Supervisor::run() {
  std::unique_lock<std::mutex> lock(run_mutex_);
  const auto tick = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(
          std::max(1.0, options_.poll_ms)));
  while (!stopping_) {
    // Wake at the next tick, or earlier if a pending retry is due sooner.
    auto deadline = Clock::now() + tick;
    {
      std::lock_guard<std::mutex> rlock(retry_mutex_);
      for (const PendingRetry& r : retries_)
        deadline = std::min(deadline, r.due);
    }
    run_cv_.wait_until(lock, deadline);
    if (stopping_) break;
    lock.unlock();
    const auto now = Clock::now();
    flush_retries(now, /*abandon=*/false);
    if (options_.watchdog) check_stalls(now);
    lock.lock();
  }
}

void Supervisor::flush_retries(Clock::time_point now, bool abandon) {
  std::vector<JobTicket> due;
  {
    std::lock_guard<std::mutex> lock(retry_mutex_);
    auto split = std::stable_partition(
        retries_.begin(), retries_.end(), [&](const PendingRetry& r) {
          return !abandon && r.due > now;
        });
    due.reserve(static_cast<std::size_t>(retries_.end() - split));
    for (auto it = split; it != retries_.end(); ++it)
      due.push_back(std::move(it->job));
    retries_.erase(split, retries_.end());
  }
  for (JobTicket& job : due) {
    // Finished while waiting out its backoff (defense in depth — the
    // retry claim should make this unreachable): drop the ticket.
    // Re-queueing a finished job would make the innocent worker that
    // pops it lose a commit it is entitled to win.
    if (job->is_finished()) continue;
    if (abandon) {
      fail_job(job, job->last_error.empty() ? "failed" : nullptr, -1,
               /*stalled=*/false);
      continue;
    }
    // The next serve attempt must again be subject to the watchdog's
    // stall verdict; the claim protected only the handoff window.
    job->release_retry_claim();
    const int admitted = requeue_(job);
    if (admitted == 0) continue;
    if (admitted > 0) {
      // Shard full: not a terminal condition, try again next tick.
      std::lock_guard<std::mutex> lock(retry_mutex_);
      retries_.push_back(PendingRetry{
          now + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double, std::milli>(
                        std::max(1.0, options_.poll_ms))),
          std::move(job)});
      continue;
    }
    fail_job(job, job->last_error.empty() ? "failed" : nullptr, -1,
             /*stalled=*/false);
  }
}

void Supervisor::check_stalls(Clock::time_point now) {
  for (std::size_t w = 0; w < slots_.size(); ++w) {
    Slot& slot = slots_[w];
    JobTicket job;
    {
      std::unique_lock<std::mutex> lock(slot.mutex);
      if (!slot.job) continue;
      const double deadline_ms = slot.job->spec.deadline_ms;
      const double stall_ms =
          std::max(options_.min_stall_ms, options_.stall_factor * deadline_ms);
      const double in_serve_ms =
          std::chrono::duration<double, std::milli>(now - slot.since).count();
      if (in_serve_ms <= stall_ms) continue;

      job = slot.job;
      // Stop the solver if it is still polling, then race it for the
      // terminal commit. Losing the race proves the worker is alive and
      // just slow — in that case nothing happens (no restart, no metric):
      // the worker keeps sole ownership of its slot and its job.
      job->cancel.store(true, std::memory_order_relaxed);
      lock.unlock();
      if (!fail_job(job, "stalled", static_cast<std::int32_t>(w),
                    /*stalled=*/true))
        continue;
      lock.lock();
      // Commit won: the worker is provably stuck inside serve. Supersede
      // its generation (its slot writes become no-ops, and it will exit
      // when its own commit fails) and hand the slot to a replacement.
      slot.generation += 1;
      slot.job.reset();
    }
    restarts_.fetch_add(1, std::memory_order_relaxed);
    metrics_.on_worker_restart();
    support::log_warn() << "supervisor: worker " << w
                        << " stalled on job " << job->id
                        << ", respawning";
    respawn_(w);
  }
}

bool Supervisor::fail_job(const JobTicket& job, const char* reason,
                          std::int32_t worker, bool stalled) {
  JobResult r;
  r.id = job->id;
  r.status = JobStatus::kFailed;
  r.worker = worker;
  const bool won = job->try_finish_if(
      // A held retry claim proves the serving worker is alive and past
      // its solve: a stalled verdict would be wrong (and would respawn a
      // second thread onto a worker index that still has a live owner),
      // so it is refused. Non-stalled commits (shutdown abandon, closed
      // queue) are not gated — a claimed job parked in the retry list
      // must still be failable.
      [&] { return !stalled || !job->retry_claimed; },
      std::move(r),
      [&] {
        // Under the job mutex, after the win is decided. attempts and
        // last_error are read HERE, not when `r` was built: the serving
        // worker writes them only while it holds the retry claim, which
        // this commit's precondition just saw down — so the reads cannot
        // race. Metrics pre-publish: a waiter that wakes on this failure
        // must already see it counted in the snapshot.
        r.error = reason != nullptr ? reason : job->last_error;
        r.retries = job->attempts;
        if (stalled)
          metrics_.on_stall();
        else
          metrics_.on_fail_external();
      });
  if (!won) return false;
  if (terminal_) terminal_(job);
  return true;
}

}  // namespace pacga::service
