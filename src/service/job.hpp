// Job model of the scheduler service (see service.hpp for the facade).
//
// A JobSpec is everything a tenant supplies: the instance (an ETC matrix,
// typically built once and shared via shared_ptr across retries/campaign
// jobs), a priority, a per-job seed, and a wall-clock deadline measured
// from submission. A JobResult is everything the service returns: the
// assignment, its fitness, and the bookkeeping a broker needs (queue wait,
// solve time, cache/deadline/policy provenance).
//
// JobState is the internal shared handle threaded through queue, pool, and
// facade: one allocation per job, reference-counted, with the result
// protected by its own mutex/cv so waiters never contend with the service
// registry.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "etc/etc_matrix.hpp"
#include "sched/schedule.hpp"

namespace pacga::service {

using JobId = std::uint64_t;

/// Which solver answers a job. kAuto escalates by budget and size:
/// Min-min/Sufferage for tiny-or-urgent jobs, the warm sequential CGA for
/// real budgets, PA-CGA for large instances with generous budgets.
enum class SolvePolicy {
  kAuto,
  kMinMin,     ///< Min-min constructive heuristic only
  kSufferage,  ///< Sufferage constructive heuristic only
  kCga,        ///< warm sequential cellular GA (arena-backed)
  kPaCga,      ///< parallel PA-CGA engine (cold start, own threads)
  /// Result provenance only (never requested): the job's warm-start seed
  /// was already better than anything the solver found in its budget —
  /// the zero-budget reschedule path returns the repaired schedule as-is.
  kWarmStart,
};

const char* to_string(SolvePolicy p) noexcept;

/// Parses the daemon/bench spelling ("auto", "minmin", "sufferage", "cga",
/// "pacga"); throws std::invalid_argument on anything else.
SolvePolicy parse_policy(const std::string& s);

enum class JobStatus {
  kPending,    ///< queued, not yet picked up
  kRunning,    ///< a worker is solving it
  kDone,       ///< solved (possibly past its deadline — see deadline_missed)
  kCancelled,  ///< cancelled before or while running
  kFailed,     ///< the solver threw; the job has no result (see worker log)
};

const char* to_string(JobStatus s) noexcept;

/// One solve request.
struct JobSpec {
  /// The instance. Shared so sweep campaigns can submit the same matrix
  /// many times without copies; must be non-null and outlives the job.
  std::shared_ptr<const etc::EtcMatrix> etc;
  /// Higher priority pops first among queued jobs (FIFO within a level).
  int priority = 0;
  /// Per-job RNG seed: same JobSpec (with a generation budget) => same
  /// schedule, regardless of which worker serves it.
  std::uint64_t seed = 1;
  /// Wall-clock deadline in milliseconds from submission. The solver gets
  /// whatever remains after queueing and stops within one generation of it
  /// (anytime behavior); must be positive and finite.
  double deadline_ms = 100.0;
  SolvePolicy policy = SolvePolicy::kAuto;
  /// Cap on CGA generations (0 = none). Set it to make results timing-
  /// independent — the determinism the service tests rely on.
  std::uint64_t max_generations = 0;
  /// Look up / store this instance in the solution cache. Disable for
  /// jobs that want a fresh stochastic solve per seed.
  bool use_cache = true;
  /// How many times a transiently-failed job (solver threw) is re-queued
  /// before it is quarantined. 0 keeps the historical semantics: the
  /// first failure is terminal. A job that fails max_retries + 1 times
  /// is terminally failed with error "quarantined" and never retried
  /// again, so one poisonous instance cannot crash-loop a worker.
  /// Retried jobs re-enter their home shard with their original
  /// priority after a capped exponential backoff (see SupervisorOptions).
  std::uint32_t max_retries = 0;
  /// Optional warm start (the dynamic rescheduling path): a feasible
  /// assignment for `etc` — typically a repaired schedule — seeded into
  /// the CGA population, and returned verbatim if the solver cannot beat
  /// it in the budget (the result is never worse than the seed). Must be
  /// empty or exactly etc->tasks() in-range machine ids. A warm-started
  /// job skips the solution-cache LOOKUP (a stale cached answer must not
  /// short-circuit re-optimization) but still refreshes the cache with
  /// its result.
  std::vector<sched::MachineId> warm_start;
};

/// One solve answer.
struct JobResult {
  JobId id = 0;
  JobStatus status = JobStatus::kPending;
  std::vector<sched::MachineId> assignment;  ///< empty when cancelled unrun
  double makespan = 0.0;  ///< fitness under the service objective
  SolvePolicy policy_used = SolvePolicy::kAuto;
  bool cache_hit = false;
  bool warm_started = false;  ///< the solve was seeded with spec.warm_start
  bool deadline_missed = false;  ///< finished after the wall-clock deadline
  std::uint64_t generations = 0;
  std::uint64_t evaluations = 0;
  double queue_wait_seconds = 0.0;
  double solve_seconds = 0.0;
  /// Index of the pool worker that served the job; -1 when no worker ever
  /// touched it (cancelled while still queued). Shape-affine sharding makes
  /// this observable: same-shape jobs gravitate to one worker, so its warm
  /// arena stays hot (tests and the mixed-shape bench read it).
  std::int32_t worker = -1;
  /// How many failed attempts preceded this result (0 = served first try).
  std::uint32_t retries = 0;
  /// Failure reason, set only when status == kFailed: "solver: <what()>"
  /// for a solver exception, "stalled" when the watchdog killed a stuck
  /// worker, "quarantined" when max_retries were exhausted. Empty on
  /// success so RESULT lines for successful jobs stay byte-identical to
  /// the pre-failpoint protocol (replay determinism).
  std::string error;
};

/// Internal shared job handle (queue entry + waiter rendezvous).
struct JobState {
  JobSpec spec;
  /// The job id, fixed at admission. Duplicated from result.id so the
  /// supervisor can name the job without touching the result, which is
  /// owned by whoever wins try_finish_with().
  JobId id = 0;
  std::chrono::steady_clock::time_point submitted{};
  std::chrono::steady_clock::time_point deadline{};

  /// Owning queue shard, assigned at admission from the instance shape.
  /// Cancellation routes straight to this shard instead of scanning every
  /// shard's heap (tag-at-submit, O(one shard) remove).
  std::uint32_t shard = 0;

  /// Raised by cancel(); polled by the solver once per generation.
  std::atomic<bool> cancel{false};

  /// Failed serve attempts so far. Written by the serving worker, read by
  /// the supervisor's retry timer; the retry handoff (schedule_retry ->
  /// requeue) orders the accesses, so no atomics are needed.
  std::uint32_t attempts = 0;
  /// Reason of the most recent failed attempt (same ordering argument).
  /// Used when a pending retry must be abandoned at shutdown.
  std::string last_error;

  std::mutex mutex;
  std::condition_variable cv;
  bool finished = false;  ///< guarded by mutex
  /// Guarded by mutex. Set while the serving worker holds the retry
  /// handoff for its latest failed attempt (try_claim_retry ->
  /// Supervisor::schedule_retry), cleared by the retry timer just before
  /// re-queueing. A held claim proves the worker is alive and already
  /// past its solve, so the watchdog's "stalled" commit is refused while
  /// it is up (see Supervisor::fail_job) — without it, a worker whose
  /// solve threw near the stall threshold could be superseded WITHOUT
  /// ever learning it lost (the retry path commits nothing), leaving two
  /// live threads on one worker index and a finished job in the retry
  /// list.
  bool retry_claimed = false;
  JobResult result;  ///< stable once finished is true

  /// Publishes `r` as the final result and wakes every waiter — unless
  /// someone else finished the job first, in which case `r` is dropped
  /// and false is returned. Two finishers can race by design: the serving
  /// worker and the watchdog that declared it stalled. Whoever wins owns
  /// the terminal accounting (metrics, completion hook); the loser must
  /// do none of it.
  ///
  /// `before_publish` runs under the job mutex, after the win is decided
  /// but before the result becomes visible: metric/trace accounting done
  /// there is guaranteed to be observable by the time any waiter wakes
  /// (a client that wait()s a job and then reads a metrics snapshot must
  /// see its completion counted). Keep it cheap and lock-free — it holds
  /// the mutex every waiter blocks on, and `r` is still intact inside it
  /// (the move into job.result happens after it returns).
  template <typename Fn>
  bool try_finish_with(JobResult&& r, Fn&& before_publish) {
    return try_finish_if([] { return true; }, std::move(r),
                         std::forward<Fn>(before_publish));
  }

  bool try_finish_with(JobResult&& r) {
    return try_finish_with(std::move(r), [] {});
  }

  /// try_finish_with, additionally gated on `precondition()` — evaluated
  /// under the job mutex, atomically with the finish decision. The commit
  /// happens only when the job is unfinished AND the precondition holds.
  /// Used by the watchdog's stalled path, which must not finish a job
  /// whose worker already claimed the retry handoff.
  template <typename Pre, typename Fn>
  bool try_finish_if(Pre&& precondition, JobResult&& r, Fn&& before_publish) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (finished || !precondition()) return false;
      before_publish();
      result = std::move(r);
      finished = true;
    }
    cv.notify_all();
    return true;
  }

  /// Claims the retry handoff for the serving worker; part of the same
  /// ownership race as try_finish_with. Fails when the job is already
  /// finished — the watchdog won the stall race (and respawned a
  /// replacement onto this worker's index), so the caller lost ownership
  /// exactly as if its own commit had failed and must touch neither its
  /// metrics slot nor its tracer ring again. After a successful claim
  /// the watchdog can no longer finish the job as stalled, so the
  /// claimant's subsequent attempts/last_error writes cannot race the
  /// supervisor's reads (which happen under the mutex, gated on the
  /// claim being down). The claim survives until release_retry_claim()
  /// or until the job is finished (a finished job's claim is moot).
  bool try_claim_retry() {
    std::lock_guard<std::mutex> lock(mutex);
    if (finished) return false;
    retry_claimed = true;
    return true;
  }

  /// Drops the retry claim (the retry timer, just before re-queueing:
  /// the NEXT serve attempt must again be subject to the watchdog).
  void release_retry_claim() {
    std::lock_guard<std::mutex> lock(mutex);
    retry_claimed = false;
  }

  /// Snapshot of the terminal flag. The retry timer uses it to drop
  /// tickets finished while waiting out their backoff: re-queueing a
  /// finished job would make the innocent worker that picks it up lose
  /// a commit it is entitled to win.
  bool is_finished() {
    std::lock_guard<std::mutex> lock(mutex);
    return finished;
  }

  /// Blocks until the job is finished; returns a copy of the result.
  JobResult await() {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [this] { return finished; });
    return result;
  }
};

using JobTicket = std::shared_ptr<JobState>;

}  // namespace pacga::service
