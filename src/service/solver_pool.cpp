#include "service/solver_pool.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <stdexcept>

#include "heuristics/minmin.hpp"
#include "heuristics/sufferage.hpp"
#include "pacga/parallel_engine.hpp"
#include "sched/fitness.hpp"
#include "support/failpoints.hpp"
#include "support/log.hpp"
#include "support/timer.hpp"

namespace pacga::service {

namespace {

double seconds_between(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

void fill_result_from(JobResult& out, const cga::Individual& best) {
  const auto a = best.schedule.assignment();
  out.assignment.assign(a.begin(), a.end());
  out.makespan = best.fitness;
}

}  // namespace

WarmSolver::WarmSolver(cga::Config base) : base_(std::move(base)) {
  base_.collect_trace = false;  // tracing would allocate per generation
  base_.validate();
  arena_config_ = base_;
}

SolvePolicy WarmSolver::decide(const JobSpec& spec, const etc::EtcMatrix& etc,
                               double budget_seconds) const noexcept {
  if (spec.policy != SolvePolicy::kAuto) return spec.policy;
  if (budget_seconds < kHeuristicBudgetSeconds ||
      etc.tasks() <= kHeuristicMaxTasks) {
    return SolvePolicy::kMinMin;  // resolved to the better of the two below
  }
  if (budget_seconds >= kParallelBudgetSeconds &&
      etc.tasks() >= kParallelMinTasks && base_.threads > 1) {
    return SolvePolicy::kPaCga;
  }
  return SolvePolicy::kCga;
}

void WarmSolver::ensure_shape(const etc::EtcMatrix& etc,
                              obs::WorkerTracer* tracer,
                              std::uint64_t job_id) {
  if (population_ && tasks_ == etc.tasks() && machines_ == etc.machines())
    return;
  const std::uint64_t t0 =
      tracer && tracer->enabled() ? tracer->now_ns() : 0;
  tasks_ = etc.tasks();
  machines_ = etc.machines();
  ++arena_builds_;

  // Shrink the grid for small instances (same rationale as the batch
  // pa_cga_policy: a 16x16 population on a 3-task batch is pure overhead).
  // min-of-max, not std::clamp: a base grid below 16 cells would violate
  // clamp's lo <= hi precondition. Jobs big enough to want the whole
  // population keep the base grid EXACTLY (square or not); only genuinely
  // small instances get the square shrunk arena.
  arena_config_ = base_;
  const std::size_t base_pop = base_.population_size();
  const std::size_t target_pop =
      std::min(base_pop, std::max<std::size_t>(16, 4 * etc.tasks()));
  if (target_pop < base_pop) {
    std::size_t side = 4;
    while ((side + 1) * (side + 1) <= target_pop) ++side;
    arena_config_.width = side;
    arena_config_.height = side;
  }

  // Cold build of the arena for this shape. The RNG state used here is
  // irrelevant: solve() reseeds both the generator and the population
  // before any of this state is read, so warm and cold paths produce
  // identical trajectories for the same (etc, spec).
  cga::Grid grid(arena_config_.width, arena_config_.height);
  population_.emplace(etc, grid, rng_, /*seed_min_min=*/false,
                      arena_config_.objective, arena_config_.lambda);
  breeder_.emplace(etc, arena_config_);
  order_.emplace(arena_config_.sweep, population_->size(), rng_);
  scratch_.emplace(sched::Schedule(etc), 0.0);
  tracker_.emplace(population_->at(0));
  if (tracer && tracer->enabled()) {
    tracer->span(obs::SpanKind::kArenaBuild, job_id, t0, tracer->now_ns(),
                 tasks_, machines_);
  }
}

void WarmSolver::solve_heuristic(const etc::EtcMatrix& etc, SolvePolicy policy,
                                 JobResult& out) {
  const auto score = [&](const sched::Schedule& s) {
    return sched::evaluate(s, base_.objective, base_.lambda);
  };
  if (policy == SolvePolicy::kSufferage) {
    const sched::Schedule s = heur::sufferage(etc);
    const auto a = s.assignment();
    out.assignment.assign(a.begin(), a.end());
    out.makespan = score(s);
    out.policy_used = SolvePolicy::kSufferage;
    return;
  }
  // kMinMin explicit, or the kAuto tiny-or-urgent escalation: Min-min with
  // a Sufferage second opinion costs microseconds at this scale and wins
  // on the inconsistent classes.
  const sched::Schedule mm = heur::min_min(etc);
  const double mm_fit = score(mm);
  if (policy == SolvePolicy::kMinMin) {
    const auto a = mm.assignment();
    out.assignment.assign(a.begin(), a.end());
    out.makespan = mm_fit;
    out.policy_used = SolvePolicy::kMinMin;
    return;
  }
  const sched::Schedule sf = heur::sufferage(etc);
  const double sf_fit = score(sf);
  const sched::Schedule& winner = sf_fit < mm_fit ? sf : mm;
  const auto a = winner.assignment();
  out.assignment.assign(a.begin(), a.end());
  out.makespan = std::min(mm_fit, sf_fit);
  out.policy_used =
      sf_fit < mm_fit ? SolvePolicy::kSufferage : SolvePolicy::kMinMin;
}

void WarmSolver::solve_cga(const etc::EtcMatrix& etc, const JobSpec& spec,
                           double budget_seconds,
                           const std::atomic<bool>* cancel, JobResult& out,
                           const cga::GenerationObserver& observer,
                           obs::WorkerTracer* tracer, std::uint64_t job_id) {
  ensure_shape(etc, tracer, job_id);
  cga::Population& pop = *population_;
  // Tracing stays on this branchy flag — never wrapped into `observer`,
  // which would heap-allocate a std::function per job.
  const bool tracing = tracer && tracer->enabled();
  const std::uint64_t cga_start = tracing ? tracer->now_ns() : 0;

  // Per-job determinism: generator, population, and sweep order are all a
  // pure function of (etc, spec.seed) from here on.
  rng_.reseed(spec.seed);
  pop.reseed(etc, rng_, base_.seed_min_min, arena_config_.objective,
             arena_config_.lambda);
  if (!spec.warm_start.empty()) {
    // Dynamic rescheduling: the repaired schedule becomes one individual
    // (cga::warm_seed_cell — the cell after the optional Min-min seed, so
    // both survive) and the anytime loop can only improve on it. seed_cell
    // adopts into existing storage — the warm arena stays allocation-free.
    const std::size_t cell = cga::warm_seed_cell(base_.seed_min_min,
                                                 pop.size());
    pop.seed_cell(cell, etc, spec.warm_start, arena_config_.objective,
                  arena_config_.lambda);
    out.warm_started = true;
  }
  order_->reset(rng_);
  tracker_->reset(pop.at(pop.best_index()));

  cga::Termination limits;  // defaults: never — the service is deadline-driven
  limits.wall_seconds = budget_seconds;
  if (spec.max_generations > 0) limits.max_generations = spec.max_generations;
  cga::TerminationController termination(limits);
  termination.bind_stop_flag(cancel);

  std::uint64_t evaluations = 0;
  std::uint64_t generations = 0;
  cga::run_sweep_loop(
      *order_, rng_,
      [&](std::size_t idx) {  // one breeding step (asynchronous replacement)
        breeder_->breed_into(pop, idx, rng_, *scratch_);
        ++evaluations;
        tracker_->observe(*scratch_);
        if (cga::detail::should_replace(arena_config_.replacement,
                                        scratch_->fitness,
                                        pop.at(idx).fitness)) {
          cga::Breeder::replace(pop.at(idx), *scratch_);
        }
        return false;
      },
      [&] {  // end of sweep: the anytime checkpoint
        ++generations;
        if (tracing && cga::sampled_generation(generations)) {
          tracer->instant(obs::SpanKind::kGeneration, job_id, generations,
                          std::bit_cast<std::uint64_t>(tracker_->fitness()));
        }
        if (observer) {
          observer({generations, evaluations, termination.elapsed_seconds(),
                    tracker_->fitness(), pop});
        }
        return termination.sweep_done(generations, evaluations);
      });

  fill_result_from(out, tracker_->best());
  out.generations = generations;
  out.evaluations = evaluations;
  out.policy_used = SolvePolicy::kCga;
  if (tracing) {
    tracer->span(obs::SpanKind::kWarmCga, job_id, cga_start, tracer->now_ns(),
                 generations);
  }
}

void WarmSolver::solve_parallel(const etc::EtcMatrix& etc, const JobSpec& spec,
                                double budget_seconds,
                                const std::atomic<bool>* cancel,
                                JobResult& out) {
  cga::Config config = base_;
  config.seed = spec.seed;
  // Floor the budget: an explicit-kPaCga job popped past its deadline
  // arrives with 0, which Config::validate rejects.
  config.termination = cga::Termination::after_seconds(
      std::max(budget_seconds, kHeuristicBudgetSeconds));
  if (spec.max_generations > 0)
    config.termination.max_generations = spec.max_generations;
  if (!spec.warm_start.empty()) {
    // The repaired schedule rides into the engine's initial population
    // (cga::apply_warm_seed), so the PA-CGA re-optimizes FROM the seed and
    // the result is never worse than it by construction — the clamp in
    // solve() stays as a safety net only.
    config.warm_seed = spec.warm_start;
    out.warm_started = true;
  }
  const par::ParallelResult r = par::run_parallel(etc, config, {}, cancel);
  const auto a = r.result.best.assignment();
  out.assignment.assign(a.begin(), a.end());
  out.makespan = r.result.best_fitness;
  out.generations = r.result.generations;
  out.evaluations = r.result.evaluations;
  out.policy_used = SolvePolicy::kPaCga;
}

void WarmSolver::solve(const etc::EtcMatrix& etc, const JobSpec& spec,
                       double budget_seconds, const std::atomic<bool>* cancel,
                       JobResult& out, const cga::GenerationObserver& observer,
                       obs::WorkerTracer* tracer, std::uint64_t job_id) {
  PACGA_FAILPOINT("solver.solve");
  out.cache_hit = false;
  out.warm_started = false;
  out.generations = 0;
  out.evaluations = 0;
  const bool tracing = tracer && tracer->enabled();
  switch (decide(spec, etc, budget_seconds)) {
    case SolvePolicy::kAuto:  // unreachable: decide() never returns kAuto
    case SolvePolicy::kMinMin:
    case SolvePolicy::kSufferage: {
      // spec.policy distinguishes the explicit heuristics from the kAuto
      // escalation (which runs both and keeps the winner).
      const std::uint64_t t0 = tracing ? tracer->now_ns() : 0;
      solve_heuristic(etc, spec.policy, out);
      if (tracing)
        tracer->span(obs::SpanKind::kHeuristic, job_id, t0, tracer->now_ns());
      break;
    }
    case SolvePolicy::kCga:
      solve_cga(etc, spec, budget_seconds, cancel, out, observer, tracer,
                job_id);
      break;
    case SolvePolicy::kWarmStart:  // unreachable: never requested
    case SolvePolicy::kPaCga: {
      const std::uint64_t t0 = tracing ? tracer->now_ns() : 0;
      solve_parallel(etc, spec, budget_seconds, cancel, out);
      if (tracing) {
        tracer->span(obs::SpanKind::kPaCga, job_id, t0, tracer->now_ns(),
                     out.generations);
      }
      break;
    }
  }
  if (!spec.warm_start.empty()) {
    // The reschedule contract: never answer worse than the seed. Both CGA
    // engines hold this by construction (the seed is in the initial
    // population — solve_cga via seed_cell, solve_parallel via
    // Config::warm_seed), so the explicit clamp is the final safety net
    // for the heuristic escalation of a budget-starved (expired-deadline)
    // reschedule only — the repaired schedule IS a valid anytime answer.
    const sched::Schedule seed(
        etc, {spec.warm_start.begin(), spec.warm_start.end()});
    const double seed_fitness =
        sched::evaluate(seed, base_.objective, base_.lambda);
    if (out.assignment.empty() || seed_fitness < out.makespan) {
      out.assignment = spec.warm_start;
      out.makespan = seed_fitness;
      out.policy_used = SolvePolicy::kWarmStart;
    }
    out.warm_started = true;
  }
}

// --- SolverPool ------------------------------------------------------------

SolverPool::SolverPool(ShardedJobQueue& queue, SolutionCache& cache,
                       ServiceMetrics& metrics, SolverPoolOptions options,
                       obs::TraceCollector* trace, CompletionHook on_terminal)
    : queue_(queue),
      cache_(cache),
      metrics_(metrics),
      options_(std::move(options)),
      trace_(trace),
      on_terminal_(std::move(on_terminal)) {
  if (options_.workers == 0)
    throw std::invalid_argument("SolverPool: workers must be >= 1");
  options_.solver.validate();
  supervisor_ = std::make_unique<Supervisor>(
      options_.supervision, options_.workers, metrics_,
      /*requeue=*/
      [this](const JobTicket& job) -> int {
        if (queue_.try_submit(job)) return 0;
        return queue_.closed() ? -1 : 1;
      },
      /*respawn=*/[this](std::size_t worker) { spawn_worker(worker); },
      /*terminal=*/
      [this](const JobTicket& job) {
        if (on_terminal_) on_terminal_(*job);
      });
  for (std::size_t w = 0; w < options_.workers; ++w) spawn_worker(w);
  supervisor_->start();
}

SolverPool::~SolverPool() { join(); }

void SolverPool::spawn_worker(std::size_t worker) {
  std::lock_guard<std::mutex> lock(threads_mutex_);
  if (joining_) return;  // shutting down: a replacement would leak
  const std::uint64_t generation = supervisor_->generation(worker);
  threads_.emplace_back(
      [this, worker, generation] { run_worker(worker, generation); });
}

void SolverPool::run_worker(std::size_t worker, std::uint64_t generation) {
  WarmSolver solver(options_.solver);
  obs::WorkerTracer tracer(trace_, worker);
  const std::size_t home = worker % queue_.shards();
  bool stolen = false;
  while (JobTicket job = queue_.pop(home, &stolen)) {
    supervisor_->begin_serve(worker, generation, job);
    serve(job, solver, worker, tracer, stolen);
    supervisor_->end_serve(worker, generation);
    // Exit iff the watchdog handed this slot to a replacement — the
    // authoritative signal, checked after EVERY serve. A lost commit
    // (kSuperseded) alone is not proof: a queued job can legitimately be
    // finished by someone else (e.g. a racing cancel), and exiting on it
    // would silently retire a healthy worker with no respawn. Conversely
    // a commit can never be lost at all on some superseded paths (the
    // retry handoff claims instead of finishing), so the generation is
    // the one signal that covers them all.
    if (supervisor_->superseded(worker, generation)) return;
  }
}

void SolverPool::join() {
  // Order matters: stop the supervisor first (no respawns or retries can
  // race the join), then let wedge-parked workers through so the closed
  // queue can drain, then join whatever threads exist — including any
  // replacements the watchdog spawned before it stopped.
  if (supervisor_) supervisor_->stop();
  support::ScopedWedgeSuspend wedge_release;
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(threads_mutex_);
    joining_ = true;
    threads.swap(threads_);
  }
  for (std::thread& t : threads) t.join();
}

std::uint64_t SolverPool::cache_key(const etc::EtcMatrix& etc,
                                    const cga::Config& solver,
                                    SolvePolicy policy) noexcept {
  std::uint64_t h = support::hash_mix(
      etc.fingerprint(), static_cast<std::uint64_t>(solver.objective) + 1);
  if (solver.objective == sched::Objective::kWeightedMakespanFlowtime) {
    h = support::hash_mix(h, static_cast<std::uint64_t>(solver.lambda * 1e9));
  }
  return support::hash_mix(h, static_cast<std::uint64_t>(policy) + 1);
}

SolverPool::ServeOutcome SolverPool::serve(const JobTicket& ticket,
                                           WarmSolver& solver,
                                           std::size_t worker,
                                           obs::WorkerTracer& tracer,
                                           bool stolen) {
  JobState& job = *ticket;
  const auto picked_up = std::chrono::steady_clock::now();
  // The result is built in a LOCAL and committed through try_finish_with:
  // the watchdog may concurrently publish a "stalled" result for this very
  // job, so job.result has no single writer until one of the two commits
  // wins. Everything after the commit is gated on winning it.
  JobResult out;
  out.id = job.id;
  out.retries = job.attempts;
  out.queue_wait_seconds = seconds_between(job.submitted, picked_up);
  out.worker = static_cast<std::int32_t>(worker);

  // Queue-phase span, emitted retroactively at pickup from the admission
  // timestamp: the submitting client thread never writes this worker's
  // ring, so the single-writer contract holds end to end.
  const bool tracing = tracer.enabled();
  const std::uint64_t pickup_ns = tracing ? tracer.now_ns() : 0;
  if (tracing) {
    tracer.span(obs::SpanKind::kQueueWait, out.id,
                tracer.to_ns(job.submitted), pickup_ns, job.shard,
                stolen ? 1 : 0);
  }

  if (job.cancel.load(std::memory_order_relaxed)) {
    out.status = JobStatus::kCancelled;
    const bool won = job.try_finish_with(std::move(out), [&] {
      if (tracing) tracer.instant(obs::SpanKind::kCancelled, job.id);
      metrics_.on_cancel();
    });
    if (!won) return ServeOutcome::kSuperseded;
    if (on_terminal_) on_terminal_(job);
    return ServeOutcome::kFinished;
  }

  out.status = JobStatus::kRunning;
  const etc::EtcMatrix& etc = *job.spec.etc;
  const std::uint64_t key = cache_key(etc, options_.solver, job.spec.policy);
  support::WallTimer solve_timer;

  SolutionCache::Entry cached;
  // A warm-started job is a re-optimization request: its seed is fresher
  // than anything cached for this fingerprint, so the lookup is skipped
  // (the result still refreshes the cache below).
  // Stripe the cache by the job's queue shard: the pinned worker keeps
  // taking one stripe's lock, and a key is always sought where it was
  // stored (the shard is a pure function of the shape, the key of the
  // fingerprint — one shape, one stripe).
  const std::size_t stripe = job.shard;
  const bool cache_lookup = job.spec.use_cache && job.spec.warm_start.empty();
  const std::uint64_t builds_before = solver.arena_builds();
  bool cache_hit = false;
  // One try block over lookup + solve + insert: any exception on the
  // serving path — the solver's own, or an armed cache failpoint — must
  // fail ONE job, not escape the worker thread (std::terminate would kill
  // the service and strand every waiter).
  try {
    if (cache_lookup) {
      const std::uint64_t probe_start = tracing ? tracer.now_ns() : 0;
      cache_hit = cache_.lookup(stripe, key, cached);
      if (tracing) {
        tracer.span(obs::SpanKind::kCacheProbe, out.id, probe_start,
                    tracer.now_ns(), 0, cache_hit ? 1 : 0);
      }
    }
    if (cache_hit) {
      out.assignment = std::move(cached.assignment);
      out.makespan = cached.fitness;
      out.cache_hit = true;
      out.generations = 0;
      out.evaluations = 0;
      out.policy_used = cached.policy;  // provenance: what PRODUCED it
      out.status = JobStatus::kDone;
    } else {
      // The solver gets whatever wall budget remains after queueing, minus
      // ~10% headroom: the anytime loop stops within one generation AFTER
      // its budget, so aiming at the raw deadline would miss it by
      // construction. A job popped past its deadline still gets a
      // floor-of-zero budget, which kAuto escalates to the heuristics
      // (serve late rather than never).
      const double remaining = std::max(
          0.0, seconds_between(picked_up, job.deadline));
      solver.solve(etc, job.spec, remaining * kDeadlineHeadroom, &job.cancel,
                   out, {}, &tracer, out.id);
      out.status = job.cancel.load(std::memory_order_relaxed)
                       ? JobStatus::kCancelled
                       : JobStatus::kDone;
      if (out.status == JobStatus::kDone && job.spec.use_cache &&
          !out.assignment.empty()) {
        // Don't let a budget-starved kAuto escalation poison the cache: its
        // heuristic answer would be served to every later budget-rich kAuto
        // job on this matrix, which would then never trigger the
        // keep-better refresh. Tiny instances escalate by SIZE, so their
        // heuristic answers are the steady state and cache fine.
        const bool budget_starved_heuristic =
            job.spec.policy == SolvePolicy::kAuto &&
            (out.policy_used == SolvePolicy::kMinMin ||
             out.policy_used == SolvePolicy::kSufferage ||
             out.policy_used == SolvePolicy::kWarmStart) &&
            etc.tasks() > kHeuristicMaxTasks;
        if (!budget_starved_heuristic) {
          cache_.insert(stripe, key, out.assignment, out.makespan,
                        out.policy_used);
        }
      }
    }
  } catch (const std::exception& e) {
    support::log_warn() << "SolverPool: job " << out.id
                        << " failed: " << e.what();
    out.status = JobStatus::kFailed;
    out.error = std::string("solver: ") + e.what();
  }
  const std::uint64_t built = solver.arena_builds() - builds_before;
  out.solve_seconds = solve_timer.elapsed_seconds();
  const auto finished_at = std::chrono::steady_clock::now();
  out.deadline_missed = finished_at > job.deadline;

  // Transient failure, not cancelled: hand the job to the supervisor's
  // backoff timer instead of finishing it. The ticket stays unfinished
  // (waiters keep waiting) and re-enters its home shard with its
  // original priority.
  bool quarantined = false;
  if (out.status == JobStatus::kFailed &&
      !job.cancel.load(std::memory_order_relaxed)) {
    // Enter the ownership race BEFORE touching any retry state: the
    // handoff commits nothing, so without a claim a worker superseded
    // right here (watchdog set cancel after our load above, then won the
    // stalled commit) would never learn it lost — it would keep looping
    // next to its own replacement and park the finished job in the retry
    // list. A failed claim means exactly a lost commit: exit without
    // touching the metrics slot or tracer ring. A won claim blocks the
    // watchdog's stalled commit until the retry is re-queued, which also
    // orders the attempts/last_error writes below against the
    // supervisor's under-mutex reads.
    if (!job.try_claim_retry()) return ServeOutcome::kSuperseded;
    job.attempts += 1;
    if (job.attempts <= job.spec.max_retries) {
      job.last_error = out.error;
      if (supervisor_->schedule_retry(ticket)) {
        metrics_.on_retry();
        if (built > 0) metrics_.add_arena_builds(worker, built);
        if (tracing) {
          tracer.span(obs::SpanKind::kServe, out.id, pickup_ns,
                      tracer.now_ns(), 0,
                      static_cast<std::uint64_t>(out.status));
          tracer.instant(obs::SpanKind::kFailed, out.id, job.attempts);
        }
        return ServeOutcome::kRetried;
      }
      // Supervisor already stopping (shutdown): fall through, terminal.
      // The claim stays up through our own commit below (which it does
      // not gate) and is moot once the job is finished.
    } else if (job.spec.max_retries > 0) {
      out.error = "quarantined";
      quarantined = true;
    }
  }

  // Accounting runs inside the commit, under the job mutex, BEFORE the
  // result becomes visible: a client that wait()s this job and then reads
  // a metrics snapshot must see the job counted. `out` is still intact
  // inside the callback (the move into job.result happens after it); a
  // LOST commit runs none of this and touches neither metrics nor tracer.
  const bool won = job.try_finish_with(std::move(out), [&] {
    if (built > 0) metrics_.add_arena_builds(worker, built);
    if (tracing) {
      tracer.span(obs::SpanKind::kServe, out.id, pickup_ns, tracer.now_ns(),
                  0, static_cast<std::uint64_t>(out.status));
      switch (out.status) {
        case JobStatus::kCancelled:
          tracer.instant(obs::SpanKind::kCancelled, out.id);
          break;
        case JobStatus::kFailed:
          tracer.instant(obs::SpanKind::kFailed, out.id);
          break;
        default:
          tracer.instant(obs::SpanKind::kCompleted, out.id, 0,
                         std::bit_cast<std::uint64_t>(out.makespan));
          break;
      }
    }
    switch (out.status) {
      case JobStatus::kCancelled:
        metrics_.on_cancel();
        break;
      case JobStatus::kFailed:
        metrics_.on_fail(worker);
        break;
      default:
        metrics_.on_complete(worker, out.queue_wait_seconds,
                             out.solve_seconds, out.cache_hit,
                             out.deadline_missed,
                             seconds_between(job.submitted, finished_at));
        break;
    }
    if (quarantined) metrics_.on_quarantine();
  });
  if (!won) return ServeOutcome::kSuperseded;
  if (on_terminal_) on_terminal_(job);
  return ServeOutcome::kFinished;
}

}  // namespace pacga::service
