// StreamingSession — epoch-batched arrivals served through the scheduler
// service, each epoch warm-seeded with the previous epoch's tail.
//
// batch::simulate answers "what does a policy do over a whole arrival
// trace?" but treats every epoch as an independent cold solve. The real
// broker the paper targets (§2.1) does better: between two epoch
// boundaries only a little changes — some tasks started (they are
// committed, their remainders become machine ready times), some new ones
// arrived — so the previous epoch's assignment is a near-feasible answer
// for the next batch. A StreamingSession runs that regime end to end:
//
//   per epoch:  gather arrivals  ->  batch ETC with the machines' CURRENT
//               ready times (make_batch_etc)  ->  warm start = previous
//               epoch's assignment for carried tasks + ready-time-aware
//               MCT completion for the gaps (sched::warm_seed)  ->
//               SchedulerService::submit_reschedule (never worse than the
//               seed)  ->  commit what starts inside the epoch, carry the
//               tail.
//
// The cold arm of the comparison (spec.warm = false) submits the same
// batches as independent uncached solves — bench_streaming measures what
// the warm seeding buys in makespan-at-equal-deadline and wall-clock.
//
// Single-threaded driver discipline like RescheduleSession: the session
// advances epoch by epoch from one thread; the solves themselves run on
// the service's workers. Deterministic given spec.max_generations (the
// same knob every service determinism test uses).
#pragma once

#include <cstdint>
#include <vector>

#include "batch/workload.hpp"
#include "sched/schedule.hpp"
#include "service/job.hpp"

namespace pacga::service {

class SchedulerService;

struct StreamingSpec {
  /// Arrival-timed scenario (tasks sorted by arrival; the batch module's
  /// hash noise keeps every task's execution profile stable across
  /// epochs). Validated on construction.
  batch::WorkloadSpec workload;
  double epoch_length = 1.0;
  int priority = 0;
  /// Per-epoch solve deadline handed to the service.
  double deadline_ms = 50.0;
  /// Base solve seed; epoch e solves with seed + e.
  std::uint64_t seed = 1;
  /// Per-epoch generation cap (0 = deadline-driven). Set it to make the
  /// whole stream a pure function of the spec — the replay/golden knob.
  std::uint64_t max_generations = 0;
  /// Solve policy for every epoch job (kAuto escalates by budget/size;
  /// the determinism tests pin kCga).
  SolvePolicy policy = SolvePolicy::kAuto;
  /// Safety valve against runaway epoch loops (0 = no limit).
  std::size_t max_epochs = 100000;
  /// true: warm-seed each epoch from the previous epoch's tail via
  /// submit_reschedule. false: independent cold solve per epoch (the
  /// baseline arm).
  bool warm = true;
};

/// What one epoch did.
struct EpochReport {
  std::size_t epoch = 0;
  double now = 0.0;
  std::size_t batch_tasks = 0;  ///< batch size handed to the solver
  std::size_t carried = 0;      ///< tail tasks carried from earlier epochs
  std::size_t arrivals = 0;     ///< tasks that arrived this epoch
  std::size_t committed = 0;    ///< tasks whose start fell inside the epoch
  bool solved = false;          ///< false for empty epochs (nothing pending)
  bool warm_started = false;    ///< the service solve took the warm seed
  double batch_makespan = 0.0;  ///< solver makespan for this epoch's batch
  double solve_seconds = 0.0;
  /// Pool worker that served the epoch solve (-1 for unsolved epochs). The
  /// stream's batches share one shape, so under shape-affine sharding the
  /// warm epochs keep landing on the worker that owns their arena — this
  /// field makes that observable (tests pin it).
  std::int32_t worker = -1;
};

/// Aggregate outcome of a finished stream (same quantities as
/// batch::SimMetrics, plus the serving costs).
struct StreamingMetrics {
  double completion_time = 0.0;  ///< when the last task finished
  double mean_wait = 0.0;        ///< mean (start - arrival)
  double mean_response = 0.0;    ///< mean (finish - arrival)
  double max_response = 0.0;
  double utilization = 0.0;      ///< busy time / (machines * completion)
  std::size_t epochs = 0;
  std::size_t solved_batches = 0;
  std::size_t warm_epochs = 0;      ///< solves that took the warm seed
  std::size_t committed_tasks = 0;  ///< == workload tasks once done
  std::size_t carried_tasks = 0;    ///< sum of per-epoch tails
  double solve_seconds = 0.0;       ///< total solver wall time
  /// Queue-wait / solve latency percentiles of the backing service at
  /// stream completion, in milliseconds (0 when its histograms are
  /// disabled or empty). Service-lifetime figures: a bench that wants
  /// clean per-arm numbers runs each arm against a fresh service.
  double wait_p50_ms = 0.0;
  double wait_p99_ms = 0.0;
  double solve_p50_ms = 0.0;
  double solve_p99_ms = 0.0;
};

class StreamingSession {
 public:
  /// Generates the workload and validates the spec. `service` must
  /// outlive the session.
  StreamingSession(SchedulerService& service, StreamingSpec spec);

  /// True once every task has arrived, been scheduled, and started.
  bool done() const noexcept;

  /// Advances one epoch: arrivals, (re)solve, commit. Throws
  /// std::logic_error when already done, std::runtime_error when the
  /// epoch limit is hit or an epoch solve fails.
  EpochReport step();

  /// Runs to completion and returns the final metrics.
  const StreamingMetrics& run();

  /// Metrics so far (final only after run() / once done()).
  const StreamingMetrics& metrics() const noexcept { return metrics_; }
  std::size_t epochs() const noexcept { return metrics_.epochs; }

 private:
  void finalize();

  SchedulerService& service_;
  StreamingSpec spec_;
  batch::Workload workload_;
  std::vector<std::size_t> machine_ids_;  ///< 0..M-1, the constant park
  std::vector<double> busy_until_;        ///< absolute time per machine
  std::vector<double> ready_;             ///< per-epoch scratch
  std::vector<double> task_start_;
  std::vector<double> task_finish_;
  /// Per original task: the machine the last solve put it on (sched::
  /// kNoMachine before its first solve) — the carried warm-start state.
  std::vector<sched::MachineId> last_machine_;
  std::vector<std::size_t> pending_;  ///< arrived, not yet started (sorted)
  std::size_t next_arrival_ = 0;
  double busy_time_ = 0.0;
  bool finalized_ = false;
  StreamingMetrics metrics_;
};

}  // namespace pacga::service
