// Self-healing supervision for the solver pool: a watchdog that detects
// wedged workers, and the retry timer that re-queues transiently-failed
// jobs with capped exponential backoff.
//
// Ownership protocol. Every job has exactly one terminal owner, decided
// by JobState::try_finish_with (first finisher wins). Two candidates can
// race: the serving worker, and the watchdog that declared that worker
// stalled. The watchdog only acts when ITS commit succeeds — which
// proves the worker was still inside solve() — and only then bumps the
// worker's generation and respawns a replacement onto the same home
// shard. The retry handoff participates in the same race without
// finishing anything: the worker claims the job under its mutex
// (JobState::try_claim_retry) before schedule_retry — a failed claim
// means the watchdog already won (the worker unwinds exactly as on a
// lost commit), and a held claim makes the watchdog refuse its stalled
// verdict (the worker is provably alive). A worker learns it was
// superseded from the generation check after each serve and exits
// without touching its metrics slot or tracer lane, so the per-worker
// single-writer discipline survives restarts: at any instant exactly one
// live thread owns worker index w.
//
// Heartbeats are passive: the worker publishes "serving job J since T"
// into its slot at pop/serve boundaries (begin_serve/end_serve), and the
// watchdog polls the slots. A worker is stalled when its current job has
// been in serve longer than max(min_stall_ms, stall_factor x deadline_ms)
// — a deadline-proportional contract, since a job with a generous budget
// legitimately solves for a long time.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "service/job.hpp"

namespace pacga::service {

class ServiceMetrics;

struct SupervisorOptions {
  /// Master switch for the stall watchdog (the retry timer always runs:
  /// it is what makes JobSpec::max_retries > 0 work).
  bool watchdog = true;
  /// A worker is stalled after stall_factor x the job's deadline_ms ...
  double stall_factor = 8.0;
  /// ... but never sooner than this floor, so tight-deadline jobs are not
  /// killed over scheduler jitter.
  double min_stall_ms = 250.0;
  /// Watchdog / retry-timer tick. Also the retry-latency granularity
  /// floor when backoffs are shorter than one tick.
  double poll_ms = 20.0;
  /// Backoff before retry attempt k: min(retry_cap_ms,
  /// retry_base_ms * 2^(k-1)).
  double retry_base_ms = 1.0;
  double retry_cap_ms = 64.0;
};

class Supervisor {
 public:
  /// Re-queues a retried job into its home shard. Returns 0 when
  /// admitted, +1 when the shard is full (try again next tick), -1 when
  /// the queue is closed (fail the job terminally).
  using RequeueFn = std::function<int(const JobTicket&)>;
  /// Spawns a replacement thread for worker index w (same home shard).
  using RespawnFn = std::function<void(std::size_t)>;
  /// The pool's terminal hook (retire ring, drain accounting, completion
  /// callback); invoked for every job the supervisor finishes itself.
  using TerminalFn = std::function<void(const JobTicket&)>;

  Supervisor(SupervisorOptions options, std::size_t workers,
             ServiceMetrics& metrics, RequeueFn requeue, RespawnFn respawn,
             TerminalFn terminal);
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Starts the watchdog/retry thread. Idempotent.
  void start();

  /// Stops the thread and terminally fails every pending retry (their
  /// jobs can never run again — the pool is shutting down). Idempotent;
  /// after stop(), schedule_retry() returns false.
  void stop();

  // --- worker heartbeat interface ------------------------------------------
  // All calls are generation-guarded: a superseded worker holds a stale
  // generation, so its slot writes become no-ops instead of clobbering
  // the replacement's heartbeat.

  /// Current generation of worker slot w (passed to the thread at spawn).
  std::uint64_t generation(std::size_t worker) const;
  /// True once the watchdog has replaced generation `gen` of worker w.
  bool superseded(std::size_t worker, std::uint64_t gen) const;
  void begin_serve(std::size_t worker, std::uint64_t gen, JobTicket job);
  void end_serve(std::size_t worker, std::uint64_t gen);

  // --- retry interface ------------------------------------------------------

  /// Queues `job` (whose attempts counter was already bumped, under a
  /// retry claim — see JobState::try_claim_retry) for re-submission
  /// after backoff_ms(job->attempts). False once stop() has closed the
  /// retry intake — the caller must fail the job terminally itself.
  bool schedule_retry(JobTicket job);

  /// Backoff before retry attempt k (1-based): capped exponential.
  double backoff_ms(std::uint32_t attempt) const noexcept;

  std::uint64_t restarts() const noexcept {
    return restarts_.load(std::memory_order_relaxed);
  }

  const SupervisorOptions& options() const noexcept { return options_; }

 private:
  using Clock = std::chrono::steady_clock;

  /// Per-worker heartbeat slot. The mutex orders worker-vs-watchdog slot
  /// access; it is held only for pointer/counter updates, never across a
  /// solve.
  struct Slot {
    mutable std::mutex mutex;
    std::uint64_t generation = 0;
    JobTicket job;          ///< set while the worker is inside serve()
    Clock::time_point since{};  ///< when `job` entered serve
  };

  struct PendingRetry {
    Clock::time_point due;
    JobTicket job;
  };

  void run();
  void check_stalls(Clock::time_point now);
  /// Moves due retries back into the queue; `abandon` fails them all
  /// terminally instead (shutdown path).
  void flush_retries(Clock::time_point now, bool abandon);
  /// Terminally fails `job` off-worker. False when someone else finished
  /// it first (then nothing was done).
  bool fail_job(const JobTicket& job, const char* reason, std::int32_t worker,
                bool stalled);

  const SupervisorOptions options_;
  ServiceMetrics& metrics_;
  const RequeueFn requeue_;
  const RespawnFn respawn_;
  const TerminalFn terminal_;

  std::vector<Slot> slots_;

  std::mutex retry_mutex_;
  std::vector<PendingRetry> retries_;
  /// Guarded by retry_mutex_, NOT run_mutex_: set by stop() immediately
  /// before its final abandon-flush, checked atomically with every push
  /// in schedule_retry, so no retry can slip in after the flush.
  bool retries_closed_ = false;

  std::mutex run_mutex_;
  std::condition_variable run_cv_;
  bool stopping_ = false;  ///< guarded by run_mutex_
  std::thread timer_;

  std::atomic<std::uint64_t> restarts_{0};
};

}  // namespace pacga::service
