#include "service/service.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "support/failpoints.hpp"

namespace pacga::service {

namespace {

void validate_spec(const JobSpec& spec) {
  if (!spec.etc) throw std::invalid_argument("JobSpec: etc must be non-null");
  if (!(spec.deadline_ms > 0.0) || !std::isfinite(spec.deadline_ms))
    throw std::invalid_argument(
        "JobSpec: deadline_ms must be positive and finite");
  if (spec.policy == SolvePolicy::kWarmStart)
    throw std::invalid_argument(
        "JobSpec: kWarmStart is result provenance, not a requestable policy");
  if (!spec.warm_start.empty()) {
    if (spec.warm_start.size() != spec.etc->tasks())
      throw std::invalid_argument(
          "JobSpec: warm_start size must equal etc tasks");
    for (sched::MachineId m : spec.warm_start) {
      if (m >= spec.etc->machines())
        throw std::invalid_argument(
            "JobSpec: warm_start machine id out of range");
    }
  }
}

}  // namespace

SchedulerService::SchedulerService(ServiceOptions options)
    : options_(std::move(options)),
      metrics_(std::max<std::size_t>(1, options_.workers),
               /*histograms=*/options_.observability),
      // One queue shard and one cache stripe per worker: each worker's home
      // shard is its own, and the shape hash that routes a job to a shard
      // also picks its cache stripe.
      cache_(options_.cache_capacity, std::max<std::size_t>(1, options_.workers)),
      queue_(options_.queue_capacity, std::max<std::size_t>(1, options_.workers)),
      trace_(std::max<std::size_t>(1, options_.workers),
             options_.observability ? options_.trace_capacity : 0) {
  SolverPoolOptions pool_options;
  pool_options.workers = options_.workers;
  pool_options.solver = options_.solver;
  pool_options.supervision = options_.supervision;
  pool_.emplace(queue_, cache_, metrics_, std::move(pool_options), &trace_,
                [this](const JobState& job) { on_terminal(job); });
}

SchedulerService::~SchedulerService() { shutdown(); }

JobTicket SchedulerService::make_ticket(JobSpec&& spec) {
  validate_spec(spec);
  if (shut_down_.load())
    throw std::runtime_error("SchedulerService: shut down");
  auto ticket = std::make_shared<JobState>();
  ticket->spec = std::move(spec);
  ticket->submitted = std::chrono::steady_clock::now();
  // Shape-affine shard assignment, tagged once here: the queue routes
  // admission by it, cancel removes by it, and the pool uses it as the
  // cache stripe.
  ticket->shard = static_cast<std::uint32_t>(queue_.shard_of_shape(
      ticket->spec.etc->tasks(), ticket->spec.etc->machines()));
  // Cap at ~1000 days: duration_cast of a larger double to the clock's
  // integral nanosecond rep would overflow (UB) and wrap an effectively
  // infinite deadline into one already in the past.
  const double capped_ms = std::min(ticket->spec.deadline_ms, 8.64e10);
  ticket->deadline =
      ticket->submitted +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(capped_ms));
  ticket->id = next_id_.fetch_add(1, std::memory_order_relaxed);
  ticket->result.id = ticket->id;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    registry_.emplace(ticket->result.id, ticket);
  }
  outstanding_.fetch_add(1, std::memory_order_relaxed);
  return ticket;
}

void SchedulerService::reject_unregistered(const JobTicket& ticket) {
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    registry_.erase(ticket->result.id);
  }
  if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(drain_mutex_);
    drained_.notify_all();
  }
}

JobId SchedulerService::submit(JobSpec spec) {
  PACGA_FAILPOINT("queue.submit");
  JobTicket ticket = make_ticket(std::move(spec));
  const JobId id = ticket->result.id;
  JobTicket keep = ticket;  // queue takes one reference, we keep one
  if (!queue_.submit(std::move(ticket))) {
    // Shutdown raced the admission.
    reject_unregistered(keep);
    throw std::runtime_error("SchedulerService: shut down during submit");
  }
  metrics_.on_submit();
  return id;
}

void SchedulerService::source_warm_start(JobSpec& spec) {
  if (!spec.warm_start.empty() || !spec.use_cache) return;
  const std::uint64_t key =
      SolverPool::cache_key(*spec.etc, options_.solver, spec.policy);
  // Same stripe the pool stores under: stripe follows the queue shard,
  // which is a pure function of the instance shape.
  const std::size_t stripe =
      queue_.shard_of_shape(spec.etc->tasks(), spec.etc->machines());
  SolutionCache::Entry cached;
  if (cache_.lookup(stripe, key, cached) &&
      cached.assignment.size() == spec.etc->tasks()) {
    spec.warm_start = std::move(cached.assignment);
  }
}

JobId SchedulerService::submit_reschedule(JobSpec spec) {
  validate_spec(spec);
  source_warm_start(spec);
  const JobId id = submit(std::move(spec));  // may throw: count admissions only
  metrics_.on_reschedule();
  return id;
}

std::optional<JobId> SchedulerService::try_submit_reschedule(JobSpec spec) {
  validate_spec(spec);
  source_warm_start(spec);
  const std::optional<JobId> id = try_submit(std::move(spec));
  if (id) metrics_.on_reschedule();
  return id;
}

std::optional<JobId> SchedulerService::try_submit(JobSpec spec) {
  PACGA_FAILPOINT("queue.submit");
  JobTicket ticket = make_ticket(std::move(spec));
  const JobId id = ticket->result.id;
  JobTicket keep = ticket;  // queue takes one reference, we keep one
  // Watermark shedding: refuse BEFORE the shard is hard-full, so the
  // remaining headroom keeps absorbing retries and in-flight work while
  // clients are told to back off. Disabled at the default watermark 1.0
  // (only a truly full shard rejects, below).
  if (options_.shed_watermark < 1.0 &&
      static_cast<double>(queue_.depth(ticket->shard)) >=
          options_.shed_watermark *
              static_cast<double>(queue_.shard_capacity(ticket->shard))) {
    reject_unregistered(keep);
    metrics_.on_shed();
    metrics_.on_reject();
    return std::nullopt;
  }
  if (!queue_.try_submit(std::move(ticket))) {
    reject_unregistered(keep);
    // Distinguish shutdown from congestion: a load-shedder treats nullopt
    // as "back off and retry", which must not loop against a dead service
    // (and must not inflate the rejected metric).
    if (queue_.closed())
      throw std::runtime_error("SchedulerService: shut down during submit");
    metrics_.on_reject();
    return std::nullopt;
  }
  metrics_.on_submit();
  return id;
}

JobResult SchedulerService::wait(JobId id) {
  JobTicket ticket;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    const auto it = registry_.find(id);
    if (it == registry_.end())
      throw std::invalid_argument("SchedulerService::wait: unknown job id");
    ticket = it->second;
  }
  JobResult result = ticket->await();
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    registry_.erase(id);
  }
  return result;
}

SchedulerService::Poll SchedulerService::poll_result(JobId id, JobResult& out) {
  JobTicket ticket;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    const auto it = registry_.find(id);
    if (it == registry_.end()) return Poll::kUnknown;
    ticket = it->second;
  }
  {
    std::lock_guard<std::mutex> lock(ticket->mutex);
    if (!ticket->finished) return Poll::kPending;
    out = ticket->result;
  }
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    registry_.erase(id);
  }
  return Poll::kReady;
}

void SchedulerService::set_completion_callback(CompletionCallback cb) {
  std::lock_guard<std::mutex> lock(completion_mutex_);
  completion_cb_ = std::move(cb);
}

bool SchedulerService::cancel(JobId id) {
  JobTicket ticket;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    const auto it = registry_.find(id);
    if (it == registry_.end()) return false;
    ticket = it->second;
  }
  ticket->cancel.store(true, std::memory_order_relaxed);
  if (queue_.remove(ticket.get())) {
    // Never ran: finish it here, on the canceller's thread. The commit
    // can still lose to a concurrent finisher (e.g. the watchdog), in
    // which case fall through to the already-finished report below.
    JobResult r;
    r.id = ticket->id;
    r.status = JobStatus::kCancelled;
    r.retries = ticket->attempts;
    if (ticket->try_finish_with(std::move(r), [&] { metrics_.on_cancel(); })) {
      on_terminal(*ticket);
      return true;
    }
  }
  // Either running (the flag stops it within a generation) or already
  // finished (the flag is moot).
  {
    std::lock_guard<std::mutex> lock(ticket->mutex);
    return !ticket->finished;
  }
}

double SchedulerService::retry_hint_ms() const {
  std::size_t deepest = 1;
  for (std::size_t d : queue_.depths()) deepest = std::max(deepest, d);
  const double hint =
      metrics_.approx_solve_p50_ms() * static_cast<double>(deepest);
  return std::clamp(hint, 1.0, 10000.0);
}

void SchedulerService::drain() {
  std::unique_lock<std::mutex> lock(drain_mutex_);
  drained_.wait(lock, [this] {
    return outstanding_.load(std::memory_order_acquire) == 0;
  });
}

void SchedulerService::shutdown() {
  std::lock_guard<std::mutex> lock(shutdown_mutex_);  // serialize joiners
  if (!shut_down_.exchange(true)) {
    queue_.close();  // admission off; workers drain the remainder
  }
  if (pool_) pool_->join();
}

void SchedulerService::on_terminal(const JobState& job) {
  {
    // Bound the registry: results linger for late wait() calls, but only
    // the most recent kRetainedResults terminal jobs; a fire-and-forget
    // tenant must not grow the service without limit.
    std::lock_guard<std::mutex> lock(registry_mutex_);
    retired_.push_back(job.result.id);
    while (retired_.size() > kRetainedResults) {
      registry_.erase(retired_.front());  // no-op when already waited
      retired_.pop_front();
    }
  }
  if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(drain_mutex_);
    drained_.notify_all();
  }
  // Completion notification LAST: by the time a listener polls the id, the
  // result is published and the drain accounting has already seen the job.
  CompletionCallback cb;
  {
    std::lock_guard<std::mutex> lock(completion_mutex_);
    cb = completion_cb_;
  }
  if (cb) cb(job.result.id);
}

JobSpec make_workload_job(const batch::WorkloadSpec& workload, int priority,
                          double deadline_ms, std::uint64_t seed) {
  JobSpec spec;
  spec.etc =
      std::make_shared<const etc::EtcMatrix>(batch::make_workload_etc(workload));
  spec.priority = priority;
  spec.deadline_ms = deadline_ms;
  spec.seed = seed;
  return spec;
}

}  // namespace pacga::service
