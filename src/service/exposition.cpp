#include "service/exposition.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>

namespace pacga::service {

std::string format_metric(double value, int precision) {
  if (!std::isfinite(value)) return "-";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

namespace {

void counter(std::ostream& out, const char* name, std::uint64_t v,
             const char* help) {
  out << "# HELP pacga_" << name << ' ' << help << '\n';
  out << "# TYPE pacga_" << name << " counter\n";
  out << "pacga_" << name << ' ' << v << '\n';
}

void summary(std::ostream& out, const char* name,
             const obs::HistogramSnapshot& h, const char* help) {
  out << "# HELP pacga_" << name << ' ' << help << '\n';
  out << "# TYPE pacga_" << name << " summary\n";
  static constexpr double kQuantiles[] = {0.5, 0.9, 0.99, 0.999};
  static constexpr const char* kLabels[] = {"0.5", "0.9", "0.99", "0.999"};
  for (std::size_t i = 0; i < 4; ++i) {
    const double ns = h.quantile_ns(kQuantiles[i]);
    out << "pacga_" << name << "{quantile=\"" << kLabels[i] << "\"} ";
    if (std::isfinite(ns)) {
      out << ns / 1e9 << '\n';  // seconds, the Prometheus base unit
    } else {
      out << "NaN\n";  // empty distribution: Prometheus' spelling
    }
  }
  out << "pacga_" << name << "_count " << h.count() << '\n';
}

}  // namespace

void write_prometheus(std::ostream& out,
                      const ServiceMetrics::Snapshot& s) {
  counter(out, "jobs_submitted_total", s.submitted, "Jobs admitted");
  counter(out, "jobs_completed_total", s.completed, "Jobs finished kDone");
  counter(out, "jobs_cancelled_total", s.cancelled, "Jobs cancelled");
  counter(out, "jobs_failed_total", s.failed, "Jobs whose solver threw");
  counter(out, "jobs_rejected_total", s.rejected,
          "try_submit refusals (queue full)");
  counter(out, "reschedules_total", s.reschedules,
          "Warm reschedule admissions");
  counter(out, "cache_hits_total", s.cache_hits, "Solution cache hits");
  counter(out, "deadline_misses_total", s.deadline_misses,
          "Completions past their deadline");
  counter(out, "arena_builds_total", s.arena_builds,
          "Warm-arena cold rebuilds");
  counter(out, "retries_total", s.retries,
          "Failed attempts re-queued with backoff");
  counter(out, "quarantined_total", s.quarantined,
          "Jobs terminally failed after exhausting max_retries");
  counter(out, "stalled_total", s.stalled,
          "Jobs the watchdog declared stalled");
  counter(out, "worker_restarts_total", s.worker_restarts,
          "Workers respawned by the watchdog");
  counter(out, "shed_total", s.shed,
          "Admissions refused at the shed watermark");

  out << "# HELP pacga_worker_completed_total Jobs served per worker\n";
  out << "# TYPE pacga_worker_completed_total counter\n";
  for (std::size_t w = 0; w < s.worker_completed.size(); ++w) {
    out << "pacga_worker_completed_total{worker=\"" << w << "\"} "
        << s.worker_completed[w] << '\n';
  }

  summary(out, "queue_wait_seconds", s.queue_wait_hist,
          "Submit to pickup latency");
  summary(out, "solve_seconds", s.solve_hist, "Worker solve latency");
  summary(out, "e2e_seconds", s.e2e_hist, "Submit to terminal latency");

  out << "# HELP pacga_uptime_seconds Seconds since service start\n";
  out << "# TYPE pacga_uptime_seconds gauge\n";
  out << "pacga_uptime_seconds " << s.elapsed_seconds << '\n';
  out << "# EOF\n";
}

}  // namespace pacga::service
