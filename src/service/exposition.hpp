// Text exposition of service metrics — the formatting shared by the
// daemon's STATS (key=value) and METRICS (Prometheus) verbs, kept out of
// the example binary so tests can pin it.
//
// Two formats:
//   * format_metric — one scalar for STATS fields: fixed-point, and `-`
//     for NaN/inf (the empty-RunningStats min/max; a bare "nan" in a
//     key=value line parses as a float in some consumers and poisons
//     dashboards in others).
//   * write_prometheus — the Prometheus text format (# TYPE'd counters,
//     gauges, and summary quantiles from the latency histograms),
//     terminated by `# EOF` so a pipe client knows the multi-line
//     response is complete.
#pragma once

#include <iosfwd>
#include <string>

#include "service/metrics.hpp"

namespace pacga::service {

/// Fixed-point decimal with `precision` digits; `-` when the value is NaN
/// or infinite (empty-distribution min/max/quantiles).
std::string format_metric(double value, int precision = 3);

/// Prometheus text exposition of a metrics snapshot: pacga_-prefixed
/// counters, worker/shard state, and queue_wait / solve / e2e latency
/// summaries (p50/p90/p99/p99.9 in seconds, from the log-bucketed
/// histograms; omitted when the histograms are empty). Ends with `# EOF`.
void write_prometheus(std::ostream& out, const ServiceMetrics::Snapshot& s);

}  // namespace pacga::service
