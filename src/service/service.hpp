// SchedulerService — the multi-tenant solve service facade.
//
// The paper's operating regime (§2.1) is a broker that continuously
// receives task batches and must answer within a scheduling window. This
// facade is that broker's solver tier as an in-process service:
//
//   submit/try_submit -> ShardedJobQueue (bounded, priority, backpressure;
//                        one shard per worker, routed by instance shape)
//                     -> SolverPool (N pinned workers, warm per-shape
//                        arenas, bounded stealing, deadline-driven anytime
//                        CGA, policy escalation)
//                     -> SolutionCache (LRU on ETC fingerprint, striped by
//                        the same shard key)
//   wait/cancel/drain  and  metrics() snapshots while serving.
//
// The core is sharded end to end: a job's shard — a pure function of its
// instance shape, assigned at admission — selects its queue shard, its
// cache stripe, and (via pinning) the worker whose warm arena matches the
// shape. Completions record into per-worker padded metric slots, so the
// serving fast path shares no mutable cache line between workers.
//
// Lifecycle: construct -> serve -> shutdown() (or destruction). Shutdown
// is graceful: admission closes, already-queued jobs are drained by the
// workers, then threads join. cancel() covers both a queued job (removed
// before it runs) and a running one (stop flag, honored within one
// generation).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "batch/workload.hpp"
#include "obs/trace.hpp"
#include "service/cache.hpp"
#include "service/job.hpp"
#include "service/metrics.hpp"
#include "service/queue.hpp"
#include "service/solver_pool.hpp"

namespace pacga::service {

struct ServiceOptions {
  std::size_t workers = 2;
  std::size_t queue_capacity = 256;
  /// LRU entries; 0 disables the solution cache entirely.
  std::size_t cache_capacity = 1024;
  /// Trace-ring capacity PER WORKER (span records; rounded up to a power
  /// of two). The flight recorder keeps the most recent spans and drops
  /// the oldest on wrap. 0 disables tracing while keeping histograms.
  std::size_t trace_capacity = 8192;
  /// Master runtime switch for the observability layer (trace rings AND
  /// latency histograms). Counters and Welford moments always run — they
  /// predate the obs layer and STATS depends on them. PACGA_NO_OBS
  /// compiles the layer out regardless of this flag.
  bool observability = true;
  /// Solver base configuration (grid, operators, objective, Min-min
  /// seeding). Termination and seed are per-job; collect_trace is forced
  /// off.
  cga::Config solver;
  /// Watchdog + retry-backoff knobs (stall detection, worker respawn,
  /// capped exponential retry backoff — see supervisor.hpp).
  SupervisorOptions supervision;
  /// Queue-pressure shedding watermark, as a fraction of one shard's
  /// capacity: a try_submit whose target shard already holds at least
  /// watermark * shard_capacity queued jobs is refused (counted as
  /// shed + rejected; the net edge answers ERR BUSY with a retry hint).
  /// >= 1.0 disables the watermark — only a truly full shard rejects,
  /// the historical behavior.
  double shed_watermark = 1.0;
};

class SchedulerService {
 public:
  explicit SchedulerService(ServiceOptions options = {});

  /// Graceful shutdown (see shutdown()).
  ~SchedulerService();

  SchedulerService(const SchedulerService&) = delete;
  SchedulerService& operator=(const SchedulerService&) = delete;

  /// Admits a job, blocking while the queue is full (closed-loop
  /// backpressure). Returns the job id. Throws std::invalid_argument on a
  /// malformed spec and std::runtime_error once shut down.
  JobId submit(JobSpec spec);

  /// Fail-fast admission: nullopt when the queue is full (the reject is
  /// counted in metrics). Throws like submit() on bad specs/shutdown.
  std::optional<JobId> try_submit(JobSpec spec);

  /// Admits a re-optimization job (the dynamic rescheduling path). Like
  /// submit(), plus warm-start sourcing: when `spec.warm_start` is empty,
  /// the solution cache is consulted under this job's key and a hit
  /// becomes the seed — the cache doubles as the warm-start source for a
  /// matrix the service has solved before. Warm-started jobs never SERVE
  /// from the cache (the point is to re-optimize), but their results
  /// refresh it; the solver guarantees the answer is never worse than
  /// the seed, so an expired-deadline reschedule still returns the
  /// repaired schedule.
  JobId submit_reschedule(JobSpec spec);

  /// Fail-fast submit_reschedule: same warm-start sourcing, but admission
  /// goes through try_submit — nullopt when the shard is full (counted as
  /// a reject). The network edge maps this onto ERR BUSY.
  std::optional<JobId> try_submit_reschedule(JobSpec spec);

  /// Blocks until the job reaches a terminal state and returns its result.
  /// Each id can be waited on once (the handle is released); a second wait
  /// throws std::invalid_argument. Fire-and-forget tenants do not leak:
  /// finished-but-unwaited results are retained only for the most recent
  /// kRetainedResults terminal jobs, then released (a late wait() on an
  /// evicted id reports it unknown).
  JobResult wait(JobId id);

  /// Non-blocking wait, the event-loop counterpart of wait(): kReady
  /// copies the result into `out` and releases the handle exactly like a
  /// completed wait() (a second poll answers kUnknown); kPending leaves
  /// the job untouched — poll again after the completion callback fires;
  /// kUnknown means the id was never issued, already waited, or evicted.
  enum class Poll { kReady, kPending, kUnknown };
  Poll poll_result(JobId id, JobResult& out);

  /// Registers `cb`, invoked once per job as it reaches a terminal state
  /// (done, failed, or cancelled — including cancel-before-run), AFTER the
  /// result is published, from whichever thread finished the job (a pool
  /// worker, or the canceller). The callback must not block and must not
  /// re-enter the service except through poll_result/wait/try_submit —
  /// the intended shape is "enqueue the id and wake an event loop".
  /// Replaces any previous callback; pass {} to clear.
  using CompletionCallback = std::function<void(JobId)>;
  void set_completion_callback(CompletionCallback cb);

  /// How many finished-but-unwaited results are kept before the oldest is
  /// released.
  static constexpr std::size_t kRetainedResults = 1024;

  /// Requests cancellation. A queued job is removed and finished as
  /// kCancelled immediately; a running job stops within one generation.
  /// Returns false when the job is unknown or already finished.
  bool cancel(JobId id);

  /// Blocks until every submitted job has reached a terminal state.
  void drain();

  /// Stops admission, lets the workers drain the queue, joins them.
  /// Idempotent.
  void shutdown();

  ServiceMetrics::Snapshot metrics() const { return metrics_.snapshot(); }

  /// Suggested client back-off after a shed/busy rejection, in
  /// milliseconds: observed p50 solve latency scaled by the deepest
  /// shard's backlog, clamped to [1, 10000]. Cheap enough to call on
  /// every rejection; the net edge appends it to ERR BUSY.
  double retry_hint_ms() const;

  const SolutionCache& cache() const noexcept { return cache_; }
  const ServiceOptions& options() const noexcept { return options_; }

  /// The span flight recorder (disabled — empty snapshots — when
  /// options.observability is false, trace_capacity is 0, or the build
  /// defines PACGA_NO_OBS). The daemon's TRACE verbs read it.
  const obs::TraceCollector& trace() const noexcept { return trace_; }

  /// Queue shards == workers (each worker's home shard is its own).
  std::size_t shards() const noexcept { return queue_.shards(); }
  /// Currently queued jobs per shard (the daemon's STATS shard_depth).
  std::vector<std::size_t> shard_depths() const { return queue_.depths(); }
  /// Jobs served off a non-home shard since start (work-stealing volume).
  std::uint64_t queue_steals() const noexcept { return queue_.steals(); }

 private:
  JobTicket make_ticket(JobSpec&& spec);
  void source_warm_start(JobSpec& spec);
  void reject_unregistered(const JobTicket& ticket);
  void on_terminal(const JobState& job);

  ServiceOptions options_;
  ServiceMetrics metrics_;
  SolutionCache cache_;
  ShardedJobQueue queue_;
  obs::TraceCollector trace_;  ///< before pool_: workers write into it

  mutable std::mutex registry_mutex_;
  std::unordered_map<JobId, JobTicket> registry_;
  mutable std::mutex completion_mutex_;       ///< guards completion_cb_
  CompletionCallback completion_cb_;          ///< see set_completion_callback
  std::deque<JobId> retired_;  ///< terminal order; bounds unwaited results
  std::atomic<JobId> next_id_{1};
  std::atomic<std::size_t> outstanding_{0};
  std::mutex drain_mutex_;
  std::condition_variable drained_;
  std::atomic<bool> shut_down_{false};
  std::mutex shutdown_mutex_;

  std::optional<SolverPool> pool_;  ///< last member: joins before the rest dies
};

/// Workload-reference job: generates `workload`'s full-batch ETC (see
/// batch::make_workload_etc) and wraps it as a JobSpec. The service treats
/// it like any other job; the matrix is owned by the returned spec.
JobSpec make_workload_job(const batch::WorkloadSpec& workload,
                          int priority = 0, double deadline_ms = 100.0,
                          std::uint64_t seed = 1);

}  // namespace pacga::service
