#include "service/cache.hpp"

namespace pacga::service {

SolutionCache::SolutionCache(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ > 0) index_.reserve(capacity_);
}

bool SolutionCache::lookup(std::uint64_t key, Entry& out) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // bump to most recent
  out.assignment.assign(it->second->second.assignment.begin(),
                        it->second->second.assignment.end());
  out.fitness = it->second->second.fitness;
  out.policy = it->second->second.policy;
  ++hits_;
  return true;
}

void SolutionCache::insert(std::uint64_t key,
                           std::span<const sched::MachineId> assignment,
                           double fitness, SolvePolicy policy) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    if (fitness < it->second->second.fitness) {
      it->second->second.assignment.assign(assignment.begin(),
                                           assignment.end());
      it->second->second.fitness = fitness;
      it->second->second.policy = policy;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
  lru_.emplace_front(key, Entry{{assignment.begin(), assignment.end()},
                                fitness, policy});
  index_[key] = lru_.begin();
}

void SolutionCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
  hits_ = 0;
  misses_ = 0;
}

std::size_t SolutionCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

std::uint64_t SolutionCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t SolutionCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

}  // namespace pacga::service
