#include "service/cache.hpp"

#include <algorithm>
#include <stdexcept>

#include "support/failpoints.hpp"

namespace pacga::service {

SolutionCache::SolutionCache(std::size_t capacity, std::size_t stripes)
    : stripe_capacity_(
          capacity == 0 ? 0
                        : std::max<std::size_t>(1, capacity / stripes)) {
  if (stripes == 0)
    throw std::invalid_argument("SolutionCache: stripes must be >= 1");
  stripes_.reserve(stripes);
  for (std::size_t i = 0; i < stripes; ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
    if (stripe_capacity_ > 0) stripes_.back()->index.reserve(stripe_capacity_);
  }
}

bool SolutionCache::lookup(std::size_t stripe, std::uint64_t key,
                           Entry& out) {
  PACGA_FAILPOINT("cache.lookup");
  Stripe& s = *stripes_[stripe % stripes_.size()];
  std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.index.find(key);
  if (it == s.index.end()) {
    ++s.misses;
    return false;
  }
  s.lru.splice(s.lru.begin(), s.lru, it->second);  // bump to most recent
  out.assignment.assign(it->second->second.assignment.begin(),
                        it->second->second.assignment.end());
  out.fitness = it->second->second.fitness;
  out.policy = it->second->second.policy;
  ++s.hits;
  return true;
}

bool SolutionCache::lookup(std::uint64_t key, Entry& out) {
  return lookup(static_cast<std::size_t>(key), key, out);
}

void SolutionCache::insert(std::size_t stripe, std::uint64_t key,
                           std::span<const sched::MachineId> assignment,
                           double fitness, SolvePolicy policy) {
  PACGA_FAILPOINT("cache.insert");
  if (stripe_capacity_ == 0) return;
  Stripe& s = *stripes_[stripe % stripes_.size()];
  std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.index.find(key);
  if (it != s.index.end()) {
    if (fitness < it->second->second.fitness) {
      it->second->second.assignment.assign(assignment.begin(),
                                           assignment.end());
      it->second->second.fitness = fitness;
      it->second->second.policy = policy;
    }
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    return;
  }
  if (s.lru.size() >= stripe_capacity_) {
    s.index.erase(s.lru.back().first);
    s.lru.pop_back();
  }
  s.lru.emplace_front(key, Entry{{assignment.begin(), assignment.end()},
                                 fitness, policy});
  s.index[key] = s.lru.begin();
}

void SolutionCache::insert(std::uint64_t key,
                           std::span<const sched::MachineId> assignment,
                           double fitness, SolvePolicy policy) {
  insert(static_cast<std::size_t>(key), key, assignment, fitness, policy);
}

void SolutionCache::clear() {
  for (auto& sp : stripes_) {
    Stripe& s = *sp;
    std::lock_guard<std::mutex> lock(s.mutex);
    s.lru.clear();
    s.index.clear();
    s.hits = 0;
    s.misses = 0;
  }
}

std::size_t SolutionCache::size() const {
  std::size_t total = 0;
  for (const auto& sp : stripes_) {
    std::lock_guard<std::mutex> lock(sp->mutex);
    total += sp->lru.size();
  }
  return total;
}

std::size_t SolutionCache::capacity() const noexcept {
  return stripe_capacity_ * stripes_.size();
}

std::uint64_t SolutionCache::hits() const {
  std::uint64_t total = 0;
  for (const auto& sp : stripes_) {
    std::lock_guard<std::mutex> lock(sp->mutex);
    total += sp->hits;
  }
  return total;
}

std::uint64_t SolutionCache::misses() const {
  std::uint64_t total = 0;
  for (const auto& sp : stripes_) {
    std::lock_guard<std::mutex> lock(sp->mutex);
    total += sp->misses;
  }
  return total;
}

std::vector<std::uint64_t> SolutionCache::stripe_hits() const {
  std::vector<std::uint64_t> out;
  out.reserve(stripes_.size());
  for (const auto& sp : stripes_) {
    std::lock_guard<std::mutex> lock(sp->mutex);
    out.push_back(sp->hits);
  }
  return out;
}

}  // namespace pacga::service
