// Warm solver workers: persistent per-thread solver state reused across
// jobs, plus the pool that feeds them from the job queue.
//
// The economics of serving: on a small instance the CGA's useful work per
// job is milliseconds, so per-job setup (population construction, breeder
// scratch, sweep order — a dozen vector allocations each sized
// tasks*machines) would dominate. A WarmSolver therefore owns ALL of that
// state as an arena keyed on the instance shape: jobs of the same
// (tasks x machines) shape re-initialize the existing buffers in place
// (Population::reseed, Schedule::randomize_from, SweepOrderCache::reset,
// BestTracker::reset), so the steady-state serving path performs ZERO heap
// allocations for kCga jobs without Min-min seeding — the breeding path
// itself is allocation-free with seeding too (test_service pins both).
//
// Policy escalation (kAuto): tiny-or-urgent jobs get Min-min+Sufferage
// (microseconds, near-optimal at that scale); real budgets get the warm
// sequential CGA (anytime, deadline-driven via TerminationController);
// big instances with generous budgets get the PA-CGA parallel engine.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "cga/breeder.hpp"
#include "cga/config.hpp"
#include "cga/engine.hpp"
#include "cga/loop.hpp"
#include "cga/population.hpp"
#include "obs/trace.hpp"
#include "service/cache.hpp"
#include "service/job.hpp"
#include "service/metrics.hpp"
#include "service/queue.hpp"
#include "service/supervisor.hpp"
#include "support/rng.hpp"
#include "support/threading.hpp"

namespace pacga::service {

/// kAuto escalation thresholds.
inline constexpr double kHeuristicBudgetSeconds = 0.002;  ///< below: heuristics
inline constexpr std::size_t kHeuristicMaxTasks = 12;     ///< at most: heuristics
inline constexpr double kParallelBudgetSeconds = 0.25;    ///< at least: PA-CGA...
inline constexpr std::size_t kParallelMinTasks = 256;     ///< ...on big instances

/// Fraction of the remaining wall budget handed to the solver; the rest is
/// headroom for the anytime loop's one-generation overshoot plus result
/// bookkeeping, so on-time pickups normally finish INSIDE the deadline.
inline constexpr double kDeadlineHeadroom = 0.9;

/// One worker's persistent solver. NOT thread-safe — exactly one worker
/// (or test) drives it. Between jobs the arena's schedules keep a pointer
/// to the PREVIOUS job's ETC matrix; nothing dereferences it until the
/// next solve rebinds every cell, but the arena must only be used through
/// solve().
class WarmSolver {
 public:
  /// `base` supplies grid shape, operators, objective, and Min-min
  /// seeding; per-job termination and seeds override it. The grid is
  /// shrunk automatically for small instances (population <= ~4x tasks,
  /// never below 4x4), one arena shape at a time.
  explicit WarmSolver(cga::Config base);

  /// Solves one job into `out` (assignment, makespan=fitness, policy_used,
  /// generations, evaluations). `budget_seconds` is the remaining wall
  /// budget; the CGA stops within one generation of it (anytime) and polls
  /// `cancel` (optional) at the same granularity. `observer` (optional)
  /// fires after every committed generation. Per-job seeding makes the
  /// result a pure function of (etc, spec) given a generation cap.
  /// `tracer` (optional) records phase spans (arena build, heuristic,
  /// warm-CGA, PA-CGA) and power-of-two-generation convergence instants
  /// tagged `job_id` — the probe is inlined rather than wrapped into
  /// `observer` so tracing never allocates on the serving path.
  void solve(const etc::EtcMatrix& etc, const JobSpec& spec,
             double budget_seconds, const std::atomic<bool>* cancel,
             JobResult& out, const cga::GenerationObserver& observer = {},
             obs::WorkerTracer* tracer = nullptr, std::uint64_t job_id = 0);

  /// The escalation decision, exposed for tests and the daemon's STATS.
  SolvePolicy decide(const JobSpec& spec, const etc::EtcMatrix& etc,
                     double budget_seconds) const noexcept;

  const cga::Config& base() const noexcept { return base_; }

  /// Cold arena (re)builds since construction — the shape-affinity figure
  /// of merit. A worker fed an unbroken run of same-shape jobs builds once;
  /// every extra build is a shape switch that threw the warm arena away.
  std::uint64_t arena_builds() const noexcept { return arena_builds_; }

 private:
  void ensure_shape(const etc::EtcMatrix& etc, obs::WorkerTracer* tracer,
                    std::uint64_t job_id);
  void solve_heuristic(const etc::EtcMatrix& etc, SolvePolicy policy,
                       JobResult& out);
  void solve_cga(const etc::EtcMatrix& etc, const JobSpec& spec,
                 double budget_seconds, const std::atomic<bool>* cancel,
                 JobResult& out, const cga::GenerationObserver& observer,
                 obs::WorkerTracer* tracer, std::uint64_t job_id);
  void solve_parallel(const etc::EtcMatrix& etc, const JobSpec& spec,
                      double budget_seconds, const std::atomic<bool>* cancel,
                      JobResult& out);

  cga::Config base_;
  cga::Config arena_config_;  ///< base_ with the grid shrunk for the shape
  std::size_t tasks_ = 0;
  std::size_t machines_ = 0;
  std::uint64_t arena_builds_ = 0;
  support::Xoshiro256 rng_{1};
  std::optional<cga::Population> population_;
  std::optional<cga::Breeder> breeder_;
  std::optional<cga::SweepOrderCache> order_;
  std::optional<cga::Individual> scratch_;     ///< offspring buffer
  std::optional<cga::BestTracker> tracker_;
};

/// Options of the worker pool (and, via ServiceOptions, the service).
struct SolverPoolOptions {
  std::size_t workers = 2;
  /// Solver base configuration: grid, operators, objective, Min-min
  /// seeding. Termination and seed are per-job.
  cga::Config solver;
  /// Watchdog + retry-backoff knobs (see supervisor.hpp).
  SupervisorOptions supervision;
};

/// N worker threads, each owning one WarmSolver and pinned to one home
/// shard of the sharded queue (worker i -> shard i % shards; with the
/// service's workers == shards construction that is a bijection). A worker
/// drains its home shard — where shape-affine routing concentrates the
/// shapes whose warm arenas it owns — and steals from neighbors only when
/// home is empty. Jobs are finished (result published, waiters woken) by
/// the worker that served them; `on_terminal` (optional) runs after each
/// finish — the service uses it for outstanding-job accounting.
///
/// Supervision: a Supervisor watchdog kills jobs whose worker wedged
/// (kFailed, error "stalled") and respawns a replacement thread onto the
/// same worker index — so the home shard, metrics slot, and tracer lane
/// keep exactly one owner (the supersede protocol in supervisor.hpp).
/// Transient solver failures retry through the same supervisor when
/// JobSpec::max_retries allows.
class SolverPool {
 public:
  using CompletionHook = std::function<void(const JobState&)>;

  /// `trace` (optional) is the service's span collector; each worker
  /// records into its own ring. Must outlive the pool.
  SolverPool(ShardedJobQueue& queue, SolutionCache& cache,
             ServiceMetrics& metrics, SolverPoolOptions options,
             obs::TraceCollector* trace = nullptr,
             CompletionHook on_terminal = {});

  /// Joins the workers (join() semantics).
  ~SolverPool();

  /// Stops the supervisor (pending retries fail terminally), releases
  /// workers parked at wedge failpoints, and joins every worker thread.
  /// The queue must have been closed first or this blocks forever.
  void join();

  /// Solution-cache key: the ETC fingerprint with the objective (and
  /// lambda, when it matters) and the REQUESTED solve policy mixed in.
  /// Different objectives on the same matrix never share an entry, and an
  /// explicit kCga request is never answered with a cached heuristic
  /// solution from a kMinMin tenant (kAuto keys separately too — the
  /// price of not knowing its escalation before the budget is known).
  static std::uint64_t cache_key(const etc::EtcMatrix& etc,
                                 const cga::Config& solver,
                                 SolvePolicy policy) noexcept;

  std::size_t workers() const noexcept { return options_.workers; }

  /// Workers respawned by the watchdog since construction.
  std::uint64_t worker_restarts() const noexcept {
    return supervisor_ ? supervisor_->restarts() : 0;
  }

 private:
  /// Why serve() returned. Informational: run_worker's exit decision is
  /// NOT taken from this (someone else finishing a job does not by
  /// itself retire the worker) but from Supervisor::superseded(), the
  /// authoritative generation check, after every serve.
  enum class ServeOutcome {
    kFinished,    ///< this worker committed the terminal result
    kRetried,     ///< failed transiently; the supervisor owns the job now
    kSuperseded,  ///< someone else finished the job first (watchdog
                  ///< stall verdict, racing cancel); nothing — metrics,
                  ///< tracer, completion hook — was touched
  };

  ServeOutcome serve(const JobTicket& ticket, WarmSolver& solver,
                     std::size_t worker, obs::WorkerTracer& tracer,
                     bool stolen);
  void run_worker(std::size_t worker, std::uint64_t generation);
  /// Starts (or restarts, from the watchdog) the thread of worker index w.
  void spawn_worker(std::size_t worker);

  ShardedJobQueue& queue_;
  SolutionCache& cache_;
  ServiceMetrics& metrics_;
  SolverPoolOptions options_;
  obs::TraceCollector* trace_;
  CompletionHook on_terminal_;
  /// Declared before threads_: worker threads dereference it, so it must
  /// outlive them (join() enforces the runtime ordering as well).
  std::unique_ptr<Supervisor> supervisor_;
  std::mutex threads_mutex_;
  std::vector<std::thread> threads_;  ///< live + exited-but-unjoined workers
  bool joining_ = false;              ///< guarded by threads_mutex_
};

}  // namespace pacga::service
