// Bounded, priority-aware job queues with backpressure — the single-shard
// primitive (JobQueue) and the shape-affine sharded front (ShardedJobQueue)
// the service actually serves from.
//
// JobQueue is the admission-control point of one shard: `try_submit` fails
// fast when the shard is full (the caller sheds load or retries), `submit`
// blocks until a slot frees (closed-loop clients). Ordering is strict
// priority, FIFO within a priority level (a monotone sequence number breaks
// heap ties), so a starved low-priority job still runs in submission order
// once the queue drains above it. Plain mutex + two condvars + a binary
// heap: per shard the lock is uncontended by construction (one pinned
// consumer, tenant-affine producers), and a mutex keeps remove() —
// cancellation of a queued job — trivially correct, which lock-free ring
// buffers do not.
//
// ShardedJobQueue is what makes the service core contention-free: N shards
// keyed by instance SHAPE (tasks x machines), one pinned worker per shard.
// Same-shape jobs always land on the same shard, so the pinned worker's
// per-shape WarmSolver arena stays hot across consecutive jobs instead of
// being rebuilt every time mixed tenants interleave. A worker that finds
// its home shard empty steals — bounded to one job per attempt, ring order
// starting at its neighbor — so a cold shard's worker is never idle while
// another shard backs up; under backlog stealing is continuous (no sleep
// between steals), so a single hot shape still fans out across every
// worker. Only a fully idle worker naps, on its home condvar with a
// kStealPatience timeout, which both bounds the latency of work stranded
// on a busy neighbor's shard and gives the home worker first claim on its
// own traffic (the steal scan runs at most once per patience window while
// idle).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "service/job.hpp"

namespace pacga::service {

class JobQueue {
 public:
  /// `capacity` must be >= 1; it bounds jobs QUEUED (not running).
  explicit JobQueue(std::size_t capacity);

  /// Non-blocking admission: false when the queue is full or closed.
  bool try_submit(JobTicket job);

  /// Blocking admission: waits for a slot; false only when the queue is
  /// (or becomes) closed.
  bool submit(JobTicket job);

  /// Blocks until a job is available or the queue is closed AND empty
  /// (shutdown drains queued work); nullptr means "no more jobs, exit".
  JobTicket pop();

  /// Non-blocking pop: nullptr when the queue is currently empty.
  JobTicket try_pop();

  /// Blocks until a job is queued, the queue is closed, or `timeout`
  /// elapses — the idle worker's nap between steal scans. Returns
  /// immediately when work or closure is already visible.
  void wait_for_work(std::chrono::nanoseconds timeout);

  /// Removes a specific queued job (cancel-before-run). False when the job
  /// is not in the queue (already popped or never queued). O(n) in THIS
  /// queue only — the sharded front routes here by the job's shard tag.
  bool remove(const JobState* job);

  /// Closes the queue: subsequent submissions fail, consumers drain the
  /// remaining entries and then get nullptr. Idempotent.
  void close();

  bool closed() const;
  /// True once closed AND drained — the consumer's exit condition.
  bool done() const;
  std::size_t size() const;
  std::size_t capacity() const noexcept { return capacity_; }

 private:
  struct Entry {
    int priority = 0;
    std::uint64_t seq = 0;  ///< admission order, breaks priority ties FIFO
    JobTicket job;
  };

  /// Max-heap "less": a sorts before b on higher priority, then lower seq.
  static bool heap_before(const Entry& a, const Entry& b) noexcept {
    if (a.priority != b.priority) return a.priority < b.priority;
    return a.seq > b.seq;
  }

  void push_locked(JobTicket&& job);
  JobTicket pop_locked();

  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::vector<Entry> heap_;
  std::size_t capacity_;
  std::uint64_t next_seq_ = 0;
  bool closed_ = false;
};

/// How long a fully idle worker naps before re-scanning for stealable
/// work. The upper bound on how long a job can sit on a shard whose pinned
/// worker is busy while other workers idle; also the grace period the home
/// worker gets before thieves contend for its traffic. Submissions to a
/// shard wake its pinned worker immediately regardless.
inline constexpr std::chrono::nanoseconds kStealPatience =
    std::chrono::microseconds(1000);

/// N independent JobQueue shards keyed by instance shape, one pinned
/// consumer per shard, bounded work-stealing between them (see the file
/// comment). Capacity is split exactly across shards — `capacity/shards`
/// each plus one extra slot on the leading `capacity%shards` shards, never
/// below 1 — so per-shard capacities sum to max(capacity, shards) and the
/// total admitted backlog equals the capacity a tenant asked for.
/// Backpressure stays per-shard: a hot shape fills ITS shard and sheds
/// load without starving other tenants' admission.
class ShardedJobQueue {
 public:
  /// `capacity` >= 1 total queued jobs (split across shards), `shards` >= 1.
  ShardedJobQueue(std::size_t capacity, std::size_t shards);

  /// The shard a (tasks x machines) shape routes to. Pure shape hash: every
  /// job of one shape maps to one shard, which is exactly the key the warm
  /// solver arenas are warm ON. (Keying by content fingerprint would spread
  /// same-shape tenants across workers — better-looking balance, but every
  /// worker would then juggle several shapes and thrash its arena; balance
  /// under a single dominant shape comes from stealing instead.)
  std::size_t shard_of_shape(std::size_t tasks,
                             std::size_t machines) const noexcept;

  /// Admission to the shard in `job->shard` (assign it first, e.g. from
  /// shard_of_shape). Same semantics as the JobQueue counterparts.
  bool try_submit(JobTicket job);
  bool submit(JobTicket job);

  /// Consumer loop for the worker pinned to `home`: home shard first, then
  /// one bounded steal scan, then nap (kStealPatience) and retry; nullptr
  /// once every shard is closed and drained. `stolen` (optional) reports
  /// whether the returned job came off a non-home shard (the trace layer
  /// tags queue-wait spans with it).
  JobTicket pop(std::size_t home, bool* stolen = nullptr);

  /// Cancel-before-run: routes directly to the job's tagged shard — one
  /// shard's heap is scanned, never all of them.
  bool remove(const JobState* job);

  /// Closes every shard. Idempotent.
  void close();

  bool closed() const;
  std::size_t size() const;  ///< total queued across shards
  /// Queued depth per shard (the daemon's STATS shard_depth field).
  std::vector<std::size_t> depths() const;
  /// Queued depth of one shard (indexed modulo the shard count) — the
  /// admission-time watermark check, without the vector the full report
  /// allocates.
  std::size_t depth(std::size_t shard) const;
  std::size_t shards() const noexcept { return shards_.size(); }
  /// Queued-job capacity of one shard (see the class comment for the
  /// split). Indexed modulo the shard count.
  std::size_t shard_capacity(std::size_t shard) const noexcept;
  /// Total queued-job capacity across shards: exactly the constructor's
  /// `capacity`, or `shards` when capacity < shards (1-per-shard floor).
  std::size_t capacity() const noexcept;
  /// Jobs served off a non-home shard since construction.
  std::uint64_t steals() const noexcept {
    return steals_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<std::unique_ptr<JobQueue>> shards_;
  std::atomic<std::uint64_t> steals_{0};
};

}  // namespace pacga::service
