// Bounded, priority-aware MPMC job queue with backpressure.
//
// The admission-control point of the service: `try_submit` fails fast when
// the queue is full (the caller sheds load or retries), `submit` blocks
// until a slot frees (closed-loop clients). Consumers block in `pop` until
// a job or shutdown arrives. Ordering is strict priority, FIFO within a
// priority level (a monotone sequence number breaks heap ties), so a
// starved low-priority job still runs in submission order once the queue
// drains above it.
//
// Plain mutex + two condvars + a binary heap: at service scale (thousands
// of jobs/sec, each worth >= a heuristic solve) the lock is nowhere near
// the bottleneck, and a mutex keeps remove() — cancellation of a queued
// job — trivially correct, which lock-free ring buffers do not.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "service/job.hpp"

namespace pacga::service {

class JobQueue {
 public:
  /// `capacity` must be >= 1; it bounds jobs QUEUED (not running).
  explicit JobQueue(std::size_t capacity);

  /// Non-blocking admission: false when the queue is full or closed.
  bool try_submit(JobTicket job);

  /// Blocking admission: waits for a slot; false only when the queue is
  /// (or becomes) closed.
  bool submit(JobTicket job);

  /// Blocks until a job is available or the queue is closed AND empty
  /// (shutdown drains queued work); nullptr means "no more jobs, exit".
  JobTicket pop();

  /// Removes a specific queued job (cancel-before-run). False when the job
  /// is not in the queue (already popped or never queued). O(n).
  bool remove(const JobState* job);

  /// Closes the queue: subsequent submissions fail, consumers drain the
  /// remaining entries and then get nullptr. Idempotent.
  void close();

  bool closed() const;
  std::size_t size() const;
  std::size_t capacity() const noexcept { return capacity_; }

 private:
  struct Entry {
    int priority = 0;
    std::uint64_t seq = 0;  ///< admission order, breaks priority ties FIFO
    JobTicket job;
  };

  /// Max-heap "less": a sorts before b on higher priority, then lower seq.
  static bool heap_before(const Entry& a, const Entry& b) noexcept {
    if (a.priority != b.priority) return a.priority < b.priority;
    return a.seq > b.seq;
  }

  void push_locked(JobTicket&& job);

  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::vector<Entry> heap_;
  std::size_t capacity_;
  std::uint64_t next_seq_ = 0;
  bool closed_ = false;
};

}  // namespace pacga::service
