#include "dynamic/repair.hpp"

#include <limits>
#include <stdexcept>

namespace pacga::dynamic {

namespace {

constexpr sched::MachineId kUnassigned =
    std::numeric_limits<sched::MachineId>::max();

void require(bool ok, const char* what) {
  if (!ok) throw std::invalid_argument(std::string("ScheduleRepairer: ") + what);
}

}  // namespace

const char* to_string(RepairPolicy p) noexcept {
  switch (p) {
    case RepairPolicy::kMinMin: return "minmin";
    case RepairPolicy::kSufferage: return "sufferage";
  }
  return "?";
}

RepairStats ScheduleRepairer::repair(const EtcMutator::Outcome& outcome,
                                     const etc::EtcMatrix& etc,
                                     sched::Schedule& schedule) {
  RepairStats stats;
  stats.kind = outcome.kind;
  stats.shape_changed = outcome.shape_changed;

  // Work on scratch copies of the pre-event state; the schedule is only
  // overwritten once the repair is complete, so a thrown validation
  // leaves it untouched.
  const auto old_assignment = schedule.assignment();
  const auto old_completion = schedule.completions();
  assignment_.assign(old_assignment.begin(), old_assignment.end());
  completion_.assign(old_completion.begin(), old_completion.end());
  orphans_.clear();

  switch (outcome.kind) {
    case EventKind::kMachineSlowdown: {
      require(assignment_.size() == etc.tasks() &&
                  completion_.size() == etc.machines(),
              "slowdown repair: shape mismatch");
      require(outcome.machine < completion_.size(),
              "slowdown repair: machine out of range");
      // The machine's load (completion minus ready) scaled with its ETCs;
      // one multiply keeps the cache consistent with the scaled column.
      const double ready = etc.ready(outcome.machine);
      completion_[outcome.machine] =
          ready + outcome.factor * (completion_[outcome.machine] - ready);
      break;
    }
    case EventKind::kMachineDown: {
      require(assignment_.size() == etc.tasks() &&
                  completion_.size() == etc.machines() + 1,
              "down repair: shape mismatch");
      require(outcome.machine < completion_.size(),
              "down repair: machine out of range");
      const auto down = static_cast<sched::MachineId>(outcome.machine);
      for (std::size_t t = 0; t < assignment_.size(); ++t) {
        if (assignment_[t] == down) {
          assignment_[t] = kUnassigned;  // orphaned: machine is gone
          orphans_.push_back(t);
        } else if (assignment_[t] > down) {
          --assignment_[t];  // dense matrices: indices above shift down
        }
      }
      completion_.erase(completion_.begin() +
                        static_cast<std::ptrdiff_t>(outcome.machine));
      break;
    }
    case EventKind::kMachineUp: {
      require(assignment_.size() == etc.tasks() &&
                  completion_.size() + 1 == etc.machines(),
              "up repair: shape mismatch");
      // The newcomer starts empty; re-optimization (not repair) decides
      // what migrates onto it.
      completion_.push_back(etc.ready(etc.machines() - 1));
      break;
    }
    case EventKind::kTaskArrival: {
      require(assignment_.size() + 1 == etc.tasks() &&
                  completion_.size() == etc.machines(),
              "arrival repair: shape mismatch");
      assignment_.push_back(kUnassigned);
      orphans_.push_back(assignment_.size() - 1);
      break;
    }
    case EventKind::kTaskCancel: {
      require(assignment_.size() == etc.tasks() + 1 &&
                  completion_.size() == etc.machines(),
              "cancel repair: shape mismatch");
      require(outcome.task < assignment_.size(),
              "cancel repair: task out of range");
      require(outcome.removed_task_etc.size() == completion_.size(),
              "cancel repair: removed-row size mismatch");
      const sched::MachineId m = assignment_[outcome.task];
      // Exact decrement: the row was copied from the pre-event matrix,
      // the same values the completion sum accumulated.
      completion_[m] -= outcome.removed_task_etc[m];
      assignment_.erase(assignment_.begin() +
                        static_cast<std::ptrdiff_t>(outcome.task));
      break;
    }
  }

  stats.orphaned = orphans_.size();
  reassign_orphans(etc);
  stats.reassigned = stats.orphaned;

  schedule.adopt_with_completions(etc, assignment_, completion_);
  return stats;
}

void ScheduleRepairer::reassign_orphans(const etc::EtcMatrix& etc) {
  // The constructive heuristics, restricted to the orphan set against the
  // CURRENT machine loads. Ties break toward the lower orphan position
  // and lower machine index (strict comparisons, in-order scans), so the
  // repair is a pure function of its inputs — the golden tests depend on
  // that.
  while (!orphans_.empty()) {
    std::size_t pick_pos = 0;          // index into orphans_
    sched::MachineId pick_machine = 0;
    if (policy_ == RepairPolicy::kMinMin) {
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < orphans_.size(); ++i) {
        const std::size_t t = orphans_[i];
        for (std::size_t m = 0; m < etc.machines(); ++m) {
          const double c = completion_[m] + etc(t, m);
          if (c < best) {
            best = c;
            pick_pos = i;
            pick_machine = static_cast<sched::MachineId>(m);
          }
        }
      }
    } else {  // kSufferage
      double best_sufferage = -1.0;
      for (std::size_t i = 0; i < orphans_.size(); ++i) {
        const std::size_t t = orphans_[i];
        double best = std::numeric_limits<double>::infinity();
        double second = std::numeric_limits<double>::infinity();
        sched::MachineId best_m = 0;
        for (std::size_t m = 0; m < etc.machines(); ++m) {
          const double c = completion_[m] + etc(t, m);
          if (c < best) {
            second = best;
            best = c;
            best_m = static_cast<sched::MachineId>(m);
          } else if (c < second) {
            second = c;
          }
        }
        // One machine: no second choice, sufferage degenerates to 0 and
        // the first orphan in order wins.
        const double sufferage =
            etc.machines() > 1 ? second - best : 0.0;
        if (sufferage > best_sufferage) {
          best_sufferage = sufferage;
          pick_pos = i;
          pick_machine = best_m;
        }
      }
    }
    const std::size_t task = orphans_[pick_pos];
    assignment_[task] = pick_machine;
    completion_[pick_machine] += etc(task, pick_machine);
    orphans_.erase(orphans_.begin() + static_cast<std::ptrdiff_t>(pick_pos));
  }
}

}  // namespace pacga::dynamic
