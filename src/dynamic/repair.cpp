#include "dynamic/repair.hpp"

#include <limits>
#include <stdexcept>

#include "support/algo.hpp"
#include "support/kernels.hpp"

namespace pacga::dynamic {

namespace {

constexpr sched::MachineId kUnassigned =
    std::numeric_limits<sched::MachineId>::max();

void require(bool ok, const char* what) {
  if (!ok) throw std::invalid_argument(std::string("ScheduleRepairer: ") + what);
}

}  // namespace

const char* to_string(RepairPolicy p) noexcept {
  switch (p) {
    case RepairPolicy::kMinMin: return "minmin";
    case RepairPolicy::kSufferage: return "sufferage";
  }
  return "?";
}

RepairStats ScheduleRepairer::repair(const EtcMutator::Outcome& outcome,
                                     const etc::EtcMatrix& etc,
                                     sched::Schedule& schedule) {
  RepairStats stats;
  stats.kind = outcome.kind;
  stats.shape_changed = outcome.shape_changed;

  // Work on scratch copies of the pre-event state; the schedule is only
  // overwritten once the repair is complete, so a thrown validation
  // leaves it untouched.
  const auto old_assignment = schedule.assignment();
  const auto old_completion = schedule.completions();
  assignment_.assign(old_assignment.begin(), old_assignment.end());
  completion_.assign(old_completion.begin(), old_completion.end());
  orphans_.clear();

  switch (outcome.kind) {
    case EventKind::kMachineSlowdown: {
      require(assignment_.size() == etc.tasks() &&
                  completion_.size() == etc.machines(),
              "slowdown repair: shape mismatch");
      require(outcome.machine < completion_.size(),
              "slowdown repair: machine out of range");
      // The machine's load (completion minus ready) scaled with its ETCs;
      // one multiply keeps the cache consistent with the scaled column.
      const double ready = etc.ready(outcome.machine);
      completion_[outcome.machine] =
          ready + outcome.factor * (completion_[outcome.machine] - ready);
      break;
    }
    case EventKind::kMachineDown: {
      require(assignment_.size() == etc.tasks() &&
                  completion_.size() == etc.machines() + 1,
              "down repair: shape mismatch");
      require(outcome.machine < completion_.size(),
              "down repair: machine out of range");
      const auto down = static_cast<sched::MachineId>(outcome.machine);
      for (std::size_t t = 0; t < assignment_.size(); ++t) {
        if (assignment_[t] == down) {
          assignment_[t] = kUnassigned;  // orphaned: machine is gone
          orphans_.push_back(t);
        } else if (assignment_[t] > down) {
          --assignment_[t];  // dense matrices: indices above shift down
        }
      }
      completion_.erase(completion_.begin() +
                        static_cast<std::ptrdiff_t>(outcome.machine));
      break;
    }
    case EventKind::kMachineUp: {
      require(assignment_.size() == etc.tasks() &&
                  completion_.size() + 1 == etc.machines(),
              "up repair: shape mismatch");
      // The newcomer starts empty; re-optimization (not repair) decides
      // what migrates onto it.
      completion_.push_back(etc.ready(etc.machines() - 1));
      break;
    }
    case EventKind::kTaskArrival: {
      require(assignment_.size() + 1 == etc.tasks() &&
                  completion_.size() == etc.machines(),
              "arrival repair: shape mismatch");
      assignment_.push_back(kUnassigned);
      orphans_.push_back(assignment_.size() - 1);
      break;
    }
    case EventKind::kTaskCancel: {
      require(assignment_.size() == etc.tasks() + 1 &&
                  completion_.size() == etc.machines(),
              "cancel repair: shape mismatch");
      require(outcome.task < assignment_.size(),
              "cancel repair: task out of range");
      require(outcome.removed_task_etc.size() == completion_.size(),
              "cancel repair: removed-row size mismatch");
      const sched::MachineId m = assignment_[outcome.task];
      // Exact decrement: the row was copied from the pre-event matrix,
      // the same values the completion sum accumulated.
      completion_[m] -= outcome.removed_task_etc[m];
      assignment_.erase(assignment_.begin() +
                        static_cast<std::ptrdiff_t>(outcome.task));
      break;
    }
    case EventKind::kEpochCommit:
      // Commits carry a CommitOutcome, not an Outcome — see commit().
      require(false, "commit outcomes go through commit()");
      break;
  }

  stats.orphaned = orphans_.size();
  reassign_orphans(etc);
  stats.reassigned = stats.orphaned;

  schedule.adopt_with_completions(etc, assignment_, completion_);
  return stats;
}

RepairStats ScheduleRepairer::commit(const EtcMutator::CommitOutcome& outcome,
                                     const etc::EtcMatrix& etc,
                                     sched::Schedule& schedule) {
  RepairStats stats;
  stats.kind = EventKind::kEpochCommit;
  stats.committed = outcome.removed_tasks.size();
  stats.shape_changed = !outcome.removed_tasks.empty();

  const std::size_t removed = outcome.removed_tasks.size();
  require(schedule.tasks() == etc.tasks() + removed,
          "commit: task count mismatch");
  require(schedule.machines() == etc.machines() &&
              outcome.old_ready.size() == etc.machines(),
          "commit: machine count mismatch");
  require(outcome.removed_etc.size() == removed,
          "commit: removed-etc size mismatch");

  const auto old_assignment = schedule.assignment();
  const auto old_completion = schedule.completions();
  assignment_.assign(old_assignment.begin(), old_assignment.end());
  completion_.assign(old_completion.begin(), old_completion.end());

  // Re-base every machine's completion from its old ready time onto the
  // post-commit one, then subtract the exact ETC each committed task was
  // contributing (copied from the pre-commit matrix). O(machines +
  // removed); no task moves, so the CT cache stays incremental.
  for (std::size_t m = 0; m < completion_.size(); ++m) {
    completion_[m] += etc.ready(m) - outcome.old_ready[m];
  }
  for (std::size_t i = 0; i < removed; ++i) {
    const std::size_t t = outcome.removed_tasks[i];
    require(t < assignment_.size(), "commit: removed task out of range");
    completion_[assignment_[t]] -= outcome.removed_etc[i];
  }
  support::erase_sorted_indices(assignment_, outcome.removed_tasks);

  schedule.adopt_with_completions(etc, assignment_, completion_);
  return stats;
}

void ScheduleRepairer::reassign_orphans(const etc::EtcMatrix& etc) {
  // The constructive heuristics, restricted to the orphan set against the
  // CURRENT machine loads, in the cached-best-machine form: every orphan
  // caches its fused-scan result and is rescanned only when the machine
  // that just took load holds one of its cached slots (loads are monotone
  // increasing, so every other cache entry is provably still exact). Ties
  // break toward the lower orphan position and lower machine index
  // (strict comparisons, in-order/kernel scans), so the repair remains a
  // pure function of its inputs — the golden tests depend on that, and
  // test_dynamic pins this loop pick-for-pick against the naive
  // exhaustive-rescan reference. (One of three sites sharing the
  // monotone-load exactness invariant — see min_max_min_fast in
  // heuristics/minmin.cpp.)
  const std::size_t machines = etc.machines();
  const std::size_t n = orphans_.size();
  key_.resize(n);
  best_m_.resize(n);
  second_m_.resize(n);

  const auto rescan = [&](std::size_t i) {
    const double* row = etc.of_task(orphans_[i]).data();
    const auto b = support::kernels::min_completion_index(completion_.data(),
                                                          row, machines);
    best_m_[i] = static_cast<std::uint32_t>(b.index);
    if (policy_ == RepairPolicy::kMinMin) {
      key_[i] = b.value;
      second_m_[i] = static_cast<std::uint32_t>(b.index);
    } else if (machines > 1) {
      const auto s = support::kernels::min_completion_index_skip(
          completion_.data(), row, machines, b.index);
      // One machine: no second choice, sufferage degenerates to 0 and the
      // first orphan in order wins (handled by the else branch below).
      key_[i] = s.value - b.value;
      second_m_[i] = static_cast<std::uint32_t>(s.index);
    } else {
      key_[i] = 0.0;
      second_m_[i] = 0;
    }
  };
  for (std::size_t i = 0; i < n; ++i) rescan(i);

  while (!orphans_.empty()) {
    // Min-min: smallest insertion completion wins; Sufferage: largest
    // penalty wins. Both tie-break to the first orphan in order, matching
    // the former exhaustive rescan loop pick for pick.
    const std::size_t count = orphans_.size();
    const std::size_t pick_pos =
        policy_ == RepairPolicy::kMinMin
            ? support::kernels::argmin(key_.data(), count)
            : support::kernels::argmax(key_.data(), count);
    const std::size_t task = orphans_[pick_pos];
    const auto pick_machine = static_cast<sched::MachineId>(best_m_[pick_pos]);
    assignment_[task] = pick_machine;
    completion_[pick_machine] += etc(task, pick_machine);

    const auto erase_at = [&](auto& v) {
      v.erase(v.begin() + static_cast<std::ptrdiff_t>(pick_pos));
    };
    erase_at(orphans_);
    erase_at(key_);
    erase_at(best_m_);
    erase_at(second_m_);

    for (std::size_t i = 0; i < orphans_.size(); ++i) {
      // second_m_ is only meaningful under kSufferage (kMinMin's rescan
      // fills it with best_m_ as a placeholder — never read it there).
      const bool second_hit = policy_ == RepairPolicy::kSufferage &&
                              second_m_[i] == pick_machine;
      if (best_m_[i] == pick_machine || second_hit) rescan(i);
    }
  }
}

}  // namespace pacga::dynamic
