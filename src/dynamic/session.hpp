// RescheduleSession — one tenant's live instance + its repaired schedule.
//
// The driver object behind the daemon's DYNAMIC/EVENT/RESCHEDULE verbs
// and the dynamic benchmarks: it owns an EtcMutator (the live grid), a
// ScheduleRepairer, and the current best-known schedule, and keeps the
// three consistent through an arbitrary event stream:
//
//   apply(event)        mutate the instance, repair the schedule (always
//                       leaves a feasible, CT-consistent schedule);
//   make_reschedule_spec()
//                       package the CURRENT instance (snapshot — the live
//                       matrix keeps churning) plus the repaired schedule
//                       as the warm start of a service job
//                       (SchedulerService::submit_reschedule);
//   adopt(assignment)   take the re-optimized result back, IF the grid
//                       has not changed shape since the spec was made.
//
// Single-threaded by design: the serializing actor is the protocol loop
// (daemon) or the driver thread (bench/tests); the solve itself runs on
// the service's workers against the snapshot, never the live matrix.
#pragma once

#include <cstdint>

#include "batch/workload.hpp"
#include "dynamic/mutator.hpp"
#include "dynamic/repair.hpp"
#include "sched/schedule.hpp"
#include "service/job.hpp"

namespace pacga::dynamic {

class RescheduleSession {
 public:
  /// Builds the initial grid from `spec` (same instance the static path
  /// would solve) and the initial schedule with the repair policy's
  /// constructive heuristic over the FULL task set (every task starts
  /// orphaned — repair degenerates to Min-min/Sufferage from scratch).
  explicit RescheduleSession(const batch::WorkloadSpec& spec,
                             RepairPolicy policy = RepairPolicy::kMinMin);

  /// Applies one event to the instance and repairs the schedule.
  /// Exceptions from validation (EtcMutator::apply) leave both untouched.
  /// kEpochCommit events are routed to commit_epoch() with the session's
  /// current schedule — the one verb EtcMutator cannot apply alone.
  RepairStats apply(const GridEvent& e);

  /// Epoch boundary: `elapsed` time units pass while the grid executes the
  /// session's current schedule. Completed and in-flight tasks leave the
  /// batch, their remainders become machine ready times
  /// (EtcMutator::commit_epoch), and the schedule's completion cache is
  /// re-based accordingly (ScheduleRepairer::commit). The repaired
  /// schedule — and any warm start built from it — therefore accounts for
  /// work already underway.
  RepairStats commit_epoch(double elapsed);

  const etc::EtcMatrix& etc() const noexcept { return mutator_.etc(); }
  const sched::Schedule& schedule() const noexcept { return schedule_; }
  const EtcMutator& mutator() const noexcept { return mutator_; }

  std::size_t tasks() const noexcept { return mutator_.tasks(); }
  std::size_t machines() const noexcept { return mutator_.machines(); }
  std::uint64_t events_applied() const noexcept {
    return mutator_.events_applied();
  }
  /// Monotone epoch, bumped by every shape-changing event. adopt() does
  /// not need it (it re-validates candidates against the live instance);
  /// it exists for callers running reschedules asynchronously who want
  /// to know whether the grid shape moved under a job they submitted.
  std::uint64_t shape_epoch() const noexcept { return shape_epoch_; }

  /// Packages the current instance (deep snapshot) and repaired schedule
  /// as a re-optimization job. The spec's warm_start is this session's
  /// schedule; deadline/priority/seed/policy are the caller's business.
  service::JobSpec make_reschedule_spec(int priority, double deadline_ms,
                                        std::uint64_t seed) const;

  /// Adopts a re-optimized assignment as the session schedule. Returns
  /// false (and keeps the repaired schedule) when the assignment does
  /// not fit the live shape — e.g. a shape-changing event landed between
  /// make_reschedule_spec() and the job's completion — or when,
  /// re-evaluated against the LIVE instance, it does not improve on the
  /// current schedule's makespan. The re-evaluation is what makes a
  /// stale-but-size-matching result safe to offer: it is only ever
  /// adopted as a valid, better schedule of the instance as it is NOW.
  bool adopt(std::span<const sched::MachineId> assignment);

 private:
  EtcMutator mutator_;
  ScheduleRepairer repairer_;
  sched::Schedule schedule_;
  std::uint64_t shape_epoch_ = 0;
};

}  // namespace pacga::dynamic
