// ScheduleRepairer — warm schedule repair after a grid event.
//
// Re-solving from scratch after every event throws away almost everything
// the solver knew: one machine drop orphans only the tasks that sat on
// it, a task arrival adds exactly one decision. The repairer therefore
// patches the EXISTING schedule:
//
//   1. remap the assignment across the index shift the event caused
//      (EtcMutator::Outcome knows it);
//   2. patch the completion-time cache incrementally — O(1) per machine
//      touched, never a full O(tasks) rebuild (slowdown scales one entry,
//      cancel subtracts one ETC, down drops one machine's entry, up
//      appends a zero);
//   3. reassign ONLY the orphaned/new tasks, inserting each onto the
//      machine minimizing its completion time, in Min-min order (cheapest
//      insertion first) or Sufferage order (most-penalized-if-denied
//      first) — the same constructive logic that seeds the GA, restricted
//      to the orphan set, with the same cached-best-machine + invalidation
//      rewrite the heuristics run (loads only grow, so a cached best stays
//      exact until its machine takes load): ~O(|orphans| * machines +
//      |orphans|^2 + machines * rescans), scans SIMD-dispatched;
//   4. hand assignment + cache to Schedule::adopt_with_completions (no
//      recompute; debug builds cross-validate).
//
// The repaired schedule is a feasible, good solution in microseconds; the
// service then re-optimizes it as the CGA warm start under whatever
// deadline remains (SchedulerService::submit_reschedule).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dynamic/mutator.hpp"
#include "sched/schedule.hpp"

namespace pacga::dynamic {

/// Which constructive order reassigns the orphan set.
enum class RepairPolicy {
  kMinMin,     ///< cheapest (task, machine) completion first
  kSufferage,  ///< largest best-vs-second-best penalty first
};

const char* to_string(RepairPolicy p) noexcept;

struct RepairStats {
  EventKind kind = EventKind::kTaskArrival;
  std::size_t orphaned = 0;    ///< tasks that lost (or never had) a machine
  std::size_t reassigned = 0;  ///< orphans placed (== orphaned on success)
  std::size_t committed = 0;   ///< kEpochCommit: tasks that left the batch
  bool shape_changed = false;
};

/// Stateless policy plus reusable scratch; one repairer per dynamic
/// session (NOT thread-safe, same discipline as WarmSolver).
class ScheduleRepairer {
 public:
  explicit ScheduleRepairer(RepairPolicy policy = RepairPolicy::kMinMin)
      : policy_(policy) {}

  RepairPolicy policy() const noexcept { return policy_; }

  /// Patches `schedule` — currently a valid schedule of the PRE-event
  /// instance — into a valid schedule of `etc` (the post-event instance,
  /// i.e. mutator.etc() after the apply that produced `outcome`).
  /// `schedule`'s completion-time cache is maintained incrementally, not
  /// recomputed. Throws std::invalid_argument when `schedule`'s shape is
  /// inconsistent with what `outcome` says the pre-event shape was.
  RepairStats repair(const EtcMutator::Outcome& outcome,
                     const etc::EtcMatrix& etc, sched::Schedule& schedule);

  /// Epoch-commit counterpart of repair(): patches `schedule` (valid for
  /// the pre-commit instance) into a valid schedule of the post-commit
  /// `etc` — committed tasks drop out of the assignment, and every
  /// machine's completion is re-based from its old ready time onto its
  /// new one (commits never orphan anything, so this is pure O(machines +
  /// |removed|) cache patching, no reassignment). Throws
  /// std::invalid_argument on shape inconsistencies, leaving `schedule`
  /// untouched.
  RepairStats commit(const EtcMutator::CommitOutcome& outcome,
                     const etc::EtcMatrix& etc, sched::Schedule& schedule);

 private:
  void reassign_orphans(const etc::EtcMatrix& etc);

  RepairPolicy policy_;
  // Scratch reused across repairs (grows to the high-water shape).
  std::vector<sched::MachineId> assignment_;
  std::vector<double> completion_;
  std::vector<std::size_t> orphans_;
  // Per-orphan cached scan results (parallel to orphans_).
  std::vector<double> key_;  // best completion (Min-min) / sufferage
  std::vector<std::uint32_t> best_m_;
  std::vector<std::uint32_t> second_m_;
};

}  // namespace pacga::dynamic
