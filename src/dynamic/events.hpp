// Dynamic-grid event model.
//
// The paper's batch setting freezes the grid into one ETC matrix; the real
// operating regime (§2.1) churns: machines drop out mid-window, rejoin,
// degrade under background load, and tasks keep arriving (or are
// withdrawn) while a schedule is already committed. A GridEvent is one
// such state change, fully concrete — it names the exact machine/task
// index it targets and carries the parameters (slowdown factor, new task
// workload, joining machine capacity) needed to apply it. Concrete events
// make streams replayable byte-for-byte, which the golden determinism
// tests and the daemon's EVENT verb rely on.
//
// Index convention: `machine` and `task` are CURRENT indices at apply
// time. Removals shift the indices above them down by one (dense matrices
// have no holes); dynamic::EtcMutator reports the shift through its
// Outcome so the schedule repairer can remap an existing assignment.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace pacga::dynamic {

enum class EventKind : std::uint8_t {
  kMachineDown,      ///< machine leaves; its tasks are orphaned
  kMachineUp,        ///< a new machine joins with the given mips
  kMachineSlowdown,  ///< machine's ETCs scale by `factor` (recovery: < 1)
  kTaskArrival,      ///< a new task with the given workload joins the batch
  kTaskCancel,       ///< task is withdrawn; its machine sheds the load
  kEpochCommit,      ///< `value` time units elapse; started work is committed
};

const char* to_string(EventKind k) noexcept;

/// One grid state change. Only the fields the kind names are meaningful;
/// the factories below set exactly those.
struct GridEvent {
  EventKind kind = EventKind::kTaskArrival;
  double time = 0.0;        ///< event timestamp (stream bookkeeping only)
  std::size_t machine = 0;  ///< target machine (down / slowdown)
  std::size_t task = 0;     ///< target task (cancel)
  double factor = 1.0;      ///< slowdown multiplier (> 1 slower, < 1 recovery)
  double value = 0.0;       ///< arrival workload (MI), joining machine mips,
                            ///< or commit horizon (elapsed time units)
  /// kMachineUp only: time until the joining machine can take new work —
  /// nonzero when a machine returns still draining in-flight work it
  /// carried away (the §2.1 ready_m). Every downstream consumer (repair,
  /// heuristics, CGA seeding) reads it through EtcMatrix::ready().
  double ready = 0.0;

  bool operator==(const GridEvent&) const = default;
};

GridEvent machine_down(std::size_t machine, double time = 0.0);
GridEvent machine_up(double mips, double time = 0.0);
/// A machine that RETURNS: joins with `mips` capacity but is busy for
/// `ready` more time units finishing the in-flight work it went down with.
GridEvent machine_up_ready(double mips, double ready, double time = 0.0);
GridEvent machine_slowdown(std::size_t machine, double factor,
                           double time = 0.0);
GridEvent task_arrival(double workload, double time = 0.0);
GridEvent task_cancel(std::size_t task, double time = 0.0);
/// Epoch boundary: `elapsed` time units pass. Work that STARTED inside the
/// window is committed — completed tasks leave the batch, the in-flight
/// remainder becomes its machine's ready time (RescheduleSession applies
/// it against its current schedule; EtcMutator::apply alone cannot, it has
/// no assignment).
GridEvent epoch_commit(double elapsed, double time = 0.0);

/// Stable one-line rendering, e.g. "t=1.250000 slowdown machine=3
/// factor=1.500000". The golden tests compare these byte-for-byte, so the
/// format is part of the determinism contract: fixed field order, fixed
/// 6-digit precision, no locale dependence. (machine_up emits its ready
/// field only when nonzero, so pre-ready-time logs are byte-identical.)
std::string format_event(const GridEvent& e);

/// Inverse of format_event: parses one log line back into the event it
/// came from (field values round to the log's 6-decimal precision — the
/// line is the canonical form; replaying a file is deterministic). Throws
/// std::invalid_argument naming the problem on any malformed line. This
/// parser is load-bearing for the daemon's REPLAY verb.
GridEvent parse_event(const std::string& line);

}  // namespace pacga::dynamic
