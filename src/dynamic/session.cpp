#include "dynamic/session.hpp"

#include "heuristics/minmin.hpp"
#include "heuristics/sufferage.hpp"

namespace pacga::dynamic {

namespace {

sched::Schedule initial_schedule(const etc::EtcMatrix& etc,
                                 RepairPolicy policy) {
  return policy == RepairPolicy::kSufferage ? heur::sufferage(etc)
                                            : heur::min_min(etc);
}

}  // namespace

RescheduleSession::RescheduleSession(const batch::WorkloadSpec& spec,
                                     RepairPolicy policy)
    : mutator_(spec),
      repairer_(policy),
      schedule_(initial_schedule(mutator_.etc(), policy)) {}

RepairStats RescheduleSession::apply(const GridEvent& e) {
  if (e.kind == EventKind::kEpochCommit) return commit_epoch(e.value);
  const EtcMutator::Outcome outcome = mutator_.apply(e);
  if (outcome.shape_changed) ++shape_epoch_;
  return repairer_.repair(outcome, mutator_.etc(), schedule_);
}

RepairStats RescheduleSession::commit_epoch(double elapsed) {
  const EtcMutator::CommitOutcome outcome =
      mutator_.commit_epoch(schedule_.assignment(), elapsed);
  if (!outcome.removed_tasks.empty()) ++shape_epoch_;
  return repairer_.commit(outcome, mutator_.etc(), schedule_);
}

service::JobSpec RescheduleSession::make_reschedule_spec(
    int priority, double deadline_ms, std::uint64_t seed) const {
  service::JobSpec spec;
  // Deep snapshot: the job may still be queued when the next event
  // mutates the live matrix.
  spec.etc = std::make_shared<const etc::EtcMatrix>(mutator_.snapshot());
  spec.priority = priority;
  spec.deadline_ms = deadline_ms;
  spec.seed = seed;
  const auto a = schedule_.assignment();
  spec.warm_start.assign(a.begin(), a.end());
  return spec;
}

bool RescheduleSession::adopt(std::span<const sched::MachineId> assignment) {
  if (assignment.size() != mutator_.tasks()) return false;  // stale shape
  for (sched::MachineId m : assignment) {
    if (m >= mutator_.machines()) return false;
  }
  const sched::Schedule candidate(mutator_.etc(),
                                  {assignment.begin(), assignment.end()});
  if (!(candidate.makespan() < schedule_.makespan())) return false;
  schedule_.adopt(mutator_.etc(), assignment);
  return true;
}

}  // namespace pacga::dynamic
