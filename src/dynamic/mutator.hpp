// EtcMutator — applies grid events to a live ETC matrix.
//
// The mutator owns both the generative model (per-task workloads in MI,
// per-machine capacities in mips plus an accumulated slowdown factor —
// the §2.1 quantities, same formula as batch::make_batch_etc) and the
// materialized EtcMatrix the solvers consume:
//
//     ETC[t][m] = workload_t * slow_m / mips_m * noise(task_uid, machine_uid)
//
// with the deterministic per-(task, machine) hash noise of the batch
// module, so a task keeps its execution profile across arbitrary churn.
//
// Cost model: MachineSlowdown is the only shape-preserving event and is
// applied IN PLACE (EtcMatrix::scale_machine — no reallocation). The four
// shape-changing events (down/up/arrival/cancel) rebuild the matrix from
// the model, so reallocation happens exactly when the task or machine
// count changes — never on the steady slowdown/recovery stream.
//
// Every apply() returns an Outcome describing the index shift it caused;
// dynamic::ScheduleRepairer consumes it to patch an existing schedule
// instead of re-solving from scratch.
#pragma once

#include <cstdint>
#include <vector>

#include "batch/workload.hpp"
#include "dynamic/events.hpp"
#include "etc/etc_matrix.hpp"

namespace pacga::dynamic {

class EtcMutator {
 public:
  /// Grid invariants the mutator enforces (throwing std::domain_error
  /// rather than materializing an unsolvable or overflowing instance).
  static constexpr std::size_t kMinMachines = 1;
  static constexpr std::size_t kMinTasks = 1;
  /// Accumulated slowdown clamp: |log2(slow)| <= 6 keeps entries finite
  /// under arbitrarily long slowdown streams.
  static constexpr double kMaxSlowdown = 64.0;

  /// Adopts a generated workload as the initial grid (all tasks one
  /// batch, idle machines — the make_workload_etc regime). Deterministic
  /// in spec.seed. Validates the spec.
  explicit EtcMutator(const batch::WorkloadSpec& spec);

  /// What one event did to the instance; everything the schedule
  /// repairer needs to remap an assignment built on the PRE-event shape.
  struct Outcome {
    EventKind kind = EventKind::kTaskArrival;
    bool shape_changed = false;
    /// kMachineDown: removed index (pre-shift; indices above it moved
    /// down by one). kMachineUp: the new machine's index (= machines-1).
    /// kMachineSlowdown: the scaled machine.
    std::size_t machine = SIZE_MAX;
    /// kTaskCancel: removed index (pre-shift). kTaskArrival: the new
    /// task's index (= tasks-1).
    std::size_t task = SIZE_MAX;
    /// kMachineSlowdown: the factor actually applied (after the
    /// accumulated-slowdown clamp; 1.0 when the clamp swallowed it).
    double factor = 1.0;
    /// kTaskCancel: the cancelled task's ETC row (one entry per
    /// PRE-event machine), copied from the matrix before the rebuild so
    /// the repairer can decrement its machine's completion time exactly.
    std::vector<double> removed_task_etc;
  };

  /// Applies one event. Throws std::invalid_argument on out-of-range
  /// indices / non-positive parameters and std::domain_error on events
  /// that would violate a grid invariant (down to zero machines, cancel
  /// of the last task). The instance is unchanged on throw.
  Outcome apply(const GridEvent& e);

  /// The live instance. The reference is stable across apply() calls
  /// (the matrix object is reassigned in place), but its CONTENT and
  /// shape change with every event — snapshot() for anything that must
  /// outlive the next apply (e.g. a service job).
  const etc::EtcMatrix& etc() const noexcept { return etc_; }

  /// Deep copy of the current instance.
  etc::EtcMatrix snapshot() const { return etc_; }

  /// From-scratch materialization from the model — the property tests
  /// cross-check it against the incrementally maintained matrix.
  etc::EtcMatrix rebuild() const { return materialize(); }

  std::size_t tasks() const noexcept { return tasks_.size(); }
  std::size_t machines() const noexcept { return machines_.size(); }
  std::uint64_t events_applied() const noexcept { return events_applied_; }

 private:
  struct DynTask {
    std::uint64_t uid = 0;  ///< stable identity for the noise hash
    double workload = 0.0;
  };
  struct DynMachine {
    std::uint64_t uid = 0;
    double mips = 0.0;
    double slow = 1.0;  ///< accumulated slowdown (1 = nominal speed)
  };

  double entry(const DynTask& t, const DynMachine& m) const;
  etc::EtcMatrix materialize() const;

  std::vector<DynTask> tasks_;
  std::vector<DynMachine> machines_;
  double inconsistency_;
  std::uint64_t noise_seed_;
  std::uint64_t next_task_uid_;
  std::uint64_t next_machine_uid_;
  std::uint64_t events_applied_ = 0;
  etc::EtcMatrix etc_;
};

}  // namespace pacga::dynamic
