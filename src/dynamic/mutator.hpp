// EtcMutator — applies grid events to a live ETC matrix.
//
// The mutator owns both the generative model (per-task workloads in MI,
// per-machine capacities in mips plus an accumulated slowdown factor —
// the §2.1 quantities, same formula as batch::make_batch_etc) and the
// materialized EtcMatrix the solvers consume:
//
//     ETC[t][m] = workload_t * slow_m / mips_m * noise(task_uid, machine_uid)
//
// with the deterministic per-(task, machine) hash noise of the batch
// module, so a task keeps its execution profile across arbitrary churn.
//
// Ready times: each machine additionally carries a ready time (when it can
// take new work — the §2.1 ready_m), materialized into the EtcMatrix so
// every downstream consumer (repair, heuristics, CGA completion seeding)
// accounts for work already underway. Ready times enter through machines
// that return still draining (GridEvent::ready on kMachineUp) and through
// commit_epoch(), which feeds an epoch's completed/in-flight assignments
// back into the model.
//
// Cost model: MachineSlowdown is the only shape-preserving event and is
// applied IN PLACE (EtcMatrix::scale_machine — no reallocation). The four
// shape-changing events (down/up/arrival/cancel) rebuild the matrix from
// the model, so reallocation happens exactly when the task or machine
// count changes — never on the steady slowdown/recovery stream.
//
// Every apply() returns an Outcome describing the index shift it caused;
// dynamic::ScheduleRepairer consumes it to patch an existing schedule
// instead of re-solving from scratch.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "batch/workload.hpp"
#include "dynamic/events.hpp"
#include "etc/etc_matrix.hpp"
#include "sched/schedule.hpp"

namespace pacga::dynamic {

class EtcMutator {
 public:
  /// Grid invariants the mutator enforces (throwing std::domain_error
  /// rather than materializing an unsolvable or overflowing instance).
  static constexpr std::size_t kMinMachines = 1;
  static constexpr std::size_t kMinTasks = 1;
  /// Accumulated slowdown clamp — PART OF THE API CONTRACT, not an
  /// internal detail: a machine's accumulated slowdown factor is clamped
  /// to [1/kMaxSlowdown, kMaxSlowdown] = [1/64, 64] (|log2(slow)| <= 6),
  /// so ETC entries stay finite under arbitrarily long slowdown streams.
  /// A kMachineSlowdown event whose factor would push the accumulated
  /// value past either edge is PARTIALLY applied: Outcome::factor reports
  /// the factor actually realized (exactly 1.0 once a machine sits pinned
  /// at an edge and the event pushes further outward), and model and
  /// matrix stay in lockstep at the clamped value. Recovery events
  /// (factor < 1) move a pinned machine back off the edge normally.
  /// test_dynamic pins this behavior at both edges.
  static constexpr double kMaxSlowdown = 64.0;

  /// Adopts a generated workload as the initial grid (all tasks one
  /// batch, idle machines — the make_workload_etc regime). Deterministic
  /// in spec.seed. Validates the spec.
  explicit EtcMutator(const batch::WorkloadSpec& spec);

  /// What one event did to the instance; everything the schedule
  /// repairer needs to remap an assignment built on the PRE-event shape.
  struct Outcome {
    EventKind kind = EventKind::kTaskArrival;
    bool shape_changed = false;
    /// kMachineDown: removed index (pre-shift; indices above it moved
    /// down by one). kMachineUp: the new machine's index (= machines-1).
    /// kMachineSlowdown: the scaled machine.
    std::size_t machine = SIZE_MAX;
    /// kTaskCancel: removed index (pre-shift). kTaskArrival: the new
    /// task's index (= tasks-1).
    std::size_t task = SIZE_MAX;
    /// kMachineSlowdown: the factor actually applied (after the
    /// accumulated-slowdown clamp; 1.0 when the clamp swallowed it).
    double factor = 1.0;
    /// kTaskCancel: the cancelled task's ETC row (one entry per
    /// PRE-event machine), copied from the matrix before the rebuild so
    /// the repairer can decrement its machine's completion time exactly.
    std::vector<double> removed_task_etc;
  };

  /// Applies one event. Throws std::invalid_argument on out-of-range
  /// indices / non-positive parameters and std::domain_error on events
  /// that would violate a grid invariant (down to zero machines, cancel
  /// of the last task). The instance is unchanged on throw. kEpochCommit
  /// events cannot be applied here (they need the current assignment) —
  /// use commit_epoch(), or RescheduleSession::apply which routes them.
  Outcome apply(const GridEvent& e);

  /// What one epoch commit did to the instance. Everything the repairer
  /// needs to patch a schedule of the pre-commit shape: which tasks left
  /// the batch, the exact ETC each contributed to its machine, and the
  /// per-machine ready times on both sides of the boundary.
  struct CommitOutcome {
    std::size_t completed = 0;  ///< removed tasks that finished in the window
    std::size_t in_flight = 0;  ///< removed tasks still running at the edge
    /// Removed (committed) tasks, ascending PRE-commit indices.
    std::vector<std::size_t> removed_tasks;
    /// Parallel to removed_tasks: etc(t, machine_of(t)) copied from the
    /// pre-commit matrix, so the repairer's completion decrement is exact.
    std::vector<double> removed_etc;
    /// Pre-commit ready time of every machine (the matrix now holds the
    /// post-commit values).
    std::vector<double> old_ready;
  };

  /// Epoch boundary: `elapsed` time units pass while the grid executes
  /// `assignment` (one machine id per current task; each machine runs its
  /// tasks in ascending task order after draining its ready time). Tasks
  /// that STARTED inside the window are committed — completed ones and
  /// the in-flight remainder leave the batch, and each machine's new
  /// ready time is whatever committed work is still running at the
  /// boundary (non-preemptive, so an in-flight task is no longer
  /// reschedulable). Unstarted tasks stay in the batch. Throws
  /// std::invalid_argument on a malformed assignment / non-positive
  /// elapsed and std::domain_error when the commit would empty the batch
  /// (kMinTasks); the instance is unchanged on throw.
  CommitOutcome commit_epoch(std::span<const sched::MachineId> assignment,
                             double elapsed);

  /// The live instance. The reference is stable across apply() calls
  /// (the matrix object is reassigned in place), but its CONTENT and
  /// shape change with every event — snapshot() for anything that must
  /// outlive the next apply (e.g. a service job).
  const etc::EtcMatrix& etc() const noexcept { return etc_; }

  /// Deep copy of the current instance.
  etc::EtcMatrix snapshot() const { return etc_; }

  /// From-scratch materialization from the model — the property tests
  /// cross-check it against the incrementally maintained matrix.
  etc::EtcMatrix rebuild() const { return materialize(); }

  std::size_t tasks() const noexcept { return tasks_.size(); }
  std::size_t machines() const noexcept { return machines_.size(); }
  std::uint64_t events_applied() const noexcept { return events_applied_; }

 private:
  struct DynTask {
    std::uint64_t uid = 0;  ///< stable identity for the noise hash
    double workload = 0.0;
  };
  struct DynMachine {
    std::uint64_t uid = 0;
    double mips = 0.0;
    double slow = 1.0;   ///< accumulated slowdown (1 = nominal speed)
    double ready = 0.0;  ///< time until the machine can take new work
  };

  double entry(const DynTask& t, const DynMachine& m) const;
  etc::EtcMatrix materialize() const;

  std::vector<DynTask> tasks_;
  std::vector<DynMachine> machines_;
  double inconsistency_;
  std::uint64_t noise_seed_;
  std::uint64_t next_task_uid_;
  std::uint64_t next_machine_uid_;
  std::uint64_t events_applied_ = 0;
  etc::EtcMatrix etc_;
};

}  // namespace pacga::dynamic
