#include "dynamic/mutator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "support/algo.hpp"
#include "support/rng.hpp"

namespace pacga::dynamic {

namespace {

void require_positive_finite(double v, const char* what) {
  if (!(v > 0.0) || !std::isfinite(v))
    throw std::invalid_argument(std::string("EtcMutator: ") + what +
                                " must be positive finite");
}

}  // namespace

EtcMutator::EtcMutator(const batch::WorkloadSpec& spec)
    : inconsistency_(spec.inconsistency),
      noise_seed_(spec.seed),
      next_task_uid_(spec.tasks),
      next_machine_uid_(spec.machines),
      etc_([&] {
        // Initial uids equal initial indices, so the starting matrix is
        // bit-identical to batch::make_workload_etc(spec) — a dynamic
        // session warm-starts from exactly the instance the static
        // service path would have solved.
        return batch::make_workload_etc(spec);
      }()) {
  const batch::Workload w = batch::generate_workload(spec);
  tasks_.reserve(w.tasks.size());
  for (std::size_t i = 0; i < w.tasks.size(); ++i) {
    tasks_.push_back({i, w.tasks[i].workload});
  }
  machines_.reserve(w.machines.size());
  for (std::size_t m = 0; m < w.machines.size(); ++m) {
    machines_.push_back({m, w.machines[m].mips, 1.0});
  }
}

double EtcMutator::entry(const DynTask& t, const DynMachine& m) const {
  // Identical hash scheme to batch::make_batch_etc, keyed on STABLE uids:
  // a task's execution profile survives any amount of churn around it.
  support::SplitMix64 hash(noise_seed_ ^ (t.uid * 0x9e3779b97f4a7c15ULL) ^
                           (m.uid * 0xc2b2ae3d27d4eb4fULL));
  const double unit = static_cast<double>(hash.next() >> 11) * 0x1.0p-53;
  const double noise = 1.0 + inconsistency_ * unit;
  return t.workload * m.slow / m.mips * noise;
}

etc::EtcMatrix EtcMutator::materialize() const {
  std::vector<double> data(tasks_.size() * machines_.size());
  for (std::size_t t = 0; t < tasks_.size(); ++t) {
    for (std::size_t m = 0; m < machines_.size(); ++m) {
      data[t * machines_.size() + m] = entry(tasks_[t], machines_[m]);
    }
  }
  std::vector<double> ready(machines_.size());
  for (std::size_t m = 0; m < machines_.size(); ++m) {
    ready[m] = machines_[m].ready;
  }
  return etc::EtcMatrix(tasks_.size(), machines_.size(), std::move(data),
                        std::move(ready));
}

EtcMutator::Outcome EtcMutator::apply(const GridEvent& e) {
  Outcome out;
  out.kind = e.kind;
  switch (e.kind) {
    case EventKind::kMachineSlowdown: {
      if (e.machine >= machines_.size())
        throw std::invalid_argument("EtcMutator: slowdown machine out of range");
      require_positive_finite(e.factor, "slowdown factor");
      DynMachine& m = machines_[e.machine];
      // Clamp the ACCUMULATED slowdown, then apply whatever factor
      // realizes the clamped value — model and matrix stay in lockstep
      // and entries stay finite under arbitrarily long event streams.
      const double target =
          std::clamp(m.slow * e.factor, 1.0 / kMaxSlowdown, kMaxSlowdown);
      const double applied = target / m.slow;
      etc_.scale_machine(e.machine, applied);  // in place, no reallocation
      m.slow = target;
      out.machine = e.machine;
      out.factor = applied;
      break;
    }
    case EventKind::kMachineDown: {
      if (e.machine >= machines_.size())
        throw std::invalid_argument("EtcMutator: down machine out of range");
      if (machines_.size() <= kMinMachines)
        throw std::domain_error("EtcMutator: cannot drop the last machine");
      machines_.erase(machines_.begin() +
                      static_cast<std::ptrdiff_t>(e.machine));
      etc_ = materialize();
      out.shape_changed = true;
      out.machine = e.machine;
      break;
    }
    case EventKind::kMachineUp: {
      require_positive_finite(e.value, "joining machine mips");
      if (!(e.ready >= 0.0) || !std::isfinite(e.ready))
        throw std::invalid_argument(
            "EtcMutator: joining machine ready time must be >= 0 and finite");
      machines_.push_back({next_machine_uid_++, e.value, 1.0, e.ready});
      etc_ = materialize();
      out.shape_changed = true;
      out.machine = machines_.size() - 1;
      break;
    }
    case EventKind::kTaskArrival: {
      require_positive_finite(e.value, "arriving task workload");
      tasks_.push_back({next_task_uid_++, e.value});
      etc_ = materialize();
      out.shape_changed = true;
      out.task = tasks_.size() - 1;
      break;
    }
    case EventKind::kTaskCancel: {
      if (e.task >= tasks_.size())
        throw std::invalid_argument("EtcMutator: cancel task out of range");
      if (tasks_.size() <= kMinTasks)
        throw std::domain_error("EtcMutator: cannot cancel the last task");
      // Copy the row from the MATRIX (not the model): the repairer
      // subtracts these from completion times that were accumulated from
      // matrix entries, so the decrement must be exact.
      const auto row = etc_.of_task(e.task);
      out.removed_task_etc.assign(row.begin(), row.end());
      tasks_.erase(tasks_.begin() + static_cast<std::ptrdiff_t>(e.task));
      etc_ = materialize();
      out.shape_changed = true;
      out.task = e.task;
      break;
    }
    case EventKind::kEpochCommit:
      // A commit depends on the schedule being executed, which the mutator
      // does not know. RescheduleSession::apply routes commit events to
      // commit_epoch() with its current assignment.
      throw std::invalid_argument(
          "EtcMutator: commit events need an assignment — use commit_epoch()");
  }
  ++events_applied_;
  return out;
}

EtcMutator::CommitOutcome EtcMutator::commit_epoch(
    std::span<const sched::MachineId> assignment, double elapsed) {
  require_positive_finite(elapsed, "commit elapsed");
  if (assignment.size() != tasks_.size())
    throw std::invalid_argument("EtcMutator: commit assignment size mismatch");
  for (const sched::MachineId m : assignment) {
    if (m >= machines_.size())
      throw std::invalid_argument(
          "EtcMutator: commit assignment machine out of range");
  }

  CommitOutcome out;
  out.old_ready.resize(machines_.size());
  std::vector<double> new_ready(machines_.size());

  // Per machine, replay its timeline for the window: it drains its ready
  // time first, then runs its assigned tasks in ascending task order (the
  // deterministic service order every consumer shares). A task whose start
  // lies strictly inside the window is committed; once one task fails to
  // start, every later task on that machine is unstarted too.
  for (std::size_t m = 0; m < machines_.size(); ++m) {
    out.old_ready[m] = machines_[m].ready;
    new_ready[m] = std::max(0.0, machines_[m].ready - elapsed);
  }
  for (std::size_t t = 0; t < tasks_.size(); ++t) {
    const sched::MachineId m = assignment[t];
    // old_ready is reused as the machine's running busy-through time while
    // scanning (restored below); committed work accumulates onto it.
    double& busy = out.old_ready[m];
    if (busy >= elapsed) continue;  // machine full for the window: unstarted
    const double cost = etc_(t, m);
    const double finish = busy + cost;
    out.removed_tasks.push_back(t);
    out.removed_etc.push_back(cost);
    if (finish <= elapsed) {
      ++out.completed;
    } else {
      ++out.in_flight;
    }
    busy = finish;
    new_ready[m] = std::max(0.0, finish - elapsed);
  }
  // Restore the pre-commit ready times the scan borrowed.
  for (std::size_t m = 0; m < machines_.size(); ++m) {
    out.old_ready[m] = machines_[m].ready;
  }

  if (tasks_.size() - out.removed_tasks.size() < kMinTasks)
    throw std::domain_error("EtcMutator: commit would empty the batch");

  // Mutate: new ready times, committed tasks leave the model, rebuild.
  for (std::size_t m = 0; m < machines_.size(); ++m) {
    machines_[m].ready = new_ready[m];
  }
  support::erase_sorted_indices(tasks_, out.removed_tasks);
  etc_ = materialize();
  ++events_applied_;
  return out;
}

}  // namespace pacga::dynamic
