#include "dynamic/events.hpp"

#include <cstdio>

namespace pacga::dynamic {

const char* to_string(EventKind k) noexcept {
  switch (k) {
    case EventKind::kMachineDown: return "down";
    case EventKind::kMachineUp: return "up";
    case EventKind::kMachineSlowdown: return "slowdown";
    case EventKind::kTaskArrival: return "arrival";
    case EventKind::kTaskCancel: return "cancel";
  }
  return "?";
}

GridEvent machine_down(std::size_t machine, double time) {
  GridEvent e;
  e.kind = EventKind::kMachineDown;
  e.time = time;
  e.machine = machine;
  return e;
}

GridEvent machine_up(double mips, double time) {
  GridEvent e;
  e.kind = EventKind::kMachineUp;
  e.time = time;
  e.value = mips;
  return e;
}

GridEvent machine_slowdown(std::size_t machine, double factor, double time) {
  GridEvent e;
  e.kind = EventKind::kMachineSlowdown;
  e.time = time;
  e.machine = machine;
  e.factor = factor;
  return e;
}

GridEvent task_arrival(double workload, double time) {
  GridEvent e;
  e.kind = EventKind::kTaskArrival;
  e.time = time;
  e.value = workload;
  return e;
}

GridEvent task_cancel(std::size_t task, double time) {
  GridEvent e;
  e.kind = EventKind::kTaskCancel;
  e.time = time;
  e.task = task;
  return e;
}

std::string format_event(const GridEvent& e) {
  // snprintf, not ostream: %f is locale-independent in practice for the
  // "C" numerics the library never changes, and the fixed buffer keeps
  // this allocation-light for per-event logging.
  char buf[160];
  int n = 0;
  switch (e.kind) {
    case EventKind::kMachineDown:
      n = std::snprintf(buf, sizeof buf, "t=%.6f down machine=%zu", e.time,
                        e.machine);
      break;
    case EventKind::kMachineUp:
      n = std::snprintf(buf, sizeof buf, "t=%.6f up mips=%.6f", e.time,
                        e.value);
      break;
    case EventKind::kMachineSlowdown:
      n = std::snprintf(buf, sizeof buf, "t=%.6f slowdown machine=%zu factor=%.6f",
                        e.time, e.machine, e.factor);
      break;
    case EventKind::kTaskArrival:
      n = std::snprintf(buf, sizeof buf, "t=%.6f arrival workload=%.6f",
                        e.time, e.value);
      break;
    case EventKind::kTaskCancel:
      n = std::snprintf(buf, sizeof buf, "t=%.6f cancel task=%zu", e.time,
                        e.task);
      break;
  }
  return std::string(buf, n > 0 ? static_cast<std::size_t>(n) : 0);
}

}  // namespace pacga::dynamic
