#include "dynamic/events.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string_view>

namespace pacga::dynamic {

const char* to_string(EventKind k) noexcept {
  switch (k) {
    case EventKind::kMachineDown: return "down";
    case EventKind::kMachineUp: return "up";
    case EventKind::kMachineSlowdown: return "slowdown";
    case EventKind::kTaskArrival: return "arrival";
    case EventKind::kTaskCancel: return "cancel";
    case EventKind::kEpochCommit: return "commit";
  }
  return "?";
}

GridEvent machine_down(std::size_t machine, double time) {
  GridEvent e;
  e.kind = EventKind::kMachineDown;
  e.time = time;
  e.machine = machine;
  return e;
}

GridEvent machine_up(double mips, double time) {
  GridEvent e;
  e.kind = EventKind::kMachineUp;
  e.time = time;
  e.value = mips;
  return e;
}

GridEvent machine_up_ready(double mips, double ready, double time) {
  GridEvent e = machine_up(mips, time);
  e.ready = ready;
  return e;
}

GridEvent machine_slowdown(std::size_t machine, double factor, double time) {
  GridEvent e;
  e.kind = EventKind::kMachineSlowdown;
  e.time = time;
  e.machine = machine;
  e.factor = factor;
  return e;
}

GridEvent task_arrival(double workload, double time) {
  GridEvent e;
  e.kind = EventKind::kTaskArrival;
  e.time = time;
  e.value = workload;
  return e;
}

GridEvent task_cancel(std::size_t task, double time) {
  GridEvent e;
  e.kind = EventKind::kTaskCancel;
  e.time = time;
  e.task = task;
  return e;
}

GridEvent epoch_commit(double elapsed, double time) {
  GridEvent e;
  e.kind = EventKind::kEpochCommit;
  e.time = time;
  e.value = elapsed;
  return e;
}

std::string format_event(const GridEvent& e) {
  // snprintf, not ostream: %f is locale-independent in practice for the
  // "C" numerics the library never changes, and the fixed buffer keeps
  // this allocation-light for per-event logging. Sized for the worst
  // case of THREE %f fields (a ~1.8e308 double renders 309 integral
  // digits + ".######" ≈ 317 chars; "up mips=... ready=..." carries time
  // + two values), so no LEGAL event can truncate — a truncated line
  // could re-parse as a different event and silently diverge a replay.
  char buf[1024];
  int n = 0;
  switch (e.kind) {
    case EventKind::kMachineDown:
      n = std::snprintf(buf, sizeof buf, "t=%.6f down machine=%zu", e.time,
                        e.machine);
      break;
    case EventKind::kMachineUp: {
      // The ready field is appended only when its RENDERED value is
      // nonzero, so every log written before ready-time events existed
      // stays byte-identical AND the line stays the fixed point of
      // format(parse(...)): a ready that rounds to 0.000000 at the log's
      // 6-decimal precision is canonically zero (emitting it would parse
      // back to 0.0 and drop on the next format). An invalid ready that
      // renders nonzero (negative, nan) round-trips, so a replayed log
      // reproduces the live session's rejection.
      char rendered[352];  // single-%f worst case, like buf above
      std::snprintf(rendered, sizeof rendered, "%.6f", e.ready);
      const bool renders_zero = std::string_view(rendered) == "0.000000" ||
                                std::string_view(rendered) == "-0.000000";
      if (!renders_zero) {
        n = std::snprintf(buf, sizeof buf, "t=%.6f up mips=%.6f ready=%s",
                          e.time, e.value, rendered);
      } else {
        n = std::snprintf(buf, sizeof buf, "t=%.6f up mips=%.6f", e.time,
                          e.value);
      }
      break;
    }
    case EventKind::kMachineSlowdown:
      n = std::snprintf(buf, sizeof buf, "t=%.6f slowdown machine=%zu factor=%.6f",
                        e.time, e.machine, e.factor);
      break;
    case EventKind::kTaskArrival:
      n = std::snprintf(buf, sizeof buf, "t=%.6f arrival workload=%.6f",
                        e.time, e.value);
      break;
    case EventKind::kTaskCancel:
      n = std::snprintf(buf, sizeof buf, "t=%.6f cancel task=%zu", e.time,
                        e.task);
      break;
    case EventKind::kEpochCommit:
      n = std::snprintf(buf, sizeof buf, "t=%.6f commit elapsed=%.6f", e.time,
                        e.value);
      break;
  }
  if (n < 0) return std::string();
  // snprintf returns the WOULD-HAVE-WRITTEN length; the buffer covers the
  // %f worst case above, but clamp defensively rather than read past it.
  return std::string(buf, std::min(static_cast<std::size_t>(n),
                                   sizeof buf - 1));
}

namespace {

[[noreturn]] void bad_line(const std::string& line, const char* why) {
  throw std::invalid_argument(std::string("parse_event: ") + why + " in \"" +
                              line + "\"");
}

/// Parses one "key=<double>" token already read from the stream; throws
/// unless the key matches and the value parses completely.
double parse_double_token(const std::string& token, const char* key,
                          const std::string& line) {
  const std::string prefix = std::string(key) + "=";
  if (token.rfind(prefix, 0) != 0) bad_line(line, "unexpected field");
  const std::string value = token.substr(prefix.size());
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (value.empty() || end != value.c_str() + value.size())
    bad_line(line, "malformed numeric value");
  return v;
}

/// Consumes one "key=<double>" token; throws when it is missing.
double parse_double_field(std::istringstream& in, const char* key,
                          const std::string& line) {
  std::string token;
  if (!(in >> token)) bad_line(line, "missing field");
  return parse_double_token(token, key, line);
}

std::size_t parse_index_field(std::istringstream& in, const char* key,
                              const std::string& line) {
  std::string token;
  if (!(in >> token)) bad_line(line, "missing field");
  const std::string prefix = std::string(key) + "=";
  if (token.rfind(prefix, 0) != 0) bad_line(line, "unexpected field");
  const std::string value = token.substr(prefix.size());
  // Digits only: strtoull would silently wrap "-1" to SIZE_MAX.
  if (value.empty() ||
      !std::isdigit(static_cast<unsigned char>(value.front())))
    bad_line(line, "malformed index value");
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  if (end != value.c_str() + value.size())
    bad_line(line, "malformed index value");
  return static_cast<std::size_t>(v);
}

}  // namespace

GridEvent parse_event(const std::string& line) {
  std::istringstream in(line);
  std::string token;
  if (!(in >> token)) bad_line(line, "empty line");
  if (token.rfind("t=", 0) != 0) bad_line(line, "missing t= field");
  const std::string tvalue = token.substr(2);
  char* end = nullptr;
  const double time = std::strtod(tvalue.c_str(), &end);
  if (tvalue.empty() || end != tvalue.c_str() + tvalue.size())
    bad_line(line, "malformed timestamp");

  std::string kind;
  if (!(in >> kind)) bad_line(line, "missing event kind");

  GridEvent e;
  if (kind == "down") {
    e = machine_down(parse_index_field(in, "machine", line), time);
  } else if (kind == "up") {
    const double mips = parse_double_field(in, "mips", line);
    // Optional trailing ready= field (emitted only when nonzero).
    std::string rest;
    if (in >> rest) {
      e = machine_up_ready(mips, parse_double_token(rest, "ready", line),
                           time);
    } else {
      e = machine_up(mips, time);
    }
  } else if (kind == "slowdown") {
    const std::size_t m = parse_index_field(in, "machine", line);
    e = machine_slowdown(m, parse_double_field(in, "factor", line), time);
  } else if (kind == "arrival") {
    e = task_arrival(parse_double_field(in, "workload", line), time);
  } else if (kind == "cancel") {
    e = task_cancel(parse_index_field(in, "task", line), time);
  } else if (kind == "commit") {
    e = epoch_commit(parse_double_field(in, "elapsed", line), time);
  } else {
    bad_line(line, "unknown event kind");
  }
  if (in >> kind) bad_line(line, "trailing garbage");
  return e;
}

}  // namespace pacga::dynamic
