#include "pacga/parallel_engine.hpp"

#include <atomic>
#include <algorithm>
#include <mutex>
#include <optional>
#include <shared_mutex>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

#include "cga/breeder.hpp"
#include "cga/engine.hpp"
#include "cga/loop.hpp"
#include "cga/population.hpp"
#include "support/threading.hpp"
#include "support/timer.hpp"

namespace pacga::par {

std::uint64_t ParallelResult::total_evaluations() const noexcept {
  std::uint64_t total = 0;
  for (const auto& t : threads) total += t.evaluations;
  return total;
}

bool pin_current_thread(std::size_t core) noexcept {
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(core % CPU_SETSIZE, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)core;
  return false;
#endif
}

namespace {

/// Everything a worker needs; shared state is either immutable, atomic, or
/// touched only by thread 0 between barriers.
struct Shared {
  const etc::EtcMatrix& etc;
  const cga::Config& config;
  cga::Population& pop;
  const std::vector<cga::Block>& blocks;
  std::vector<support::Xoshiro256>& rngs;
  std::vector<support::Padded<ThreadStats>>& stats;
  std::vector<std::optional<cga::Individual>>& thread_best;
  const cga::Individual& initial_best;
  cga::TraceRecorder& trace;  ///< thread 0 only
  std::atomic<std::uint64_t>& global_evaluations;
  const cga::TerminationController& termination;
  const cga::GenerationObserver& observer;  ///< thread 0 only
  // Synchronous mode only:
  support::Barrier* barrier = nullptr;
  std::atomic<bool>* stop_flag = nullptr;
};

/// Asynchronous worker — the paper's Algorithm 3: immediate replacement
/// under the cell's write lock, per-thread progress, termination checked
/// once per block sweep. All loop bookkeeping comes from the shared core;
/// the Breeder makes the steady-state step allocation-free.
void worker_async(Shared& sh, std::size_t tid) {
  const cga::Config& config = sh.config;
  support::Xoshiro256& rng = sh.rngs[tid + 1];
  const cga::Block block = sh.blocks[tid];
  ThreadStats& st = sh.stats[tid].value;
  cga::Breeder breeder(sh.etc, config);
  cga::BestTracker best(sh.initial_best);

  support::Xoshiro256 order_rng(config.seed ^ (0xb10c0000 + tid));
  cga::SweepOrderCache order(config.sweep, block.size(), order_rng);

  cga::run_sweep_loop(
      order, order_rng,
      [&](std::size_t pos) {  // one breeding step
        const std::size_t idx = block.begin + pos;
        const cga::Individual& child = breeder.breed_locked(sh.pop, idx, rng);
        ++st.evaluations;
        best.observe(child);
        // --- asynchronous replacement under the cell's write lock.
        {
          std::unique_lock lock(sh.pop.lock(idx));
          if (cga::detail::should_replace(config.replacement, child.fitness,
                                          sh.pop.at(idx).fitness)) {
            cga::Breeder::replace(sh.pop.at(idx), child);
            ++st.replacements;
          }
        }
        return false;  // budgets are checked per block sweep (paper)
      },
      [&] {  // end of block sweep
        ++st.generations;
        if (tid == 0) {
          sh.trace.sample_locked(st.generations,
                                 sh.termination.elapsed_seconds(), sh.pop);
        }
        const std::uint64_t evals_now =
            sh.global_evaluations.fetch_add(block.size(),
                                            std::memory_order_relaxed) +
            block.size();
        if (tid == 0 && sh.observer) {
          // Live population: the observer must lock cells it reads.
          sh.observer({st.generations, evals_now,
                       sh.termination.elapsed_seconds(), best.fitness(),
                       sh.pop});
        }
        return sh.termination.sweep_done(st.generations, evals_now);
      });
  sh.thread_best[tid] = best.take();
}

/// Synchronous worker — generational variant: stage the block's offspring
/// in a preallocated auxiliary block, barrier, commit, barrier, collective
/// termination decision by thread 0.
void worker_sync(Shared& sh, std::size_t tid) {
  const cga::Config& config = sh.config;
  support::Xoshiro256& rng = sh.rngs[tid + 1];
  const cga::Block block = sh.blocks[tid];
  ThreadStats& st = sh.stats[tid].value;
  cga::Breeder breeder(sh.etc, config);
  cga::BestTracker best(sh.initial_best);

  support::Xoshiro256 order_rng(config.seed ^ (0xb10c0000 + tid));
  cga::SweepOrderCache order(config.sweep, block.size(), order_rng);
  std::vector<cga::Individual> staged;
  staged.reserve(block.size());
  for (std::size_t i = 0; i < block.size(); ++i) {
    staged.emplace_back(sched::Schedule(sh.etc), 0.0);
  }
  std::size_t staged_count = 0;

  cga::run_sweep_loop(
      order, order_rng,
      [&](std::size_t pos) {  // stage one offspring (evaluation deferred)
        const std::size_t idx = block.begin + pos;
        breeder.breed_locked_into_deferred(sh.pop, idx, rng,
                                           staged[staged_count++]);
        ++st.evaluations;
        return false;
      },
      [&] {  // generational commit + collective verdict
        // One batched kernel dispatch evaluates the whole staged block —
        // before the barrier, on purely thread-private storage, so the
        // batch runs in the parallel phase, not the commit phase.
        breeder.evaluate_batch(staged.data(), staged_count);
        for (std::size_t k = 0; k < staged_count; ++k) {
          best.observe(staged[k]);
        }
        sh.barrier->arrive_and_wait();  // everyone finished breeding

        // Commit this thread's own block; only this thread writes these
        // cells, but readers elsewhere are quiet (all threads are
        // committing), so the write locks are cheap and uncontended.
        const auto& o = order.order();
        for (std::size_t k = 0; k < staged_count; ++k) {
          const std::size_t idx = block.begin + o[k];
          std::unique_lock lock(sh.pop.lock(idx));
          if (cga::detail::should_replace(config.replacement,
                                          staged[k].fitness,
                                          sh.pop.at(idx).fitness)) {
            cga::Breeder::replace(sh.pop.at(idx), staged[k]);
            ++st.replacements;
          }
        }
        staged_count = 0;
        ++st.generations;
        sh.global_evaluations.fetch_add(block.size(),
                                        std::memory_order_relaxed);
        sh.barrier->arrive_and_wait();  // commits visible everywhere

        if (tid == 0) {
          sh.trace.sample_locked(st.generations,
                                 sh.termination.elapsed_seconds(), sh.pop);
          const std::uint64_t evals_now =
              sh.global_evaluations.load(std::memory_order_relaxed);
          if (sh.observer) {
            sh.observer({st.generations, evals_now,
                         sh.termination.elapsed_seconds(), best.fitness(),
                         sh.pop});
          }
          // Collective decision: a single verdict for the whole
          // generation, or the threads would disagree near the deadline
          // and deadlock at the next barrier.
          sh.stop_flag->store(
              sh.termination.sweep_done(st.generations, evals_now),
              std::memory_order_release);
        }
        sh.barrier->arrive_and_wait();  // decision published
        return sh.stop_flag->load(std::memory_order_acquire);
      });
  sh.thread_best[tid] = best.take();
}

}  // namespace

ParallelResult run_parallel(const etc::EtcMatrix& etc,
                            const cga::Config& config,
                            const cga::GenerationObserver& observer,
                            const std::atomic<bool>* cancel) {
  config.validate();
  const std::size_t n_threads = config.threads;

  support::Xoshiro256 init_rng(config.seed);
  cga::Grid grid(config.width, config.height);
  cga::Population pop(etc, grid, init_rng, config.seed_min_min,
                      config.objective, config.lambda);
  // Warm-seed injection BEFORE initial_best is taken: a seeded run is
  // never-worse-than-seed by construction (the tracker starts at or below
  // the seed's fitness), with no clamp needed downstream.
  cga::apply_warm_seed(pop, etc, config);
  const auto blocks = cga::partition_blocks(pop.size(), n_threads);
  // Thread streams are decorrelated from the init stream by construction
  // (SplitMix64 expansion of the same master seed).
  auto rngs = support::make_streams(config.seed, n_threads + 1);

  const cga::Individual initial_best = pop.at(pop.best_index());

  // Per-thread hot state is cache-line padded; results are collected after
  // the join, so workers never publish through shared memory.
  std::vector<support::Padded<ThreadStats>> stats(n_threads);
  std::vector<std::optional<cga::Individual>> thread_best(n_threads);

  cga::TerminationController termination(config.termination);
  termination.bind_stop_flag(cancel);
  cga::TraceRecorder trace(config.collect_trace);
  std::atomic<std::uint64_t> global_evaluations{0};
  std::atomic<bool> stop_flag{false};
  support::Barrier barrier(n_threads);

  Shared shared{etc,          config,   pop,
                blocks,       rngs,     stats,
                thread_best,  initial_best, trace,
                global_evaluations,     termination,
                observer,     &barrier, &stop_flag};

  {
    support::ScopedThreads threads(n_threads, [&](std::size_t tid) {
      if (config.pin_threads) pin_current_thread(tid);
      if (config.update == cga::UpdatePolicy::kSynchronous) {
        worker_sync(shared, tid);
      } else {
        worker_async(shared, tid);
      }
    });
  }  // join

  // All workers joined: unsynchronized scans are safe again.
  cga::BestTracker best(initial_best);
  best.observe_population(pop);
  for (auto& tb : thread_best) {
    if (tb) best.observe(*tb);
  }

  cga::Individual winner = best.take();
  ParallelResult out{cga::Result{std::move(winner.schedule)}, {}};
  out.result.best_fitness = winner.fitness;
  out.result.elapsed_seconds = termination.elapsed_seconds();
  out.result.trace = trace.take();
  out.threads.reserve(n_threads);
  for (auto& s : stats) {
    out.threads.push_back(s.value);
    out.result.evaluations += s.value.evaluations;
    out.result.generations =
        std::max(out.result.generations, s.value.generations);
  }
  return out;
}

}  // namespace pacga::par
