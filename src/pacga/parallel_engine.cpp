#include "pacga/parallel_engine.hpp"

#include <atomic>
#include <algorithm>
#include <mutex>
#include <optional>
#include <shared_mutex>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

#include "cga/engine.hpp"
#include "cga/population.hpp"
#include "support/threading.hpp"
#include "support/timer.hpp"

namespace pacga::par {

std::uint64_t ParallelResult::total_evaluations() const noexcept {
  std::uint64_t total = 0;
  for (const auto& t : threads) total += t.evaluations;
  return total;
}

bool pin_current_thread(std::size_t core) noexcept {
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(core % CPU_SETSIZE, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)core;
  return false;
#endif
}

namespace {

/// Copies one cell under its read lock (the lock window is exactly the
/// Individual copy — schedule vectors plus fitness).
cga::Individual locked_copy(cga::Population& pop, std::size_t cell) {
  std::shared_lock lock(pop.lock(cell));
  return pop.at(cell);
}

/// Everything a worker needs; shared state is either immutable, atomic, or
/// touched only by thread 0 between barriers.
struct Shared {
  const etc::EtcMatrix& etc;
  const cga::Config& config;
  cga::Population& pop;
  const std::vector<cga::Block>& blocks;
  std::vector<support::Xoshiro256>& rngs;
  std::vector<support::Padded<ThreadStats>>& stats;
  std::vector<std::optional<cga::Individual>>& thread_best;
  std::vector<cga::TracePoint>& trace;
  std::atomic<std::uint64_t>& global_evaluations;
  const support::WallTimer& timer;
  const support::Deadline& deadline;
  // Synchronous mode only:
  support::Barrier* barrier = nullptr;
  std::atomic<bool>* stop_flag = nullptr;
};

/// One breeding step for cell `idx` under the PA-CGA locking discipline.
cga::Individual breed_locked(Shared& sh, std::size_t idx,
                             support::Xoshiro256& rng,
                             std::vector<std::size_t>& neigh_scratch,
                             std::vector<double>& fit_scratch) {
  const cga::Config& config = sh.config;
  // --- selection: snapshot neighbor fitnesses under read locks.
  cga::neighborhood_of(sh.pop.grid(), idx, config.neighborhood, neigh_scratch);
  fit_scratch.clear();
  for (std::size_t cell : neigh_scratch) {
    std::shared_lock lock(sh.pop.lock(cell));
    fit_scratch.push_back(sh.pop.at(cell).fitness);
  }
  const auto [pa_pos, pb_pos] =
      cga::select_parents(config.selection, fit_scratch, rng);

  // --- copy parents (one lock at a time; never nested).
  const cga::Individual pa = locked_copy(sh.pop, neigh_scratch[pa_pos]);
  const cga::Individual pb = locked_copy(sh.pop, neigh_scratch[pb_pos]);

  // --- breed on private copies, outside all locks.
  sched::Schedule offspring =
      rng.bernoulli(config.p_comb)
          ? cga::crossover(config.crossover, pa.schedule, pb.schedule, rng)
          : pa.schedule;
  if (rng.bernoulli(config.p_mut)) {
    cga::mutate(config.mutation, offspring, rng);
  }
  if (config.ls_kind != cga::LocalSearchKind::kNone &&
      config.local_search.iterations > 0 && rng.bernoulli(config.p_ls)) {
    cga::apply_local_search(config.ls_kind, offspring, config.local_search,
                            config.tabu, rng);
  }
  return cga::Individual::evaluated(std::move(offspring), config.objective);
}

/// Whole-population trace sample under read locks (thread 0 only).
void sample_trace(Shared& sh, std::uint64_t generation) {
  double sum = 0.0;
  double best = 0.0;
  bool first = true;
  for (std::size_t i = 0; i < sh.pop.size(); ++i) {
    std::shared_lock lock(sh.pop.lock(i));
    const double f = sh.pop.at(i).fitness;
    sum += f;
    if (first || f < best) best = f;
    first = false;
  }
  sh.trace.push_back({generation, sh.timer.elapsed_seconds(), best,
                      sum / static_cast<double>(sh.pop.size())});
}

/// Asynchronous worker — the paper's Algorithm 3: immediate replacement,
/// per-thread progress, termination checked per block sweep.
void worker_async(Shared& sh, std::size_t tid) {
  const cga::Config& config = sh.config;
  support::Xoshiro256& rng = sh.rngs[tid + 1];
  const cga::Block block = sh.blocks[tid];
  ThreadStats& st = sh.stats[tid].value;
  std::vector<std::size_t> neigh_scratch;
  std::vector<double> fit_scratch;
  std::optional<cga::Individual> local_best;

  support::Xoshiro256 order_rng(config.seed ^ (0xb10c0000 + tid));
  std::vector<std::size_t> order =
      cga::detail::make_sweep_order(config.sweep, block.size(), order_rng);

  while (true) {
    if (config.sweep == cga::SweepPolicy::kNewShuffle ||
        config.sweep == cga::SweepPolicy::kUniformChoice) {
      order = cga::detail::make_sweep_order(config.sweep, block.size(),
                                            order_rng);
    }
    for (std::size_t pos : order) {
      const std::size_t idx = block.begin + pos;
      cga::Individual child =
          breed_locked(sh, idx, rng, neigh_scratch, fit_scratch);
      ++st.evaluations;
      if (!local_best || child.fitness < local_best->fitness) {
        local_best = child;
      }
      // --- asynchronous replacement under the cell's write lock.
      {
        std::unique_lock lock(sh.pop.lock(idx));
        if (cga::detail::should_replace(config.replacement, child.fitness,
                                        sh.pop.at(idx).fitness)) {
          sh.pop.at(idx) = std::move(child);
          ++st.replacements;
        }
      }
    }
    ++st.generations;
    if (tid == 0 && config.collect_trace) sample_trace(sh, st.generations);

    // Termination checks once per block sweep (paper's granularity).
    const std::uint64_t evals_now =
        sh.global_evaluations.fetch_add(block.size(),
                                        std::memory_order_relaxed) +
        block.size();
    if (sh.deadline.expired()) break;
    if (st.generations >= config.termination.max_generations) break;
    if (evals_now >= config.termination.max_evaluations) break;
  }
  sh.thread_best[tid] = std::move(local_best);
}

/// Synchronous worker — generational variant: stage the block's offspring,
/// barrier, commit, barrier, collective termination decision by thread 0.
void worker_sync(Shared& sh, std::size_t tid) {
  const cga::Config& config = sh.config;
  support::Xoshiro256& rng = sh.rngs[tid + 1];
  const cga::Block block = sh.blocks[tid];
  ThreadStats& st = sh.stats[tid].value;
  std::vector<std::size_t> neigh_scratch;
  std::vector<double> fit_scratch;
  std::optional<cga::Individual> local_best;

  support::Xoshiro256 order_rng(config.seed ^ (0xb10c0000 + tid));
  std::vector<std::size_t> order =
      cga::detail::make_sweep_order(config.sweep, block.size(), order_rng);
  std::vector<cga::Individual> staged;
  staged.reserve(block.size());

  while (true) {
    if (config.sweep == cga::SweepPolicy::kNewShuffle ||
        config.sweep == cga::SweepPolicy::kUniformChoice) {
      order = cga::detail::make_sweep_order(config.sweep, block.size(),
                                            order_rng);
    }
    staged.clear();
    for (std::size_t pos : order) {
      const std::size_t idx = block.begin + pos;
      staged.push_back(breed_locked(sh, idx, rng, neigh_scratch, fit_scratch));
      ++st.evaluations;
      if (!local_best || staged.back().fitness < local_best->fitness) {
        local_best = staged.back();
      }
    }
    sh.barrier->arrive_and_wait();  // everyone finished breeding

    // Commit this thread's own block; only this thread writes these cells,
    // but readers elsewhere are quiet (all threads are committing), so the
    // write locks are cheap and uncontended.
    for (std::size_t k = 0; k < staged.size(); ++k) {
      const std::size_t idx = block.begin + order[k];
      std::unique_lock lock(sh.pop.lock(idx));
      if (cga::detail::should_replace(config.replacement, staged[k].fitness,
                                      sh.pop.at(idx).fitness)) {
        sh.pop.at(idx) = std::move(staged[k]);
        ++st.replacements;
      }
    }
    ++st.generations;
    sh.global_evaluations.fetch_add(block.size(), std::memory_order_relaxed);
    sh.barrier->arrive_and_wait();  // commits visible everywhere

    if (tid == 0) {
      if (config.collect_trace) sample_trace(sh, st.generations);
      // Collective decision: a single verdict for the whole generation, or
      // the threads would disagree near the deadline and deadlock at the
      // next barrier.
      const bool stop =
          sh.deadline.expired() ||
          st.generations >= config.termination.max_generations ||
          sh.global_evaluations.load(std::memory_order_relaxed) >=
              config.termination.max_evaluations;
      sh.stop_flag->store(stop, std::memory_order_release);
    }
    sh.barrier->arrive_and_wait();  // decision published
    if (sh.stop_flag->load(std::memory_order_acquire)) break;
  }
  sh.thread_best[tid] = std::move(local_best);
}

}  // namespace

ParallelResult run_parallel(const etc::EtcMatrix& etc,
                            const cga::Config& config) {
  config.validate();
  const std::size_t n_threads = config.threads;

  support::Xoshiro256 init_rng(config.seed);
  cga::Grid grid(config.width, config.height);
  cga::Population pop(etc, grid, init_rng, config.seed_min_min,
                      config.objective);
  const auto blocks = cga::partition_blocks(pop.size(), n_threads);
  // Thread streams are decorrelated from the init stream by construction
  // (SplitMix64 expansion of the same master seed).
  auto rngs = support::make_streams(config.seed, n_threads + 1);

  const cga::Individual initial_best = pop.at(pop.best_index());

  // Per-thread hot state is cache-line padded; results are collected after
  // the join, so workers never publish through shared memory.
  std::vector<support::Padded<ThreadStats>> stats(n_threads);
  std::vector<std::optional<cga::Individual>> thread_best(n_threads);
  std::vector<cga::TracePoint> trace;

  std::atomic<std::uint64_t> global_evaluations{0};
  std::atomic<bool> stop_flag{false};
  support::Barrier barrier(n_threads);
  const support::WallTimer timer;
  const support::Deadline deadline(config.termination.wall_seconds);

  Shared shared{etc,         config,      pop,
                blocks,      rngs,        stats,
                thread_best, trace,       global_evaluations,
                timer,       deadline,    &barrier,
                &stop_flag};

  {
    support::ScopedThreads threads(n_threads, [&](std::size_t tid) {
      if (config.pin_threads) pin_current_thread(tid);
      if (config.update == cga::UpdatePolicy::kSynchronous) {
        worker_sync(shared, tid);
      } else {
        worker_async(shared, tid);
      }
    });
  }  // join

  // All workers joined: unsynchronized scans are safe again.
  cga::Individual best = initial_best;
  const std::size_t pop_best = pop.best_index();
  if (pop.at(pop_best).fitness < best.fitness) best = pop.at(pop_best);
  for (auto& tb : thread_best) {
    if (tb && tb->fitness < best.fitness) best = std::move(*tb);
  }

  ParallelResult out{cga::Result{std::move(best.schedule)}, {}};
  out.result.best_fitness = best.fitness;
  out.result.elapsed_seconds = timer.elapsed_seconds();
  out.result.trace = std::move(trace);
  out.threads.reserve(n_threads);
  for (auto& s : stats) {
    out.threads.push_back(s.value);
    out.result.evaluations += s.value.evaluations;
    out.result.generations =
        std::max(out.result.generations, s.value.generations);
  }
  return out;
}

}  // namespace pacga::par
