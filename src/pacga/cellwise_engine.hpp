// Cell-parallel synchronous engine — the paper's future-work execution
// model ("future work will focus on increasing the parallelism... we will
// target GPU processors"), simulated on CPU.
//
// Execution model: ONE LOGICAL THREAD PER INDIVIDUAL in lockstep
// generations, the way a GPU kernel would evolve the grid. On CPU this is
// a worker pool over a strided static split of the cells (worker t breeds
// cells t, t+T, t+2T, ...), staging every offspring in a preallocated
// auxiliary population and committing the whole generation at a barrier.
//
// Key property, tested and unlike PA-CGA: results are BIT-IDENTICAL for
// any worker count, because each (cell, generation) pair gets its own
// deterministic RNG stream — which worker executes it is irrelevant. This
// is exactly the reproducibility story GPU implementations need, and the
// price is synchrony: the engine gives up PA-CGA's asynchronous update.
#pragma once

#include "cga/config.hpp"
#include "cga/loop.hpp"
#include "etc/etc_matrix.hpp"
#include "pacga/parallel_engine.hpp"

namespace pacga::par {

/// Runs the cell-parallel synchronous CGA. `config.threads` sets the
/// worker-pool size only (results do not depend on it); `config.update`
/// and `config.sweep` are ignored (the model is inherently synchronous and
/// order-free). ThreadStats::generations is the shared generation count;
/// evaluations are attributed to the workers that performed them.
/// `observer` runs on worker 0 between generation barriers (population
/// quiescent).
ParallelResult run_cellwise(const etc::EtcMatrix& etc,
                            const cga::Config& config,
                            const cga::GenerationObserver& observer = {});

}  // namespace pacga::par
