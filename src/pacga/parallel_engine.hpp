// PA-CGA — the paper's contribution (§3.2, Algorithms 2 & 3).
//
// The population grid is split into contiguous row-major blocks, one per
// thread. Threads evolve their block asynchronously: no generation barrier,
// a fixed line sweep inside each block, and immediate (asynchronous)
// replacement. Neighborhoods cross block boundaries, so every access to an
// individual that may be shared is guarded by that cell's read-write lock:
//   * fitness snapshot of each neighbor        — shared (read) lock;
//   * copy of each selected parent             — shared (read) lock;
//   * replacement of the thread's own cell     — exclusive (write) lock.
// Locks are taken one at a time (never nested), so the scheme is trivially
// deadlock-free. Breeding (crossover, mutation, H2LL, evaluation) runs on
// private copies outside any lock — exactly the property the paper exploits
// to scale: more local-search iterations means a larger unsynchronized
// fraction (Figure 4).
#pragma once

#include <cstdint>
#include <vector>

#include "cga/config.hpp"
#include "cga/loop.hpp"
#include "etc/etc_matrix.hpp"

namespace pacga::par {

/// Per-thread counters, exposed because the paper's speedup metric is
/// "total evaluations across threads in a fixed wall budget" (eq. 5).
struct ThreadStats {
  std::uint64_t evaluations = 0;
  std::uint64_t generations = 0;  ///< full sweeps of the thread's block
  std::uint64_t replacements = 0; ///< offspring that entered the population
};

/// Result of a PA-CGA run plus per-thread accounting.
struct ParallelResult {
  cga::Result result;
  std::vector<ThreadStats> threads;

  /// Sum of evaluations across threads (the Figure 4 numerator).
  std::uint64_t total_evaluations() const noexcept;
};

/// Runs PA-CGA with `config.threads` threads on `etc`.
///
/// Termination: wall clock is checked by every thread after each full block
/// sweep (the paper's coarse-grained approximation); `max_generations`
/// bounds each thread's own sweep count; `max_evaluations` bounds the
/// global evaluation total (checked per sweep).
///
/// Warm seeding: a non-empty `config.warm_seed` is injected into one cell
/// of the initial population (cga::apply_warm_seed) before the workers
/// start AND before the initial best is recorded, so a seeded run's result
/// is never worse than the seed by construction — the service's dynamic
/// rescheduling path relies on this instead of clamping after the fact.
///
/// The synchronous mode evaluates each thread's staged offspring block
/// through one batched kernel dispatch per sweep (Breeder::evaluate_batch)
/// rather than one per child; fitness values are bit-identical, so sync
/// trajectories are unchanged.
///
/// With `config.threads == 1` this is the canonical asynchronous CGA of
/// §3.1 (same algorithm as cga::run_sequential, modulo lock overhead).
///
/// `config.update == kSynchronous` selects the generational variant the
/// paper contrasts against (§3.1): threads stage their block's offspring,
/// meet at a barrier, commit the whole generation at once, and take the
/// termination decision collectively (thread 0 decides, everyone honors
/// it — a consensus is required or threads would deadlock at the barrier).
/// `observer` (optional) runs on thread 0 after each of ITS block sweeps.
/// In the asynchronous mode the population is live — observers must take
/// the per-cell locks for anything they read from it; in the synchronous
/// mode it runs between barriers (quiescent).
/// `cancel` (optional) is an external stop flag every thread polls at its
/// per-block-sweep termination check; raising it ends the run within one
/// block sweep per thread (the service's job-cancellation path).
ParallelResult run_parallel(const etc::EtcMatrix& etc,
                            const cga::Config& config,
                            const cga::GenerationObserver& observer = {},
                            const std::atomic<bool>* cancel = nullptr);

/// Pins the calling thread to `core` (Linux). Returns false when pinning
/// is unsupported or fails; the engine treats that as a soft error. The
/// paper runs all threads on one 4-core processor — `config.pin_threads`
/// reproduces that placement so the shared-L2 effects (§4.2) are visible.
bool pin_current_thread(std::size_t core) noexcept;

}  // namespace pacga::par
