#include "pacga/cellwise_engine.hpp"

#include <atomic>
#include <algorithm>
#include <optional>
#include <vector>

#include "cga/engine.hpp"
#include "cga/population.hpp"
#include "support/threading.hpp"
#include "support/timer.hpp"

namespace pacga::par {

namespace {

/// Deterministic stream for one (cell, generation) pair: which worker
/// executes the cell must not matter.
support::Xoshiro256 cell_stream(std::uint64_t seed, std::size_t cell,
                                std::uint64_t generation) {
  support::SplitMix64 mix(seed ^ (cell * 0x9e3779b97f4a7c15ULL) ^
                          (generation * 0xc2b2ae3d27d4eb4fULL));
  return support::Xoshiro256(mix.next());
}

}  // namespace

ParallelResult run_cellwise(const etc::EtcMatrix& etc,
                            const cga::Config& config) {
  config.validate();
  const std::size_t n_threads = config.threads;

  support::Xoshiro256 init_rng(config.seed);
  cga::Grid grid(config.width, config.height);
  cga::Population pop(etc, grid, init_rng, config.seed_min_min,
                      config.objective);
  const std::size_t n = pop.size();

  cga::Individual best = pop.at(pop.best_index());
  std::vector<std::optional<cga::Individual>> staged(n);
  std::vector<support::Padded<ThreadStats>> stats(n_threads);
  std::vector<cga::TracePoint> trace;

  std::atomic<std::size_t> next_cell{0};
  std::atomic<bool> stop{false};
  std::uint64_t generation = 0;  // written by worker 0 between barriers
  support::Barrier barrier(n_threads);
  const support::WallTimer timer;
  const support::Deadline deadline(config.termination.wall_seconds);

  auto worker = [&](std::size_t tid) {
    if (config.pin_threads) pin_current_thread(tid);
    ThreadStats& st = stats[tid].value;
    std::vector<std::size_t> neigh_scratch;
    std::vector<double> fit_scratch;

    while (true) {
      // --- breed phase: dynamic work queue over all cells. The population
      // is read-only here (commits happen between barriers), so no locks.
      const std::uint64_t gen = generation;  // stable between barriers
      for (std::size_t cell = next_cell.fetch_add(1,
                                                  std::memory_order_relaxed);
           cell < n;
           cell = next_cell.fetch_add(1, std::memory_order_relaxed)) {
        support::Xoshiro256 rng = cell_stream(config.seed, cell, gen);
        staged[cell] = cga::detail::breed(pop, cell, config, rng,
                                          neigh_scratch, fit_scratch);
        ++st.evaluations;
      }
      barrier.arrive_and_wait();  // all offspring staged

      if (tid == 0) {
        // --- commit phase: serial, one pass (256 compares/moves).
        for (std::size_t cell = 0; cell < n; ++cell) {
          cga::Individual& child = *staged[cell];
          if (child.fitness < best.fitness) best = child;
          if (cga::detail::should_replace(config.replacement, child.fitness,
                                          pop.at(cell).fitness)) {
            pop.at(cell) = std::move(child);
          }
          staged[cell].reset();
        }
        ++generation;
        ++st.generations;
        if (config.collect_trace) {
          double sum = 0.0;
          double gen_best = pop.at(0).fitness;
          for (std::size_t i = 0; i < n; ++i) {
            sum += pop.at(i).fitness;
            gen_best = std::min(gen_best, pop.at(i).fitness);
          }
          trace.push_back({generation, timer.elapsed_seconds(), gen_best,
                           sum / static_cast<double>(n)});
        }
        const bool done =
            deadline.expired() ||
            generation >= config.termination.max_generations ||
            generation * n >= config.termination.max_evaluations;
        stop.store(done, std::memory_order_release);
        next_cell.store(0, std::memory_order_release);
      }
      barrier.arrive_and_wait();  // commit + decision visible
      if (stop.load(std::memory_order_acquire)) break;
    }
  };

  {
    support::ScopedThreads threads(n_threads, worker);
  }  // join

  ParallelResult out{cga::Result{std::move(best.schedule)}, {}};
  out.result.best_fitness = best.fitness;
  out.result.elapsed_seconds = timer.elapsed_seconds();
  out.result.trace = std::move(trace);
  out.threads.reserve(n_threads);
  for (auto& s : stats) {
    out.threads.push_back(s.value);
    out.result.evaluations += s.value.evaluations;
  }
  // Generations are collective in this model; worker 0 kept the count.
  out.result.generations = stats[0].value.generations;
  for (auto& t : out.threads) t.generations = out.result.generations;
  return out;
}

}  // namespace pacga::par
