#include "pacga/cellwise_engine.hpp"

#include <atomic>
#include <algorithm>
#include <vector>

#include "cga/breeder.hpp"
#include "cga/engine.hpp"
#include "cga/loop.hpp"
#include "cga/population.hpp"
#include "support/threading.hpp"
#include "support/timer.hpp"

namespace pacga::par {

namespace {

/// Deterministic stream for one (cell, generation) pair: which worker
/// executes the cell must not matter.
support::Xoshiro256 cell_stream(std::uint64_t seed, std::size_t cell,
                                std::uint64_t generation) {
  support::SplitMix64 mix(seed ^ (cell * 0x9e3779b97f4a7c15ULL) ^
                          (generation * 0xc2b2ae3d27d4eb4fULL));
  return support::Xoshiro256(mix.next());
}

}  // namespace

ParallelResult run_cellwise(const etc::EtcMatrix& etc,
                            const cga::Config& config,
                            const cga::GenerationObserver& observer) {
  config.validate();
  const std::size_t n_threads = config.threads;

  support::Xoshiro256 init_rng(config.seed);
  cga::Grid grid(config.width, config.height);
  cga::Population pop(etc, grid, init_rng, config.seed_min_min,
                      config.objective, config.lambda);
  cga::apply_warm_seed(pop, etc, config);
  const std::size_t n = pop.size();

  // Shared core components. The auxiliary population is preallocated once;
  // workers breed straight into their cells' slots, so the steady-state
  // breeding step allocates nothing.
  cga::TerminationController termination(config.termination);
  cga::BestTracker best(pop.at(pop.best_index()));
  cga::TraceRecorder trace(config.collect_trace);
  std::vector<cga::Individual> staged;
  staged.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    staged.emplace_back(sched::Schedule(etc), 0.0);
  }

  std::vector<support::Padded<ThreadStats>> stats(n_threads);
  std::atomic<bool> stop{false};
  std::uint64_t generation = 0;  // written by worker 0 between barriers
  support::Barrier barrier(n_threads);

  auto worker = [&](std::size_t tid) {
    if (config.pin_threads) pin_current_thread(tid);
    ThreadStats& st = stats[tid].value;
    cga::Breeder breeder(etc, config);

    while (true) {
      // --- breed phase: strided static split of the cells (cell tid,
      // tid+T, ...). Deterministic attribution, no queue contention, and
      // results are still independent of the worker count because each
      // (cell, generation) pair carries its own RNG stream. The population
      // is read-only here (commits happen between barriers), so no locks.
      const std::uint64_t gen = generation;  // stable between barriers
      for (std::size_t cell = tid; cell < n; cell += n_threads) {
        support::Xoshiro256 rng = cell_stream(config.seed, cell, gen);
        breeder.breed_into(pop, cell, rng, staged[cell]);
        ++st.evaluations;
      }
      barrier.arrive_and_wait();  // all offspring staged

      if (tid == 0) {
        // --- commit phase: serial, one pass over the grid.
        for (std::size_t cell = 0; cell < n; ++cell) {
          const cga::Individual& child = staged[cell];
          best.observe(child);
          if (cga::detail::should_replace(config.replacement, child.fitness,
                                          pop.at(cell).fitness)) {
            cga::Breeder::replace(pop.at(cell), child);
          }
        }
        ++generation;
        ++st.generations;
        trace.sample(generation, termination.elapsed_seconds(), pop);
        // One counter for `max_evaluations` across all engines: the real
        // summed per-thread totals, not the generation * n proxy. The
        // barrier makes every worker's count from this generation visible.
        std::uint64_t total_evaluations = 0;
        for (const auto& s : stats) total_evaluations += s.value.evaluations;
        if (observer) {
          observer({generation, total_evaluations,
                    termination.elapsed_seconds(), best.fitness(), pop});
        }
        stop.store(termination.sweep_done(generation, total_evaluations),
                   std::memory_order_release);
      }
      barrier.arrive_and_wait();  // commit + decision visible
      if (stop.load(std::memory_order_acquire)) break;
    }
  };

  {
    support::ScopedThreads threads(n_threads, worker);
  }  // join

  cga::Individual winner = best.take();
  ParallelResult out{cga::Result{std::move(winner.schedule)}, {}};
  out.result.best_fitness = winner.fitness;
  out.result.elapsed_seconds = termination.elapsed_seconds();
  out.result.trace = trace.take();
  out.threads.reserve(n_threads);
  for (auto& s : stats) {
    out.threads.push_back(s.value);
    out.result.evaluations += s.value.evaluations;
  }
  // Generations are collective in this model; worker 0 kept the count.
  out.result.generations = stats[0].value.generations;
  for (auto& t : out.threads) t.generations = out.result.generations;
  return out;
}

}  // namespace pacga::par
